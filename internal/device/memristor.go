// Package device provides the behavioural memristor and crossbar circuit
// models underlying the hardware substrate: a voltage-controlled memristor
// with programmable resistance, a write-verify programming loop, and an
// IR-drop-aware crossbar read model with process variation. The package
// reproduces the paper's motivating constraint (Section 2.1, citing Liang &
// Wong): as the crossbar size grows, IR drop along the wires and device
// variation degrade read margins until crossbars beyond 64×64 are no
// longer reliable.
package device

import (
	"fmt"
	"math"
	"math/rand"
)

// MemristorParams describes one memristor technology corner.
// Resistances in Ω, voltages in V, times in ns.
type MemristorParams struct {
	// ROn and ROff are the low- and high-resistance states.
	ROn, ROff float64
	// VThreshold is the programming threshold: biases below it (in
	// magnitude) do not disturb the state, which is what makes the
	// half-select scheme of a crossbar write work.
	VThreshold float64
	// DriftPerNs is the fractional state change per ns of a full-swing
	// programming pulse.
	DriftPerNs float64
	// Sigma is the lognormal process-variation of both resistance states
	// (σ of ln R), applied per device instance.
	Sigma float64
}

// DefaultParams returns a TiO2-flavoured parameter set at the 45 nm node.
func DefaultParams() MemristorParams {
	return MemristorParams{
		ROn:        1e4,  // 10 kΩ
		ROff:       1e6,  // 1 MΩ
		VThreshold: 1.0,  // V
		DriftPerNs: 0.02, // 2% of range per ns at full swing
		Sigma:      0.10,
	}
}

// Validate reports whether the parameters are physically sensible.
func (p MemristorParams) Validate() error {
	if p.ROn <= 0 || p.ROff <= p.ROn {
		return fmt.Errorf("device: need 0 < ROn < ROff, got %g, %g", p.ROn, p.ROff)
	}
	if p.VThreshold <= 0 {
		return fmt.Errorf("device: threshold %g must be positive", p.VThreshold)
	}
	if p.DriftPerNs <= 0 || p.DriftPerNs > 1 {
		return fmt.Errorf("device: drift %g per ns out of (0,1]", p.DriftPerNs)
	}
	if p.Sigma < 0 {
		return fmt.Errorf("device: sigma %g must be ≥ 0", p.Sigma)
	}
	return nil
}

// Memristor is one device instance. Its state x ∈ [0,1] interpolates the
// conductance between the off state (x=0) and the on state (x=1); the
// conductance model is linear in x, G = G_off + x·(G_on − G_off), the
// common behavioural abstraction.
type Memristor struct {
	params     MemristorParams
	x          float64
	rOn, rOff  float64 // per-instance, after process variation
	halfSelect int     // disturb event counter (diagnostics)
}

// NewMemristor returns a device at x=0 (high resistance). Process variation
// is drawn from rng if the parameter σ is non-zero; pass a deterministic
// source for reproducibility.
func NewMemristor(p MemristorParams, rng *rand.Rand) (*Memristor, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m := &Memristor{params: p, rOn: p.ROn, rOff: p.ROff}
	if p.Sigma > 0 {
		m.rOn = p.ROn * math.Exp(rng.NormFloat64()*p.Sigma)
		m.rOff = p.ROff * math.Exp(rng.NormFloat64()*p.Sigma)
		if m.rOff <= m.rOn {
			// Pathological draw; keep the corner ordering.
			m.rOff = m.rOn * (p.ROff / p.ROn)
		}
	}
	return m, nil
}

// State returns the internal state x ∈ [0,1].
func (m *Memristor) State() float64 { return m.x }

// Conductance returns the present conductance in siemens.
func (m *Memristor) Conductance() float64 {
	gOn, gOff := 1/m.rOn, 1/m.rOff
	return gOff + m.x*(gOn-gOff)
}

// Resistance returns the present resistance in Ω.
func (m *Memristor) Resistance() float64 { return 1 / m.Conductance() }

// ApplyPulse applies a programming pulse of the given amplitude (signed,
// V) and duration (ns). Positive bias drives the device toward the on
// state, negative toward off; magnitudes below the threshold leave the
// state untouched (but are counted as half-select events for diagnostics).
func (m *Memristor) ApplyPulse(voltage, duration float64) {
	if duration < 0 {
		panic(fmt.Sprintf("device: negative pulse duration %g", duration))
	}
	if math.Abs(voltage) < m.params.VThreshold {
		if voltage != 0 {
			m.halfSelect++
		}
		return
	}
	// Drift proportional to overdrive and duration.
	over := (math.Abs(voltage) - m.params.VThreshold) / m.params.VThreshold
	delta := m.params.DriftPerNs * duration * (1 + over)
	if voltage > 0 {
		m.x += delta
	} else {
		m.x -= delta
	}
	if m.x > 1 {
		m.x = 1
	}
	if m.x < 0 {
		m.x = 0
	}
}

// HalfSelectEvents returns how many sub-threshold (disturb) pulses the
// device has seen.
func (m *Memristor) HalfSelectEvents() int { return m.halfSelect }

// Program runs a write-verify loop driving the device to the target
// conductance within tol (relative). It returns the number of pulses used
// and whether it converged within maxPulses.
func (m *Memristor) Program(targetState, tol float64, maxPulses int) (pulses int, ok bool) {
	if targetState < 0 || targetState > 1 {
		panic(fmt.Sprintf("device: target state %g out of [0,1]", targetState))
	}
	if tol <= 0 {
		panic(fmt.Sprintf("device: tolerance %g must be positive", tol))
	}
	v := 1.5 * m.params.VThreshold
	for pulses = 0; pulses < maxPulses; pulses++ {
		err := targetState - m.x
		if math.Abs(err) <= tol {
			return pulses, true
		}
		// Short corrective pulses near the target, longer ones far away.
		dur := math.Min(math.Abs(err)/m.params.DriftPerNs/2, 5)
		if dur <= 0 {
			dur = 0.1
		}
		if err > 0 {
			m.ApplyPulse(v, dur)
		} else {
			m.ApplyPulse(-v, dur)
		}
	}
	return pulses, math.Abs(targetState-m.x) <= tol
}
