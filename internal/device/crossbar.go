package device

import (
	"fmt"
	"math"
	"math/rand"
)

// CrossbarParams describes the circuit-level crossbar model.
type CrossbarParams struct {
	// Device is the memristor technology.
	Device MemristorParams
	// RWire is the resistance of one wire segment between adjacent cells
	// (Ω), the source of IR drop.
	RWire float64
	// VRead is the read voltage applied to selected rows.
	VRead float64
	// Tol and MaxSweeps control the nodal solver.
	Tol       float64
	MaxSweeps int
}

// DefaultCrossbarParams returns the calibrated 45 nm crossbar model. RWire
// is set so that the reliability knee of CountReadReliability lands near
// the paper's 64×64 limit (Section 2.1, citing Liang & Wong).
func DefaultCrossbarParams() CrossbarParams {
	return CrossbarParams{
		Device:    DefaultParams(),
		RWire:     0.7,
		VRead:     1.0,
		Tol:       1e-9,
		MaxSweeps: 20000,
	}
}

// Validate reports whether the parameters are sensible.
func (p CrossbarParams) Validate() error {
	if err := p.Device.Validate(); err != nil {
		return err
	}
	if p.RWire < 0 {
		return fmt.Errorf("device: wire resistance %g must be ≥ 0", p.RWire)
	}
	if p.VRead <= 0 {
		return fmt.Errorf("device: read voltage %g must be positive", p.VRead)
	}
	if p.Tol <= 0 || p.MaxSweeps <= 0 {
		return fmt.Errorf("device: solver parameters out of range")
	}
	return nil
}

// Crossbar is an s×s memristor array with explicit wire parasitics.
type Crossbar struct {
	params CrossbarParams
	s      int
	cells  [][]*Memristor // [row][col]
}

// NewCrossbar builds an s×s crossbar with per-device process variation
// drawn from rng. All devices start in the off state.
func NewCrossbar(s int, p CrossbarParams, rng *rand.Rand) (*Crossbar, error) {
	if s <= 0 {
		return nil, fmt.Errorf("device: crossbar size %d must be positive", s)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	cb := &Crossbar{params: p, s: s, cells: make([][]*Memristor, s)}
	for i := range cb.cells {
		cb.cells[i] = make([]*Memristor, s)
		for j := range cb.cells[i] {
			m, err := NewMemristor(p.Device, rng)
			if err != nil {
				return nil, err
			}
			cb.cells[i][j] = m
		}
	}
	return cb, nil
}

// Size returns the crossbar dimension.
func (cb *Crossbar) Size() int { return cb.s }

// Cell returns the device at (row, col).
func (cb *Crossbar) Cell(row, col int) *Memristor {
	if row < 0 || row >= cb.s || col < 0 || col >= cb.s {
		panic(fmt.Sprintf("device: cell (%d,%d) out of %d×%d crossbar", row, col, cb.s, cb.s))
	}
	return cb.cells[row][col]
}

// ProgramPattern write-verifies a binary pattern into the array: true cells
// to the on state, false to off. It returns the total pulse count and the
// number of cells that failed to converge.
func (cb *Crossbar) ProgramPattern(pattern [][]bool, tol float64, maxPulses int) (pulses, failures int) {
	if len(pattern) != cb.s {
		panic(fmt.Sprintf("device: pattern of %d rows for a %d×%d crossbar", len(pattern), cb.s, cb.s))
	}
	for i, row := range pattern {
		if len(row) != cb.s {
			panic(fmt.Sprintf("device: pattern row %d has %d cols, want %d", i, len(row), cb.s))
		}
		for j, on := range row {
			target := 0.0
			if on {
				target = 1.0
			}
			p, ok := cb.cells[i][j].Program(target, tol, maxPulses)
			pulses += p
			if !ok {
				failures++
			}
		}
	}
	return pulses, failures
}

// ReadIdeal returns the column currents under the given row voltages with
// no wire parasitics: I_j = Σ_i V_i·G_ij.
func (cb *Crossbar) ReadIdeal(rowV []float64) []float64 {
	if len(rowV) != cb.s {
		panic(fmt.Sprintf("device: %d row voltages for a %d×%d crossbar", len(rowV), cb.s, cb.s))
	}
	out := make([]float64, cb.s)
	for i, v := range rowV {
		if v == 0 {
			continue
		}
		for j := 0; j < cb.s; j++ {
			out[j] += v * cb.cells[i][j].Conductance()
		}
	}
	return out
}

// Read solves the full resistor network of the crossbar — row wires driven
// at their left ends, column wires sensed at virtual ground at their
// bottom ends, RWire per segment, one memristor per crossing — by
// successive over-relaxation on the nodal equations, and returns the sensed
// column currents. With RWire = 0 it reduces to ReadIdeal.
func (cb *Crossbar) Read(rowV []float64) ([]float64, error) {
	if len(rowV) != cb.s {
		panic(fmt.Sprintf("device: %d row voltages for a %d×%d crossbar", len(rowV), cb.s, cb.s))
	}
	if cb.params.RWire == 0 {
		return cb.ReadIdeal(rowV), nil
	}
	s := cb.s
	gw := 1 / cb.params.RWire
	// Node potentials: vr[i*s+j] on the row wire, vc[i*s+j] on the column
	// wire. Row i is driven at segment j=-1 with fixed rowV[i]; column j is
	// grounded below segment i=s-1.
	vr := make([]float64, s*s)
	vc := make([]float64, s*s)
	g := make([]float64, s*s) // memristor conductances, cached
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			g[i*s+j] = cb.cells[i][j].Conductance()
			vr[i*s+j] = rowV[i] // good initial guess
		}
	}
	const omega = 1.9
	for sweep := 0; sweep < cb.params.MaxSweeps; sweep++ {
		maxDelta := 0.0
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				idx := i*s + j
				// Row node (i,j): neighbours (i,j−1) [or the driver],
				// (i,j+1), and the memristor to the column node.
				num := g[idx] * vc[idx]
				den := g[idx]
				if j == 0 {
					num += gw * rowV[i]
					den += gw
				} else {
					num += gw * vr[idx-1]
					den += gw
				}
				if j < s-1 {
					num += gw * vr[idx+1]
					den += gw
				}
				nv := num / den
				d := nv - vr[idx]
				vr[idx] += omega * d
				if math.Abs(d) > maxDelta {
					maxDelta = math.Abs(d)
				}
				// Column node (i,j): neighbours (i−1,j), (i+1,j) [or the
				// ground sense], and the memristor to the row node.
				num = g[idx] * vr[idx]
				den = g[idx]
				if i > 0 {
					num += gw * vc[idx-s]
					den += gw
				}
				if i == s-1 {
					// Segment to the virtual-ground sense node.
					den += gw
				} else {
					num += gw * vc[idx+s]
					den += gw
				}
				nv = num / den
				d = nv - vc[idx]
				vc[idx] += omega * d
				if math.Abs(d) > maxDelta {
					maxDelta = math.Abs(d)
				}
			}
		}
		if maxDelta < cb.params.Tol*cb.params.VRead {
			// Converged: sense currents through the bottom segments.
			out := make([]float64, s)
			for j := 0; j < s; j++ {
				out[j] = vc[(s-1)*s+j] * gw
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("device: crossbar read failed to converge in %d sweeps", cb.params.MaxSweeps)
}

// ReliabilityResult reports one size point of the reliability sweep.
type ReliabilityResult struct {
	Size        int
	Trials      int
	Correct     int     // trials where every column count was read exactly
	Rate        float64 // Correct/Trials
	WorstSag    float64 // worst relative current loss vs ideal observed
	MeanColErr  float64 // mean |count error| per column
	ProgramFail int     // write-verify failures across all trials
}

// CountReadReliability measures, for a crossbar of the given size, how
// reliably the number of on-devices per column can be read back: each trial
// programs a random binary pattern of the given density, reads all columns
// with every row driven at VRead, estimates each column's on-count by
// dividing the sensed current by the nominal single-device on-current, and
// counts the trial correct when every column matches within the sense
// margin (2.5% of the crossbar size, at least ±1 — the counting tolerance a
// calibrated sense amplifier affords). IR drop and device variation make
// this fail beyond a technology-dependent size — the constraint that caps
// the paper's crossbar library at 64×64.
func CountReadReliability(size, trials int, density float64, p CrossbarParams, seed int64) (*ReliabilityResult, error) {
	if trials <= 0 {
		return nil, fmt.Errorf("device: trials %d must be positive", trials)
	}
	if density < 0 || density > 1 {
		return nil, fmt.Errorf("device: density %g out of [0,1]", density)
	}
	rng := rand.New(rand.NewSource(seed))
	res := &ReliabilityResult{Size: size, Trials: trials}
	unitI := p.VRead * (1/p.Device.ROn - 1/p.Device.ROff) // nominal on minus off baseline
	baseI := p.VRead * (1 / p.Device.ROff)
	rowV := make([]float64, size)
	for i := range rowV {
		rowV[i] = p.VRead
	}
	colErrSum, colErrCount := 0.0, 0
	for t := 0; t < trials; t++ {
		cb, err := NewCrossbar(size, p, rng)
		if err != nil {
			return nil, err
		}
		pattern := make([][]bool, size)
		trueCount := make([]int, size)
		for i := range pattern {
			pattern[i] = make([]bool, size)
			for j := range pattern[i] {
				if rng.Float64() < density {
					pattern[i][j] = true
					trueCount[j]++
				}
			}
		}
		_, fails := cb.ProgramPattern(pattern, 0.02, 200)
		res.ProgramFail += fails
		actual, err := cb.Read(rowV)
		if err != nil {
			return nil, err
		}
		ideal := cb.ReadIdeal(rowV)
		margin := int(math.Ceil(0.025 * float64(size)))
		if margin < 1 {
			margin = 1
		}
		allOK := true
		for j := 0; j < size; j++ {
			if ideal[j] > 0 {
				if sag := 1 - actual[j]/ideal[j]; sag > res.WorstSag {
					res.WorstSag = sag
				}
			}
			est := int(math.Round((actual[j] - float64(size)*baseI) / unitI))
			if est < 0 {
				est = 0
			}
			diff := est - trueCount[j]
			if diff > margin || diff < -margin {
				allOK = false
			}
			colErrSum += math.Abs(float64(diff))
			colErrCount++
		}
		if allOK {
			res.Correct++
		}
	}
	res.Rate = float64(res.Correct) / float64(trials)
	if colErrCount > 0 {
		res.MeanColErr = colErrSum / float64(colErrCount)
	}
	return res, nil
}
