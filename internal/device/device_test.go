package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParamsValidation(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []MemristorParams{
		{ROn: 0, ROff: 1e6, VThreshold: 1, DriftPerNs: 0.02},
		{ROn: 1e6, ROff: 1e4, VThreshold: 1, DriftPerNs: 0.02},
		{ROn: 1e4, ROff: 1e6, VThreshold: 0, DriftPerNs: 0.02},
		{ROn: 1e4, ROff: 1e6, VThreshold: 1, DriftPerNs: 0},
		{ROn: 1e4, ROff: 1e6, VThreshold: 1, DriftPerNs: 0.02, Sigma: -1},
	}
	for i, p := range bad {
		if p.Validate() == nil {
			t.Errorf("bad params %d accepted", i)
		}
	}
}

func newDev(t *testing.T, sigma float64) *Memristor {
	t.Helper()
	p := DefaultParams()
	p.Sigma = sigma
	m, err := NewMemristor(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMemristorStartsOff(t *testing.T) {
	m := newDev(t, 0)
	if m.State() != 0 {
		t.Fatalf("initial state %g", m.State())
	}
	if r := m.Resistance(); math.Abs(r-1e6) > 1 {
		t.Fatalf("initial resistance %g, want ROff", r)
	}
}

func TestPulseBelowThresholdIsDisturbOnly(t *testing.T) {
	m := newDev(t, 0)
	m.ApplyPulse(0.5, 10)
	if m.State() != 0 {
		t.Fatal("sub-threshold pulse changed state")
	}
	if m.HalfSelectEvents() != 1 {
		t.Fatalf("disturb events = %d, want 1", m.HalfSelectEvents())
	}
	m.ApplyPulse(0, 10)
	if m.HalfSelectEvents() != 1 {
		t.Fatal("zero pulse counted as disturb")
	}
}

func TestPulsePolarity(t *testing.T) {
	m := newDev(t, 0)
	m.ApplyPulse(1.5, 5)
	if m.State() <= 0 {
		t.Fatal("positive pulse did not raise state")
	}
	up := m.State()
	m.ApplyPulse(-1.5, 2)
	if m.State() >= up {
		t.Fatal("negative pulse did not lower state")
	}
}

func TestStateSaturates(t *testing.T) {
	m := newDev(t, 0)
	m.ApplyPulse(3, 1e6)
	if m.State() != 1 {
		t.Fatalf("state %g after huge pulse, want 1", m.State())
	}
	if r := m.Resistance(); math.Abs(r-1e4)/1e4 > 1e-9 {
		t.Fatalf("on resistance %g, want ROn", r)
	}
	m.ApplyPulse(-3, 1e6)
	if m.State() != 0 {
		t.Fatalf("state %g after huge reset, want 0", m.State())
	}
}

func TestNegativeDurationPanics(t *testing.T) {
	m := newDev(t, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("negative duration accepted")
		}
	}()
	m.ApplyPulse(2, -1)
}

func TestProgramConverges(t *testing.T) {
	m := newDev(t, 0)
	pulses, ok := m.Program(0.7, 0.01, 500)
	if !ok {
		t.Fatalf("program did not converge in %d pulses", pulses)
	}
	if math.Abs(m.State()-0.7) > 0.01 {
		t.Fatalf("state %g, want 0.7±0.01", m.State())
	}
	// Programming back down converges too.
	if _, ok := m.Program(0.2, 0.01, 500); !ok {
		t.Fatal("down-programming did not converge")
	}
}

func TestProgramInvalidArgsPanic(t *testing.T) {
	m := newDev(t, 0)
	for name, f := range map[string]func(){
		"target": func() { m.Program(1.5, 0.01, 10) },
		"tol":    func() { m.Program(0.5, 0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestProcessVariationSpreadsResistance(t *testing.T) {
	p := DefaultParams()
	p.Sigma = 0.2
	rng := rand.New(rand.NewSource(9))
	seen := map[float64]bool{}
	for i := 0; i < 10; i++ {
		m, err := NewMemristor(p, rng)
		if err != nil {
			t.Fatal(err)
		}
		if m.rOff <= m.rOn {
			t.Fatal("variation inverted the resistance corner")
		}
		seen[m.rOn] = true
	}
	if len(seen) < 5 {
		t.Fatal("process variation produced near-identical devices")
	}
}

func TestCrossbarReadIdealMatchesMatrixProduct(t *testing.T) {
	p := DefaultCrossbarParams()
	p.Device.Sigma = 0
	cb, err := NewCrossbar(4, p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	pattern := [][]bool{
		{true, false, false, true},
		{false, true, false, true},
		{false, false, true, true},
		{false, false, false, false},
	}
	if _, fails := cb.ProgramPattern(pattern, 0.01, 500); fails != 0 {
		t.Fatalf("%d programming failures", fails)
	}
	v := []float64{1, 1, 1, 1}
	ideal := cb.ReadIdeal(v)
	gOn, gOff := 1/p.Device.ROn, 1/p.Device.ROff
	wantCol3 := 3*gOn + 1*gOff // three on-cells plus one off-cell
	if math.Abs(ideal[3]-wantCol3)/wantCol3 > 0.05 {
		t.Fatalf("ideal col 3 current %g, want ≈%g", ideal[3], wantCol3)
	}
}

func TestCrossbarReadZeroWireEqualsIdeal(t *testing.T) {
	p := DefaultCrossbarParams()
	p.RWire = 0
	cb, err := NewCrossbar(3, p, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	cb.Cell(0, 0).Program(1, 0.01, 500)
	v := []float64{1, 0.5, 0}
	actual, err := cb.Read(v)
	if err != nil {
		t.Fatal(err)
	}
	ideal := cb.ReadIdeal(v)
	for j := range ideal {
		if actual[j] != ideal[j] {
			t.Fatalf("col %d: %g != ideal %g", j, actual[j], ideal[j])
		}
	}
}

func TestCrossbarIRDropReducesCurrent(t *testing.T) {
	p := DefaultCrossbarParams()
	p.Device.Sigma = 0
	p.RWire = 5 // exaggerated parasitics
	cb, err := NewCrossbar(16, p, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	pattern := make([][]bool, 16)
	for i := range pattern {
		pattern[i] = make([]bool, 16)
		for j := range pattern[i] {
			pattern[i][j] = true
		}
	}
	cb.ProgramPattern(pattern, 0.02, 500)
	v := make([]float64, 16)
	for i := range v {
		v[i] = 1
	}
	actual, err := cb.Read(v)
	if err != nil {
		t.Fatal(err)
	}
	ideal := cb.ReadIdeal(v)
	for j := range actual {
		if actual[j] >= ideal[j] {
			t.Fatalf("col %d: IR drop did not reduce current (%g vs %g)", j, actual[j], ideal[j])
		}
	}
	// The far column (longest row path) must sag at least as much as the
	// near column.
	sagNear := 1 - actual[0]/ideal[0]
	sagFar := 1 - actual[15]/ideal[15]
	if sagFar < sagNear-1e-9 {
		t.Fatalf("far column sags less (%g) than near column (%g)", sagFar, sagNear)
	}
}

func TestCrossbarInvalidInputs(t *testing.T) {
	p := DefaultCrossbarParams()
	if _, err := NewCrossbar(0, p, rand.New(rand.NewSource(1))); err == nil {
		t.Error("size 0 accepted")
	}
	bad := p
	bad.VRead = 0
	if _, err := NewCrossbar(4, bad, rand.New(rand.NewSource(1))); err == nil {
		t.Error("bad params accepted")
	}
	cb, err := NewCrossbar(3, p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]func(){
		"cell":        func() { cb.Cell(3, 0) },
		"read len":    func() { cb.Read([]float64{1}) },
		"pattern len": func() { cb.ProgramPattern([][]bool{{true}}, 0.01, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestReliabilityDegradesWithSize(t *testing.T) {
	p := DefaultCrossbarParams()
	small, err := CountReadReliability(8, 5, 0.3, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	large, err := CountReadReliability(48, 5, 0.3, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if small.Rate < large.Rate {
		t.Fatalf("reliability grew with size: %g → %g", small.Rate, large.Rate)
	}
	if small.Rate < 0.8 {
		t.Fatalf("8×8 crossbar unreliable (%g) — model miscalibrated", small.Rate)
	}
	if large.WorstSag <= small.WorstSag {
		t.Fatalf("IR sag did not grow with size: %g vs %g", large.WorstSag, small.WorstSag)
	}
}

func TestReliabilityInputValidation(t *testing.T) {
	p := DefaultCrossbarParams()
	if _, err := CountReadReliability(8, 0, 0.3, p, 1); err == nil {
		t.Error("0 trials accepted")
	}
	if _, err := CountReadReliability(8, 2, 1.5, p, 1); err == nil {
		t.Error("density 1.5 accepted")
	}
}

// Property: conductance is always within the (per-instance) on/off corner
// and monotone in state.
func TestConductanceBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewMemristor(DefaultParams(), rng)
		if err != nil {
			return false
		}
		prev := m.Conductance()
		for k := 0; k < 20; k++ {
			m.ApplyPulse(1.5, rng.Float64()*3)
			g := m.Conductance()
			if g < prev-1e-15 { // positive pulses only: monotone up
				return false
			}
			if g < 1/m.rOff-1e-15 || g > 1/m.rOn+1e-15 {
				return false
			}
			prev = g
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
