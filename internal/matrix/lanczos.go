package matrix

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// MulVecFunc applies a symmetric linear operator: dst = A·src.
// dst and src never alias.
type MulVecFunc func(dst, src []float64)

// LanczosWS holds the reusable storage of a Lanczos solve: the Krylov basis
// (the dominant allocation, steps×n floats), the iteration vectors, the
// reorthogonalization projection scratch, and the tridiagonal eigenvector
// matrix. A zero LanczosWS is ready to use; buffers grow on demand and are
// retained between solves, so a caller running many solves of similar size
// (the ISC loop re-embedding the remaining network every iteration) pays the
// large allocations once instead of per iteration.
//
// A workspace must not be shared by concurrent solves. Reuse never changes
// results: every buffer is fully overwritten before it is read.
type LanczosWS struct {
	basisBuf []float64
	basis    [][]float64
	v, w     []float64
	alpha    []float64
	beta     []float64
	proj     []float64
	zBuf     []float64

	// Adaptive-solver state (LanczosSmallestFrom): tridiagonal scratch, the
	// ws-owned output the warm path returns, and the selection buffers of
	// the allocation-free smallest-k extraction.
	dwork   []float64
	ework   []float64
	valBuf  []float64
	outBuf  []float64
	out     Dense
	zwork   Dense
	selBuf  []int32
	usedBuf []bool
	resY    []float64 // assembled Ritz vector of the residual verification
	resAY   []float64 // A·y of the residual verification
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// prepare sizes the workspace for a solve of the given step bound and
// dimension and returns the basis row headers (length 0, capacity steps).
func (ws *LanczosWS) prepare(steps, n int) {
	ws.basisBuf = growFloats(ws.basisBuf, steps*n)
	if cap(ws.basis) < steps {
		ws.basis = make([][]float64, 0, steps)
	}
	ws.basis = ws.basis[:0]
	ws.v = growFloats(ws.v, n)
	ws.w = growFloats(ws.w, n)
	ws.alpha = growFloats(ws.alpha, steps)[:0]
	ws.beta = growFloats(ws.beta, steps)[:0]
	ws.proj = growFloats(ws.proj, steps)
}

// LanczosSmallest computes approximations to the k smallest eigenpairs of
// a symmetric n×n operator given only by matrix-vector products, using the
// Lanczos iteration with full reorthogonalization and an eigensolve of the
// tridiagonal Krylov projection.
//
// It runs min(n, max(4k+40, 10k)) Lanczos steps, which is accurate for the
// well-separated extremal spectra of clustered graph Laplacians — the use
// case here: spectral clustering of networks too large for the dense O(n³)
// solver. On gapless spectra (dense random matrices, strong expanders) the
// interior of the returned set converges only to clustering-grade accuracy.
// The returned eigenvalues ascend; the i-th column of the returned matrix
// is the Ritz vector for the i-th value. rng seeds the start vector, making
// results deterministic for a fixed source.
func LanczosSmallest(mul MulVecFunc, n, k int, rng *rand.Rand) (values []float64, vectors *Dense, err error) {
	return LanczosSmallestN(mul, n, k, rng, 1)
}

// LanczosSmallestN is LanczosSmallest on a bounded worker pool (0 = package
// default). The reorthogonalization fans its dot products out over basis
// vectors and its update over fixed-size element chunks, and the Ritz-vector
// assembly parallelizes over row chunks; each kernel keeps a floating-point
// evaluation order fixed by the input alone, so the result is bit-identical
// for any worker count. The rng is consumed only on the calling goroutine.
func LanczosSmallestN(mul MulVecFunc, n, k int, rng *rand.Rand, workers int) (values []float64, vectors *Dense, err error) {
	return LanczosSmallestWS(nil, mul, n, k, rng, workers)
}

// LanczosSmallestWS is LanczosSmallestN drawing all iteration storage from
// ws (nil = allocate fresh). The returned values and vectors never alias the
// workspace, so they survive its next use.
func LanczosSmallestWS(ws *LanczosWS, mul MulVecFunc, n, k int, rng *rand.Rand, workers int) (values []float64, vectors *Dense, err error) {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("matrix: LanczosSmallest k=%d out of (0,%d]", k, n))
	}
	if ws == nil {
		ws = &LanczosWS{}
	}
	steps := 10 * k
	if m := 4*k + 40; m > steps {
		steps = m
	}
	if steps > n {
		steps = n
	}
	// Lanczos basis (full reorthogonalization keeps it numerically
	// orthonormal; memory is steps×n, reused across solves via ws).
	ws.prepare(steps, n)
	basis := ws.basis
	alpha := ws.alpha
	beta := ws.beta // beta[i] couples basis[i] and basis[i+1]

	v := ws.v
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)
	w := ws.w
	for j := 0; j < steps; j++ {
		row := ws.basisBuf[j*n : (j+1)*n]
		copy(row, v)
		basis = append(basis, row)
		mul(w, v)
		a := dotVec(w, v)
		alpha = append(alpha, a)
		// w ← w − a·v − β_{j−1}·v_{j−1}
		for i := range w {
			w[i] -= a * v[i]
		}
		if j > 0 {
			b := beta[j-1]
			prev := basis[j-1]
			for i := range w {
				w[i] -= b * prev[i]
			}
		}
		// Full reorthogonalization (two classical Gram-Schmidt passes —
		// "twice is enough").
		orthogonalize(w, basis, ws.proj, workers)
		b := math.Sqrt(dotVec(w, w))
		if j == steps-1 {
			break
		}
		if b < 1e-13 {
			// Invariant subspace found: restart with a fresh random
			// direction orthogonal to the basis. The tridiagonal coupling
			// to the new block is exactly zero — recording the restart
			// vector's norm instead would corrupt the projection.
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			orthogonalize(w, basis, ws.proj, workers)
			nb := math.Sqrt(dotVec(w, w))
			if nb < 1e-13 {
				// The basis spans the whole reachable space.
				break
			}
			beta = append(beta, 0)
			for i := range w {
				v[i] = w[i] / nb
			}
			continue
		}
		beta = append(beta, b)
		for i := range w {
			v[i] = w[i] / b
		}
	}
	m := len(basis)
	if k > m {
		k = m
	}
	// Eigensolve the m×m tridiagonal projection. d and e are per-call: d's
	// head is returned as the eigenvalues and must outlive the workspace.
	d := append([]float64(nil), alpha[:m]...)
	e := make([]float64, m)
	copy(e[1:], beta[:m-1])
	ws.zBuf = growFloats(ws.zBuf, m*m)
	z := &Dense{rows: m, cols: m, data: ws.zBuf}
	for i := range z.data {
		z.data[i] = 0
	}
	for i := 0; i < m; i++ {
		z.data[i*m+i] = 1
	}
	if err := tql2(z, d, e); err != nil {
		return nil, nil, fmt.Errorf("matrix: Lanczos projection eigensolve: %w", err)
	}
	sortEig(d, z)
	// Assemble the k smallest Ritz pairs. The accumulation into each output
	// element runs in ascending basis order j — the same order the naive
	// per-row triple loop uses — but iterates j outer over fixed row chunks
	// so basis rows and z rows stream contiguously instead of stride-n.
	// Chunk boundaries depend only on n, so the result is worker-count
	// independent.
	values = d[:k]
	vectors = NewDense(n, k)
	kk := k
	parallel.ForChunks(workers, n, ritzChunk, func(_, lo, hi int) {
		for j := 0; j < m; j++ {
			bj := basis[j]
			zrow := z.data[j*m : j*m+kk]
			for row := lo; row < hi; row++ {
				b := bj[row]
				vrow := vectors.data[row*kk : (row+1)*kk]
				for col, zv := range zrow {
					vrow[col] += b * zv
				}
			}
		}
	})
	return values, vectors, nil
}

// orthoChunk and ritzChunk are the fixed element-chunk sizes of the blocked
// kernels: small enough that a chunk of the target vector stays cache-
// resident while every basis row streams past it, large enough to amortize
// scheduling. Being constants, they keep chunk boundaries — and therefore
// floating-point evaluation order — independent of the worker count.
const (
	orthoChunk = 512
	ritzChunk  = 64
)

// orthogonalize removes from w its components along the (orthonormal) basis
// vectors with two classical Gram-Schmidt passes, using proj (capacity ≥
// len(basis)) as the projection scratch. Within a pass, the dot products
// against distinct basis vectors fan out across the pool (each dot is a
// fixed-order serial sum), then the update sweeps the basis in ascending
// order over fixed-size element chunks — basis rows stream contiguously
// (the stride-n per-element loop this replaces missed cache on every basis
// row) and chunk boundaries never depend on the worker count, so the result
// is bit-identical for any pool size.
func orthogonalize(w []float64, basis [][]float64, proj []float64, workers int) {
	m := len(basis)
	if m == 0 {
		return
	}
	d := proj[:m]
	for pass := 0; pass < 2; pass++ {
		parallel.For(workers, m, func(j int) { d[j] = dotVec(w, basis[j]) })
		parallel.ForChunks(workers, len(w), orthoChunk, func(_, lo, hi int) {
			for j := 0; j < m; j++ {
				dj := d[j]
				bj := basis[j][lo:hi]
				wc := w[lo:hi]
				for i := range wc {
					wc[i] -= dj * bj[i]
				}
			}
		})
	}
}

// NormalizedLaplacianOp returns the matvec of the symmetric normalized
// Laplacian L_sym = I − D^{-1/2}·W·D^{-1/2} for a weighted adjacency given
// by the neighbor iterator: forEach(i, fn) must call fn(j, w_ij) for every
// neighbor j of i. deg must hold the (positive) degrees d_i = Σ_j w_ij.
// Generalized eigenvectors of L·u = λ·D·u are D^{-1/2} times the
// eigenvectors of L_sym, with identical eigenvalues — the relationship
// spectral clustering uses.
func NormalizedLaplacianOp(n int, deg []float64, forEach func(i int, fn func(j int, w float64))) (MulVecFunc, error) {
	return NormalizedLaplacianOpN(n, deg, forEach, 1)
}

// NormalizedLaplacianOpN is NormalizedLaplacianOp with the matvec fanned out
// over rows on a bounded worker pool (0 = package default). Each dst[i] is
// an independent fixed-order accumulation, so the product is bit-identical
// for any worker count. forEach may be called concurrently for distinct
// rows and must therefore be re-entrant (read-only on shared state) and
// allocation-free if the matvec is to stay allocation-free.
func NormalizedLaplacianOpN(n int, deg []float64, forEach func(i int, fn func(j int, w float64)), workers int) (MulVecFunc, error) {
	if len(deg) != n {
		return nil, fmt.Errorf("matrix: %d degrees for n=%d", len(deg), n)
	}
	invSqrt := make([]float64, n)
	for i, d := range deg {
		if d <= 0 {
			return nil, fmt.Errorf("matrix: non-positive degree %g at %d", d, i)
		}
		invSqrt[i] = 1 / math.Sqrt(d)
	}
	return func(dst, src []float64) {
		parallel.For(workers, n, func(i int) {
			acc := 0.0
			forEach(i, func(j int, w float64) {
				acc += w * invSqrt[j] * src[j]
			})
			dst[i] = src[i] - invSqrt[i]*acc
		})
	}, nil
}

// NormalizedLaplacianCSRN is the CSR specialization of
// NormalizedLaplacianOpN for unit-weight adjacency: row i's neighbors are
// col[rowPtr[i]:rowPtr[i+1]]. Walking the index slices inline — instead of
// calling back through a neighbor iterator — keeps each row's accumulation
// free of the per-row closure the generic form costs, so a product performs
// no allocation beyond the bounded worker-dispatch residue. Accumulation
// order (ascending neighbors) and arithmetic match the generic operator
// exactly, so results are bit-identical to it.
func NormalizedLaplacianCSRN(n int, deg []float64, rowPtr, col []int32, workers int) (MulVecFunc, error) {
	if len(deg) != n {
		return nil, fmt.Errorf("matrix: %d degrees for n=%d", len(deg), n)
	}
	if len(rowPtr) != n+1 {
		return nil, fmt.Errorf("matrix: %d row pointers for n=%d", len(rowPtr), n)
	}
	invSqrt := make([]float64, n)
	for i, d := range deg {
		if d <= 0 {
			return nil, fmt.Errorf("matrix: non-positive degree %g at %d", d, i)
		}
		invSqrt[i] = 1 / math.Sqrt(d)
	}
	return func(dst, src []float64) {
		parallel.For(workers, n, func(i int) {
			acc := 0.0
			for _, j := range col[rowPtr[i]:rowPtr[i+1]] {
				acc += invSqrt[j] * src[j]
			}
			dst[i] = src[i] - invSqrt[i]*acc
		})
	}, nil
}

// NormalizedLaplacianWeightedCSRN is NormalizedLaplacianCSRN for a weighted
// adjacency: w holds the edge weights parallel to col, and deg the weighted
// degrees. The multilevel clustering engine uses it on coarse graphs, where
// an edge weight counts the fine connections it represents.
func NormalizedLaplacianWeightedCSRN(n int, deg []float64, rowPtr, col []int32, w []float64, workers int) (MulVecFunc, error) {
	if len(deg) != n {
		return nil, fmt.Errorf("matrix: %d degrees for n=%d", len(deg), n)
	}
	if len(rowPtr) != n+1 {
		return nil, fmt.Errorf("matrix: %d row pointers for n=%d", len(rowPtr), n)
	}
	if len(w) != len(col) {
		return nil, fmt.Errorf("matrix: %d edge weights for %d columns", len(w), len(col))
	}
	invSqrt := make([]float64, n)
	for i, d := range deg {
		if d <= 0 {
			return nil, fmt.Errorf("matrix: non-positive degree %g at %d", d, i)
		}
		invSqrt[i] = 1 / math.Sqrt(d)
	}
	return func(dst, src []float64) {
		parallel.For(workers, n, func(i int) {
			acc := 0.0
			lo, hi := rowPtr[i], rowPtr[i+1]
			for e := lo; e < hi; e++ {
				acc += w[e] * invSqrt[col[e]] * src[col[e]]
			}
			dst[i] = src[i] - invSqrt[i]*acc
		})
	}, nil
}

// CSRLaplacianOp is the reusable-state form of NormalizedLaplacianCSRN: Init
// rebinds it to a new (restricted) CSR without allocating once its invSqrt
// buffer has grown, and Mul is a plain method — a caller that stores the
// bound method value once (op := o.Mul) gets a MulVecFunc whose per-solve
// setup performs zero steady-state allocations, which the closure-returning
// constructors cannot offer. With Workers ≤ 1 the product runs as an inline
// serial loop (no pool dispatch, no closure); the parallel path computes
// each row in the identical fixed order, so results are bit-identical for
// any worker count.
type CSRLaplacianOp struct {
	n       int
	rowPtr  []int32
	col     []int32
	invSqrt []float64
	workers int
}

// Init points the operator at a unit-weight CSR adjacency. The index slices
// are retained, not copied; invSqrt storage is reused across Inits.
func (o *CSRLaplacianOp) Init(n int, deg []float64, rowPtr, col []int32, workers int) error {
	if len(deg) != n {
		return fmt.Errorf("matrix: %d degrees for n=%d", len(deg), n)
	}
	if len(rowPtr) != n+1 {
		return fmt.Errorf("matrix: %d row pointers for n=%d", len(rowPtr), n)
	}
	o.invSqrt = growFloats(o.invSqrt, n)
	for i, d := range deg {
		if d <= 0 {
			return fmt.Errorf("matrix: non-positive degree %g at %d", d, i)
		}
		o.invSqrt[i] = 1 / math.Sqrt(d)
	}
	o.n, o.rowPtr, o.col, o.workers = n, rowPtr, col, workers
	return nil
}

// Mul applies dst = L_sym·src. Arithmetic and accumulation order match
// NormalizedLaplacianCSRN exactly.
func (o *CSRLaplacianOp) Mul(dst, src []float64) {
	if o.workers <= 1 {
		for i := 0; i < o.n; i++ {
			acc := 0.0
			for _, j := range o.col[o.rowPtr[i]:o.rowPtr[i+1]] {
				acc += o.invSqrt[j] * src[j]
			}
			dst[i] = src[i] - o.invSqrt[i]*acc
		}
		return
	}
	n, invSqrt, rowPtr, col := o.n, o.invSqrt, o.rowPtr, o.col
	parallel.For(o.workers, n, func(i int) {
		acc := 0.0
		for _, j := range col[rowPtr[i]:rowPtr[i+1]] {
			acc += invSqrt[j] * src[j]
		}
		dst[i] = src[i] - invSqrt[i]*acc
	})
}

// adaptive-stop tuning of LanczosSmallestFrom: the first residual check runs
// once the basis can resolve k pairs with headroom, then repeats on a fixed
// cadence. Constants, so the checked step set — and therefore the result —
// depends only on (n, k) and the convergence history, never on workers.
const (
	adaptMinSteps   = 16 // first check at 2k+adaptMinSteps basis vectors
	adaptCheckEvery = 32
	adaptTol        = 1e-6 // β·|z| screen, relative to the spectral scale
	// adaptResTol is the verified-residual stop threshold. The β·|z| bound
	// only screens: with full reorthogonalization the recurrence carries
	// corrections the tridiagonal never sees, so the bound can undershoot
	// the true residual by orders of magnitude (most of all on warm starts,
	// whose converged directions regrow every step). A pair counts as
	// converged only when its assembled Ritz vector satisfies
	// ‖A·y − θ·y‖ ≤ adaptResTol·scale — clustering-grade accuracy.
	adaptResTol = 1e-4
)

// LanczosSmallestFrom is the warm-start entry point of the solver: the
// iteration starts from the caller's vector (the previous Ritz basis of a
// monotonically shrinking ISC subgraph, collapsed onto the current active
// set) instead of a random direction, and terminates early once the Ritz
// residual bound β_m·|z_{m,i}| certifies the k smallest pairs to
// clustering-grade accuracy — warm starts land in the target invariant
// subspace, so the adaptive stop is what converts them into saved steps.
// A degenerate start (zero norm) falls back to an rng-seeded random vector,
// making the cold behaviour deterministic too.
//
// Unlike LanczosSmallestWS, the returned values and vectors live in ws and
// are valid only until its next use; steps reports the Krylov dimension
// reached. With workers ≤ 1 every kernel runs as an inline serial loop in
// the same evaluation order as the chunked parallel path, so the solve is
// allocation-free once ws has grown and bit-identical for any worker count.
func LanczosSmallestFrom(ws *LanczosWS, mul MulVecFunc, n, k int, start []float64, rng *rand.Rand, workers int) (values []float64, vectors *Dense, steps int, err error) {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("matrix: LanczosSmallestFrom k=%d out of (0,%d]", k, n))
	}
	maxSteps := 10 * k
	if m := 4*k + 40; m > maxSteps {
		maxSteps = m
	}
	if maxSteps > n {
		maxSteps = n
	}
	ws.prepare(maxSteps, n)
	basis := ws.basis
	alpha := ws.alpha
	beta := ws.beta

	v := ws.v
	norm0 := 0.0
	if len(start) == n {
		copy(v, start)
		norm0 = math.Sqrt(dotVec(v, v))
	}
	if norm0 < 1e-300 {
		for i := range v {
			v[i] = rng.NormFloat64()
		}
	}
	normalize(v)

	firstCheck := 2*k + adaptMinSteps
	w := ws.w
	m := 0
	for j := 0; j < maxSteps; j++ {
		row := ws.basisBuf[j*n : (j+1)*n]
		copy(row, v)
		basis = append(basis, row)
		m = j + 1
		mul(w, v)
		a := dotVec(w, v)
		alpha = append(alpha, a)
		for i := range w {
			w[i] -= a * v[i]
		}
		if j > 0 {
			b := beta[j-1]
			prev := basis[j-1]
			for i := range w {
				w[i] -= b * prev[i]
			}
		}
		orthogonalizeN(w, basis, ws.proj, workers)
		b := math.Sqrt(dotVec(w, w))
		if j == maxSteps-1 {
			break
		}
		if m >= k && m >= firstCheck && (m-firstCheck)%adaptCheckEvery == 0 &&
			ws.converged(mul, basis, alpha, beta, b, k, n) {
			break
		}
		if b < 1e-13 {
			// Invariant subspace: restart orthogonally, exactly like the
			// fixed-step solver.
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			orthogonalizeN(w, basis, ws.proj, workers)
			nb := math.Sqrt(dotVec(w, w))
			if nb < 1e-13 {
				break
			}
			beta = append(beta, 0)
			for i := range w {
				v[i] = w[i] / nb
			}
			continue
		}
		beta = append(beta, b)
		for i := range w {
			v[i] = w[i] / b
		}
	}
	if k > m {
		k = m
	}
	// Final tridiagonal eigensolve and Ritz assembly into ws-owned output.
	ws.dwork = growFloats(ws.dwork, m)
	ws.ework = growFloats(ws.ework, m)
	d := ws.dwork
	e := ws.ework
	copy(d, alpha[:m])
	for i := range e {
		e[i] = 0
	}
	copy(e[1:], beta[:min(m-1, len(beta))])
	z := ws.identity(m)
	if err := tql2(z, d, e); err != nil {
		return nil, nil, m, fmt.Errorf("matrix: Lanczos projection eigensolve: %w", err)
	}
	sel := ws.selectSmallest(d, k)
	ws.valBuf = growFloats(ws.valBuf, k)
	for i, s := range sel {
		ws.valBuf[i] = d[s]
	}
	ws.outBuf = growFloats(ws.outBuf, n*k)
	ws.out = Dense{rows: n, cols: k, data: ws.outBuf[:n*k]}
	out := ws.out.data
	for i := range out {
		out[i] = 0
	}
	if workers <= 1 {
		for j := 0; j < m; j++ {
			bj := basis[j]
			zrow := z.data[j*m : (j+1)*m]
			for row := 0; row < n; row++ {
				b := bj[row]
				vrow := out[row*k : (row+1)*k]
				for col, s := range sel {
					vrow[col] += b * zrow[s]
				}
			}
		}
	} else {
		kk := k
		parallel.ForChunks(workers, n, ritzChunk, func(_, lo, hi int) {
			for j := 0; j < m; j++ {
				bj := basis[j]
				zrow := z.data[j*m : (j+1)*m]
				for row := lo; row < hi; row++ {
					b := bj[row]
					vrow := out[row*kk : (row+1)*kk]
					for col, s := range sel {
						vrow[col] += b * zrow[s]
					}
				}
			}
		})
	}
	return ws.valBuf[:k], &ws.out, m, nil
}

// converged decides the adaptive stop at basis size m = len(alpha) in two
// phases. First the cheap screen: eigensolve a copy of the tridiagonal
// projection and require every one of the k smallest pairs to pass the
// a-posteriori bound β_m·|z_{m,i}| ≤ adaptTol·scale (in exact arithmetic
// this IS the residual, so an unconverged basis rarely reaches phase two).
// Then the verification: assemble each candidate Ritz vector y = V·z_i and
// require the true residual ‖A·y − θ·y‖ ≤ adaptResTol·scale — the screen
// alone undershoots badly once reorthogonalization corrections (invisible
// to the tridiagonal) dominate, which is exactly the warm-start regime.
// The assembly is strictly serial and mul is bit-identical for any worker
// count, so the stop decision — and therefore the solve — is too.
func (ws *LanczosWS) converged(mul MulVecFunc, basis [][]float64, alpha, beta []float64, bNext float64, k, n int) bool {
	m := len(alpha)
	ws.dwork = growFloats(ws.dwork, m)
	ws.ework = growFloats(ws.ework, m)
	d := ws.dwork
	e := ws.ework
	copy(d, alpha)
	for i := range e {
		e[i] = 0
	}
	copy(e[1:], beta[:min(m-1, len(beta))])
	z := ws.identity(m)
	if tql2(z, d, e) != nil {
		return false
	}
	sel := ws.selectSmallest(d, k)
	scale := 0.0
	for _, v := range d[:m] {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if scale == 0 {
		scale = 1
	}
	for _, s := range sel {
		if bNext*math.Abs(z.data[(m-1)*m+int(s)]) > adaptTol*scale {
			return false
		}
	}
	// Screen passed: verify the true residuals.
	ws.resY = growFloats(ws.resY, n)
	ws.resAY = growFloats(ws.resAY, n)
	y, ay := ws.resY, ws.resAY
	for _, s := range sel {
		for i := range y {
			y[i] = 0
		}
		for j := 0; j < m; j++ {
			zj := z.data[j*m+int(s)]
			if zj == 0 {
				continue
			}
			bj := basis[j]
			for i := range y {
				y[i] += zj * bj[i]
			}
		}
		mul(ay, y)
		theta := d[s]
		res := 0.0
		for i := range y {
			r := ay[i] - theta*y[i]
			res += r * r
		}
		if math.Sqrt(res) > adaptResTol*scale {
			return false
		}
	}
	return true
}

// identity sizes zBuf as an m×m identity and returns a Dense header over it.
func (ws *LanczosWS) identity(m int) *Dense {
	ws.zBuf = growFloats(ws.zBuf, m*m)
	ws.zwork = Dense{rows: m, cols: m, data: ws.zBuf[:m*m]}
	z := &ws.zwork
	for i := range z.data {
		z.data[i] = 0
	}
	for i := 0; i < m; i++ {
		z.data[i*m+i] = 1
	}
	return z
}

// selectSmallest returns the indices of the k smallest entries of d in
// ascending value order (ties toward the lower index) without sorting d —
// an allocation-free replacement for sortEig in the adaptive solver, whose
// workspace retains the selection buffer.
func (ws *LanczosWS) selectSmallest(d []float64, k int) []int32 {
	m := len(d)
	if cap(ws.selBuf) < k {
		ws.selBuf = make([]int32, k)
	}
	sel := ws.selBuf[:k]
	if cap(ws.usedBuf) < m {
		ws.usedBuf = make([]bool, m)
	}
	used := ws.usedBuf[:m]
	for i := range used {
		used[i] = false
	}
	for i := 0; i < k; i++ {
		best := -1
		for j := 0; j < m; j++ {
			if used[j] {
				continue
			}
			if best < 0 || d[j] < d[best] {
				best = j
			}
		}
		used[best] = true
		sel[i] = int32(best)
	}
	return sel
}

// orthogonalizeN is orthogonalize with an inline serial path for workers ≤ 1:
// identical arithmetic in the identical order (per-element updates sweep the
// basis in ascending j for both paths), but free of the per-call closure
// allocations the pool dispatch costs — the warm ISC loop's zero-allocation
// pin runs through here.
func orthogonalizeN(w []float64, basis [][]float64, proj []float64, workers int) {
	if workers > 1 {
		orthogonalize(w, basis, proj, workers)
		return
	}
	m := len(basis)
	if m == 0 {
		return
	}
	d := proj[:m]
	for pass := 0; pass < 2; pass++ {
		for j := 0; j < m; j++ {
			d[j] = dotVec(w, basis[j])
		}
		for lo := 0; lo < len(w); lo += orthoChunk {
			hi := lo + orthoChunk
			if hi > len(w) {
				hi = len(w)
			}
			for j := 0; j < m; j++ {
				dj := d[j]
				bj := basis[j][lo:hi]
				wc := w[lo:hi]
				for i := range wc {
					wc[i] -= dj * bj[i]
				}
			}
		}
	}
}

func normalize(v []float64) {
	n := math.Sqrt(dotVec(v, v))
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func dotVec(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
