package matrix

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// MulVecFunc applies a symmetric linear operator: dst = A·src.
// dst and src never alias.
type MulVecFunc func(dst, src []float64)

// LanczosWS holds the reusable storage of a Lanczos solve: the Krylov basis
// (the dominant allocation, steps×n floats), the iteration vectors, the
// reorthogonalization projection scratch, and the tridiagonal eigenvector
// matrix. A zero LanczosWS is ready to use; buffers grow on demand and are
// retained between solves, so a caller running many solves of similar size
// (the ISC loop re-embedding the remaining network every iteration) pays the
// large allocations once instead of per iteration.
//
// A workspace must not be shared by concurrent solves. Reuse never changes
// results: every buffer is fully overwritten before it is read.
type LanczosWS struct {
	basisBuf []float64
	basis    [][]float64
	v, w     []float64
	alpha    []float64
	beta     []float64
	proj     []float64
	zBuf     []float64
}

func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// prepare sizes the workspace for a solve of the given step bound and
// dimension and returns the basis row headers (length 0, capacity steps).
func (ws *LanczosWS) prepare(steps, n int) {
	ws.basisBuf = growFloats(ws.basisBuf, steps*n)
	if cap(ws.basis) < steps {
		ws.basis = make([][]float64, 0, steps)
	}
	ws.basis = ws.basis[:0]
	ws.v = growFloats(ws.v, n)
	ws.w = growFloats(ws.w, n)
	ws.alpha = growFloats(ws.alpha, steps)[:0]
	ws.beta = growFloats(ws.beta, steps)[:0]
	ws.proj = growFloats(ws.proj, steps)
}

// LanczosSmallest computes approximations to the k smallest eigenpairs of
// a symmetric n×n operator given only by matrix-vector products, using the
// Lanczos iteration with full reorthogonalization and an eigensolve of the
// tridiagonal Krylov projection.
//
// It runs min(n, max(4k+40, 10k)) Lanczos steps, which is accurate for the
// well-separated extremal spectra of clustered graph Laplacians — the use
// case here: spectral clustering of networks too large for the dense O(n³)
// solver. On gapless spectra (dense random matrices, strong expanders) the
// interior of the returned set converges only to clustering-grade accuracy.
// The returned eigenvalues ascend; the i-th column of the returned matrix
// is the Ritz vector for the i-th value. rng seeds the start vector, making
// results deterministic for a fixed source.
func LanczosSmallest(mul MulVecFunc, n, k int, rng *rand.Rand) (values []float64, vectors *Dense, err error) {
	return LanczosSmallestN(mul, n, k, rng, 1)
}

// LanczosSmallestN is LanczosSmallest on a bounded worker pool (0 = package
// default). The reorthogonalization fans its dot products out over basis
// vectors and its update over fixed-size element chunks, and the Ritz-vector
// assembly parallelizes over row chunks; each kernel keeps a floating-point
// evaluation order fixed by the input alone, so the result is bit-identical
// for any worker count. The rng is consumed only on the calling goroutine.
func LanczosSmallestN(mul MulVecFunc, n, k int, rng *rand.Rand, workers int) (values []float64, vectors *Dense, err error) {
	return LanczosSmallestWS(nil, mul, n, k, rng, workers)
}

// LanczosSmallestWS is LanczosSmallestN drawing all iteration storage from
// ws (nil = allocate fresh). The returned values and vectors never alias the
// workspace, so they survive its next use.
func LanczosSmallestWS(ws *LanczosWS, mul MulVecFunc, n, k int, rng *rand.Rand, workers int) (values []float64, vectors *Dense, err error) {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("matrix: LanczosSmallest k=%d out of (0,%d]", k, n))
	}
	if ws == nil {
		ws = &LanczosWS{}
	}
	steps := 10 * k
	if m := 4*k + 40; m > steps {
		steps = m
	}
	if steps > n {
		steps = n
	}
	// Lanczos basis (full reorthogonalization keeps it numerically
	// orthonormal; memory is steps×n, reused across solves via ws).
	ws.prepare(steps, n)
	basis := ws.basis
	alpha := ws.alpha
	beta := ws.beta // beta[i] couples basis[i] and basis[i+1]

	v := ws.v
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)
	w := ws.w
	for j := 0; j < steps; j++ {
		row := ws.basisBuf[j*n : (j+1)*n]
		copy(row, v)
		basis = append(basis, row)
		mul(w, v)
		a := dotVec(w, v)
		alpha = append(alpha, a)
		// w ← w − a·v − β_{j−1}·v_{j−1}
		for i := range w {
			w[i] -= a * v[i]
		}
		if j > 0 {
			b := beta[j-1]
			prev := basis[j-1]
			for i := range w {
				w[i] -= b * prev[i]
			}
		}
		// Full reorthogonalization (two classical Gram-Schmidt passes —
		// "twice is enough").
		orthogonalize(w, basis, ws.proj, workers)
		b := math.Sqrt(dotVec(w, w))
		if j == steps-1 {
			break
		}
		if b < 1e-13 {
			// Invariant subspace found: restart with a fresh random
			// direction orthogonal to the basis. The tridiagonal coupling
			// to the new block is exactly zero — recording the restart
			// vector's norm instead would corrupt the projection.
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			orthogonalize(w, basis, ws.proj, workers)
			nb := math.Sqrt(dotVec(w, w))
			if nb < 1e-13 {
				// The basis spans the whole reachable space.
				break
			}
			beta = append(beta, 0)
			for i := range w {
				v[i] = w[i] / nb
			}
			continue
		}
		beta = append(beta, b)
		for i := range w {
			v[i] = w[i] / b
		}
	}
	m := len(basis)
	if k > m {
		k = m
	}
	// Eigensolve the m×m tridiagonal projection. d and e are per-call: d's
	// head is returned as the eigenvalues and must outlive the workspace.
	d := append([]float64(nil), alpha[:m]...)
	e := make([]float64, m)
	copy(e[1:], beta[:m-1])
	ws.zBuf = growFloats(ws.zBuf, m*m)
	z := &Dense{rows: m, cols: m, data: ws.zBuf}
	for i := range z.data {
		z.data[i] = 0
	}
	for i := 0; i < m; i++ {
		z.data[i*m+i] = 1
	}
	if err := tql2(z, d, e); err != nil {
		return nil, nil, fmt.Errorf("matrix: Lanczos projection eigensolve: %w", err)
	}
	sortEig(d, z)
	// Assemble the k smallest Ritz pairs. The accumulation into each output
	// element runs in ascending basis order j — the same order the naive
	// per-row triple loop uses — but iterates j outer over fixed row chunks
	// so basis rows and z rows stream contiguously instead of stride-n.
	// Chunk boundaries depend only on n, so the result is worker-count
	// independent.
	values = d[:k]
	vectors = NewDense(n, k)
	kk := k
	parallel.ForChunks(workers, n, ritzChunk, func(_, lo, hi int) {
		for j := 0; j < m; j++ {
			bj := basis[j]
			zrow := z.data[j*m : j*m+kk]
			for row := lo; row < hi; row++ {
				b := bj[row]
				vrow := vectors.data[row*kk : (row+1)*kk]
				for col, zv := range zrow {
					vrow[col] += b * zv
				}
			}
		}
	})
	return values, vectors, nil
}

// orthoChunk and ritzChunk are the fixed element-chunk sizes of the blocked
// kernels: small enough that a chunk of the target vector stays cache-
// resident while every basis row streams past it, large enough to amortize
// scheduling. Being constants, they keep chunk boundaries — and therefore
// floating-point evaluation order — independent of the worker count.
const (
	orthoChunk = 512
	ritzChunk  = 64
)

// orthogonalize removes from w its components along the (orthonormal) basis
// vectors with two classical Gram-Schmidt passes, using proj (capacity ≥
// len(basis)) as the projection scratch. Within a pass, the dot products
// against distinct basis vectors fan out across the pool (each dot is a
// fixed-order serial sum), then the update sweeps the basis in ascending
// order over fixed-size element chunks — basis rows stream contiguously
// (the stride-n per-element loop this replaces missed cache on every basis
// row) and chunk boundaries never depend on the worker count, so the result
// is bit-identical for any pool size.
func orthogonalize(w []float64, basis [][]float64, proj []float64, workers int) {
	m := len(basis)
	if m == 0 {
		return
	}
	d := proj[:m]
	for pass := 0; pass < 2; pass++ {
		parallel.For(workers, m, func(j int) { d[j] = dotVec(w, basis[j]) })
		parallel.ForChunks(workers, len(w), orthoChunk, func(_, lo, hi int) {
			for j := 0; j < m; j++ {
				dj := d[j]
				bj := basis[j][lo:hi]
				wc := w[lo:hi]
				for i := range wc {
					wc[i] -= dj * bj[i]
				}
			}
		})
	}
}

// NormalizedLaplacianOp returns the matvec of the symmetric normalized
// Laplacian L_sym = I − D^{-1/2}·W·D^{-1/2} for a weighted adjacency given
// by the neighbor iterator: forEach(i, fn) must call fn(j, w_ij) for every
// neighbor j of i. deg must hold the (positive) degrees d_i = Σ_j w_ij.
// Generalized eigenvectors of L·u = λ·D·u are D^{-1/2} times the
// eigenvectors of L_sym, with identical eigenvalues — the relationship
// spectral clustering uses.
func NormalizedLaplacianOp(n int, deg []float64, forEach func(i int, fn func(j int, w float64))) (MulVecFunc, error) {
	return NormalizedLaplacianOpN(n, deg, forEach, 1)
}

// NormalizedLaplacianOpN is NormalizedLaplacianOp with the matvec fanned out
// over rows on a bounded worker pool (0 = package default). Each dst[i] is
// an independent fixed-order accumulation, so the product is bit-identical
// for any worker count. forEach may be called concurrently for distinct
// rows and must therefore be re-entrant (read-only on shared state) and
// allocation-free if the matvec is to stay allocation-free.
func NormalizedLaplacianOpN(n int, deg []float64, forEach func(i int, fn func(j int, w float64)), workers int) (MulVecFunc, error) {
	if len(deg) != n {
		return nil, fmt.Errorf("matrix: %d degrees for n=%d", len(deg), n)
	}
	invSqrt := make([]float64, n)
	for i, d := range deg {
		if d <= 0 {
			return nil, fmt.Errorf("matrix: non-positive degree %g at %d", d, i)
		}
		invSqrt[i] = 1 / math.Sqrt(d)
	}
	return func(dst, src []float64) {
		parallel.For(workers, n, func(i int) {
			acc := 0.0
			forEach(i, func(j int, w float64) {
				acc += w * invSqrt[j] * src[j]
			})
			dst[i] = src[i] - invSqrt[i]*acc
		})
	}, nil
}

// NormalizedLaplacianCSRN is the CSR specialization of
// NormalizedLaplacianOpN for unit-weight adjacency: row i's neighbors are
// col[rowPtr[i]:rowPtr[i+1]]. Walking the index slices inline — instead of
// calling back through a neighbor iterator — keeps each row's accumulation
// free of the per-row closure the generic form costs, so a product performs
// no allocation beyond the bounded worker-dispatch residue. Accumulation
// order (ascending neighbors) and arithmetic match the generic operator
// exactly, so results are bit-identical to it.
func NormalizedLaplacianCSRN(n int, deg []float64, rowPtr, col []int32, workers int) (MulVecFunc, error) {
	if len(deg) != n {
		return nil, fmt.Errorf("matrix: %d degrees for n=%d", len(deg), n)
	}
	if len(rowPtr) != n+1 {
		return nil, fmt.Errorf("matrix: %d row pointers for n=%d", len(rowPtr), n)
	}
	invSqrt := make([]float64, n)
	for i, d := range deg {
		if d <= 0 {
			return nil, fmt.Errorf("matrix: non-positive degree %g at %d", d, i)
		}
		invSqrt[i] = 1 / math.Sqrt(d)
	}
	return func(dst, src []float64) {
		parallel.For(workers, n, func(i int) {
			acc := 0.0
			for _, j := range col[rowPtr[i]:rowPtr[i+1]] {
				acc += invSqrt[j] * src[j]
			}
			dst[i] = src[i] - invSqrt[i]*acc
		})
	}, nil
}

func normalize(v []float64) {
	n := math.Sqrt(dotVec(v, v))
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func dotVec(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
