package matrix

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/parallel"
)

// MulVecFunc applies a symmetric linear operator: dst = A·src.
// dst and src never alias.
type MulVecFunc func(dst, src []float64)

// LanczosSmallest computes approximations to the k smallest eigenpairs of
// a symmetric n×n operator given only by matrix-vector products, using the
// Lanczos iteration with full reorthogonalization and an eigensolve of the
// tridiagonal Krylov projection.
//
// It runs min(n, max(4k+40, 10k)) Lanczos steps, which is accurate for the
// well-separated extremal spectra of clustered graph Laplacians — the use
// case here: spectral clustering of networks too large for the dense O(n³)
// solver. On gapless spectra (dense random matrices, strong expanders) the
// interior of the returned set converges only to clustering-grade accuracy.
// The returned eigenvalues ascend; the i-th column of the returned matrix
// is the Ritz vector for the i-th value. rng seeds the start vector, making
// results deterministic for a fixed source.
func LanczosSmallest(mul MulVecFunc, n, k int, rng *rand.Rand) (values []float64, vectors *Dense, err error) {
	return LanczosSmallestN(mul, n, k, rng, 1)
}

// LanczosSmallestN is LanczosSmallest on a bounded worker pool (0 = package
// default). The reorthogonalization fans its dot products out over basis
// vectors and its update over vector elements, and the Ritz-vector assembly
// parallelizes over rows; each kernel keeps a fixed floating-point
// evaluation order, so the result is bit-identical for any worker count.
// The rng is consumed only on the calling goroutine.
func LanczosSmallestN(mul MulVecFunc, n, k int, rng *rand.Rand, workers int) (values []float64, vectors *Dense, err error) {
	if k <= 0 || k > n {
		panic(fmt.Sprintf("matrix: LanczosSmallest k=%d out of (0,%d]", k, n))
	}
	steps := 10 * k
	if m := 4*k + 40; m > steps {
		steps = m
	}
	if steps > n {
		steps = n
	}
	// Lanczos basis (full reorthogonalization keeps it numerically
	// orthonormal; memory is steps×n, fine at the sizes we target).
	basis := make([][]float64, 0, steps)
	alpha := make([]float64, 0, steps)
	beta := make([]float64, 0, steps) // beta[i] couples basis[i] and basis[i+1]

	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalize(v)
	w := make([]float64, n)
	for j := 0; j < steps; j++ {
		basis = append(basis, append([]float64(nil), v...))
		mul(w, v)
		a := dotVec(w, v)
		alpha = append(alpha, a)
		// w ← w − a·v − β_{j−1}·v_{j−1}
		for i := range w {
			w[i] -= a * v[i]
		}
		if j > 0 {
			b := beta[j-1]
			prev := basis[j-1]
			for i := range w {
				w[i] -= b * prev[i]
			}
		}
		// Full reorthogonalization (two classical Gram-Schmidt passes —
		// "twice is enough").
		orthogonalize(w, basis, workers)
		b := math.Sqrt(dotVec(w, w))
		if j == steps-1 {
			break
		}
		if b < 1e-13 {
			// Invariant subspace found: restart with a fresh random
			// direction orthogonal to the basis. The tridiagonal coupling
			// to the new block is exactly zero — recording the restart
			// vector's norm instead would corrupt the projection.
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			orthogonalize(w, basis, workers)
			nb := math.Sqrt(dotVec(w, w))
			if nb < 1e-13 {
				// The basis spans the whole reachable space.
				break
			}
			beta = append(beta, 0)
			for i := range w {
				v[i] = w[i] / nb
			}
			continue
		}
		beta = append(beta, b)
		for i := range w {
			v[i] = w[i] / b
		}
	}
	m := len(basis)
	if k > m {
		k = m
	}
	// Eigensolve the m×m tridiagonal projection.
	d := append([]float64(nil), alpha[:m]...)
	e := make([]float64, m)
	copy(e[1:], beta[:m-1])
	z := Identity(m)
	if err := tql2(z, d, e); err != nil {
		return nil, nil, fmt.Errorf("matrix: Lanczos projection eigensolve: %w", err)
	}
	sortEig(d, z)
	// Assemble the k smallest Ritz pairs (row-parallel; each row's sum
	// runs in fixed j order, so the result is worker-count independent).
	values = d[:k]
	vectors = NewDense(n, k)
	kk := k
	parallel.For(workers, n, func(row int) {
		for col := 0; col < kk; col++ {
			s := 0.0
			for j := 0; j < m; j++ {
				s += basis[j][row] * z.At(j, col)
			}
			vectors.Set(row, col, s)
		}
	})
	return values, vectors, nil
}

// orthogonalize removes from w its components along the (orthonormal) basis
// vectors with two classical Gram-Schmidt passes. Within a pass, the dot
// products against distinct basis vectors fan out across the pool (each dot
// is a fixed-order serial sum), then the fused update subtracts the
// projections element-parallel with the basis loop in fixed order — both
// kernels are bit-identical for any worker count.
func orthogonalize(w []float64, basis [][]float64, workers int) {
	m := len(basis)
	if m == 0 {
		return
	}
	d := make([]float64, m)
	for pass := 0; pass < 2; pass++ {
		parallel.For(workers, m, func(j int) { d[j] = dotVec(w, basis[j]) })
		parallel.For(workers, len(w), func(i int) {
			s := 0.0
			for j := 0; j < m; j++ {
				s += d[j] * basis[j][i]
			}
			w[i] -= s
		})
	}
}

// NormalizedLaplacianOp returns the matvec of the symmetric normalized
// Laplacian L_sym = I − D^{-1/2}·W·D^{-1/2} for a weighted adjacency given
// by the neighbor iterator: forEach(i, fn) must call fn(j, w_ij) for every
// neighbor j of i. deg must hold the (positive) degrees d_i = Σ_j w_ij.
// Generalized eigenvectors of L·u = λ·D·u are D^{-1/2} times the
// eigenvectors of L_sym, with identical eigenvalues — the relationship
// spectral clustering uses.
func NormalizedLaplacianOp(n int, deg []float64, forEach func(i int, fn func(j int, w float64))) (MulVecFunc, error) {
	return NormalizedLaplacianOpN(n, deg, forEach, 1)
}

// NormalizedLaplacianOpN is NormalizedLaplacianOp with the matvec fanned out
// over rows on a bounded worker pool (0 = package default). Each dst[i] is
// an independent fixed-order accumulation, so the product is bit-identical
// for any worker count. forEach may be called concurrently for distinct
// rows and must therefore be re-entrant (read-only on shared state).
func NormalizedLaplacianOpN(n int, deg []float64, forEach func(i int, fn func(j int, w float64)), workers int) (MulVecFunc, error) {
	if len(deg) != n {
		return nil, fmt.Errorf("matrix: %d degrees for n=%d", len(deg), n)
	}
	invSqrt := make([]float64, n)
	for i, d := range deg {
		if d <= 0 {
			return nil, fmt.Errorf("matrix: non-positive degree %g at %d", d, i)
		}
		invSqrt[i] = 1 / math.Sqrt(d)
	}
	return func(dst, src []float64) {
		parallel.For(workers, n, func(i int) {
			acc := 0.0
			forEach(i, func(j int, w float64) {
				acc += w * invSqrt[j] * src[j]
			})
			dst[i] = src[i] - invSqrt[i]*acc
		})
	}, nil
}

func normalize(v []float64) {
	n := math.Sqrt(dotVec(v, v))
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

func dotVec(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}
