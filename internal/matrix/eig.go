package matrix

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/parallel"
)

// EigSym computes the full eigendecomposition of a real symmetric matrix.
// It returns the eigenvalues in ascending order and a matrix whose j-th
// column is the unit eigenvector for the j-th eigenvalue.
//
// The implementation is the classic two-stage dense symmetric solver:
// Householder reduction to tridiagonal form (tred2) followed by QL
// iteration with implicit shifts (tql2), both accumulating the orthogonal
// transformations. It panics if a is not square and returns an error if the
// QL iteration fails to converge (which for symmetric input essentially
// never happens).
func EigSym(a *Dense) (values []float64, vectors *Dense, err error) {
	if a.Rows() != a.Cols() {
		panic(fmt.Sprintf("matrix: EigSym of non-square %d×%d matrix", a.Rows(), a.Cols()))
	}
	n := a.Rows()
	if n == 0 {
		return nil, NewDense(0, 0), nil
	}
	v := a.Clone() // tred2 works in place on the eigenvector accumulator
	d := make([]float64, n)
	e := make([]float64, n)
	tred2(v, d, e)
	if err := tql2(v, d, e); err != nil {
		return nil, nil, err
	}
	sortEig(d, v)
	return d, v, nil
}

// tred2 performs a Householder reduction of the symmetric matrix held in v
// to tridiagonal form, accumulating the transformations in v. On return d
// holds the diagonal and e the subdiagonal (e[0] == 0).
func tred2(v *Dense, d, e []float64) {
	n := v.Rows()
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
	}
	for i := n - 1; i > 0; i-- {
		// Scale to avoid under/overflow.
		scale, h := 0.0, 0.0
		for k := 0; k < i; k++ {
			scale += math.Abs(d[k])
		}
		if scale == 0 {
			e[i] = d[i-1]
			for j := 0; j < i; j++ {
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
				v.Set(j, i, 0)
			}
		} else {
			// Generate the Householder vector.
			for k := 0; k < i; k++ {
				d[k] /= scale
				h += d[k] * d[k]
			}
			f := d[i-1]
			g := math.Sqrt(h)
			if f > 0 {
				g = -g
			}
			e[i] = scale * g
			h -= f * g
			d[i-1] = f - g
			for j := 0; j < i; j++ {
				e[j] = 0
			}
			// Apply similarity transformation to remaining columns.
			for j := 0; j < i; j++ {
				f = d[j]
				v.Set(j, i, f)
				g = e[j] + v.At(j, j)*f
				for k := j + 1; k <= i-1; k++ {
					g += v.At(k, j) * d[k]
					e[k] += v.At(k, j) * f
				}
				e[j] = g
			}
			f = 0
			for j := 0; j < i; j++ {
				e[j] /= h
				f += e[j] * d[j]
			}
			hh := f / (h + h)
			for j := 0; j < i; j++ {
				e[j] -= hh * d[j]
			}
			for j := 0; j < i; j++ {
				f = d[j]
				g = e[j]
				for k := j; k <= i-1; k++ {
					v.Add(k, j, -(f*e[k] + g*d[k]))
				}
				d[j] = v.At(i-1, j)
				v.Set(i, j, 0)
			}
		}
		d[i] = h
	}
	// Accumulate transformations.
	for i := 0; i < n-1; i++ {
		v.Set(n-1, i, v.At(i, i))
		v.Set(i, i, 1)
		h := d[i+1]
		if h != 0 {
			for k := 0; k <= i; k++ {
				d[k] = v.At(k, i+1) / h
			}
			for j := 0; j <= i; j++ {
				g := 0.0
				for k := 0; k <= i; k++ {
					g += v.At(k, i+1) * v.At(k, j)
				}
				for k := 0; k <= i; k++ {
					v.Add(k, j, -g*d[k])
				}
			}
		}
		for k := 0; k <= i; k++ {
			v.Set(k, i+1, 0)
		}
	}
	for j := 0; j < n; j++ {
		d[j] = v.At(n-1, j)
		v.Set(n-1, j, 0)
	}
	v.Set(n-1, n-1, 1)
	e[0] = 0
}

// maxQLIterations bounds the implicit-shift QL sweeps per eigenvalue.
const maxQLIterations = 64

// tql2 diagonalizes the symmetric tridiagonal matrix (d, e) by the QL
// algorithm with implicit shifts, updating the eigenvector accumulator v.
func tql2(v *Dense, d, e []float64) error {
	n := v.Rows()
	for i := 1; i < n; i++ {
		e[i-1] = e[i]
	}
	e[n-1] = 0

	f, tst1 := 0.0, 0.0
	const eps = 0x1p-52
	for l := 0; l < n; l++ {
		// Find a small subdiagonal element.
		tst1 = math.Max(tst1, math.Abs(d[l])+math.Abs(e[l]))
		m := l
		for m < n {
			if math.Abs(e[m]) <= eps*tst1 {
				break
			}
			m++
		}
		// If m == l, d[l] is already an eigenvalue; otherwise iterate.
		if m > l {
			for iter := 0; ; iter++ {
				if iter >= maxQLIterations {
					return fmt.Errorf("matrix: QL iteration failed to converge for eigenvalue %d", l)
				}
				// Compute implicit shift.
				g := d[l]
				p := (d[l+1] - g) / (2 * e[l])
				r := math.Hypot(p, 1)
				if p < 0 {
					r = -r
				}
				d[l] = e[l] / (p + r)
				d[l+1] = e[l] * (p + r)
				dl1 := d[l+1]
				h := g - d[l]
				for i := l + 2; i < n; i++ {
					d[i] -= h
				}
				f += h
				// Implicit QL transformation.
				p = d[m]
				c, c2, c3 := 1.0, 1.0, 1.0
				el1 := e[l+1]
				s, s2 := 0.0, 0.0
				for i := m - 1; i >= l; i-- {
					c3 = c2
					c2 = c
					s2 = s
					g = c * e[i]
					h = c * p
					r = math.Hypot(p, e[i])
					e[i+1] = s * r
					s = e[i] / r
					c = p / r
					p = c*d[i] - s*g
					d[i+1] = h + s*(c*g+s*d[i])
					// Accumulate transformation.
					for k := 0; k < n; k++ {
						h = v.At(k, i+1)
						v.Set(k, i+1, s*v.At(k, i)+c*h)
						v.Set(k, i, c*v.At(k, i)-s*h)
					}
				}
				p = -s * s2 * c3 * el1 * e[l] / dl1
				e[l] = s * p
				d[l] = c * p
				if math.Abs(e[l]) <= eps*tst1 {
					break
				}
			}
		}
		d[l] += f
		e[l] = 0
	}
	return nil
}

// sortEig sorts eigenvalues ascending and permutes the eigenvector columns
// to match.
func sortEig(d []float64, v *Dense) {
	n := len(d)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return d[idx[a]] < d[idx[b]] })
	dOld := make([]float64, n)
	copy(dOld, d)
	vOld := v.Clone()
	for newJ, oldJ := range idx {
		d[newJ] = dOld[oldJ]
		for i := 0; i < n; i++ {
			v.Set(i, newJ, vOld.At(i, oldJ))
		}
	}
}

// GeneralizedSym solves the generalized symmetric eigenproblem
// L·u = λ·D·u where L is symmetric and D is diagonal with strictly
// positive entries (passed as a slice). It returns eigenvalues ascending and
// the matrix U whose columns are the generalized eigenvectors.
//
// The problem is reduced to a standard symmetric one via the congruence
// transform M = D^{-1/2}·L·D^{-1/2}; if M·w = λ·w then u = D^{-1/2}·w.
// This is exactly the relationship between the random-walk and symmetric
// normalized graph Laplacians exploited by spectral clustering.
//
// It returns an error if any diagonal entry of D is not strictly positive
// or if the eigensolver fails to converge.
func GeneralizedSym(l *Dense, d []float64) (values []float64, u *Dense, err error) {
	return GeneralizedSymN(l, d, 1)
}

// GeneralizedSymN is GeneralizedSym with the O(n²) congruence transform and
// back-substitution run on a bounded worker pool (0 = package default). The
// row kernels are per-row independent, so the result is bit-identical for
// any worker count; the O(n³) tridiagonal eigensolve itself is sequential.
func GeneralizedSymN(l *Dense, d []float64, workers int) (values []float64, u *Dense, err error) {
	n := l.Rows()
	if l.Cols() != n {
		panic(fmt.Sprintf("matrix: GeneralizedSym of non-square %d×%d matrix", n, l.Cols()))
	}
	if len(d) != n {
		panic(fmt.Sprintf("matrix: GeneralizedSym diagonal length %d, want %d", len(d), n))
	}
	invSqrt := make([]float64, n)
	for i, di := range d {
		if di <= 0 || math.IsNaN(di) || math.IsInf(di, 0) {
			return nil, nil, fmt.Errorf("matrix: GeneralizedSym requires positive diagonal, d[%d]=%g", i, di)
		}
		invSqrt[i] = 1 / math.Sqrt(di)
	}
	m := NewDense(n, n)
	parallel.For(workers, n, func(i int) {
		for j := 0; j < n; j++ {
			m.Set(i, j, l.At(i, j)*invSqrt[i]*invSqrt[j])
		}
	})
	// Enforce exact symmetry lost to rounding. Worker i owns the pair
	// (i,j),(j,i) for all j > i, so rows never contend.
	parallel.For(workers, n, func(i int) {
		for j := i + 1; j < n; j++ {
			avg := 0.5 * (m.At(i, j) + m.At(j, i))
			m.Set(i, j, avg)
			m.Set(j, i, avg)
		}
	})
	vals, w, err := EigSym(m)
	if err != nil {
		return nil, nil, err
	}
	u = NewDense(n, n)
	parallel.For(workers, n, func(i int) {
		for j := 0; j < n; j++ {
			u.Set(i, j, invSqrt[i]*w.At(i, j))
		}
	})
	return vals, u, nil
}
