package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDenseZeroed(t *testing.T) {
	m := NewDense(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("dims = %d×%d, want 3×4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %g, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewDenseNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDense(-1, 2) did not panic")
		}
	}()
	NewDense(-1, 2)
}

func TestNewDenseFrom(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	if m.At(0, 1) != 2 || m.At(1, 0) != 3 {
		t.Fatalf("unexpected contents:\n%v", m)
	}
}

func TestNewDenseFromRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged NewDenseFrom did not panic")
		}
	}()
	NewDenseFrom([][]float64{{1, 2}, {3}})
}

func TestNewDenseFromEmpty(t *testing.T) {
	m := NewDenseFrom(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatalf("dims = %d×%d, want 0×0", m.Rows(), m.Cols())
	}
}

func TestSetAtAdd(t *testing.T) {
	m := NewDense(2, 2)
	m.Set(0, 1, 5)
	m.Add(0, 1, 2.5)
	if got := m.At(0, 1); got != 7.5 {
		t.Fatalf("At(0,1) = %g, want 7.5", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewDense(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range At did not panic")
		}
	}()
	m.At(2, 0)
}

func TestRowColClone(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	row := m.Row(1)
	col := m.Col(2)
	if row[0] != 4 || row[2] != 6 {
		t.Errorf("Row(1) = %v", row)
	}
	if col[0] != 3 || col[1] != 6 {
		t.Errorf("Col(2) = %v", col)
	}
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) == 99 {
		t.Error("Clone aliases original storage")
	}
	// Row and Col must be copies too.
	row[0] = -1
	if m.At(1, 0) == -1 {
		t.Error("Row aliases original storage")
	}
}

func TestTranspose(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("T dims = %d×%d, want 3×2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	b := NewDenseFrom([][]float64{{5, 6}, {7, 8}})
	got := Mul(a, b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if got.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %g, want %g", i, j, got.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Mul did not panic")
		}
	}()
	Mul(NewDense(2, 3), NewDense(2, 3))
}

func TestMulVec(t *testing.T) {
	m := NewDenseFrom([][]float64{{1, 2}, {3, 4}})
	got := m.MulVec([]float64{1, -1})
	if got[0] != -1 || got[1] != -1 {
		t.Fatalf("MulVec = %v, want [-1 -1]", got)
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	x := []float64{1, 2, 3, 4}
	got := id.MulVec(x)
	for i := range x {
		if got[i] != x[i] {
			t.Fatalf("Identity·x = %v", got)
		}
	}
}

func TestIsSymmetric(t *testing.T) {
	s := NewDenseFrom([][]float64{{1, 2}, {2, 1}})
	if !s.IsSymmetric(0) {
		t.Error("symmetric matrix reported as asymmetric")
	}
	a := NewDenseFrom([][]float64{{1, 2}, {3, 1}})
	if a.IsSymmetric(0.5) {
		t.Error("asymmetric matrix reported as symmetric")
	}
	if !a.IsSymmetric(2) {
		t.Error("tolerance not honored")
	}
	if NewDense(2, 3).IsSymmetric(1e9) {
		t.Error("non-square matrix reported as symmetric")
	}
}

func TestMaxAbs(t *testing.T) {
	m := NewDenseFrom([][]float64{{-7, 2}, {3, 1}})
	if got := m.MaxAbs(); got != 7 {
		t.Fatalf("MaxAbs = %g, want 7", got)
	}
	if got := NewDense(0, 0).MaxAbs(); got != 0 {
		t.Fatalf("empty MaxAbs = %g, want 0", got)
	}
}

// PropertyTransposeInvolution: (Mᵀ)ᵀ == M for random matrices.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r, c := 1+rng.Intn(8), 1+rng.Intn(8)
		m := NewDense(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		tt := m.T().T()
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				if tt.At(i, j) != m.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// PropertyMulAssociativeWithVector: (A·B)·x == A·(B·x) within tolerance.
func TestMulVecCompositionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		a, b := NewDense(n, n), NewDense(n, n)
		x := make([]float64, n)
		for i := 0; i < n; i++ {
			x[i] = rng.NormFloat64()
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
				b.Set(i, j, rng.NormFloat64())
			}
		}
		lhs := Mul(a, b).MulVec(x)
		rhs := a.MulVec(b.MulVec(x))
		for i := range lhs {
			if math.Abs(lhs[i]-rhs[i]) > 1e-9*(1+math.Abs(rhs[i])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
