package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// ringCSR builds the CSR arrays of a ring of n nodes with chords every
// stride nodes — connected, sparse, clustered spectrum.
func ringCSR(n, stride int) (rowPtr, col []int32) {
	adj := make([][]int32, n)
	link := func(i, j int) {
		adj[i] = append(adj[i], int32(j))
		adj[j] = append(adj[j], int32(i))
	}
	for i := 0; i < n; i++ {
		link(i, (i+1)%n)
	}
	for i := 0; i+stride < n; i += stride {
		link(i, i+stride)
	}
	rowPtr = make([]int32, n+1)
	for i, row := range adj {
		rowPtr[i+1] = rowPtr[i] + int32(len(row))
		col = append(col, row...)
	}
	return rowPtr, col
}

func TestWeightedLaplacianMatchesUnweighted(t *testing.T) {
	// With all weights 1 the weighted operator must be exactly the
	// unweighted one: same arithmetic, same evaluation order.
	n := 64
	rowPtr, col := ringCSR(n, 7)
	deg := make([]float64, n)
	w := make([]float64, len(col))
	for i := range w {
		w[i] = 1
	}
	for i := 0; i < n; i++ {
		deg[i] = float64(rowPtr[i+1] - rowPtr[i])
	}
	opU, err := NormalizedLaplacianCSRN(n, deg, rowPtr, col, 1)
	if err != nil {
		t.Fatal(err)
	}
	opW, err := NormalizedLaplacianWeightedCSRN(n, deg, rowPtr, col, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	x := make([]float64, n)
	a, b := make([]float64, n), make([]float64, n)
	for trial := 0; trial < 5; trial++ {
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		opU(a, x)
		opW(b, x)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d: weighted op differs at %d: %g vs %g", trial, i, b[i], a[i])
			}
		}
	}
}

func TestWeightedLaplacianEigenvalues(t *testing.T) {
	// Weighted triangle: weights scale both L and D, so L_sym (and its
	// spectrum 0, 3/2, 3/2) is invariant under uniform scaling; a
	// non-uniform weighting must still yield λ_min = 0.
	rowPtr := []int32{0, 2, 4, 6}
	col := []int32{1, 2, 0, 2, 0, 1}
	w := []float64{2, 5, 2, 3, 5, 3}
	deg := []float64{7, 5, 8}
	op, err := NormalizedLaplacianWeightedCSRN(3, deg, rowPtr, col, w, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ws LanczosWS
	vals, _, _, err := LanczosSmallestFrom(&ws, op, 3, 3, nil, rand.New(rand.NewSource(4)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]) > 1e-10 {
		t.Fatalf("smallest eigenvalue %g, want 0", vals[0])
	}
	if vals[1] < 0.1 || vals[2] > 3 {
		t.Fatalf("spectrum out of the normalized-Laplacian range: %v", vals)
	}
}

func TestWeightedLaplacianRejectsBadInput(t *testing.T) {
	rowPtr := []int32{0, 1, 2}
	col := []int32{1, 0}
	if _, err := NormalizedLaplacianWeightedCSRN(2, []float64{1, 0}, rowPtr, col, []float64{1, 1}, 1); err == nil {
		t.Fatal("zero degree accepted")
	}
	if _, err := NormalizedLaplacianWeightedCSRN(2, []float64{1, 1}, rowPtr, col, []float64{1}, 1); err == nil {
		t.Fatal("weight/col length mismatch accepted")
	}
}

func TestLanczosSmallestFromMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n, k := 150, 8
	a := blockLaplacian(n, 25, rng)
	wantVals, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	var ws LanczosWS
	vals, vecs, steps, err := LanczosSmallestFrom(&ws, denseOp(a), n, k, nil, rand.New(rand.NewSource(7)), 1)
	if err != nil {
		t.Fatal(err)
	}
	if steps <= 0 || steps > n {
		t.Fatalf("steps = %d out of range (n=%d)", steps, n)
	}
	for i := 0; i < k; i++ {
		if math.Abs(vals[i]-wantVals[i]) > 1e-6 {
			t.Fatalf("eigenvalue %d: got %g want %g", i, vals[i], wantVals[i])
		}
	}
	// Residual check ‖A·v − λ·v‖ per returned Ritz pair.
	v := make([]float64, n)
	av := make([]float64, n)
	for j := 0; j < k; j++ {
		for i := 0; i < n; i++ {
			v[i] = vecs.At(i, j)
		}
		denseOp(a)(av, v)
		res := 0.0
		for i := 0; i < n; i++ {
			d := av[i] - vals[j]*v[i]
			res += d * d
		}
		if math.Sqrt(res) > 1e-5 {
			t.Fatalf("Ritz pair %d residual %g", j, math.Sqrt(res))
		}
	}
}

func TestLanczosSmallestFromWarmStart(t *testing.T) {
	// A warm start built from the previous solve's Ritz basis must still
	// produce the right eigenpairs, in no more steps than the cold solve.
	n, k := 400, 8
	rowPtr, col := ringCSR(n, 11)
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		deg[i] = float64(rowPtr[i+1] - rowPtr[i])
	}
	op, err := NormalizedLaplacianCSRN(n, deg, rowPtr, col, 1)
	if err != nil {
		t.Fatal(err)
	}
	var ws LanczosWS
	coldVals, coldVecs, coldSteps, err := LanczosSmallestFrom(&ws, op, n, k, nil, rand.New(rand.NewSource(3)), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Collapse the basis onto one start vector with 1/(c+1) coefficients —
	// exactly what the core warm path does. Copy out of ws first: the next
	// solve overwrites the workspace-owned outputs.
	start := make([]float64, n)
	for i := 0; i < n; i++ {
		s := 0.0
		for c := 0; c < k; c++ {
			s += coldVecs.At(i, c) / float64(c+1)
		}
		start[i] = s
	}
	coldSmallest := coldVals[0]
	// Cold residuals are the accuracy baseline: the ring's tightly
	// clustered spectrum does not fully converge 8 pairs within the step
	// budget, for either start.
	residual := func(vals []float64, vecs *Dense) float64 {
		worst := 0.0
		v, av := make([]float64, n), make([]float64, n)
		for j := 0; j < k; j++ {
			for i := 0; i < n; i++ {
				v[i] = vecs.At(i, j)
			}
			op(av, v)
			res := 0.0
			for i := 0; i < n; i++ {
				d := av[i] - vals[j]*v[i]
				res += d * d
			}
			if r := math.Sqrt(res); r > worst {
				worst = r
			}
		}
		return worst
	}
	coldWorst := residual(coldVals, coldVecs)
	warmVals, warmVecs, warmSteps, err := LanczosSmallestFrom(&ws, op, n, k, start, rand.New(rand.NewSource(3)), 1)
	if err != nil {
		t.Fatal(err)
	}
	// The ring's eigenvalues come in near-degenerate pairs, which a
	// single-vector Krylov process resolves run-dependently, so the two
	// solves' value lists are not compared element-wise. What the warm
	// solve must deliver: λ₀ ≈ 0 (the graph is connected), ascending
	// values, residuals no worse than the cold baseline, no extra steps.
	if math.Abs(warmVals[0]) > 1e-5 || math.Abs(coldSmallest) > 1e-5 {
		t.Fatalf("smallest eigenvalue: warm %g cold %g, want ~0", warmVals[0], coldSmallest)
	}
	for i := 1; i < k; i++ {
		if warmVals[i] < warmVals[i-1] {
			t.Fatalf("warm values not ascending: %v", warmVals)
		}
	}
	if warmWorst := residual(warmVals, warmVecs); warmWorst > 1.5*coldWorst {
		t.Fatalf("warm solve degraded: worst residual %g vs cold %g", warmWorst, coldWorst)
	}
	if warmSteps > coldSteps {
		t.Fatalf("warm start took %d steps, cold %d", warmSteps, coldSteps)
	}
}

func TestCSRLaplacianOpMatchesFuncOp(t *testing.T) {
	n := 300
	rowPtr, col := ringCSR(n, 13)
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		deg[i] = float64(rowPtr[i+1] - rowPtr[i])
	}
	ref, err := NormalizedLaplacianCSRN(n, deg, rowPtr, col, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	x := make([]float64, n)
	want, got := make([]float64, n), make([]float64, n)
	for _, workers := range []int{1, 4} {
		var op CSRLaplacianOp
		if err := op.Init(n, deg, rowPtr, col, workers); err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 3; trial++ {
			for i := range x {
				x[i] = rng.NormFloat64()
			}
			ref(want, x)
			op.Mul(got, x)
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("workers=%d trial %d: Mul differs at %d: %g vs %g", workers, trial, i, got[i], want[i])
				}
			}
		}
	}
	var op CSRLaplacianOp
	if err := op.Init(2, []float64{1, 0}, []int32{0, 1, 2}, []int32{1, 0}, 1); err == nil {
		t.Fatal("zero degree accepted")
	}
}
