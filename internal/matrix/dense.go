// Package matrix provides the dense linear algebra needed by the AutoNCS
// flow: a row-major dense matrix type, a symmetric eigensolver based on
// Householder tridiagonalization followed by implicit-shift QL iteration,
// and a solver for the generalized symmetric eigenproblem L·u = λ·D·u with
// diagonal D, which is the problem spectral clustering poses.
//
// The package is self-contained (stdlib only) and fully deterministic.
package matrix

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix.
// The zero value is an empty (0×0) matrix.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zero-initialized r×c matrix.
// It panics if r or c is negative.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseFrom builds a matrix from a slice of rows. All rows must have the
// same length. The data is copied.
func NewDenseFrom(rows [][]float64) *Dense {
	r := len(rows)
	if r == 0 {
		return NewDense(0, 0)
	}
	c := len(rows[0])
	m := NewDense(r, c)
	for i, row := range rows {
		if len(row) != c {
			panic(fmt.Sprintf("matrix: ragged input: row %d has %d entries, want %d", i, len(row), c))
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m
}

// Reshape resizes m in place to r×c, reusing its backing storage when large
// enough, and zeroes every element. A nil receiver allocates a fresh matrix,
// so callers can lazily grow a scratch matrix: m = m.Reshape(r, c).
func (m *Dense) Reshape(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", r, c))
	}
	if m == nil {
		return NewDense(r, c)
	}
	if cap(m.data) < r*c {
		m.data = make([]float64, r*c)
	}
	m.data = m.data[:r*c]
	for i := range m.data {
		m.data[i] = 0
	}
	m.rows, m.cols = r, c
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set stores v at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of range %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns the matrix product a·b.
// It panics if the inner dimensions disagree.
func Mul(a, b *Dense) *Dense {
	if a.cols != b.rows {
		panic(fmt.Sprintf("matrix: dimension mismatch %d×%d · %d×%d", a.rows, a.cols, b.rows, b.cols))
	}
	out := NewDense(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m·x.
func (m *Dense) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec length %d, want %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// IsSymmetric reports whether m is square and symmetric to within tol.
func (m *Dense) IsSymmetric(tol float64) bool {
	if m.rows != m.cols {
		return false
	}
	for i := 0; i < m.rows; i++ {
		for j := i + 1; j < m.cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > tol {
				return false
			}
		}
	}
	return true
}

// MaxAbs returns the largest absolute element value, or 0 for an empty matrix.
func (m *Dense) MaxAbs() float64 {
	max := 0.0
	for _, v := range m.data {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	return max
}

// String renders the matrix for debugging.
func (m *Dense) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%9.4f", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
