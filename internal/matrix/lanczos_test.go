package matrix

import (
	"math"
	"math/rand"
	"testing"
)

// denseOp wraps a Dense matrix as a MulVecFunc.
func denseOp(a *Dense) MulVecFunc {
	return func(dst, src []float64) {
		out := a.MulVec(src)
		copy(dst, out)
	}
}

// blockLaplacian builds the Laplacian of a graph of dense blocks with weak
// inter-block links — the clustered-spectrum shape Lanczos is used on here
// (well-separated smallest eigenvalues). Dense random symmetric matrices
// have gapless semicircle spectra, the known worst case for Krylov methods,
// and are deliberately not used.
func blockLaplacian(n, blockSize int, rng *rand.Rand) *Dense {
	l := NewDense(n, n)
	link := func(i, j int) {
		if i != j && l.At(i, j) == 0 {
			l.Set(i, j, -1)
			l.Set(j, i, -1)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if i/blockSize == j/blockSize && rng.Float64() < 0.8 {
				link(i, j)
			}
		}
	}
	// A sparse ring of inter-block links keeps the graph connected.
	blocks := (n + blockSize - 1) / blockSize
	for b := 0; b < blocks; b++ {
		link(b*blockSize, ((b+1)%blocks)*blockSize)
	}
	for i := 0; i < n; i++ {
		deg := 0.0
		for j := 0; j < n; j++ {
			if i != j && l.At(i, j) != 0 {
				deg++
			}
		}
		l.Set(i, i, deg)
	}
	return l
}

func TestLanczosMatchesDenseOnRandomSym(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, k := 120, 6
	a := blockLaplacian(n, 20, rng)
	wantVals, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	vals, vecs, err := LanczosSmallest(denseOp(a), n, k, rng)
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != k || vecs.Cols() != k {
		t.Fatalf("got %d values, want %d", len(vals), k)
	}
	for i := 0; i < k; i++ {
		if math.Abs(vals[i]-wantVals[i]) > 1e-3*(1+math.Abs(wantVals[i])) {
			t.Fatalf("λ%d = %g, dense %g", i, vals[i], wantVals[i])
		}
		// Residual ‖A·v − λ·v‖ must be small.
		v := vecs.Col(i)
		av := a.MulVec(v)
		res := 0.0
		for j := range av {
			d := av[j] - vals[i]*v[j]
			res += d * d
		}
		// Clustering-grade accuracy: k-means embeddings tolerate far
		// larger perturbations than this.
		if math.Sqrt(res) > 1e-3*(a.MaxAbs()+1) {
			t.Fatalf("pair %d residual %g", i, math.Sqrt(res))
		}
	}
}

func TestLanczosGraphLaplacianSmallestIsZero(t *testing.T) {
	// Ring graph Laplacian: λ0 = 0 with the constant eigenvector.
	n := 40
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 2)
		l.Set(i, (i+1)%n, -1)
		l.Set(i, (i+n-1)%n, -1)
	}
	vals, vecs, err := LanczosSmallest(denseOp(l), n, 3, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]) > 1e-8 {
		t.Fatalf("λ0 = %g, want 0", vals[0])
	}
	v0 := vecs.Col(0)
	for i := 1; i < n; i++ {
		if math.Abs(math.Abs(v0[i])-math.Abs(v0[0])) > 1e-6 {
			t.Fatalf("λ0 eigenvector not constant: %g vs %g", v0[i], v0[0])
		}
	}
}

func TestLanczosInvalidKPanics(t *testing.T) {
	a := Identity(4)
	for _, k := range []int{0, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("k=%d accepted", k)
				}
			}()
			LanczosSmallest(denseOp(a), 4, k, rand.New(rand.NewSource(1)))
		}()
	}
}

func TestLanczosDegenerateSpectrum(t *testing.T) {
	// Identity: every eigenvalue is 1. Lanczos terminates after one step
	// (invariant subspace) and must restart to deliver k pairs.
	vals, vecs, err := LanczosSmallest(denseOp(Identity(10)), 10, 3, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if math.Abs(v-1) > 1e-8 {
			t.Fatalf("λ%d = %g, want 1", i, v)
		}
	}
	if vecs.Cols() < 1 {
		t.Fatal("no eigenvectors returned")
	}
}

func TestNormalizedLaplacianOp(t *testing.T) {
	// Triangle graph: L_sym has eigenvalues 0, 3/2, 3/2.
	adj := [][]int{{1, 2}, {0, 2}, {0, 1}}
	deg := []float64{2, 2, 2}
	op, err := NormalizedLaplacianOp(3, deg, func(i int, fn func(j int, w float64)) {
		for _, j := range adj[i] {
			fn(j, 1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	vals, _, err := LanczosSmallest(op, 3, 3, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1.5, 1.5}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-8 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
}

func TestNormalizedLaplacianOpRejectsZeroDegree(t *testing.T) {
	if _, err := NormalizedLaplacianOp(2, []float64{1, 0}, nil); err == nil {
		t.Fatal("zero degree accepted")
	}
	if _, err := NormalizedLaplacianOp(2, []float64{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func BenchmarkLanczos500x8(b *testing.B) {
	n := 500
	// Sparse-ish symmetric operator: ring plus random chords.
	a := NewDense(n, n)
	for i := 0; i < n; i++ {
		a.Set(i, i, 4)
		j := (i + 1) % n
		a.Set(i, j, -1)
		a.Set(j, i, -1)
	}
	op := denseOp(a)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := LanczosSmallest(op, n, 8, rand.New(rand.NewSource(6))); err != nil {
			b.Fatal(err)
		}
	}
}
