package matrix

import (
	"math/rand"
	"testing"
)

// Worker-invariance tests: every parallel kernel in this package must be
// bit-identical to its serial form, because each output element is computed
// by exactly one goroutine with a fixed, worker-independent operation order.

func randomLaplacian(n int, seed int64) (*Dense, []float64) {
	rng := rand.New(rand.NewSource(seed))
	l := NewDense(n, n)
	deg := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < 0.15 {
				w := 1 + rng.Float64()
				l.Set(i, j, -w)
				l.Set(j, i, -w)
				deg[i] += w
				deg[j] += w
			}
		}
	}
	for i := 0; i < n; i++ {
		if deg[i] == 0 {
			deg[i] = 1 // keep D invertible for the generalized solve
		}
		l.Set(i, i, deg[i])
	}
	return l, deg
}

func TestGeneralizedSymWorkerInvariance(t *testing.T) {
	l, d := randomLaplacian(60, 3)
	v1, u1, err := GeneralizedSymN(l.Clone(), append([]float64(nil), d...), 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 13} {
		vn, un, err := GeneralizedSymN(l.Clone(), append([]float64(nil), d...), workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range v1 {
			if vn[i] != v1[i] {
				t.Fatalf("workers=%d: eigenvalue[%d] = %g, serial %g", workers, i, vn[i], v1[i])
			}
		}
		for i := 0; i < u1.Rows(); i++ {
			for j := 0; j < u1.Cols(); j++ {
				if un.At(i, j) != u1.At(i, j) {
					t.Fatalf("workers=%d: U[%d,%d] = %g, serial %g (must be bit-identical)",
						workers, i, j, un.At(i, j), u1.At(i, j))
				}
			}
		}
	}
}

func TestLanczosWorkerInvariance(t *testing.T) {
	const n, k = 200, 12
	l, deg := randomLaplacian(n, 7)
	forEach := func(i int, fn func(j int, w float64)) {
		for j := 0; j < n; j++ {
			if i != j && l.At(i, j) != 0 {
				fn(j, -l.At(i, j))
			}
		}
	}
	run := func(workers int) ([]float64, *Dense) {
		mul, err := NormalizedLaplacianOpN(n, deg, forEach, workers)
		if err != nil {
			t.Fatal(err)
		}
		v, u, err := LanczosSmallestN(mul, n, k, rand.New(rand.NewSource(11)), workers)
		if err != nil {
			t.Fatal(err)
		}
		return v, u
	}
	v1, u1 := run(1)
	for _, workers := range []int{2, 4, 9} {
		vn, un := run(workers)
		for i := range v1 {
			if vn[i] != v1[i] {
				t.Fatalf("workers=%d: ritz value[%d] = %g, serial %g", workers, i, vn[i], v1[i])
			}
		}
		for i := 0; i < u1.Rows(); i++ {
			for j := 0; j < u1.Cols(); j++ {
				if un.At(i, j) != u1.At(i, j) {
					t.Fatalf("workers=%d: vector[%d,%d] = %g, serial %g (must be bit-identical)",
						workers, i, j, un.At(i, j), u1.At(i, j))
				}
			}
		}
	}
}
