package matrix

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randSym returns a random n×n symmetric matrix.
func randSym(n int, rng *rand.Rand) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func TestEigSymDiagonal(t *testing.T) {
	a := NewDenseFrom([][]float64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}})
	vals, vecs, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i, w := range want {
		if math.Abs(vals[i]-w) > 1e-12 {
			t.Fatalf("vals = %v, want %v", vals, want)
		}
	}
	// Eigenvectors of a diagonal matrix are (signed) unit basis vectors.
	perm := []int{1, 2, 0} // value order 1,2,3 came from rows 1,2,0
	for j, row := range perm {
		if math.Abs(math.Abs(vecs.At(row, j))-1) > 1e-12 {
			t.Fatalf("eigenvector %d not a basis vector:\n%v", j, vecs)
		}
	}
}

func TestEigSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	a := NewDenseFrom([][]float64{{2, 1}, {1, 2}})
	vals, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(vals[0]-1) > 1e-12 || math.Abs(vals[1]-3) > 1e-12 {
		t.Fatalf("vals = %v, want [1 3]", vals)
	}
}

func TestEigSymEmpty(t *testing.T) {
	vals, vecs, err := EigSym(NewDense(0, 0))
	if err != nil || len(vals) != 0 || vecs.Rows() != 0 {
		t.Fatalf("empty EigSym: vals=%v vecs=%v err=%v", vals, vecs, err)
	}
}

func TestEigSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EigSym on non-square did not panic")
		}
	}()
	EigSym(NewDense(2, 3))
}

// checkDecomposition verifies A·v_j ≈ λ_j·v_j for every eigenpair, that the
// eigenvalues are ascending, and that the eigenvectors are orthonormal.
func checkDecomposition(t *testing.T, a *Dense, vals []float64, vecs *Dense, tol float64) {
	t.Helper()
	n := a.Rows()
	scale := a.MaxAbs() + 1
	for j := 0; j < n; j++ {
		v := vecs.Col(j)
		av := a.MulVec(v)
		for i := 0; i < n; i++ {
			if diff := math.Abs(av[i] - vals[j]*v[i]); diff > tol*scale {
				t.Fatalf("eigenpair %d: |A·v - λ·v|[%d] = %g", j, i, diff)
			}
		}
		if j > 0 && vals[j] < vals[j-1] {
			t.Fatalf("eigenvalues not ascending: %v", vals)
		}
	}
	for j := 0; j < n; j++ {
		for k := j; k < n; k++ {
			dot := 0.0
			for i := 0; i < n; i++ {
				dot += vecs.At(i, j) * vecs.At(i, k)
			}
			want := 0.0
			if j == k {
				want = 1
			}
			if math.Abs(dot-want) > tol {
				t.Fatalf("eigenvectors %d,%d not orthonormal: dot=%g", j, k, dot)
			}
		}
	}
}

func TestEigSymRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 3, 5, 10, 25, 60} {
		a := randSym(n, rng)
		vals, vecs, err := EigSym(a)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		checkDecomposition(t, a, vals, vecs, 1e-9)
	}
}

func TestEigSymTraceAndFrobenius(t *testing.T) {
	// Sum of eigenvalues equals the trace; sum of squares equals ‖A‖²_F.
	rng := rand.New(rand.NewSource(11))
	a := randSym(30, rng)
	vals, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	trace, frob := 0.0, 0.0
	for i := 0; i < 30; i++ {
		trace += a.At(i, i)
		for j := 0; j < 30; j++ {
			frob += a.At(i, j) * a.At(i, j)
		}
	}
	sum, sq := 0.0, 0.0
	for _, v := range vals {
		sum += v
		sq += v * v
	}
	if math.Abs(sum-trace) > 1e-9 {
		t.Errorf("Σλ = %g, trace = %g", sum, trace)
	}
	if math.Abs(sq-frob) > 1e-8 {
		t.Errorf("Σλ² = %g, ‖A‖²_F = %g", sq, frob)
	}
}

func TestEigSymRepeatedEigenvalues(t *testing.T) {
	// The identity has a single eigenvalue 1 with full multiplicity.
	vals, vecs, err := EigSym(Identity(6))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vals {
		if math.Abs(v-1) > 1e-12 {
			t.Fatalf("identity eigenvalues = %v", vals)
		}
	}
	checkDecomposition(t, Identity(6), vals, vecs, 1e-10)
}

func TestEigSymGraphLaplacian(t *testing.T) {
	// Path graph P3 Laplacian has eigenvalues 0, 1, 3.
	l := NewDenseFrom([][]float64{
		{1, -1, 0},
		{-1, 2, -1},
		{0, -1, 1},
	})
	vals, _, err := EigSym(l)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 1, 3}
	for i := range want {
		if math.Abs(vals[i]-want[i]) > 1e-12 {
			t.Fatalf("P3 Laplacian eigenvalues = %v, want %v", vals, want)
		}
	}
}

func TestEigSymProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(12)
		a := randSym(n, rng)
		vals, vecs, err := EigSym(a)
		if err != nil {
			return false
		}
		scale := a.MaxAbs() + 1
		for j := 0; j < n; j++ {
			v := vecs.Col(j)
			av := a.MulVec(v)
			for i := 0; i < n; i++ {
				if math.Abs(av[i]-vals[j]*v[i]) > 1e-8*scale {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestGeneralizedSym(t *testing.T) {
	// Graph Laplacian of the triangle graph with one weak edge; D = degree.
	w := NewDenseFrom([][]float64{
		{0, 1, 0.5},
		{1, 0, 1},
		{0.5, 1, 0},
	})
	n := 3
	d := make([]float64, n)
	l := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			d[i] += w.At(i, j)
			if i != j {
				l.Set(i, j, -w.At(i, j))
			}
		}
	}
	for i := 0; i < n; i++ {
		l.Set(i, i, d[i])
	}
	vals, u, err := GeneralizedSym(l, d)
	if err != nil {
		t.Fatal(err)
	}
	// Check L·u = λ·D·u for each pair.
	for j := 0; j < n; j++ {
		uj := u.Col(j)
		lu := l.MulVec(uj)
		for i := 0; i < n; i++ {
			if math.Abs(lu[i]-vals[j]*d[i]*uj[i]) > 1e-10 {
				t.Fatalf("pair %d violates L·u = λD·u at %d", j, i)
			}
		}
	}
	// Smallest eigenvalue of a connected graph Laplacian is 0, with a
	// constant generalized eigenvector.
	if math.Abs(vals[0]) > 1e-10 {
		t.Errorf("λ₀ = %g, want 0", vals[0])
	}
	u0 := u.Col(0)
	for i := 1; i < n; i++ {
		if math.Abs(u0[i]-u0[0]) > 1e-9 {
			t.Errorf("u₀ not constant: %v", u0)
		}
	}
}

func TestGeneralizedSymRejectsNonPositiveDiagonal(t *testing.T) {
	l := Identity(2)
	if _, _, err := GeneralizedSym(l, []float64{1, 0}); err == nil {
		t.Fatal("zero diagonal accepted")
	}
	if _, _, err := GeneralizedSym(l, []float64{1, -2}); err == nil {
		t.Fatal("negative diagonal accepted")
	}
}

func TestGeneralizedSymIdentityDReducesToStandard(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randSym(8, rng)
	d := make([]float64, 8)
	for i := range d {
		d[i] = 1
	}
	gv, _, err := GeneralizedSym(a, d)
	if err != nil {
		t.Fatal(err)
	}
	sv, _, err := EigSym(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := range sv {
		if math.Abs(gv[i]-sv[i]) > 1e-9 {
			t.Fatalf("generalized with D=I diverges from standard: %v vs %v", gv, sv)
		}
	}
}

func BenchmarkEigSym100(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randSym(100, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := EigSym(a); err != nil {
			b.Fatal(err)
		}
	}
}
