package matrix

import (
	"math/rand"
	"testing"
)

// ringOp builds the CSR normalized Laplacian matvec of a ring graph — the
// same operator shape the clustering flow uses for its sparse embeddings.
func ringOp(t *testing.T, n, workers int) MulVecFunc {
	t.Helper()
	deg := make([]float64, n)
	rowPtr := make([]int32, n+1)
	col := make([]int32, 0, 2*n)
	for i := 0; i < n; i++ {
		deg[i] = 2
		a, b := int32((i+n-1)%n), int32((i+1)%n)
		if a > b {
			a, b = b, a
		}
		col = append(col, a, b)
		rowPtr[i+1] = int32(len(col))
	}
	op, err := NormalizedLaplacianCSRN(n, deg, rowPtr, col, workers)
	if err != nil {
		t.Fatal(err)
	}
	return op
}

// TestMatvecAllocs pins the sparse matvec's allocation behaviour: the only
// allocation per product is the bounded worker-dispatch closure, independent
// of the operator size. The previous implementation allocated a neighbor
// buffer per row per product.
func TestMatvecAllocs(t *testing.T) {
	op := ringOp(t, 800, 1)
	dst := make([]float64, 800)
	src := make([]float64, 800)
	for i := range src {
		src[i] = float64(i%7) - 3
	}
	allocs := testing.AllocsPerRun(20, func() { op(dst, src) })
	if allocs > 2 {
		t.Fatalf("matvec allocated %.1f times per product, want ≤ 2", allocs)
	}
}

// TestLanczosStepAllocs pins the warm-workspace contract of the Lanczos
// solver: once the workspace has grown to the problem size, a full solve
// allocates only its returned values (eigenvalues, Ritz matrix) plus a
// constant-count residue — never the steps×n basis, which dominated the
// per-solve allocations before the workspace existed.
func TestLanczosStepAllocs(t *testing.T) {
	const n, k = 700, 12
	op := ringOp(t, n, 1)
	var ws LanczosWS
	// Warm run grows every buffer.
	if _, _, err := LanczosSmallestWS(&ws, op, n, k, rand.New(rand.NewSource(1)), 1); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(3, func() {
		if _, _, err := LanczosSmallestWS(&ws, op, n, k, rand.New(rand.NewSource(1)), 1); err != nil {
			t.Fatal(err)
		}
	})
	// Budget: the returned outputs (d, e, Ritz matrix), the rand.Rand made
	// here, and a constant number of worker-dispatch closures per Lanczos
	// step — O(steps) small allocations in total, never the O(steps·n)
	// per-row buffers of the pre-workspace implementation (≈170k for this
	// size) and never the steps×n basis itself.
	steps := 10 * k
	if m := 4*k + 40; m > steps {
		steps = m
	}
	budget := float64(8*steps + 64)
	if allocs > budget {
		t.Fatalf("warm Lanczos solve allocated %.1f times, want ≤ %.0f", allocs, budget)
	}
}

// TestLanczosWSMatchesFresh pins workspace-reuse transparency: a solve on a
// twice-used workspace is bit-identical to a solve on a fresh one.
func TestLanczosWSMatchesFresh(t *testing.T) {
	const n, k = 650, 8
	op := ringOp(t, n, 1)
	fv, fvecs, err := LanczosSmallestN(op, n, k, rand.New(rand.NewSource(9)), 1)
	if err != nil {
		t.Fatal(err)
	}
	var ws LanczosWS
	// Dirty the workspace with a differently-sized solve first.
	if _, _, err := LanczosSmallestWS(&ws, ringOp(t, 300, 1), 300, 5, rand.New(rand.NewSource(2)), 1); err != nil {
		t.Fatal(err)
	}
	wv, wvecs, err := LanczosSmallestWS(&ws, op, n, k, rand.New(rand.NewSource(9)), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fv {
		if fv[i] != wv[i] {
			t.Fatalf("value %d: fresh %g reused %g", i, fv[i], wv[i])
		}
	}
	for r := 0; r < n; r++ {
		for c := 0; c < k; c++ {
			if fvecs.At(r, c) != wvecs.At(r, c) {
				t.Fatalf("vector (%d,%d): fresh %g reused %g", r, c, fvecs.At(r, c), wvecs.At(r, c))
			}
		}
	}
}
