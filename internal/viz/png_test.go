package viz

import (
	"image/png"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/route"
)

func TestMatrixPNG(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cm := graph.RandomClustered(80, 20, 0.8, 0.01, rng)
	img := MatrixPNG(cm, nil, 40)
	if img.Bounds().Dx() != 40 || img.Bounds().Dy() != 40 {
		t.Fatalf("image %v, want 40×40", img.Bounds())
	}
	// Diagonal blocks must be hotter than off-diagonal background.
	onDiag := img.RGBAAt(5, 5)
	offDiag := img.RGBAAt(5, 35)
	if onDiag.B >= offDiag.B && onDiag.G >= offDiag.G {
		t.Fatalf("diagonal %v not hotter than background %v", onDiag, offDiag)
	}
}

func TestMatrixPNGEmptyAndPanics(t *testing.T) {
	img := MatrixPNG(graph.NewConn(0), nil, 10)
	if img.Bounds().Dx() != 0 {
		t.Fatal("empty network produced pixels")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("maxDim 0 accepted")
		}
	}()
	MatrixPNG(graph.NewConn(3), nil, 0)
}

func TestLayoutPNG(t *testing.T) {
	nl, pl, rt := placedDesign(t)
	img := LayoutPNG(nl, pl, 2)
	if img.Bounds().Dx() < 10 || img.Bounds().Dy() < 10 {
		t.Fatalf("layout image too small: %v", img.Bounds())
	}
	// At least one non-white pixel (cells drawn).
	found := false
	for y := 0; y < img.Bounds().Dy() && !found; y++ {
		for x := 0; x < img.Bounds().Dx(); x++ {
			c := img.RGBAAt(x, y)
			if c.R != 255 || c.G != 255 || c.B != 255 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("layout image is blank")
	}
	cimg := CongestionPNG(rt)
	if cimg.Bounds().Dx() != rt.Cols || cimg.Bounds().Dy() != rt.Rows {
		t.Fatalf("congestion image %v, want %d×%d", cimg.Bounds(), rt.Cols, rt.Rows)
	}
}

func TestCongestionPNGEmpty(t *testing.T) {
	img := CongestionPNG(&route.Result{})
	if img.Bounds().Dx() != 1 || img.Bounds().Dy() != 1 {
		t.Fatalf("empty congestion image %v", img.Bounds())
	}
}

func TestWritePNGRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.png")
	rng := rand.New(rand.NewSource(2))
	cm := graph.RandomSparse(30, 0.9, rng)
	if err := WritePNG(path, MatrixPNG(cm, nil, 30)); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	decoded, err := png.Decode(f)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 30 {
		t.Fatalf("decoded %v", decoded.Bounds())
	}
}

func TestWritePNGBadPath(t *testing.T) {
	if err := WritePNG("/nonexistent-dir/x.png", MatrixPNG(graph.NewConn(2), nil, 2)); err == nil {
		t.Fatal("bad path accepted")
	}
}

func TestHeatRamp(t *testing.T) {
	if heat(0).R != 255 || heat(0).G != 255 || heat(0).B != 255 {
		t.Error("zero heat not white")
	}
	full := heat(1)
	if full.R != 255 || full.G != 0 || full.B != 0 {
		t.Errorf("full heat %v, want red", full)
	}
	if heat(-1) != heat(0) || heat(2) != heat(1) {
		t.Error("heat does not clamp")
	}
}
