package viz

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/xbar"
)

func TestMatrixRendering(t *testing.T) {
	cm := graph.NewConn(4)
	cm.Set(0, 0)
	cm.Set(3, 3)
	s := Matrix(cm, nil, 4)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 4 {
		t.Fatalf("matrix render %dx%d, want 4x4:\n%s", len(lines), len(lines[0]), s)
	}
	if lines[0][0] == ' ' || lines[3][3] == ' ' {
		t.Fatalf("set cells rendered empty:\n%s", s)
	}
	if lines[0][1] != ' ' {
		t.Fatalf("empty cell rendered non-empty:\n%s", s)
	}
}

func TestMatrixDownsamples(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cm := graph.RandomSparse(100, 0.9, rng)
	s := Matrix(cm, nil, 20)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 20 {
		t.Fatalf("downsampled to %d rows, want 20", len(lines))
	}
}

func TestMatrixPermutationConcentratesDiagonal(t *testing.T) {
	// A block network rendered with a scrambling permutation and back with
	// the inverse: identity order must show stronger diagonal density.
	rng := rand.New(rand.NewSource(2))
	// Block size 10 aligns exactly with the 6 render tiles of 10 neurons,
	// so in identity order all content is on the tile diagonal.
	cm := graph.RandomClustered(60, 10, 0.8, 0.0, rng)
	id := Matrix(cm, nil, 6)
	perm := rng.Perm(60)
	scr := Matrix(cm, perm, 6)
	diagDensity := func(s string) int {
		lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
		d := 0
		for i := range lines {
			if lines[i][i] != ' ' {
				d++
			}
		}
		return d
	}
	offDensity := func(s string) int {
		lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
		d := 0
		for i := range lines {
			for j := range lines[i] {
				if i != j && lines[i][j] != ' ' {
					d++
				}
			}
		}
		return d
	}
	if offDensity(id) != 0 {
		t.Fatalf("pure block matrix has off-diagonal content in identity order:\n%s", id)
	}
	if offDensity(scr) == 0 {
		t.Fatalf("scrambled order shows no off-diagonal content:\n%s", scr)
	}
	if diagDensity(id) == 0 {
		t.Fatal("no diagonal content")
	}
}

func TestMatrixPanics(t *testing.T) {
	cm := graph.NewConn(3)
	for name, f := range map[string]func(){
		"maxDim":    func() { Matrix(cm, nil, 0) },
		"bad order": func() { Matrix(cm, []int{0}, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMatrixEmpty(t *testing.T) {
	if s := Matrix(graph.NewConn(0), nil, 5); s != "" {
		t.Fatalf("empty network rendered %q", s)
	}
}

func placedDesign(t *testing.T) (*netlist.Netlist, *place.Result, *route.Result) {
	t.Helper()
	rng := rand.New(rand.NewSource(3))
	cm := graph.RandomSparse(40, 0.9, rng)
	a := xbar.FullCro(cm, xbar.DefaultLibrary())
	nl, err := netlist.Build(a, xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(nl, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := route.Route(nl, pl, route.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return nl, pl, rt
}

func TestLayoutRendering(t *testing.T) {
	nl, pl, _ := placedDesign(t)
	s := Layout(nl, pl, 60, 30)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 30 {
		t.Fatalf("%d rows, want 30", len(lines))
	}
	if !strings.ContainsAny(s, "#X") {
		t.Fatal("no crossbars rendered")
	}
	if !strings.Contains(s, "o") {
		t.Fatal("no neurons rendered")
	}
}

func TestLayoutPanics(t *testing.T) {
	nl, pl, _ := placedDesign(t)
	defer func() {
		if recover() == nil {
			t.Fatal("zero canvas did not panic")
		}
	}()
	Layout(nl, pl, 0, 10)
}

func TestCongestionRendering(t *testing.T) {
	_, _, rt := placedDesign(t)
	s := Congestion(rt, 40)
	if s == "" {
		t.Fatal("empty congestion render")
	}
	if !strings.ContainsAny(s, densityRamp[1:]) {
		t.Fatal("congestion map shows no usage")
	}
}

func TestCongestionEmpty(t *testing.T) {
	if s := Congestion(&route.Result{}, 10); s != "" {
		t.Fatalf("empty routing rendered %q", s)
	}
}

func TestHistogram(t *testing.T) {
	s := Histogram([]int{16, 32, 64}, []int{1, 4, 2}, 20)
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d rows, want 3", len(lines))
	}
	if !strings.Contains(lines[1], "█████") {
		t.Fatalf("peak bar missing: %q", lines[1])
	}
	if !strings.Contains(lines[0], "16") || !strings.Contains(lines[0], "1") {
		t.Fatalf("labels missing: %q", lines[0])
	}
}

func TestHistogramMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched histogram did not panic")
		}
	}()
	Histogram([]int{1}, []int{1, 2}, 10)
}

func TestRampChar(t *testing.T) {
	if rampChar(-1) != ' ' || rampChar(0) != ' ' {
		t.Error("zero density not blank")
	}
	if rampChar(1) != '@' || rampChar(2) != '@' {
		t.Error("full density not saturated")
	}
}
