package viz

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"
	"os"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
)

// heat maps a normalized value to a blue→red heat color.
func heat(v float64) color.RGBA {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	// Piecewise: white → yellow → red for good print contrast.
	switch {
	case v == 0:
		return color.RGBA{255, 255, 255, 255}
	case v < 0.5:
		t := v / 0.5
		return color.RGBA{255, uint8(255 - 90*t), uint8(220 * (1 - t)), 255}
	default:
		t := (v - 0.5) / 0.5
		return color.RGBA{255, uint8(165 * (1 - t)), 0, 255}
	}
}

// MatrixPNG renders the connection matrix as a density heat map image of
// at most maxDim×maxDim pixels (each pixel one tile), optionally permuted.
func MatrixPNG(cm *graph.Conn, order []int, maxDim int) *image.RGBA {
	n := cm.N()
	if maxDim <= 0 {
		panic(fmt.Sprintf("viz: maxDim %d must be positive", maxDim))
	}
	dim := maxDim
	if n < dim {
		dim = n
	}
	img := image.NewRGBA(image.Rect(0, 0, dim, dim))
	if n == 0 {
		return img
	}
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != n {
		panic(fmt.Sprintf("viz: order length %d, want %d", len(order), n))
	}
	pos := make([]int, n)
	for p, v := range order {
		pos[v] = p
	}
	tile := float64(n) / float64(dim)
	counts := make([]int, dim*dim)
	var buf []int
	for i := 0; i < n; i++ {
		buf = cm.RowNeighbors(i, buf[:0])
		ti := int(float64(pos[i]) / tile)
		if ti >= dim {
			ti = dim - 1
		}
		for _, j := range buf {
			tj := int(float64(pos[j]) / tile)
			if tj >= dim {
				tj = dim - 1
			}
			counts[ti*dim+tj]++
		}
	}
	perTile := tile * tile
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			d := math.Sqrt(float64(counts[r*dim+c]) / perTile)
			img.SetRGBA(c, r, heat(d))
		}
	}
	return img
}

// LayoutPNG renders the placed cells at the given pixels-per-µm scale:
// crossbars as filled blue squares (darker for larger), neurons as green
// dots, synapses as gray dots — the paper's Figure 10 (a)/(c) style.
func LayoutPNG(nl *netlist.Netlist, pl *place.Result, scale float64) *image.RGBA {
	if scale <= 0 {
		panic(fmt.Sprintf("viz: scale %g must be positive", scale))
	}
	w := int(math.Ceil(pl.Width()*scale)) + 2
	h := int(math.Ceil(pl.Height()*scale)) + 2
	if w < 2 {
		w = 2
	}
	if h < 2 {
		h = 2
	}
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, color.RGBA{255, 255, 255, 255})
		}
	}
	maxSide := 0.0
	for _, c := range nl.Cells {
		if c.Kind == netlist.KindCrossbar && c.W > maxSide {
			maxSide = c.W
		}
	}
	toPix := func(x, y float64) (int, int) {
		// Flip y so the image reads like a plot (origin bottom-left).
		return int((x - pl.MinX) * scale), h - 1 - int((y-pl.MinY)*scale)
	}
	fill := func(cx, cy, cw, ch float64, col color.RGBA) {
		x0, y1 := toPix(cx-cw/2, cy-ch/2)
		x1, y0 := toPix(cx+cw/2, cy+ch/2)
		for y := clamp(y0, 0, h-1); y <= clamp(y1, 0, h-1); y++ {
			for x := clamp(x0, 0, w-1); x <= clamp(x1, 0, w-1); x++ {
				img.SetRGBA(x, y, col)
			}
		}
	}
	for _, kind := range []netlist.CellKind{netlist.KindCrossbar, netlist.KindSynapse, netlist.KindNeuron} {
		for _, c := range nl.Cells {
			if c.Kind != kind {
				continue
			}
			switch kind {
			case netlist.KindCrossbar:
				shade := 0.45
				if maxSide > 0 {
					shade = 0.3 + 0.5*c.W/maxSide
				}
				fill(pl.X[c.ID], pl.Y[c.ID], c.W, c.H,
					color.RGBA{uint8(40 * (1 - shade)), uint8(90 * (1 - shade)), uint8(255 * shade), 255})
			case netlist.KindSynapse:
				fill(pl.X[c.ID], pl.Y[c.ID], c.W, c.H, color.RGBA{140, 140, 140, 255})
			case netlist.KindNeuron:
				fill(pl.X[c.ID], pl.Y[c.ID], c.W, c.H, color.RGBA{30, 160, 60, 255})
			}
		}
	}
	return img
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// CongestionPNG renders the routing usage map as a heat image, one pixel
// per grid bin, normalized to the peak — Figure 10 (b)/(d).
func CongestionPNG(rt *route.Result) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, maxInt(rt.Cols, 1), maxInt(rt.Rows, 1)))
	peak := rt.MaxUsage()
	if peak == 0 {
		peak = 1
	}
	for r := 0; r < rt.Rows; r++ {
		for c := 0; c < rt.Cols; c++ {
			img.SetRGBA(c, rt.Rows-1-r, heat(float64(rt.UsageAt(c, r))/float64(peak)))
		}
	}
	return img
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// WritePNG encodes the image to the given path.
func WritePNG(path string, img image.Image) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("viz: %w", err)
	}
	defer f.Close()
	if err := png.Encode(f, img); err != nil {
		return fmt.Errorf("viz: encode %s: %w", path, err)
	}
	return nil
}
