// Package viz renders the flow's artifacts as ASCII art: connection
// matrices (optionally permuted by clusters, as in Figures 3-6), placed
// layouts (Figure 10 a/c), and routing congestion maps (Figure 10 b/d).
// The renderings are deliberately terminal-friendly; they stand in for the
// paper's bitmap figures.
package viz

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
)

// densityRamp maps a 0..1 density to a character.
const densityRamp = " .:-=+*#%@"

func rampChar(v float64) byte {
	if v <= 0 {
		return densityRamp[0]
	}
	if v >= 1 {
		return densityRamp[len(densityRamp)-1]
	}
	return densityRamp[int(v*float64(len(densityRamp)-1))]
}

// Matrix renders the connection matrix downsampled to at most maxDim rows
// and columns. If order is non-nil it permutes the neurons first (pass a
// cluster permutation to make clusters appear as diagonal blocks). Each
// output character encodes the connection density of its tile.
func Matrix(cm *graph.Conn, order []int, maxDim int) string {
	n := cm.N()
	if n == 0 {
		return ""
	}
	if maxDim <= 0 {
		panic(fmt.Sprintf("viz: maxDim %d must be positive", maxDim))
	}
	if order == nil {
		order = make([]int, n)
		for i := range order {
			order[i] = i
		}
	}
	if len(order) != n {
		panic(fmt.Sprintf("viz: order length %d, want %d", len(order), n))
	}
	dim := maxDim
	if n < dim {
		dim = n
	}
	tile := float64(n) / float64(dim)
	counts := make([]int, dim*dim)
	var buf []int
	pos := make([]int, n) // neuron → permuted position
	for p, v := range order {
		pos[v] = p
	}
	for i := 0; i < n; i++ {
		buf = cm.RowNeighbors(i, buf[:0])
		ti := int(float64(pos[i]) / tile)
		if ti >= dim {
			ti = dim - 1
		}
		for _, j := range buf {
			tj := int(float64(pos[j]) / tile)
			if tj >= dim {
				tj = dim - 1
			}
			counts[ti*dim+tj]++
		}
	}
	perTile := tile * tile
	var b strings.Builder
	for r := 0; r < dim; r++ {
		for c := 0; c < dim; c++ {
			// Scale: a tile at full density saturates; sqrt emphasizes
			// sparse structure.
			d := math.Sqrt(float64(counts[r*dim+c]) / perTile)
			b.WriteByte(rampChar(d))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Layout renders the placed cells into a width×height character canvas.
// Crossbars fill their extent with 'X' ('#' for the largest ones), neurons
// are 'o', synapses '·' (rendered as '.').
func Layout(nl *netlist.Netlist, pl *place.Result, width, height int) string {
	if width <= 0 || height <= 0 {
		panic(fmt.Sprintf("viz: canvas %d×%d must be positive", width, height))
	}
	canvas := make([][]byte, height)
	for r := range canvas {
		canvas[r] = []byte(strings.Repeat(" ", width))
	}
	w := math.Max(pl.Width(), 1e-9)
	h := math.Max(pl.Height(), 1e-9)
	maxCross := 0.0
	for _, c := range nl.Cells {
		if c.Kind == netlist.KindCrossbar && c.W > maxCross {
			maxCross = c.W
		}
	}
	toCanvas := func(x, y float64) (int, int) {
		cx := int((x - pl.MinX) / w * float64(width-1))
		cy := int((y - pl.MinY) / h * float64(height-1))
		if cx < 0 {
			cx = 0
		}
		if cx >= width {
			cx = width - 1
		}
		if cy < 0 {
			cy = 0
		}
		if cy >= height {
			cy = height - 1
		}
		return cx, cy
	}
	// Draw crossbars first (area), then synapses, then neurons on top.
	for _, kind := range []netlist.CellKind{netlist.KindCrossbar, netlist.KindSynapse, netlist.KindNeuron} {
		for _, c := range nl.Cells {
			if c.Kind != kind {
				continue
			}
			switch kind {
			case netlist.KindCrossbar:
				ch := byte('X')
				if maxCross > 0 && c.W >= 0.9*maxCross {
					ch = '#'
				}
				x0, y0 := toCanvas(pl.X[c.ID]-c.W/2, pl.Y[c.ID]-c.H/2)
				x1, y1 := toCanvas(pl.X[c.ID]+c.W/2, pl.Y[c.ID]+c.H/2)
				for r := y0; r <= y1; r++ {
					for cc := x0; cc <= x1; cc++ {
						canvas[r][cc] = ch
					}
				}
			case netlist.KindSynapse:
				cx, cy := toCanvas(pl.X[c.ID], pl.Y[c.ID])
				canvas[cy][cx] = '.'
			case netlist.KindNeuron:
				cx, cy := toCanvas(pl.X[c.ID], pl.Y[c.ID])
				canvas[cy][cx] = 'o'
			}
		}
	}
	var b strings.Builder
	for r := height - 1; r >= 0; r-- { // y up
		b.Write(canvas[r])
		b.WriteByte('\n')
	}
	return b.String()
}

// Congestion renders the routing usage map scaled to at most maxDim
// characters per side, normalizing to the peak bin usage.
func Congestion(rt *route.Result, maxDim int) string {
	if maxDim <= 0 {
		panic(fmt.Sprintf("viz: maxDim %d must be positive", maxDim))
	}
	if rt.Cols == 0 || rt.Rows == 0 {
		return ""
	}
	peak := rt.MaxUsage()
	if peak == 0 {
		peak = 1
	}
	outC, outR := rt.Cols, rt.Rows
	if outC > maxDim {
		outC = maxDim
	}
	if outR > maxDim {
		outR = maxDim
	}
	var b strings.Builder
	for r := outR - 1; r >= 0; r-- {
		for c := 0; c < outC; c++ {
			// Max-pool the source tile.
			r0 := r * rt.Rows / outR
			r1 := (r+1)*rt.Rows/outR - 1
			c0 := c * rt.Cols / outC
			c1 := (c+1)*rt.Cols/outC - 1
			m := 0
			for rr := r0; rr <= r1; rr++ {
				for cc := c0; cc <= c1; cc++ {
					if u := rt.UsageAt(cc, rr); u > m {
						m = u
					}
				}
			}
			b.WriteByte(rampChar(float64(m) / float64(peak)))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Histogram renders a labeled bar chart of integer counts (used for the
// crossbar size distributions of Figures 7-9(c)).
func Histogram(labels []int, counts []int, maxBar int) string {
	if len(labels) != len(counts) {
		panic("viz: histogram labels and counts mismatch")
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	if peak == 0 {
		peak = 1
	}
	var b strings.Builder
	for i, l := range labels {
		bar := counts[i] * maxBar / peak
		fmt.Fprintf(&b, "%4d | %-*s %d\n", l, maxBar, strings.Repeat("█", bar), counts[i])
	}
	return b.String()
}
