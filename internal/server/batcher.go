package server

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"repro/client"
)

// The admission batcher: every POST that misses the cache is admitted (or
// rejected) by a single goroutine that collects submissions into small
// batches — up to admitBatch items or admitWait, whichever comes first —
// and decides the whole batch under one lock acquisition. Each item
// carries its own response channel. Batching keeps admission O(1) lock
// acquisitions per batch under load, and it makes coalescing windows
// explicit: identical submissions that arrive within one batch are decided
// back-to-back, so exactly one becomes the flight leader and the rest
// attach as followers.

// admitKind is the outcome of one admission decision.
type admitKind int

const (
	admitRejected admitKind = iota // over capacity or draining; no record registered
	admitCached                    // answered from the cache at admission time
	admitLeader                    // new flight created, job queued
	admitFollower                  // attached to an existing flight
)

// admitReq is one submission awaiting admission.
type admitReq struct {
	spec      *compileSpec
	priority  string
	submitted time.Time
	resp      chan admitResult // buffered(1); receives exactly one result
}

// admitResult is the admission decision for one submission.
type admitResult struct {
	kind       admitKind
	j          *job // registered record (nil when rejected)
	code       int  // HTTP status for rejections
	msg        string
	retryAfter time.Duration
}

// submitAdmit hands a submission to the batcher. It returns false when the
// admitter has shut down (the caller should answer 503); on true the
// caller must receive exactly one result from r.resp.
func (s *Server) submitAdmit(r *admitReq) bool {
	// The RLock pairs with stopAdmitter's write lock: once admitStopped is
	// set no new send can begin, so the final flush observes every
	// submission that ever entered the channel.
	s.admitMu.RLock()
	defer s.admitMu.RUnlock()
	if s.admitStopped {
		return false
	}
	s.admitCh <- r
	return true
}

// admitter is the batching goroutine. It runs until stopAdmitter fires,
// then flushes the intake channel (rejecting stragglers) and exits.
func (s *Server) admitter() {
	defer s.aux.Done()
	for {
		var first *admitReq
		select {
		case first = <-s.admitCh:
		case <-s.stopAdmit:
			s.flushAdmit()
			return
		}
		batch := append(make([]*admitReq, 0, s.admitBatch), first)
		timer := time.NewTimer(s.admitWait)
	collect:
		for len(batch) < s.admitBatch {
			select {
			case r := <-s.admitCh:
				batch = append(batch, r)
			case <-timer.C:
				break collect
			case <-s.stopAdmit:
				break collect
			}
		}
		timer.Stop()
		s.admitAll(batch)
	}
}

// flushAdmit rejects every submission still in the intake channel. It runs
// after admitStopped is set, so no further sends can race with it.
func (s *Server) flushAdmit() {
	for {
		select {
		case r := <-s.admitCh:
			r.resp <- admitResult{
				kind:       admitRejected,
				code:       http.StatusServiceUnavailable,
				msg:        "draining: not accepting new work",
				retryAfter: drainRetryAfter,
			}
		default:
			return
		}
	}
}

// admitAll decides a whole batch under one lock acquisition.
func (s *Server) admitAll(batch []*admitReq) {
	now := time.Now()
	s.mu.Lock()
	s.admitRounds++
	for _, r := range batch {
		r.resp <- s.admitLocked(r, now)
	}
	s.mu.Unlock()
}

// admitLocked decides one submission. Caller holds s.mu. Jobs are
// registered only here — a rejected submission never touches the job
// map, so overload rejection does no record churn.
func (s *Server) admitLocked(r *admitReq, now time.Time) admitResult {
	if s.draining {
		return admitResult{
			kind:       admitRejected,
			code:       http.StatusServiceUnavailable,
			msg:        "draining: not accepting new work",
			retryAfter: drainRetryAfter,
		}
	}
	// Late cache probe: the handler's (disk-capable) probe ran before
	// admission, and a compile of this key may have finished in between.
	// The memory layer is O(1) under its own lock, so re-checking here
	// closes the window without disk I/O. runJob publishes the payload to
	// the cache before removing the flight, so a submission never finds
	// neither.
	if payload, ok := s.cache.Peek(r.spec.key); ok {
		j := s.registerJobLocked(r, now)
		j.cached = true
		s.accepted.Add(1)
		s.cacheHits.Add(1)
		s.finishJobLocked(j, client.StateDone, payload, nil, nil)
		s.log.Info("cache hit at admission", "job", j.id, "key", r.spec.key.Hex())
		return admitResult{kind: admitCached, j: j}
	}
	if fl, ok := s.flights[r.spec.key]; ok {
		j := s.registerJobLocked(r, now)
		j.fl = fl
		j.follower = true
		fl.jobs = append(fl.jobs, j)
		fl.waiters++
		if fl.running {
			j.setRunningAt(fl.startedAt)
		}
		s.accepted.Add(1)
		s.coalesced.Add(1)
		s.log.Info("job coalesced", "job", j.id, "leader", fl.jobs[0].id, "key", fl.key.Hex(), "waiters", fl.waiters)
		return admitResult{kind: admitFollower, j: j}
	}
	if s.queuedJobs >= s.queueDepth {
		s.rejected.Add(1)
		return admitResult{
			kind:       admitRejected,
			code:       http.StatusTooManyRequests,
			msg:        fmt.Sprintf("queue full (%d queued, %d running)", s.queuedJobs, s.inflight.Load()),
			retryAfter: s.retryAfter(),
		}
	}
	j := s.registerJobLocked(r, now)
	ctx, cancel := context.WithCancel(s.baseCtx)
	fl := &flight{key: r.spec.key, spec: r.spec, ctx: ctx, cancel: cancel, jobs: []*job{j}, waiters: 1}
	j.fl = fl
	s.flights[fl.key] = fl
	s.queuedJobs++
	q := s.qInteractive
	if r.priority == client.PriorityBatch {
		q = s.qBatch
	}
	// Each queue channel holds queueDepth entries and queuedJobs bounds
	// their combined occupancy, so this send never blocks.
	q <- j
	s.accepted.Add(1)
	return admitResult{kind: admitLeader, j: j}
}

// registerJobLocked allocates a job record and registers it for status
// queries, evicting the oldest finished records beyond the cap. Caller
// holds s.mu.
func (s *Server) registerJobLocked(r *admitReq, now time.Time) *job {
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j-%06d", s.seq),
		spec:      r.spec,
		priority:  r.priority,
		done:      make(chan struct{}),
		state:     client.StateQueued,
		submitted: r.submitted,
		admitted:  now,
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Never evict an active job (an unfinished head stalls eviction, which
	// is fine — the cap is far above any plausible active set).
	for len(s.order) > maxJobRecords {
		old, ok := s.jobs[s.order[0]]
		if ok && !old.terminal() {
			break
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
	return j
}

// cacheHitJob registers a terminal record for a submission answered by the
// handler's cache probe (or, with peer set, by a fleet peer's cache),
// before admission.
func (s *Server) cacheHitJob(spec *compileSpec, priority string, payload []byte, submitted time.Time, peer string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.registerJobLocked(&admitReq{spec: spec, priority: priority, submitted: submitted}, time.Now())
	j.cached = true
	j.peer = peer
	s.accepted.Add(1)
	s.cacheHits.Add(1)
	s.finishJobLocked(j, client.StateDone, payload, nil, nil)
	return j
}
