package server

import (
	"context"
	"errors"
	"time"

	"repro/client"
	"repro/internal/cache"
)

// flight is one in-flight compile shared by every identical submission: a
// single-flight entry keyed by the compile's content address
// (autoncs.CanonicalHash). The first admitted submission of a key becomes
// the leader — the job that occupies a queue slot and whose worker runs
// the compile — and every later submission of the same key attaches as a
// follower: its own job record, its own ?wait=1 semantics, zero queue
// cost. When the compile finishes, all attached jobs finish together with
// the same bit-identical payload.
//
// waiters counts the submissions still interested in the result. A
// fire-and-forget POST holds its interest forever (the compile must run
// for it); a ?wait=1 submitter releases it on disconnect, and DELETE
// /v1/jobs/{id} releases one job's interest explicitly. Cancellation is
// therefore reference-counted: the compile aborts only when the last
// interested waiter is gone.
//
// Every field is guarded by the Server's mu; a flight has no lock of its
// own. The flight lives in Server.flights from leader admission until the
// compile reaches a terminal state (or the last waiter detaches), so an
// admission either finds it and attaches, or finds the finished payload
// in the cache — never neither.
type flight struct {
	key    cache.Key
	spec   *compileSpec
	ctx    context.Context
	cancel context.CancelFunc

	jobs      []*job // every attached record, leader first, attach order
	waiters   int
	running   bool
	startedAt time.Time
}

// errDetached is the terminal error of a job record whose submission
// withdrew (disconnected ?wait=1 caller or DELETE) while the shared
// compile kept running for the remaining waiters.
var errDetached = errors.New("submission withdrawn before the compile finished")

// detachJob withdraws one submission's interest in its flight: the record
// finishes cancelled immediately, and when it was the last interested
// party the shared compile itself is aborted through its context. Safe to
// call on any job, including terminal and cache-hit records (no-op).
func (s *Server) detachJob(j *job) {
	s.mu.Lock()
	fl := j.fl
	if fl == nil || j.detached || j.terminal() {
		s.mu.Unlock()
		return
	}
	j.detached = true
	fl.waiters--
	s.cancelled.Add(1)
	s.finishJobLocked(j, client.StateCancelled, nil, errDetached, nil)
	last := fl.waiters == 0
	if last {
		// Remove the flight before cancelling so a submission racing in
		// starts a fresh compile instead of attaching to a dying one.
		s.dropFlightLocked(fl)
		fl.cancel()
	}
	s.mu.Unlock()
	if last {
		s.log.Info("flight abandoned by last waiter", "key", fl.key.Hex(), "job", j.id)
	} else {
		s.log.Info("follower detached", "job", j.id, "key", fl.key.Hex())
	}
}

// dropFlightLocked removes fl from the single-flight table — but only if
// the table still maps the key to fl. After an abandoned compile (all
// waiters detached) a fresh submission may have registered a new flight
// under the same key; the abandoned compile's unwinding must not evict it.
// Caller holds s.mu.
func (s *Server) dropFlightLocked(fl *flight) {
	if s.flights[fl.key] == fl {
		delete(s.flights, fl.key)
	}
}

// finishFlightLocked finishes every attached job that is not already
// terminal (records detached earlier finished then) with the shared
// outcome, counting per-record terminal states. Caller holds s.mu and has
// already removed the flight from s.flights.
func (s *Server) finishFlightLocked(fl *flight, state string, payload []byte, err error, stageTimes map[string]float64) {
	for _, j := range fl.jobs {
		if j.terminal() {
			continue
		}
		switch state {
		case client.StateFailed:
			s.failed.Add(1)
		case client.StateCancelled:
			s.cancelled.Add(1)
		}
		s.finishJobLocked(j, state, payload, err, stageTimes)
	}
}

// finishJobLocked moves one job to a terminal state and emits its flat
// per-request timing record. Caller holds s.mu, which serializes every
// finish of a registered job.
func (s *Server) finishJobLocked(j *job, state string, payload []byte, err error, stageTimes map[string]float64) {
	j.finish(state, payload, err, stageTimes)
	s.metrics.Observe(j.timingRecord())
}
