package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/internal/obs"
)

// newTestServer stands up a Server with an httptest front end and returns
// the API client. The server is drained at cleanup so no test leaks the
// worker pool.
func newTestServer(t *testing.T, opts Options) (*Server, *client.Client) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		s.Close()
	})
	return s, client.NewWith(hs.URL, hs.Client())
}

// smallReq compiles quickly (sub-second) but still runs the full flow.
func smallReq(seed int64) client.CompileRequest {
	return client.CompileRequest{Random: &client.RandomSpec{N: 120, Sparsity: 0.92, Seed: 5}, Seed: seed}
}

// TestCompileCacheHitBitIdentical is the core serving contract: the second
// identical request is answered from the cache, with bit-identical result
// bytes and a recorded cache-hit metric.
func TestCompileCacheHitBitIdentical(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()

	first, err := c.CompileWait(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if first.State != client.StateDone || first.Cached {
		t.Fatalf("first compile: state %s cached %v", first.State, first.Cached)
	}
	if first.ElapsedSeconds <= 0 || len(first.StageTimes) == 0 {
		t.Errorf("first compile carries no timings: %+v", first)
	}
	firstBytes, err := c.ResultBytes(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}

	second, err := c.CompileWait(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached || second.State != client.StateDone {
		t.Fatalf("second compile not served from cache: %+v", second)
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ: %s vs %s", second.Key, first.Key)
	}
	secondBytes, err := c.ResultBytes(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatal("cached result bytes are not bit-identical to the computed ones")
	}

	res, err := c.Result(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Key != second.Key || res.Crossbars == 0 || res.Report == nil || len(res.Assignment) == 0 {
		t.Errorf("decoded result incomplete: %+v", res)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.CacheHits != 1 || m.CacheMisses != 1 {
		t.Errorf("cache metrics hits=%d misses=%d, want 1/1", m.CacheHits, m.CacheMisses)
	}
	// Completed counts compiles run, not jobs answered: the cache hit has
	// its own counter and must not inflate JobsCompleted.
	if m.JobsCompleted != 1 || m.Compiles != 1 {
		t.Errorf("jobs completed %d compiles %d, want 1/1", m.JobsCompleted, m.Compiles)
	}
	if m.JobsCacheHits != 1 {
		t.Errorf("jobs cache hits %d, want 1", m.JobsCacheHits)
	}
	if m.JobsAccepted != 2 {
		t.Errorf("jobs accepted %d, want 2", m.JobsAccepted)
	}
	if m.StageSeconds["clustering"] <= 0 {
		t.Errorf("no clustering stage time surfaced: %v", m.StageSeconds)
	}
}

// TestDifferentConfigsMissCache: a semantically different request must not
// hit the first one's cache entry.
func TestDifferentConfigsMissCache(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()
	a, err := c.CompileWait(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.CompileWait(ctx, smallReq(2)) // different flow seed
	if err != nil {
		t.Fatal(err)
	}
	if b.Cached || b.Key == a.Key {
		t.Fatalf("different seed served from cache (keys %s / %s)", a.Key, b.Key)
	}
}

// blockingCompile substitutes the compile with one that parks until
// released (or its context dies), making queue states deterministic.
type blockingCompile struct {
	started chan string   // receives the job's key each time a compile starts
	release chan struct{} // closed (or fed) to let compiles finish
}

func installBlocking(s *Server) *blockingCompile {
	b := &blockingCompile{started: make(chan string, 16), release: make(chan struct{}, 16)}
	s.compileFn = func(ctx context.Context, sp *compileSpec, workers int, ob obs.Observer) (*autoncs.Result, error) {
		b.started <- sp.key.Hex()
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-b.release:
		}
		return sp.run(ctx, workers, ob)
	}
	return b
}

// TestQueueSaturationReturns429: with one slot and a queue depth of one,
// the third concurrent request is rejected with 429 and a Retry-After.
func TestQueueSaturationReturns429(t *testing.T) {
	s, c := newTestServer(t, Options{Slots: 1, QueueDepth: 1})
	b := installBlocking(s)
	ctx := context.Background()

	running, err := c.Compile(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-b.started // the slot is now occupied
	queued, err := c.Compile(ctx, smallReq(2))
	if err != nil {
		t.Fatal(err)
	}

	_, err = c.Compile(ctx, smallReq(3))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("overflow submission returned %v, want APIError", err)
	}
	if apiErr.Status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", apiErr.Status)
	}
	if apiErr.RetryAfter < time.Second {
		t.Errorf("Retry-After %v, want >= 1s", apiErr.RetryAfter)
	}
	if !apiErr.IsRetryable() {
		t.Error("429 not reported as retryable")
	}

	// The rejected job must not exist as a queryable record.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsRejected != 1 || m.JobsAccepted != 2 {
		t.Errorf("rejected %d accepted %d, want 1/2", m.JobsRejected, m.JobsAccepted)
	}

	// Release both; everything accepted completes.
	b.release <- struct{}{}
	b.release <- struct{}{}
	for _, id := range []string{running.ID, queued.ID} {
		st, err := c.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != client.StateDone {
			t.Errorf("job %s finished %s: %s", id, st.State, st.Error)
		}
	}
}

// TestDrainCompletesInFlight: draining stops intake (healthz flips to 503,
// new submissions get 503) but runs accepted jobs to completion.
func TestDrainCompletesInFlight(t *testing.T) {
	s, c := newTestServer(t, Options{Slots: 1, QueueDepth: 2})
	b := installBlocking(s)
	ctx := context.Background()

	inflight, err := c.Compile(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-b.started
	queued, err := c.Compile(ctx, smallReq(2))
	if err != nil {
		t.Fatal(err)
	}

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// Drain is observable before it completes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		h, err := c.Health(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if h.Status == "draining" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported draining")
		}
		time.Sleep(5 * time.Millisecond)
	}
	_, err = c.Compile(ctx, smallReq(3))
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain returned %v, want 503", err)
	}

	b.release <- struct{}{}
	b.release <- struct{}{}
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	for _, id := range []string{inflight.ID, queued.ID} {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != client.StateDone {
			t.Errorf("job %s ended %s after drain, want done", id, st.State)
		}
	}
}

// TestDrainTimeoutCancelsStragglers: an expiring drain context cancels the
// in-flight compile rather than hanging.
func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	s, c := newTestServer(t, Options{Slots: 1, QueueDepth: 1})
	b := installBlocking(s)
	ctx := context.Background()

	st, err := c.Compile(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-b.started // in flight, never released

	dctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(dctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain returned %v, want deadline exceeded", err)
	}
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateCancelled {
		t.Errorf("straggler ended %s, want cancelled", final.State)
	}
}

// TestCancelRunningJobLeaksNoGoroutines reuses the PR-3 leak-check
// pattern: DELETE a mid-flow job, then require the goroutine count to
// settle back to the baseline.
func TestCancelRunningJobLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, err := New(Options{Slots: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	c := client.NewWith(hs.URL, hs.Client())
	ctx := context.Background()

	// A large enough compile to still be mid-flow when the DELETE lands.
	st, err := c.Compile(ctx, client.CompileRequest{Random: &client.RandomSpec{N: 400, Sparsity: 0.94, Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	// Wait until it is actually running so the cancel exercises the
	// mid-stage path, not the queued fast path.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cur, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if cur.State == client.StateRunning {
			break
		}
		if cur.State != client.StateQueued {
			t.Fatalf("job reached %s before cancel", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}
	final, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateCancelled {
		t.Fatalf("cancelled job ended %s (%s)", final.State, final.Error)
	}
	if _, err := c.ResultBytes(ctx, st.ID); err == nil {
		t.Error("cancelled job served a result")
	}

	hs.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The worker pool, the job's flow goroutines, and the HTTP server are
	// gone; only the baseline may remain.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked after cancellation: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestBadRequests: every malformed submission is a 400 with a JSON error.
func TestBadRequests(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()
	cases := []struct {
		name string
		req  client.CompileRequest
	}{
		{"no source", client.CompileRequest{}},
		{"two sources", client.CompileRequest{Testbench: 1, Random: &client.RandomSpec{N: 10, Sparsity: 0.5}}},
		{"bad testbench", client.CompileRequest{Testbench: 9}},
		{"bad random n", client.CompileRequest{Random: &client.RandomSpec{N: -1, Sparsity: 0.5}}},
		{"oversized random n", client.CompileRequest{Random: &client.RandomSpec{N: 100000, Sparsity: 0.5}}},
		{"bad sparsity", client.CompileRequest{Random: &client.RandomSpec{N: 10, Sparsity: 1.5}}},
		{"bad net text", client.CompileRequest{Net: "not a network"}},
		{"edgeless net", client.CompileRequest{Net: "autoncs-net v1\nn 4\n"}},
		{"bad quantile", client.CompileRequest{Random: &client.RandomSpec{N: 10, Sparsity: 0.5}, SelectionQuantile: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := c.Compile(ctx, tc.req)
			var apiErr *client.APIError
			if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
				t.Fatalf("got %v, want 400 APIError", err)
			}
			if apiErr.Message == "" {
				t.Error("empty error message")
			}
		})
	}
	if _, err := c.Job(ctx, "j-999999"); err == nil {
		t.Error("unknown job id found")
	}
}

// TestNetTextSourceAndKeyStability: a text-format network compiles, and
// the same network submitted as text twice hits the cache.
func TestNetTextSourceAndKeyStability(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()
	var buf bytes.Buffer
	if err := autoncs.RandomSparseNetwork(100, 0.92, 3).Write(&buf); err != nil {
		t.Fatal(err)
	}
	req := client.CompileRequest{Net: buf.String(), SkipPhysical: true}
	a, err := c.CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	bst, err := c.CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !bst.Cached || bst.Key != a.Key {
		t.Fatalf("identical text network missed the cache: %+v vs %+v", a, bst)
	}
	res, err := c.Result(ctx, a.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil {
		t.Error("skip_physical result carries a report")
	}
}

// TestFullCroKeysDisjoint: the baseline flow of the same inputs caches
// under its own key.
func TestFullCroKeysDisjoint(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()
	req := smallReq(1)
	req.SkipPhysical = true
	isc, err := c.CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	req.FullCro = true
	full, err := c.CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if full.Cached || full.Key == isc.Key {
		t.Fatalf("fullcro shares the ISC key space: %s vs %s", full.Key, isc.Key)
	}
}
