package server

import (
	"context"
	"sync"
	"time"

	"repro/client"
)

// job is one submitted compile. The spec and identifiers are immutable
// after creation; the lifecycle fields are guarded by mu. done closes
// exactly once, when the job reaches a terminal state.
type job struct {
	id     string
	spec   *compileSpec
	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu         sync.Mutex
	state      string
	cached     bool
	err        error
	result     []byte
	submitted  time.Time
	started    time.Time
	finished   time.Time
	stageTimes map[string]float64
}

// setRunning transitions queued → running (no-op for a job already
// terminal, which cannot happen: only the owning worker calls it).
func (j *job) setRunning() {
	j.mu.Lock()
	j.state = client.StateRunning
	j.started = time.Now()
	j.mu.Unlock()
}

// finish moves the job to a terminal state and wakes every waiter.
func (j *job) finish(state string, result []byte, err error, stageTimes map[string]float64) {
	j.mu.Lock()
	j.state = state
	j.result = result
	j.err = err
	j.stageTimes = stageTimes
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context's resources; the flow has returned
	close(j.done)
}

// terminal reports whether the job has finished (any terminal state).
func (j *job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// resultBytes returns the payload of a done job (nil otherwise).
func (j *job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != client.StateDone {
		return nil
	}
	return j.result
}

// status snapshots the job as its wire representation. When embedResult is
// set and the job is done, the payload rides along (the wait=1 response).
func (j *job) status(embedResult bool) client.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := client.JobStatus{
		ID:          j.id,
		State:       j.state,
		Key:         j.spec.key.Hex(),
		Cached:      j.cached,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		StageTimes:  j.stageTimes,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		if !j.started.IsZero() {
			st.ElapsedSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	if j.state == client.StateDone {
		st.ResultURL = "/v1/results/" + j.id
		if embedResult {
			st.Result = j.result
		}
	}
	return st
}
