package server

import (
	"sync"
	"time"

	"repro/client"
	"repro/internal/obs"
)

// job is one submitted compile request: a queryable record with its own id
// and ?wait=1 semantics. Several jobs may share one compile — the flight
// they are attached to (see flight.go) — in which case exactly one of them
// (the leader) occupies a queue slot and the rest are followers. Cache-hit
// jobs are born terminal and attach to nothing.
//
// The id, spec, flight pointer, follower flag, and priority are immutable
// after registration. The lifecycle fields are guarded by mu; `detached`
// is guarded by the Server's mu (it is part of the flight's waiter
// accounting, not the job's own state). done closes exactly once, when the
// job reaches a terminal state.
type job struct {
	id       string
	spec     *compileSpec
	fl       *flight // shared compile this record is attached to; nil for cache hits
	follower bool    // attached to an existing flight rather than leading it
	priority string  // client.PriorityInteractive or client.PriorityBatch
	done     chan struct{}

	detached bool // interest withdrawn (guarded by Server.mu)

	mu         sync.Mutex
	state      string
	cached     bool
	peer       string // fleet peer whose cache answered; "" for local answers
	err        error
	result     []byte
	submitted  time.Time
	admitted   time.Time
	started    time.Time
	finished   time.Time
	stageTimes map[string]float64
}

// setRunningAt transitions queued → running. Followers attached after the
// compile started receive the flight's start time, so StartedAt means "when
// the shared compile started" on every attached record.
func (j *job) setRunningAt(t time.Time) {
	j.mu.Lock()
	j.state = client.StateRunning
	j.started = t
	j.mu.Unlock()
}

// finish moves the job to a terminal state and wakes every waiter. It must
// be called at most once; the Server serializes all finishes of
// flight-attached jobs under its own mu.
func (j *job) finish(state string, result []byte, err error, stageTimes map[string]float64) {
	j.mu.Lock()
	j.state = state
	j.result = result
	j.err = err
	j.stageTimes = stageTimes
	j.finished = time.Now()
	j.mu.Unlock()
	close(j.done)
}

// terminal reports whether the job has finished (any terminal state).
func (j *job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// resultBytes returns the payload of a done job (nil otherwise).
func (j *job) resultBytes() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != client.StateDone {
		return nil
	}
	return j.result
}

// timingRecord renders the finished job as the flat per-request timing
// record the serving layer emits through internal/obs. Only meaningful on
// a terminal job.
func (j *job) timingRecord() obs.RequestTiming {
	j.mu.Lock()
	defer j.mu.Unlock()
	t := obs.RequestTiming{
		Job:       j.id,
		Key:       j.spec.key.Hex(),
		Priority:  j.priority,
		Coalesced: j.follower,
		CacheHit:  j.cached,
		State:     j.state,
		Submitted: j.submitted,
	}
	if !j.admitted.IsZero() {
		t.AdmitWait = nonNegative(j.admitted.Sub(j.submitted))
	}
	switch {
	case !j.started.IsZero():
		// A follower attached mid-compile has admitted > started; its queue
		// wait is zero, not negative.
		t.QueueWait = nonNegative(j.started.Sub(j.admitted))
		t.Run = nonNegative(j.finished.Sub(j.started))
	case !j.admitted.IsZero():
		t.QueueWait = nonNegative(j.finished.Sub(j.admitted))
	}
	t.Total = nonNegative(j.finished.Sub(j.submitted))
	return t
}

func nonNegative(d time.Duration) time.Duration {
	if d < 0 {
		return 0
	}
	return d
}

// status snapshots the job as its wire representation. When embedResult is
// set and the job is done, the payload rides along (the wait=1 response).
func (j *job) status(embedResult bool) client.JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := client.JobStatus{
		ID:          j.id,
		State:       j.state,
		Key:         j.spec.key.Hex(),
		Cached:      j.cached,
		Peer:        j.peer,
		Coalesced:   j.follower,
		Priority:    j.priority,
		SubmittedAt: j.submitted.UTC().Format(time.RFC3339Nano),
		StageTimes:  j.stageTimes,
	}
	if j.spec.delta {
		st.BaseKey = j.spec.baseKey.Hex()
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		st.StartedAt = j.started.UTC().Format(time.RFC3339Nano)
	}
	if !j.finished.IsZero() {
		st.FinishedAt = j.finished.UTC().Format(time.RFC3339Nano)
		if !j.started.IsZero() {
			st.ElapsedSeconds = j.finished.Sub(j.started).Seconds()
		}
	}
	if j.state == client.StateDone {
		st.ResultURL = "/v1/results/" + j.id
		if embedResult {
			st.Result = j.result
		}
	}
	return st
}
