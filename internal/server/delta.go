package server

import (
	"context"
	"fmt"
	"net/http"

	"repro"
	"repro/client"
	"repro/internal/cache"
	"repro/internal/obs"
)

// Delta serving: a ?base=<key> submission asks the daemon to recompile an
// edited network incrementally against the cached artifact of a previous
// compile. The artifact — the resumable portion of a Result, stored under
// client.ArtifactKey(resultKey) by every successful compile — is resolved
// and validated here, before the cache probe and admission, so the typed
// errors (missing artifact, config-vector mismatch) are deterministic: a
// bad delta request fails the same way whether or not its result happens
// to be cached. Delta results are cached under the delta key domain
// (client.DeltaKey), never under the plain CanonicalHash: a delta tracks
// the quality of the base it edited and is not bit-identical to a full
// compile of the same network, so the two must never share a cache entry.

// defaultDeltaMaxRatio is the edit-ratio cutoff when Options leaves it 0:
// an edit touching more than 10% of the base's connections dissolves
// enough of the previous compile that a fresh full compile is both
// cheaper to serve and better in quality.
const defaultDeltaMaxRatio = 0.1

// resolveDelta resolves a delta submission's base artifact and decides
// whether to run it as a delta. On success it either attaches the decoded
// artifact to the spec (delta accepted) or reverts the spec to a plain
// full compile (edit ratio over the cutoff — the silent fallback the API
// documents). A non-zero status is an HTTP error to answer the submission
// with; code is the stable machine-readable discriminator.
func (s *Server) resolveDelta(ctx context.Context, sp *compileSpec) (status int, code, msg string) {
	akey := cache.Key(client.ArtifactKey([32]byte(sp.baseKey)))
	payload, hit, _ := s.cache.GetDetail(akey)
	// A local artifact miss asks the fleet, exactly like a result lookup:
	// the base may have compiled on the shard owning its key. A peer hit is
	// written through to the local memory LRU so an editing session's next
	// delta resolves locally.
	if !hit && s.fleet != nil {
		if lk := s.fleet.Find(ctx, [32]byte(akey)); lk != nil {
			s.metrics.Observe(obs.PeerLookup{
				Key: akey.Hex(), Peer: lk.Peer, Hit: lk.Hit,
				Err: lk.Err != nil, Elapsed: lk.Elapsed,
			})
			if lk.Hit {
				s.cache.PutMemory(akey, lk.Payload)
				payload, hit = lk.Payload, true
			}
		}
	}
	if !hit {
		return http.StatusNotFound, client.CodeBaseArtifactMissing,
			fmt.Sprintf("no artifact for base %s (the base compile never ran on this daemon, or its artifact was evicted)", sp.baseKey.Hex())
	}
	art, err := autoncs.DecodeArtifact(payload)
	if err != nil {
		return http.StatusInternalServerError, "",
			fmt.Sprintf("base artifact %s is unreadable: %v", sp.baseKey.Hex(), err)
	}
	if vec := autoncs.ConfigVectorHashHex(sp.cfg); art.ConfigVector != vec {
		return http.StatusConflict, client.CodeBaseConfigMismatch,
			fmt.Sprintf("base %s was compiled under config vector %s, this request's is %s (a delta must run under the base's configuration)",
				sp.baseKey.Hex(), art.ConfigVector, vec)
	}
	if art.Assignment.N != sp.net.N() {
		return http.StatusConflict, client.CodeBaseSizeMismatch,
			fmt.Sprintf("base %s has %d neurons, the edited network %d (resizing edits need a full compile)",
				sp.baseKey.Hex(), art.Assignment.N, sp.net.N())
	}

	baseNet := autoncs.BaseNetwork(art.Assignment)
	es, err := autoncs.DiffNetworks(baseNet, sp.net)
	if err != nil {
		return http.StatusInternalServerError, "",
			fmt.Sprintf("diffing against base %s: %v", sp.baseKey.Hex(), err)
	}
	if ratio := es.Ratio(baseNet.NNZ()); ratio > s.deltaMaxRatio {
		// Too much of the base would dissolve: run the submission as an
		// ordinary full compile under the plain content address. The
		// fallback is visible to the client — the response Key is the plain
		// address and BaseKey is absent — and counted in the metrics.
		key, err := autoncs.CanonicalHash(sp.net, sp.cfg)
		if err != nil {
			return http.StatusInternalServerError, "", fmt.Sprintf("rekeying delta fallback: %v", err)
		}
		s.deltaFallbacks.Add(1)
		s.log.Info("delta fallback to full compile", "base", sp.baseKey.Hex(),
			"edits", es.Edits(), "edit_ratio", ratio, "cutoff", s.deltaMaxRatio)
		sp.delta = false
		sp.baseKey = cache.Key{}
		sp.key = cache.Key(key)
		return 0, "", ""
	}
	sp.base = art
	return 0, "", ""
}

// putArtifact stores a finished compile's resumable artifact next to its
// result payload, under the artifact key domain. Every done compile —
// full, baseline, or delta — leaves one behind, which is what lets an
// editing session chain deltas: the next edit's base key is simply the
// previous response's Key. Failures only cost future deltas, never the
// job.
func (s *Server) putArtifact(j *job, res *autoncs.Result) {
	art, err := autoncs.EncodeArtifact(res, j.spec.cfg)
	if err != nil {
		s.log.Warn("artifact encoding failed", "job", j.id, "err", err)
		return
	}
	akey := cache.Key(client.ArtifactKey([32]byte(j.spec.key)))
	if err := s.cache.Put(akey, art); err != nil {
		s.log.Warn("artifact cache put failed", "job", j.id, "err", err)
	}
}
