package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/client"
	"repro/internal/obs"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestCoalesceConcurrentIdentical is the tentpole contract: N concurrent
// identical waited submissions run exactly one compile, and every caller
// receives bit-identical result payloads.
func TestCoalesceConcurrentIdentical(t *testing.T) {
	s, c := newTestServer(t, Options{Slots: 1, QueueDepth: 2})
	b := installBlocking(s)
	ctx := context.Background()
	const n = 4

	var wg sync.WaitGroup
	results := make([]*client.JobStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.CompileWait(ctx, smallReq(1))
		}(i)
	}

	// All four must be admitted — one leader holding the slot, three
	// followers — before the compile is allowed to finish.
	<-b.started
	waitFor(t, "all submissions admitted", func() bool {
		m, err := c.Metrics(ctx)
		return err == nil && m.JobsAccepted == n
	})
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Flights != 1 {
		t.Errorf("flights %d, want 1", m.Flights)
	}
	if m.JobsCoalesced != n-1 {
		t.Errorf("coalesced %d, want %d", m.JobsCoalesced, n-1)
	}
	b.release <- struct{}{}
	wg.Wait()

	var leaderBytes []byte
	coalesced := 0
	for i, st := range results {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if st.State != client.StateDone {
			t.Fatalf("submission %d ended %s (%s)", i, st.State, st.Error)
		}
		if st.Coalesced {
			coalesced++
		}
		payload, err := c.ResultBytes(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if leaderBytes == nil {
			leaderBytes = payload
		} else if !bytes.Equal(leaderBytes, payload) {
			t.Fatalf("submission %d payload differs from the leader's", i)
		}
		if len(st.Result) == 0 {
			t.Errorf("submission %d: wait=1 response carries no embedded result", i)
		}
	}
	if coalesced != n-1 {
		t.Errorf("%d jobs report coalesced, want %d", coalesced, n-1)
	}

	m, err = c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Compiles != 1 || m.JobsCompleted != 1 {
		t.Errorf("compiles %d completed %d, want 1/1: the duplicates did not coalesce", m.Compiles, m.JobsCompleted)
	}
	if m.JobsCoalesced != n-1 || m.JobsAccepted != n {
		t.Errorf("coalesced %d accepted %d, want %d/%d", m.JobsCoalesced, m.JobsAccepted, n-1, n)
	}
	if m.RequestRecords != n {
		t.Errorf("request records %d, want %d", m.RequestRecords, n)
	}
	if m.LastRequest == nil {
		t.Fatal("no last request timing record")
	} else if m.LastRequest.State != client.StateDone || m.LastRequest.TotalSeconds <= 0 {
		t.Errorf("last request record implausible: %+v", m.LastRequest)
	}
}

// TestCoalesceRealCompiles runs the race with the real flow and no
// blocking stub: whichever mix of leader/follower/cache-hit each of the 8
// submissions lands on, every job is exactly one of the three, and all
// payloads are bit-identical.
func TestCoalesceRealCompiles(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 2, QueueDepth: 8})
	ctx := context.Background()
	const n = 8

	var wg sync.WaitGroup
	results := make([]*client.JobStatus, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.CompileWait(ctx, smallReq(1))
		}(i)
	}
	wg.Wait()

	var ref []byte
	for i, st := range results {
		if errs[i] != nil {
			t.Fatalf("submission %d: %v", i, errs[i])
		}
		if st.State != client.StateDone {
			t.Fatalf("submission %d ended %s (%s)", i, st.State, st.Error)
		}
		payload, err := c.ResultBytes(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = payload
		} else if !bytes.Equal(ref, payload) {
			t.Fatalf("submission %d payload not bit-identical", i)
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	// Each accepted job is answered exactly one way: it ran a compile,
	// attached to one, or hit the cache.
	if m.JobsAccepted != n {
		t.Fatalf("accepted %d, want %d", m.JobsAccepted, n)
	}
	if got := m.JobsCompleted + m.JobsCoalesced + m.JobsCacheHits; got != n {
		t.Errorf("completed %d + coalesced %d + cache hits %d = %d, want %d",
			m.JobsCompleted, m.JobsCoalesced, m.JobsCacheHits, got, n)
	}
	if int64(m.Compiles) != m.JobsCompleted {
		t.Errorf("compiles %d != jobs completed %d", m.Compiles, m.JobsCompleted)
	}
	if m.JobsCompleted < 1 || m.JobsCoalesced+m.JobsCacheHits < 1 {
		t.Errorf("no deduplication occurred: %+v", m)
	}
}

// TestFollowerDetachKeepsCompile: withdrawing a follower (DELETE, or a
// disconnected wait) cancels only that record; the shared compile keeps
// running for the remaining waiters.
func TestFollowerDetachKeepsCompile(t *testing.T) {
	s, err := New(Options{Slots: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := installBlocking(s)
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })
	c := client.NewWith(hs.URL, hs.Client())
	ctx := context.Background()

	leader, err := c.Compile(ctx, smallReq(1)) // fire-and-forget: holds interest
	if err != nil {
		t.Fatal(err)
	}
	<-b.started

	// Follower one attaches fire-and-forget, then detaches via DELETE.
	follower, err := c.Compile(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if !follower.Coalesced || follower.ID == leader.ID {
		t.Fatalf("duplicate did not coalesce: %+v", follower)
	}
	if _, err := c.Cancel(ctx, follower.ID); err != nil {
		t.Fatal(err)
	}

	// Follower two attaches with wait=1 and disconnects mid-wait.
	body, _ := json.Marshal(smallReq(1))
	wctx, wcancel := context.WithCancel(ctx)
	waitDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(wctx, http.MethodPost, hs.URL+"/v1/compile?wait=1", bytes.NewReader(body))
		if err != nil {
			waitDone <- err
			return
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := hs.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
		waitDone <- err
	}()
	waitFor(t, "wait=1 follower to attach", func() bool {
		m, err := c.Metrics(ctx)
		return err == nil && m.JobsCoalesced == 2
	})
	wcancel()
	<-waitDone

	waitFor(t, "both follower records to cancel", func() bool {
		m, err := c.Metrics(ctx)
		return err == nil && m.JobsCancelled == 2
	})

	// The compile must still be alive for the leader.
	st, err := c.Job(ctx, leader.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateRunning {
		t.Fatalf("leader is %s after follower detaches, want running", st.State)
	}
	b.release <- struct{}{}
	final, err := c.Wait(ctx, leader.ID, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != client.StateDone {
		t.Fatalf("leader ended %s (%s), want done", final.State, final.Error)
	}
	fst, err := c.Job(ctx, follower.ID)
	if err != nil {
		t.Fatal(err)
	}
	if fst.State != client.StateCancelled {
		t.Errorf("detached follower is %s, want cancelled", fst.State)
	}
}

// TestLastWaiterDetachCancelsCompile: cancellation is reference-counted —
// the compile aborts only when the last interested submission withdraws.
func TestLastWaiterDetachCancelsCompile(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, err := New(Options{Slots: 1, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	b := installBlocking(s)
	hs := httptest.NewServer(s.Handler())
	c := client.NewWith(hs.URL, hs.Client())
	ctx := context.Background()

	leader, err := c.Compile(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	<-b.started
	follower, err := c.Compile(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}

	// First withdrawal: the leader's own record detaches, the compile
	// keeps running for the follower.
	if _, err := c.Cancel(ctx, leader.ID); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // give a wrong implementation time to kill it
	if st, err := c.Job(ctx, follower.ID); err != nil || st.State != client.StateRunning {
		t.Fatalf("follower after leader-record cancel: %+v, %v (want running)", st, err)
	}

	// Second withdrawal is the last: the shared compile aborts.
	if _, err := c.Cancel(ctx, follower.ID); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{leader.ID, follower.ID} {
		st, err := c.Wait(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != client.StateCancelled {
			t.Errorf("job %s ended %s, want cancelled", id, st.State)
		}
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsCancelled != 2 || m.JobsCompleted != 0 || m.Flights != 0 {
		t.Errorf("cancelled %d completed %d flights %d, want 2/0/0", m.JobsCancelled, m.JobsCompleted, m.Flights)
	}

	hs.Close()
	if err := s.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
}

// TestPriorityOrdering: with both classes queued behind a busy slot, the
// freed worker drains interactive work first.
func TestPriorityOrdering(t *testing.T) {
	s, c := newTestServer(t, Options{Slots: 1, QueueDepth: 4})
	b := installBlocking(s)
	ctx := context.Background()

	filler, err := c.Compile(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if <-b.started != filler.Key {
		t.Fatal("filler did not start first")
	}

	batchReq := smallReq(2) // fire-and-forget defaults to batch
	batch, err := c.Compile(ctx, batchReq)
	if err != nil {
		t.Fatal(err)
	}
	if batch.Priority != client.PriorityBatch {
		t.Fatalf("fire-and-forget priority %q, want batch", batch.Priority)
	}
	interReq := smallReq(3)
	interReq.Priority = client.PriorityInteractive
	inter, err := c.Compile(ctx, interReq)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Priority != client.PriorityInteractive {
		t.Fatalf("priority %q, want interactive", inter.Priority)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.QueueBatch != 1 || m.QueueInteractive != 1 || m.QueueDepth != 2 {
		t.Fatalf("queues batch=%d interactive=%d depth=%d, want 1/1/2", m.QueueBatch, m.QueueInteractive, m.QueueDepth)
	}

	// Free the slot three times; the interactive job must start before the
	// batch job that was submitted ahead of it.
	b.release <- struct{}{}
	b.release <- struct{}{}
	b.release <- struct{}{}
	if got := <-b.started; got != inter.Key {
		t.Fatalf("after the slot freed, %s started first, want interactive %s", got, inter.Key)
	}
	if got := <-b.started; got != batch.Key {
		t.Fatalf("batch job did not start third (got %s)", got)
	}
	for _, id := range []string{filler.ID, batch.ID, inter.ID} {
		st, err := c.Wait(ctx, id, 5*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != client.StateDone {
			t.Errorf("job %s ended %s", id, st.State)
		}
	}
}

// TestBadPriorityRejected: an unknown priority is a 400, not a silent
// default.
func TestBadPriorityRejected(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	req := smallReq(1)
	req.Priority = "urgent"
	_, err := c.Compile(context.Background(), req)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("unknown priority returned %v, want 400", err)
	}
}

// TestAdmitBatchWindow: concurrent submissions inside one batching window
// are decided in a single admission round.
func TestAdmitBatchWindow(t *testing.T) {
	s, c := newTestServer(t, Options{Slots: 1, QueueDepth: 4, AdmitBatch: 3, AdmitWindow: 5 * time.Second})
	installBlocking(s)
	ctx := context.Background()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := c.Compile(ctx, smallReq(int64(i+1))); err != nil {
				t.Errorf("submission %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	s.mu.Lock()
	rounds := s.admitRounds
	s.mu.Unlock()
	// The batch fills to AdmitBatch before the window expires, so all
	// three are decided together without waiting out the 5s timer.
	if rounds != 1 {
		t.Errorf("admission rounds %d, want 1", rounds)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsAccepted != 3 || m.AdmitRounds != 1 {
		t.Errorf("accepted %d rounds %d, want 3/1", m.JobsAccepted, m.AdmitRounds)
	}
	// The parked compiles are cancelled by the cleanup's Close; nothing
	// needs to run to completion here.
}

// TestRetryAfterUpdatedOnFailure: every terminal compile — not only a
// successful one — refreshes the Retry-After estimate.
func TestRetryAfterUpdatedOnFailure(t *testing.T) {
	s, c := newTestServer(t, Options{Slots: 1})
	s.lastJobSeconds.Store(59) // stale estimate from a past slow compile
	s.compileFn = func(ctx context.Context, sp *compileSpec, workers int, ob obs.Observer) (*autoncs.Result, error) {
		return nil, errors.New("boom")
	}
	ctx := context.Background()

	st, err := c.CompileWait(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateFailed {
		t.Fatalf("job ended %s, want failed", st.State)
	}
	if got := s.lastJobSeconds.Load(); got > 1 {
		t.Errorf("lastJobSeconds %d after an instant failure, want <= 1 (stale estimate kept)", got)
	}
	if ra := s.retryAfter(); ra != time.Second {
		t.Errorf("retryAfter %v, want 1s", ra)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.JobsFailed != 1 || m.JobsCompleted != 0 {
		t.Errorf("failed %d completed %d, want 1/0", m.JobsFailed, m.JobsCompleted)
	}
}

// TestOversizedBodyIs413: a body past the MaxBytesReader limit is reported
// as 413, not a generic 400 decode error.
func TestOversizedBodyIs413(t *testing.T) {
	s, err := New(Options{Slots: 1})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() { hs.Close(); s.Close() })

	huge := fmt.Sprintf(`{"net":"%s"}`, strings.Repeat("x", maxRequestBody+1))
	resp, err := hs.Client().Post(hs.URL+"/v1/compile", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	var eb struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(eb.Error, "limit") {
		t.Errorf("413 message %q does not mention the limit", eb.Error)
	}
}
