package server

import (
	"bytes"
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/client"
)

// trio is an in-process three-daemon fleet: every server knows the other
// two as peers over real HTTP.
type trio struct {
	srv  [3]*Server
	hs   [3]*httptest.Server
	cl   [3]*client.Client
	urls [3]string
}

// newTrio stands the fleet up. Peer URLs must be known before the servers
// start, so listeners are bound first and handed to httptest afterwards.
func newTrio(t *testing.T, tune func(*Options)) *trio {
	t.Helper()
	tr := &trio{}
	var lns [3]net.Listener
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		tr.urls[i] = "http://" + ln.Addr().String()
	}
	for i := range tr.srv {
		opts := Options{
			Slots: 1,
			Self:  tr.urls[i],
			Peers: tr.urls[:],
		}
		if tune != nil {
			tune(&opts)
		}
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewUnstartedServer(s.Handler())
		hs.Listener.Close()
		hs.Listener = lns[i]
		hs.Start()
		tr.srv[i] = s
		tr.hs[i] = hs
		tr.cl[i] = client.NewWith(tr.urls[i], hs.Client())
	}
	t.Cleanup(func() {
		for i := range tr.srv {
			tr.hs[i].Close()
			tr.srv[i].Close()
		}
	})
	return tr
}

// fleetReq is a fast compile (clustering only) for fleet plumbing tests.
func fleetReq(seed int64) client.CompileRequest {
	return client.CompileRequest{
		Random:       &client.RandomSpec{N: 80, Sparsity: 0.9, Seed: 7},
		Seed:         seed,
		SkipPhysical: true,
	}
}

// seedOwnedBy searches for a request whose content address the ring
// assigns to member idx of the trio.
func (tr *trio) seedOwnedBy(t *testing.T, idx int) (int64, client.CompileRequest) {
	t.Helper()
	for seed := int64(1); seed < 1000; seed++ {
		key, err := fleetReq(seed).CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		if tr.srv[idx].fleet.Owns(key) {
			return seed, fleetReq(seed)
		}
	}
	t.Fatal("no seed in 1..999 owned by the target member (implausible)")
	return 0, client.CompileRequest{}
}

// TestFleetPeerCacheHit: a compile cached on its owning daemon is served
// to a sibling daemon through the peer cache protocol — answered as a
// cache hit with peer provenance and bit-identical bytes, never
// recompiled.
func TestFleetPeerCacheHit(t *testing.T) {
	tr := newTrio(t, nil)
	ctx := context.Background()
	_, req := tr.seedOwnedBy(t, 0) // daemon A owns the key

	first, err := tr.cl[0].CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.State != client.StateDone || first.Cached || first.Peer != "" {
		t.Fatalf("owner compile: %+v", first)
	}
	firstBytes, err := tr.cl[0].ResultBytes(ctx, first.ID)
	if err != nil {
		t.Fatal(err)
	}

	second, err := tr.cl[1].CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if second.State != client.StateDone || !second.Cached {
		t.Fatalf("sibling submission not served from cache: %+v", second)
	}
	if second.Peer != tr.urls[0] {
		t.Fatalf("peer provenance %q, want %q", second.Peer, tr.urls[0])
	}
	if second.Key != first.Key {
		t.Fatalf("keys differ across daemons: %s vs %s", second.Key, first.Key)
	}
	secondBytes, err := tr.cl[1].ResultBytes(ctx, second.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Fatal("peer-served payload is not bit-identical to the owner's")
	}

	m, err := tr.cl[1].Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeerHits != 1 || m.PeerErrors != 0 {
		t.Fatalf("sibling metrics: peer_hits=%d peer_errors=%d, want 1/0", m.PeerHits, m.PeerErrors)
	}
	if m.Peers != 3 || m.PeersAlive != 3 {
		t.Fatalf("sibling metrics: peers=%d peers_alive=%d, want 3/3", m.Peers, m.PeersAlive)
	}
	if m.JobsCompleted != 0 {
		t.Fatalf("sibling ran %d compiles for a peer-served key", m.JobsCompleted)
	}

	// The write-through made the payload local: a repeat on the sibling is
	// a plain local cache hit, no second peer probe.
	third, err := tr.cl[1].CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !third.Cached || third.Peer != "" {
		t.Fatalf("repeat on sibling: %+v, want local cache hit", third)
	}
	m, err = tr.cl[1].Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeerHits != 1 {
		t.Fatalf("repeat re-probed the peer: peer_hits=%d", m.PeerHits)
	}
}

// TestFleetPeerMissCompilesLocally: when the owner doesn't have the key
// either, the probing daemon records a peer miss and compiles locally —
// the fleet accelerates, it never gates.
func TestFleetPeerMissCompilesLocally(t *testing.T) {
	tr := newTrio(t, nil)
	ctx := context.Background()
	_, req := tr.seedOwnedBy(t, 0)

	st, err := tr.cl[1].CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateDone || st.Cached || st.Peer != "" {
		t.Fatalf("miss path: %+v, want a fresh local compile", st)
	}
	m, err := tr.cl[1].Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeerMisses != 1 || m.PeerHits != 0 || m.PeerErrors != 0 {
		t.Fatalf("metrics after miss: hits=%d misses=%d errors=%d, want 0/1/0",
			m.PeerHits, m.PeerMisses, m.PeerErrors)
	}
	if m.JobsCompleted != 1 {
		t.Fatalf("jobs_completed=%d, want 1 local compile", m.JobsCompleted)
	}
}

// TestFleetDeadPeerFallsBackToLocal: killing a daemon leaves the
// survivors serving — a lookup against the dead owner errors, the
// breaker takes it out of the ring (peers_alive drops), and the compile
// runs locally.
func TestFleetDeadPeerFallsBackToLocal(t *testing.T) {
	tr := newTrio(t, func(o *Options) {
		o.PeerFailureThreshold = 1
		o.PeerTimeout = 2 * time.Second
		o.PeerRecoveryInterval = time.Hour
	})
	ctx := context.Background()
	_, req := tr.seedOwnedBy(t, 0)

	// Kill daemon A outright.
	tr.hs[0].Close()
	tr.srv[0].Close()

	st, err := tr.cl[1].CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != client.StateDone || st.Cached {
		t.Fatalf("survivor answer: %+v, want a fresh local compile", st)
	}
	m, err := tr.cl[1].Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeerErrors != 1 {
		t.Fatalf("peer_errors=%d, want 1", m.PeerErrors)
	}
	if m.PeersAlive != 2 || m.Peers != 3 {
		t.Fatalf("peers_alive=%d peers=%d, want 2/3", m.PeersAlive, m.Peers)
	}

	// With the dead owner out of the ring, a repeat skips it entirely:
	// no further errors accumulate, and the answer is the local cache.
	st2, err := tr.cl[1].CompileWait(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Fatalf("repeat after owner death: %+v, want local cache hit", st2)
	}
	m, err = tr.cl[1].Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.PeerErrors != 1 {
		t.Fatalf("repeat charged the dead peer again: peer_errors=%d", m.PeerErrors)
	}
}

// TestCacheEndpoint exercises the peer protocol surface directly: GET and
// HEAD /v1/cache/{key} serve the raw cached payload with the content
// address echoed in X-Autoncs-Key; misses are 404, malformed keys 400.
func TestCacheEndpoint(t *testing.T) {
	s, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()
	st, err := c.CompileWait(ctx, fleetReq(3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.ResultBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}

	hs := httptest.NewServer(s.Handler())
	defer hs.Close()

	resp, err := http.Get(hs.URL + "/v1/cache/" + st.Key)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET cache: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Autoncs-Key"); got != st.Key {
		t.Fatalf("X-Autoncs-Key %q, want %q", got, st.Key)
	}
	if !bytes.Equal(body, want) {
		t.Fatal("cache endpoint payload differs from the result endpoint's")
	}

	head, err := http.Head(hs.URL + "/v1/cache/" + st.Key)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, head.Body) //nolint:errcheck
	head.Body.Close()
	if head.StatusCode != http.StatusOK {
		t.Fatalf("HEAD cache: %d", head.StatusCode)
	}
	if got := head.Header.Get("X-Autoncs-Key"); got != st.Key {
		t.Fatalf("HEAD X-Autoncs-Key %q, want %q", got, st.Key)
	}
	if head.ContentLength != int64(len(want)) {
		t.Fatalf("HEAD Content-Length %d, want %d", head.ContentLength, len(want))
	}

	miss, err := http.Get(hs.URL + "/v1/cache/" + "0000000000000000000000000000000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, miss.Body) //nolint:errcheck
	miss.Body.Close()
	if miss.StatusCode != http.StatusNotFound {
		t.Fatalf("cache miss: %d, want 404", miss.StatusCode)
	}

	bad, err := http.Get(hs.URL + "/v1/cache/not-a-key")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bad.Body) //nolint:errcheck
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed key: %d, want 400", bad.StatusCode)
	}
}
