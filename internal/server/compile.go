package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"repro"
	"repro/client"
	"repro/internal/cache"
)

// maxRequestNeurons bounds the size of a network a single request may ask
// the daemon to compile. The flow is superlinear in n, so this is the
// service's overload guard, distinct from graph.MaxLoadNeurons (the text
// parser's allocation guard).
const maxRequestNeurons = 4096

// compileSpec is a validated, materialized compile request: the network,
// the full config, and the content address under which the result is
// cached.
type compileSpec struct {
	net     *autoncs.Network
	cfg     autoncs.Config
	fullCro bool
	key     cache.Key

	// Delta fields, set when the submission asked for an incremental
	// recompile (?base= / CompileRequest.Base) and survived the handler's
	// artifact resolution and edit-ratio cutoff. key is then the
	// delta-domain address; baseKey is the base compile's result key, and
	// base its decoded artifact. A fallen-back submission carries none of
	// these — it is an ordinary full compile.
	delta   bool
	baseKey cache.Key
	base    *autoncs.Artifact
}

// buildSpec materializes a wire request under the service's size limit.
// The materialization itself lives on client.CompileRequest.Spec so the
// shard-aware Fleet client derives the exact same cache key the daemon
// serves under. Every validation failure is a client-side (HTTP 400)
// error. A delta request's artifact resolution happens separately in
// resolveDelta — it needs the daemon's cache, which Spec has no business
// touching.
func buildSpec(req client.CompileRequest) (*compileSpec, error) {
	sp, err := req.Spec(maxRequestNeurons)
	if err != nil {
		return nil, err
	}
	out := &compileSpec{net: sp.Net, cfg: sp.Config, fullCro: sp.FullCro, key: cache.Key(sp.Key)}
	if sp.Delta {
		out.delta = true
		out.baseKey = cache.Key(sp.Base)
	}
	return out, nil
}

// run executes the compile under ctx with the given worker-pool bound and
// observer.
func (sp *compileSpec) run(ctx context.Context, workers int, ob autoncs.Observer) (*autoncs.Result, error) {
	cfg := sp.cfg
	cfg.Workers = workers
	cfg.Observer = ob
	if sp.base != nil {
		prev, err := sp.base.Restore(sp.cfg)
		if err != nil {
			return nil, fmt.Errorf("restoring base artifact %s: %w", sp.baseKey.Hex(), err)
		}
		res, _, err := autoncs.CompileDeltaCtx(ctx, prev, sp.net, cfg)
		return res, err
	}
	if sp.fullCro {
		return autoncs.CompileFullCroCtx(ctx, sp.net, cfg)
	}
	return autoncs.CompileCtx(ctx, sp.net, cfg)
}

// encodeResult renders the deterministic portion of a compile result as
// the canonical cache payload. Deterministic by construction: struct
// fields marshal in declaration order, map keys sort, and the assignment
// JSON is a pure function of the assignment — so re-encoding a recomputed
// Result yields bit-identical bytes, which is what makes cached responses
// indistinguishable from fresh ones.
func encodeResult(sp *compileSpec, res *autoncs.Result) ([]byte, error) {
	var asg bytes.Buffer
	if err := res.Assignment.WriteJSON(&asg); err != nil {
		return nil, fmt.Errorf("encoding assignment: %w", err)
	}
	hist := map[string]int{}
	for size, count := range res.Assignment.SizeHistogram() {
		hist[strconv.Itoa(size)] = count
	}
	out := client.Result{
		Key:            sp.key.Hex(),
		Neurons:        sp.net.N(),
		Connections:    res.Assignment.Total,
		Crossbars:      len(res.Assignment.Crossbars),
		Synapses:       len(res.Assignment.Synapses),
		OutlierRatio:   res.Assignment.OutlierRatio(),
		AvgUtilization: res.Assignment.AvgUtilization(),
		AvgPreference:  res.Assignment.AvgPreference(),
		ISCIterations:  len(res.Trace),
		SizeHistogram:  hist,
		Assignment:     json.RawMessage(asg.Bytes()),
	}
	if res.Report != nil {
		out.Report = &client.Report{
			Wirelength: res.Report.Wirelength,
			Area:       res.Report.Area,
			AvgDelay:   res.Report.AvgDelay,
			MaxDelay:   res.Report.MaxDelay,
			Cost:       res.Report.Cost,
			Wires:      res.Report.Wires,
		}
	}
	return json.Marshal(out)
}
