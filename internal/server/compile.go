package server

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"repro"
	"repro/client"
	"repro/internal/cache"
	"repro/internal/graph"
)

// maxRequestNeurons bounds the size of a network a single request may ask
// the daemon to compile. The flow is superlinear in n, so this is the
// service's overload guard, distinct from graph.MaxLoadNeurons (the text
// parser's allocation guard).
const maxRequestNeurons = 4096

// compileSpec is a validated, materialized compile request: the network,
// the full config, and the content address under which the result is
// cached.
type compileSpec struct {
	net     *autoncs.Network
	cfg     autoncs.Config
	fullCro bool
	key     cache.Key
}

// buildSpec materializes a wire request: constructs the network, fills the
// config, and derives the cache key. Every validation failure is a
// client-side (HTTP 400) error.
func buildSpec(req client.CompileRequest) (*compileSpec, error) {
	sources := 0
	for _, set := range []bool{req.Net != "", req.Random != nil, req.Testbench != 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of net, random, testbench must be set (got %d)", sources)
	}

	seed := req.Seed
	if seed == 0 {
		seed = autoncs.DefaultConfig().Seed
	}

	var net *autoncs.Network
	switch {
	case req.Net != "":
		n, err := graph.Read(strings.NewReader(req.Net))
		if err != nil {
			return nil, fmt.Errorf("parsing net: %v", err)
		}
		net = n
	case req.Random != nil:
		r := *req.Random
		if r.N <= 0 || r.N > maxRequestNeurons {
			return nil, fmt.Errorf("random.n %d out of range 1..%d", r.N, maxRequestNeurons)
		}
		if r.Sparsity < 0 || r.Sparsity > 1 {
			return nil, fmt.Errorf("random.sparsity %g out of [0,1]", r.Sparsity)
		}
		net = autoncs.RandomSparseNetwork(r.N, r.Sparsity, r.Seed)
	default:
		tbs := autoncs.Testbenches()
		if req.Testbench < 1 || req.Testbench > len(tbs) {
			return nil, fmt.Errorf("testbench %d out of range 1..%d", req.Testbench, len(tbs))
		}
		net = autoncs.BuildTestbench(tbs[req.Testbench-1], seed)
	}
	if net.N() > maxRequestNeurons {
		return nil, fmt.Errorf("network with %d neurons exceeds the %d-neuron service limit", net.N(), maxRequestNeurons)
	}

	cfg := autoncs.DefaultConfig()
	cfg.Seed = seed
	cfg.SelectionQuantile = req.SelectionQuantile
	cfg.UtilizationThreshold = req.UtilizationThreshold
	cfg.SkipPhysical = req.SkipPhysical
	cfg.Multilevel = req.Multilevel
	cfg.MultilevelCutoff = req.MultilevelCutoff
	cfg.CoarsenRatio = req.CoarsenRatio
	cfg.MultilevelLevels = req.MultilevelLevels
	if req.LegacyRouter {
		cfg.Route.Negotiate = false
	}

	base, err := autoncs.CanonicalHash(net, cfg)
	if err != nil {
		return nil, err
	}
	key := cache.Key(base)
	if req.FullCro {
		// The baseline flow computes a different result from the same
		// inputs; derive a disjoint key domain for it.
		key = sha256.Sum256(append([]byte("autoncs-fullcro/v1\n"), base[:]...))
	}
	return &compileSpec{net: net, cfg: cfg, fullCro: req.FullCro, key: key}, nil
}

// run executes the compile under ctx with the given worker-pool bound and
// observer.
func (sp *compileSpec) run(ctx context.Context, workers int, ob autoncs.Observer) (*autoncs.Result, error) {
	cfg := sp.cfg
	cfg.Workers = workers
	cfg.Observer = ob
	if sp.fullCro {
		return autoncs.CompileFullCroCtx(ctx, sp.net, cfg)
	}
	return autoncs.CompileCtx(ctx, sp.net, cfg)
}

// encodeResult renders the deterministic portion of a compile result as
// the canonical cache payload. Deterministic by construction: struct
// fields marshal in declaration order, map keys sort, and the assignment
// JSON is a pure function of the assignment — so re-encoding a recomputed
// Result yields bit-identical bytes, which is what makes cached responses
// indistinguishable from fresh ones.
func encodeResult(sp *compileSpec, res *autoncs.Result) ([]byte, error) {
	var asg bytes.Buffer
	if err := res.Assignment.WriteJSON(&asg); err != nil {
		return nil, fmt.Errorf("encoding assignment: %w", err)
	}
	hist := map[string]int{}
	for size, count := range res.Assignment.SizeHistogram() {
		hist[strconv.Itoa(size)] = count
	}
	out := client.Result{
		Key:            sp.key.Hex(),
		Neurons:        sp.net.N(),
		Connections:    res.Assignment.Total,
		Crossbars:      len(res.Assignment.Crossbars),
		Synapses:       len(res.Assignment.Synapses),
		OutlierRatio:   res.Assignment.OutlierRatio(),
		AvgUtilization: res.Assignment.AvgUtilization(),
		AvgPreference:  res.Assignment.AvgPreference(),
		ISCIterations:  len(res.Trace),
		SizeHistogram:  hist,
		Assignment:     json.RawMessage(asg.Bytes()),
	}
	if res.Report != nil {
		out.Report = &client.Report{
			Wirelength: res.Report.Wirelength,
			Area:       res.Report.Area,
			AvgDelay:   res.Report.AvgDelay,
			MaxDelay:   res.Report.MaxDelay,
			Cost:       res.Report.Cost,
			Wires:      res.Report.Wires,
		}
	}
	return json.Marshal(out)
}
