// Package server implements the autoncsd compile service: an HTTP/JSON
// API over a bounded job queue of AutoNCS compiles, backed by the
// content-addressed result cache (internal/cache) keyed by
// autoncs.CanonicalHash.
//
// Design in one paragraph: a POST materializes the request into a
// (network, config, key) spec, probes the cache — a hit answers
// immediately with the stored payload, bit-identical to what a fresh
// compile would produce — and otherwise goes through the admission
// batcher, which coalesces identical submissions onto one in-flight
// compile (a single-flight table keyed by the content address, see
// flight.go): the first submission of a key leads and occupies a queue
// slot, later ones attach as followers at zero queue cost, and all finish
// with the same bit-identical payload. Admitted leaders land on one of
// two priority queues (interactive jumps batch) drained by a fixed pool
// of worker goroutines. Each compile runs under a flight-owned
// context.Context with reference-counted interest: DELETE /v1/jobs/{id}
// or a disconnected ?wait=1 caller withdraws one submission, and the
// compile aborts only when the last interested waiter is gone. Drain
// stops intake, lets the queues run dry, and optionally cancels
// stragglers when its context expires — cmd/autoncsd wires SIGTERM to it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/client"
	"repro/internal/cache"
	"repro/internal/fleet"
	"repro/internal/obs"
)

// Options configures a Server.
type Options struct {
	// Slots is the number of compiles that run concurrently; 0 means 2.
	Slots int
	// QueueDepth bounds how many accepted leader jobs may wait for a slot
	// across both priorities; 0 means 8. A full queue rejects with 429 +
	// Retry-After. Followers attach to in-flight compiles without
	// consuming queue capacity.
	QueueDepth int
	// CompileWorkers is the worker-pool bound handed to each compile
	// (Config.Workers); 0 divides the CPUs evenly across the slots. The
	// compiled results are identical for any value.
	CompileWorkers int
	// AdmitBatch is the admission batcher's maximum batch size; 0 means 16.
	AdmitBatch int
	// AdmitWindow is how long the batcher waits to fill a batch after the
	// first submission arrives; 0 means 2ms. Admission latency is bounded
	// by this window, negligible against any compile.
	AdmitWindow time.Duration
	// DeltaMaxEditRatio is the edit-ratio cutoff for delta recompiles: a
	// ?base= submission whose edit set touches more than this fraction of
	// the base's connections falls back to a full compile. 0 means the
	// default (0.1); negative disables delta serving entirely (every
	// ?base= submission falls back).
	DeltaMaxEditRatio float64
	// Cache is the content-addressed result store; nil creates a default
	// in-memory store.
	Cache *cache.Store
	// Log receives request and job lifecycle lines; nil discards them.
	Log *slog.Logger

	// Self is this daemon's own base URL in the fleet (e.g.
	// "http://10.0.0.1:8080"). Empty disables fleet peering entirely; set,
	// it enables the consistent-hash peer cache protocol even with no
	// remote peers (a singleton fleet is inert but valid).
	Self string
	// Peers is the fleet membership list (base URLs). Self is added
	// automatically if absent; order and duplicate spellings do not matter.
	// Requires Self.
	Peers []string
	// PeerTimeout bounds each peer probe attempt; 0 means the fleet
	// default (2s).
	PeerTimeout time.Duration
	// PeerFailureThreshold consecutive probe failures take a peer out of
	// the ring; 0 means the fleet default (3).
	PeerFailureThreshold int
	// PeerRecoveryInterval is how long a dead peer stays out of the ring
	// before a trial probe may readmit it; 0 means the fleet default (5s).
	PeerRecoveryInterval time.Duration
}

// Server is the compile service. Use New; a Server must be shut down with
// Drain (or Close) to release its worker goroutines.
type Server struct {
	slots          int
	queueDepth     int
	compileWorkers int
	admitBatch     int
	admitWait      time.Duration
	deltaMaxRatio  float64
	cache          *cache.Store
	log            *slog.Logger
	metrics        *obs.Metrics
	fleet          *fleet.Fleet // nil when Options.Self is empty
	// compileFn runs one spec; the default is compileSpec.run. Tests
	// substitute a controllable stand-in to exercise queue saturation and
	// drain deterministically.
	compileFn func(context.Context, *compileSpec, int, obs.Observer) (*autoncs.Result, error)

	baseCtx      context.Context
	baseCancel   context.CancelFunc
	qInteractive chan *job
	qBatch       chan *job
	workers      sync.WaitGroup
	start        time.Time

	admitCh   chan *admitReq
	admitMu   sync.RWMutex // write-locked once, when intake stops for good
	stopAdmit chan struct{}
	stopOnce  sync.Once
	aux       sync.WaitGroup // the admission batcher goroutine

	mu           sync.Mutex
	draining     bool
	admitStopped bool // guarded by admitMu, not mu
	queuedJobs   int  // leaders admitted to either queue, not yet picked up
	admitRounds  int64
	flights      map[cache.Key]*flight
	jobs         map[string]*job
	order        []string // job ids oldest-first, for record eviction
	seq          int64

	inflight       atomic.Int64
	accepted       atomic.Int64
	completed      atomic.Int64
	failed         atomic.Int64
	cancelled      atomic.Int64
	rejected       atomic.Int64
	cacheHits      atomic.Int64
	coalesced      atomic.Int64
	deltaFallbacks atomic.Int64
	lastJobSeconds atomic.Int64 // rounded up, for Retry-After estimates
}

// maxJobRecords bounds the finished-job records kept for status queries;
// results stay retrievable through the cache regardless.
const maxJobRecords = 4096

// maxRequestBody bounds a POST /v1/compile body; beyond it the request is
// answered with 413.
const maxRequestBody = 32 << 20

// drainRetryAfter is the Retry-After hint on 503s during shutdown.
const drainRetryAfter = 10 * time.Second

// New starts a Server: the worker pool and admission batcher are live when
// New returns.
func New(opts Options) (*Server, error) {
	slots := opts.Slots
	if slots == 0 {
		slots = 2
	}
	if slots < 0 {
		return nil, fmt.Errorf("server: negative slots %d", slots)
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = 8
	}
	if depth < 0 {
		return nil, fmt.Errorf("server: negative queue depth %d", depth)
	}
	cw := opts.CompileWorkers
	if cw < 0 {
		return nil, fmt.Errorf("server: negative compile workers %d", cw)
	}
	if cw == 0 {
		cw = runtime.NumCPU() / slots
		if cw < 1 {
			cw = 1
		}
	}
	ab := opts.AdmitBatch
	if ab == 0 {
		ab = 16
	}
	if ab < 0 {
		return nil, fmt.Errorf("server: negative admit batch %d", ab)
	}
	aw := opts.AdmitWindow
	if aw == 0 {
		aw = 2 * time.Millisecond
	}
	if aw < 0 {
		return nil, fmt.Errorf("server: negative admit window %v", aw)
	}
	dmr := opts.DeltaMaxEditRatio
	if dmr == 0 {
		dmr = defaultDeltaMaxRatio
	}
	store := opts.Cache
	if store == nil {
		var err error
		if store, err = cache.New(cache.Options{}); err != nil {
			return nil, err
		}
	}
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	var fl *fleet.Fleet
	if opts.Self != "" {
		var err error
		fl, err = fleet.New(fleet.Options{
			Self:             opts.Self,
			Peers:            opts.Peers,
			Timeout:          opts.PeerTimeout,
			FailureThreshold: opts.PeerFailureThreshold,
			RecoveryInterval: opts.PeerRecoveryInterval,
		})
		if err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
	} else if len(opts.Peers) > 0 {
		return nil, fmt.Errorf("server: peers configured without self")
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		slots:          slots,
		queueDepth:     depth,
		compileWorkers: cw,
		admitBatch:     ab,
		admitWait:      aw,
		deltaMaxRatio:  dmr,
		cache:          store,
		log:            log,
		metrics:        &obs.Metrics{},
		fleet:          fl,
		baseCtx:        ctx,
		baseCancel:     cancel,
		qInteractive:   make(chan *job, depth),
		qBatch:         make(chan *job, depth),
		admitCh:        make(chan *admitReq, 64),
		stopAdmit:      make(chan struct{}),
		start:          time.Now(),
		flights:        make(map[cache.Key]*flight),
		jobs:           make(map[string]*job),
	}
	s.compileFn = func(ctx context.Context, sp *compileSpec, workers int, ob obs.Observer) (*autoncs.Result, error) {
		return sp.run(ctx, workers, ob)
	}
	s.aux.Add(1)
	go s.admitter()
	s.workers.Add(slots)
	for i := 0; i < slots; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /v1/cache/{key}", s.handleCache) // also matches HEAD
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Drain performs a graceful shutdown: no new work is accepted, queued and
// in-flight jobs run to completion, and the worker pool exits. If ctx
// expires first, the remaining jobs are cancelled (they terminate as
// state=cancelled through the flow's context plumbing) and Drain still
// waits for the workers to unwind before returning ctx's error. Drain is
// idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.qInteractive)
		close(s.qBatch)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	var derr error
	select {
	case <-done:
	case <-ctx.Done():
		s.baseCancel()
		<-done
		derr = ctx.Err()
	}
	s.stopAdmitter()
	return derr
}

// stopAdmitter shuts the admission batcher down: no further intake, the
// channel is flushed with 503s, and the goroutine exits.
func (s *Server) stopAdmitter() {
	s.stopOnce.Do(func() {
		s.admitMu.Lock()
		s.admitStopped = true
		s.admitMu.Unlock()
		close(s.stopAdmit)
	})
	s.aux.Wait()
}

// Close is an immediate Drain: cancel everything, wait for the workers.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx) //nolint:errcheck // the context error is the point
	s.baseCancel()
}

// worker drains the priority queues until Drain closes them.
func (s *Server) worker() {
	defer s.workers.Done()
	for {
		j, ok := s.nextJob()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// nextJob takes the next leader job, preferring interactive work without
// ever starving batch: an interactive job ready right now wins; otherwise
// whichever queue delivers first. Both channels close on Drain; their
// buffered remainders are still drained before the worker exits.
func (s *Server) nextJob() (*job, bool) {
	select {
	case j, ok := <-s.qInteractive:
		if ok {
			return j, true
		}
		j, ok = <-s.qBatch
		return j, ok
	default:
	}
	select {
	case j, ok := <-s.qInteractive:
		if ok {
			return j, true
		}
		j, ok = <-s.qBatch
		return j, ok
	case j, ok := <-s.qBatch:
		if ok {
			return j, true
		}
		j, ok = <-s.qInteractive
		return j, ok
	}
}

// runJob executes one queued leader job — and with it every follower
// attached to its flight — to a terminal state.
func (s *Server) runJob(j *job) {
	fl := j.fl
	s.mu.Lock()
	s.queuedJobs--
	if err := fl.ctx.Err(); err != nil {
		s.dropFlightLocked(fl)
		s.finishFlightLocked(fl, client.StateCancelled, nil, err, nil)
		s.mu.Unlock()
		s.log.Info("job cancelled before start", "job", j.id)
		return
	}
	fl.running = true
	fl.startedAt = time.Now()
	for _, aj := range fl.jobs {
		if !aj.terminal() {
			aj.setRunningAt(fl.startedAt)
		}
	}
	waiters := fl.waiters
	s.mu.Unlock()

	s.inflight.Add(1)
	s.log.Info("job start", "job", j.id, "key", j.spec.key.Hex(),
		"neurons", j.spec.net.N(), "priority", j.priority, "waiters", waiters)
	start := time.Now()
	res, err := s.compileFn(fl.ctx, j.spec, s.compileWorkers, s.metrics)
	elapsed := time.Since(start)
	s.inflight.Add(-1)
	// Every terminal compile — done, failed, or cancelled — updates the
	// Retry-After estimate, so it cannot go stale across a run of failures.
	s.lastJobSeconds.Store(int64(math.Ceil(elapsed.Seconds())))
	defer fl.cancel() // release the context's resources; the flow has returned

	state := client.StateDone
	var payload []byte
	var stageTimes map[string]float64
	switch {
	case err != nil:
		state = client.StateFailed
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			state = client.StateCancelled
		}
	default:
		payload, err = encodeResult(j.spec, res)
		if err != nil {
			state = client.StateFailed
			s.log.Error("job result encoding failed", "job", j.id, "err", err)
		} else {
			// Publish to the cache before dropping the flight, so a racing
			// admission finds either the flight or the payload — never
			// neither.
			if perr := s.cache.Put(j.spec.key, payload); perr != nil {
				// A cache write failure only costs future hits; the job is
				// fine.
				s.log.Warn("cache put failed", "job", j.id, "err", perr)
			}
			// Store the resumable artifact beside the result so this
			// compile can serve as a future delta's base.
			s.putArtifact(j, res)
			stageTimes = make(map[string]float64, len(res.StageTimes))
			for stage, d := range res.StageTimes {
				stageTimes[string(stage)] = d.Seconds()
			}
		}
	}

	s.mu.Lock()
	s.dropFlightLocked(fl)
	if state == client.StateDone {
		// Completed counts compiles run, not jobs answered: followers and
		// cache hits have their own counters.
		s.completed.Add(1)
	}
	s.finishFlightLocked(fl, state, payload, err, stageTimes)
	s.mu.Unlock()
	s.log.Info("job end", "job", j.id, "state", state, "elapsed", elapsed, "waiters", waiters, "err", err)
}

// handleCompile is POST /v1/compile[?wait=1].
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	submitted := time.Now()
	var req client.CompileRequest
	body := http.MaxBytesReader(w, r.Body, maxRequestBody)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			s.writeErr(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds the %d-byte limit", mbe.Limit), 0)
			return
		}
		s.writeErr(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err), 0)
		return
	}
	// ?base=<key> is the query-parameter spelling of CompileRequest.Base.
	// Folding it in before the spec is built keeps key derivation in one
	// place (client.CompileRequest.Spec).
	if base := r.URL.Query().Get("base"); base != "" {
		if req.Base != "" && req.Base != base {
			s.writeErr(w, http.StatusBadRequest,
				fmt.Sprintf("?base=%s disagrees with the request body's base %s", base, req.Base), 0)
			return
		}
		req.Base = base
	}
	spec, err := buildSpec(req)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	wait := r.URL.Query().Get("wait") != ""
	priority, err := resolvePriority(req.Priority, wait)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	if spec.delta {
		if status, code, msg := s.resolveDelta(r.Context(), spec); status != 0 {
			s.writeErrCode(w, status, code, msg)
			return
		}
	}

	// Cache probe. A hit never consumes a queue slot: the job record is
	// born terminal.
	payload, hit, disk := s.cache.GetDetail(spec.key)
	s.metrics.Observe(obs.CacheLookup{Key: spec.key.Hex(), Hit: hit, Disk: disk})
	if hit {
		j := s.cacheHitJob(spec, priority, payload, submitted, "")
		s.log.Info("cache hit", "job", j.id, "key", spec.key.Hex(), "disk", disk)
		s.writeJSON(w, http.StatusOK, j.status(wait))
		return
	}

	// Fleet probe: a local miss for a key whose ring owner is a live remote
	// peer asks that owner before admitting a local compile. A peer hit is
	// answered exactly like a cache hit — the payload is bit-identical by
	// content addressing — and written through to the local memory LRU so
	// repeats are local. Any fleet failure falls through to a local
	// compile: peering accelerates, it never gates.
	if s.fleet != nil {
		if lk := s.fleet.Find(r.Context(), [32]byte(spec.key)); lk != nil {
			s.metrics.Observe(obs.PeerLookup{
				Key: spec.key.Hex(), Peer: lk.Peer, Hit: lk.Hit,
				Err: lk.Err != nil, Elapsed: lk.Elapsed,
			})
			if lk.Hit {
				s.cache.PutMemory(spec.key, lk.Payload)
				j := s.cacheHitJob(spec, priority, lk.Payload, submitted, lk.Peer)
				s.log.Info("peer cache hit", "job", j.id, "key", spec.key.Hex(),
					"peer", lk.Peer, "elapsed", lk.Elapsed)
				s.writeJSON(w, http.StatusOK, j.status(wait))
				return
			}
			if lk.Err != nil {
				s.log.Warn("peer lookup failed", "key", spec.key.Hex(),
					"peer", lk.Peer, "err", lk.Err)
			}
		}
	}

	ar := &admitReq{spec: spec, priority: priority, submitted: submitted, resp: make(chan admitResult, 1)}
	if !s.submitAdmit(ar) {
		s.writeErr(w, http.StatusServiceUnavailable, "draining: not accepting new work", drainRetryAfter)
		return
	}
	res := <-ar.resp
	switch res.kind {
	case admitRejected:
		s.writeErr(w, res.code, res.msg, res.retryAfter)
		return
	case admitCached:
		s.writeJSON(w, http.StatusOK, res.j.status(wait))
		return
	}
	j := res.j
	if !wait {
		s.writeJSON(w, http.StatusAccepted, j.status(false))
		return
	}
	select {
	case <-j.done:
		s.writeJSON(w, http.StatusOK, j.status(true))
	case <-r.Context().Done():
		// The waiting submitter vanished; its interest goes with it. The
		// compile itself aborts only when no other waiter remains.
		s.detachJob(j)
		<-j.done
	}
}

// resolvePriority maps the wire priority to the effective scheduling
// class: explicit values pass through, and an empty priority defaults to
// interactive for ?wait=1 submissions (a human is blocked on it) and
// batch for fire-and-forget ones.
func resolvePriority(p string, wait bool) (string, error) {
	switch p {
	case client.PriorityInteractive, client.PriorityBatch:
		return p, nil
	case "":
		if wait {
			return client.PriorityInteractive, nil
		}
		return client.PriorityBatch, nil
	}
	return "", fmt.Errorf("unknown priority %q (want %q or %q)",
		p, client.PriorityInteractive, client.PriorityBatch)
}

// handleJob is GET /v1/jobs/{id}. With ?wait=1 it blocks until the job
// reaches a terminal state — a passive watch, so a disconnecting watcher
// does NOT cancel the job (unlike the submitter's wait on POST).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		s.writeErr(w, http.StatusNotFound, "no such job", 0)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	s.writeJSON(w, http.StatusOK, j.status(false))
}

// handleCancel is DELETE /v1/jobs/{id}: withdraw one submission's interest
// in its compile. The record finishes cancelled immediately; the shared
// compile aborts only when this was its last interested waiter.
// Cancelling a terminal job is a no-op that reports the final state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		s.writeErr(w, http.StatusNotFound, "no such job", 0)
		return
	}
	if !j.terminal() {
		s.log.Info("job cancel requested", "job", j.id)
		s.detachJob(j)
	}
	s.writeJSON(w, http.StatusAccepted, j.status(false))
}

// handleResult is GET /v1/results/{id}: the raw cached payload. Serving
// the stored bytes verbatim (not a re-marshal) is what makes the
// bit-identity guarantee directly observable to clients.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		s.writeErr(w, http.StatusNotFound, "no such job", 0)
		return
	}
	payload := j.resultBytes()
	if payload == nil {
		st := j.status(false)
		s.writeErr(w, http.StatusConflict, fmt.Sprintf("job is %s, not done", st.State), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Autoncs-Key", j.spec.key.Hex())
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// handleCache is GET|HEAD /v1/cache/{key}: the peer cache protocol. It
// serves this daemon's own cache verbatim — raw stored payload, the
// content address echoed in X-Autoncs-Key — and never forwards: a peer
// asking here is already talking to the key's owner, and forwarding would
// let a misconfigured ring bounce a lookup around the fleet. HEAD is the
// cheap existence probe (same headers, no body). A miss is a plain 404;
// the prober treats it as "compile it yourself", not as a failure.
func (s *Server) handleCache(w http.ResponseWriter, r *http.Request) {
	key, err := cache.ParseKey(r.PathValue("key"))
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	payload, hit, _ := s.cache.GetDetail(key)
	if !hit {
		s.writeErr(w, http.StatusNotFound, "not cached", 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Autoncs-Key", key.Hex())
	w.Header().Set("Content-Length", strconv.Itoa(len(payload)))
	w.WriteHeader(http.StatusOK)
	if r.Method == http.MethodHead {
		return
	}
	w.Write(payload) //nolint:errcheck // a vanished prober costs nothing
}

// handleHealth is GET /healthz: 200 ok, or 503 once draining.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := client.Health{Status: "ok", UptimeSeconds: time.Since(s.start).Seconds()}
	code := http.StatusOK
	if draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

// snapshotMetrics merges the serving counters with the aggregated flow
// observer and the cache stats.
func (s *Server) snapshotMetrics() client.Metrics {
	s.mu.Lock()
	draining := s.draining
	queued := s.queuedJobs
	flights := len(s.flights)
	admitRounds := s.admitRounds
	s.mu.Unlock()
	snap := s.metrics.Snapshot()
	stageSeconds := make(map[string]float64, len(snap.StageTimes))
	for _, stage := range obs.Stages() {
		if d, ok := snap.StageTimes[stage]; ok {
			stageSeconds[string(stage)] = d.Seconds()
		}
	}
	m := client.Metrics{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Draining:         draining,
		WorkerSlots:      s.slots,
		QueueCapacity:    s.queueDepth,
		QueueDepth:       queued,
		QueueInteractive: len(s.qInteractive),
		QueueBatch:       len(s.qBatch),
		InFlight:         int(s.inflight.Load()),
		Flights:          flights,
		AdmitRounds:      admitRounds,
		JobsAccepted:     s.accepted.Load(),
		JobsCompleted:    s.completed.Load(),
		JobsFailed:       s.failed.Load(),
		JobsCancelled:    s.cancelled.Load(),
		JobsRejected:     s.rejected.Load(),
		JobsCacheHits:    s.cacheHits.Load(),
		JobsCoalesced:    s.coalesced.Load(),
		CacheHits:        int64(snap.CacheHits),
		CacheMisses:      int64(snap.CacheMisses),
		CacheEntries:     s.cache.Len(),
		Compiles:         snap.Compiles,
		StageSeconds:     stageSeconds,
		RequestRecords:   int64(snap.RequestRecords),
		DeltaCompiles:    int64(snap.DeltaCompiles),
		DeltaFallbacks:   s.deltaFallbacks.Load(),
	}
	if snap.DeltaCompiles > 0 {
		m.LastDelta = wireDelta(snap.LastDelta)
	}
	m.RetryAfterSeconds = s.retryAfter().Seconds()
	if s.fleet != nil {
		fs := s.fleet.Stats()
		m.Peers = fs.Total
		m.PeersAlive = fs.Alive
		m.PeerHits = int64(snap.PeerHits)
		m.PeerMisses = int64(snap.PeerMisses)
		m.PeerErrors = int64(snap.PeerErrors)
	}
	if snap.RequestRecords > 0 {
		m.LastRequest = wireTiming(snap.LastRequest)
	}
	return m
}

// wireDelta converts the internal delta reuse record to its wire form.
func wireDelta(d obs.DeltaStats) *client.DeltaSummary {
	return &client.DeltaSummary{
		Edits:          d.Edits,
		AddedEdges:     d.AddedEdges,
		RemovedEdges:   d.RemovedEdges,
		TouchedNeurons: d.TouchedNeurons,
		EditRatio:      d.EditRatio,

		BaseCrossbars:    d.BaseCrossbars,
		KeptCrossbars:    d.KeptCrossbars,
		DirtyCrossbars:   d.DirtyCrossbars,
		NewCrossbars:     d.NewCrossbars,
		ResidualConns:    d.ResidualConns,
		ClusterReuseFrac: d.ClusterReuseFrac,

		Cells:          d.Cells,
		SeededCells:    d.SeededCells,
		PlaceReuseFrac: d.PlaceReuseFrac,

		Wires:          d.Wires,
		ReusedWires:    d.ReusedWires,
		ReroutedWires:  d.ReroutedWires,
		RouteReuseFrac: d.RouteReuseFrac,
		FullRoute:      d.FullRoute,
	}
}

// wireTiming converts the internal timing record to its wire form.
func wireTiming(t obs.RequestTiming) *client.RequestTiming {
	return &client.RequestTiming{
		Job:              t.Job,
		Key:              t.Key,
		Priority:         t.Priority,
		Coalesced:        t.Coalesced,
		CacheHit:         t.CacheHit,
		State:            t.State,
		SubmittedAt:      t.Submitted.UTC().Format(time.RFC3339Nano),
		AdmitWaitSeconds: t.AdmitWait.Seconds(),
		QueueWaitSeconds: t.QueueWait.Seconds(),
		RunSeconds:       t.Run.Seconds(),
		TotalSeconds:     t.Total.Seconds(),
	}
}

func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// retryAfter estimates when a slot is likely to free: the last terminal
// compile's duration, clamped to [1s, 60s].
func (s *Server) retryAfter() time.Duration {
	secs := s.lastJobSeconds.Load()
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("encoding response", "err", err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
	}
	s.writeJSON(w, code, errorJSON{Error: msg})
}

// writeErrCode answers with a typed error: the stable machine-readable
// code rides in the body beside the message (see the client.Code*
// constants), so clients can branch without parsing prose.
func (s *Server) writeErrCode(w http.ResponseWriter, status int, code, msg string) {
	s.writeJSON(w, status, errorJSON{Error: msg, Code: code})
}

// errorJSON is the server-side shape of the client package's error
// envelope (client.errorBody is unexported; the field layout is the wire
// contract).
type errorJSON struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}
