// Package server implements the autoncsd compile service: an HTTP/JSON
// API over a bounded job queue of AutoNCS compiles, backed by the
// content-addressed result cache (internal/cache) keyed by
// autoncs.CanonicalHash.
//
// Design in one paragraph: a POST materializes the request into a
// (network, config, key) spec, probes the cache — a hit answers
// immediately with the stored payload, bit-identical to what a fresh
// compile would produce — and otherwise enqueues a job onto a channel of
// bounded depth drained by a fixed pool of worker goroutines. Each job
// runs under its own context.Context, so DELETE /v1/jobs/{id} (or a
// disconnected ?wait=1 caller) aborts the flow mid-stage through the
// pipeline's cancellation plumbing. Drain stops intake, lets the queue run
// dry, and optionally cancels stragglers when its context expires —
// cmd/autoncsd wires SIGTERM to it.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/client"
	"repro/internal/cache"
	"repro/internal/obs"
)

// Options configures a Server.
type Options struct {
	// Slots is the number of compiles that run concurrently; 0 means 2.
	Slots int
	// QueueDepth bounds how many accepted jobs may wait for a slot; 0
	// means 8. A full queue rejects with 429 + Retry-After.
	QueueDepth int
	// CompileWorkers is the worker-pool bound handed to each compile
	// (Config.Workers); 0 divides the CPUs evenly across the slots. The
	// compiled results are identical for any value.
	CompileWorkers int
	// Cache is the content-addressed result store; nil creates a default
	// in-memory store.
	Cache *cache.Store
	// Log receives request and job lifecycle lines; nil discards them.
	Log *slog.Logger
}

// Server is the compile service. Use New; a Server must be shut down with
// Drain (or Close) to release its worker goroutines.
type Server struct {
	slots          int
	queueDepth     int
	compileWorkers int
	cache          *cache.Store
	log            *slog.Logger
	metrics        *obs.Metrics
	// compileFn runs one spec; the default is compileSpec.run. Tests
	// substitute a controllable stand-in to exercise queue saturation and
	// drain deterministically.
	compileFn func(context.Context, *compileSpec, int, obs.Observer) (*autoncs.Result, error)

	baseCtx    context.Context
	baseCancel context.CancelFunc
	queue      chan *job
	workers    sync.WaitGroup
	start      time.Time

	mu       sync.Mutex
	draining bool
	jobs     map[string]*job
	order    []string // job ids oldest-first, for record eviction
	seq      int64

	inflight       atomic.Int64
	accepted       atomic.Int64
	completed      atomic.Int64
	failed         atomic.Int64
	cancelled      atomic.Int64
	rejected       atomic.Int64
	lastJobSeconds atomic.Int64 // rounded up, for Retry-After estimates
}

// maxJobRecords bounds the finished-job records kept for status queries;
// results stay retrievable through the cache regardless.
const maxJobRecords = 4096

// New starts a Server: the worker pool is live when New returns.
func New(opts Options) (*Server, error) {
	slots := opts.Slots
	if slots == 0 {
		slots = 2
	}
	if slots < 0 {
		return nil, fmt.Errorf("server: negative slots %d", slots)
	}
	depth := opts.QueueDepth
	if depth == 0 {
		depth = 8
	}
	if depth < 0 {
		return nil, fmt.Errorf("server: negative queue depth %d", depth)
	}
	cw := opts.CompileWorkers
	if cw < 0 {
		return nil, fmt.Errorf("server: negative compile workers %d", cw)
	}
	if cw == 0 {
		cw = runtime.NumCPU() / slots
		if cw < 1 {
			cw = 1
		}
	}
	store := opts.Cache
	if store == nil {
		var err error
		if store, err = cache.New(cache.Options{}); err != nil {
			return nil, err
		}
	}
	log := opts.Log
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		slots:          slots,
		queueDepth:     depth,
		compileWorkers: cw,
		cache:          store,
		log:            log,
		metrics:        &obs.Metrics{},
		baseCtx:        ctx,
		baseCancel:     cancel,
		queue:          make(chan *job, depth),
		start:          time.Now(),
		jobs:           make(map[string]*job),
	}
	s.compileFn = func(ctx context.Context, sp *compileSpec, workers int, ob obs.Observer) (*autoncs.Result, error) {
		return sp.run(ctx, workers, ob)
	}
	s.workers.Add(slots)
	for i := 0; i < slots; i++ {
		go s.worker()
	}
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", s.handleCompile)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/results/{id}", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// Drain performs a graceful shutdown: no new work is accepted, queued and
// in-flight jobs run to completion, and the worker pool exits. If ctx
// expires first, the remaining jobs are cancelled (they terminate as
// state=cancelled through the flow's context plumbing) and Drain still
// waits for the workers to unwind before returning ctx's error. Drain is
// idempotent.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.baseCancel()
		<-done
		return ctx.Err()
	}
}

// Close is an immediate Drain: cancel everything, wait for the workers.
func (s *Server) Close() {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s.Drain(ctx) //nolint:errcheck // the context error is the point
	s.baseCancel()
}

// worker drains the queue until Drain closes it.
func (s *Server) worker() {
	defer s.workers.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one queued job to a terminal state.
func (s *Server) runJob(j *job) {
	if err := j.ctx.Err(); err != nil {
		s.cancelled.Add(1)
		j.finish(client.StateCancelled, nil, err, nil)
		s.log.Info("job cancelled before start", "job", j.id)
		return
	}
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	j.setRunning()
	s.log.Info("job start", "job", j.id, "key", j.spec.key.Hex(), "neurons", j.spec.net.N())
	start := time.Now()
	res, err := s.compileFn(j.ctx, j.spec, s.compileWorkers, s.metrics)
	elapsed := time.Since(start)
	if err != nil {
		state := client.StateFailed
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			state = client.StateCancelled
			s.cancelled.Add(1)
		} else {
			s.failed.Add(1)
		}
		j.finish(state, nil, err, nil)
		s.log.Info("job end", "job", j.id, "state", state, "err", err)
		return
	}
	payload, err := encodeResult(j.spec, res)
	if err != nil {
		s.failed.Add(1)
		j.finish(client.StateFailed, nil, err, nil)
		s.log.Error("job result encoding failed", "job", j.id, "err", err)
		return
	}
	if err := s.cache.Put(j.spec.key, payload); err != nil {
		// A cache write failure only costs future hits; the job is fine.
		s.log.Warn("cache put failed", "job", j.id, "err", err)
	}
	st := make(map[string]float64, len(res.StageTimes))
	for stage, d := range res.StageTimes {
		st[string(stage)] = d.Seconds()
	}
	s.completed.Add(1)
	s.lastJobSeconds.Store(int64(math.Ceil(elapsed.Seconds())))
	j.finish(client.StateDone, payload, nil, st)
	s.log.Info("job end", "job", j.id, "state", "done", "elapsed", elapsed)
}

// handleCompile is POST /v1/compile[?wait=1].
func (s *Server) handleCompile(w http.ResponseWriter, r *http.Request) {
	var req client.CompileRequest
	body := http.MaxBytesReader(w, r.Body, 32<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		s.writeErr(w, http.StatusBadRequest, fmt.Sprintf("decoding request: %v", err), 0)
		return
	}
	spec, err := buildSpec(req)
	if err != nil {
		s.writeErr(w, http.StatusBadRequest, err.Error(), 0)
		return
	}
	wait := r.URL.Query().Get("wait") != ""

	// Cache probe. A hit never consumes a queue slot: the job record is
	// born terminal.
	payload, hit := s.cache.Get(spec.key)
	s.metrics.Observe(obs.CacheLookup{Key: spec.key.Hex(), Hit: hit})
	if hit {
		j := s.newJob(spec)
		j.cached = true
		j.finish(client.StateDone, payload, nil, nil)
		s.accepted.Add(1)
		s.completed.Add(1)
		s.log.Info("cache hit", "job", j.id, "key", spec.key.Hex())
		s.writeJSON(w, http.StatusOK, j.status(wait))
		return
	}

	j := s.newJob(spec)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		s.dropJob(j)
		s.writeErr(w, http.StatusServiceUnavailable, "draining: not accepting new work", 10*time.Second)
		return
	}
	select {
	case s.queue <- j:
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		s.dropJob(j)
		s.rejected.Add(1)
		s.writeErr(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full (%d queued, %d running)", s.queueDepth, s.inflight.Load()),
			s.retryAfter())
		return
	}
	s.accepted.Add(1)

	if !wait {
		s.writeJSON(w, http.StatusAccepted, j.status(false))
		return
	}
	select {
	case <-j.done:
		s.writeJSON(w, http.StatusOK, j.status(true))
	case <-r.Context().Done():
		// The waiting client vanished; its compile goes with it.
		j.cancel()
		<-j.done
	}
}

// handleJob is GET /v1/jobs/{id}. With ?wait=1 it blocks until the job
// reaches a terminal state — a passive watch, so a disconnecting watcher
// does NOT cancel the job (unlike the submitter's wait on POST).
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		s.writeErr(w, http.StatusNotFound, "no such job", 0)
		return
	}
	if r.URL.Query().Get("wait") != "" {
		select {
		case <-j.done:
		case <-r.Context().Done():
			return
		}
	}
	s.writeJSON(w, http.StatusOK, j.status(false))
}

// handleCancel is DELETE /v1/jobs/{id}: cooperative cancellation of a
// queued or running job. Cancelling a terminal job is a no-op that
// reports the final state.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		s.writeErr(w, http.StatusNotFound, "no such job", 0)
		return
	}
	if !j.terminal() {
		j.cancel()
		s.log.Info("job cancel requested", "job", j.id)
	}
	s.writeJSON(w, http.StatusAccepted, j.status(false))
}

// handleResult is GET /v1/results/{id}: the raw cached payload. Serving
// the stored bytes verbatim (not a re-marshal) is what makes the
// bit-identity guarantee directly observable to clients.
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobByID(r.PathValue("id"))
	if !ok {
		s.writeErr(w, http.StatusNotFound, "no such job", 0)
		return
	}
	payload := j.resultBytes()
	if payload == nil {
		st := j.status(false)
		s.writeErr(w, http.StatusConflict, fmt.Sprintf("job is %s, not done", st.State), 0)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Autoncs-Key", j.spec.key.Hex())
	w.WriteHeader(http.StatusOK)
	w.Write(payload)
}

// handleHealth is GET /healthz: 200 ok, or 503 once draining.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	h := client.Health{Status: "ok", UptimeSeconds: time.Since(s.start).Seconds()}
	code := http.StatusOK
	if draining {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	s.writeJSON(w, code, h)
}

// handleMetrics is GET /metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.snapshotMetrics())
}

// snapshotMetrics merges the serving counters with the aggregated flow
// observer and the cache stats.
func (s *Server) snapshotMetrics() client.Metrics {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	snap := s.metrics.Snapshot()
	stageSeconds := make(map[string]float64, len(snap.StageTimes))
	for _, stage := range obs.Stages() {
		if d, ok := snap.StageTimes[stage]; ok {
			stageSeconds[string(stage)] = d.Seconds()
		}
	}
	return client.Metrics{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Draining:      draining,
		WorkerSlots:   s.slots,
		QueueCapacity: s.queueDepth,
		QueueDepth:    len(s.queue),
		InFlight:      int(s.inflight.Load()),
		JobsAccepted:  s.accepted.Load(),
		JobsCompleted: s.completed.Load(),
		JobsFailed:    s.failed.Load(),
		JobsCancelled: s.cancelled.Load(),
		JobsRejected:  s.rejected.Load(),
		CacheHits:     int64(snap.CacheHits),
		CacheMisses:   int64(snap.CacheMisses),
		CacheEntries:  s.cache.Len(),
		Compiles:      snap.Compiles,
		StageSeconds:  stageSeconds,
	}
}

// newJob allocates and registers a job record.
func (s *Server) newJob(spec *compileSpec) *job {
	ctx, cancel := context.WithCancel(s.baseCtx)
	s.mu.Lock()
	s.seq++
	j := &job{
		id:        fmt.Sprintf("j-%06d", s.seq),
		spec:      spec,
		ctx:       ctx,
		cancel:    cancel,
		done:      make(chan struct{}),
		state:     client.StateQueued,
		submitted: time.Now(),
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	// Evict the oldest finished records beyond the cap; never an active
	// job (an unfinished head stalls eviction, which is fine — the cap is
	// far above any plausible active set).
	for len(s.order) > maxJobRecords {
		old, ok := s.jobs[s.order[0]]
		if ok && !old.terminal() {
			break
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
	s.mu.Unlock()
	return j
}

// dropJob removes a job record that was never admitted (queue full or
// draining) so rejected submissions aren't queryable ghosts.
func (s *Server) dropJob(j *job) {
	j.cancel()
	s.mu.Lock()
	delete(s.jobs, j.id)
	for i, id := range s.order {
		if id == j.id {
			s.order = append(s.order[:i], s.order[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
}

func (s *Server) jobByID(id string) (*job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// retryAfter estimates when a slot is likely to free: the last completed
// compile's duration, clamped to [1s, 60s].
func (s *Server) retryAfter() time.Duration {
	secs := s.lastJobSeconds.Load()
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(v); err != nil {
		s.log.Error("encoding response", "err", err)
	}
}

func (s *Server) writeErr(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)))
	}
	s.writeJSON(w, code, map[string]string{"error": msg})
}
