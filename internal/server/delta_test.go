package server

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"repro"
	"repro/client"
	"repro/internal/cache"
)

// baseNet is the network smallReq compiles server-side (the daemon builds
// RandomSparseNetwork(120, 0.92, 5) from the RandomSpec).
func baseNet() *autoncs.Network {
	return autoncs.RandomSparseNetwork(120, 0.92, 5)
}

// editedNetText returns baseNet with a small localized edit (two removed,
// two added connections inside one neuron window), serialized in the
// autoncs-net text format — the shape of an interactive editing step.
func editedNetText(t *testing.T) string {
	t.Helper()
	edited := baseNet().Clone()
	removed, added := 0, 0
	for i := 10; i < 30 && removed < 2; i++ {
		for j := 10; j < 30; j++ {
			if i != j && edited.Has(i, j) {
				edited.Clear(i, j)
				removed++
				break
			}
		}
	}
	// The added edges live in a disjoint window so they cannot cancel the
	// removals back out.
	for i := 40; i < 60 && added < 2; i++ {
		for j := 40; j < 60; j++ {
			if i != j && !edited.Has(i, j) {
				edited.Set(i, j)
				added++
				break
			}
		}
	}
	if removed != 2 || added != 2 {
		t.Fatalf("edit construction removed %d added %d, want 2/2", removed, added)
	}
	var b strings.Builder
	if err := edited.Write(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestDeltaRoundTrip is the serving contract of incremental recompiles:
// a full compile leaves an artifact behind, an edited resubmission with
// ?base= runs as a delta cached under the delta key domain, the lineage
// is bit-stable (an identical delta resubmission is a cache hit with
// identical bytes), and a further edit can chain off the delta's own key.
func TestDeltaRoundTrip(t *testing.T) {
	s, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()

	base, err := c.CompileWait(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	if base.State != client.StateDone || base.BaseKey != "" {
		t.Fatalf("base compile: state %s base_key %q", base.State, base.BaseKey)
	}

	// The finished compile must have stored its resumable artifact.
	var bk [32]byte
	kb, err := cache.ParseKey(base.Key)
	if err != nil {
		t.Fatal(err)
	}
	bk = [32]byte(kb)
	if _, hit, _ := s.cache.GetDetail(cache.Key(client.ArtifactKey(bk))); !hit {
		t.Fatal("no artifact cached for the base compile")
	}

	editReq := client.CompileRequest{Net: editedNetText(t), Seed: 1, Base: base.Key}
	delta, err := c.CompileWait(ctx, editReq)
	if err != nil {
		t.Fatal(err)
	}
	if delta.State != client.StateDone {
		t.Fatalf("delta compile: %+v", delta)
	}
	if delta.BaseKey != base.Key {
		t.Fatalf("delta base_key %q, want %q", delta.BaseKey, base.Key)
	}
	if delta.Cached {
		t.Fatal("first delta compile claims to be cached")
	}
	// The delta is cached under the delta key domain, never the plain
	// content address of the edited network.
	plainReq := editReq
	plainReq.Base = ""
	plainKey, err := plainReq.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	wantKey := client.DeltaKey(bk, plainKey)
	if delta.Key != cache.Key(wantKey).Hex() {
		t.Fatalf("delta key %s, want DeltaKey %s", delta.Key, cache.Key(wantKey).Hex())
	}
	deltaBytes, err := c.ResultBytes(ctx, delta.ID)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Result(ctx, delta.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crossbars == 0 || res.Report == nil {
		t.Fatalf("delta result incomplete: %+v", res)
	}

	// Bit-stable lineage: the identical delta resubmission hits the cache
	// under the same key with byte-identical payload.
	again, err := c.CompileWait(ctx, editReq)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Key != delta.Key || again.BaseKey != base.Key {
		t.Fatalf("delta resubmission: cached %v key %s base %s", again.Cached, again.Key, again.BaseKey)
	}
	againBytes, err := c.ResultBytes(ctx, again.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(deltaBytes, againBytes) {
		t.Fatal("cached delta bytes differ from the computed ones")
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeltaCompiles != 1 {
		t.Errorf("delta compiles %d, want 1", m.DeltaCompiles)
	}
	if m.DeltaFallbacks != 0 {
		t.Errorf("delta fallbacks %d, want 0", m.DeltaFallbacks)
	}
	if m.LastDelta == nil {
		t.Fatal("no last_delta in metrics")
	}
	if m.LastDelta.KeptCrossbars == 0 || m.LastDelta.EditRatio <= 0 {
		t.Errorf("last_delta reuse looks wrong: %+v", m.LastDelta)
	}

	// Chaining: the delta's own artifact can serve as the next base. The
	// same edited net against the delta it produced is a zero-edit delta —
	// still a real compile, cached under its own lineage key.
	chain, err := c.CompileWait(ctx, client.CompileRequest{Net: editedNetText(t), Seed: 1, Base: delta.Key})
	if err != nil {
		t.Fatal(err)
	}
	if chain.State != client.StateDone || chain.BaseKey != delta.Key {
		t.Fatalf("chained delta: state %s base %q", chain.State, chain.BaseKey)
	}
}

// TestDeltaConfigMismatch: a delta request under a different config vector
// than the base must be refused with the typed 409.
func TestDeltaConfigMismatch(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()
	base, err := c.CompileWait(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.CompileWait(ctx, client.CompileRequest{Net: editedNetText(t), Seed: 2, Base: base.Key})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 409 || ae.Code != client.CodeBaseConfigMismatch {
		t.Fatalf("want 409 %s, got %v", client.CodeBaseConfigMismatch, err)
	}
}

// TestDeltaBaseMissing: a base key with no cached artifact is the typed
// 404.
func TestDeltaBaseMissing(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()
	_, err := c.CompileWait(ctx, client.CompileRequest{
		Net: editedNetText(t), Seed: 1,
		Base: strings.Repeat("ab", 32),
	})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 404 || ae.Code != client.CodeBaseArtifactMissing {
		t.Fatalf("want 404 %s, got %v", client.CodeBaseArtifactMissing, err)
	}
}

// TestDeltaBadBase: a malformed base key is a plain 400.
func TestDeltaBadBase(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	_, err := c.CompileWait(context.Background(), client.CompileRequest{Net: editedNetText(t), Seed: 1, Base: "zz"})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 400 {
		t.Fatalf("want 400, got %v", err)
	}
}

// TestDeltaSizeMismatch: an edited network with a different neuron count
// cannot delta against the base.
func TestDeltaSizeMismatch(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1})
	ctx := context.Background()
	base, err := c.CompileWait(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := autoncs.RandomSparseNetwork(60, 0.92, 5).Write(&b); err != nil {
		t.Fatal(err)
	}
	_, err = c.CompileWait(ctx, client.CompileRequest{Net: b.String(), Seed: 1, Base: base.Key})
	var ae *client.APIError
	if !errors.As(err, &ae) || ae.Status != 409 || ae.Code != client.CodeBaseSizeMismatch {
		t.Fatalf("want 409 %s, got %v", client.CodeBaseSizeMismatch, err)
	}
}

// TestDeltaEditRatioFallback: over the cutoff the submission silently runs
// as a full compile — plain key, no BaseKey, fallback counted.
func TestDeltaEditRatioFallback(t *testing.T) {
	_, c := newTestServer(t, Options{Slots: 1, DeltaMaxEditRatio: -1})
	ctx := context.Background()
	base, err := c.CompileWait(ctx, smallReq(1))
	if err != nil {
		t.Fatal(err)
	}
	editReq := client.CompileRequest{Net: editedNetText(t), Seed: 1, Base: base.Key}
	full, err := c.CompileWait(ctx, editReq)
	if err != nil {
		t.Fatal(err)
	}
	if full.State != client.StateDone || full.BaseKey != "" {
		t.Fatalf("fallback compile: state %s base_key %q", full.State, full.BaseKey)
	}
	plainReq := editReq
	plainReq.Base = ""
	plainKey, err := plainReq.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if full.Key != cache.Key(plainKey).Hex() {
		t.Fatalf("fallback key %s, want plain %s", full.Key, cache.Key(plainKey).Hex())
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.DeltaFallbacks != 1 || m.DeltaCompiles != 0 {
		t.Errorf("fallbacks %d deltas %d, want 1/0", m.DeltaFallbacks, m.DeltaCompiles)
	}
}
