package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/matrix"
)

// TestLanczosMatvecAllocs pins the fix for the sparse embedding's hot loop:
// the CSR-backed neighbor iterator performs no per-call work beyond walking
// a shared row slice, so one full normalized-Laplacian matvec allocates at
// most the bounded dispatch residue. (The previous iterator collected each
// bitset row into a fresh buffer and probed a global→local map on every
// call — an allocation per row per matvec, millions per Lanczos solve.)
func TestLanczosMatvecAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	w := graph.RandomSparse(300, 0.95, rng)
	csr := w.SymmetrizedCSR()
	lap := csr.LaplacianDegrees()
	g2l := make([]int32, w.N())
	var active []int
	for i := range g2l {
		if lap[i] > 0 {
			g2l[i] = int32(len(active))
			active = append(active, i)
		} else {
			g2l[i] = -1
		}
	}
	var sc scratch
	local := csr.RestrictTo(active, g2l, &sc.local)
	rowPtr, col := local.Arrays()
	op, err := matrix.NormalizedLaplacianCSRN(local.N(), local.LaplacianDegrees(), rowPtr, col, 1)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, local.N())
	src := make([]float64, local.N())
	for i := range src {
		src[i] = float64(i%5) - 2
	}
	allocs := testing.AllocsPerRun(20, func() { op(dst, src) })
	if allocs > 2 {
		t.Fatalf("embedding matvec allocated %.1f times per product, want ≤ 2", allocs)
	}
}

// TestWarmEmbeddingAllocs pins the multilevel-mode flat rounds: once the
// scratch has grown, a full warm-started Lanczos embedding — operator init,
// seeded start vector, adaptive solve with verified residuals, Ritz store,
// D^{-1/2} back-map — runs without steady-state allocations. The first call
// is the warm-up AllocsPerRun performs before measuring.
func TestWarmEmbeddingAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated 600-node Lanczos solves")
	}
	rng := rand.New(rand.NewSource(43))
	w := graph.RandomSparse(600, 0.985, rng)
	sc, _ := mlScratchFor(1024)
	kHint := 8
	allocs := testing.AllocsPerRun(3, func() {
		emb, err := newSpectralEmbedding(w, kHint, 1, sc)
		if err != nil {
			t.Fatal(err)
		}
		if emb == nil || emb.cols < 2 {
			t.Fatal("embedding missing")
		}
	})
	if allocs > 0 {
		t.Fatalf("warm Lanczos embedding allocated %.1f times per solve, want 0", allocs)
	}
}

// TestRefineAllocs pins the per-level boundary refinement: with the
// mlScratch grown, a full refine pass (gain scan, candidate sort, ordered
// commits) is allocation-free on the serial path.
func TestRefineAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	w := graph.RandomClustered(320, 16, 0.6, 0.02, rng)
	const maxSize = 24
	sc, st := mlScratchFor(48)
	if _, err := multilevelCluster(w, maxSize, 1, sc); err != nil {
		t.Fatal(err)
	}
	ml := sc.mlSc
	g := ml.graphs[0]
	part := ml.parts[0][:g.N]
	fied := ml.fiedlers[0][:g.N]
	allocs := testing.AllocsPerRun(10, func() {
		refine(g, part, fied, maxSize, mlRefinePasses, 1, ml, st)
	})
	if allocs > 0 {
		t.Fatalf("refine allocated %.1f times per call, want 0", allocs)
	}
}

// TestEmbeddingPathEquivalence pins the CSR rework against the paths it
// replaced: the dense-path restricted Laplacian built from CSR rows must
// produce the same clustering as before, and the Lanczos path must engage
// for networks above the cutoff.
func TestEmbeddingPathEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	w := graph.RandomSparse(150, 0.9, rng)
	a, err := MSCN(w, 6, rand.New(rand.NewSource(1)), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MSCN(w, 6, rand.New(rand.NewSource(1)), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%d vs %d clusters across worker counts", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("cluster %d sizes differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("cluster %d member %d differs: %d vs %d", i, j, a[i][j], b[i][j])
			}
		}
	}
}
