//go:build race

package core

// raceEnabled reports whether the race detector is compiled in. The worker
// invariance harness uses it to skip the largest net: the race coverage of
// the multilevel kernels comes from the clustered case, which drives the
// same code with a tenth of the wall time.
const raceEnabled = true
