// Package core implements the paper's primary contribution: the AutoNCS
// connection-clustering flow that partitions a sparse neural network into
// memristor crossbars and discrete synapses.
//
// It provides the three algorithms of Section 3:
//
//   - MSC  (Algorithm 1) — modified spectral clustering, where similarity is
//     the number of connections between neurons;
//   - GCP  (Algorithm 2) — greedy cluster size prediction, which bounds the
//     largest cluster at the maximum crossbar size by splitting oversized
//     k-means clusters in place (plus the slower "traversing" baseline);
//   - ISC  (Algorithm 3) — iterative spectral clustering with the crossbar
//     preference (CP) quartile partial-selection strategy, producing the
//     final hybrid xbar.Assignment.
package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
	"repro/internal/kmeans"
	"repro/internal/matrix"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/xbar"
)

// Cluster is a group of neuron indices selected to share one crossbar.
type Cluster []int

// lanczosCutoff is the active-neuron count above which the spectral
// embedding switches from the dense O(n³) eigensolver to the sparse
// Lanczos solver. The paper's testbenches (N ≤ 500) stay on the dense
// path; the cutoff exists for the larger networks the introduction
// motivates (4000+-input deep networks, LDPC codes). Re-tuned from 600
// after the CSR rework made the sparse path allocation-free: at ~94%
// sparsity the Lanczos solve overtakes the dense O(n³) solver between
// n≈450 and n≈550, so 512 keeps the paper-scale experiments (n ≤ 400
// active) on the dense path while switching earlier for everything the
// sparse path now wins.
const lanczosCutoff = 512

// scratch carries the reusable buffers of one clustering flow: the
// global→local index array and restricted CSR of the embedding, the Lanczos
// workspace, the k-means workspace, and the flat backing of the embedding
// point set. ISC allocates one scratch and threads it through every
// iteration's GCP pass, so the per-iteration spectral restriction and
// k-means passes stop allocating; the public single-shot entry points
// (MSC, GCP, Traversing) each create their own. Reuse never changes
// results: every buffer is fully overwritten before it is read, and no two
// live structures share a buffer (points(k) invalidates the previous point
// set, which is always dead by then).
type scratch struct {
	g2l    []int32 // global → local index over active neurons; -1 = inactive
	local  graph.CSR
	lanWS  matrix.LanczosWS
	kmWS   kmeans.Workspace
	ptsBuf []float64
	ptsHdr [][]float64

	// Multilevel-mode state; zero (and unused) on the default flat path.
	ml        mlOptions
	mlSc      *mlScratch
	stats     *EngineStats // non-nil iff ml.enabled
	warm      warmState
	lapOp     matrix.CSRLaplacianOp
	opFn      matrix.MulVecFunc // stored once: sc.lapOp.Mul without a per-call closure
	rng       *rand.Rand        // re-seeded per warm solve; no allocation per iteration
	uDense    *matrix.Dense     // D^{-1/2}-scaled eigenvector matrix of the warm path
	emb       spectralEmbedding // the warm path's reused embedding header
	activeBuf []int
}

// collectActive builds the active-neuron list and the global→local map over
// scratch-owned storage. At most one live (active, g2l) pair per scratch:
// a subsequent call overwrites both, which every caller satisfies (one
// embedding is consumed before the next is built).
func (sc *scratch) collectActive(csr *graph.CSR, n int) ([]int, []int32) {
	lapDeg := csr.LaplacianDegrees()
	if cap(sc.g2l) < n {
		sc.g2l = make([]int32, n)
	}
	g2l := sc.g2l[:n]
	if cap(sc.activeBuf) < n {
		sc.activeBuf = make([]int, 0, n)
	}
	active := sc.activeBuf[:0]
	for i := 0; i < n; i++ {
		if lapDeg[i] > 0 {
			g2l[i] = int32(len(active))
			active = append(active, i)
		} else {
			g2l[i] = -1
		}
	}
	sc.activeBuf = active
	return active, g2l
}

// spectralEmbedding computes the generalized eigendecomposition
// L·u = λ·D·u of the symmetrized network restricted to its active neurons
// (those with positive Laplacian degree), with eigenvectors sorted by
// ascending eigenvalue. For small networks all eigenvectors are computed
// densely; above lanczosCutoff only the smallest max(48, 4·kHint) are
// extracted with Lanczos, and points() clamps to what is available.
type spectralEmbedding struct {
	active []int
	u      *matrix.Dense // len(active) × cols
	cols   int
}

func newSpectralEmbedding(w *graph.Conn, kHint, workers int, sc *scratch) (*spectralEmbedding, error) {
	// One O(E) CSR build (cached on the Conn until mutation) replaces the
	// dense O(n²) Laplacian materialization of the original implementation.
	csr := w.SymmetrizedCSR()
	lapDeg := csr.LaplacianDegrees()
	active, g2l := sc.collectActive(csr, w.N())
	if len(active) == 0 {
		return &spectralEmbedding{}, nil
	}
	na := len(active)
	if na > lanczosCutoff {
		return lanczosEmbedding(csr, active, g2l, kHint, workers, sc)
	}
	// Dense path: the restricted Laplacian is filled edge-by-edge from the
	// CSR rows in O(E + na) — never by copying an n×n dense matrix.
	lSub := matrix.NewDense(na, na)
	dSub := make([]float64, na)
	for a, i := range active {
		dSub[a] = lapDeg[i]
		for _, j := range csr.Row(i) {
			if int(j) == i {
				continue // self-loops do not contribute to the Laplacian
			}
			lSub.Set(a, int(g2l[j]), -1)
		}
		lSub.Set(a, a, lapDeg[i])
	}
	_, u, err := matrix.GeneralizedSymN(lSub, dSub, workers)
	if err != nil {
		return nil, fmt.Errorf("core: spectral embedding: %w", err)
	}
	return &spectralEmbedding{active: active, u: u, cols: na}, nil
}

// lanczosEmbedding extracts the smallest generalized eigenvectors with the
// sparse solver: the active subset is restricted to a local CSR in
// O(E_active), the symmetric normalized Laplacian operator iterates its
// index arrays allocation-free (the previous implementation re-collected a
// bitset row into a fresh buffer and probed a position map on every matvec
// of every Lanczos step), and the Ritz vectors are mapped back through
// u = D^{-1/2}·w.
func lanczosEmbedding(csr *graph.CSR, active []int, g2l []int32, kHint, workers int, sc *scratch) (*spectralEmbedding, error) {
	na := len(active)
	k := 4 * kHint
	if k < 48 {
		k = 48
	}
	if k > na {
		k = na
	}
	local := csr.RestrictTo(active, g2l, &sc.local)
	deg := local.LaplacianDegrees()
	rowPtr, col := local.Arrays()
	if sc.ml.enabled {
		// Multilevel mode reaches this path only for active networks at or
		// below the multilevel cutoff (the ISC tail): the adaptive solver with
		// a warm start carried from the previous iteration's Ritz basis.
		return sc.warmLanczosEmbedding(active, deg, rowPtr, col, na, k, workers)
	}
	op, err := matrix.NormalizedLaplacianCSRN(na, deg, rowPtr, col, workers)
	if err != nil {
		return nil, fmt.Errorf("core: lanczos embedding: %w", err)
	}
	_, vecs, err := matrix.LanczosSmallestWS(&sc.lanWS, op, na, k, rand.New(rand.NewSource(lanczosSeed)), workers)
	if err != nil {
		return nil, fmt.Errorf("core: lanczos embedding: %w", err)
	}
	u := matrix.NewDense(na, vecs.Cols())
	for a := 0; a < na; a++ {
		inv := 1 / math.Sqrt(deg[a])
		for c := 0; c < vecs.Cols(); c++ {
			u.Set(a, c, inv*vecs.At(a, c))
		}
	}
	return &spectralEmbedding{active: active, u: u, cols: vecs.Cols()}, nil
}

// points returns the embedding rows truncated to the first k coordinates
// (the k smallest generalized eigenvectors), one point per active neuron.
// k is clamped to the number of computed eigenvectors. The rows share sc's
// flat backing: a subsequent points() call on the same scratch overwrites
// them, so at most one point set per scratch is live at a time (the GCP and
// MSC flows satisfy this by construction — every consumer of a point set
// finishes before the embedding is re-cut).
func (e *spectralEmbedding) points(k int, sc *scratch) [][]float64 {
	if k > e.cols {
		k = e.cols
	}
	na := len(e.active)
	if cap(sc.ptsBuf) < na*k {
		sc.ptsBuf = make([]float64, na*k)
	}
	buf := sc.ptsBuf[:na*k]
	if cap(sc.ptsHdr) < na {
		sc.ptsHdr = make([][]float64, na)
	}
	pts := sc.ptsHdr[:na]
	for r := 0; r < na; r++ {
		p := buf[r*k : (r+1)*k : (r+1)*k]
		for c := 0; c < k; c++ {
			p[c] = e.u.At(r, c)
		}
		pts[r] = p
	}
	return pts
}

// toGlobal converts k-means member lists over embedding rows into clusters
// of global neuron indices.
func (e *spectralEmbedding) toGlobal(members [][]int) []Cluster {
	out := make([]Cluster, 0, len(members))
	for _, ms := range members {
		if len(ms) == 0 {
			continue
		}
		cl := make(Cluster, len(ms))
		for i, m := range ms {
			cl[i] = e.active[m]
		}
		sort.Ints(cl)
		out = append(out, cl)
	}
	return out
}

// MSC is Algorithm 1: modified spectral clustering of the network's
// connections into k groups. Neurons with no connections are excluded (they
// need no crossbar). If fewer than k active neurons exist, k is reduced to
// the active count. The rng drives k-means seeding only.
func MSC(w *graph.Conn, k int, rng *rand.Rand) ([]Cluster, error) {
	return MSCN(w, k, rng, 1)
}

// MSCN is MSC on a bounded worker pool (0 = package default). Clusterings
// are bit-identical for any worker count.
func MSCN(w *graph.Conn, k int, rng *rand.Rand, workers int) ([]Cluster, error) {
	return mscN(w, k, rng, workers, &scratch{})
}

func mscN(w *graph.Conn, k int, rng *rand.Rand, workers int, sc *scratch) ([]Cluster, error) {
	if k <= 0 {
		panic(fmt.Sprintf("core: MSC with k = %d", k))
	}
	emb, err := newSpectralEmbedding(w, k, workers, sc)
	if err != nil {
		return nil, err
	}
	return mscOnEmbedding(emb, k, rng, workers, sc), nil
}

func mscOnEmbedding(emb *spectralEmbedding, k int, rng *rand.Rand, workers int, sc *scratch) []Cluster {
	if len(emb.active) == 0 {
		return nil
	}
	if k > len(emb.active) {
		k = len(emb.active)
	}
	res := kmeans.RunWS(&sc.kmWS, emb.points(k, sc), k, rng, workers)
	return emb.toGlobal(res.Members())
}

// maxGCPOuter bounds the outer (re-embedding) loop of GCP; in practice the
// loop converges in a handful of rounds.
const maxGCPOuter = 60

// GCP is Algorithm 2: greedy cluster size prediction. It clusters the
// network like MSC but bounds every cluster at maxSize neurons: whenever
// k-means produces an oversized cluster it is immediately split in two with
// 2-means, k is incremented, and the centroid set is updated; when any split
// occurred, the embedding is re-cut at the new k and the process repeats.
//
// Deviation from the paper's pseudocode (documented in DESIGN.md): the
// initial centroids are seeded with k-means++ rather than all-zeros (zero
// seeding collapses the first assignment), and after k grows the centroids
// are recomputed from the current memberships in the re-cut embedding
// (the pseudocode leaves the changed embedding dimension unreconciled).
func GCP(w *graph.Conn, maxSize int, rng *rand.Rand) ([]Cluster, error) {
	return GCPN(w, maxSize, rng, 1)
}

// GCPN is GCP on a bounded worker pool (0 = package default). The rng-
// consuming control flow (seeding, split order, tie breaks) stays on the
// calling goroutine, so clusterings are bit-identical for any worker count.
func GCPN(w *graph.Conn, maxSize int, rng *rand.Rand, workers int) ([]Cluster, error) {
	return gcpN(w, maxSize, rng, workers, &scratch{})
}

func gcpN(w *graph.Conn, maxSize int, rng *rand.Rand, workers int, sc *scratch) ([]Cluster, error) {
	if maxSize <= 0 {
		panic(fmt.Sprintf("core: GCP with maxSize = %d", maxSize))
	}
	emb, err := newSpectralEmbedding(w, (w.N()+maxSize-1)/maxSize, workers, sc)
	if err != nil {
		return nil, err
	}
	return gcpOnEmbedding(emb, maxSize, rng, workers, sc), nil
}

func gcpOnEmbedding(emb *spectralEmbedding, maxSize int, rng *rand.Rand, workers int, sc *scratch) []Cluster {
	n := len(emb.active)
	if n == 0 {
		return nil
	}
	k := (n + maxSize - 1) / maxSize
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	// First cut: k-means++ seeding on the k-dimensional embedding.
	pts := emb.points(k, sc)
	res := kmeans.RunWS(&sc.kmWS, pts, k, rng, workers)
	members := res.Members()

	for outer := 0; outer < maxGCPOuter; outer++ {
		flagOuter := false
		for {
			flagInner := false
			var next [][]int
			for _, ms := range members {
				if len(ms) <= maxSize {
					if len(ms) > 0 {
						next = append(next, ms)
					}
					continue
				}
				a, b, _, _ := kmeans.SplitWS(&sc.kmWS, pts, ms, rng, workers)
				next = append(next, a, b)
				k++
				flagInner = true
				flagOuter = true
			}
			members = next
			if !flagInner {
				break
			}
		}
		if !flagOuter {
			break
		}
		if k > n {
			k = n
		}
		// Re-cut the embedding at the grown k and refine with k-means
		// seeded from the current memberships.
		pts = emb.points(k, sc)
		centroids := make([][]float64, 0, len(members))
		for _, ms := range members {
			centroids = append(centroids, centroidOf(pts, ms))
		}
		res = kmeans.RunWithCentroidsWS(&sc.kmWS, pts, centroids, rng, workers)
		members = res.Members()
	}
	// A final defensive pass: if the outer cap was hit with an oversized
	// cluster remaining, split by plain bisection until bounded.
	for changed := true; changed; {
		changed = false
		var next [][]int
		for _, ms := range members {
			if len(ms) <= maxSize {
				if len(ms) > 0 {
					next = append(next, ms)
				}
				continue
			}
			a, b, _, _ := kmeans.SplitWS(&sc.kmWS, pts, ms, rng, workers)
			next = append(next, a, b)
			changed = true
		}
		members = next
	}
	return emb.toGlobal(members)
}

func centroidOf(points [][]float64, idx []int) []float64 {
	dim := len(points[0])
	c := make([]float64, dim)
	if len(idx) == 0 {
		return c
	}
	for _, i := range idx {
		for d, v := range points[i] {
			c[d] += v
		}
	}
	inv := 1 / float64(len(idx))
	for d := range c {
		c[d] *= inv
	}
	return c
}

// Traversing is the baseline cluster-size control the paper compares GCP
// against (Section 3.3): exhaustively increase k and re-run the whole MSC
// (including the spectral solve, exactly as Algorithm 1 specifies) until
// the largest cluster fits in maxSize. Repeating the spectral computation
// per k is what makes traversing ~2× slower than GCP in the paper's
// Figure 4 measurement.
func Traversing(w *graph.Conn, maxSize int, rng *rand.Rand) ([]Cluster, error) {
	return TraversingN(w, maxSize, rng, 1)
}

// TraversingN is Traversing on a bounded worker pool (0 = package default).
func TraversingN(w *graph.Conn, maxSize int, rng *rand.Rand, workers int) ([]Cluster, error) {
	if maxSize <= 0 {
		panic(fmt.Sprintf("core: Traversing with maxSize = %d", maxSize))
	}
	n := w.N()
	k := (n + maxSize - 1) / maxSize
	if k < 1 {
		k = 1
	}
	sc := &scratch{} // one scratch across the whole k sweep
	for ; k <= n; k++ {
		clusters, err := mscN(w, k, rng, workers, sc)
		if err != nil {
			return nil, err
		}
		if len(clusters) == 0 {
			return nil, nil
		}
		fit := true
		for _, c := range clusters {
			if len(c) > maxSize {
				fit = false
				break
			}
		}
		if fit {
			return clusters, nil
		}
	}
	// k = n always fits (singletons), so this is unreachable; kept for
	// defensive completeness.
	return mscN(w, n, rng, workers, sc)
}

// ClusterStats describes one candidate cluster during an ISC iteration.
type ClusterStats struct {
	Cluster    Cluster
	Within     int     // m: connections inside the cluster
	FitSize    int     // minimum satisfiable crossbar size (0 if none fits)
	Preference float64 // CP = m/FitSize
	Selected   bool    // chosen by the partial selection strategy
}

// Iteration records one ISC round for the Figure 6-9 analyses.
type Iteration struct {
	Index          int            // 1-based iteration number
	Clusters       []ClusterStats // all clusters formed this round
	QuartileCP     float64        // the CP selection threshold q
	Placed         int            // crossbars realized this round
	AvgUtilization float64        // mean u of crossbars placed this round
	AvgPreference  float64        // mean CP of crossbars placed this round
	OutlierRatio   float64        // remaining connections / total, after this round
}

// ISCResult is the outcome of the full iterative clustering flow.
type ISCResult struct {
	Assignment *xbar.Assignment
	Trace      []Iteration
	// Engine summarizes the clustering engine's work (multilevel rounds,
	// matchings, eigensolves, warm starts, timings). Zero when the flat
	// engine ran without the multilevel option.
	Engine EngineStats
}

// ISCOptions tunes Algorithm 3.
type ISCOptions struct {
	// Library is the allowed crossbar size set; required.
	Library xbar.Library
	// UtilizationThreshold is t: ISC stops when the average utilization of
	// the crossbars placed in an iteration drops below it.
	UtilizationThreshold float64
	// SelectionQuantile is the CP quantile above which clusters are
	// realized each iteration. The paper removes the top 25%, i.e. 0.75.
	// Zero means 0.75. Set to a negative value to select every cluster
	// (disabling the partial selection strategy, for ablation).
	SelectionQuantile float64
	// MaxIterations bounds the loop defensively. Zero means 100.
	MaxIterations int
	// Rand drives k-means; required.
	Rand *rand.Rand
	// Workers bounds the worker pool of the data-parallel kernels
	// (spectral solves, k-means, CP scoring). Zero means the parallel
	// package default (runtime.NumCPU() unless overridden); negative is
	// rejected. The clustering is bit-identical for every worker count.
	Workers int
	// Observer, when non-nil, receives an obs.ISCIteration event after
	// every round of the loop (and, in multilevel mode, one obs.ClusterStats
	// summary after the loop). Observers are passive: they cannot change
	// the clustering.
	Observer obs.Observer
	// Multilevel enables the coarsen→solve→uncoarsen clustering engine for
	// iterations whose active network exceeds MultilevelCutoff, with
	// warm-started adaptive Lanczos solves below it. Off by default: the
	// flat engine is the paper-faithful reference path and its results are
	// golden-pinned.
	Multilevel bool
	// MultilevelCutoff is the active-neuron count at or below which an
	// iteration uses the flat engine (and the coarse-graph size coarsening
	// aims for). Zero means DefaultMultilevelCutoff; values below 2 are
	// rejected. Ignored unless Multilevel is set, but validated regardless.
	MultilevelCutoff int
	// CoarsenRatio is the minimum shrink a coarsening level must achieve to
	// continue (coarse/fine node ratio). Zero means DefaultCoarsenRatio;
	// values outside (0,1) are rejected. Validated regardless of Multilevel.
	CoarsenRatio float64
	// MultilevelLevels bounds the coarsening depth. Zero means unbounded;
	// negative is rejected.
	MultilevelLevels int
}

func (o *ISCOptions) normalize() error {
	if o.Library.Empty() {
		return fmt.Errorf("core: ISC requires a crossbar library")
	}
	if o.Rand == nil {
		return fmt.Errorf("core: ISC requires a random source")
	}
	if o.Workers < 0 {
		return fmt.Errorf("core: negative worker count %d", o.Workers)
	}
	if math.IsNaN(o.UtilizationThreshold) || o.UtilizationThreshold < 0 || o.UtilizationThreshold > 1 {
		return fmt.Errorf("core: utilization threshold %g out of [0,1]", o.UtilizationThreshold)
	}
	if o.SelectionQuantile == 0 {
		o.SelectionQuantile = 0.75
	}
	if math.IsNaN(o.SelectionQuantile) || o.SelectionQuantile > 1 {
		return fmt.Errorf("core: selection quantile %g out of range", o.SelectionQuantile)
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 100
	}
	if o.MultilevelCutoff == 0 {
		o.MultilevelCutoff = DefaultMultilevelCutoff
	}
	if o.MultilevelCutoff < 2 {
		return fmt.Errorf("core: multilevel cutoff %d below 2", o.MultilevelCutoff)
	}
	if o.CoarsenRatio == 0 {
		o.CoarsenRatio = DefaultCoarsenRatio
	}
	if math.IsNaN(o.CoarsenRatio) || o.CoarsenRatio <= 0 || o.CoarsenRatio >= 1 {
		return fmt.Errorf("core: coarsen ratio %g outside (0,1)", o.CoarsenRatio)
	}
	if o.MultilevelLevels < 0 {
		return fmt.Errorf("core: negative multilevel level bound %d", o.MultilevelLevels)
	}
	return nil
}

// ISC is Algorithm 3: iterative spectral clustering with partial selection.
// Each round clusters the remaining network with GCP bounded at the largest
// library size, computes each cluster's crossbar preference, realizes the
// clusters at or above the CP quartile q on their minimum satisfiable
// crossbars, and removes those connections from the remaining network. The
// loop stops when the quartile cluster no longer justifies the smallest
// crossbar, when placed-crossbar utilization falls below the threshold, or
// when no connections remain; whatever is left becomes discrete synapses.
func ISC(w *graph.Conn, opts ISCOptions) (*ISCResult, error) {
	return ISCCtx(context.Background(), w, opts)
}

// ISCCtx is ISC under a context: cancellation is checked at the top of
// every iteration (the loop returns a wrapped ctx.Err() within one round of
// the cancel), and opts.Observer — if set — receives one obs.ISCIteration
// event per round. Neither the context check nor the observer can perturb
// the clustering: with an uncancelled context the result is bit-identical
// to ISC without an observer.
func ISCCtx(ctx context.Context, w *graph.Conn, opts ISCOptions) (*ISCResult, error) {
	if err := opts.normalize(); err != nil {
		return nil, err
	}
	lib, rng := opts.Library, opts.Rand
	workers := parallel.Resolve(opts.Workers)
	total := w.NNZ()
	remaining := w.Clone()
	assign := &xbar.Assignment{N: w.N(), Total: total}
	var trace []Iteration
	// record appends one finished round to the trace and tells the observer.
	record := func(it Iteration, clusters int) {
		trace = append(trace, it)
		obs.Emit(opts.Observer, obs.ISCIteration{
			Index:          it.Index,
			Clusters:       clusters,
			Placed:         it.Placed,
			QuartileCP:     it.QuartileCP,
			AvgUtilization: it.AvgUtilization,
			Threshold:      opts.UtilizationThreshold,
			OutlierRatio:   it.OutlierRatio,
		})
	}

	// One scratch for the whole loop: every iteration's spectral restriction,
	// Lanczos solve, and k-means passes draw from the same grown-once buffers.
	// In multilevel mode the scratch also carries the hierarchy and the warm
	// Ritz basis from iteration to iteration.
	var engine EngineStats
	sc := &scratch{}
	if opts.Multilevel {
		sc.ml = mlOptions{
			enabled:   true,
			cutoff:    opts.MultilevelCutoff,
			ratio:     opts.CoarsenRatio,
			maxLevels: opts.MultilevelLevels,
		}
		sc.stats = &engine
	}
	for iter := 1; iter <= opts.MaxIterations && remaining.NNZ() > 0; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("core: ISC cancelled before iteration %d: %w", iter, err)
		}
		clusters, err := clusterRound(remaining, lib.Max(), rng, workers, sc)
		if err != nil {
			return nil, err
		}
		if len(clusters) == 0 {
			break
		}
		// Score every candidate cluster concurrently: CountWithin and
		// FitFor only read the remaining network, and each cluster writes
		// its own ordered slot.
		stats := parallel.Map(workers, len(clusters), func(i int) ClusterStats {
			cl := clusters[i]
			m := remaining.CountWithin(cl)
			fit, ok := lib.FitFor(len(cl))
			cs := ClusterStats{Cluster: cl, Within: m}
			if ok && m > 0 {
				cs.FitSize = fit
				cs.Preference = xbar.Preference(m, fit)
			}
			return cs
		})
		q := quantile(preferences(stats), opts.SelectionQuantile)
		it := Iteration{Index: iter, QuartileCP: q}
		if q <= 0 {
			// No cluster holds any connections worth a crossbar.
			it.Clusters = stats
			it.OutlierRatio = outlierRatio(remaining, total)
			record(it, len(clusters))
			break
		}
		// Stop when the quartile cluster has degenerated below the
		// smallest crossbar (Algorithm 3 line 6).
		if sizeAtCP(stats, q) < lib.Min() {
			it.Clusters = stats
			it.OutlierRatio = outlierRatio(remaining, total)
			record(it, len(clusters))
			break
		}
		sumU, sumCP := 0.0, 0.0
		for i := range stats {
			cs := &stats[i]
			if cs.FitSize == 0 || cs.Preference < q {
				continue
			}
			cs.Selected = true
			cb := xbar.Crossbar{
				Size:    cs.FitSize,
				Inputs:  append([]int(nil), cs.Cluster...),
				Outputs: append([]int(nil), cs.Cluster...),
				Conns:   remaining.WithinEdges(cs.Cluster),
			}
			assign.Crossbars = append(assign.Crossbars, cb)
			remaining.RemoveWithin(cs.Cluster)
			it.Placed++
			sumU += cb.Utilization()
			sumCP += cb.Preference()
		}
		if it.Placed > 0 {
			it.AvgUtilization = sumU / float64(it.Placed)
			it.AvgPreference = sumCP / float64(it.Placed)
		}
		it.Clusters = stats
		it.OutlierRatio = outlierRatio(remaining, total)
		record(it, len(clusters))
		if it.Placed == 0 || it.AvgUtilization < opts.UtilizationThreshold {
			break
		}
	}
	assign.Synapses = remaining.Edges()
	if opts.Multilevel {
		obs.Emit(opts.Observer, obs.ClusterStats{
			MultilevelRounds: engine.MultilevelRounds,
			FlatRounds:       engine.FlatRounds,
			Levels:           engine.Levels,
			MaxDepth:         engine.MaxDepth,
			Matchings:        engine.Matchings,
			Eigensolves:      engine.Eigensolves,
			WarmStarts:       engine.WarmStarts,
			LanczosSteps:     engine.LanczosSteps,
			RefineMoves:      engine.RefineMoves,
			CoarsenTime:      engine.CoarsenTime,
			SolveTime:        engine.SolveTime,
			RefineTime:       engine.RefineTime,
		})
	}
	return &ISCResult{Assignment: assign, Trace: trace, Engine: engine}, nil
}

// clusterRound produces one ISC round's clusters: the flat GCP pass by
// default, or — in multilevel mode, while the active network exceeds the
// cutoff — the multilevel engine. The dispatch depends only on the remaining
// network and the options, never on the worker count.
func clusterRound(w *graph.Conn, maxSize int, rng *rand.Rand, workers int, sc *scratch) ([]Cluster, error) {
	if !sc.ml.enabled {
		return gcpN(w, maxSize, rng, workers, sc)
	}
	activeN := 0
	for _, d := range w.SymmetrizedCSR().LaplacianDegrees() {
		if d > 0 {
			activeN++
		}
	}
	if activeN > sc.ml.cutoff {
		sc.stats.MultilevelRounds++
		return multilevelCluster(w, maxSize, workers, sc)
	}
	sc.stats.FlatRounds++
	return gcpN(w, maxSize, rng, workers, sc)
}

func outlierRatio(remaining *graph.Conn, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(remaining.NNZ()) / float64(total)
}

func preferences(stats []ClusterStats) []float64 {
	out := make([]float64, len(stats))
	for i, s := range stats {
		out[i] = s.Preference
	}
	return out
}

// sizeAtCP returns the neuron count of the cluster whose CP is closest to q
// from above (the "crossbar with CP=q" of Algorithm 3 line 6).
func sizeAtCP(stats []ClusterStats, q float64) int {
	best, bestCP := 0, math.Inf(1)
	for _, s := range stats {
		if s.Preference >= q && s.Preference < bestCP {
			best, bestCP = len(s.Cluster), s.Preference
		}
	}
	return best
}

// quantile returns the p-quantile of xs by nearest-rank on the sorted
// values. Empty input yields 0.
func quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(p*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

// PermutationByClusters returns a neuron ordering that lists every cluster's
// members contiguously (clusters in the given order) followed by all
// remaining neurons in ascending order. Rendering a connection matrix in
// this order makes the clusters appear as diagonal blocks, as in the
// paper's Figures 3-6.
func PermutationByClusters(n int, clusters []Cluster) []int {
	order := make([]int, 0, n)
	placed := make([]bool, n)
	for _, cl := range clusters {
		for _, v := range cl {
			if v < 0 || v >= n {
				panic(fmt.Sprintf("core: cluster member %d out of range %d", v, n))
			}
			if placed[v] {
				panic(fmt.Sprintf("core: neuron %d appears in two clusters", v))
			}
			placed[v] = true
			order = append(order, v)
		}
	}
	for v := 0; v < n; v++ {
		if !placed[v] {
			order = append(order, v)
		}
	}
	return order
}
