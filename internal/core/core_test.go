package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/xbar"
)

// clusteredNet builds a network of nBlocks dense blocks of blockSize
// neurons with sparse inter-block noise — ground truth for cluster
// recovery tests.
func clusteredNet(nBlocks, blockSize int, seed int64) *graph.Conn {
	rng := rand.New(rand.NewSource(seed))
	return graph.RandomClustered(nBlocks*blockSize, blockSize, 0.85, 0.005, rng)
}

// isPartitionOfActive verifies clusters are disjoint and cover exactly the
// active neurons of w.
func isPartitionOfActive(t *testing.T, w *graph.Conn, clusters []Cluster) {
	t.Helper()
	seen := map[int]bool{}
	for _, cl := range clusters {
		if len(cl) == 0 {
			t.Fatal("empty cluster returned")
		}
		for _, v := range cl {
			if seen[v] {
				t.Fatalf("neuron %d in two clusters", v)
			}
			seen[v] = true
		}
	}
	for _, a := range w.Symmetrized().ActiveNeurons() {
		if !seen[a] {
			t.Fatalf("active neuron %d not clustered", a)
		}
	}
	if len(seen) != len(w.Symmetrized().ActiveNeurons()) {
		t.Fatalf("clustered %d neurons, active %d", len(seen), len(w.Symmetrized().ActiveNeurons()))
	}
}

func TestMSCRecoversBlocks(t *testing.T) {
	w := clusteredNet(4, 15, 1)
	clusters, err := MSC(w, 4, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	isPartitionOfActive(t, w, clusters)
	if len(clusters) != 4 {
		t.Fatalf("got %d clusters, want 4", len(clusters))
	}
	// Each cluster must be dominated by one true block.
	for _, cl := range clusters {
		counts := map[int]int{}
		for _, v := range cl {
			counts[v/15]++
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		if float64(best) < 0.9*float64(len(cl)) {
			t.Fatalf("cluster mixes blocks: %v", counts)
		}
	}
}

func TestMSCWithinVsBetween(t *testing.T) {
	// The defining goal of MSC: maximize within-cluster connections.
	w := clusteredNet(3, 20, 3)
	clusters, err := MSC(w, 3, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	within := 0
	for _, cl := range clusters {
		within += w.CountWithin(cl)
	}
	if ratio := float64(within) / float64(w.NNZ()); ratio < 0.8 {
		t.Fatalf("only %.0f%% of connections within clusters", 100*ratio)
	}
}

func TestMSCIgnoresIsolatedNeurons(t *testing.T) {
	w := graph.NewConn(10)
	w.Set(0, 1)
	w.Set(1, 0)
	clusters, err := MSC(w, 1, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 || len(clusters[0]) != 2 {
		t.Fatalf("clusters = %v, want [[0 1]]", clusters)
	}
}

func TestMSCEmptyNetwork(t *testing.T) {
	clusters, err := MSC(graph.NewConn(5), 2, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 0 {
		t.Fatalf("clusters of empty network = %v", clusters)
	}
}

func TestMSCInvalidKPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MSC(k=0) did not panic")
		}
	}()
	MSC(graph.NewConn(3), 0, rand.New(rand.NewSource(1)))
}

func TestMSCDirectedInputIsSymmetrized(t *testing.T) {
	w := graph.NewConn(6)
	w.Set(0, 1) // one-way connections only
	w.Set(1, 2)
	w.Set(3, 4)
	w.Set(4, 5)
	clusters, err := MSC(w, 2, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	isPartitionOfActive(t, w, clusters)
}

func TestGCPBoundsClusterSize(t *testing.T) {
	w := clusteredNet(2, 40, 6) // blocks of 40 > maxSize 25
	clusters, err := GCP(w, 25, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	isPartitionOfActive(t, w, clusters)
	for _, cl := range clusters {
		if len(cl) > 25 {
			t.Fatalf("cluster of size %d exceeds bound 25", len(cl))
		}
	}
}

func TestGCPSmallNetworkSingleCluster(t *testing.T) {
	w := clusteredNet(1, 10, 8)
	clusters, err := GCP(w, 64, rand.New(rand.NewSource(9)))
	if err != nil {
		t.Fatal(err)
	}
	if len(clusters) != 1 {
		t.Fatalf("got %d clusters, want 1", len(clusters))
	}
}

func TestGCPInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GCP(maxSize=0) did not panic")
		}
	}()
	GCP(graph.NewConn(3), 0, rand.New(rand.NewSource(1)))
}

func TestGCPSizeBoundProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		w := graph.RandomSparse(n, 0.85+0.13*rng.Float64(), rng)
		maxSize := 8 + rng.Intn(24)
		clusters, err := GCP(w, maxSize, rng)
		if err != nil {
			return false
		}
		seen := map[int]bool{}
		for _, cl := range clusters {
			if len(cl) == 0 || len(cl) > maxSize {
				return false
			}
			for _, v := range cl {
				if seen[v] {
					return false
				}
				seen[v] = true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestTraversingMatchesGCPQuality(t *testing.T) {
	w := clusteredNet(3, 30, 10)
	maxSize := 20
	g, err := GCP(w, maxSize, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Traversing(w, maxSize, rand.New(rand.NewSource(11)))
	if err != nil {
		t.Fatal(err)
	}
	for _, cl := range tr {
		if len(cl) > maxSize {
			t.Fatalf("traversing cluster size %d exceeds bound", len(cl))
		}
	}
	isPartitionOfActive(t, w, tr)
	// Both must capture a comparable share of within-cluster connections.
	within := func(cls []Cluster) float64 {
		s := 0
		for _, cl := range cls {
			s += w.CountWithin(cl)
		}
		return float64(s) / float64(w.NNZ())
	}
	wg, wt := within(g), within(tr)
	if math.Abs(wg-wt) > 0.35 {
		t.Fatalf("GCP captures %.2f, traversing %.2f — too far apart", wg, wt)
	}
}

func TestTraversingEmptyNetwork(t *testing.T) {
	clusters, err := Traversing(graph.NewConn(4), 16, rand.New(rand.NewSource(1)))
	if err != nil || clusters != nil {
		t.Fatalf("clusters=%v err=%v", clusters, err)
	}
}

func defaultOpts(seed int64) ISCOptions {
	return ISCOptions{
		Library:              mustLibrary(16, 20, 24, 28, 32),
		UtilizationThreshold: 0.05,
		Rand:                 rand.New(rand.NewSource(seed)),
	}
}

func mustLibrary(sizes ...int) xbar.Library {
	l, err := xbar.NewLibrary(sizes...)
	if err != nil {
		panic(err)
	}
	return l
}

func TestISCProducesValidAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := graph.RandomSparse(120, 0.93, rng)
	res, err := ISC(w, defaultOpts(13))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(w); err != nil {
		t.Fatalf("ISC assignment invalid: %v", err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("empty ISC trace")
	}
}

func TestISCClusteredNetworkLowOutliers(t *testing.T) {
	w := clusteredNet(5, 20, 14) // blocks fit in 20..32 crossbars
	opts := defaultOpts(15)
	res, err := ISC(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(w); err != nil {
		t.Fatal(err)
	}
	if r := res.Assignment.OutlierRatio(); r > 0.35 {
		t.Fatalf("outlier ratio %.2f on a block-structured network", r)
	}
	// Crossbar sizes always come from the library.
	allowed := map[int]bool{}
	for _, s := range opts.Library.Sizes() {
		allowed[s] = true
	}
	for _, c := range res.Assignment.Crossbars {
		if !allowed[c.Size] {
			t.Fatalf("crossbar size %d not in library", c.Size)
		}
		if len(c.Inputs) > c.Size {
			t.Fatalf("cluster of %d in crossbar of %d", len(c.Inputs), c.Size)
		}
	}
}

func TestISCOutlierRatioMonotone(t *testing.T) {
	w := clusteredNet(4, 25, 16)
	res, err := ISC(w, defaultOpts(17))
	if err != nil {
		t.Fatal(err)
	}
	prev := 1.0
	for _, it := range res.Trace {
		if it.OutlierRatio > prev+1e-12 {
			t.Fatalf("outlier ratio increased: %g → %g at iteration %d", prev, it.OutlierRatio, it.Index)
		}
		prev = it.OutlierRatio
	}
}

func TestISCEmptyNetwork(t *testing.T) {
	res, err := ISC(graph.NewConn(10), defaultOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignment.Crossbars) != 0 || len(res.Assignment.Synapses) != 0 {
		t.Fatal("empty network produced hardware")
	}
}

func TestISCOptionValidation(t *testing.T) {
	w := graph.NewConn(4)
	cases := map[string]ISCOptions{
		"no library":    {Rand: rand.New(rand.NewSource(1))},
		"no rand":       {Library: mustLibrary(16)},
		"bad threshold": {Library: mustLibrary(16), Rand: rand.New(rand.NewSource(1)), UtilizationThreshold: 2},
		"bad quantile":  {Library: mustLibrary(16), Rand: rand.New(rand.NewSource(1)), SelectionQuantile: 1.5},
	}
	for name, opts := range cases {
		if _, err := ISC(w, opts); err == nil {
			t.Errorf("%s: ISC accepted invalid options", name)
		}
	}
}

func TestISCPartialSelectionSelectsTopQuartile(t *testing.T) {
	w := clusteredNet(8, 15, 18)
	res, err := ISC(w, defaultOpts(19))
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Trace {
		for _, cs := range it.Clusters {
			if cs.Selected && cs.Preference < it.QuartileCP {
				t.Fatalf("iteration %d selected cluster below quartile: %g < %g",
					it.Index, cs.Preference, it.QuartileCP)
			}
			if !cs.Selected && cs.FitSize > 0 && cs.Preference > it.QuartileCP {
				// Permitted only if the iteration broke before selecting.
				if it.Placed > 0 {
					t.Fatalf("iteration %d skipped cluster above quartile", it.Index)
				}
			}
		}
	}
}

func TestISCDisabledPartialSelection(t *testing.T) {
	// With SelectionQuantile < 0 every cluster with connections is taken
	// each round, so the flow finishes in fewer iterations.
	w := clusteredNet(6, 18, 20)
	all := defaultOpts(21)
	all.SelectionQuantile = -1
	resAll, err := ISC(w, all)
	if err != nil {
		t.Fatal(err)
	}
	partial := defaultOpts(21)
	resPartial, err := ISC(w, partial)
	if err != nil {
		t.Fatal(err)
	}
	if err := resAll.Assignment.Validate(w); err != nil {
		t.Fatal(err)
	}
	if len(resAll.Trace) > len(resPartial.Trace) {
		t.Fatalf("all-selection took %d iterations, partial %d — expected fewer or equal",
			len(resAll.Trace), len(resPartial.Trace))
	}
}

func TestISCDeterminism(t *testing.T) {
	w := clusteredNet(4, 20, 22)
	a, err := ISC(w, defaultOpts(23))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ISC(w, defaultOpts(23))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Assignment.Crossbars) != len(b.Assignment.Crossbars) ||
		len(a.Assignment.Synapses) != len(b.Assignment.Synapses) {
		t.Fatal("same seed produced different assignments")
	}
}

func TestISCValidAssignmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(70)
		w := graph.RandomSparse(n, 0.88+0.1*rng.Float64(), rng)
		res, err := ISC(w, defaultOpts(seed+1))
		if err != nil {
			return false
		}
		return res.Assignment.Validate(w) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestGCPLargeNetworkLanczosPath(t *testing.T) {
	if testing.Short() {
		t.Skip("large-network test")
	}
	// 800 active neurons exceeds the dense cutoff, so this exercises the
	// sparse Lanczos embedding end to end.
	rng := rand.New(rand.NewSource(31))
	w := graph.RandomClustered(800, 50, 0.25, 0.001, rng)
	clusters, err := GCP(w, 64, rand.New(rand.NewSource(32)))
	if err != nil {
		t.Fatal(err)
	}
	isPartitionOfActive(t, w, clusters)
	for _, cl := range clusters {
		if len(cl) > 64 {
			t.Fatalf("cluster of %d exceeds the bound", len(cl))
		}
	}
	// The block structure must still be recoverable: most connections
	// within clusters.
	within := 0
	for _, cl := range clusters {
		within += w.CountWithin(cl)
	}
	if ratio := float64(within) / float64(w.NNZ()); ratio < 0.5 {
		t.Fatalf("only %.0f%% of connections within clusters on a block network", 100*ratio)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if q := quantile(xs, 0.75); q != 3 {
		t.Errorf("quantile(0.75) = %g, want 3", q)
	}
	if q := quantile(xs, 1); q != 4 {
		t.Errorf("quantile(1) = %g, want 4", q)
	}
	if q := quantile(nil, 0.5); q != 0 {
		t.Errorf("quantile(empty) = %g, want 0", q)
	}
	if q := quantile([]float64{7}, 0.75); q != 7 {
		t.Errorf("quantile singleton = %g, want 7", q)
	}
}

func TestPermutationByClusters(t *testing.T) {
	perm := PermutationByClusters(6, []Cluster{{4, 2}, {0}})
	want := []int{4, 2, 0, 1, 3, 5}
	for i := range want {
		if perm[i] != want[i] {
			t.Fatalf("perm = %v, want %v", perm, want)
		}
	}
}

func TestPermutationByClustersPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"dup":   func() { PermutationByClusters(4, []Cluster{{1}, {1}}) },
		"range": func() { PermutationByClusters(4, []Cluster{{9}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}
