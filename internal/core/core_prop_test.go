package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/xbar"
)

// Property tests for the clustering invariants the ISSUE-level acceptance
// criteria name: partition soundness after GCP, the crossbar size bound,
// ISC's utilization-threshold stopping rule, and connection conservation
// in the hybrid assignment. Each property is checked over a family of
// seeded random networks rather than a single fixture.

func propNetworks(t *testing.T) []*graph.Conn {
	t.Helper()
	var nets []*graph.Conn
	for seed := int64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nets = append(nets,
			graph.RandomSparse(60+10*int(seed), 0.90+0.01*float64(seed), rng),
			graph.RandomClustered(80, 16, 0.55, 0.01, rng),
		)
	}
	return nets
}

// TestGCPPartitionProperty: GCP's clusters must be disjoint, cover every
// active neuron exactly once, contain no inactive neurons, and respect the
// maximum crossbar size.
func TestGCPPartitionProperty(t *testing.T) {
	const maxSize = 32
	for ni, w := range propNetworks(t) {
		for _, workers := range []int{1, 3} {
			rng := rand.New(rand.NewSource(int64(ni) + 100))
			clusters, err := GCPN(w.Symmetrized(), maxSize, rng, workers)
			if err != nil {
				t.Fatalf("net %d workers %d: %v", ni, workers, err)
			}
			seen := make(map[int]int)
			for ci, c := range clusters {
				if len(c) == 0 {
					t.Errorf("net %d: empty cluster %d", ni, ci)
				}
				if len(c) > maxSize {
					t.Errorf("net %d: cluster %d has %d neurons, max %d", ni, ci, len(c), maxSize)
				}
				for _, n := range c {
					if prev, dup := seen[n]; dup {
						t.Errorf("net %d: neuron %d in clusters %d and %d", ni, n, prev, ci)
					}
					seen[n] = ci
				}
			}
			active := w.Symmetrized().ActiveNeurons()
			if len(seen) != len(active) {
				t.Errorf("net %d: clusters cover %d neurons, %d active", ni, len(seen), len(active))
			}
			for _, n := range active {
				if _, ok := seen[n]; !ok {
					t.Errorf("net %d: active neuron %d unclustered", ni, n)
				}
			}
		}
	}
}

// TestISCConservationProperty: every connection of the source network ends
// up in exactly one place — some crossbar's Conns or the discrete-synapse
// list — and each crossbar stays within its declared size.
func TestISCConservationProperty(t *testing.T) {
	lib := xbar.DefaultLibrary()
	for ni, w := range propNetworks(t) {
		res, err := ISC(w, ISCOptions{
			Library:              lib,
			UtilizationThreshold: 0.15,
			Rand:                 rand.New(rand.NewSource(int64(ni) + 7)),
		})
		if err != nil {
			t.Fatalf("net %d: %v", ni, err)
		}
		a := res.Assignment
		if a.Total != w.NNZ() {
			t.Errorf("net %d: assignment total %d, network has %d", ni, a.Total, w.NNZ())
		}
		mapped := 0
		type edge = graph.Edge
		seen := make(map[edge]bool)
		for ci, cb := range a.Crossbars {
			if len(cb.Conns) > cb.Size*cb.Size {
				t.Errorf("net %d: crossbar %d holds %d conns in a %d×%d array",
					ni, ci, len(cb.Conns), cb.Size, cb.Size)
			}
			for _, e := range cb.Conns {
				if !w.Has(e.From, e.To) {
					t.Errorf("net %d: crossbar %d maps non-edge %d→%d", ni, ci, e.From, e.To)
				}
				if seen[e] {
					t.Errorf("net %d: connection %d→%d realized twice", ni, e.From, e.To)
				}
				seen[e] = true
			}
			mapped += len(cb.Conns)
		}
		for _, e := range a.Synapses {
			if !w.Has(e.From, e.To) {
				t.Errorf("net %d: synapse list has non-edge %d→%d", ni, e.From, e.To)
			}
			if seen[e] {
				t.Errorf("net %d: connection %d→%d in both a crossbar and the synapse list",
					ni, e.From, e.To)
			}
			seen[e] = true
		}
		if got := mapped + len(a.Synapses); got != w.NNZ() {
			t.Errorf("net %d: %d crossbar conns + %d synapses = %d, want %d",
				ni, mapped, len(a.Synapses), got, w.NNZ())
		}
		if err := a.Validate(w); err != nil {
			t.Errorf("net %d: %v", ni, err)
		}
	}
}

// TestISCUtilizationThresholdProperty: the stopping rule means every
// iteration that placed crossbars — except possibly the final one, whose
// low utilization is what triggers the stop — has average placed-crossbar
// utilization at or above the threshold.
func TestISCUtilizationThresholdProperty(t *testing.T) {
	const threshold = 0.20
	for ni, w := range propNetworks(t) {
		res, err := ISC(w, ISCOptions{
			Library:              xbar.DefaultLibrary(),
			UtilizationThreshold: threshold,
			Rand:                 rand.New(rand.NewSource(int64(ni) + 21)),
		})
		if err != nil {
			t.Fatalf("net %d: %v", ni, err)
		}
		last := -1
		for i, it := range res.Trace {
			if it.Placed > 0 {
				last = i
			}
		}
		for i, it := range res.Trace {
			if i == last || it.Placed == 0 {
				continue
			}
			if it.AvgUtilization < threshold {
				t.Errorf("net %d: iteration %d placed %d crossbars at utilization %.4f < %.2f yet ISC continued",
					ni, it.Index, it.Placed, it.AvgUtilization, threshold)
			}
		}
	}
}

// TestISCSelectionQuantileProperty: in every iteration, each selected
// cluster's CP meets the iteration's quartile threshold.
func TestISCSelectionQuantileProperty(t *testing.T) {
	for ni, w := range propNetworks(t) {
		res, err := ISC(w, ISCOptions{
			Library:              xbar.DefaultLibrary(),
			UtilizationThreshold: 0.10,
			SelectionQuantile:    0.75,
			Rand:                 rand.New(rand.NewSource(int64(ni) + 33)),
		})
		if err != nil {
			t.Fatalf("net %d: %v", ni, err)
		}
		for _, it := range res.Trace {
			for _, cs := range it.Clusters {
				if cs.Selected && cs.Preference < it.QuartileCP {
					t.Errorf("net %d iter %d: selected cluster with CP %.4f below quartile %.4f",
						ni, it.Index, cs.Preference, it.QuartileCP)
				}
				if cs.Selected && cs.FitSize == 0 {
					t.Errorf("net %d iter %d: selected a cluster no library size fits", ni, it.Index)
				}
			}
		}
	}
}

// TestMultilevelRoundTripProperty: the coarsen/uncoarsen round trip is
// checked level by level on the hierarchy the engine actually built. At
// every level each fine node maps to exactly one in-range coarse node, node
// weight is conserved through the contraction, and the uncoarsened partition
// is a refinement of the coarse one up to boundary moves: a node may leave
// its projected part only for an adjacent part, every part id at the fine
// level already exists at the coarse level, and the node-weight cap holds
// throughout.
func TestMultilevelRoundTripProperty(t *testing.T) {
	const maxSize = 16
	for ni, w := range propNetworks(t) {
		sc, st := mlScratchFor(24)
		clusters, err := multilevelCluster(w, maxSize, 1, sc)
		if err != nil {
			t.Fatalf("net %d: %v", ni, err)
		}
		isPartitionOfActive(t, w, clusters)
		depth := st.MaxDepth
		if depth < 1 {
			t.Fatalf("net %d: no hierarchy built (depth 0)", ni)
		}
		ml := sc.mlSc
		for l := 0; l < depth; l++ {
			fg, cg := ml.graphs[l], ml.graphs[l+1]
			par := ml.parents[l]
			if len(par) < fg.N {
				t.Fatalf("net %d level %d: parent map covers %d of %d nodes", ni, l, len(par), fg.N)
			}
			// Exactly one in-range coarse node per fine node, none empty,
			// node weight conserved through the contraction.
			wsum := make([]int32, cg.N)
			for v := 0; v < fg.N; v++ {
				p := par[v]
				if p < 0 || int(p) >= cg.N {
					t.Fatalf("net %d level %d: parent[%d] = %d out of [0,%d)", ni, l, v, p, cg.N)
				}
				wsum[p] += fg.NodeW[v]
			}
			for c, ws := range wsum {
				if ws == 0 {
					t.Fatalf("net %d level %d: coarse node %d has no members", ni, l, c)
				}
				if ws != cg.NodeW[c] {
					t.Fatalf("net %d level %d: coarse node %d weight %d, members sum to %d",
						ni, l, c, cg.NodeW[c], ws)
				}
			}
			// Refinement property: the fine partition uses only coarse part
			// ids, and any node that left its projected part sits adjacent to
			// its new part (boundary moves only).
			fp, cp := ml.parts[l][:fg.N], ml.parts[l+1][:cg.N]
			coarseIDs := make(map[int32]bool, cg.N)
			for _, p := range cp {
				coarseIDs[p] = true
			}
			for v := 0; v < fg.N; v++ {
				p := fp[v]
				if !coarseIDs[p] {
					t.Fatalf("net %d level %d: node %d in part %d, which no coarse node has", ni, l, v, p)
				}
				if p == cp[par[v]] {
					continue
				}
				adjacent := false
				for _, u := range fg.Row(v) {
					if fp[u] == p {
						adjacent = true
						break
					}
				}
				if !adjacent {
					t.Fatalf("net %d level %d: node %d moved to part %d with no neighbor there", ni, l, v, p)
				}
			}
			// The node-weight cap survives projection and refinement.
			pw := map[int32]int32{}
			for v := 0; v < fg.N; v++ {
				pw[fp[v]] += fg.NodeW[v]
			}
			for p, ws := range pw {
				if int(ws) > maxSize {
					t.Fatalf("net %d level %d: part %d weight %d exceeds cap %d", ni, l, p, ws, maxSize)
				}
			}
		}
	}
}

// TestISCRejectsBadOptions: option validation must fail fast with
// descriptive errors instead of misbehaving later.
func TestISCRejectsBadOptions(t *testing.T) {
	w := graph.RandomSparse(40, 0.9, rand.New(rand.NewSource(1)))
	lib := xbar.DefaultLibrary()
	cases := []struct {
		name string
		opts ISCOptions
	}{
		{"empty library", ISCOptions{Rand: rand.New(rand.NewSource(1))}},
		{"nil rand", ISCOptions{Library: lib}},
		{"negative workers", ISCOptions{Library: lib, Rand: rand.New(rand.NewSource(1)), Workers: -2}},
		{"threshold above one", ISCOptions{Library: lib, Rand: rand.New(rand.NewSource(1)), UtilizationThreshold: 1.5}},
		{"quantile above one", ISCOptions{Library: lib, Rand: rand.New(rand.NewSource(1)), SelectionQuantile: 1.5}},
	}
	for _, tc := range cases {
		if _, err := ISC(w, tc.opts); err == nil {
			t.Errorf("%s: ISC accepted invalid options", tc.name)
		}
	}
}
