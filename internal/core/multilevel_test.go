package core

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

// mlScratchFor builds a scratch configured for the multilevel engine, the
// way ISCCtx does.
func mlScratchFor(cutoff int) (*scratch, *EngineStats) {
	st := &EngineStats{}
	sc := &scratch{
		ml:    mlOptions{enabled: true, cutoff: cutoff, ratio: DefaultCoarsenRatio},
		stats: st,
	}
	return sc, st
}

func TestMultilevelClusterPartition(t *testing.T) {
	const maxSize = 32
	for name, w := range map[string]*graph.Conn{
		"clustered": clusteredNet(8, 20, 41),
		"sparse":    graph.RandomSparse(400, 0.95, rand.New(rand.NewSource(42))),
	} {
		sc, st := mlScratchFor(48)
		clusters, err := multilevelCluster(w, maxSize, 1, sc)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		isPartitionOfActive(t, w, clusters)
		for ci, cl := range clusters {
			if len(cl) > maxSize {
				t.Errorf("%s: cluster %d has %d neurons, max %d", name, ci, len(cl), maxSize)
			}
		}
		if st.Levels == 0 || st.MaxDepth == 0 {
			t.Errorf("%s: no coarsening happened: %+v", name, st)
		}
		if st.Eigensolves == 0 {
			t.Errorf("%s: no eigensolves recorded", name)
		}
	}
}

func TestMultilevelClusterReusedScratch(t *testing.T) {
	// One scratch across rounds on shrinking networks — the ISC usage
	// pattern — must keep producing valid bounded partitions.
	w := clusteredNet(10, 16, 43)
	sc, _ := mlScratchFor(32)
	remaining := w.Clone()
	for round := 0; round < 3 && remaining.NNZ() > 0; round++ {
		clusters, err := multilevelCluster(remaining, 24, 1, sc)
		if err != nil {
			t.Fatal(err)
		}
		isPartitionOfActive(t, remaining, clusters)
		// Remove the densest cluster's connections, as ISC would.
		best, bestW := -1, -1
		for ci, cl := range clusters {
			if m := remaining.CountWithin(cl); m > bestW {
				best, bestW = ci, m
			}
		}
		if best < 0 {
			break
		}
		remaining.RemoveWithin(clusters[best])
	}
}

// mlOpts returns ISC options with the multilevel engine on.
func mlOpts(seed int64, cutoff, workers int) ISCOptions {
	o := defaultOpts(seed)
	o.Multilevel = true
	o.MultilevelCutoff = cutoff
	o.Workers = workers
	return o
}

// engineCounters compares every deterministic EngineStats field (the wall
// times are excluded: they are diagnostic and vary run to run).
func engineCounters(s EngineStats) [9]int {
	return [9]int{
		s.MultilevelRounds, s.FlatRounds, s.Levels, s.MaxDepth,
		s.Matchings, s.Eigensolves, s.WarmStarts, s.LanczosSteps, s.RefineMoves,
	}
}

// TestClusterWorkerInvariance: the multilevel clustering must be
// bit-identical for every worker count, on both net shapes, mirroring
// TestPlaceWorkerInvariance. Engine counters (eigensolves, matchings,
// refine moves, Lanczos steps) are part of the contract: a divergence there
// is a worker-dependent code path even if the final partition agrees.
func TestClusterWorkerInvariance(t *testing.T) {
	nets := map[string]*graph.Conn{
		"clustered": clusteredNet(8, 20, 51),
		"sparse720": graph.RandomSparse(720, 0.985, rand.New(rand.NewSource(21))),
	}
	// Cutoff 560 puts the large first rounds on the multilevel engine with
	// Lanczos bisections, and the (512, 560] tail rounds on the flat
	// warm-started Lanczos path, covering every parallel kernel.
	cutoffs := map[string]int{"clustered": 48, "sparse720": 560}
	for name, w := range nets {
		if raceEnabled && name == "sparse720" {
			continue // minutes under the race detector; clustered covers the kernels
		}
		ref, err := ISC(w, mlOpts(7, cutoffs[name], 1))
		if err != nil {
			t.Fatalf("%s workers=1: %v", name, err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := ISC(w, mlOpts(7, cutoffs[name], workers))
			if err != nil {
				t.Fatalf("%s workers=%d: %v", name, workers, err)
			}
			if engineCounters(got.Engine) != engineCounters(ref.Engine) {
				t.Fatalf("%s workers=%d: engine counters %v, want %v",
					name, workers, engineCounters(got.Engine), engineCounters(ref.Engine))
			}
			if len(got.Trace) != len(ref.Trace) {
				t.Fatalf("%s workers=%d: %d iterations, want %d", name, workers, len(got.Trace), len(ref.Trace))
			}
			a, b := got.Assignment, ref.Assignment
			if len(a.Crossbars) != len(b.Crossbars) || len(a.Synapses) != len(b.Synapses) {
				t.Fatalf("%s workers=%d: %d crossbars/%d synapses, want %d/%d",
					name, workers, len(a.Crossbars), len(a.Synapses), len(b.Crossbars), len(b.Synapses))
			}
			for i := range a.Crossbars {
				ca, cb := a.Crossbars[i], b.Crossbars[i]
				if ca.Size != cb.Size || len(ca.Inputs) != len(cb.Inputs) || len(ca.Conns) != len(cb.Conns) {
					t.Fatalf("%s workers=%d: crossbar %d differs", name, workers, i)
				}
				for j := range ca.Inputs {
					if ca.Inputs[j] != cb.Inputs[j] {
						t.Fatalf("%s workers=%d: crossbar %d input %d differs", name, workers, i, j)
					}
				}
				for j := range ca.Conns {
					if ca.Conns[j] != cb.Conns[j] {
						t.Fatalf("%s workers=%d: crossbar %d conn %d differs", name, workers, i, j)
					}
				}
			}
			for i := range a.Synapses {
				if a.Synapses[i] != b.Synapses[i] {
					t.Fatalf("%s workers=%d: synapse %d differs", name, workers, i)
				}
			}
		}
	}
}

func TestMultilevelISCValidAssignment(t *testing.T) {
	w := graph.RandomSparse(600, 0.98, rand.New(rand.NewSource(61)))
	res, err := ISC(w, mlOpts(62, 128, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(w); err != nil {
		t.Fatalf("multilevel ISC assignment invalid: %v", err)
	}
	if res.Engine.MultilevelRounds == 0 {
		t.Fatalf("multilevel engine never engaged: %+v", res.Engine)
	}
}

func TestISCOptionValidationMultilevel(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*ISCOptions)
		ok     bool
	}{
		{"cutoff default", func(o *ISCOptions) { o.MultilevelCutoff = 0 }, true},
		{"cutoff too small", func(o *ISCOptions) { o.MultilevelCutoff = 1 }, false},
		{"cutoff negative", func(o *ISCOptions) { o.MultilevelCutoff = -5 }, false},
		{"cutoff minimal", func(o *ISCOptions) { o.MultilevelCutoff = 2 }, true},
		{"ratio default", func(o *ISCOptions) { o.CoarsenRatio = 0 }, true},
		{"ratio negative", func(o *ISCOptions) { o.CoarsenRatio = -0.5 }, false},
		{"ratio one", func(o *ISCOptions) { o.CoarsenRatio = 1 }, false},
		{"ratio above one", func(o *ISCOptions) { o.CoarsenRatio = 1.5 }, false},
		{"ratio valid", func(o *ISCOptions) { o.CoarsenRatio = 0.65 }, true},
		{"levels negative", func(o *ISCOptions) { o.MultilevelLevels = -1 }, false},
		{"levels bounded", func(o *ISCOptions) { o.MultilevelLevels = 3 }, true},
	}
	w := clusteredNet(4, 16, 71)
	for _, tc := range cases {
		opts := defaultOpts(72)
		opts.Multilevel = true
		tc.mutate(&opts)
		_, err := ISC(w, opts)
		if tc.ok && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if !tc.ok && err == nil {
			t.Errorf("%s: invalid option accepted", tc.name)
		}
	}
}

func TestMultilevelLevelBound(t *testing.T) {
	w := graph.RandomSparse(500, 0.97, rand.New(rand.NewSource(81)))
	opts := mlOpts(82, 32, 1)
	opts.MultilevelLevels = 1
	res, err := ISC(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine.MaxDepth > 1 {
		t.Fatalf("level bound 1 exceeded: depth %d", res.Engine.MaxDepth)
	}
}

func BenchmarkMultilevelCluster(b *testing.B) {
	w := graph.RandomSparse(2000, 0.995, rand.New(rand.NewSource(91)))
	sc, _ := mlScratchFor(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multilevelCluster(w, 32, 1, sc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFlatCluster(b *testing.B) {
	w := graph.RandomSparse(2000, 0.995, rand.New(rand.NewSource(91)))
	sc := &scratch{}
	rng := rand.New(rand.NewSource(92))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gcpN(w, 32, rng, 1, sc); err != nil {
			b.Fatal(err)
		}
	}
}
