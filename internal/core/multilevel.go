// Multilevel clustering engine: the Group Scissor-style coarsen → solve →
// uncoarsen flow that replaces the flat GCP spectral pass for large active
// networks. Heavy-edge matching contracts the cached CSR level by level down
// to a size cutoff, recursive weighted spectral bisection partitions the
// coarse graph (eigensolves of independent parts fan out over the worker
// pool), and the partition is projected back up with boundary-local
// refinement ordered by the prolonged Fiedler coordinate at every level.
//
// Determinism contract: matchings, coarse ids, bisection sweeps, and
// refinement commits are pure functions of the input graph — the only
// parallel kernels (per-part eigensolves, per-node gain scans) write
// disjoint slots and commit in fixed part/node order, so the clustering is
// bit-identical for every worker count, which TestClusterWorkerInvariance
// enforces.
package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/matrix"
	"repro/internal/parallel"
)

// Defaults and dispatch constants of the multilevel engine.
const (
	// DefaultMultilevelCutoff is the coarse-graph size the hierarchy aims
	// for: coarsening stops once a level has at most this many nodes, and
	// ISC iterations whose active network is already at or below it use the
	// flat engine (with warm-started Lanczos solves).
	DefaultMultilevelCutoff = 1024
	// DefaultCoarsenRatio is the minimum shrink a level must achieve for
	// coarsening to continue: the hierarchy stops early when a matching
	// leaves more than this fraction of the nodes.
	DefaultCoarsenRatio = 0.9
	// mlDenseBisect is the part size at or below which a bisection solves
	// the dense generalized eigenproblem; larger parts use weighted Lanczos.
	mlDenseBisect = 96
	// mlRefinePasses bounds the boundary refinement sweeps per level.
	mlRefinePasses = 2
	// lanczosSeed seeds every spectral solve's start vector (the same
	// constant the flat path has always used).
	lanczosSeed = 0x5eed
)

// EngineStats summarizes the clustering engine's work across one ISC run —
// the core-side counterpart of the obs.ClusterStats event, mirrored on
// ISCResult for programmatic access. Every counter is deterministic for any
// worker count; the timings are diagnostic only.
type EngineStats struct {
	MultilevelRounds int // ISC iterations clustered by the multilevel engine
	FlatRounds       int // ISC iterations on the flat engine (below cutoff)
	Levels           int // coarsening levels built, summed over rounds
	MaxDepth         int // deepest hierarchy of any round
	Matchings        int // pairwise heavy-edge contractions committed
	Eigensolves      int // spectral solves (bisections + flat embeddings)
	WarmStarts       int // Lanczos solves seeded from a previous Ritz basis
	LanczosSteps     int // Krylov steps across all adaptive Lanczos solves
	RefineMoves      int // boundary moves applied during uncoarsening
	CoarsenTime      time.Duration
	SolveTime        time.Duration
	RefineTime       time.Duration
}

// mlOptions is the normalized multilevel configuration carried on a scratch.
type mlOptions struct {
	enabled   bool
	cutoff    int
	ratio     float64
	maxLevels int // 0 = unbounded
}

// mlScratch holds the grow-once storage of the multilevel engine: the
// hierarchy (graphs and parent maps per level), the per-level partition and
// Fiedler buffers, and the refinement scratch. One mlScratch serves every
// iteration of an ISC run.
type mlScratch struct {
	graphs   []*graph.WGraph
	parents  [][]int32
	cws      graph.CoarsenWS
	parts    [][]int32
	fiedlers [][]float64

	// refinement scratch
	partW  []int32
	gain   []float64
	target []int32
	cand   []int32

	// component scan scratch (top-level partitioning)
	visited []bool
	stack   []int32
}

func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

func (ml *mlScratch) graphAt(level int) *graph.WGraph {
	for len(ml.graphs) <= level {
		ml.graphs = append(ml.graphs, &graph.WGraph{})
	}
	return ml.graphs[level]
}

func (ml *mlScratch) partFor(level, n int) []int32 {
	for len(ml.parts) <= level {
		ml.parts = append(ml.parts, nil)
	}
	ml.parts[level] = growI32(ml.parts[level], n)
	return ml.parts[level]
}

func (ml *mlScratch) fiedlerFor(level, n int) []float64 {
	for len(ml.fiedlers) <= level {
		ml.fiedlers = append(ml.fiedlers, nil)
	}
	ml.fiedlers[level] = growF64(ml.fiedlers[level], n)
	return ml.fiedlers[level]
}

// multilevelCluster partitions the remaining network's active neurons into
// clusters of at most maxSize neurons with the V-shaped multilevel flow.
func multilevelCluster(w *graph.Conn, maxSize, workers int, sc *scratch) ([]Cluster, error) {
	csr := w.SymmetrizedCSR()
	active, g2l := sc.collectActive(csr, w.N())
	if len(active) == 0 {
		return nil, nil
	}
	local := csr.RestrictTo(active, g2l, &sc.local)
	if sc.mlSc == nil {
		sc.mlSc = &mlScratch{}
	}
	ml, st := sc.mlSc, sc.stats

	// Coarsening: heavy-edge matchings until the cutoff, a stalled
	// matching, a poor shrink, or the level cap.
	t0 := time.Now()
	graph.WGraphFromCSR(local, ml.graphAt(0))
	depth := 0
	for {
		cur := ml.graphs[depth]
		if cur.N <= sc.ml.cutoff {
			break
		}
		if sc.ml.maxLevels > 0 && depth >= sc.ml.maxLevels {
			break
		}
		next := ml.graphAt(depth + 1)
		for len(ml.parents) <= depth {
			ml.parents = append(ml.parents, nil)
		}
		par, matched := graph.Coarsen(cur, maxSize, next, ml.parents[depth], &ml.cws)
		ml.parents[depth] = par
		if matched == 0 {
			break
		}
		st.Matchings += matched
		st.Levels++
		depth++
		if float64(next.N) > sc.ml.ratio*float64(cur.N) {
			break
		}
	}
	if depth > st.MaxDepth {
		st.MaxDepth = depth
	}
	st.CoarsenTime += time.Since(t0)

	// Coarse partitioning by recursive weighted spectral bisection.
	t1 := time.Now()
	top := ml.graphs[depth]
	part := ml.partFor(depth, top.N)
	fied := ml.fiedlerFor(depth, top.N)
	if err := partitionCoarse(top, maxSize, workers, part, fied, ml, st); err != nil {
		return nil, err
	}
	st.SolveTime += time.Since(t1)

	// Uncoarsening: project the partition and the Fiedler coordinates one
	// level down, then refine the boundary at that level.
	t2 := time.Now()
	for l := depth - 1; l >= 0; l-- {
		fg := ml.graphs[l]
		pf := ml.partFor(l, fg.N)
		ff := ml.fiedlerFor(l, fg.N)
		par := ml.parents[l]
		for v := 0; v < fg.N; v++ {
			pf[v] = part[par[v]]
			ff[v] = fied[par[v]]
		}
		refine(fg, pf, ff, maxSize, mlRefinePasses, workers, ml, st)
		part, fied = pf, ff
	}
	st.RefineTime += time.Since(t2)

	return groupClusters(part, active), nil
}

// groupClusters converts the level-0 partition into clusters of global
// neuron ids: parts in id order, members ascending, empties dropped.
func groupClusters(part []int32, active []int) []Cluster {
	numParts := 0
	for _, p := range part {
		if int(p) >= numParts {
			numParts = int(p) + 1
		}
	}
	counts := make([]int, numParts)
	for _, p := range part {
		counts[p]++
	}
	out := make([]Cluster, 0, numParts)
	slot := make([]int, numParts)
	for p := 0; p < numParts; p++ {
		slot[p] = -1
		if counts[p] > 0 {
			slot[p] = len(out)
			out = append(out, make(Cluster, 0, counts[p]))
		}
	}
	for v, p := range part {
		s := slot[p]
		out[s] = append(out[s], active[v])
	}
	return out
}

// splitResult is the outcome of one bisection task: either the connected
// components of a disconnected part, or the two sides of a Fiedler sweep cut
// with the per-node Fiedler coordinates for the refinement ordering.
type splitResult struct {
	nodes  []int32
	groups [][]int32
	vals   []float64 // aligned with nodes; nil when no eigensolve ran
	solves int
	steps  int
	err    error
}

// partitionCoarse partitions g into parts of node weight at most maxSize:
// connected components seed the work list, every oversized part is split by
// weighted spectral bisection, and splits of independent parts run in
// parallel with results committed in fixed part order — part ids depend only
// on g and maxSize, never on the worker count.
func partitionCoarse(g *graph.WGraph, maxSize, workers int, part []int32, fied []float64, ml *mlScratch, st *EngineStats) error {
	for i := range part {
		part[i] = -1
	}
	for i := range fied {
		fied[i] = 0
	}
	tasks := components(g, ml)
	nextID := int32(0)
	for len(tasks) > 0 {
		var over [][]int32
		for _, nodes := range tasks {
			wsum := 0
			for _, v := range nodes {
				wsum += int(g.NodeW[v])
			}
			if wsum <= maxSize {
				for _, v := range nodes {
					part[v] = nextID
				}
				nextID++
				continue
			}
			over = append(over, nodes)
		}
		if len(over) == 0 {
			break
		}
		results := parallel.Map(workers, len(over), func(i int) *splitResult {
			return splitPart(g, over[i], maxSize)
		})
		tasks = nil
		for _, r := range results {
			if r.err != nil {
				return r.err
			}
			st.Eigensolves += r.solves
			st.LanczosSteps += r.steps
			if r.vals != nil {
				for i, v := range r.nodes {
					fied[v] = r.vals[i]
				}
			}
			tasks = append(tasks, r.groups...)
		}
	}
	return nil
}

// components returns the connected components of g, each an ascending node
// list, ordered by smallest member.
func components(g *graph.WGraph, ml *mlScratch) [][]int32 {
	n := g.N
	if cap(ml.visited) < n {
		ml.visited = make([]bool, n)
	}
	visited := ml.visited[:n]
	for i := range visited {
		visited[i] = false
	}
	ml.stack = growI32(ml.stack, n)
	var out [][]int32
	for s := 0; s < n; s++ {
		if visited[s] {
			continue
		}
		stack := ml.stack[:0]
		stack = append(stack, int32(s))
		visited[s] = true
		var comp []int32
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, v)
			for _, u := range g.Row(int(v)) {
				if !visited[u] {
					visited[u] = true
					stack = append(stack, u)
				}
			}
		}
		sort.Slice(comp, func(a, b int) bool { return comp[a] < comp[b] })
		out = append(out, comp)
	}
	return out
}

// mlSeed derives the deterministic rng seed of a bisection solve from the
// part's content alone, so the solve is a pure function of (g, nodes).
func mlSeed(nodes []int32) int64 {
	return lanczosSeed ^ int64(len(nodes))<<32 ^ int64(nodes[0])
}

// splitPart splits one oversized part. A disconnected part splits into its
// components; a connected one is cut at the weighted median of its Fiedler
// vector (dense generalized eigensolve for small parts, weighted normalized-
// Laplacian Lanczos above mlDenseBisect). Runs on worker goroutines: it
// reads only g and allocates its own scratch.
func splitPart(g *graph.WGraph, nodes []int32, maxSize int) *splitResult {
	r := &splitResult{nodes: nodes}
	m := len(nodes)
	loc := make([]int32, g.N)
	for i := range loc {
		loc[i] = -1
	}
	for i, v := range nodes {
		loc[v] = int32(i)
	}
	if comps := subComponents(g, nodes, loc); len(comps) > 1 {
		r.groups = comps
		return r
	}

	// Restrict to the part.
	rowPtr := make([]int32, m+1)
	nnz := 0
	for _, v := range nodes {
		for _, u := range g.Row(int(v)) {
			if loc[u] >= 0 {
				nnz++
			}
		}
	}
	col := make([]int32, 0, nnz)
	wts := make([]float64, 0, nnz)
	deg := make([]float64, m)
	for i, v := range nodes {
		row, roww := g.Row(int(v)), g.RowW(int(v))
		for e, u := range row {
			if loc[u] < 0 {
				continue
			}
			col = append(col, loc[u])
			wts = append(wts, roww[e])
			deg[i] += roww[e]
		}
		rowPtr[i+1] = int32(len(col))
	}

	f := make([]float64, m)
	if m <= mlDenseBisect {
		l := matrix.NewDense(m, m)
		for i := 0; i < m; i++ {
			for e := rowPtr[i]; e < rowPtr[i+1]; e++ {
				l.Set(i, int(col[e]), -wts[e])
			}
			l.Set(i, i, deg[i])
		}
		_, u, err := matrix.GeneralizedSymN(l, deg, 1)
		if err != nil {
			r.err = fmt.Errorf("core: multilevel bisection (m=%d): %w", m, err)
			return r
		}
		for i := 0; i < m; i++ {
			f[i] = u.At(i, 1)
		}
		r.solves++
	} else {
		op, err := matrix.NormalizedLaplacianWeightedCSRN(m, deg, rowPtr, col, wts, 1)
		if err != nil {
			r.err = fmt.Errorf("core: multilevel bisection (m=%d): %w", m, err)
			return r
		}
		var lws matrix.LanczosWS
		_, vecs, steps, err := matrix.LanczosSmallestFrom(&lws, op, m, 2, nil, rand.New(rand.NewSource(mlSeed(nodes))), 1)
		if err != nil {
			r.err = fmt.Errorf("core: multilevel bisection (m=%d): %w", m, err)
			return r
		}
		for i := 0; i < m; i++ {
			f[i] = vecs.At(i, 1) / math.Sqrt(deg[i])
		}
		r.solves++
		r.steps = steps
	}
	r.vals = f

	// Weighted-median sweep cut in Fiedler order (ties by index, so a
	// degenerate vector degrades to a weight-balanced index cut).
	order := make([]int32, m)
	for i := range order {
		order[i] = int32(i)
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		if f[ia] != f[ib] {
			return f[ia] < f[ib]
		}
		return ia < ib
	})
	total := 0
	for _, v := range nodes {
		total += int(g.NodeW[v])
	}
	cut, cum := 0, 0
	for i := 0; i < m-1; i++ {
		cum += int(g.NodeW[nodes[order[i]]])
		if 2*cum >= total {
			cut = i + 1
			break
		}
	}
	if cut < 1 {
		cut = m - 1
	}
	left := make([]int32, 0, cut)
	right := make([]int32, 0, m-cut)
	for _, o := range order[:cut] {
		left = append(left, nodes[o])
	}
	for _, o := range order[cut:] {
		right = append(right, nodes[o])
	}
	sortI32(left)
	sortI32(right)
	r.groups = [][]int32{left, right}
	return r
}

// subComponents returns the connected components of the induced subgraph
// over nodes (loc maps global→part-local, -1 outside), each ascending, in
// order of smallest member. Single-component parts return one group.
func subComponents(g *graph.WGraph, nodes []int32, loc []int32) [][]int32 {
	m := len(nodes)
	visited := make([]bool, m)
	stack := make([]int32, 0, m)
	var out [][]int32
	for s := 0; s < m; s++ {
		if visited[s] {
			continue
		}
		stack = stack[:0]
		stack = append(stack, int32(s))
		visited[s] = true
		var comp []int32
		for len(stack) > 0 {
			i := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			comp = append(comp, nodes[i])
			for _, u := range g.Row(int(nodes[i])) {
				if li := loc[u]; li >= 0 && !visited[li] {
					visited[li] = true
					stack = append(stack, li)
				}
			}
		}
		sortI32(comp)
		out = append(out, comp)
	}
	return out
}

func sortI32(s []int32) {
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
}

// bestMove computes node v's best strictly-improving move: the adjacent part
// maximizing the connectivity gain (weight to the part minus weight kept in
// its own), ties toward the smaller part id. Returns (-1, 0) when no move
// improves. Reads only g and part, so gain scans fan out race-free.
func bestMove(g *graph.WGraph, part []int32, v int) (int32, float64) {
	own := part[v]
	row, roww := g.Row(v), g.RowW(v)
	wOwn := 0.0
	for e, u := range row {
		if part[u] == own {
			wOwn += roww[e]
		}
	}
	bestP, bestG := int32(-1), 0.0
	for e, u := range row {
		p := part[u]
		if p == own {
			continue
		}
		dup := false
		for e2 := 0; e2 < e; e2++ {
			if part[row[e2]] == p {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		wp := roww[e]
		for e2 := e + 1; e2 < len(row); e2++ {
			if part[row[e2]] == p {
				wp += roww[e2]
			}
		}
		gn := wp - wOwn
		if gn <= 0 {
			continue
		}
		if bestP < 0 || gn > bestG || (gn == bestG && p < bestP) {
			bestP, bestG = p, gn
		}
	}
	return bestP, bestG
}

// refine runs boundary-local passes over one level: gains are computed for
// every node in parallel (disjoint slots), candidates are ordered by (gain
// desc, prolonged Fiedler asc, id asc) on the control goroutine, and commits
// re-validate each move against the current partition and the maxSize cap —
// so the committed sequence is a pure function of the inputs. Zero
// steady-state allocations once the mlScratch has grown (the alloc pin).
func refine(g *graph.WGraph, part []int32, fied []float64, maxSize, passes, workers int, ml *mlScratch, st *EngineStats) {
	n := g.N
	numParts := 0
	for _, p := range part {
		if int(p) >= numParts {
			numParts = int(p) + 1
		}
	}
	ml.partW = growI32(ml.partW, numParts)
	partW := ml.partW
	for i := range partW {
		partW[i] = 0
	}
	for v, p := range part {
		partW[p] += g.NodeW[v]
	}
	ml.gain = growF64(ml.gain, n)
	ml.target = growI32(ml.target, n)
	ml.cand = growI32(ml.cand, n)
	gain, target := ml.gain, ml.target

	for pass := 0; pass < passes; pass++ {
		if workers <= 1 {
			for v := 0; v < n; v++ {
				target[v], gain[v] = bestMove(g, part, v)
			}
		} else {
			parallel.For(workers, n, func(v int) {
				target[v], gain[v] = bestMove(g, part, v)
			})
		}
		cand := ml.cand[:0]
		for v := 0; v < n; v++ {
			if target[v] >= 0 {
				cand = append(cand, int32(v))
			}
		}
		sortMoves(cand, gain, fied)
		moved := 0
		for _, v32 := range cand {
			v := int(v32)
			t, own := target[v], part[v]
			if int(partW[t])+int(g.NodeW[v]) > maxSize {
				continue
			}
			// Re-validate against the current partition: earlier commits in
			// this pass may have changed the neighborhood.
			row, roww := g.Row(v), g.RowW(v)
			wOwn, wT := 0.0, 0.0
			for e, u := range row {
				switch part[u] {
				case own:
					wOwn += roww[e]
				case t:
					wT += roww[e]
				}
			}
			if wT-wOwn <= 0 {
				continue
			}
			part[v] = t
			partW[t] += g.NodeW[v]
			partW[own] -= g.NodeW[v]
			moved++
		}
		st.RefineMoves += moved
		if moved == 0 {
			break
		}
	}
}

// sortMoves shellsorts the candidate nodes by (gain desc, Fiedler asc,
// id asc) — deterministic and allocation-free.
func sortMoves(cand []int32, gain, fied []float64) {
	n := len(cand)
	gap := 1
	for gap < n/3 {
		gap = 3*gap + 1
	}
	for ; gap > 0; gap /= 3 {
		for i := gap; i < n; i++ {
			c := cand[i]
			j := i
			for ; j >= gap && moveBefore(c, cand[j-gap], gain, fied); j -= gap {
				cand[j] = cand[j-gap]
			}
			cand[j] = c
		}
	}
}

// warmState carries the previous ISC iteration's Ritz basis so the next
// flat-round Lanczos solve can start from it. The active subgraph shrinks
// monotonically across ISC iterations, so the projection is a cheap gather:
// each surviving neuron keeps its previous Ritz row, and the rows are
// collapsed onto a single start vector with coefficients 1/(c+1) — the
// smallest Ritz directions dominate, which is where the new spectrum lives.
type warmState struct {
	valid bool
	g2l   []int32   // global neuron id → previous local row; -1 = absent
	basis []float64 // previous na × k Ritz vectors, row-major (pre D^{-1/2})
	k     int
	v0    []float64
}

// startVector builds the warm start vector over the current active set, or
// returns nil when no usable carry exists (first iteration, or no overlap).
func (wm *warmState) startVector(active []int) []float64 {
	if !wm.valid {
		return nil
	}
	na := len(active)
	wm.v0 = growF64(wm.v0, na)
	k := wm.k
	nonzero := false
	for a, i := range active {
		p := wm.g2l[i]
		if p < 0 {
			wm.v0[a] = 0
			continue
		}
		row := wm.basis[int(p)*k : int(p)*k+k]
		s := 0.0
		for c, x := range row {
			s += x / float64(c+1)
		}
		wm.v0[a] = s
		if s != 0 {
			nonzero = true
		}
	}
	if !nonzero {
		return nil
	}
	return wm.v0[:na]
}

// store retains the solve's Ritz vectors and the active ids they belong to.
func (wm *warmState) store(active []int, vecs *matrix.Dense, nGlobal int) {
	na, k := len(active), vecs.Cols()
	wm.k = k
	wm.basis = growF64(wm.basis, na*k)
	for a := 0; a < na; a++ {
		row := wm.basis[a*k : (a+1)*k]
		for c := 0; c < k; c++ {
			row[c] = vecs.At(a, c)
		}
	}
	wm.g2l = growI32(wm.g2l, nGlobal)
	for i := range wm.g2l {
		wm.g2l[i] = -1
	}
	for a, i := range active {
		wm.g2l[i] = int32(a)
	}
	wm.valid = true
}

// warmLanczosEmbedding is the multilevel-mode sparse embedding: the adaptive
// Lanczos solver started from the previous iteration's Ritz carry, over
// scratch-owned storage end to end — zero steady-state allocations (the
// alloc pin), and bit-identical for every worker count. The returned
// embedding aliases the scratch and is consumed before the next call.
func (sc *scratch) warmLanczosEmbedding(active []int, deg []float64, rowPtr, col []int32, na, k, workers int) (*spectralEmbedding, error) {
	if sc.opFn == nil {
		sc.opFn = sc.lapOp.Mul
	}
	if err := sc.lapOp.Init(na, deg, rowPtr, col, workers); err != nil {
		return nil, fmt.Errorf("core: lanczos embedding: %w", err)
	}
	if sc.rng == nil {
		sc.rng = rand.New(rand.NewSource(lanczosSeed))
	} else {
		sc.rng.Seed(lanczosSeed)
	}
	v0 := sc.warm.startVector(active)
	if v0 != nil {
		sc.stats.WarmStarts++
	}
	_, vecs, steps, err := matrix.LanczosSmallestFrom(&sc.lanWS, sc.opFn, na, k, v0, sc.rng, workers)
	if err != nil {
		return nil, fmt.Errorf("core: lanczos embedding: %w", err)
	}
	sc.stats.Eigensolves++
	sc.stats.LanczosSteps += steps
	sc.warm.store(active, vecs, len(sc.g2l))
	cols := vecs.Cols()
	sc.uDense = sc.uDense.Reshape(na, cols)
	for a := 0; a < na; a++ {
		inv := 1 / math.Sqrt(deg[a])
		for c := 0; c < cols; c++ {
			sc.uDense.Set(a, c, inv*vecs.At(a, c))
		}
	}
	sc.emb = spectralEmbedding{active: active, u: sc.uDense, cols: cols}
	return &sc.emb, nil
}

// moveBefore reports whether candidate a commits before candidate b.
func moveBefore(a, b int32, gain, fied []float64) bool {
	if gain[a] != gain[b] {
		return gain[a] > gain[b]
	}
	if fied[a] != fied[b] {
		return fied[a] < fied[b]
	}
	return a < b
}
