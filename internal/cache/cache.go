// Package cache is the content-addressed result store of the compile
// service: an in-memory LRU over opaque byte payloads keyed by a 32-byte
// content address (the canonical SHA-256 of a compile's inputs, see
// autoncs.CanonicalHash), with an optional on-disk layer that survives
// process restarts.
//
// The store never interprets payloads. Because keys address the *inputs*
// of a deterministic computation, a hit is bit-exact by construction: the
// stored bytes are exactly what recomputing would produce, so the service
// can serve them without any freshness or equality check.
package cache

import (
	"container/list"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key is a 32-byte content address (SHA-256 of the canonical input
// encoding).
type Key [32]byte

// Hex renders the key as lowercase hex — the URL and filename form.
func (k Key) Hex() string { return hex.EncodeToString(k[:]) }

// ParseKey parses the 64-char lowercase-hex form back into a Key.
func ParseKey(s string) (Key, error) {
	var k Key
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != len(k) {
		return k, fmt.Errorf("cache: %q is not a 64-char hex key", s)
	}
	copy(k[:], b)
	return k, nil
}

// Options configures a Store.
type Options struct {
	// MaxEntries bounds the in-memory LRU; 0 means DefaultMaxEntries.
	// Negative disables the memory layer entirely (only useful with Dir).
	MaxEntries int
	// Dir, when non-empty, enables the on-disk layer: every Put is also
	// written to Dir/<hex-key>, and a memory miss falls back to a disk
	// read (promoting the value back into memory). The directory is
	// created if missing.
	Dir string
}

// DefaultMaxEntries is the in-memory capacity when Options.MaxEntries is 0.
const DefaultMaxEntries = 256

// Stats is a point-in-time counter snapshot of a Store.
type Stats struct {
	Hits      int64 // Get calls that found the key (memory or disk)
	DiskHits  int64 // the subset of Hits served by the on-disk layer
	Misses    int64 // Get calls that found nothing
	Evictions int64 // entries dropped from memory by the LRU bound
	Entries   int   // current in-memory entry count
}

type entry struct {
	key Key
	val []byte
}

// Store is a thread-safe content-addressed byte store. Use New.
type Store struct {
	mu         sync.Mutex
	maxEntries int
	dir        string
	ll         *list.List // front = most recently used
	byKey      map[Key]*list.Element
	stats      Stats
}

// New returns a Store; when opts.Dir is set the directory is created.
func New(opts Options) (*Store, error) {
	max := opts.MaxEntries
	switch {
	case max == 0:
		max = DefaultMaxEntries
	case max < 0:
		max = 0
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("cache: %w", err)
		}
	}
	return &Store{
		maxEntries: max,
		dir:        opts.Dir,
		ll:         list.New(),
		byKey:      make(map[Key]*list.Element),
	}, nil
}

// Get returns a copy of the payload stored under k. A memory hit refreshes
// the entry's LRU position; a memory miss falls back to the on-disk layer
// (when configured) and promotes the value back into memory.
func (s *Store) Get(k Key) ([]byte, bool) {
	v, hit, _ := s.GetDetail(k)
	return v, hit
}

// GetDetail is Get plus provenance: disk reports whether the hit was served
// by the on-disk layer (and promoted back into memory) rather than the
// memory LRU. Callers that surface layer-level hit statistics — the serving
// layer's obs.CacheLookup events — use this form.
func (s *Store) GetDetail(k Key) (v []byte, hit, disk bool) {
	s.mu.Lock()
	if el, ok := s.byKey[k]; ok {
		s.ll.MoveToFront(el)
		s.stats.Hits++
		v := clone(el.Value.(*entry).val)
		s.mu.Unlock()
		return v, true, false
	}
	dir := s.dir
	s.mu.Unlock()
	if dir == "" {
		s.count(&s.stats.Misses)
		return nil, false, false
	}
	v, err := os.ReadFile(s.path(k))
	if err != nil {
		s.count(&s.stats.Misses)
		return nil, false, false
	}
	s.mu.Lock()
	s.stats.Hits++
	s.stats.DiskHits++
	s.insertLocked(k, v)
	s.mu.Unlock()
	return clone(v), true, true
}

// Peek returns a copy of the payload stored under k in the memory layer
// only: no disk fallback, no LRU refresh on the probed entry's neighbours,
// and — unlike Get — no miss is counted when the key is absent, so probing
// does not distort the hit-rate statistics. Peek is O(1) and holds the
// store lock only briefly, which makes it safe to call from under another
// subsystem's lock; the serving layer uses it as its admission-time
// re-check after the handler's full (disk-capable) probe missed.
func (s *Store) Peek(k Key) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.byKey[k]
	if !ok {
		return nil, false
	}
	s.ll.MoveToFront(el)
	s.stats.Hits++
	return clone(el.Value.(*entry).val), true
}

// Put stores the payload under k in memory and — when configured — on
// disk. The disk write is atomic (temp file + rename) so a crashed or
// concurrent writer can never leave a torn payload; a disk failure is
// returned but the memory layer has already accepted the value.
func (s *Store) Put(k Key, v []byte) error {
	s.mu.Lock()
	s.insertLocked(k, clone(v))
	dir := s.dir
	s.mu.Unlock()
	if dir == "" {
		return nil
	}
	tmp, err := os.CreateTemp(dir, "put-*")
	if err != nil {
		return fmt.Errorf("cache: %w", err)
	}
	if _, err := tmp.Write(v); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("cache: %w", err)
	}
	return nil
}

// PutMemory stores the payload under k in the memory LRU only, never on
// disk. The serving layer uses it to write through payloads fetched from a
// fleet peer's cache: the owning peer already persists the entry, so
// replicating it onto every borrower's disk would just multiply the
// fleet's storage footprint for bytes the ring will keep routing to the
// owner anyway.
func (s *Store) PutMemory(k Key, v []byte) {
	s.mu.Lock()
	s.insertLocked(k, clone(v))
	s.mu.Unlock()
}

// Len returns the current in-memory entry count.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ll.Len()
}

// Stats returns a snapshot of the counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = s.ll.Len()
	return st
}

// insertLocked inserts or refreshes k, evicting from the cold end while
// over capacity. Caller holds s.mu. The value must already be private to
// the store.
func (s *Store) insertLocked(k Key, v []byte) {
	if el, ok := s.byKey[k]; ok {
		// Content-addressed: same key means same bytes, so only the LRU
		// position needs refreshing. Keep the new value anyway — it is
		// equally valid and this path is rare.
		el.Value.(*entry).val = v
		s.ll.MoveToFront(el)
		return
	}
	if s.maxEntries == 0 {
		return
	}
	s.byKey[k] = s.ll.PushFront(&entry{key: k, val: v})
	for s.ll.Len() > s.maxEntries {
		cold := s.ll.Back()
		s.ll.Remove(cold)
		delete(s.byKey, cold.Value.(*entry).key)
		s.stats.Evictions++
	}
}

func (s *Store) count(c *int64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

func (s *Store) path(k Key) string { return filepath.Join(s.dir, k.Hex()) }

func clone(v []byte) []byte { return append([]byte(nil), v...) }
