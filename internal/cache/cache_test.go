package cache

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func keyOf(b byte) Key {
	var k Key
	k[0] = b
	k[31] = ^b
	return k
}

func TestHexRoundTrip(t *testing.T) {
	k := keyOf(0xab)
	h := k.Hex()
	if len(h) != 64 {
		t.Fatalf("hex length %d", len(h))
	}
	back, err := ParseKey(h)
	if err != nil {
		t.Fatal(err)
	}
	if back != k {
		t.Fatalf("round trip %v != %v", back, k)
	}
	if _, err := ParseKey("zz"); err == nil {
		t.Error("short junk key parsed")
	}
	if _, err := ParseKey(h + "00"); err == nil {
		t.Error("overlong key parsed")
	}
}

func TestMemoryHitMissAndIsolation(t *testing.T) {
	s, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf(1)
	if _, ok := s.Get(k); ok {
		t.Fatal("hit on empty store")
	}
	val := []byte("payload")
	if err := s.Put(k, val); err != nil {
		t.Fatal(err)
	}
	val[0] = 'X' // caller mutation after Put must not reach the store
	got, ok := s.Get(k)
	if !ok || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	got[0] = 'Y' // returned slice mutation must not reach the store
	again, _ := s.Get(k)
	if !bytes.Equal(again, []byte("payload")) {
		t.Fatalf("store payload corrupted via returned slice: %q", again)
	}
	st := s.Stats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 || st.DiskHits != 0 {
		t.Errorf("stats %+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	s, err := New(Options{MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, b, c := keyOf(1), keyOf(2), keyOf(3)
	s.Put(a, []byte("a"))
	s.Put(b, []byte("b"))
	s.Get(a) // refresh a → b is now coldest
	s.Put(c, []byte("c"))
	if _, ok := s.Get(b); ok {
		t.Error("coldest entry b survived eviction")
	}
	if _, ok := s.Get(a); !ok {
		t.Error("refreshed entry a was evicted")
	}
	if _, ok := s.Get(c); !ok {
		t.Error("newest entry c was evicted")
	}
	if st := s.Stats(); st.Evictions != 1 || st.Entries != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestDiskLayerSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf(9)
	if err := s1.Put(k, []byte("durable")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, k.Hex())); err != nil {
		t.Fatalf("disk file missing: %v", err)
	}

	// A fresh store over the same directory — cold memory, warm disk.
	s2, err := New(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(k)
	if !ok || !bytes.Equal(got, []byte("durable")) {
		t.Fatalf("disk fallback Get = %q, %v", got, ok)
	}
	st := s2.Stats()
	if st.DiskHits != 1 || st.Hits != 1 || st.Entries != 1 {
		t.Errorf("stats %+v", st)
	}
	// The disk hit promoted the entry: the next Get is a memory hit.
	if _, ok := s2.Get(k); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := s2.Stats(); st.DiskHits != 1 || st.Hits != 2 {
		t.Errorf("post-promotion stats %+v", st)
	}
}

func TestMemoryDisabledStillUsesDisk(t *testing.T) {
	s, err := New(Options{MaxEntries: -1, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	k := keyOf(4)
	if err := s.Put(k, []byte("v")); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 0 {
		t.Fatalf("memory layer holds %d entries with MaxEntries<0", s.Len())
	}
	if got, ok := s.Get(k); !ok || !bytes.Equal(got, []byte("v")) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, err := New(Options{MaxEntries: 8, Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := keyOf(byte(i % 16))
				want := []byte(fmt.Sprintf("v%d", i%16))
				s.Put(k, want)
				if got, ok := s.Get(k); ok && len(got) == 0 {
					t.Errorf("empty payload for %v", k)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestPeekMemoryOnly: Peek hits the memory layer, never disk, and an
// absent key does not count as a miss (it is the serving layer's
// admission-time probe, which must not distort the hit rate).
func TestPeekMemoryOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{MaxEntries: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, b := keyOf(1), keyOf(2)
	if err := s.Put(a, []byte("aa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b, []byte("bb")); err != nil {
		t.Fatal(err)
	}
	// a has been evicted from memory but lives on disk: Peek must miss it
	// without counting a miss, while Get still finds it.
	if _, ok := s.Peek(a); ok {
		t.Fatal("Peek served an evicted entry (went to disk?)")
	}
	if got := s.Stats().Misses; got != 0 {
		t.Fatalf("Peek miss counted as a miss: %d", got)
	}
	v, ok := s.Peek(b)
	if !ok || !bytes.Equal(v, []byte("bb")) {
		t.Fatalf("Peek(b) = %q, %v", v, ok)
	}
	if st := s.Stats(); st.Hits != 1 || st.DiskHits != 0 {
		t.Fatalf("stats after Peek hit: %+v", st)
	}
	// Mutating the returned slice must not corrupt the store.
	v[0] = 'X'
	if w, _ := s.Peek(b); !bytes.Equal(w, []byte("bb")) {
		t.Fatal("Peek returned an aliased slice")
	}
	if got, ok := s.Get(a); !ok || !bytes.Equal(got, []byte("aa")) {
		t.Fatalf("Get(a) after Peek miss = %q, %v", got, ok)
	}
}

// TestGetDetailProvenance: GetDetail distinguishes memory hits from disk
// hits (which promote) from misses.
func TestGetDetailProvenance(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Options{MaxEntries: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	a, b := keyOf(1), keyOf(2)
	if err := s.Put(a, []byte("aa")); err != nil {
		t.Fatal(err)
	}
	if _, hit, disk := s.GetDetail(a); !hit || disk {
		t.Fatalf("memory entry: hit=%v disk=%v, want true/false", hit, disk)
	}
	if err := s.Put(b, []byte("bb")); err != nil { // evicts a from memory
		t.Fatal(err)
	}
	if _, hit, disk := s.GetDetail(a); !hit || !disk {
		t.Fatalf("disk entry: hit=%v disk=%v, want true/true", hit, disk)
	}
	// The disk hit promoted a back into memory.
	if _, hit, disk := s.GetDetail(a); !hit || disk {
		t.Fatalf("promoted entry: hit=%v disk=%v, want true/false", hit, disk)
	}
	if _, hit, _ := s.GetDetail(keyOf(9)); hit {
		t.Fatal("absent key reported as hit")
	}
	st := s.Stats()
	if st.Hits != 3 || st.DiskHits != 1 || st.Misses != 1 {
		t.Fatalf("stats %+v, want hits=3 diskHits=1 misses=1", st)
	}
}
