// Package parallel provides the bounded worker pools that run the flow's
// data-parallel kernels (k-means assignment, spectral matvecs, CP scoring,
// maze-route batches, sweep fan-out).
//
// # Determinism contract
//
// Every helper in this package guarantees that the observable result of a
// computation is independent of the worker count. The pool only decides
// *which goroutine* evaluates an index — never the order in which results
// are combined:
//
//   - For/Do/Map evaluate fn(i) for each index exactly once, and each index
//     writes only its own result slot. Reductions over the slots happen in
//     the caller, in index order, after the pool drains.
//   - ForChunks partitions the index space into fixed-size chunks whose
//     boundaries depend only on n and the chunk size, never on the worker
//     count, so chunk-local partial results combine in a fixed order.
//   - No helper hands a shared random source to more than one goroutine.
//     Callers that need randomness inside a parallel region must derive an
//     independent stream per index from their seed.
//
// Consequently Workers=1 and Workers=N produce bit-identical outputs, which
// the golden regression tests enforce end to end.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// defaultWorkers is the process-wide default pool size, settable by CLIs
// (the --workers flag). Zero means runtime.NumCPU() at call time.
var defaultWorkers atomic.Int64

// SetDefault sets the process-wide default worker count used when a Workers
// knob is zero. n <= 0 restores the NumCPU default.
func SetDefault(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// Default returns the process-wide default worker count.
func Default() int {
	if n := defaultWorkers.Load(); n > 0 {
		return int(n)
	}
	return runtime.NumCPU()
}

// Resolve maps a Workers knob to a concrete pool size: 0 means the package
// default (runtime.NumCPU() unless overridden by SetDefault). It panics on
// negative values; public entry points (autoncs.Compile, the CLIs) validate
// user input and return an error before reaching this point.
func Resolve(workers int) int {
	if workers < 0 {
		panic(fmt.Sprintf("parallel: negative worker count %d", workers))
	}
	if workers == 0 {
		return Default()
	}
	return workers
}

// For evaluates fn(i) for every i in [0, n) on up to workers goroutines
// (0 = package default). fn must treat distinct indices independently; the
// per-index side effects make the result deterministic regardless of the
// pool size. With one worker (or tiny n) it runs inline with no goroutines.
func For(workers, n int, fn func(i int)) {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	// Grab work in small strides to balance uneven per-index cost without
	// a synchronization point per index.
	stride := n / (workers * 8)
	if stride < 1 {
		stride = 1
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(stride))) - stride
				if lo >= n {
					return
				}
				hi := lo + stride
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// ForCtx is For with cooperative cancellation: the serial path checks ctx
// before every index and the worker loops re-check it between strides, so a
// cancelled context stops the sweep within one stride. It returns ctx.Err()
// when the context was cancelled (some indices may then never have been
// evaluated — callers must discard partial results) and nil otherwise; an
// uncancelled ForCtx evaluates exactly the same index set as For, keeping
// the determinism contract intact.
func ForCtx(ctx context.Context, workers, n int, fn func(i int)) error {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	stride := n / (workers * 8)
	if stride < 1 {
		stride = 1
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				lo := int(next.Add(int64(stride))) - stride
				if lo >= n {
					return
				}
				hi := lo + stride
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// MapCtx evaluates fn(i) for i in [0, n) in parallel with cooperative
// cancellation and returns the results in index order, or (nil, ctx.Err())
// if the context was cancelled before the sweep completed.
func MapCtx[T any](ctx context.Context, workers, n int, fn func(i int) T) ([]T, error) {
	out := make([]T, n)
	if err := ForCtx(ctx, workers, n, func(i int) { out[i] = fn(i) }); err != nil {
		return nil, err
	}
	return out, nil
}

// ForChunks partitions [0, n) into chunks of the given fixed size and
// evaluates fn(c, lo, hi) for each chunk c covering [lo, hi). Chunk
// boundaries depend only on n and chunk — never on workers — so per-chunk
// partial results can be reduced in chunk order for a worker-independent
// floating-point result.
func ForChunks(workers, n, chunk int, fn func(c, lo, hi int)) {
	if chunk < 1 {
		panic(fmt.Sprintf("parallel: chunk size %d", chunk))
	}
	chunks := (n + chunk - 1) / chunk
	For(workers, chunks, func(c int) {
		lo := c * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		fn(c, lo, hi)
	})
}

// Do evaluates fn(i) for i in [0, n) on up to workers goroutines with
// cancellation: once ctx is cancelled or any fn returns an error, remaining
// indices are skipped. It returns the error of the lowest failing index
// (deterministic regardless of scheduling), or ctx.Err() if the context was
// cancelled first.
func Do(ctx context.Context, workers, n int, fn func(i int) error) error {
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		stop    atomic.Bool
		mu      sync.Mutex
		firstI  = n
		firstEB error
		wg      sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstI {
			firstI, firstEB = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					stop.Store(true)
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstEB != nil {
		return firstEB
	}
	return ctx.Err()
}

// Map evaluates fn(i) for i in [0, n) in parallel and returns the results
// in index order.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	For(workers, n, func(i int) { out[i] = fn(i) })
	return out
}
