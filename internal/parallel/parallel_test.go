package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 100, 1025} {
			hits := make([]int32, n)
			For(workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) })
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForChunksFixedBoundaries(t *testing.T) {
	// Chunk boundaries must depend only on (n, chunk), not on workers.
	bounds := func(workers int) []string {
		var out []string
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		ForChunks(workers, 103, 16, func(c, lo, hi int) {
			<-mu
			out = append(out, fmt.Sprintf("%d:%d-%d", c, lo, hi))
			mu <- struct{}{}
		})
		return out
	}
	a := bounds(1)
	if len(a) != 7 {
		t.Fatalf("103/16 → %d chunks, want 7", len(a))
	}
	seen := map[string]bool{}
	for _, s := range a {
		seen[s] = true
	}
	for _, s := range bounds(4) {
		if !seen[s] {
			t.Fatalf("chunk %s differs between worker counts", s)
		}
	}
}

func TestMapOrdered(t *testing.T) {
	for _, workers := range []int{1, 3, 8} {
		got := Map(workers, 50, func(i int) int { return i * i })
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, v)
			}
		}
	}
}

func TestDoReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	for _, workers := range []int{1, 4} {
		err := Do(context.Background(), workers, 100, func(i int) error {
			switch i {
			case 17:
				return errA
			case 60:
				return errB
			}
			return nil
		})
		if err != errA {
			t.Fatalf("workers=%d: got %v, want error of lowest index", workers, err)
		}
	}
}

func TestDoContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := Do(ctx, 4, 1_000_000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if ran.Load() >= 1_000_000 {
		t.Fatal("cancellation did not short-circuit the pool")
	}
}

func TestResolveAndDefault(t *testing.T) {
	if Resolve(3) != 3 {
		t.Fatal("explicit workers not honored")
	}
	SetDefault(5)
	if Resolve(0) != 5 || Default() != 5 {
		t.Fatal("SetDefault not honored")
	}
	SetDefault(0)
	if Default() < 1 {
		t.Fatal("default below 1")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative workers did not panic")
		}
	}()
	Resolve(-1)
}

func TestDeterministicReduction(t *testing.T) {
	// The documented pattern: fixed chunks, partials reduced in chunk
	// order, bit-identical across worker counts.
	n := 10_000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 1.0 / float64(i+1)
	}
	sum := func(workers int) float64 {
		const chunk = 256
		partial := make([]float64, (n+chunk-1)/chunk)
		ForChunks(workers, n, chunk, func(c, lo, hi int) {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += xs[i]
			}
			partial[c] = s
		})
		total := 0.0
		for _, p := range partial {
			total += p
		}
		return total
	}
	ref := sum(1)
	for _, w := range []int{2, 3, 8} {
		if got := sum(w); got != ref {
			t.Fatalf("workers=%d: %v != %v", w, got, ref)
		}
	}
}

func TestForCtxCoversEveryIndexOnce(t *testing.T) {
	ctx := context.Background()
	for _, workers := range []int{1, 2, 4, 16} {
		for _, n := range []int{0, 1, 7, 100, 1025} {
			hits := make([]int32, n)
			if err := ForCtx(ctx, workers, n, func(i int) { atomic.AddInt32(&hits[i], 1) }); err != nil {
				t.Fatalf("workers=%d n=%d: unexpected error %v", workers, n, err)
			}
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d hit %d times", workers, n, i, h)
				}
			}
		}
	}
}

func TestForCtxCancellationStopsSweep(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var done atomic.Int64
		n := 100000
		err := ForCtx(ctx, workers, n, func(i int) {
			if done.Add(1) == 10 {
				cancel()
			}
		})
		cancel()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		if got := done.Load(); got >= int64(n) {
			t.Fatalf("workers=%d: sweep ran to completion (%d indices) despite cancellation", workers, got)
		}
	}
}

func TestMapCtx(t *testing.T) {
	out, err := MapCtx(context.Background(), 4, 50, func(i int) int { return i * i })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := MapCtx(ctx, 4, 50, func(i int) int { return i }); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled MapCtx err = %v", err)
	}
}
