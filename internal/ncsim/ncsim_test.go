package ncsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/hopfield"
	"repro/internal/xbar"
)

// buildMachine compiles a small Hopfield testbench through ISC and onto
// the simulated hardware.
func buildMachine(t *testing.T, ideal bool) (*Machine, []hopfield.Pattern, *hopfield.Network) {
	t.Helper()
	tb := hopfield.Testbench{M: 4, N: 60, Sparsity: 0.85}
	cm, net, patterns := tb.Build(3)
	lib, err := xbar.NewLibrary(8, 12, 16, 24, 32)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.ISC(cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: 0.02,
		Rand:                 rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(cm); err != nil {
		t.Fatal(err)
	}
	m, err := Build(res.Assignment, net, Options{Ideal: ideal, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return m, patterns, net
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(nil, nil, Options{}); err == nil {
		t.Fatal("nil inputs accepted")
	}
	tb := hopfield.Testbench{M: 3, N: 30, Sparsity: 0.8}
	_, net, _ := tb.Build(1)
	a := &xbar.Assignment{N: 10} // dimension mismatch
	if _, err := Build(a, net, Options{}); err == nil {
		t.Fatal("mismatched dimensions accepted")
	}
}

func TestIdealMachineRecallsStoredPatterns(t *testing.T) {
	m, patterns, _ := buildMachine(t, true)
	hits := 0
	for _, p := range patterns {
		rec, err := m.Recall(p, 20)
		if err != nil {
			t.Fatal(err)
		}
		ov := hopfield.Overlap(rec, p)
		if 1-ov > ov {
			ov = 1 - ov
		}
		if ov >= 0.9 {
			hits++
		}
	}
	// Stored patterns are attractors of the sparse network; the hardware
	// (ideal wires, programmed devices) must hold most of them.
	if hits < len(patterns)-1 {
		t.Fatalf("ideal hardware holds only %d of %d stored patterns", hits, len(patterns))
	}
}

func TestHardwareRecognitionUnderNoise(t *testing.T) {
	m, patterns, net := buildMachine(t, true)
	rate, err := m.RecognitionRate(patterns, 0.05, 0.9, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	swRate := net.RecognitionRate(patterns, 0.05, 0.9, rand.New(rand.NewSource(2)))
	if rate < swRate-0.5 {
		t.Fatalf("hardware rate %.2f collapsed vs software %.2f", rate, swRate)
	}
}

func TestNonIdealMachineRuns(t *testing.T) {
	// With IR drop enabled the machine must still execute; quality may
	// degrade but the step must complete and return a valid pattern.
	m, patterns, _ := buildMachine(t, false)
	next, err := m.Step(patterns[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(next) != len(patterns[0]) {
		t.Fatalf("step returned %d states, want %d", len(next), len(patterns[0]))
	}
	for _, v := range next {
		if v != 1 && v != -1 {
			t.Fatalf("state value %d not ±1", v)
		}
	}
}

func TestStepDimensionCheck(t *testing.T) {
	m, _, _ := buildMachine(t, true)
	if _, err := m.Step(hopfield.Pattern{1, -1}); err == nil {
		t.Fatal("wrong state dimension accepted")
	}
}

func TestRecognitionRateEmptyPatterns(t *testing.T) {
	m, _, _ := buildMachine(t, true)
	rate, err := m.RecognitionRate(nil, 0.1, 0.9, rand.New(rand.NewSource(1)))
	if err != nil || rate != 0 {
		t.Fatalf("rate=%g err=%v", rate, err)
	}
}

func TestBuildProgramsDifferentialPairs(t *testing.T) {
	m, _, net := buildMachine(t, true)
	// Spot-check one crossbar: a positive weight lands in the pos array, a
	// negative one in the neg array.
	if len(m.crossbar) == 0 {
		t.Skip("no crossbars mapped at this scale")
	}
	h := m.crossbar[0]
	checked := false
	for _, cbAssign := range m.assign.Crossbars {
		rows := dedupSorted(froms(cbAssign.Conns))
		if len(rows) == 0 || rows[0] != h.rows[0] {
			continue
		}
		for _, e := range cbAssign.Conns {
			w := net.Weight(e.From, e.To)
			r, c := h.rowIdx[e.From], h.colIdx[e.To]
			posState := h.pos.Cell(r, c).State()
			negState := h.neg.Cell(r, c).State()
			if w > 0 && posState <= negState {
				t.Fatalf("positive weight %g stored as pos=%g neg=%g", w, posState, negState)
			}
			if w < 0 && negState <= posState {
				t.Fatalf("negative weight %g stored as pos=%g neg=%g", w, posState, negState)
			}
			checked = true
		}
		break
	}
	if !checked {
		t.Skip("no matching crossbar found for spot check")
	}
}

func TestDeviceVariationChangesMachine(t *testing.T) {
	tb := hopfield.Testbench{M: 3, N: 40, Sparsity: 0.85}
	cm, net, _ := tb.Build(4)
	lib, _ := xbar.NewLibrary(8, 16, 24)
	res, err := core.ISC(cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: 0.02,
		Rand:                 rand.New(rand.NewSource(1)),
	})
	if err != nil {
		t.Fatal(err)
	}
	p := device.DefaultCrossbarParams()
	p.Device.Sigma = 0.4 // exaggerated variation
	m1, err := Build(res.Assignment, net, Options{Params: p, Ideal: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Build(res.Assignment, net, Options{Params: p, Ideal: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Different variation seeds must produce physically different machines
	// (spot-check conductances differ somewhere).
	if len(m1.synapses) > 0 && len(m2.synapses) > 0 {
		same := true
		for i := range m1.synapses {
			if m1.synapses[i].pos.Conductance() != m2.synapses[i].pos.Conductance() {
				same = false
				break
			}
		}
		if same && len(m1.synapses) > 3 {
			t.Fatal("different seeds produced identical devices")
		}
	}
}
