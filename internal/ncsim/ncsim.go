// Package ncsim is a functional simulator for the compiled neuromorphic
// system: it executes Hopfield recall *through the hybrid hardware* — every
// crossbar modelled with the device package's IR-drop and process-variation
// circuit model, every discrete synapse as a single (varied) memristor —
// and measures how much recognition quality the analog substrate costs
// versus the ideal software network. This closes the loop the paper leaves
// implicit: the mapping preserves the topology, and the simulator verifies
// the topology still computes.
package ncsim

import (
	"fmt"
	"math/rand"

	"repro/internal/device"
	"repro/internal/graph"
	"repro/internal/hopfield"
	"repro/internal/xbar"
)

// Machine is a compiled NCS instance ready to execute recall steps.
type Machine struct {
	n        int
	assign   *xbar.Assignment
	params   device.CrossbarParams
	ideal    bool
	crossbar []*hwCrossbar
	synapses []hwSynapse
	// weightOf returns the stored Hopfield weight of a connection.
	weightOf func(from, to int) float64
}

// hwCrossbar couples a mapped crossbar with its circuit model. Positive
// and negative weights use two device columns (the standard differential
// scheme), realized here as two separate device arrays.
type hwCrossbar struct {
	pos, neg *device.Crossbar
	rows     []int       // neuron id per crossbar row
	cols     []int       // neuron id per crossbar column
	rowIdx   map[int]int // neuron id → row
	colIdx   map[int]int // neuron id → column
}

// hwSynapse is one discrete connection with its device pair.
type hwSynapse struct {
	from, to int
	pos, neg *device.Memristor
}

// Options configures the build.
type Options struct {
	// Params is the circuit model; zero value means the default 45 nm one.
	Params device.CrossbarParams
	// Ideal bypasses the resistor-network solve (no IR drop); device
	// variation still applies through programming tolerance.
	Ideal bool
	// ProgramTol is the write-verify tolerance (state units). Zero = 0.02.
	ProgramTol float64
	// Seed drives process variation.
	Seed int64
}

// Build compiles an assignment plus the trained (sparsified) Hopfield
// network into an executable machine: every mapped connection's weight is
// programmed into its crossbar cell (differential pair for signed weights),
// every outlier into a discrete synapse.
func Build(a *xbar.Assignment, net *hopfield.Network, opts Options) (*Machine, error) {
	if a == nil || net == nil {
		return nil, fmt.Errorf("ncsim: nil assignment or network")
	}
	if a.N != net.N() {
		return nil, fmt.Errorf("ncsim: assignment over %d neurons, network has %d", a.N, net.N())
	}
	params := opts.Params
	if params.VRead == 0 {
		params = device.DefaultCrossbarParams()
	}
	tol := opts.ProgramTol
	if tol == 0 {
		tol = 0.02
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	m := &Machine{
		n:      a.N,
		assign: a,
		params: params,
		ideal:  opts.Ideal,
	}
	// Normalize weights to device state range: |w| ≤ wMax maps to [0,1].
	wMax := 0.0
	for i := 0; i < net.N(); i++ {
		for j := 0; j < net.N(); j++ {
			if w := net.Weight(i, j); w > wMax {
				wMax = w
			} else if -w > wMax {
				wMax = -w
			}
		}
	}
	if wMax == 0 {
		return nil, fmt.Errorf("ncsim: network has no non-zero weights")
	}
	program := func(dev *device.Memristor, state float64) {
		dev.Program(state, tol, 500)
	}
	for _, cb := range a.Crossbars {
		rows := dedupSorted(froms(cb.Conns))
		cols := dedupSorted(tos(cb.Conns))
		if len(rows) == 0 {
			continue
		}
		pos, err := device.NewCrossbar(cb.Size, params, rng)
		if err != nil {
			return nil, err
		}
		neg, err := device.NewCrossbar(cb.Size, params, rng)
		if err != nil {
			return nil, err
		}
		h := &hwCrossbar{
			pos: pos, neg: neg,
			rows: rows, cols: cols,
			rowIdx: indexOf(rows), colIdx: indexOf(cols),
		}
		for _, e := range cb.Conns {
			w := net.Weight(e.From, e.To) / wMax
			r, c := h.rowIdx[e.From], h.colIdx[e.To]
			if w >= 0 {
				program(pos.Cell(r, c), w)
			} else {
				program(neg.Cell(r, c), -w)
			}
		}
		m.crossbar = append(m.crossbar, h)
	}
	for _, e := range a.Synapses {
		w := net.Weight(e.From, e.To) / wMax
		pd, err := device.NewMemristor(params.Device, rng)
		if err != nil {
			return nil, err
		}
		nd, err := device.NewMemristor(params.Device, rng)
		if err != nil {
			return nil, err
		}
		if w >= 0 {
			program(pd, w)
		} else {
			program(nd, -w)
		}
		m.synapses = append(m.synapses, hwSynapse{from: e.From, to: e.To, pos: pd, neg: nd})
	}
	m.weightOf = func(from, to int) float64 { return net.Weight(from, to) }
	return m, nil
}

func froms(es []graph.Edge) []int {
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.From
	}
	return out
}

func tos(es []graph.Edge) []int {
	out := make([]int, len(es))
	for i, e := range es {
		out[i] = e.To
	}
	return out
}

func dedupSorted(xs []int) []int {
	seen := map[int]bool{}
	var out []int
	for _, x := range xs {
		if !seen[x] {
			seen[x] = true
			out = append(out, x)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func indexOf(xs []int) map[int]int {
	m := make(map[int]int, len(xs))
	for i, x := range xs {
		m[x] = i
	}
	return m
}

// Step performs one synchronous update of the network state through the
// hardware: crossbars are read with the state as row voltages (±VRead for
// ±1), synapse currents are added pointwise, and each neuron thresholds its
// summed input current (integrate-and-fire with the sign of the net
// differential current; zero field holds the previous state).
func (m *Machine) Step(state hopfield.Pattern) (hopfield.Pattern, error) {
	if len(state) != m.n {
		return nil, fmt.Errorf("ncsim: state dim %d, want %d", len(state), m.n)
	}
	field := make([]float64, m.n)
	gOff := 1 / m.params.Device.ROff
	for _, h := range m.crossbar {
		size := h.pos.Size()
		rowV := make([]float64, size)
		active := 0.0
		for r, neuron := range h.rows {
			rowV[r] = m.params.VRead * float64(state[neuron])
			if rowV[r] != 0 {
				active++
			}
		}
		var ip, in []float64
		var err error
		if m.ideal {
			ip, in = h.pos.ReadIdeal(rowV), h.neg.ReadIdeal(rowV)
		} else {
			ip, err = h.pos.Read(rowV)
			if err != nil {
				return nil, err
			}
			in, err = h.neg.Read(rowV)
			if err != nil {
				return nil, err
			}
		}
		for c, neuron := range h.cols {
			// Differential current; the off-state baselines of the two
			// arrays cancel to first order.
			field[neuron] += ip[c] - in[c]
			_ = gOff
		}
	}
	for _, s := range m.synapses {
		v := m.params.VRead * float64(state[s.from])
		field[s.to] += v * (s.pos.Conductance() - s.neg.Conductance())
	}
	next := make(hopfield.Pattern, m.n)
	for i, f := range field {
		switch {
		case f > 0:
			next[i] = 1
		case f < 0:
			next[i] = -1
		default:
			next[i] = state[i]
		}
	}
	return next, nil
}

// Recall iterates Step until a fixed point or maxSteps.
func (m *Machine) Recall(state hopfield.Pattern, maxSteps int) (hopfield.Pattern, error) {
	cur := append(hopfield.Pattern(nil), state...)
	for step := 0; step < maxSteps; step++ {
		next, err := m.Step(cur)
		if err != nil {
			return nil, err
		}
		same := true
		for i := range next {
			if next[i] != cur[i] {
				same = false
				break
			}
		}
		cur = next
		if same {
			break
		}
	}
	return cur, nil
}

// RecognitionRate corrupts each pattern, recalls it through the hardware,
// and returns the fraction recovered to at least matchThreshold overlap
// (sign-symmetric, as in the software model).
func (m *Machine) RecognitionRate(patterns []hopfield.Pattern, noise, matchThreshold float64, rng *rand.Rand) (float64, error) {
	if len(patterns) == 0 {
		return 0, nil
	}
	hit := 0
	for _, p := range patterns {
		rec, err := m.Recall(hopfield.Corrupt(p, noise, rng), 30)
		if err != nil {
			return 0, err
		}
		ov := hopfield.Overlap(rec, p)
		if 1-ov > ov {
			ov = 1 - ov
		}
		if ov >= matchThreshold {
			hit++
		}
	}
	return float64(hit) / float64(len(patterns)), nil
}
