package hopfield

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGenPatternsShapeAndDeterminism(t *testing.T) {
	a := GenPatterns(5, 40, rand.New(rand.NewSource(9)))
	b := GenPatterns(5, 40, rand.New(rand.NewSource(9)))
	if len(a) != 5 || len(a[0]) != 40 {
		t.Fatalf("shape %d×%d, want 5×40", len(a), len(a[0]))
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed produced different patterns")
			}
			if a[i][j] != 1 && a[i][j] != -1 {
				t.Fatalf("pattern value %d not ±1", a[i][j])
			}
		}
	}
}

func TestGenPatternsInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("GenPatterns(0, 5) did not panic")
		}
	}()
	GenPatterns(0, 5, rand.New(rand.NewSource(1)))
}

func TestTrainSymmetricZeroDiagonal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pats := GenPatterns(4, 30, rng)
	h := Train(pats)
	for i := 0; i < h.N(); i++ {
		if h.Weight(i, i) != 0 {
			t.Fatalf("diagonal weight %d non-zero", i)
		}
		for j := 0; j < h.N(); j++ {
			if h.Weight(i, j) != h.Weight(j, i) {
				t.Fatalf("asymmetric weight at (%d,%d)", i, j)
			}
		}
	}
}

func TestTrainHebbianValues(t *testing.T) {
	// Single pattern: w_ij = ξ_i ξ_j exactly.
	p := Pattern{1, -1, 1}
	h := Train([]Pattern{p})
	if h.Weight(0, 1) != -1 || h.Weight(0, 2) != 1 || h.Weight(1, 2) != -1 {
		t.Fatalf("weights %g %g %g", h.Weight(0, 1), h.Weight(0, 2), h.Weight(1, 2))
	}
}

func TestTrainPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":  func() { Train(nil) },
		"ragged": func() { Train([]Pattern{{1, -1}, {1}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDenseRecallStoredPatternsAreFixedPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	pats := GenPatterns(3, 60, rng)
	h := Train(pats)
	for i, p := range pats {
		rec := h.Recall(p, 10)
		if Overlap(rec, p) < 0.99 {
			t.Fatalf("stored pattern %d not a fixed point: overlap %g", i, Overlap(rec, p))
		}
	}
}

func TestSparsifyReachesTargetSparsity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	pats := GenPatterns(10, 100, rng)
	h := Train(pats)
	cm := h.Sparsify(0.94)
	if !cm.IsSymmetric() {
		t.Fatal("sparsified topology not symmetric")
	}
	if s := cm.Sparsity(); s < 0.94-1e-9 || s > 0.96 {
		t.Fatalf("sparsity = %g, want ≈0.94", s)
	}
	// Weights outside the kept topology must be zeroed.
	for i := 0; i < h.N(); i++ {
		for j := 0; j < h.N(); j++ {
			if i != j && !cm.Has(i, j) && h.Weight(i, j) != 0 {
				t.Fatalf("pruned weight (%d,%d) survives", i, j)
			}
			if cm.Has(i, j) && h.Weight(i, j) == 0 {
				t.Fatalf("kept connection (%d,%d) has zero weight", i, j)
			}
		}
	}
}

func TestSparsifyInvalidPanics(t *testing.T) {
	h := Train(GenPatterns(2, 10, rand.New(rand.NewSource(1))))
	defer func() {
		if recover() == nil {
			t.Fatal("Sparsify(1.5) did not panic")
		}
	}()
	h.Sparsify(1.5)
}

func TestSparsifyKeepsStrongestWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	pats := GenPatterns(8, 50, rng)
	h := Train(pats)
	// Record magnitudes before sparsify zeroes pruned ones.
	mags := make([][]float64, h.N())
	for i := range mags {
		mags[i] = make([]float64, h.N())
		for j := 0; j < h.N(); j++ {
			mags[i][j] = math.Abs(h.Weight(i, j))
		}
	}
	cm := h.Sparsify(0.9)
	minKept, maxPruned := math.Inf(1), 0.0
	for i := 0; i < h.N(); i++ {
		for j := i + 1; j < h.N(); j++ {
			if cm.Has(i, j) {
				if mags[i][j] < minKept {
					minKept = mags[i][j]
				}
			} else if mags[i][j] > maxPruned {
				maxPruned = mags[i][j]
			}
		}
	}
	if minKept < maxPruned {
		t.Fatalf("kept weight %g weaker than pruned weight %g", minKept, maxPruned)
	}
}

func TestCorrupt(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	p := GenPatterns(1, 100, rng)[0]
	c := Corrupt(p, 0.1, rng)
	flips := 0
	for i := range p {
		if p[i] != c[i] {
			flips++
		}
	}
	if flips != 10 {
		t.Fatalf("Corrupt flipped %d bits, want 10", flips)
	}
	// Zero corruption is the identity.
	z := Corrupt(p, 0, rng)
	if Overlap(p, z) != 1 {
		t.Fatal("Corrupt(0) changed the pattern")
	}
}

func TestOverlapMismatchedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Overlap mismatch did not panic")
		}
	}()
	Overlap(Pattern{1}, Pattern{1, 1})
}

func TestTestbenchesMatchPaper(t *testing.T) {
	tbs := Testbenches()
	want := []struct {
		m, n int
		sp   float64
	}{{15, 300, 0.9447}, {20, 400, 0.9359}, {30, 500, 0.9439}}
	if len(tbs) != 3 {
		t.Fatalf("%d testbenches, want 3", len(tbs))
	}
	for i, tb := range tbs {
		if tb.M != want[i].m || tb.N != want[i].n || tb.Sparsity != want[i].sp {
			t.Errorf("testbench %d = %+v, want %+v", i+1, tb, want[i])
		}
	}
}

func TestTestbenchBuildSmallVariant(t *testing.T) {
	// A scaled-down testbench keeps CI fast while exercising Build.
	tb := Testbench{ID: 0, M: 8, N: 120, Sparsity: 0.90}
	cm, net, pats := tb.Build(7)
	if cm.N() != 120 || net.N() != 120 || len(pats) != 8 {
		t.Fatalf("Build shapes wrong: %d %d %d", cm.N(), net.N(), len(pats))
	}
	if s := cm.Sparsity(); s < 0.899 || s > 0.93 {
		t.Fatalf("sparsity %g, want ≈0.90", s)
	}
	// The paper reports >90% recognition; a sparse Hopfield net under
	// mild noise must still recall most patterns.
	rate := net.RecognitionRate(pats, 0.05, 0.95, rand.New(rand.NewSource(11)))
	if rate < 0.9 {
		t.Fatalf("recognition rate %g < 0.9", rate)
	}
}

func TestRecognitionRateEmpty(t *testing.T) {
	h := Train(GenPatterns(1, 10, rand.New(rand.NewSource(1))))
	if got := h.RecognitionRate(nil, 0.1, 0.9, rand.New(rand.NewSource(1))); got != 0 {
		t.Fatalf("empty recognition rate = %g", got)
	}
}

// Property: sparsify never exceeds the connection budget implied by the
// target sparsity and the topology is always symmetric with an empty
// diagonal.
func TestSparsifyBudgetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 2+rng.Intn(6), 20+rng.Intn(60)
		sp := 0.7 + 0.29*rng.Float64()
		h := Train(GenPatterns(m, n, rng))
		cm := h.Sparsify(sp)
		if float64(cm.NNZ()) > (1-sp)*float64(n)*float64(n)+1e-9 {
			return false
		}
		if !cm.IsSymmetric() {
			return false
		}
		for i := 0; i < n; i++ {
			if cm.Has(i, i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
