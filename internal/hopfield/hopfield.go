// Package hopfield implements the sparse Hopfield networks used as the
// paper's testbenches: M random quick-response-code-like binary patterns of
// dimension N are stored by Hebbian learning, the weight matrix is
// sparsified by magnitude to the reported sparsity, and recognition is
// verified by noisy recall. The binary topology of the sparsified network is
// the input to the AutoNCS clustering flow.
//
// The paper's QR pattern data is not released; deterministic pseudo-random
// ±1 patterns are statistically equivalent for the purposes of the flow
// (see DESIGN.md, substitutions).
package hopfield

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// Pattern is a ±1 binary pattern.
type Pattern []int8

// GenPatterns returns m deterministic pseudo-random ±1 patterns of
// dimension n, emulating random QR code bitmaps.
func GenPatterns(m, n int, rng *rand.Rand) []Pattern {
	if m <= 0 || n <= 0 {
		panic(fmt.Sprintf("hopfield: invalid pattern set %d×%d", m, n))
	}
	out := make([]Pattern, m)
	for i := range out {
		p := make(Pattern, n)
		for j := range p {
			if rng.Intn(2) == 0 {
				p[j] = -1
			} else {
				p[j] = 1
			}
		}
		out[i] = p
	}
	return out
}

// Network is a Hopfield network with real-valued weights. Weights are
// symmetric with a zero diagonal.
type Network struct {
	n int
	w [][]float64 // n×n symmetric, zero diagonal
}

// N returns the neuron count.
func (h *Network) N() int { return h.n }

// Weight returns w_ij.
func (h *Network) Weight(i, j int) float64 { return h.w[i][j] }

// Train builds a Hopfield network storing the given patterns with the
// Hebbian rule w_ij = (1/M)·Σ_p ξᵖ_i·ξᵖ_j (i≠j).
func Train(patterns []Pattern) *Network {
	if len(patterns) == 0 {
		panic("hopfield: no patterns")
	}
	n := len(patterns[0])
	for i, p := range patterns {
		if len(p) != n {
			panic(fmt.Sprintf("hopfield: pattern %d has dim %d, want %d", i, len(p), n))
		}
	}
	w := make([][]float64, n)
	for i := range w {
		w[i] = make([]float64, n)
	}
	inv := 1 / float64(len(patterns))
	for _, p := range patterns {
		for i := 0; i < n; i++ {
			pi := float64(p[i])
			for j := i + 1; j < n; j++ {
				v := pi * float64(p[j]) * inv
				w[i][j] += v
				w[j][i] += v
			}
		}
	}
	return &Network{n: n, w: w}
}

// Sparsify zeroes all but the strongest weights so that the fraction of
// absent connections reaches at least the target sparsity, and returns the
// surviving binary topology. Ties in magnitude are broken by index order so
// the result is deterministic. The kept set is symmetric because the weight
// matrix is.
func (h *Network) Sparsify(sparsity float64) *graph.Conn {
	if sparsity < 0 || sparsity > 1 {
		panic(fmt.Sprintf("hopfield: sparsity %g out of [0,1]", sparsity))
	}
	type entry struct {
		i, j int
		mag  float64
	}
	var entries []entry
	for i := 0; i < h.n; i++ {
		for j := i + 1; j < h.n; j++ {
			if h.w[i][j] != 0 {
				entries = append(entries, entry{i, j, math.Abs(h.w[i][j])})
			}
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		ea, eb := entries[a], entries[b]
		if ea.mag != eb.mag {
			return ea.mag > eb.mag
		}
		if ea.i != eb.i {
			return ea.i < eb.i
		}
		return ea.j < eb.j
	})
	// Each kept (i,j) pair contributes two directed connections of the n²
	// possible; keep as many pairs as the sparsity budget allows.
	budget := int(math.Floor((1 - sparsity) * float64(h.n) * float64(h.n) / 2))
	if budget > len(entries) {
		budget = len(entries)
	}
	cm := graph.NewConn(h.n)
	kept := make([][]bool, h.n)
	for i := range kept {
		kept[i] = make([]bool, h.n)
	}
	for _, e := range entries[:budget] {
		cm.Set(e.i, e.j)
		cm.Set(e.j, e.i)
		kept[e.i][e.j] = true
		kept[e.j][e.i] = true
	}
	// Zero the pruned weights so recall uses the sparse network.
	for i := 0; i < h.n; i++ {
		for j := 0; j < h.n; j++ {
			if i != j && !kept[i][j] {
				h.w[i][j] = 0
			}
		}
	}
	return cm
}

// Recall runs synchronous Hopfield updates from the given initial state
// until a fixed point or maxSteps, returning the final state.
func (h *Network) Recall(state Pattern, maxSteps int) Pattern {
	if len(state) != h.n {
		panic(fmt.Sprintf("hopfield: state dim %d, want %d", len(state), h.n))
	}
	cur := append(Pattern(nil), state...)
	next := make(Pattern, h.n)
	for step := 0; step < maxSteps; step++ {
		changed := false
		for i := 0; i < h.n; i++ {
			s := 0.0
			for j, wij := range h.w[i] {
				if wij != 0 {
					s += wij * float64(cur[j])
				}
			}
			v := int8(1)
			if s < 0 {
				v = -1
			} else if s == 0 {
				v = cur[i] // no field: hold state
			}
			next[i] = v
			if v != cur[i] {
				changed = true
			}
		}
		cur, next = next, cur
		if !changed {
			break
		}
	}
	return cur
}

// Corrupt flips the given fraction of bits of p, chosen uniformly without
// replacement, and returns the corrupted copy.
func Corrupt(p Pattern, fraction float64, rng *rand.Rand) Pattern {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("hopfield: corruption fraction %g out of [0,1]", fraction))
	}
	out := append(Pattern(nil), p...)
	k := int(math.Round(fraction * float64(len(p))))
	for _, idx := range rng.Perm(len(p))[:k] {
		out[idx] = -out[idx]
	}
	return out
}

// Overlap returns the fraction of positions where a and b agree.
func Overlap(a, b Pattern) float64 {
	if len(a) != len(b) {
		panic("hopfield: overlap of mismatched patterns")
	}
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	return float64(same) / float64(len(a))
}

// RecognitionRate corrupts each stored pattern with the given noise
// fraction, recalls it, and returns the fraction of patterns recovered to at
// least matchThreshold overlap (a pattern and its negation are equivalent
// attractors, so the larger of the two overlaps counts).
func (h *Network) RecognitionRate(patterns []Pattern, noise, matchThreshold float64, rng *rand.Rand) float64 {
	if len(patterns) == 0 {
		return 0
	}
	hit := 0
	for _, p := range patterns {
		rec := h.Recall(Corrupt(p, noise, rng), 50)
		ov := Overlap(rec, p)
		if 1-ov > ov {
			ov = 1 - ov
		}
		if ov >= matchThreshold {
			hit++
		}
	}
	return float64(hit) / float64(len(patterns))
}

// Testbench describes one of the paper's three benchmarks (Section 4.1).
type Testbench struct {
	ID       int
	M, N     int     // patterns stored, pattern dimension
	Sparsity float64 // network sparsity after sparsification
}

// Testbenches returns the paper's three (M, N, sparsity) configurations.
func Testbenches() []Testbench {
	return []Testbench{
		{ID: 1, M: 15, N: 300, Sparsity: 0.9447},
		{ID: 2, M: 20, N: 400, Sparsity: 0.9359},
		{ID: 3, M: 30, N: 500, Sparsity: 0.9439},
	}
}

// Build trains, sparsifies, and returns the connection matrix of the
// testbench along with the trained (sparsified) network and its patterns.
// All randomness derives from seed.
func (tb Testbench) Build(seed int64) (*graph.Conn, *Network, []Pattern) {
	rng := rand.New(rand.NewSource(seed))
	patterns := GenPatterns(tb.M, tb.N, rng)
	net := Train(patterns)
	cm := net.Sparsify(tb.Sparsity)
	return cm, net, patterns
}
