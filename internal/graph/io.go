package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strings"
)

// The network text format is a minimal edge list:
//
//	autoncs-net v1
//	n <neurons>
//	<from> <to>
//	...
//
// Lines starting with '#' and blank lines are ignored. The format is
// self-describing enough to hand-write test networks and diff in reviews.

const formatHeader = "autoncs-net v1"

// MaxLoadNeurons caps the declared size of a loaded network. The bitset
// representation costs n²/8 bytes, so an attacker-controlled (or merely
// corrupted) size line would otherwise turn into an unbounded allocation:
// 32768 neurons is already a 128 MB matrix, far beyond any network the
// text edge-list format is practical for.
const MaxLoadNeurons = 32768

// Write serializes the network in the text edge-list format.
func (c *Conn) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, formatHeader)
	fmt.Fprintf(bw, "n %d\n", c.n)
	var buf []int
	for i := 0; i < c.n; i++ {
		buf = c.RowNeighbors(i, buf[:0])
		for _, j := range buf {
			fmt.Fprintf(bw, "%d %d\n", i, j)
		}
	}
	return bw.Flush()
}

// Read parses a network from the text edge-list format.
func Read(r io.Reader) (*Conn, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s == "" || strings.HasPrefix(s, "#") {
				continue
			}
			return s, true
		}
		return "", false
	}
	head, ok := next()
	if !ok || head != formatHeader {
		return nil, fmt.Errorf("graph: missing %q header", formatHeader)
	}
	sizeLine, ok := next()
	if !ok {
		return nil, fmt.Errorf("graph: missing size line")
	}
	var n int
	if _, err := fmt.Sscanf(sizeLine, "n %d", &n); err != nil {
		return nil, fmt.Errorf("graph: bad size line %q at line %d: %v", sizeLine, line, err)
	}
	if n < 0 {
		return nil, fmt.Errorf("graph: negative size %d", n)
	}
	if n > MaxLoadNeurons {
		return nil, fmt.Errorf("graph: size %d exceeds the %d-neuron load limit", n, MaxLoadNeurons)
	}
	c := NewConn(n)
	for {
		s, ok := next()
		if !ok {
			break
		}
		var i, j int
		if _, err := fmt.Sscanf(s, "%d %d", &i, &j); err != nil {
			return nil, fmt.Errorf("graph: bad edge %q at line %d: %v", s, line, err)
		}
		if i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("graph: edge %d→%d out of range %d at line %d", i, j, n, line)
		}
		c.Set(i, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	return c, nil
}

// Save writes the network to a file.
func (c *Conn) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return c.Write(f)
}

// Load reads a network from a file.
func Load(path string) (*Conn, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("graph: %w", err)
	}
	defer f.Close()
	return Read(f)
}
