package graph

import (
	"fmt"
	"math/bits"
)

// EditSet is the typed structural difference between two connection matrices
// of the same size: the connections present only in the edited matrix
// (Added) and those present only in the base (Removed), each in row-major
// order. Conn is binary, so there is no reweighted class — a weight change
// does not exist in this representation.
type EditSet struct {
	// N is the neuron count of both matrices.
	N int
	// Added lists the connections in edited but not base, row-major.
	Added []Edge
	// Removed lists the connections in base but not edited, row-major.
	Removed []Edge
}

// Edits returns the total number of edited connections.
func (es *EditSet) Edits() int { return len(es.Added) + len(es.Removed) }

// Empty reports whether the two matrices were identical.
func (es *EditSet) Empty() bool { return es.Edits() == 0 }

// Ratio returns the edit count relative to the base connection count — the
// size measure the daemon's delta-vs-full cutoff is expressed in. A base
// with no connections and a non-empty edit set reports ratio 1.
func (es *EditSet) Ratio(baseNNZ int) float64 {
	if es.Empty() {
		return 0
	}
	if baseNNZ <= 0 {
		return 1
	}
	return float64(es.Edits()) / float64(baseNNZ)
}

// TouchedNeurons returns the ascending neuron indices incident to any added
// or removed connection — the seed of the delta compiler's impact region.
func (es *EditSet) TouchedNeurons() []int {
	touched := make([]bool, es.N)
	for _, set := range [][]Edge{es.Added, es.Removed} {
		for _, e := range set {
			touched[e.From] = true
			touched[e.To] = true
		}
	}
	out := []int{}
	for i, t := range touched {
		if t {
			out = append(out, i)
		}
	}
	return out
}

// DiffConn computes the edit set transforming base into edited by XOR-ing
// the two bitset matrices word by word — O(n·words) regardless of how many
// connections the matrices share. Both matrices must have the same neuron
// count.
func DiffConn(base, edited *Conn) (*EditSet, error) {
	if base.n != edited.n {
		return nil, fmt.Errorf("graph: diff of %d-neuron base against %d-neuron edit", base.n, edited.n)
	}
	es := &EditSet{N: base.n}
	for i := 0; i < base.n; i++ {
		brow := base.bits[i*base.words : (i+1)*base.words]
		erow := edited.bits[i*edited.words : (i+1)*edited.words]
		for wi := range brow {
			x := brow[wi] ^ erow[wi]
			if x == 0 {
				continue
			}
			baseCol := wi * wordBits
			for add := x & erow[wi]; add != 0; add &= add - 1 {
				es.Added = append(es.Added, Edge{From: i, To: baseCol + bits.TrailingZeros64(add)})
			}
			for rem := x & brow[wi]; rem != 0; rem &= rem - 1 {
				es.Removed = append(es.Removed, Edge{From: i, To: baseCol + bits.TrailingZeros64(rem)})
			}
		}
	}
	return es, nil
}

// Apply returns a copy of base with the edit set applied. It fails if the
// edit set does not fit the base: a removed connection that is absent or an
// added connection already present means the set was diffed against a
// different matrix.
func (es *EditSet) Apply(base *Conn) (*Conn, error) {
	if base.n != es.N {
		return nil, fmt.Errorf("graph: applying %d-neuron edit set to %d-neuron base", es.N, base.n)
	}
	out := base.Clone()
	for _, e := range es.Removed {
		if !out.Has(e.From, e.To) {
			return nil, fmt.Errorf("graph: edit set removes absent connection %d→%d", e.From, e.To)
		}
		out.Clear(e.From, e.To)
	}
	for _, e := range es.Added {
		if out.Has(e.From, e.To) {
			return nil, fmt.Errorf("graph: edit set adds existing connection %d→%d", e.From, e.To)
		}
		out.Set(e.From, e.To)
	}
	return out, nil
}
