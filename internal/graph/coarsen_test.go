package graph

import (
	"math/rand"
	"testing"
)

// wgraphOf builds the level-0 weighted graph of a connection matrix exactly
// the way the multilevel engine does: symmetrize, restrict to the active
// neurons, unit weights.
func wgraphOf(t *testing.T, c *Conn) *WGraph {
	t.Helper()
	csr := c.SymmetrizedCSR()
	lap := csr.LaplacianDegrees()
	g2l := make([]int32, c.N())
	var active []int
	for i := 0; i < c.N(); i++ {
		if lap[i] > 0 {
			g2l[i] = int32(len(active))
			active = append(active, i)
		} else {
			g2l[i] = -1
		}
	}
	var local CSR
	csr.RestrictTo(active, g2l, &local)
	return WGraphFromCSR(&local, &WGraph{})
}

// checkWGraph asserts the structural invariants every WGraph level must
// satisfy: sorted self-loop-free rows, symmetric edge weights, and Deg equal
// to the row sum.
func checkWGraph(t *testing.T, g *WGraph) {
	t.Helper()
	weight := func(i int, j int32) float64 {
		row, roww := g.Row(i), g.RowW(i)
		for e, u := range row {
			if u == j {
				return roww[e]
			}
		}
		return 0
	}
	for i := 0; i < g.N; i++ {
		row, roww := g.Row(i), g.RowW(i)
		deg := 0.0
		for e, u := range row {
			if int(u) == i {
				t.Fatalf("node %d carries a self-loop", i)
			}
			if e > 0 && row[e-1] >= u {
				t.Fatalf("node %d row not strictly ascending: %v", i, row)
			}
			if w := weight(int(u), int32(i)); w != roww[e] {
				t.Fatalf("asymmetric weight %d↔%d: %g vs %g", i, u, roww[e], w)
			}
			deg += roww[e]
		}
		if deg != g.Deg[i] {
			t.Fatalf("node %d Deg %g, row sum %g", i, g.Deg[i], deg)
		}
	}
}

func TestCoarsenInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for name, conn := range map[string]*Conn{
		"sparse":    RandomSparse(300, 0.92, rng),
		"clustered": RandomClustered(240, 16, 0.55, 0.01, rng),
	} {
		g := wgraphOf(t, conn)
		checkWGraph(t, g)
		const maxNodeW = 16
		var dst WGraph
		var ws CoarsenWS
		parent, matched := Coarsen(g, maxNodeW, &dst, nil, &ws)
		if dst.N != g.N-matched {
			t.Fatalf("%s: coarse N %d, want %d - %d", name, dst.N, g.N, matched)
		}
		if matched == 0 {
			t.Fatalf("%s: matching found no contraction on a connected-ish graph", name)
		}
		checkWGraph(t, &dst)
		// Every fine node maps to exactly one in-range coarse node, and
		// every coarse node has at least one member.
		members := make([]int, dst.N)
		for v := 0; v < g.N; v++ {
			p := parent[v]
			if p < 0 || int(p) >= dst.N {
				t.Fatalf("%s: parent[%d] = %d out of [0,%d)", name, v, p, dst.N)
			}
			members[p]++
		}
		for c, m := range members {
			if m == 0 {
				t.Fatalf("%s: coarse node %d has no members", name, c)
			}
		}
		// Node weight is conserved and capped.
		if dst.TotalNodeW() != g.TotalNodeW() {
			t.Fatalf("%s: node weight %d, want %d", name, dst.TotalNodeW(), g.TotalNodeW())
		}
		for c, w := range dst.NodeW {
			if int(w) > maxNodeW {
				t.Fatalf("%s: coarse node %d weight %d exceeds cap %d", name, c, w, maxNodeW)
			}
		}
		// Edge weight is conserved up to the contracted intra-node edges:
		// coarse weight (c,d) must equal the summed fine weight between the
		// member sets.
		want := map[[2]int32]float64{}
		for v := 0; v < g.N; v++ {
			row, roww := g.Row(v), g.RowW(v)
			for e, u := range row {
				cv, cu := parent[v], parent[u]
				if cv != cu {
					want[[2]int32{cv, cu}] += roww[e]
				}
			}
		}
		got := 0
		for c := 0; c < dst.N; c++ {
			row, roww := dst.Row(c), dst.RowW(c)
			for e, u := range row {
				if w := want[[2]int32{int32(c), u}]; w != roww[e] {
					t.Fatalf("%s: coarse edge (%d,%d) weight %g, want %g", name, c, u, roww[e], w)
				}
				got++
			}
		}
		if got != len(want) {
			t.Fatalf("%s: %d coarse edges, want %d", name, got, len(want))
		}
	}
}

func TestCoarsenDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := wgraphOf(t, RandomSparse(250, 0.93, rng))
	run := func() (*WGraph, []int32, int) {
		var dst WGraph
		var ws CoarsenWS
		parent, matched := Coarsen(g, 12, &dst, nil, &ws)
		return &dst, parent, matched
	}
	a, pa, ma := run()
	b, pb, mb := run()
	if ma != mb || a.N != b.N {
		t.Fatalf("runs disagree: matched %d vs %d, N %d vs %d", ma, mb, a.N, b.N)
	}
	for v := range pa {
		if pa[v] != pb[v] {
			t.Fatalf("parent[%d] differs: %d vs %d", v, pa[v], pb[v])
		}
	}
	for i := range a.Col {
		if a.Col[i] != b.Col[i] || a.W[i] != b.W[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

func TestCoarsenHierarchyConservation(t *testing.T) {
	// Repeated coarsening down to a small graph conserves total node weight
	// at every level and respects the cap throughout.
	rng := rand.New(rand.NewSource(31))
	g := wgraphOf(t, RandomSparse(400, 0.95, rng))
	total := g.TotalNodeW()
	const maxNodeW = 64
	var ws CoarsenWS
	cur := g
	for level := 0; cur.N > 32 && level < 20; level++ {
		next := &WGraph{}
		_, matched := Coarsen(cur, maxNodeW, next, nil, &ws)
		if matched == 0 {
			break
		}
		checkWGraph(t, next)
		if next.TotalNodeW() != total {
			t.Fatalf("level %d: node weight %d, want %d", level+1, next.TotalNodeW(), total)
		}
		for c, w := range next.NodeW {
			if int(w) > maxNodeW {
				t.Fatalf("level %d: node %d weight %d exceeds cap", level+1, c, w)
			}
		}
		cur = next
	}
	if cur.N >= g.N {
		t.Fatalf("hierarchy did not shrink: %d -> %d", g.N, cur.N)
	}
}
