package graph

import (
	"math/rand"
	"testing"
)

// csrNeighbors collects row i of s as ints for comparison.
func csrNeighbors(s *CSR, i int) []int {
	var out []int
	for _, j := range s.Row(i) {
		out = append(out, int(j))
	}
	return out
}

func TestNewCSRMatchesConn(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := RandomSparse(80, 0.9, rng)
	s := NewCSR(c)
	if s.N() != c.N() {
		t.Fatalf("N = %d, want %d", s.N(), c.N())
	}
	if s.NNZ() != c.NNZ() {
		t.Fatalf("NNZ = %d, want %d", s.NNZ(), c.NNZ())
	}
	for i := 0; i < c.N(); i++ {
		want := c.RowNeighbors(i, nil)
		got := csrNeighbors(s, i)
		if len(got) != len(want) {
			t.Fatalf("row %d: %v want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("row %d: %v want %v", i, got, want)
			}
		}
	}
}

func TestSymmetrizedCSRMatchesSymmetrized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	c := RandomSparse(60, 0.85, rng)
	c.Set(3, 3) // self-loop: must appear in rows but not in Laplacian degrees
	sym := c.Symmetrized()
	s := c.SymmetrizedCSR()
	for i := 0; i < c.N(); i++ {
		want := sym.RowNeighbors(i, nil)
		got := csrNeighbors(s, i)
		if len(got) != len(want) {
			t.Fatalf("row %d: %v want %v", i, got, want)
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("row %d: %v want %v", i, got, want)
			}
		}
		deg := sym.OutDegree(i)
		if sym.Has(i, i) {
			deg--
		}
		if s.LaplacianDegrees()[i] != float64(deg) {
			t.Fatalf("lapDeg[%d] = %g, want %d", i, s.LaplacianDegrees()[i], deg)
		}
	}
}

func TestSymmetrizedCSRCache(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := RandomSparse(40, 0.8, rng)
	s1 := c.SymmetrizedCSR()
	if s2 := c.SymmetrizedCSR(); s2 != s1 {
		t.Fatal("unchanged Conn must return the cached CSR")
	}
	// Find a cleared-and-settable pair to force a mutation.
	c.Set(1, 2)
	if s3 := c.SymmetrizedCSR(); s3 == s1 {
		t.Fatal("mutation must invalidate the cached CSR")
	}
	if !hasNeighbor(c.SymmetrizedCSR(), 1, 2) {
		t.Fatal("rebuilt CSR misses the new edge")
	}
	before := c.SymmetrizedCSR()
	c.Set(1, 2) // no-op set: bit already present
	if c.SymmetrizedCSR() != before {
		t.Fatal("no-op Set must not invalidate the cache")
	}
	c.Clear(1, 2)
	if !hasNeighbor(before, 1, 2) {
		t.Fatal("old snapshot must be immutable")
	}
	if hasNeighbor(c.SymmetrizedCSR(), 1, 2) && !c.Has(2, 1) {
		t.Fatal("cleared edge still present after rebuild")
	}
}

func hasNeighbor(s *CSR, i, j int) bool {
	for _, v := range s.Row(i) {
		if int(v) == j {
			return true
		}
	}
	return false
}

func TestRestrictTo(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	c := RandomSparse(50, 0.8, rng)
	c.Set(4, 4)
	s := c.SymmetrizedCSR()
	lap := s.LaplacianDegrees()
	g2l := make([]int32, c.N())
	var active []int
	for i := range g2l {
		if lap[i] > 0 {
			g2l[i] = int32(len(active))
			active = append(active, i)
		} else {
			g2l[i] = -1
		}
	}
	var dst CSR
	local := s.RestrictTo(active, g2l, &dst)
	if local.N() != len(active) {
		t.Fatalf("local N = %d, want %d", local.N(), len(active))
	}
	for a, i := range active {
		want := 0
		for _, j := range s.Row(i) {
			if int(j) == i {
				continue // self-loops dropped
			}
			want++
		}
		got := csrNeighbors(local, a)
		if len(got) != want {
			t.Fatalf("local row %d: %d neighbors, want %d", a, len(got), want)
		}
		for k, b := range got {
			if active[b] != int(s.Row(i)[indexSkippingSelf(s, i, k)]) {
				t.Fatalf("local row %d neighbor %d maps to %d", a, k, active[b])
			}
		}
		if local.LaplacianDegrees()[a] != float64(want) {
			t.Fatalf("local lapDeg[%d] = %g, want %d", a, local.LaplacianDegrees()[a], want)
		}
	}
	// Reuse: a second restriction must not grow the storage.
	colCap, ptrCap := cap(dst.col), cap(dst.rowPtr)
	s.RestrictTo(active, g2l, &dst)
	if cap(dst.col) != colCap || cap(dst.rowPtr) != ptrCap {
		t.Fatal("repeated RestrictTo reallocated storage")
	}
}

// indexSkippingSelf returns the k-th non-self column position of row i.
func indexSkippingSelf(s *CSR, i, k int) int {
	row := s.Row(i)
	seen := 0
	for p, j := range row {
		if int(j) == i {
			continue
		}
		if seen == k {
			return p
		}
		seen++
	}
	return -1
}

// TestCSRRowIterationAllocs pins the sparse-first contract: iterating every
// row of a built CSR performs zero allocations.
func TestCSRRowIterationAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	c := RandomSparse(200, 0.95, rng)
	s := c.SymmetrizedCSR()
	var sink int
	allocs := testing.AllocsPerRun(10, func() {
		for i := 0; i < s.N(); i++ {
			for _, j := range s.Row(i) {
				sink += int(j)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("CSR row iteration allocated %.1f times per sweep, want 0", allocs)
	}
	_ = sink
}

func TestWithinKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	c := RandomSparse(70, 0.85, rng)
	idx := []int{3, 9, 14, 15, 40, 41, 42, 69}
	// Naive count/edges over the member set.
	in := make(map[int]bool)
	for _, v := range idx {
		in[v] = true
	}
	wantCount := 0
	type edge struct{ f, t int }
	var wantEdges []edge
	for _, i := range idx {
		for _, j := range c.RowNeighbors(i, nil) {
			if in[j] {
				wantCount++
				wantEdges = append(wantEdges, edge{i, j})
			}
		}
	}
	if got := c.CountWithin(idx); got != wantCount {
		t.Fatalf("CountWithin = %d, want %d", got, wantCount)
	}
	gotEdges := c.WithinEdges(idx)
	if len(gotEdges) != len(wantEdges) {
		t.Fatalf("WithinEdges len = %d, want %d", len(gotEdges), len(wantEdges))
	}
	for k, e := range wantEdges {
		if gotEdges[k].From != e.f || gotEdges[k].To != e.t {
			t.Fatalf("edge %d = %v, want %v", k, gotEdges[k], e)
		}
	}
	nnz := c.NNZ()
	c.RemoveWithin(idx)
	if c.NNZ() != nnz-wantCount {
		t.Fatalf("NNZ after RemoveWithin = %d, want %d", c.NNZ(), nnz-wantCount)
	}
	if c.CountWithin(idx) != 0 {
		t.Fatal("edges remain inside the member set after RemoveWithin")
	}
}
