package graph

import (
	"fmt"
	"math/bits"
)

// CSR is a compressed-sparse-row adjacency snapshot of a Conn: one row per
// neuron, each row the ascending column indices of its neighbors. It is the
// sparse-first view the spectral pipeline iterates — built once in O(E),
// then read allocation-free (Row returns a subslice of the shared column
// array). A CSR is immutable after construction; mutate the Conn and
// rebuild instead.
type CSR struct {
	n      int
	rowPtr []int32
	col    []int32
	// lapDeg[i] is the Laplacian degree of neuron i: the number of
	// neighbors excluding a self-loop. Cached at build time because every
	// spectral embedding needs it.
	lapDeg []float64
}

// N returns the number of neurons (rows).
func (s *CSR) N() int { return s.n }

// NNZ returns the number of stored adjacency entries.
func (s *CSR) NNZ() int { return len(s.col) }

// Row returns the ascending neighbor indices of neuron i as a subslice of
// the shared column array. The caller must not modify or retain it past the
// CSR's lifetime. It performs no allocation.
func (s *CSR) Row(i int) []int32 {
	return s.col[s.rowPtr[i]:s.rowPtr[i+1]]
}

// LaplacianDegrees returns the cached Laplacian degree diagonal d_i
// (neighbors excluding self-loops). The slice is shared with the CSR and
// must not be modified.
func (s *CSR) LaplacianDegrees() []float64 { return s.lapDeg }

// Arrays exposes the raw CSR index arrays (row i's neighbors are
// col[rowPtr[i]:rowPtr[i+1]]) for kernels that iterate the structure inline,
// such as the matrix package's CSR Laplacian operator. Both slices are
// shared with the CSR and must not be modified.
func (s *CSR) Arrays() (rowPtr, col []int32) { return s.rowPtr, s.col }

// NewCSR builds the CSR view of c's rows (out-neighbors) in O(E).
func NewCSR(c *Conn) *CSR {
	s := &CSR{n: c.n, rowPtr: make([]int32, c.n+1)}
	s.col = make([]int32, 0, c.count)
	s.lapDeg = make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		s.col = appendRowBits(s.col, c, i)
		s.rowPtr[i+1] = int32(len(s.col))
		deg := int(s.rowPtr[i+1] - s.rowPtr[i])
		if c.Has(i, i) {
			deg--
		}
		s.lapDeg[i] = float64(deg)
	}
	return s
}

// appendRowBits appends the set column indices of row i to dst (ascending).
func appendRowBits(dst []int32, c *Conn, i int) []int32 {
	row := c.bits[i*c.words : (i+1)*c.words]
	for wi, w := range row {
		base := int32(wi * wordBits)
		for w != 0 {
			b := int32(bits.TrailingZeros64(w))
			dst = append(dst, base+b)
			w &= w - 1
		}
	}
	return dst
}

// newSymmetrizedCSR builds the CSR of W ∨ Wᵀ directly from c in O(E + n),
// without materializing a second bitset matrix: the row CSR and its
// transpose are built by counting sort, then each output row is the sorted
// union of the two.
func newSymmetrizedCSR(c *Conn) *CSR {
	n := c.n
	// Row CSR of W.
	fwd := NewCSR(c)
	// Transpose: counting pass, then a fill that visits source rows in
	// ascending order so every transpose row comes out ascending.
	tPtr := make([]int32, n+1)
	for _, j := range fwd.col {
		tPtr[j+1]++
	}
	for i := 0; i < n; i++ {
		tPtr[i+1] += tPtr[i]
	}
	tCol := make([]int32, len(fwd.col))
	fill := make([]int32, n)
	for i := 0; i < n; i++ {
		for _, j := range fwd.Row(i) {
			tCol[tPtr[j]+fill[j]] = int32(i)
			fill[j]++
		}
	}
	// Merge each row with its transpose row (both ascending, dedup).
	s := &CSR{n: n, rowPtr: make([]int32, n+1), lapDeg: make([]float64, n)}
	s.col = make([]int32, 0, 2*len(fwd.col))
	for i := 0; i < n; i++ {
		a := fwd.Row(i)
		b := tCol[tPtr[i]:tPtr[i+1]]
		deg := 0
		for len(a) > 0 || len(b) > 0 {
			var v int32
			switch {
			case len(b) == 0 || (len(a) > 0 && a[0] < b[0]):
				v, a = a[0], a[1:]
			case len(a) == 0 || b[0] < a[0]:
				v, b = b[0], b[1:]
			default: // equal
				v, a, b = a[0], a[1:], b[1:]
			}
			s.col = append(s.col, v)
			if int(v) != i {
				deg++
			}
		}
		s.rowPtr[i+1] = int32(len(s.col))
		s.lapDeg[i] = float64(deg)
	}
	return s
}

// RestrictTo builds the induced sub-adjacency over the active neuron subset,
// relabeled to local indices [0, len(active)), with self-loops dropped (they
// do not contribute to the Laplacian). g2l must map every global index to
// its local index, with -1 marking inactive neurons; every neighbor of an
// active neuron must itself be active (true for any positive-degree subset
// of a symmetric graph). dst's storage is reused when large enough, so a
// caller restricting repeatedly (the ISC loop) allocates only on growth.
// The restriction is O(E_active), never a dense copy.
func (s *CSR) RestrictTo(active []int, g2l []int32, dst *CSR) *CSR {
	na := len(active)
	if cap(dst.rowPtr) < na+1 {
		dst.rowPtr = make([]int32, na+1)
	}
	dst.rowPtr = dst.rowPtr[:na+1]
	dst.col = dst.col[:0]
	dst.lapDeg = dst.lapDeg[:0]
	dst.n = na
	dst.rowPtr[0] = 0
	for a, i := range active {
		for _, j := range s.Row(i) {
			if int(j) == i {
				continue
			}
			b := g2l[j]
			if b < 0 {
				panic(fmt.Sprintf("graph: RestrictTo neighbor %d of active %d is inactive", j, i))
			}
			dst.col = append(dst.col, b)
		}
		dst.rowPtr[a+1] = int32(len(dst.col))
		dst.lapDeg = append(dst.lapDeg, float64(dst.rowPtr[a+1]-dst.rowPtr[a]))
	}
	return dst
}
