// Package graph provides the binary connection-matrix representation of a
// neural network used throughout the AutoNCS flow, along with the degree and
// Laplacian constructions needed by spectral clustering and assorted
// topology statistics (sparsity, fanin/fanout, connected components).
//
// A connection matrix W has w_ij = 1 when input neuron i drives output
// neuron j through a synapse. Rows are stored as bitsets, so an N=500
// testbench costs ~16 KB and set/test/count are O(1)/O(words).
package graph

import (
	"encoding/binary"
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"repro/internal/matrix"
)

const wordBits = 64

// Conn is a square binary connection matrix over n neurons.
// The zero value is an empty 0-neuron matrix; use NewConn for a sized one.
type Conn struct {
	n     int
	words int // words per row
	bits  []uint64
	count int // number of set connections

	// version counts mutations (Set/Clear that changed a bit); it keys the
	// cached symmetrized CSR below so repeated spectral embeddings of an
	// unchanged network reuse one O(E) build.
	version uint64
	symCSR  *CSR
	symVer  uint64
}

// NewConn returns an empty connection matrix over n neurons.
// It panics if n is negative.
func NewConn(n int) *Conn {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative size %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	return &Conn{n: n, words: w, bits: make([]uint64, n*w)}
}

// N returns the number of neurons.
func (c *Conn) N() int { return c.n }

// NNZ returns the number of connections (set entries).
func (c *Conn) NNZ() int { return c.count }

// Sparsity returns 1 - NNZ/n², the paper's definition of network sparsity.
// A 0-neuron network has sparsity 1.
func (c *Conn) Sparsity() float64 {
	if c.n == 0 {
		return 1
	}
	return 1 - float64(c.count)/float64(c.n)/float64(c.n)
}

func (c *Conn) checkIdx(i, j int) {
	if i < 0 || i >= c.n || j < 0 || j >= c.n {
		panic(fmt.Sprintf("graph: index (%d,%d) out of range for %d neurons", i, j, c.n))
	}
}

// Has reports whether the connection i→j exists.
func (c *Conn) Has(i, j int) bool {
	c.checkIdx(i, j)
	return c.bits[i*c.words+j/wordBits]&(1<<(uint(j)%wordBits)) != 0
}

// Set adds the connection i→j. Setting an existing connection is a no-op.
func (c *Conn) Set(i, j int) {
	c.checkIdx(i, j)
	w := &c.bits[i*c.words+j/wordBits]
	mask := uint64(1) << (uint(j) % wordBits)
	if *w&mask == 0 {
		*w |= mask
		c.count++
		c.version++
	}
}

// Clear removes the connection i→j. Clearing an absent connection is a no-op.
func (c *Conn) Clear(i, j int) {
	c.checkIdx(i, j)
	w := &c.bits[i*c.words+j/wordBits]
	mask := uint64(1) << (uint(j) % wordBits)
	if *w&mask != 0 {
		*w &^= mask
		c.count--
		c.version++
	}
}

// Clone returns a deep copy.
func (c *Conn) Clone() *Conn {
	out := &Conn{n: c.n, words: c.words, count: c.count, bits: make([]uint64, len(c.bits))}
	copy(out.bits, c.bits)
	return out
}

// Equal reports whether two matrices have identical size and connections.
func (c *Conn) Equal(o *Conn) bool {
	if c.n != o.n || c.count != o.count {
		return false
	}
	for i, w := range c.bits {
		if o.bits[i] != w {
			return false
		}
	}
	return true
}

// AppendBinary appends a canonical fixed-width binary encoding of the
// matrix to dst and returns the extended slice: the neuron count as a
// little-endian uint64 followed by every row's bitset words in row-major
// order. Two matrices produce identical encodings iff Equal reports true —
// the row stride is derived from n alone and the padding bits beyond column
// n are invariantly zero — so the encoding is a sound input for
// content-addressed hashing (the compile service's cache key).
func (c *Conn) AppendBinary(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint64(dst, uint64(c.n))
	for _, w := range c.bits {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// OutDegree returns the number of outgoing connections of neuron i (fanout).
func (c *Conn) OutDegree(i int) int {
	c.checkIdx(i, 0)
	row := c.bits[i*c.words : (i+1)*c.words]
	d := 0
	for _, w := range row {
		d += bits.OnesCount64(w)
	}
	return d
}

// InDegree returns the number of incoming connections of neuron j (fanin).
func (c *Conn) InDegree(j int) int {
	c.checkIdx(0, j)
	word, mask := j/wordBits, uint64(1)<<(uint(j)%wordBits)
	d := 0
	for i := 0; i < c.n; i++ {
		if c.bits[i*c.words+word]&mask != 0 {
			d++
		}
	}
	return d
}

// FanInOut returns fanin+fanout of neuron i, the congestion proxy the paper
// uses in Figures 7-9(d).
func (c *Conn) FanInOut(i int) int { return c.InDegree(i) + c.OutDegree(i) }

// RowNeighbors appends to dst the column indices j with connection i→j and
// returns the extended slice.
func (c *Conn) RowNeighbors(i int, dst []int) []int {
	c.checkIdx(i, 0)
	row := c.bits[i*c.words : (i+1)*c.words]
	for wi, w := range row {
		base := wi * wordBits
		for w != 0 {
			b := bits.TrailingZeros64(w)
			dst = append(dst, base+b)
			w &= w - 1
		}
	}
	return dst
}

// Edge is a directed connection in the network.
type Edge struct{ From, To int }

// Edges returns all connections in row-major order.
func (c *Conn) Edges() []Edge {
	out := make([]Edge, 0, c.count)
	var buf []int
	for i := 0; i < c.n; i++ {
		buf = c.RowNeighbors(i, buf[:0])
		for _, j := range buf {
			out = append(out, Edge{i, j})
		}
	}
	return out
}

// Symmetrized returns W ∨ Wᵀ: the undirected version of the network used to
// build the similarity graph for spectral clustering.
func (c *Conn) Symmetrized() *Conn {
	out := c.Clone()
	var buf []int
	for i := 0; i < c.n; i++ {
		buf = c.RowNeighbors(i, buf[:0])
		for _, j := range buf {
			out.Set(j, i)
		}
	}
	return out
}

// SymmetrizedCSR returns the CSR view of W ∨ Wᵀ with cached Laplacian
// degrees, built in O(E + n) and memoized until the next mutation — the
// sparse-first input of the spectral pipeline. Unlike Symmetrized it never
// materializes a second bitset matrix. The returned CSR is shared: callers
// must treat it as read-only. Not safe for use concurrent with mutation;
// concurrent readers of an unmutated Conn should obtain the CSR once on the
// control goroutine and share the snapshot.
func (c *Conn) SymmetrizedCSR() *CSR {
	if c.symCSR != nil && c.symVer == c.version {
		return c.symCSR
	}
	c.symCSR = newSymmetrizedCSR(c)
	c.symVer = c.version
	return c.symCSR
}

// IsSymmetric reports whether w_ij == w_ji for all pairs.
func (c *Conn) IsSymmetric() bool {
	var buf []int
	for i := 0; i < c.n; i++ {
		buf = c.RowNeighbors(i, buf[:0])
		for _, j := range buf {
			if !c.Has(j, i) {
				return false
			}
		}
	}
	return true
}

// Sub extracts the induced sub-network over the given neuron indices. Entry
// (a,b) of the result equals c.Has(idx[a], idx[b]). Indices may appear in any
// order but must be unique and in range.
func (c *Conn) Sub(idx []int) *Conn {
	out := NewConn(len(idx))
	seen := make(map[int]bool, len(idx))
	for _, v := range idx {
		if v < 0 || v >= c.n {
			panic(fmt.Sprintf("graph: Sub index %d out of range %d", v, c.n))
		}
		if seen[v] {
			panic(fmt.Sprintf("graph: Sub duplicate index %d", v))
		}
		seen[v] = true
	}
	for a, i := range idx {
		for b, j := range idx {
			if c.Has(i, j) {
				out.Set(a, b)
			}
		}
	}
	return out
}

// memberMask builds a one-row bitset with the bits of idx set. Word-wide
// AND against it replaces the per-neuron membership hash the within-cluster
// kernels used to build — O(|idx|·words) instead of O(E_idx) map lookups.
func (c *Conn) memberMask(idx []int) []uint64 {
	mask := make([]uint64, c.words)
	for _, v := range idx {
		c.checkIdx(v, v)
		mask[v/wordBits] |= 1 << (uint(v) % wordBits)
	}
	return mask
}

// CountWithin returns the number of connections (i→j) with both endpoints in
// idx. This is the crossbar "utilized connections" m for a cluster.
func (c *Conn) CountWithin(idx []int) int {
	if len(idx) == 0 {
		return 0
	}
	mask := c.memberMask(idx)
	m := 0
	for _, i := range idx {
		row := c.bits[i*c.words : (i+1)*c.words]
		for wi, w := range row {
			m += bits.OnesCount64(w & mask[wi])
		}
	}
	return m
}

// WithinEdges returns every connection (i→j) with both endpoints in idx, in
// the iteration order of idx then neighbor order.
func (c *Conn) WithinEdges(idx []int) []Edge {
	if len(idx) == 0 {
		return nil
	}
	mask := c.memberMask(idx)
	var out []Edge
	for _, i := range idx {
		row := c.bits[i*c.words : (i+1)*c.words]
		for wi, w := range row {
			w &= mask[wi]
			base := wi * wordBits
			for w != 0 {
				b := bits.TrailingZeros64(w)
				out = append(out, Edge{From: i, To: base + b})
				w &= w - 1
			}
		}
	}
	return out
}

// RemoveWithin deletes every connection with both endpoints in idx and
// returns the number removed. This is the ISC step that peels a mapped
// cluster out of the remaining network.
func (c *Conn) RemoveWithin(idx []int) int {
	if len(idx) == 0 {
		return 0
	}
	mask := c.memberMask(idx)
	removed := 0
	for _, i := range idx {
		row := c.bits[i*c.words : (i+1)*c.words]
		for wi := range row {
			if hit := row[wi] & mask[wi]; hit != 0 {
				row[wi] &^= hit
				removed += bits.OnesCount64(hit)
			}
		}
	}
	if removed > 0 {
		c.count -= removed
		c.version++
	}
	return removed
}

// ActiveNeurons returns the indices of neurons with at least one incident
// connection (fanin+fanout > 0) in ascending order.
func (c *Conn) ActiveNeurons() []int {
	active := make([]bool, c.n)
	var buf []int
	for i := 0; i < c.n; i++ {
		buf = c.RowNeighbors(i, buf[:0])
		if len(buf) > 0 {
			active[i] = true
		}
		for _, j := range buf {
			active[j] = true
		}
	}
	out := make([]int, 0, c.n)
	for i, a := range active {
		if a {
			out = append(out, i)
		}
	}
	return out
}

// Degrees returns d_i = Σ_j w_ij for the (assumed symmetric) matrix — the
// diagonal of the degree matrix D in Algorithm 1.
func (c *Conn) Degrees() []float64 {
	d := make([]float64, c.n)
	for i := 0; i < c.n; i++ {
		d[i] = float64(c.OutDegree(i))
	}
	return d
}

// Laplacian returns the unnormalized graph Laplacian L = D − W of the
// (assumed symmetric) matrix as a dense matrix, plus the degree diagonal.
func (c *Conn) Laplacian() (*matrix.Dense, []float64) {
	l := matrix.NewDense(c.n, c.n)
	d := make([]float64, c.n)
	var buf []int
	for i := 0; i < c.n; i++ {
		buf = c.RowNeighbors(i, buf[:0])
		for _, j := range buf {
			if i != j {
				l.Set(i, j, -1)
			}
		}
	}
	for i := 0; i < c.n; i++ {
		deg := float64(c.OutDegree(i))
		if c.Has(i, i) {
			deg-- // self-loops do not contribute to the Laplacian
		}
		d[i] = deg
		l.Set(i, i, deg)
	}
	return l, d
}

// Components returns the connected components of the symmetrized network,
// each as an ascending slice of neuron indices. Isolated neurons form
// singleton components.
func (c *Conn) Components() [][]int {
	sym := c
	if !c.IsSymmetric() {
		sym = c.Symmetrized()
	}
	comp := make([]int, c.n)
	for i := range comp {
		comp[i] = -1
	}
	var out [][]int
	var stack, buf []int
	for s := 0; s < c.n; s++ {
		if comp[s] >= 0 {
			continue
		}
		id := len(out)
		comp[s] = id
		stack = append(stack[:0], s)
		members := []int{}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			buf = sym.RowNeighbors(v, buf[:0])
			for _, u := range buf {
				if comp[u] < 0 {
					comp[u] = id
					stack = append(stack, u)
				}
			}
		}
		sortInts(members)
		out = append(out, members)
	}
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// String renders the matrix as an ASCII bitmap ('#' = connection).
func (c *Conn) String() string {
	var b strings.Builder
	for i := 0; i < c.n; i++ {
		for j := 0; j < c.n; j++ {
			if c.Has(i, j) {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RandomSparse returns a random symmetric connection matrix over n neurons
// with approximately the given sparsity (fraction of absent connections),
// with no self-connections. The construction samples the upper triangle and
// mirrors it, matching the structure of the paper's Hopfield testbenches.
func RandomSparse(n int, sparsity float64, rng *rand.Rand) *Conn {
	if sparsity < 0 || sparsity > 1 {
		panic(fmt.Sprintf("graph: sparsity %g out of [0,1]", sparsity))
	}
	c := NewConn(n)
	density := 1 - sparsity
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < density {
				c.Set(i, j)
				c.Set(j, i)
			}
		}
	}
	return c
}

// RandomClustered returns a symmetric matrix of n neurons partitioned into
// blocks of the given size, dense (densityIn) within blocks and sparse
// (densityOut) between them. Used by tests that need a known-clusterable
// topology.
func RandomClustered(n, blockSize int, densityIn, densityOut float64, rng *rand.Rand) *Conn {
	if blockSize <= 0 {
		panic("graph: non-positive block size")
	}
	c := NewConn(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			p := densityOut
			if i/blockSize == j/blockSize {
				p = densityIn
			}
			if rng.Float64() < p {
				c.Set(i, j)
				c.Set(j, i)
			}
		}
	}
	return c
}
