package graph

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewConnEmpty(t *testing.T) {
	c := NewConn(10)
	if c.N() != 10 || c.NNZ() != 0 {
		t.Fatalf("N=%d NNZ=%d, want 10, 0", c.N(), c.NNZ())
	}
	if c.Sparsity() != 1 {
		t.Fatalf("empty sparsity = %g, want 1", c.Sparsity())
	}
}

func TestNewConnNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewConn(-1) did not panic")
		}
	}()
	NewConn(-1)
}

func TestSetHasClear(t *testing.T) {
	c := NewConn(70) // spans two words per row
	c.Set(3, 65)
	if !c.Has(3, 65) {
		t.Fatal("Has(3,65) = false after Set")
	}
	if c.Has(65, 3) {
		t.Fatal("Has(65,3) = true; Set should be directed")
	}
	if c.NNZ() != 1 {
		t.Fatalf("NNZ = %d, want 1", c.NNZ())
	}
	c.Set(3, 65) // idempotent
	if c.NNZ() != 1 {
		t.Fatalf("NNZ after duplicate Set = %d, want 1", c.NNZ())
	}
	c.Clear(3, 65)
	if c.Has(3, 65) || c.NNZ() != 0 {
		t.Fatal("Clear did not remove the connection")
	}
	c.Clear(3, 65) // idempotent
	if c.NNZ() != 0 {
		t.Fatalf("NNZ after duplicate Clear = %d, want 0", c.NNZ())
	}
}

func TestOutOfRangePanics(t *testing.T) {
	c := NewConn(4)
	for _, f := range []func(){
		func() { c.Set(4, 0) },
		func() { c.Has(0, -1) },
		func() { c.Clear(0, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			f()
		}()
	}
}

func TestDegreesAndFanInOut(t *testing.T) {
	c := NewConn(5)
	c.Set(0, 1)
	c.Set(0, 2)
	c.Set(3, 0)
	if got := c.OutDegree(0); got != 2 {
		t.Errorf("OutDegree(0) = %d, want 2", got)
	}
	if got := c.InDegree(0); got != 1 {
		t.Errorf("InDegree(0) = %d, want 1", got)
	}
	if got := c.FanInOut(0); got != 3 {
		t.Errorf("FanInOut(0) = %d, want 3", got)
	}
}

func TestRowNeighborsAcrossWords(t *testing.T) {
	c := NewConn(130)
	want := []int{0, 63, 64, 127, 129}
	for _, j := range want {
		c.Set(7, j)
	}
	got := c.RowNeighbors(7, nil)
	if len(got) != len(want) {
		t.Fatalf("RowNeighbors = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RowNeighbors = %v, want %v", got, want)
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := RandomSparse(40, 0.9, rng)
	edges := c.Edges()
	if len(edges) != c.NNZ() {
		t.Fatalf("Edges count %d != NNZ %d", len(edges), c.NNZ())
	}
	rebuilt := NewConn(40)
	for _, e := range edges {
		rebuilt.Set(e.From, e.To)
	}
	if !rebuilt.Equal(c) {
		t.Fatal("rebuilding from Edges does not reproduce the matrix")
	}
}

func TestSymmetrizedAndIsSymmetric(t *testing.T) {
	c := NewConn(4)
	c.Set(0, 1)
	c.Set(2, 3)
	if c.IsSymmetric() {
		t.Fatal("directed matrix reported symmetric")
	}
	s := c.Symmetrized()
	if !s.IsSymmetric() {
		t.Fatal("Symmetrized result not symmetric")
	}
	if !s.Has(1, 0) || !s.Has(3, 2) {
		t.Fatal("Symmetrized missing mirrored edges")
	}
	if !s.Has(0, 1) {
		t.Fatal("Symmetrized dropped original edges")
	}
}

func TestCloneEqualIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := RandomSparse(30, 0.8, rng)
	d := c.Clone()
	if !c.Equal(d) {
		t.Fatal("clone not equal")
	}
	d.Set(0, 0)
	if c.Has(0, 0) {
		t.Fatal("clone aliases original")
	}
	if c.Equal(d) {
		t.Fatal("Equal missed a difference")
	}
}

func TestSubAndCountWithin(t *testing.T) {
	c := NewConn(6)
	c.Set(1, 2)
	c.Set(2, 1)
	c.Set(1, 5)
	idx := []int{1, 2, 4}
	sub := c.Sub(idx)
	if sub.N() != 3 {
		t.Fatalf("Sub size = %d, want 3", sub.N())
	}
	if !sub.Has(0, 1) || !sub.Has(1, 0) {
		t.Fatal("Sub lost within-cluster connections")
	}
	if sub.NNZ() != 2 {
		t.Fatalf("Sub NNZ = %d, want 2 (edge to 5 is outside)", sub.NNZ())
	}
	if got := c.CountWithin(idx); got != 2 {
		t.Fatalf("CountWithin = %d, want 2", got)
	}
}

func TestSubRejectsBadIndices(t *testing.T) {
	c := NewConn(3)
	for _, idx := range [][]int{{0, 3}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Sub(%v) did not panic", idx)
				}
			}()
			c.Sub(idx)
		}()
	}
}

func TestRemoveWithin(t *testing.T) {
	c := NewConn(6)
	c.Set(1, 2)
	c.Set(2, 1)
	c.Set(1, 5)
	removed := c.RemoveWithin([]int{1, 2})
	if removed != 2 {
		t.Fatalf("removed = %d, want 2", removed)
	}
	if c.Has(1, 2) || c.Has(2, 1) {
		t.Fatal("within connections survive RemoveWithin")
	}
	if !c.Has(1, 5) {
		t.Fatal("RemoveWithin deleted an outside connection")
	}
}

func TestActiveNeurons(t *testing.T) {
	c := NewConn(6)
	c.Set(0, 3)
	active := c.ActiveNeurons()
	if len(active) != 2 || active[0] != 0 || active[1] != 3 {
		t.Fatalf("ActiveNeurons = %v, want [0 3]", active)
	}
}

func TestLaplacianProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := RandomSparse(25, 0.7, rng)
	l, d := c.Laplacian()
	// Rows sum to zero.
	for i := 0; i < 25; i++ {
		sum := 0.0
		for j := 0; j < 25; j++ {
			sum += l.At(i, j)
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("Laplacian row %d sums to %g", i, sum)
		}
		if l.At(i, i) != d[i] {
			t.Fatalf("diagonal %d = %g, degree %g", i, l.At(i, i), d[i])
		}
	}
	// PSD: x'Lx >= 0 for random x (it equals Σ w_ij (x_i - x_j)²/2).
	for trial := 0; trial < 10; trial++ {
		x := make([]float64, 25)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		lx := l.MulVec(x)
		q := 0.0
		for i := range x {
			q += x[i] * lx[i]
		}
		if q < -1e-9 {
			t.Fatalf("x'Lx = %g < 0", q)
		}
	}
}

func TestLaplacianIgnoresSelfLoops(t *testing.T) {
	c := NewConn(2)
	c.Set(0, 0)
	c.Set(0, 1)
	c.Set(1, 0)
	l, d := c.Laplacian()
	if d[0] != 1 {
		t.Fatalf("degree with self-loop = %g, want 1", d[0])
	}
	if l.At(0, 0) != 1 {
		t.Fatalf("L(0,0) = %g, want 1", l.At(0, 0))
	}
}

func TestComponents(t *testing.T) {
	c := NewConn(7)
	c.Set(0, 1)
	c.Set(1, 0)
	c.Set(2, 3)
	c.Set(3, 2)
	c.Set(3, 4)
	c.Set(4, 3)
	comps := c.Components()
	if len(comps) != 4 { // {0,1}, {2,3,4}, {5}, {6}
		t.Fatalf("components = %v, want 4 of them", comps)
	}
	total := 0
	for _, comp := range comps {
		total += len(comp)
	}
	if total != 7 {
		t.Fatalf("components cover %d neurons, want 7", total)
	}
}

func TestComponentsDirectedInput(t *testing.T) {
	// A one-way edge still joins a component (components use the
	// symmetrized network).
	c := NewConn(3)
	c.Set(0, 1)
	comps := c.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v, want [[0 1] [2]]", comps)
	}
}

func TestRandomSparseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := RandomSparse(200, 0.94, rng)
	if !c.IsSymmetric() {
		t.Fatal("RandomSparse not symmetric")
	}
	for i := 0; i < 200; i++ {
		if c.Has(i, i) {
			t.Fatal("RandomSparse produced a self-connection")
		}
	}
	if s := c.Sparsity(); math.Abs(s-0.94) > 0.02 {
		t.Fatalf("sparsity = %g, want ≈0.94", s)
	}
}

func TestRandomSparseRejectsBadSparsity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("RandomSparse(Sparsity=2) did not panic")
		}
	}()
	RandomSparse(5, 2, rand.New(rand.NewSource(1)))
}

func TestRandomClusteredStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := RandomClustered(120, 30, 0.8, 0.01, rng)
	if !c.IsSymmetric() {
		t.Fatal("RandomClustered not symmetric")
	}
	in := c.CountWithin([]int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	if in < 30 { // expect ~72 of 90 possible directed pairs
		t.Fatalf("within-block density too low: %d", in)
	}
}

func TestStringRendering(t *testing.T) {
	c := NewConn(2)
	c.Set(0, 1)
	if got, want := c.String(), ".#\n..\n"; got != want {
		t.Fatalf("String = %q, want %q", got, want)
	}
}

// Property: NNZ always equals the number of edges, under random mutation.
func TestNNZMatchesEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		c := NewConn(n)
		for op := 0; op < 200; op++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if rng.Intn(3) == 0 {
				c.Clear(i, j)
			} else {
				c.Set(i, j)
			}
		}
		return len(c.Edges()) == c.NNZ()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: Sub then CountWithin agree: NNZ of the induced sub-network must
// equal CountWithin of the same index set.
func TestSubCountWithinAgreeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		c := RandomSparse(n, 0.7, rng)
		k := 1 + rng.Intn(n)
		perm := rng.Perm(n)[:k]
		return c.Sub(perm).NNZ() == c.CountWithin(perm)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: RemoveWithin removes exactly CountWithin connections and leaves
// the rest untouched.
func TestRemoveWithinExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		c := RandomSparse(n, 0.6, rng)
		k := 1 + rng.Intn(n)
		idx := rng.Perm(n)[:k]
		want := c.CountWithin(idx)
		before := c.NNZ()
		got := c.RemoveWithin(idx)
		return got == want && c.NNZ() == before-want && c.CountWithin(idx) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
