package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad drives the text-format parser with arbitrary input: malformed,
// truncated, and oversized files must come back as errors — never as a
// panic or an unbounded allocation — and anything the parser does accept
// must be internally consistent and round-trip through Write.
func FuzzLoad(f *testing.F) {
	seeds := []string{
		"autoncs-net v1\nn 4\n0 1\n1 0\n2 3\n",
		"autoncs-net v1\nn 4\n",
		"autoncs-net v1\nn 4\n# comment\n\n3 3\n",
		"autoncs-net v1\nn 0\n",
		"autoncs-net v1",
		"autoncs-net v1\nn",
		"autoncs-net v1\nn -7\n",
		"autoncs-net v1\nn 999999999999999999999\n",
		"autoncs-net v1\nn 2000000\n",
		"autoncs-net v1\nn 4\n0\n",
		"autoncs-net v1\nn 4\n0 9\n",
		"autoncs-net v1\nn 4\n-1 2\n",
		"autoncs-net v1\nn 4\n0 1 extra\n",
		"autoncs-net v2\nn 4\n0 1\n",
		"",
		"garbage\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if c == nil {
			t.Fatal("nil network without error")
		}
		if c.N() < 0 || c.N() > MaxLoadNeurons {
			t.Fatalf("accepted out-of-range size %d", c.N())
		}
		if c.NNZ() < 0 || c.NNZ() > c.N()*c.N() {
			t.Fatalf("inconsistent NNZ %d for %d neurons", c.NNZ(), c.N())
		}
		// Round-trip: what the parser accepted must re-serialize to an
		// equal network.
		var buf strings.Builder
		if err := c.Write(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := Read(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round-trip re-read failed: %v", err)
		}
		if !c.Equal(back) {
			t.Fatal("round-trip changed the network")
		}
	})
}
