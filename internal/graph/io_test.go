package graph

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"
)

func TestIORoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	orig := RandomSparse(70, 0.9, rng)
	var b strings.Builder
	if err := orig.Write(&b); err != nil {
		t.Fatal(err)
	}
	back, err := Read(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Fatal("round trip lost connections")
	}
}

func TestIOCommentsAndBlanks(t *testing.T) {
	in := `
# a comment
autoncs-net v1

n 3
# edges
0 1

2 0
`
	c, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !c.Has(0, 1) || !c.Has(2, 0) || c.NNZ() != 2 {
		t.Fatalf("parsed wrong network: %v", c)
	}
}

func TestIOErrors(t *testing.T) {
	cases := map[string]string{
		"no header":  "n 3\n0 1\n",
		"bad size":   "autoncs-net v1\nn x\n",
		"no size":    "autoncs-net v1\n",
		"bad edge":   "autoncs-net v1\nn 2\nfoo bar\n",
		"edge range": "autoncs-net v1\nn 2\n0 5\n",
		"neg size":   "autoncs-net v1\nn -2\n",
		"wrong vers": "autoncs-net v2\nn 2\n",
	}
	for name, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "net.txt")
	rng := rand.New(rand.NewSource(2))
	orig := RandomSparse(40, 0.88, rng)
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(orig) {
		t.Fatal("file round trip lost connections")
	}
	if _, err := Load(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestIORoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(60)
		c := NewConn(n)
		for e := 0; e < rng.Intn(100); e++ {
			c.Set(rng.Intn(n), rng.Intn(n))
		}
		var b strings.Builder
		if err := c.Write(&b); err != nil {
			return false
		}
		back, err := Read(strings.NewReader(b.String()))
		return err == nil && back.Equal(c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
