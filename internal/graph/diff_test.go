package graph

import (
	"math/rand"
	"testing"
)

func TestDiffConnBasic(t *testing.T) {
	base := NewConn(6)
	base.Set(0, 1)
	base.Set(1, 0)
	base.Set(2, 3)
	base.Set(4, 5)

	edited := base.Clone()
	edited.Clear(2, 3)
	edited.Set(3, 4)
	edited.Set(5, 5)

	es, err := DiffConn(base, edited)
	if err != nil {
		t.Fatal(err)
	}
	wantAdded := []Edge{{3, 4}, {5, 5}}
	wantRemoved := []Edge{{2, 3}}
	if len(es.Added) != len(wantAdded) {
		t.Fatalf("added = %v, want %v", es.Added, wantAdded)
	}
	for i, e := range wantAdded {
		if es.Added[i] != e {
			t.Fatalf("added = %v, want %v", es.Added, wantAdded)
		}
	}
	if len(es.Removed) != 1 || es.Removed[0] != wantRemoved[0] {
		t.Fatalf("removed = %v, want %v", es.Removed, wantRemoved)
	}
	if es.Edits() != 3 || es.Empty() {
		t.Fatalf("edits = %d, empty = %v", es.Edits(), es.Empty())
	}
	wantTouched := []int{2, 3, 4, 5}
	got := es.TouchedNeurons()
	if len(got) != len(wantTouched) {
		t.Fatalf("touched = %v, want %v", got, wantTouched)
	}
	for i, n := range wantTouched {
		if got[i] != n {
			t.Fatalf("touched = %v, want %v", got, wantTouched)
		}
	}

	applied, err := es.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if !applied.Equal(edited) {
		t.Fatal("apply(base, diff) != edited")
	}
}

func TestDiffConnIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := RandomSparse(80, 0.9, rng)
	es, err := DiffConn(c, c)
	if err != nil {
		t.Fatal(err)
	}
	if !es.Empty() {
		t.Fatalf("self-diff has %d edits", es.Edits())
	}
	if es.Ratio(c.NNZ()) != 0 {
		t.Fatalf("self-diff ratio = %g", es.Ratio(c.NNZ()))
	}
	if len(es.TouchedNeurons()) != 0 {
		t.Fatalf("self-diff touches %v", es.TouchedNeurons())
	}
	applied, err := es.Apply(c)
	if err != nil {
		t.Fatal(err)
	}
	if !applied.Equal(c) {
		t.Fatal("empty edit set changed the network")
	}
}

func TestDiffConnSizeMismatch(t *testing.T) {
	if _, err := DiffConn(NewConn(4), NewConn(5)); err == nil {
		t.Fatal("size-mismatched diff accepted")
	}
	es := &EditSet{N: 4, Added: []Edge{{0, 1}}}
	if _, err := es.Apply(NewConn(5)); err == nil {
		t.Fatal("size-mismatched apply accepted")
	}
}

func TestEditSetApplyRejectsForeignBase(t *testing.T) {
	base := NewConn(4)
	base.Set(0, 1)
	edited := base.Clone()
	edited.Set(1, 2)
	edited.Clear(0, 1)
	es, err := DiffConn(base, edited)
	if err != nil {
		t.Fatal(err)
	}
	// A base that already lost the removed edge.
	other := NewConn(4)
	if _, err := es.Apply(other); err == nil {
		t.Fatal("apply accepted a base missing a removed connection")
	}
	// A base that already holds the added edge.
	other2 := base.Clone()
	other2.Set(1, 2)
	if _, err := es.Apply(other2); err == nil {
		t.Fatal("apply accepted a base already holding an added connection")
	}
}

func TestDiffConnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		n := 16 + rng.Intn(120)
		base := RandomSparse(n, 0.8+0.19*rng.Float64(), rng)
		edited := base.Clone()
		edits := 1 + rng.Intn(30)
		for k := 0; k < edits; k++ {
			i, j := rng.Intn(n), rng.Intn(n)
			if edited.Has(i, j) {
				edited.Clear(i, j)
			} else {
				edited.Set(i, j)
			}
		}
		es, err := DiffConn(base, edited)
		if err != nil {
			t.Fatal(err)
		}
		applied, err := es.Apply(base)
		if err != nil {
			t.Fatal(err)
		}
		if !applied.Equal(edited) {
			t.Fatalf("trial %d: apply(base, diff) != edited", trial)
		}
		// Row-major ordering of both classes.
		for _, set := range [][]Edge{es.Added, es.Removed} {
			for i := 1; i < len(set); i++ {
				a, b := set[i-1], set[i]
				if a.From > b.From || (a.From == b.From && a.To >= b.To) {
					t.Fatalf("trial %d: edit set out of row-major order: %v then %v", trial, a, b)
				}
			}
		}
	}
}

// FuzzDiffConn derives base and edited matrices from arbitrary bytes and
// checks the differ's core contract: diff then apply reproduces the edited
// matrix exactly, the reverse diff mirrors the classes, and the edit count
// matches the bitwise distance.
func FuzzDiffConn(f *testing.F) {
	f.Add(uint8(8), []byte{0x01, 0x23}, []byte{0x45})
	f.Add(uint8(1), []byte{}, []byte{0xff})
	f.Add(uint8(65), []byte{0xaa, 0xbb, 0xcc}, []byte{0xdd, 0xee})
	f.Fuzz(func(t *testing.T, nRaw uint8, baseSeed, editSeed []byte) {
		n := int(nRaw)%96 + 1
		base := NewConn(n)
		for k, b := range baseSeed {
			if len(baseSeed) > 512 {
				break
			}
			i := (k*7 + int(b)) % n
			j := (k*13 + int(b)*3) % n
			base.Set(i, j)
		}
		edited := base.Clone()
		for k, b := range editSeed {
			if len(editSeed) > 512 {
				break
			}
			i := (k*11 + int(b)*5) % n
			j := (k*3 + int(b)) % n
			if edited.Has(i, j) {
				edited.Clear(i, j)
			} else {
				edited.Set(i, j)
			}
		}
		es, err := DiffConn(base, edited)
		if err != nil {
			t.Fatalf("diff failed: %v", err)
		}
		applied, err := es.Apply(base)
		if err != nil {
			t.Fatalf("apply failed: %v", err)
		}
		if !applied.Equal(edited) {
			t.Fatal("diff+apply did not round-trip")
		}
		rev, err := DiffConn(edited, base)
		if err != nil {
			t.Fatalf("reverse diff failed: %v", err)
		}
		if len(rev.Added) != len(es.Removed) || len(rev.Removed) != len(es.Added) {
			t.Fatalf("reverse diff not mirrored: %d/%d vs %d/%d",
				len(rev.Added), len(rev.Removed), len(es.Added), len(es.Removed))
		}
		back, err := rev.Apply(edited)
		if err != nil {
			t.Fatalf("reverse apply failed: %v", err)
		}
		if !back.Equal(base) {
			t.Fatal("reverse diff+apply did not restore the base")
		}
	})
}
