package graph

// WGraph is a weighted undirected graph in CSR form with integer node
// weights — the representation the multilevel clustering engine coarsens.
// Level 0 is built from a restricted CSR with unit edge and node weights;
// each coarser level merges matched node pairs, so an edge weight counts the
// fine connections it represents and a node weight counts the fine neurons
// collapsed into the node. Rows are sorted by ascending column and carry no
// self-loops (intra-node edges are dropped at contraction, exactly like the
// Laplacian's diagonal).
type WGraph struct {
	N      int
	RowPtr []int32
	Col    []int32
	W      []float64 // edge weight, parallel to Col
	NodeW  []int32   // fine-neuron count per node
	Deg    []float64 // weighted degree: Σ W over the row
}

// Row returns the neighbor indices of node i (ascending).
func (g *WGraph) Row(i int) []int32 { return g.Col[g.RowPtr[i]:g.RowPtr[i+1]] }

// RowW returns the edge weights of node i's row, parallel to Row(i).
func (g *WGraph) RowW(i int) []float64 { return g.W[g.RowPtr[i]:g.RowPtr[i+1]] }

// TotalNodeW returns the summed node weight (the fine neuron count the graph
// represents).
func (g *WGraph) TotalNodeW() int {
	t := 0
	for _, w := range g.NodeW {
		t += int(w)
	}
	return t
}

// reset sizes g for n nodes with empty rows, reusing backing storage.
func (g *WGraph) reset(n int) {
	g.N = n
	if cap(g.RowPtr) < n+1 {
		g.RowPtr = make([]int32, n+1)
	}
	g.RowPtr = g.RowPtr[:n+1]
	g.Col = g.Col[:0]
	g.W = g.W[:0]
	if cap(g.NodeW) < n {
		g.NodeW = make([]int32, n)
	}
	g.NodeW = g.NodeW[:n]
	if cap(g.Deg) < n {
		g.Deg = make([]float64, n)
	}
	g.Deg = g.Deg[:n]
	for i := range g.NodeW {
		g.NodeW[i] = 0
	}
	for i := range g.Deg {
		g.Deg[i] = 0
	}
}

// WGraphFromCSR fills dst with the unit-weight view of a restricted CSR
// (every edge weight and node weight 1), reusing dst's storage. The CSR must
// carry no self-loops, as produced by CSR.RestrictTo.
func WGraphFromCSR(c *CSR, dst *WGraph) *WGraph {
	n := c.N()
	dst.reset(n)
	rowPtr, col := c.Arrays()
	copy(dst.RowPtr, rowPtr)
	if cap(dst.Col) < len(col) {
		dst.Col = make([]int32, len(col))
		dst.W = make([]float64, len(col))
	}
	dst.Col = dst.Col[:len(col)]
	dst.W = dst.W[:len(col)]
	copy(dst.Col, col)
	for i := range dst.W {
		dst.W[i] = 1
	}
	for i := 0; i < n; i++ {
		dst.NodeW[i] = 1
		dst.Deg[i] = float64(rowPtr[i+1] - rowPtr[i])
	}
	return dst
}

// CoarsenWS holds the reusable scratch of Coarsen: the matching array and
// the stamp/position arrays of the coarse-row accumulation. A zero value is
// ready to use.
type CoarsenWS struct {
	match []int32
	stamp []int32
	pos   []int32
	memA  []int32
	memB  []int32
}

func growInt32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// Coarsen contracts g one level by deterministic heavy-edge matching and
// fills dst with the coarse graph. parent (reused when large enough) maps
// every fine node to its coarse node; matched is the number of pairwise
// contractions committed, so dst.N = g.N − matched.
//
// Determinism contract: the matching visits nodes in ascending index order;
// an unmatched node v pairs with its unmatched neighbor of maximum edge
// weight (ties broken toward the smallest index) whose combined node weight
// stays within maxNodeW, or stays single if none qualifies. Coarse ids are
// assigned in order of first appearance, and coarse rows are emitted sorted
// by ascending column with merged edge weights summed in ascending fine-
// neighbor order. No step depends on a worker count or random source, so the
// hierarchy is a pure function of (g, maxNodeW).
func Coarsen(g *WGraph, maxNodeW int, dst *WGraph, parent []int32, ws *CoarsenWS) (par []int32, matched int) {
	n := g.N
	ws.match = growInt32(ws.match, n)
	match := ws.match
	for i := range match {
		match[i] = -1
	}
	for v := 0; v < n; v++ {
		if match[v] >= 0 {
			continue
		}
		best, bestW := int32(-1), 0.0
		row, roww := g.Row(v), g.RowW(v)
		for e, u := range row {
			if int(u) == v || match[u] >= 0 {
				continue
			}
			if int(g.NodeW[v])+int(g.NodeW[u]) > maxNodeW {
				continue
			}
			if w := roww[e]; w > bestW || (w == bestW && (best < 0 || u < best)) {
				best, bestW = u, w
			}
		}
		if best >= 0 {
			match[v] = best
			match[best] = int32(v)
			matched++
		} else {
			match[v] = int32(v)
		}
	}

	// Coarse ids in first-appearance order: a pair (v, u) with v < u takes
	// its id at v; u inherits it.
	parent = growInt32(parent, n)
	coarseN := 0
	for v := 0; v < n; v++ {
		if int(match[v]) < v {
			parent[v] = parent[match[v]]
			continue
		}
		parent[v] = int32(coarseN)
		coarseN++
	}

	// Member lists: memA is the id-owning member, memB its mate (-1 single).
	ws.memA = growInt32(ws.memA, coarseN)
	ws.memB = growInt32(ws.memB, coarseN)
	for v := 0; v < n; v++ {
		if int(match[v]) < v {
			continue
		}
		c := parent[v]
		ws.memA[c] = int32(v)
		if int(match[v]) == v {
			ws.memB[c] = -1
		} else {
			ws.memB[c] = match[v]
		}
	}

	// Assemble coarse rows: merge the members' neighbor lists, mapping
	// through parent and summing duplicate weights; internal edges vanish.
	dst.reset(coarseN)
	ws.stamp = growInt32(ws.stamp, coarseN)
	ws.pos = growInt32(ws.pos, coarseN)
	for i := range ws.stamp {
		ws.stamp[i] = -1
	}
	for c := 0; c < coarseN; c++ {
		start := len(dst.Col)
		nodeW := int32(0)
		for _, m := range [2]int32{ws.memA[c], ws.memB[c]} {
			if m < 0 {
				continue
			}
			nodeW += g.NodeW[m]
			row, roww := g.Row(int(m)), g.RowW(int(m))
			for e, u := range row {
				cu := parent[u]
				if int(cu) == c {
					continue
				}
				if ws.stamp[cu] != int32(c) {
					ws.stamp[cu] = int32(c)
					ws.pos[cu] = int32(len(dst.Col))
					dst.Col = append(dst.Col, cu)
					dst.W = append(dst.W, roww[e])
				} else {
					dst.W[ws.pos[cu]] += roww[e]
				}
			}
		}
		sortColW(dst.Col[start:], dst.W[start:])
		deg := 0.0
		for _, w := range dst.W[start:] {
			deg += w
		}
		dst.NodeW[c] = nodeW
		dst.Deg[c] = deg
		dst.RowPtr[c+1] = int32(len(dst.Col))
	}
	dst.RowPtr[0] = 0
	return parent, matched
}

// sortColW sorts the (col, w) pairs by ascending col with a shellsort —
// deterministic, in place, and allocation-free (rows are short; the gap
// sequence keeps pathological hub rows near O(d^1.3)).
func sortColW(col []int32, w []float64) {
	n := len(col)
	gap := 1
	for gap < n/3 {
		gap = 3*gap + 1
	}
	for ; gap > 0; gap /= 3 {
		for i := gap; i < n; i++ {
			c, x := col[i], w[i]
			j := i
			for ; j >= gap && col[j-gap] > c; j -= gap {
				col[j], w[j] = col[j-gap], w[j-gap]
			}
			col[j], w[j] = c, x
		}
	}
}
