// Package netlist converts a hybrid crossbar/synapse assignment into the
// cell-and-wire netlist consumed by the placement and routing stages. Cells
// are mixed-size (crossbars, neurons, discrete synapses) and are not
// required to align into rows; wires are two-pin with RC-derived weights
// (Section 3.5).
package netlist

import (
	"fmt"

	"repro/internal/xbar"
)

// CellKind discriminates the three cell types of the physical design.
type CellKind int

// The cell kinds of the hybrid NCS.
const (
	KindCrossbar CellKind = iota
	KindNeuron
	KindSynapse
)

// String returns the kind name.
func (k CellKind) String() string {
	switch k {
	case KindCrossbar:
		return "crossbar"
	case KindNeuron:
		return "neuron"
	case KindSynapse:
		return "synapse"
	default:
		return fmt.Sprintf("CellKind(%d)", int(k))
	}
}

// Cell is one placeable component.
type Cell struct {
	ID    int
	Kind  CellKind
	W, H  float64 // physical footprint in µm
	Delay float64 // intrinsic component delay in ns (0 for neurons)
	// Ref identifies the source object: the crossbar index within the
	// assignment, the global neuron id, or the synapse index.
	Ref int
}

// Area returns the cell footprint in µm².
func (c Cell) Area() float64 { return c.W * c.H }

// Wire is a two-pin connection between cells.
type Wire struct {
	ID       int
	From, To int     // cell IDs
	Weight   float64 // placement weight (RC-derived criticality)
}

// Netlist is the physical design input: cells plus weighted wires.
type Netlist struct {
	Cells []Cell
	Wires []Wire
	// NeuronCell maps a global neuron id to its cell ID (only neurons that
	// participate in at least one connection get a cell).
	NeuronCell map[int]int
}

// TotalCellArea returns the summed footprint of all cells.
func (nl *Netlist) TotalCellArea() float64 {
	a := 0.0
	for _, c := range nl.Cells {
		a += c.Area()
	}
	return a
}

// Validate checks structural sanity: wire endpoints exist and differ, and
// dimensions are positive.
func (nl *Netlist) Validate() error {
	for _, c := range nl.Cells {
		if c.W <= 0 || c.H <= 0 {
			return fmt.Errorf("netlist: cell %d has non-positive size %g×%g", c.ID, c.W, c.H)
		}
		if c.ID < 0 || c.ID >= len(nl.Cells) || nl.Cells[c.ID].ID != c.ID {
			return fmt.Errorf("netlist: cell %d mis-indexed", c.ID)
		}
	}
	for _, w := range nl.Wires {
		if w.From < 0 || w.From >= len(nl.Cells) || w.To < 0 || w.To >= len(nl.Cells) {
			return fmt.Errorf("netlist: wire %d endpoint out of range", w.ID)
		}
		if w.From == w.To {
			return fmt.Errorf("netlist: wire %d is a self-loop on cell %d", w.ID, w.From)
		}
		if w.Weight <= 0 {
			return fmt.Errorf("netlist: wire %d has non-positive weight %g", w.ID, w.Weight)
		}
	}
	return nil
}

// Build constructs the netlist of an assignment under the given device
// model:
//
//   - one neuron cell per neuron that appears in any crossbar connection or
//     synapse;
//   - one crossbar cell per assignment crossbar, wired from each distinct
//     source neuron of its connections and to each distinct target neuron;
//   - one synapse cell per discrete synapse, wired from its source neuron
//     and to its target neuron.
//
// Wire weights follow the RC criticality model: a wire attached to a slower
// component carries a higher weight so placement keeps it short.
func Build(a *xbar.Assignment, dev xbar.DeviceModel) (*Netlist, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	nl := &Netlist{NeuronCell: map[int]int{}}
	addCell := func(kind CellKind, w, h, delay float64, ref int) int {
		id := len(nl.Cells)
		nl.Cells = append(nl.Cells, Cell{ID: id, Kind: kind, W: w, H: h, Delay: delay, Ref: ref})
		return id
	}
	neuronCell := func(n int) int {
		if id, ok := nl.NeuronCell[n]; ok {
			return id
		}
		id := addCell(KindNeuron, dev.NeuronSide, dev.NeuronSide, 0, n)
		nl.NeuronCell[n] = id
		return id
	}
	addWire := func(from, to int, weight float64) {
		nl.Wires = append(nl.Wires, Wire{ID: len(nl.Wires), From: from, To: to, Weight: weight})
	}

	for xi, cb := range a.Crossbars {
		if cb.Used() == 0 {
			continue // an unused crossbar contributes no hardware
		}
		side := dev.CrossbarSide(cb.Size)
		delay := dev.CrossbarDelay(cb.Size)
		weight := dev.WireWeight(delay)
		cbCell := addCell(KindCrossbar, side, side, delay, xi)
		drives := map[int]bool{}
		fed := map[int]bool{}
		for _, e := range cb.Conns {
			drives[e.From] = true
			fed[e.To] = true
		}
		// Deterministic wire order: ascending neuron id.
		for _, n := range sortedKeys(drives) {
			addWire(neuronCell(n), cbCell, weight)
		}
		for _, n := range sortedKeys(fed) {
			addWire(cbCell, neuronCell(n), weight)
		}
	}
	synWeight := dev.WireWeight(dev.SynapseDelay)
	for si, e := range a.Synapses {
		synCell := addCell(KindSynapse, dev.SynapseSide, dev.SynapseSide, dev.SynapseDelay, si)
		addWire(neuronCell(e.From), synCell, synWeight)
		addWire(synCell, neuronCell(e.To), synWeight)
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
