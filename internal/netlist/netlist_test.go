package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/xbar"
)

// tinyAssignment: one crossbar over {0,1,2} realizing a triangle, one
// discrete synapse 3→4.
func tinyAssignment() *xbar.Assignment {
	return &xbar.Assignment{
		N:     5,
		Total: 7,
		Crossbars: []xbar.Crossbar{{
			Size:    16,
			Inputs:  []int{0, 1, 2},
			Outputs: []int{0, 1, 2},
			Conns: []graph.Edge{
				{From: 0, To: 1}, {From: 1, To: 0},
				{From: 0, To: 2}, {From: 2, To: 0},
				{From: 1, To: 2}, {From: 2, To: 1},
			},
		}},
		Synapses: []graph.Edge{{From: 3, To: 4}},
	}
}

func TestBuildStructure(t *testing.T) {
	dev := xbar.Default45nm()
	nl, err := Build(tinyAssignment(), dev)
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Cells: 1 crossbar + 5 neurons + 1 synapse = 7.
	counts := map[CellKind]int{}
	for _, c := range nl.Cells {
		counts[c.Kind]++
	}
	if counts[KindCrossbar] != 1 || counts[KindNeuron] != 5 || counts[KindSynapse] != 1 {
		t.Fatalf("cell counts = %v", counts)
	}
	// Wires: 3 into + 3 out of crossbar, 2 around the synapse = 8.
	if len(nl.Wires) != 8 {
		t.Fatalf("wires = %d, want 8", len(nl.Wires))
	}
	// Neuron map covers exactly the participating neurons.
	if len(nl.NeuronCell) != 5 {
		t.Fatalf("NeuronCell has %d entries, want 5", len(nl.NeuronCell))
	}
}

func TestBuildGeometryAndDelay(t *testing.T) {
	dev := xbar.Default45nm()
	nl, err := Build(tinyAssignment(), dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range nl.Cells {
		switch c.Kind {
		case KindCrossbar:
			if c.W != dev.CrossbarSide(16) || c.Delay != dev.CrossbarDelay(16) {
				t.Errorf("crossbar cell geometry/delay wrong: %+v", c)
			}
		case KindNeuron:
			if c.W != dev.NeuronSide || c.Delay != 0 {
				t.Errorf("neuron cell wrong: %+v", c)
			}
		case KindSynapse:
			if c.W != dev.SynapseSide || c.Delay != dev.SynapseDelay {
				t.Errorf("synapse cell wrong: %+v", c)
			}
		}
	}
}

func TestBuildSkipsEmptyCrossbar(t *testing.T) {
	a := &xbar.Assignment{
		N:         2,
		Total:     1,
		Crossbars: []xbar.Crossbar{{Size: 16, Inputs: []int{0}, Outputs: []int{0}}},
		Synapses:  []graph.Edge{{From: 0, To: 1}},
	}
	nl, err := Build(a, xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range nl.Cells {
		if c.Kind == KindCrossbar {
			t.Fatal("empty crossbar produced a cell")
		}
	}
}

func TestBuildWireWeightsFollowDeviceDelay(t *testing.T) {
	// Wire weights derive from the attached device's delay: every wire
	// must carry exactly WireWeight(device delay).
	dev := xbar.Default45nm()
	nl, err := Build(tinyAssignment(), dev)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range nl.Wires {
		dev1, dev2 := nl.Cells[w.From], nl.Cells[w.To]
		deviceDelay := dev1.Delay + dev2.Delay // one endpoint is a neuron (0)
		want := dev.WireWeight(deviceDelay)
		if w.Weight != want {
			t.Fatalf("wire %d weight %g, want %g", w.ID, w.Weight, want)
		}
	}
	// A max-size crossbar's wires must outweigh synapse wires.
	if dev.WireWeight(dev.CrossbarDelay(64)) <= dev.WireWeight(dev.SynapseDelay) {
		t.Fatal("64-crossbar wire weight not above synapse wire weight")
	}
}

func TestBuildRejectsBadDevice(t *testing.T) {
	dev := xbar.Default45nm()
	dev.NeuronSide = -1
	if _, err := Build(tinyAssignment(), dev); err == nil {
		t.Fatal("bad device model accepted")
	}
}

func TestBuildFromFullFlow(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cm := graph.RandomSparse(100, 0.93, rng)
	a := xbar.FullCro(cm, xbar.DefaultLibrary())
	nl, err := Build(a, xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	if nl.TotalCellArea() <= 0 {
		t.Fatal("non-positive total area")
	}
	// Every neuron that carries a connection must have a cell.
	for _, n := range cm.ActiveNeurons() {
		if _, ok := nl.NeuronCell[n]; !ok {
			t.Fatalf("active neuron %d has no cell", n)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	nl, err := Build(tinyAssignment(), xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	bad := *nl
	bad.Wires = append([]Wire(nil), nl.Wires...)
	bad.Wires[0].To = bad.Wires[0].From
	if bad.Validate() == nil {
		t.Error("self-loop wire accepted")
	}
	bad.Wires[0] = nl.Wires[0]
	bad.Wires[1].Weight = 0
	if bad.Validate() == nil {
		t.Error("zero-weight wire accepted")
	}
	bad.Wires[1] = nl.Wires[1]
	bad.Wires[2].To = 999
	if bad.Validate() == nil {
		t.Error("out-of-range endpoint accepted")
	}
}

func TestCellKindString(t *testing.T) {
	if KindCrossbar.String() != "crossbar" || KindNeuron.String() != "neuron" ||
		KindSynapse.String() != "synapse" {
		t.Error("kind names wrong")
	}
	if CellKind(9).String() == "" {
		t.Error("unknown kind renders empty")
	}
}
