package kmeans

import (
	"math/rand"
	"testing"
)

// TestRunWorkerInvariance is the package-level determinism contract: the
// clustering result — assignments, centroids, and iteration count — is
// bit-identical for every worker count, because the assignment step is
// per-point independent and the centroid update accumulates each cluster's
// members in ascending point order regardless of pool size.
func TestRunWorkerInvariance(t *testing.T) {
	for _, tc := range []struct {
		n, d, k int
		seed    int64
	}{
		{120, 3, 5, 1},
		{257, 7, 9, 2},
		{64, 2, 64, 3}, // k == n: singleton clusters
	} {
		run := func(workers int) *Result {
			rng := rand.New(rand.NewSource(tc.seed))
			points := make([][]float64, tc.n)
			for i := range points {
				points[i] = make([]float64, tc.d)
				for j := range points[i] {
					points[i][j] = rng.NormFloat64()
				}
			}
			return RunN(points, tc.k, rand.New(rand.NewSource(tc.seed+100)), workers)
		}
		want := run(1)
		for _, workers := range []int{2, 4, 17} {
			got := run(workers)
			if got.Iterations != want.Iterations {
				t.Fatalf("n=%d workers=%d: %d iterations vs %d serial",
					tc.n, workers, got.Iterations, want.Iterations)
			}
			for i := range want.Assign {
				if got.Assign[i] != want.Assign[i] {
					t.Fatalf("n=%d workers=%d: point %d assigned to %d, serial says %d",
						tc.n, workers, i, got.Assign[i], want.Assign[i])
				}
			}
			for c := range want.Centroids {
				for j := range want.Centroids[c] {
					if got.Centroids[c][j] != want.Centroids[c][j] {
						t.Fatalf("n=%d workers=%d: centroid[%d][%d] = %g, serial %g (must be bit-identical)",
							tc.n, workers, c, j, got.Centroids[c][j], want.Centroids[c][j])
					}
				}
			}
		}
	}
}

// TestSplitWorkerInvariance: the 2-means split used by GCP obeys the same
// contract.
func TestSplitWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points := make([][]float64, 90)
	for i := range points {
		points[i] = []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
	}
	members := make([]int, 0, 60)
	for i := 0; i < 60; i++ {
		members = append(members, i)
	}
	a1, b1, _, _ := SplitN(points, members, rand.New(rand.NewSource(9)), 1)
	for _, workers := range []int{2, 8} {
		a, b, _, _ := SplitN(points, members, rand.New(rand.NewSource(9)), workers)
		if !equalInts(a, a1) || !equalInts(b, b1) {
			t.Fatalf("workers=%d: split differs from serial", workers)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
