// Package kmeans implements Lloyd's k-means algorithm over dense points,
// with k-means++ seeding, deterministic behaviour under a caller-supplied
// random source, empty-cluster repair, and the "split one cluster into two"
// primitive required by the greedy cluster size prediction (GCP) step of
// AutoNCS.
//
// The hot Lloyd kernels — nearest-centroid assignment and per-cluster
// centroid accumulation — run on a bounded worker pool (the *N variants).
// Both are arranged so the result is bit-identical for any worker count:
// assignment is per-point independent, and each cluster's coordinate sum is
// accumulated by exactly one worker in ascending member order, the same
// order the serial loop uses. All random choices (seeding, tie breaks,
// empty-cluster repair) stay on the caller's goroutine, so the rng stream
// is consumed in a fixed order.
package kmeans

import (
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"repro/internal/parallel"
)

// Result holds a clustering of n points into k clusters.
type Result struct {
	// Assign[i] is the cluster index of point i, in [0, K).
	Assign []int
	// Centroids[c] is the mean of the points assigned to cluster c.
	Centroids [][]float64
	// Inertia is the sum of squared distances of points to their centroid.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// K returns the number of clusters.
func (r *Result) K() int { return len(r.Centroids) }

// Members returns the point indices of each cluster, in ascending order
// within a cluster.
func (r *Result) Members() [][]int {
	out := make([][]int, r.K())
	for i, c := range r.Assign {
		out[c] = append(out[c], i)
	}
	return out
}

// maxIterations bounds the Lloyd loop; convergence is typically far faster.
const maxIterations = 200

// Workspace holds the reusable per-run buffers of the Lloyd loop: the
// assignment vector, per-cluster counts and member lists, and the k-means++
// seeding distances. A zero Workspace is ready to use; buffers grow on
// demand and persist between runs, so a caller clustering repeatedly (the
// GCP split loop inside every ISC iteration) stops paying the per-run
// allocations. Reuse never changes results: every buffer is fully
// (re)initialized before it is read.
//
// A workspace must not be shared by concurrent runs, and the Assign slice
// of a Result produced with a workspace is only valid until the workspace's
// next run (call Members or copy it first). Centroids are always freshly
// allocated and stay valid.
type Workspace struct {
	assign  []int
	counts  []int
	members [][]int
	d2      []float64
	sub     [][]float64
}

func (ws *Workspace) forN(n int) []int {
	if cap(ws.assign) < n {
		ws.assign = make([]int, n)
	}
	ws.assign = ws.assign[:n]
	return ws.assign
}

func (ws *Workspace) forK(k int) ([]int, [][]int) {
	if cap(ws.counts) < k {
		ws.counts = make([]int, k)
	}
	ws.counts = ws.counts[:k]
	for cap(ws.members) < k {
		ws.members = append(ws.members[:cap(ws.members)], nil)
	}
	ws.members = ws.members[:k]
	return ws.counts, ws.members
}

// Run clusters the points into k clusters using Lloyd's algorithm with
// k-means++ seeding from rng. It panics on invalid input (k <= 0, k > n,
// ragged points). Empty clusters are repaired by reseeding at the point
// farthest from its assigned centroid, so every returned cluster is
// non-empty.
func Run(points [][]float64, k int, rng *rand.Rand) *Result {
	return RunN(points, k, rng, 1)
}

// RunN is Run on a bounded worker pool (0 = the parallel package default).
// The result is bit-identical to Run for every worker count.
func RunN(points [][]float64, k int, rng *rand.Rand, workers int) *Result {
	return RunWS(nil, points, k, rng, workers)
}

// RunWS is RunN drawing all per-run buffers from ws (nil = allocate fresh).
func RunWS(ws *Workspace, points [][]float64, k int, rng *rand.Rand, workers int) *Result {
	n := len(points)
	if k <= 0 {
		panic(fmt.Sprintf("kmeans: k = %d must be positive", k))
	}
	if k > n {
		panic(fmt.Sprintf("kmeans: k = %d exceeds point count %d", k, n))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("kmeans: point %d has dim %d, want %d", i, len(p), dim))
		}
	}
	if ws == nil {
		ws = &Workspace{}
	}
	centroids := seedPlusPlus(ws, points, k, rng)
	return lloyd(ws, points, centroids, rng, workers)
}

// RunWithCentroids clusters points starting from the provided centroids
// (copied, not mutated). Used by GCP, which maintains its own centroid set B
// across splits. The number of clusters is len(centroids).
func RunWithCentroids(points [][]float64, centroids [][]float64, rng *rand.Rand) *Result {
	return RunWithCentroidsN(points, centroids, rng, 1)
}

// RunWithCentroidsN is RunWithCentroids on a bounded worker pool.
func RunWithCentroidsN(points [][]float64, centroids [][]float64, rng *rand.Rand, workers int) *Result {
	return RunWithCentroidsWS(nil, points, centroids, rng, workers)
}

// RunWithCentroidsWS is RunWithCentroidsN drawing per-run buffers from ws
// (nil = allocate fresh).
func RunWithCentroidsWS(ws *Workspace, points [][]float64, centroids [][]float64, rng *rand.Rand, workers int) *Result {
	if len(centroids) == 0 {
		panic("kmeans: no centroids")
	}
	if len(centroids) > len(points) {
		panic(fmt.Sprintf("kmeans: %d centroids exceed %d points", len(centroids), len(points)))
	}
	dim := len(points[0])
	init := make([][]float64, len(centroids))
	for i, c := range centroids {
		if len(c) != dim {
			panic(fmt.Sprintf("kmeans: centroid %d has dim %d, want %d", i, len(c), dim))
		}
		init[i] = append([]float64(nil), c...)
	}
	if ws == nil {
		ws = &Workspace{}
	}
	return lloyd(ws, points, init, rng, workers)
}

// assignPoints is the Lloyd assignment pass: each point moves to its
// nearest centroid, per-point independent (and therefore worker-count
// independent). It reports whether any assignment changed. The kernel is
// allocation-free for workers=1.
func assignPoints(workers int, points, centroids [][]float64, assign []int) bool {
	var changed atomic.Bool
	parallel.For(workers, len(points), func(i int) {
		p := points[i]
		best, bestD := 0, math.Inf(1)
		for c, cent := range centroids {
			if d := sqDist(p, cent); d < bestD {
				best, bestD = c, d
			}
		}
		if assign[i] != best {
			assign[i] = best
			changed.Store(true)
		}
	})
	return changed.Load()
}

// lloyd iterates assignment and centroid updates until assignments stop
// changing or maxIterations is hit. It repairs empty clusters. The two
// per-point kernels run on the worker pool; both are bit-identical to the
// serial loop for any worker count (see the package comment). Per-run
// buffers come from ws.
func lloyd(ws *Workspace, points, centroids [][]float64, rng *rand.Rand, workers int) *Result {
	n, k := len(points), len(centroids)
	assign := ws.forN(n)
	for i := range assign {
		assign[i] = -1
	}
	counts, members := ws.forK(k)
	iter := 0
	for ; iter < maxIterations; iter++ {
		if !assignPoints(workers, points, centroids, assign) && iter > 0 {
			break
		}
		// Update centroids: member lists are gathered serially in ascending
		// point order, then each cluster's coordinate sum is accumulated by
		// one worker over its members in that same order — the exact
		// floating-point order of the serial accumulation.
		for c := range members {
			members[c] = members[c][:0]
		}
		for i := 0; i < n; i++ {
			members[assign[i]] = append(members[assign[i]], i)
		}
		dim := len(points[0])
		parallel.For(workers, k, func(c int) {
			counts[c] = len(members[c])
			cent := centroids[c]
			for d := 0; d < dim; d++ {
				cent[d] = 0
			}
			for _, i := range members[c] {
				for d, v := range points[i] {
					cent[d] += v
				}
			}
		})
		for c := range centroids {
			if counts[c] == 0 {
				// Empty cluster: reseed at the point farthest from its
				// current centroid (deterministic given rng state: the rng
				// only breaks exact ties).
				centroids[c] = append([]float64(nil), points[farthestPoint(points, centroids, assign, rng)]...)
				continue
			}
			inv := 1 / float64(counts[c])
			for d := range centroids[c] {
				centroids[c][d] *= inv
			}
		}
	}
	inertia := 0.0
	for i, p := range points {
		inertia += sqDist(p, centroids[assign[i]])
	}
	return &Result{Assign: assign, Centroids: centroids, Inertia: inertia, Iterations: iter}
}

// farthestPoint returns the index of the point with maximum distance to its
// assigned centroid; rng breaks exact ties uniformly.
func farthestPoint(points, centroids [][]float64, assign []int, rng *rand.Rand) int {
	best, bestD, ties := 0, -1.0, 1
	for i, p := range points {
		d := sqDist(p, centroids[assign[i]])
		switch {
		case d > bestD:
			best, bestD, ties = i, d, 1
		case d == bestD:
			ties++
			if rng.Intn(ties) == 0 {
				best = i
			}
		}
	}
	return best
}

// seedPlusPlus chooses k initial centroids by the k-means++ scheme, using
// ws for the squared-distance scratch. Centroids are freshly allocated.
func seedPlusPlus(ws *Workspace, points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := rng.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	if cap(ws.d2) < n {
		ws.d2 = make([]float64, n)
	}
	d2 := ws.d2[:n]
	for i, p := range points {
		d2[i] = sqDist(p, centroids[0])
	}
	for len(centroids) < k {
		total := 0.0
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			// All remaining points coincide with a centroid; pick uniformly.
			pick = rng.Intn(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), points[pick]...)
		centroids = append(centroids, c)
		for i, p := range points {
			if d := sqDist(p, c); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}

// Split partitions the given member points into two sub-clusters with
// 2-means and returns the two member index lists (indices into members) and
// the two centroids. If all points coincide, the split is by index halves so
// progress is always made. len(members) must be at least 2.
func Split(points [][]float64, members []int, rng *rand.Rand) (a, b []int, ca, cb []float64) {
	return SplitN(points, members, rng, 1)
}

// SplitN is Split on a bounded worker pool.
func SplitN(points [][]float64, members []int, rng *rand.Rand, workers int) (a, b []int, ca, cb []float64) {
	return SplitWS(nil, points, members, rng, workers)
}

// SplitWS is SplitN drawing per-run buffers from ws (nil = allocate fresh).
// The returned member lists and centroids are freshly allocated.
func SplitWS(ws *Workspace, points [][]float64, members []int, rng *rand.Rand, workers int) (a, b []int, ca, cb []float64) {
	if len(members) < 2 {
		panic(fmt.Sprintf("kmeans: cannot split cluster of size %d", len(members)))
	}
	if ws == nil {
		ws = &Workspace{}
	}
	if cap(ws.sub) < len(members) {
		ws.sub = make([][]float64, len(members))
	}
	sub := ws.sub[:len(members)]
	for i, m := range members {
		sub[i] = points[m]
	}
	res := RunWS(ws, sub, 2, rng, workers)
	for i, c := range res.Assign {
		if c == 0 {
			a = append(a, members[i])
		} else {
			b = append(b, members[i])
		}
	}
	if len(a) == 0 || len(b) == 0 {
		// Degenerate geometry (identical points): split by halves.
		half := len(members) / 2
		a = append([]int(nil), members[:half]...)
		b = append([]int(nil), members[half:]...)
		ca = centroidOf(points, a)
		cb = centroidOf(points, b)
		return a, b, ca, cb
	}
	return a, b, res.Centroids[0], res.Centroids[1]
}

// centroidOf returns the mean of the selected points.
func centroidOf(points [][]float64, idx []int) []float64 {
	dim := len(points[0])
	c := make([]float64, dim)
	for _, i := range idx {
		for d, v := range points[i] {
			c[d] += v
		}
	}
	inv := 1 / float64(len(idx))
	for d := range c {
		c[d] *= inv
	}
	return c
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
