package kmeans

import (
	"math/rand"
	"testing"
)

// TestAssignPassAllocs pins the Lloyd assignment kernel: one full
// nearest-centroid pass over the points performs no allocation beyond the
// bounded worker-dispatch residue.
func TestAssignPassAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	points := make([][]float64, 400)
	for i := range points {
		p := make([]float64, 6)
		for d := range p {
			p[d] = rng.NormFloat64()
		}
		points[i] = p
	}
	centroids := make([][]float64, 8)
	for c := range centroids {
		centroids[c] = append([]float64(nil), points[c*40]...)
	}
	assign := make([]int, len(points))
	allocs := testing.AllocsPerRun(20, func() {
		assignPoints(1, points, centroids, assign)
	})
	if allocs > 2 {
		t.Fatalf("assignment pass allocated %.1f times, want ≤ 2", allocs)
	}
}

// TestWorkspaceReuseMatchesFresh pins workspace transparency: repeated runs
// on one workspace produce the same clustering as fresh runs.
func TestWorkspaceReuseMatchesFresh(t *testing.T) {
	mk := func(seed int64) [][]float64 {
		rng := rand.New(rand.NewSource(seed))
		pts := make([][]float64, 120)
		for i := range pts {
			p := make([]float64, 4)
			for d := range p {
				p[d] = rng.NormFloat64()
			}
			pts[i] = p
		}
		return pts
	}
	var ws Workspace
	for trial, seed := range []int64{3, 17, 99} {
		pts := mk(seed)
		fresh := RunN(pts, 7, rand.New(rand.NewSource(seed)), 1)
		reused := RunWS(&ws, pts, 7, rand.New(rand.NewSource(seed)), 1)
		fm, rm := fresh.Members(), reused.Members()
		if len(fm) != len(rm) {
			t.Fatalf("trial %d: %d vs %d clusters", trial, len(fm), len(rm))
		}
		for c := range fm {
			if len(fm[c]) != len(rm[c]) {
				t.Fatalf("trial %d cluster %d: size %d vs %d", trial, c, len(fm[c]), len(rm[c]))
			}
			for i := range fm[c] {
				if fm[c][i] != rm[c][i] {
					t.Fatalf("trial %d cluster %d member %d: %d vs %d", trial, c, i, fm[c][i], rm[c][i])
				}
			}
		}
		if fresh.Inertia != reused.Inertia {
			t.Fatalf("trial %d: inertia %g vs %g", trial, fresh.Inertia, reused.Inertia)
		}
	}
}
