package kmeans

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates k Gaussian blobs of count points each around well
// separated centers.
func blobs(k, count int, rng *rand.Rand) (points [][]float64, label []int) {
	for c := 0; c < k; c++ {
		cx, cy := float64(c*20), float64((c%2)*20)
		for i := 0; i < count; i++ {
			points = append(points, []float64{cx + rng.NormFloat64(), cy + rng.NormFloat64()})
			label = append(label, c)
		}
	}
	return points, label
}

func TestRunRecoversSeparatedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	points, label := blobs(4, 30, rng)
	res := Run(points, 4, rng)
	// Every true blob must map to exactly one k-means cluster.
	blobToCluster := map[int]int{}
	for i, l := range label {
		c := res.Assign[i]
		if prev, ok := blobToCluster[l]; ok {
			if prev != c {
				t.Fatalf("blob %d split across clusters %d and %d", l, prev, c)
			}
		} else {
			blobToCluster[l] = c
		}
	}
	if len(blobToCluster) != 4 {
		t.Fatalf("recovered %d clusters, want 4", len(blobToCluster))
	}
}

func TestRunInvalidInputsPanic(t *testing.T) {
	pts := [][]float64{{0}, {1}}
	for name, f := range map[string]func(){
		"k=0":    func() { Run(pts, 0, rand.New(rand.NewSource(1))) },
		"k>n":    func() { Run(pts, 3, rand.New(rand.NewSource(1))) },
		"ragged": func() { Run([][]float64{{0}, {1, 2}}, 1, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRunKEqualsN(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 1}, {2, 2}}
	res := Run(pts, 3, rand.New(rand.NewSource(1)))
	seen := map[int]bool{}
	for _, c := range res.Assign {
		seen[c] = true
	}
	if len(seen) != 3 {
		t.Fatalf("k=n should give singleton clusters, got assign %v", res.Assign)
	}
	if res.Inertia > 1e-12 {
		t.Fatalf("k=n inertia = %g, want 0", res.Inertia)
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	pts := [][]float64{{5, 5}, {5, 5}, {5, 5}, {5, 5}}
	res := Run(pts, 2, rand.New(rand.NewSource(1)))
	if res.K() != 2 {
		t.Fatalf("K = %d, want 2", res.K())
	}
	// All clusters non-empty is guaranteed by repair... but with identical
	// points the farthest-point repair may keep one empty assignment set;
	// what matters is the result is well formed.
	if len(res.Assign) != 4 {
		t.Fatalf("Assign length %d", len(res.Assign))
	}
}

func TestMembersPartition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	points, _ := blobs(3, 20, rng)
	res := Run(points, 3, rng)
	members := res.Members()
	seen := make([]bool, len(points))
	for _, ms := range members {
		for _, m := range ms {
			if seen[m] {
				t.Fatalf("point %d in two clusters", m)
			}
			seen[m] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("point %d in no cluster", i)
		}
	}
}

func TestDeterminism(t *testing.T) {
	points, _ := blobs(3, 25, rand.New(rand.NewSource(3)))
	a := Run(points, 3, rand.New(rand.NewSource(42)))
	b := Run(points, 3, rand.New(rand.NewSource(42)))
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed produced different clusterings")
		}
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed produced different inertia")
	}
}

func TestRunWithCentroidsDoesNotMutateInput(t *testing.T) {
	points, _ := blobs(2, 10, rand.New(rand.NewSource(4)))
	init := [][]float64{{0, 0}, {20, 20}}
	initCopy := [][]float64{{0, 0}, {20, 20}}
	Run0 := RunWithCentroids(points, init, rand.New(rand.NewSource(1)))
	if Run0.K() != 2 {
		t.Fatalf("K = %d", Run0.K())
	}
	for i := range init {
		for d := range init[i] {
			if init[i][d] != initCopy[i][d] {
				t.Fatal("RunWithCentroids mutated caller centroids")
			}
		}
	}
}

func TestRunWithCentroidsPanics(t *testing.T) {
	pts := [][]float64{{0}, {1}}
	for name, f := range map[string]func(){
		"empty":    func() { RunWithCentroids(pts, nil, rand.New(rand.NewSource(1))) },
		"too many": func() { RunWithCentroids(pts, [][]float64{{0}, {1}, {2}}, rand.New(rand.NewSource(1))) },
		"bad dim":  func() { RunWithCentroids(pts, [][]float64{{0, 1}}, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSplitSeparatesTwoBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var points [][]float64
	for i := 0; i < 10; i++ {
		points = append(points, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	for i := 0; i < 10; i++ {
		points = append(points, []float64{50 + rng.NormFloat64(), rng.NormFloat64()})
	}
	members := make([]int, 20)
	for i := range members {
		members[i] = i
	}
	a, b, ca, cb := Split(points, members, rng)
	if len(a)+len(b) != 20 || len(a) == 0 || len(b) == 0 {
		t.Fatalf("split sizes %d + %d", len(a), len(b))
	}
	// The two centroids must be far apart (one per blob).
	if d := math.Hypot(ca[0]-cb[0], ca[1]-cb[1]); d < 25 {
		t.Fatalf("split centroids only %g apart", d)
	}
	// No index may appear in both halves.
	inA := map[int]bool{}
	for _, i := range a {
		inA[i] = true
	}
	for _, i := range b {
		if inA[i] {
			t.Fatalf("index %d in both halves", i)
		}
	}
}

func TestSplitIdenticalPointsMakesProgress(t *testing.T) {
	points := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	members := []int{0, 1, 2, 3, 4}
	a, b, _, _ := Split(points, members, rand.New(rand.NewSource(1)))
	if len(a) == 0 || len(b) == 0 {
		t.Fatalf("split of identical points gave sizes %d/%d; must both be positive", len(a), len(b))
	}
}

func TestSplitTooSmallPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Split of singleton did not panic")
		}
	}()
	Split([][]float64{{0}}, []int{0}, rand.New(rand.NewSource(1)))
}

// Property: the result is always a partition with k non-empty groups when
// points are in general position.
func TestPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		k := 1 + rng.Intn(5)
		if k > n {
			k = n
		}
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.NormFloat64() * 10, rng.NormFloat64() * 10}
		}
		res := Run(points, k, rng)
		if len(res.Assign) != n {
			return false
		}
		for _, c := range res.Assign {
			if c < 0 || c >= k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: inertia never exceeds the inertia of the trivial 1-clustering.
func TestInertiaImprovesOverSingleClusterProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(40)
		points := make([][]float64, n)
		for i := range points {
			points[i] = []float64{rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		}
		one := Run(points, 1, rand.New(rand.NewSource(seed)))
		three := Run(points, 3, rand.New(rand.NewSource(seed)))
		return three.Inertia <= one.Inertia+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
