// Package cost evaluates the physical cost of a placed-and-routed design
// following Eq. 3 of the paper: Cost = α·L + β·A + δ·T, where L is the
// total routed wirelength, A the placement area, and T the average wire
// delay. Per-wire delay combines the Elmore RC delay of the routed wire
// with the intrinsic delay of the device (crossbar or synapse) the wire
// attaches to.
package cost

import (
	"fmt"

	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/xbar"
)

// Params are the user-defined weights of Eq. 3. The paper's experiments set
// all three to 1.
type Params struct {
	Alpha float64 // wirelength weight
	Beta  float64 // area weight
	Delta float64 // delay weight
}

// DefaultParams returns α = β = δ = 1 (Section 4.3).
func DefaultParams() Params { return Params{Alpha: 1, Beta: 1, Delta: 1} }

// Report is the evaluated physical cost of one design.
type Report struct {
	Wirelength float64 // L: total routed wirelength, µm
	Area       float64 // A: placement bounding-box area, µm²
	AvgDelay   float64 // T: average wire delay, ns
	MaxDelay   float64 // worst single-wire delay, ns
	Cost       float64 // α·L + β·A + δ·T
	Wires      int     // number of wires evaluated
}

// Evaluate computes the report for a routed design. The wire delay model:
// every wire connects a neuron to a device cell (crossbar or discrete
// synapse); its delay is the device's intrinsic delay plus the Elmore delay
// of the routed wire length.
func Evaluate(nl *netlist.Netlist, pl *place.Result, rt *route.Result,
	dev xbar.DeviceModel, p Params) (*Report, error) {
	if err := dev.Validate(); err != nil {
		return nil, err
	}
	if len(rt.WireLength) != len(nl.Wires) {
		return nil, fmt.Errorf("cost: routing covers %d wires, netlist has %d",
			len(rt.WireLength), len(nl.Wires))
	}
	r := &Report{
		Wirelength: rt.Total,
		Area:       pl.Area(),
		Wires:      len(nl.Wires),
	}
	sum := 0.0
	for _, w := range nl.Wires {
		d := dev.WireDelay(rt.WireLength[w.ID])
		// Device intrinsic delay: the non-neuron endpoint.
		d += nl.Cells[w.From].Delay + nl.Cells[w.To].Delay
		sum += d
		if d > r.MaxDelay {
			r.MaxDelay = d
		}
	}
	if r.Wires > 0 {
		r.AvgDelay = sum / float64(r.Wires)
	}
	r.Cost = p.Alpha*r.Wirelength + p.Beta*r.Area + p.Delta*r.AvgDelay
	return r, nil
}

// Reduction returns the percent reduction of v versus baseline:
// 100·(baseline−v)/baseline. A zero baseline yields 0.
func Reduction(v, baseline float64) float64 {
	if baseline == 0 {
		return 0
	}
	return 100 * (baseline - v) / baseline
}
