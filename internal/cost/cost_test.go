package cost

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/xbar"
)

// routedDesign produces a small placed-and-routed design for evaluation.
func routedDesign(t *testing.T, seed int64) (*netlist.Netlist, *place.Result, *route.Result, xbar.DeviceModel) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cm := graph.RandomSparse(50, 0.9, rng)
	a := xbar.FullCro(cm, xbar.DefaultLibrary())
	dev := xbar.Default45nm()
	nl, err := netlist.Build(a, dev)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(nl, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := route.Route(nl, pl, route.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return nl, pl, rt, dev
}

func TestEvaluateBasic(t *testing.T) {
	nl, pl, rt, dev := routedDesign(t, 1)
	r, err := Evaluate(nl, pl, rt, dev, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Wirelength != rt.Total {
		t.Errorf("L = %g, want routed total %g", r.Wirelength, rt.Total)
	}
	if r.Area != pl.Area() {
		t.Errorf("A = %g, want placement area %g", r.Area, pl.Area())
	}
	if r.AvgDelay <= 0 || r.MaxDelay < r.AvgDelay {
		t.Errorf("delays implausible: avg %g max %g", r.AvgDelay, r.MaxDelay)
	}
	want := r.Wirelength + r.Area + r.AvgDelay
	if math.Abs(r.Cost-want) > 1e-9 {
		t.Errorf("Cost = %g, want %g", r.Cost, want)
	}
	if r.Wires != len(nl.Wires) {
		t.Errorf("Wires = %d, want %d", r.Wires, len(nl.Wires))
	}
}

func TestEvaluateParamsScaleComponents(t *testing.T) {
	nl, pl, rt, dev := routedDesign(t, 2)
	base, err := Evaluate(nl, pl, rt, dev, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := Evaluate(nl, pl, rt, dev, Params{Alpha: 2, Beta: 0, Delta: 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(scaled.Cost-2*base.Wirelength) > 1e-9 {
		t.Errorf("α-only cost = %g, want %g", scaled.Cost, 2*base.Wirelength)
	}
}

func TestEvaluateDelayDominatedByCrossbars(t *testing.T) {
	// All FullCro crossbars are size 64 → every crossbar wire carries
	// ~1.95 ns of device delay; wire RC adds little. The average must sit
	// near 1.95.
	nl, pl, rt, dev := routedDesign(t, 3)
	r, err := Evaluate(nl, pl, rt, dev, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgDelay < 1.5 || r.AvgDelay > 2.5 {
		t.Errorf("FullCro avg delay %g, want ≈1.95", r.AvgDelay)
	}
}

func TestEvaluateMismatchedRouting(t *testing.T) {
	nl, pl, rt, dev := routedDesign(t, 4)
	bad := *rt
	bad.WireLength = bad.WireLength[:len(bad.WireLength)-1]
	if _, err := Evaluate(nl, pl, &bad, dev, DefaultParams()); err == nil {
		t.Fatal("mismatched wire count accepted")
	}
}

func TestEvaluateBadDevice(t *testing.T) {
	nl, pl, rt, dev := routedDesign(t, 5)
	dev.SynapseDelay = -1
	if _, err := Evaluate(nl, pl, rt, dev, DefaultParams()); err == nil {
		t.Fatal("invalid device model accepted")
	}
}

func TestEvaluateEmptyDesign(t *testing.T) {
	nl := &netlist.Netlist{}
	pl := &place.Result{}
	rt := &route.Result{}
	r, err := Evaluate(nl, pl, rt, xbar.Default45nm(), DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.AvgDelay != 0 || r.Wirelength != 0 {
		t.Fatal("empty design has non-zero metrics")
	}
}

func TestReduction(t *testing.T) {
	if got := Reduction(50, 100); got != 50 {
		t.Errorf("Reduction(50,100) = %g, want 50", got)
	}
	if got := Reduction(150, 100); got != -50 {
		t.Errorf("Reduction(150,100) = %g, want -50", got)
	}
	if got := Reduction(1, 0); got != 0 {
		t.Errorf("Reduction with zero baseline = %g, want 0", got)
	}
}
