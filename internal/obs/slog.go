package obs

import "log/slog"

// slogObserver renders events as structured log records. Coarse events
// (compile start/end, stage boundaries, ISC iterations, capacity
// relaxations) log at Info; high-frequency events (placement checkpoints,
// route batches) log at Debug, so a handler at LevelInfo gives a readable
// per-stage trace and one at LevelDebug the full firehose.
type slogObserver struct {
	l *slog.Logger
}

// NewSlog returns an Observer that logs every event through l. The -v flag
// of the CLIs installs it with a LevelInfo stderr handler, -trace with
// LevelDebug.
func NewSlog(l *slog.Logger) Observer {
	return slogObserver{l: l}
}

func (s slogObserver) Observe(e Event) {
	switch e := e.(type) {
	case CompileStart:
		s.l.Info("compile start",
			"neurons", e.Neurons, "connections", e.Connections, "workers", e.Workers)
	case CompileEnd:
		if e.Err != nil {
			s.l.Info("compile end", "elapsed", e.Elapsed, "err", e.Err)
		} else {
			s.l.Info("compile end", "elapsed", e.Elapsed)
		}
	case StageStart:
		s.l.Info("stage start", "stage", string(e.Stage))
	case StageEnd:
		if e.Err != nil {
			s.l.Info("stage end", "stage", string(e.Stage), "elapsed", e.Elapsed, "err", e.Err)
		} else {
			s.l.Info("stage end", "stage", string(e.Stage), "elapsed", e.Elapsed)
		}
	case ISCIteration:
		s.l.Info("isc iteration",
			"iter", e.Index, "clusters", e.Clusters, "placed", e.Placed,
			"quartileCP", e.QuartileCP, "avgUtil", e.AvgUtilization,
			"threshold", e.Threshold, "outliers", e.OutlierRatio)
	case ClusterStats:
		s.l.Info("cluster stats",
			"mlRounds", e.MultilevelRounds, "flatRounds", e.FlatRounds,
			"levels", e.Levels, "maxDepth", e.MaxDepth,
			"matchings", e.Matchings, "eigensolves", e.Eigensolves,
			"warmStarts", e.WarmStarts, "lanczosSteps", e.LanczosSteps,
			"refineMoves", e.RefineMoves, "coarsenTime", e.CoarsenTime,
			"solveTime", e.SolveTime, "refineTime", e.RefineTime)
	case PlaceProgress:
		s.l.Debug("place progress",
			"outer", e.Outer, "step", e.Step, "lambda", e.Lambda,
			"hpwl", e.HPWL, "overlap", e.Overlap,
			"bestHPWL", e.BestHPWL, "bestOverlap", e.BestOverlap)
	case PlaceStats:
		s.l.Info("place stats",
			"outer", e.Outer, "fieldSolves", e.FieldSolves,
			"vCycles", e.VCycles, "fieldSweeps", e.FieldSweeps,
			"swapCandidates", e.SwapCandidates, "swapsAccepted", e.SwapsAccepted,
			"fieldTime", e.FieldTime, "detailTime", e.DetailTime)
	case RouteBatch:
		s.l.Debug("route batch",
			"batch", e.Batch, "wires", e.Wires, "committed", e.Committed,
			"retried", e.Retried, "failed", e.Failed, "capacity", e.Capacity)
	case RouteRelaxation:
		s.l.Info("route relaxation",
			"relaxations", e.Relaxations, "capacity", e.Capacity, "pending", e.Pending)
	case RouteStats:
		s.l.Info("route stats",
			"negotiated", e.Negotiated, "wires", e.Wires, "rounds", e.Rounds,
			"ripUps", e.RipUps, "expansions", e.Expansions,
			"overusedPeak", e.OverusedPeak, "relaxations", e.Relaxations,
			"finalCapacity", e.FinalCapacity)
	case CacheLookup:
		s.l.Info("cache lookup", "key", e.Key, "hit", e.Hit, "disk", e.Disk)
	case PeerLookup:
		s.l.Info("peer lookup",
			"key", e.Key, "peer", e.Peer, "hit", e.Hit, "err", e.Err, "elapsed", e.Elapsed)
	case DeltaStats:
		s.l.Info("delta stats",
			"edits", e.Edits, "added", e.AddedEdges, "removed", e.RemovedEdges,
			"touched", e.TouchedNeurons, "editRatio", e.EditRatio,
			"baseCrossbars", e.BaseCrossbars, "kept", e.KeptCrossbars,
			"dirty", e.DirtyCrossbars, "new", e.NewCrossbars,
			"residualConns", e.ResidualConns, "clusterReuse", e.ClusterReuseFrac,
			"seededCells", e.SeededCells, "placeReuse", e.PlaceReuseFrac,
			"reusedWires", e.ReusedWires, "reroutedWires", e.ReroutedWires,
			"routeReuse", e.RouteReuseFrac, "fullRoute", e.FullRoute)
	case RequestTiming:
		// One flat line per terminal job: every field scalar, fixed key
		// order, grep/CSV-friendly.
		s.l.Info("request timing",
			"job", e.Job, "key", e.Key, "priority", e.Priority,
			"coalesced", e.Coalesced, "cacheHit", e.CacheHit, "state", e.State,
			"admitWait", e.AdmitWait, "queueWait", e.QueueWait,
			"run", e.Run, "total", e.Total)
	}
}
