// Package obs is the passive observation layer of the compile flow: typed
// stage events that the pipeline emits as it runs, an Observer interface to
// receive them, and two ready-made observers (a slog-backed structured
// logger and a thread-safe metrics accumulator).
//
// Observers are strictly passive: they receive values that the flow has
// already computed for its own purposes and can neither mutate flow state
// nor perturb any floating-point result, so attaching one never changes a
// compile — the bit-exact any-worker-count determinism contract and the
// golden summaries hold with and without observation.
//
// Every event is delivered sequentially from the flow's single control
// goroutine (never from inside a worker pool), so an Observer implementation
// only needs internal synchronization if its own readers are concurrent.
package obs

import "time"

// Stage names one pipeline stage of the compile flow.
type Stage string

// The stages of the full AutoNCS flow, in execution order.
const (
	StageClustering Stage = "clustering"
	StageNetlist    Stage = "netlist"
	StagePlace      Stage = "place"
	StageRoute      Stage = "route"
	StageCost       Stage = "cost"
)

// Stages lists every stage in execution order, for deterministic iteration
// over per-stage maps.
func Stages() []Stage {
	return []Stage{StageClustering, StageNetlist, StagePlace, StageRoute, StageCost}
}

// Event is one typed observation from the compile flow. The concrete types
// below form a closed set; switch on them to consume.
type Event interface{ event() }

// CompileStart opens a compile: the input network and the worker knob.
type CompileStart struct {
	Neurons     int
	Connections int
	Workers     int // the Config value: 0 means the process default
}

// CompileEnd closes a compile with its total wall time; Err is non-nil when
// the flow failed (including cancellation).
type CompileEnd struct {
	Elapsed time.Duration
	Err     error
}

// StageStart marks a pipeline stage beginning.
type StageStart struct {
	Stage Stage
}

// StageEnd marks a pipeline stage finishing with its wall time; Err is
// non-nil when the stage failed.
type StageEnd struct {
	Stage   Stage
	Elapsed time.Duration
	Err     error
}

// ISCIteration records one round of the iterative spectral clustering loop:
// how many candidate clusters the round formed, the CP quartile selection
// threshold, how many crossbars were realized, and the placed-crossbar
// utilization against the stop threshold.
type ISCIteration struct {
	Index          int     // 1-based iteration number
	Clusters       int     // candidate clusters formed this round
	Placed         int     // crossbars realized this round
	QuartileCP     float64 // the CP selection threshold q
	AvgUtilization float64 // mean utilization of the crossbars placed
	Threshold      float64 // the stop threshold t the utilization is judged against
	OutlierRatio   float64 // remaining connections / total, after this round
}

// PlaceProgress records one progress checkpoint of the placement λ loop
// (every overlap evaluation, several per outer λ round): the current outer
// round, the penalty weight λ, the exact weighted HPWL, and the remaining
// physical overlap area.
type PlaceProgress struct {
	Outer   int     // 0-based outer λ round
	Step    int     // 1-based optimizer step within the budget
	Lambda  float64 // current density penalty weight
	HPWL    float64 // exact weighted HPWL at this checkpoint, µm
	Overlap float64 // total pairwise physical overlap area, µm²
}

// RouteBatch records one committed batch of the speculative maze router.
type RouteBatch struct {
	Batch     int // 1-based batch counter across the whole route
	Wires     int // wires speculatively searched in this batch
	Committed int // paths that fit and committed
	Retried   int // paths invalidated by a batch-mate, re-queued
	Failed    int // wires with no path under the current capacity
	Capacity  int // the virtual capacity the batch ran under
}

// RouteRelaxation records one capacity relaxation: the router raised the
// virtual edge capacity to re-route the wires that failed.
type RouteRelaxation struct {
	Relaxations int // total relaxations so far (1-based)
	Capacity    int // the new virtual capacity
	Pending     int // wires awaiting re-route under the new capacity
}

// CacheLookup records one content-addressed result-cache probe of the
// serving layer (cmd/autoncsd): a hit means the compile was answered from
// the store without running the flow. Emitted by the server, not by the
// compile pipeline itself — a bare CLI compile never produces one.
type CacheLookup struct {
	Key  string // lowercase-hex content address probed
	Hit  bool
	Disk bool // the hit was served by the on-disk layer
}

func (CompileStart) event()    {}
func (CompileEnd) event()      {}
func (StageStart) event()      {}
func (StageEnd) event()        {}
func (ISCIteration) event()    {}
func (PlaceProgress) event()   {}
func (RouteBatch) event()      {}
func (RouteRelaxation) event() {}
func (CacheLookup) event()     {}

// Observer receives the flow's events. Implementations must not block for
// long (they run on the flow's control goroutine) and must not assume any
// call concurrency — the flow delivers events one at a time.
type Observer interface {
	Observe(Event)
}

// Emit delivers e to o, tolerating a nil observer so call sites need no
// guard.
func Emit(o Observer, e Event) {
	if o != nil {
		o.Observe(e)
	}
}

// multi fans every event out to a fixed observer list, in order.
type multi []Observer

func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi combines observers into one that forwards every event to each
// non-nil observer in argument order. Nil arguments are dropped; with zero
// live observers it returns nil (which Emit ignores).
func Multi(os ...Observer) Observer {
	var live multi
	for _, o := range os {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
