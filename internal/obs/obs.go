// Package obs is the passive observation layer of the compile flow: typed
// stage events that the pipeline emits as it runs, an Observer interface to
// receive them, and two ready-made observers (a slog-backed structured
// logger and a thread-safe metrics accumulator).
//
// Observers are strictly passive: they receive values that the flow has
// already computed for its own purposes and can neither mutate flow state
// nor perturb any floating-point result, so attaching one never changes a
// compile — the bit-exact any-worker-count determinism contract and the
// golden summaries hold with and without observation.
//
// Every event is delivered sequentially from the flow's single control
// goroutine (never from inside a worker pool), so an Observer implementation
// only needs internal synchronization if its own readers are concurrent.
package obs

import "time"

// Stage names one pipeline stage of the compile flow.
type Stage string

// The stages of the full AutoNCS flow, in execution order.
const (
	StageClustering Stage = "clustering"
	StageNetlist    Stage = "netlist"
	StagePlace      Stage = "place"
	StageRoute      Stage = "route"
	StageCost       Stage = "cost"
)

// Stages lists every stage in execution order, for deterministic iteration
// over per-stage maps.
func Stages() []Stage {
	return []Stage{StageClustering, StageNetlist, StagePlace, StageRoute, StageCost}
}

// Event is one typed observation from the compile flow. The concrete types
// below form a closed set; switch on them to consume.
type Event interface{ event() }

// CompileStart opens a compile: the input network and the worker knob.
type CompileStart struct {
	Neurons     int
	Connections int
	Workers     int // the Config value: 0 means the process default
}

// CompileEnd closes a compile with its total wall time; Err is non-nil when
// the flow failed (including cancellation).
type CompileEnd struct {
	Elapsed time.Duration
	Err     error
}

// StageStart marks a pipeline stage beginning.
type StageStart struct {
	Stage Stage
}

// StageEnd marks a pipeline stage finishing with its wall time; Err is
// non-nil when the stage failed.
type StageEnd struct {
	Stage   Stage
	Elapsed time.Duration
	Err     error
}

// ISCIteration records one round of the iterative spectral clustering loop:
// how many candidate clusters the round formed, the CP quartile selection
// threshold, how many crossbars were realized, and the placed-crossbar
// utilization against the stop threshold.
type ISCIteration struct {
	Index          int     // 1-based iteration number
	Clusters       int     // candidate clusters formed this round
	Placed         int     // crossbars realized this round
	QuartileCP     float64 // the CP selection threshold q
	AvgUtilization float64 // mean utilization of the crossbars placed
	Threshold      float64 // the stop threshold t the utilization is judged against
	OutlierRatio   float64 // remaining connections / total, after this round
}

// ClusterStats summarizes the clustering engine's work across one finished
// ISC run in multilevel mode: how many rounds used the multilevel
// (coarsen→solve→uncoarsen) engine vs the flat tail, the hierarchy and
// eigensolve counters, and the kernel wall times. Emitted once per ISC run,
// after the loop, and only when the multilevel engine is enabled — the
// default flat path's event stream is unchanged. The timings are diagnostic
// only; every counter is deterministic for any worker count.
type ClusterStats struct {
	MultilevelRounds int           // ISC rounds clustered by the multilevel engine
	FlatRounds       int           // ISC rounds on the flat engine (below cutoff)
	Levels           int           // coarsening levels built, summed over rounds
	MaxDepth         int           // deepest hierarchy of any round
	Matchings        int           // pairwise heavy-edge contractions committed
	Eigensolves      int           // spectral solves (bisections + flat embeddings)
	WarmStarts       int           // Lanczos solves seeded from a previous Ritz basis
	LanczosSteps     int           // Krylov steps across all adaptive Lanczos solves
	RefineMoves      int           // boundary moves applied during uncoarsening
	CoarsenTime      time.Duration // wall time building the hierarchies
	SolveTime        time.Duration // wall time in coarse partitioning
	RefineTime       time.Duration // wall time projecting + refining
}

// PlaceProgress records one progress checkpoint of the placement λ loop
// (every overlap evaluation, several per outer λ round): the outer round
// the checkpointed step belongs to, the penalty weight λ that step ran
// under, the exact weighted HPWL, and the remaining physical overlap area.
// Besides the instantaneous values it carries the best-snapshot state the
// loop is tracking — the HPWL/overlap of the best legalization-aware
// placement visited so far, which is what the loop will restore at the end.
type PlaceProgress struct {
	Outer   int     // 0-based outer λ round of the checkpointed step
	Step    int     // 1-based optimizer step within the budget
	Lambda  float64 // density penalty weight the checkpointed step used
	HPWL    float64 // exact weighted HPWL at this checkpoint, µm
	Overlap float64 // total pairwise physical overlap area, µm²
	// BestHPWL and BestOverlap describe the best proxy-quality snapshot
	// visited so far (including this checkpoint, if it is the new best).
	BestHPWL    float64
	BestOverlap float64
}

// PlaceStats summarizes one finished placement: λ rounds, the multigrid
// field-solver work of the global phase, and the candidate/accept counters
// of the swap-based detailed placement, with kernel wall times. Emitted
// once per placement, after detailed placement completes. The timings are
// diagnostic only; every counter is deterministic for any worker count.
type PlaceStats struct {
	Outer          int           // λ rounds performed (a partial round counts)
	FieldSolves    int           // Poisson field refreshes (one per step)
	VCycles        int           // multigrid V-cycles across all refreshes
	FieldSweeps    int           // red-black relaxation sweeps, all levels
	SwapCandidates int           // detailed-placement pairs evaluated
	SwapsAccepted  int           // detailed-placement swaps taken
	FieldTime      time.Duration // wall time inside the field solver
	DetailTime     time.Duration // wall time in legalization + detailed placement
}

// RouteBatch records one committed batch of the speculative maze router.
type RouteBatch struct {
	Batch     int // 1-based batch counter across the whole route
	Wires     int // wires speculatively searched in this batch
	Committed int // paths that fit and committed
	Retried   int // paths invalidated by a batch-mate, re-queued
	Failed    int // wires with no path under the current capacity
	Capacity  int // the virtual capacity the batch ran under
}

// RouteRelaxation records one capacity relaxation: the router raised the
// virtual edge capacity to re-route the wires that failed.
type RouteRelaxation struct {
	Relaxations int // total relaxations so far (1-based)
	Capacity    int // the new virtual capacity
	Pending     int // wires awaiting re-route under the new capacity
}

// RouteStats summarizes one finished routing: which engine produced the
// result, the negotiation work (rounds, rip-ups, the peak count of
// capacity-exceeding edges, per-round wall times), total maze-search heap
// expansions, and the capacity-relaxation history — the legacy engine's
// loop, or the bounded fallback a stalled negotiation degrades to. Emitted
// once per route, after the last commit, by both engines. The round timings
// are diagnostic only; every counter is deterministic for any worker count.
type RouteStats struct {
	Negotiated    bool            // the negotiated-congestion engine produced the result
	Wires         int             // wires routed
	Rounds        int             // negotiation rounds run (0 on the legacy engine)
	RipUps        int             // wires ripped up and rerouted, summed over rounds
	Expansions    int64           // heap pops across every maze search
	OverusedPeak  int             // most over-capacity edges seen after any round
	Relaxations   int             // capacity relaxations (legacy loop or fallback)
	FinalCapacity int             // virtual edge capacity the result was committed under
	RoundTimes    []time.Duration // wall time of each negotiation round
}

// CacheLookup records one content-addressed result-cache probe of the
// serving layer (cmd/autoncsd): a hit means the compile was answered from
// the store without running the flow. Emitted by the server, not by the
// compile pipeline itself — a bare CLI compile never produces one.
type CacheLookup struct {
	Key  string // lowercase-hex content address probed
	Hit  bool
	Disk bool // the hit was served by the on-disk layer
}

// PeerLookup records one fleet peer-cache probe of the serving layer: on a
// local cache miss for a key whose consistent-hash owner is a remote peer,
// the daemon asks that owner for the cached payload before admitting a
// local compile. Hit means the peer served the bytes; Err means the probe
// failed (timeout, refusal, bad response) after its retries — a healthy
// peer answering "not cached" is a miss, not an error. Like CacheLookup,
// it is a server-side event: a bare CLI compile never produces one.
type PeerLookup struct {
	Key     string // lowercase-hex content address probed
	Peer    string // base URL of the peer probed (the key's effective owner)
	Hit     bool
	Err     bool
	Elapsed time.Duration // wall time of the whole lookup, retries included
}

// RequestTiming is the serving layer's flat per-request latency record,
// emitted once per job as it reaches a terminal state: where the request's
// wall time went (admission wait, queue wait, compile run) and how it was
// answered (fresh compile, coalesced onto another submission's compile, or
// straight from the result cache). The record is deliberately flat — every
// field is a scalar — so a fleet can dump the stream into CSV and analyze
// serving latency without JSON unnesting; client.RequestTiming carries the
// same record on the wire with CSV helpers. Like CacheLookup, it is a
// server-side event: a bare CLI compile never produces one.
type RequestTiming struct {
	Job       string // job record id
	Key       string // content address, lowercase hex
	Priority  string // "interactive" or "batch"
	Coalesced bool   // answered by another submission's in-flight compile
	CacheHit  bool   // answered from the result cache, no compile involved
	State     string // terminal state: done, failed, or cancelled

	Submitted time.Time     // when the request entered the handler
	AdmitWait time.Duration // submit → admission decision (the batcher window)
	QueueWait time.Duration // admission → compile start (zero when attached mid-run)
	Run       time.Duration // compile start → terminal state
	Total     time.Duration // submit → terminal state
}

// DeltaStats summarizes one delta recompile: the structural edit that
// triggered it, how much of the previous compile each stage reused, and how
// much had to be redone. Emitted once per CompileDelta, after the flow
// finishes. Every counter is deterministic for any worker count.
type DeltaStats struct {
	// Edit set, against the base network.
	Edits          int     // added + removed connections
	AddedEdges     int     // connections present only in the edited network
	RemovedEdges   int     // connections present only in the base network
	TouchedNeurons int     // neurons incident to any edit
	EditRatio      float64 // edits / base connections

	// Clustering reuse.
	BaseCrossbars    int     // crossbars in the previous assignment
	KeptCrossbars    int     // crossbars carried over untouched
	DirtyCrossbars   int     // crossbars dissolved into the residual
	NewCrossbars     int     // crossbars the residual re-clustering produced
	ResidualConns    int     // connections re-clustered (residual network)
	ClusterReuseFrac float64 // kept / base crossbars (0 with no base crossbars)

	// Placement reuse.
	Cells          int     // cells of the new netlist
	SeededCells    int     // cells warm-started at their previous coordinates
	PlaceReuseFrac float64 // seeded / cells (0 with no cells)

	// Routing reuse.
	Wires          int     // wires of the new netlist
	ReusedWires    int     // wires that kept their previous path through round 1
	ReroutedWires  int     // wires routed fresh (dirty, ripped, or fallback)
	RouteReuseFrac float64 // reused / wires (0 with no wires)
	FullRoute      bool    // the route degraded to a from-scratch run
}

func (CompileStart) event()    {}
func (CompileEnd) event()      {}
func (StageStart) event()      {}
func (StageEnd) event()        {}
func (ISCIteration) event()    {}
func (ClusterStats) event()    {}
func (PlaceProgress) event()   {}
func (PlaceStats) event()      {}
func (RouteBatch) event()      {}
func (RouteRelaxation) event() {}
func (RouteStats) event()      {}
func (CacheLookup) event()     {}
func (PeerLookup) event()      {}
func (RequestTiming) event()   {}
func (DeltaStats) event()      {}

// Observer receives the flow's events. Implementations must not block for
// long (they run on the flow's control goroutine) and must not assume any
// call concurrency — the flow delivers events one at a time.
type Observer interface {
	Observe(Event)
}

// Emit delivers e to o, tolerating a nil observer so call sites need no
// guard.
func Emit(o Observer, e Event) {
	if o != nil {
		o.Observe(e)
	}
}

// multi fans every event out to a fixed observer list, in order.
type multi []Observer

func (m multi) Observe(e Event) {
	for _, o := range m {
		o.Observe(e)
	}
}

// Multi combines observers into one that forwards every event to each
// non-nil observer in argument order. Nil arguments are dropped; with zero
// live observers it returns nil (which Emit ignores).
func Multi(os ...Observer) Observer {
	var live multi
	for _, o := range os {
		if o != nil {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}
