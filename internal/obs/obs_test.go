package obs

import (
	"bytes"
	"errors"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

// recorder collects event type order for assertions.
type recorder struct {
	mu     sync.Mutex
	events []Event
}

func (r *recorder) Observe(e Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.events = append(r.events, e)
}

func TestEmitNilObserver(t *testing.T) {
	Emit(nil, CompileStart{}) // must not panic
}

func TestMulti(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() of nothing should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Error("Multi(nil, nil) should be nil")
	}
	a, b := &recorder{}, &recorder{}
	if got := Multi(nil, a); got != a {
		t.Error("Multi with one live observer should return it unwrapped")
	}
	m := Multi(a, nil, b)
	m.Observe(StageStart{Stage: StagePlace})
	m.Observe(StageEnd{Stage: StagePlace})
	if len(a.events) != 2 || len(b.events) != 2 {
		t.Errorf("fan-out missed events: a=%d b=%d", len(a.events), len(b.events))
	}
}

func TestMetricsAccumulation(t *testing.T) {
	m := &Metrics{}
	failure := errors.New("boom")
	roundTimes := []time.Duration{time.Millisecond, 2 * time.Millisecond}
	events := []Event{
		CompileStart{Neurons: 100, Connections: 500, Workers: 4},
		StageStart{Stage: StageClustering},
		ISCIteration{Index: 1, Clusters: 7, Placed: 5},
		ISCIteration{Index: 2, Clusters: 4, Placed: 2},
		ClusterStats{MultilevelRounds: 2, FlatRounds: 1, Eigensolves: 9, WarmStarts: 1, RefineMoves: 33},
		StageEnd{Stage: StageClustering, Elapsed: 3 * time.Second},
		StageStart{Stage: StagePlace},
		PlaceProgress{Outer: 0, Step: 20, Lambda: 0.5},
		PlaceStats{Outer: 4, FieldSolves: 480, VCycles: 960, SwapsAccepted: 17},
		StageEnd{Stage: StagePlace, Elapsed: time.Second},
		StageStart{Stage: StageRoute},
		RouteBatch{Batch: 1, Wires: 16, Committed: 16, Capacity: 8},
		RouteRelaxation{Relaxations: 1, Capacity: 9, Pending: 2},
		RouteStats{Negotiated: true, Wires: 16, Rounds: 3, RipUps: 5, Expansions: 1234,
			OverusedPeak: 7, Relaxations: 1, FinalCapacity: 9, RoundTimes: roundTimes},
		StageEnd{Stage: StageRoute, Elapsed: 2 * time.Second, Err: failure},
		CompileEnd{Elapsed: 6 * time.Second, Err: failure},
		CacheLookup{Key: "ab", Hit: false},
		CacheLookup{Key: "ab", Hit: true, Disk: true},
		CacheLookup{Key: "cd", Hit: true},
	}
	for _, e := range events {
		m.Observe(e)
	}
	s := m.Snapshot()
	if s.Events != len(events) {
		t.Errorf("Events = %d, want %d", s.Events, len(events))
	}
	if s.Compiles != 1 || s.ISCIterations != 2 || s.PlaceSteps != 1 ||
		s.RouteBatches != 1 || s.Relaxations != 1 {
		t.Errorf("counts wrong: %+v", s)
	}
	if s.CacheHits != 2 || s.CacheMisses != 1 {
		t.Errorf("cache counts wrong: hits %d misses %d", s.CacheHits, s.CacheMisses)
	}
	if s.StageTimes[StageClustering] != 3*time.Second || s.StageTimes[StageRoute] != 2*time.Second {
		t.Errorf("stage times wrong: %v", s.StageTimes)
	}
	if s.LastISC.Index != 2 || s.LastISC.Clusters != 4 {
		t.Errorf("LastISC = %+v", s.LastISC)
	}
	if s.LastPlaceStats.FieldSolves != 480 || s.LastPlaceStats.SwapsAccepted != 17 {
		t.Errorf("LastPlaceStats = %+v", s.LastPlaceStats)
	}
	if s.LastClusterStats.MultilevelRounds != 2 || s.LastClusterStats.Eigensolves != 9 ||
		s.LastClusterStats.RefineMoves != 33 {
		t.Errorf("LastClusterStats = %+v", s.LastClusterStats)
	}
	if !s.LastRouteStats.Negotiated || s.LastRouteStats.Rounds != 3 ||
		s.LastRouteStats.Expansions != 1234 || s.LastRouteStats.FinalCapacity != 9 ||
		len(s.LastRouteStats.RoundTimes) != 2 {
		t.Errorf("LastRouteStats = %+v", s.LastRouteStats)
	}
	// The snapshot's round timings are detached from the emitter's slice.
	roundTimes[0] = time.Hour
	if s.LastRouteStats.RoundTimes[0] != time.Millisecond {
		t.Error("snapshot shares RoundTimes with the emitter")
	}
	if s.CompileElapsed != 6*time.Second || !errors.Is(s.Err, failure) {
		t.Errorf("CompileElapsed/Err wrong: %v %v", s.CompileElapsed, s.Err)
	}
	// Snapshot must be detached from further accumulation.
	m.Observe(StageEnd{Stage: StageClustering, Elapsed: time.Second})
	if s.StageTimes[StageClustering] != 3*time.Second {
		t.Error("snapshot shares StageTimes map with live metrics")
	}
}

func TestSlogObserverLevels(t *testing.T) {
	var buf bytes.Buffer
	ob := NewSlog(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelInfo})))
	ob.Observe(StageStart{Stage: StageClustering})
	ob.Observe(ISCIteration{Index: 3, Clusters: 9, Placed: 4, QuartileCP: 1.5})
	ob.Observe(PlaceProgress{Outer: 1, Step: 40})                                 // Debug: filtered at Info
	ob.Observe(RouteBatch{Batch: 2, Wires: 16})                                   // Debug: filtered at Info
	ob.Observe(PlaceStats{Outer: 4, FieldSolves: 480, SwapsAccepted: 17})         // Info: summary event
	ob.Observe(ClusterStats{MultilevelRounds: 3, Eigensolves: 12, WarmStarts: 2}) // Info: summary event
	ob.Observe(RouteStats{Negotiated: true, Wires: 16, Rounds: 3, Expansions: 99, FinalCapacity: 9})
	ob.Observe(StageEnd{Stage: StageClustering, Elapsed: time.Second, Err: errors.New("bad")})
	out := buf.String()
	for _, want := range []string{"stage start", "isc iteration", "iter=3", "place stats", "fieldSolves=480", "cluster stats", "eigensolves=12", "route stats", "expansions=99", "stage end", "err=bad"} {
		if !strings.Contains(out, want) {
			t.Errorf("log output missing %q:\n%s", want, out)
		}
	}
	for _, reject := range []string{"place progress", "route batch"} {
		if strings.Contains(out, reject) {
			t.Errorf("Info-level handler leaked debug event %q:\n%s", reject, out)
		}
	}
	buf.Reset()
	dbg := NewSlog(slog.New(slog.NewTextHandler(&buf, &slog.HandlerOptions{Level: slog.LevelDebug})))
	dbg.Observe(PlaceProgress{Outer: 1, Step: 40})
	dbg.Observe(RouteBatch{Batch: 2, Wires: 16})
	dbg.Observe(RouteRelaxation{Relaxations: 1, Capacity: 9, Pending: 3})
	out = buf.String()
	for _, want := range []string{"place progress", "route batch", "route relaxation"} {
		if !strings.Contains(out, want) {
			t.Errorf("debug log output missing %q:\n%s", want, out)
		}
	}
}

func TestStagesOrder(t *testing.T) {
	want := []Stage{StageClustering, StageNetlist, StagePlace, StageRoute, StageCost}
	got := Stages()
	if len(got) != len(want) {
		t.Fatalf("Stages() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Stages()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
