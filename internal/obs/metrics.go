package obs

import (
	"sync"
	"time"
)

// Metrics is a thread-safe accumulating observer: it counts events, sums
// per-stage wall time, and keeps the last record of each progress stream.
// The zero value is ready to use. The flow delivers events sequentially,
// but Metrics locks anyway so a monitoring goroutine may Snapshot it while
// a compile is still running.
type Metrics struct {
	mu   sync.Mutex
	snap MetricsSnapshot
}

// MetricsSnapshot is a point-in-time copy of everything a Metrics observer
// has accumulated.
type MetricsSnapshot struct {
	Events           int // total events observed
	Compiles         int // CompileStart events
	ISCIterations    int
	PlaceSteps       int // PlaceProgress checkpoints
	RouteBatches     int
	Relaxations      int // RouteRelaxation events
	CacheHits        int // CacheLookup events with Hit
	CacheMisses      int // CacheLookup events without Hit
	PeerHits         int // PeerLookup events with Hit
	PeerMisses       int // PeerLookup events: healthy peer, not cached
	PeerErrors       int // PeerLookup events with Err
	RequestRecords   int // RequestTiming events (terminal serving-layer jobs)
	DeltaCompiles    int // DeltaStats events (finished delta recompiles)
	StageTimes       map[Stage]time.Duration
	CompileElapsed   time.Duration // total wall time of the last finished compile
	LastISC          ISCIteration
	LastClusterStats ClusterStats // stats of the last finished multilevel ISC run
	LastPlace        PlaceProgress
	LastPlaceStats   PlaceStats // stats of the last finished placement
	LastRoute        RouteBatch
	LastRouteStats   RouteStats    // stats of the last finished routing
	LastPeer         PeerLookup    // the last fleet peer-cache probe
	LastRequest      RequestTiming // timing record of the last terminal job
	LastDelta        DeltaStats    // stats of the last finished delta recompile
	Err              error         // error of the last StageEnd/CompileEnd that carried one
}

// Observe implements Observer.
func (m *Metrics) Observe(e Event) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.snap.Events++
	switch e := e.(type) {
	case CompileStart:
		m.snap.Compiles++
	case CompileEnd:
		m.snap.CompileElapsed = e.Elapsed
		if e.Err != nil {
			m.snap.Err = e.Err
		}
	case StageEnd:
		if m.snap.StageTimes == nil {
			m.snap.StageTimes = make(map[Stage]time.Duration)
		}
		m.snap.StageTimes[e.Stage] += e.Elapsed
		if e.Err != nil {
			m.snap.Err = e.Err
		}
	case ISCIteration:
		m.snap.ISCIterations++
		m.snap.LastISC = e
	case ClusterStats:
		m.snap.LastClusterStats = e
	case PlaceProgress:
		m.snap.PlaceSteps++
		m.snap.LastPlace = e
	case PlaceStats:
		m.snap.LastPlaceStats = e
	case RouteBatch:
		m.snap.RouteBatches++
		m.snap.LastRoute = e
	case RouteRelaxation:
		m.snap.Relaxations++
	case RouteStats:
		m.snap.LastRouteStats = e
		m.snap.LastRouteStats.RoundTimes = cloneDurations(e.RoundTimes)
	case CacheLookup:
		if e.Hit {
			m.snap.CacheHits++
		} else {
			m.snap.CacheMisses++
		}
	case PeerLookup:
		switch {
		case e.Err:
			m.snap.PeerErrors++
		case e.Hit:
			m.snap.PeerHits++
		default:
			m.snap.PeerMisses++
		}
		m.snap.LastPeer = e
	case RequestTiming:
		m.snap.RequestRecords++
		m.snap.LastRequest = e
	case DeltaStats:
		m.snap.DeltaCompiles++
		m.snap.LastDelta = e
	}
}

// Snapshot returns a copy of the accumulated state; the StageTimes map is
// cloned so the caller may hold it across further events.
func (m *Metrics) Snapshot() MetricsSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.snap
	if m.snap.StageTimes != nil {
		out.StageTimes = make(map[Stage]time.Duration, len(m.snap.StageTimes))
		for k, v := range m.snap.StageTimes {
			out.StageTimes[k] = v
		}
	}
	out.LastRouteStats.RoundTimes = cloneDurations(m.snap.LastRouteStats.RoundTimes)
	return out
}

// cloneDurations detaches a duration slice so snapshots never alias the
// emitter's (or each other's) backing array.
func cloneDurations(ds []time.Duration) []time.Duration {
	if ds == nil {
		return nil
	}
	out := make([]time.Duration, len(ds))
	copy(out, ds)
	return out
}
