package experiments

import (
	"strings"
	"testing"

	"repro/internal/hopfield"
)

// Scaled-down sizes keep the experiment tests fast while exercising every
// runner end to end; the full paper-scale runs live in the benchmark
// harness and cmd/ncsbench.
const (
	testN    = 120
	testSeed = 7
)

var testTB = hopfield.Testbench{ID: 0, M: 8, N: testN, Sparsity: 0.92}

func TestSparseNet(t *testing.T) {
	cm := SparseNet(testN, testSeed)
	if cm.N() != testN {
		t.Fatalf("N = %d", cm.N())
	}
	if s := cm.Sparsity(); s < 0.9 || s > 0.99 {
		t.Fatalf("sparsity %g outside the testbench regime", s)
	}
}

func TestFigure3(t *testing.T) {
	res, err := Figure3(testN, 32, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Clusters) == 0 {
		t.Fatal("no clusters")
	}
	if res.OutlierRatio < 0 || res.OutlierRatio > 1 {
		t.Fatalf("outlier ratio %g", res.OutlierRatio)
	}
	// Unbounded MSC on a near-random sparse network typically produces
	// imbalanced clusters (one giant component-sized cluster absorbing
	// most connections) — the very behaviour GCP exists to fix. Either a
	// substantial outlier share or an over-limit cluster must be present.
	maxCluster := 0
	for _, cl := range res.Clusters {
		if len(cl) > maxCluster {
			maxCluster = len(cl)
		}
	}
	if res.OutlierRatio < 0.05 && maxCluster <= 32 {
		t.Fatalf("MSC gave outliers %.2f with max cluster %d — suspiciously ideal", res.OutlierRatio, maxCluster)
	}
	if !strings.Contains(res.Before, "\n") || !strings.Contains(res.After, "\n") {
		t.Fatal("missing renderings")
	}
}

func TestFigure4(t *testing.T) {
	res, err := Figure4(testN, 32, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.GCP.MaxSize > 32 {
		t.Fatalf("GCP max cluster %d exceeds limit", res.GCP.MaxSize)
	}
	if res.Traversing.MaxSize > 32 {
		t.Fatalf("traversing max cluster %d exceeds limit", res.Traversing.MaxSize)
	}
	if res.GCP.Elapsed <= 0 || res.Traversing.Elapsed <= 0 {
		t.Fatal("elapsed times not recorded")
	}
	// Quality parity: within-cluster capture within 35 points.
	if d := res.GCP.WithinRatio - res.Traversing.WithinRatio; d > 0.35 || d < -0.35 {
		t.Fatalf("GCP %g vs traversing %g capture diverge", res.GCP.WithinRatio, res.Traversing.WithinRatio)
	}
}

func TestFigure56(t *testing.T) {
	res, err := Figure56(testN, testSeed, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iterations) == 0 {
		t.Fatal("no iterations traced")
	}
	prev := 1.0
	for _, it := range res.Iterations {
		if it.OutlierRatio > prev+1e-9 {
			t.Fatalf("outlier ratio rose at iteration %d", it.Index)
		}
		prev = it.OutlierRatio
		if it.RemainingView == "" {
			t.Fatalf("iteration %d missing rendering", it.Index)
		}
	}
	if res.FinalOutlierRatio != res.Iterations[len(res.Iterations)-1].OutlierRatio {
		t.Fatal("final outlier ratio inconsistent with trace")
	}
}

func TestFigureISC(t *testing.T) {
	a, err := FigureISC(testTB, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if a.Iterations == 0 || len(a.OutlierRatio) != a.Iterations {
		t.Fatalf("trace lengths wrong: %d vs %d", a.Iterations, len(a.OutlierRatio))
	}
	if len(a.NormalizedUtilization) != a.Iterations || len(a.AvgCP) != a.Iterations {
		t.Fatal("subplot (b) series length wrong")
	}
	if a.BaselineAvgUtil <= 0 {
		t.Fatal("no baseline utilization")
	}
	if len(a.Fans) != testN {
		t.Fatalf("fan distribution over %d neurons, want %d", len(a.Fans), testN)
	}
	// The paper's headline for subplot (d): total fanin+fanout shrinks
	// versus the baseline (≈80%).
	if a.AvgSumRatio <= 0 || a.AvgSumRatio >= 1.2 {
		t.Fatalf("avg fan sum ratio %g implausible", a.AvgSumRatio)
	}
	for size := range a.SizeHistogram {
		if size < 16 || size > 64 {
			t.Fatalf("crossbar size %d outside the library", size)
		}
	}
}

func TestPaperFigureRejectsBadID(t *testing.T) {
	if _, err := PaperFigure(0); err == nil {
		t.Fatal("testbench 0 accepted")
	}
	if _, err := PaperFigure(4); err == nil {
		t.Fatal("testbench 4 accepted")
	}
}

func TestTable1Scaled(t *testing.T) {
	res, err := Table1([]hopfield.Testbench{testTB}, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	row := res.Rows[0]
	if row.AutoNCS.Wirelength <= 0 || row.FullCro.Wirelength <= 0 {
		t.Fatal("degenerate wirelengths")
	}
	// The headline claim at any scale: AutoNCS reduces delay (driven by
	// the crossbar size mix) and does not lose on cost overall.
	if row.Reductions.Delay <= 0 {
		t.Errorf("delay reduction %.1f%%, want positive", row.Reductions.Delay)
	}
	if res.Avg.Delay != row.Reductions.Delay {
		t.Error("average over one row differs from the row")
	}
}

func TestFigure10Scaled(t *testing.T) {
	res, err := Figure10(testTB, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	for name, s := range map[string]string{
		"FullCro layout":     res.FullCroLayout,
		"FullCro congestion": res.FullCroCongestion,
		"AutoNCS layout":     res.AutoNCSLayout,
		"AutoNCS congestion": res.AutoNCSCongestion,
	} {
		if len(s) == 0 {
			t.Errorf("%s rendering empty", name)
		}
	}
	if res.FullCroPeakUsage <= 0 || res.AutoNCSPeakUsage <= 0 {
		t.Error("no congestion recorded")
	}
	if res.FullCroArea <= 0 || res.AutoNCSArea <= 0 {
		t.Error("degenerate areas")
	}
}

func TestReliabilitySweep(t *testing.T) {
	sweep, err := Reliability([]int{8, 40}, 3, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Points) != 2 {
		t.Fatalf("%d points", len(sweep.Points))
	}
	if sweep.Points[0].Rate < sweep.Points[1].Rate {
		t.Fatalf("reliability grew with size: %v", sweep.Points)
	}
	if knee := sweep.Knee(); knee != 8 && knee != 40 {
		t.Fatalf("knee %d not among the sizes", knee)
	}
}

func TestReliabilityValidation(t *testing.T) {
	if _, err := Reliability([]int{8}, 0, 0.3, 1); err == nil {
		t.Fatal("0 trials accepted")
	}
}

func TestFidelity(t *testing.T) {
	tb := hopfield.Testbench{ID: 0, M: 5, N: 80, Sparsity: 0.9}
	res, err := Fidelity(tb, 0.05, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.SoftwareRate < 0.8 {
		t.Fatalf("software recognition %g implausibly low", res.SoftwareRate)
	}
	// The compiled hardware must not collapse versus software.
	if res.HardwareRate < res.SoftwareRate-0.4 {
		t.Fatalf("hardware rate %g collapsed vs software %g", res.HardwareRate, res.SoftwareRate)
	}
	if res.Crossbars == 0 && res.Synapses == 0 {
		t.Fatal("no hardware produced")
	}
}

func TestFidelityWithDefects(t *testing.T) {
	tb := hopfield.Testbench{ID: 0, M: 4, N: 60, Sparsity: 0.88}
	res, err := Fidelity(tb, 0.05, 0.02, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.DefectRate != 0.02 {
		t.Fatal("defect rate not recorded")
	}
	if res.HardwareRate < 0.4 {
		t.Fatalf("repaired hardware rate %g collapsed", res.HardwareRate)
	}
}

func TestSparsitySweep(t *testing.T) {
	pts, err := SparsitySweep(100, []float64{0.85, 0.95, 0.99}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 3 {
		t.Fatalf("%d points", len(pts))
	}
	for _, p := range pts {
		if p.OutlierRatio < 0 || p.OutlierRatio > 1 {
			t.Fatalf("outlier ratio %g at sparsity %g", p.OutlierRatio, p.Sparsity)
		}
		if p.SynapseShare < 0 || p.SynapseShare > 1 {
			t.Fatalf("synapse share %g", p.SynapseShare)
		}
	}
	// The denser network must keep more of its connections in crossbars
	// than the extremely sparse one (utilization economics).
	if pts[0].AvgUtilization < pts[2].AvgUtilization {
		t.Fatalf("utilization did not fall with sparsity: %g vs %g",
			pts[0].AvgUtilization, pts[2].AvgUtilization)
	}
}
