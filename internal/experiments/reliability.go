package experiments

import (
	"repro/internal/device"
)

// ReliabilitySweep reproduces the paper's motivating constraint (Section
// 2.1, citing Liang & Wong [6]): crossbar read reliability versus size
// under IR drop and process variation, which is why the crossbar library
// tops out at 64×64. It is not one of the paper's own figures but the
// quantitative justification it builds on.
type ReliabilitySweep struct {
	Points []device.ReliabilityResult
}

// Reliability runs the sweep over the given sizes with the default 45 nm
// crossbar circuit model.
func Reliability(sizes []int, trials int, density float64, seed int64) (*ReliabilitySweep, error) {
	p := device.DefaultCrossbarParams()
	out := &ReliabilitySweep{}
	for _, s := range sizes {
		r, err := device.CountReadReliability(s, trials, density, p, seed)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, *r)
	}
	return out, nil
}

// Knee returns the largest size with reliability ≥ 0.5, or 0 if none.
func (r *ReliabilitySweep) Knee() int {
	knee := 0
	for _, pt := range r.Points {
		if pt.Rate >= 0.5 && pt.Size > knee {
			knee = pt.Size
		}
	}
	return knee
}
