// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 4). Each runner returns a structured result (so the
// benchmark harness and tests can assert on it) plus terminal-friendly
// renderings of the original plots. Runners accept explicit sizes so tests
// can execute scaled-down variants; the PaperX helpers use the paper's
// parameters.
package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/hopfield"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/viz"
	"repro/internal/xbar"
)

// SparseNet builds the experiment input: a sparse Hopfield-style network of
// n neurons at roughly the paper's testbench sparsity (~94%).
func SparseNet(n int, seed int64) *graph.Conn {
	tb := hopfield.Testbench{M: maxInt(3, n/16), N: n, Sparsity: 0.94}
	cm, _, _ := tb.Build(seed)
	return cm
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ---------------------------------------------------------------- Figure 3

// Figure3Result reproduces Figure 3: the connection matrix of a sparse
// network before and after one MSC pass.
type Figure3Result struct {
	N            int
	Connections  int
	Clusters     []core.Cluster
	OutlierRatio float64 // fraction of connections not inside any cluster
	Before       string  // ASCII render, natural neuron order
	After        string  // ASCII render, cluster-permuted order
}

// Figure3 runs MSC with k = n/maxSize clusters on an n-neuron sparse
// network (the paper uses a real 400×400 network and reports 57% outliers
// after a single pass).
func Figure3(n, maxSize int, seed int64) (*Figure3Result, error) {
	cm := SparseNet(n, seed)
	k := maxInt(1, n/maxSize)
	clusters, err := core.MSCN(cm, k, rand.New(rand.NewSource(seed)), 0)
	if err != nil {
		return nil, err
	}
	within := 0
	for _, cl := range clusters {
		within += cm.CountWithin(cl)
	}
	perm := core.PermutationByClusters(n, clusters)
	return &Figure3Result{
		N:            n,
		Connections:  cm.NNZ(),
		Clusters:     clusters,
		OutlierRatio: 1 - float64(within)/float64(cm.NNZ()),
		Before:       viz.Matrix(cm, nil, 60),
		After:        viz.Matrix(cm, perm, 60),
	}, nil
}

// PaperFigure3 runs Figure 3 at the paper's 400-neuron scale.
func PaperFigure3() (*Figure3Result, error) { return Figure3(400, 64, 1) }

// ---------------------------------------------------------------- Figure 4

// Figure4Result compares GCP against the traversing algorithm (Figure 4:
// near-identical clusterings, GCP at roughly half the runtime).
type Figure4Result struct {
	GCP        ClusteringStats
	Traversing ClusteringStats
}

// ClusteringStats summarizes one size-bounded clustering run.
type ClusteringStats struct {
	Clusters     int
	MaxSize      int
	WithinRatio  float64 // connections captured inside clusters
	Elapsed      time.Duration
	OutlierRatio float64
}

// Figure4 runs both size-control algorithms on the same network with the
// given cluster size limit.
func Figure4(n, maxSize int, seed int64) (*Figure4Result, error) {
	cm := SparseNet(n, seed)
	stats := func(run func() ([]core.Cluster, error)) (ClusteringStats, error) {
		start := time.Now()
		clusters, err := run()
		elapsed := time.Since(start)
		if err != nil {
			return ClusteringStats{}, err
		}
		s := ClusteringStats{Clusters: len(clusters), Elapsed: elapsed}
		within := 0
		for _, cl := range clusters {
			within += cm.CountWithin(cl)
			if len(cl) > s.MaxSize {
				s.MaxSize = len(cl)
			}
		}
		s.WithinRatio = float64(within) / float64(cm.NNZ())
		s.OutlierRatio = 1 - s.WithinRatio
		return s, nil
	}
	var out Figure4Result
	var err error
	if out.GCP, err = stats(func() ([]core.Cluster, error) {
		return core.GCPN(cm, maxSize, rand.New(rand.NewSource(seed)), 0)
	}); err != nil {
		return nil, err
	}
	if out.Traversing, err = stats(func() ([]core.Cluster, error) {
		return core.TraversingN(cm, maxSize, rand.New(rand.NewSource(seed)), 0)
	}); err != nil {
		return nil, err
	}
	return &out, nil
}

// PaperFigure4 runs Figure 4 at the paper's scale (400 neurons, limit 64).
func PaperFigure4() (*Figure4Result, error) { return Figure4(400, 64, 1) }

// ------------------------------------------------------------ Figures 5, 6

// Figure56Result reproduces Figures 5 and 6: the remaining (outlier)
// network across ISC iterations with the partial selection strategy.
type Figure56Result struct {
	Iterations []IterationView
	// FinalOutlierRatio is the outlier ratio when ISC stops (the paper
	// reports < 5% after 11 iterations on the 400×400 example).
	FinalOutlierRatio float64
}

// IterationView is one ISC round with renderings.
type IterationView struct {
	Index         int
	Placed        int     // clusters realized (red squares of Figure 6)
	Kept          int     // low-CP clusters left for re-clustering (yellow)
	OutlierRatio  float64 // after this round
	QuartileCP    float64
	RemainingView string // ASCII render of the remaining network
}

// Figure56 traces ISC on an n-neuron sparse network. It is Figure56Ctx
// under context.Background().
func Figure56(n int, seed int64, render bool) (*Figure56Result, error) {
	return Figure56Ctx(context.Background(), n, seed, render)
}

// Figure56Ctx is Figure56 with cooperative cancellation of the ISC loop.
func Figure56Ctx(ctx context.Context, n int, seed int64, render bool) (*Figure56Result, error) {
	cm := SparseNet(n, seed)
	lib := xbar.DefaultLibrary()
	baseline := xbar.FullCro(cm, lib).AvgUtilization()
	remaining := cm.Clone()
	res, err := core.ISCCtx(ctx, cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: baseline,
		Rand:                 rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return nil, err
	}
	out := &Figure56Result{}
	for _, it := range res.Trace {
		view := IterationView{
			Index:        it.Index,
			Placed:       it.Placed,
			OutlierRatio: it.OutlierRatio,
			QuartileCP:   it.QuartileCP,
		}
		for _, cs := range it.Clusters {
			if cs.Selected {
				remaining.RemoveWithin(cs.Cluster)
			} else if cs.Within > 0 {
				view.Kept++
			}
		}
		if render {
			view.RemainingView = viz.Matrix(remaining, nil, 50)
		}
		out.Iterations = append(out.Iterations, view)
		out.FinalOutlierRatio = it.OutlierRatio
	}
	return out, nil
}

// PaperFigure56 traces the 400-neuron example of Figures 5 and 6.
func PaperFigure56() (*Figure56Result, error) { return Figure56(400, 1, true) }

// ------------------------------------------------------------ Figures 7-9

// ISCAnalysis reproduces one of Figures 7-9: the per-iteration efficacy
// analysis of ISC on a paper testbench.
type ISCAnalysis struct {
	Testbench hopfield.Testbench
	// OutlierRatio per iteration (subplot a).
	OutlierRatio []float64
	// NormalizedUtilization and AvgCP per iteration (subplot b);
	// utilization is normalized to the FullCro baseline utilization.
	NormalizedUtilization []float64
	AvgCP                 []float64
	// SizeHistogram of the final implementation (subplot c).
	SizeHistogram map[int]int
	// Fan distribution (subplot d): per-neuron fanin+fanout split by
	// medium, plus the average total normalized to the baseline.
	Fans            []xbar.FanInOut
	AvgSumRatio     float64 // avg total fanin+fanout vs FullCro baseline
	FinalOutliers   float64
	Iterations      int
	BaselineAvgUtil float64
}

// FigureISC runs the analysis for the given testbench configuration. It is
// FigureISCCtx under context.Background().
func FigureISC(tb hopfield.Testbench, seed int64) (*ISCAnalysis, error) {
	return FigureISCCtx(context.Background(), tb, seed)
}

// FigureISCCtx is FigureISC with cooperative cancellation of the ISC loop.
func FigureISCCtx(ctx context.Context, tb hopfield.Testbench, seed int64) (*ISCAnalysis, error) {
	cm, _, _ := tb.Build(seed)
	lib := xbar.DefaultLibrary()
	full := xbar.FullCro(cm, lib)
	baseline := full.AvgUtilization()
	res, err := core.ISCCtx(ctx, cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: baseline,
		Rand:                 rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return nil, err
	}
	a := &ISCAnalysis{
		Testbench:       tb,
		SizeHistogram:   res.Assignment.SizeHistogram(),
		Fans:            res.Assignment.FanInOuts(),
		FinalOutliers:   res.Assignment.OutlierRatio(),
		Iterations:      len(res.Trace),
		BaselineAvgUtil: baseline,
	}
	for _, it := range res.Trace {
		a.OutlierRatio = append(a.OutlierRatio, it.OutlierRatio)
		norm := 0.0
		if baseline > 0 {
			norm = it.AvgUtilization / baseline
		}
		a.NormalizedUtilization = append(a.NormalizedUtilization, norm)
		a.AvgCP = append(a.AvgCP, it.AvgPreference)
	}
	// Average total fanin+fanout vs the baseline design.
	sumISC, sumBase := 0, 0
	for _, f := range a.Fans {
		sumISC += f.Sum()
	}
	for _, f := range full.FanInOuts() {
		sumBase += f.Sum()
	}
	if sumBase > 0 {
		a.AvgSumRatio = float64(sumISC) / float64(sumBase)
	}
	return a, nil
}

// PaperFigure runs Figures 7, 8 or 9 for testbench id 1-3.
func PaperFigure(id int) (*ISCAnalysis, error) {
	tbs := hopfield.Testbenches()
	if id < 1 || id > len(tbs) {
		return nil, fmt.Errorf("experiments: no testbench %d", id)
	}
	return FigureISC(tbs[id-1], 1)
}

// ---------------------------------------------------------------- Table 1

// Table1Row is one testbench's physical design comparison.
type Table1Row struct {
	Testbench  hopfield.Testbench
	AutoNCS    cost.Report
	FullCro    cost.Report
	Reductions struct {
		Wirelength, Area, Delay float64 // percent
	}
}

// Table1Result is the full cost evaluation table plus averages.
type Table1Result struct {
	Rows []Table1Row
	Avg  struct {
		Wirelength, Area, Delay float64
	}
}

// designOf runs netlist → place → route → cost for an assignment, honouring
// ctx in the place and route loops.
func designOf(ctx context.Context, a *xbar.Assignment, dev xbar.DeviceModel) (*cost.Report, *netlist.Netlist, *place.Result, *route.Result, error) {
	nl, err := netlist.Build(a, dev)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	pl, err := place.PlaceCtx(ctx, nl, place.DefaultOptions())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rt, err := route.RouteCtx(ctx, nl, pl, route.DefaultOptions())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	rep, err := cost.Evaluate(nl, pl, rt, dev, cost.DefaultParams())
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return rep, nl, pl, rt, nil
}

// Table1Bench evaluates one testbench configuration (scaled or full). It is
// Table1BenchCtx under context.Background().
func Table1Bench(tb hopfield.Testbench, seed int64) (*Table1Row, error) {
	return Table1BenchCtx(context.Background(), tb, seed)
}

// Table1BenchCtx is Table1Bench with cooperative cancellation of the ISC,
// placement, and routing loops.
func Table1BenchCtx(ctx context.Context, tb hopfield.Testbench, seed int64) (*Table1Row, error) {
	cm, _, _ := tb.Build(seed)
	lib := xbar.DefaultLibrary()
	dev := xbar.Default45nm()
	full := xbar.FullCro(cm, lib)
	iscRes, err := core.ISCCtx(ctx, cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: full.AvgUtilization(),
		Rand:                 rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return nil, err
	}
	autoRep, _, _, _, err := designOf(ctx, iscRes.Assignment, dev)
	if err != nil {
		return nil, err
	}
	fullRep, _, _, _, err := designOf(ctx, full, dev)
	if err != nil {
		return nil, err
	}
	row := &Table1Row{Testbench: tb, AutoNCS: *autoRep, FullCro: *fullRep}
	row.Reductions.Wirelength = cost.Reduction(autoRep.Wirelength, fullRep.Wirelength)
	row.Reductions.Area = cost.Reduction(autoRep.Area, fullRep.Area)
	row.Reductions.Delay = cost.Reduction(autoRep.AvgDelay, fullRep.AvgDelay)
	return row, nil
}

// Table1 evaluates the given testbenches and averages the reductions. It is
// Table1Ctx under context.Background().
func Table1(tbs []hopfield.Testbench, seed int64) (*Table1Result, error) {
	return Table1Ctx(context.Background(), tbs, seed)
}

// Table1Ctx is Table1 with cooperative cancellation between and within
// testbench evaluations.
func Table1Ctx(ctx context.Context, tbs []hopfield.Testbench, seed int64) (*Table1Result, error) {
	out := &Table1Result{}
	for _, tb := range tbs {
		row, err := Table1BenchCtx(ctx, tb, seed)
		if err != nil {
			return nil, fmt.Errorf("experiments: testbench %d: %w", tb.ID, err)
		}
		out.Rows = append(out.Rows, *row)
		out.Avg.Wirelength += row.Reductions.Wirelength
		out.Avg.Area += row.Reductions.Area
		out.Avg.Delay += row.Reductions.Delay
	}
	if n := float64(len(out.Rows)); n > 0 {
		out.Avg.Wirelength /= n
		out.Avg.Area /= n
		out.Avg.Delay /= n
	}
	return out, nil
}

// PaperTable1 evaluates all three paper testbenches at full scale.
func PaperTable1() (*Table1Result, error) {
	return Table1(hopfield.Testbenches(), 1)
}

// --------------------------------------------------------------- Figure 10

// Figure10Result holds the placement and congestion renderings of
// testbench 3 under FullCro and AutoNCS.
type Figure10Result struct {
	FullCroLayout      string
	FullCroCongestion  string
	AutoNCSLayout      string
	AutoNCSCongestion  string
	FullCroPeakUsage   int
	AutoNCSPeakUsage   int
	FullCroArea        float64
	AutoNCSArea        float64
	FullCroWirelength  float64
	AutoNCSWirelength  float64
	FullCroRelaxations int
	AutoNCSRelaxations int
}

// Figure10 places and routes both designs of the given testbench and
// renders Figure 10's four panels. It is Figure10Ctx under
// context.Background().
func Figure10(tb hopfield.Testbench, seed int64) (*Figure10Result, error) {
	return Figure10Ctx(context.Background(), tb, seed)
}

// Figure10Ctx is Figure10 with cooperative cancellation of the ISC,
// placement, and routing loops.
func Figure10Ctx(ctx context.Context, tb hopfield.Testbench, seed int64) (*Figure10Result, error) {
	cm, _, _ := tb.Build(seed)
	lib := xbar.DefaultLibrary()
	dev := xbar.Default45nm()
	full := xbar.FullCro(cm, lib)
	iscRes, err := core.ISCCtx(ctx, cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: full.AvgUtilization(),
		Rand:                 rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return nil, err
	}
	out := &Figure10Result{}
	fullRep, fullNl, fullPl, fullRt, err := designOf(ctx, full, dev)
	if err != nil {
		return nil, err
	}
	autoRep, autoNl, autoPl, autoRt, err := designOf(ctx, iscRes.Assignment, dev)
	if err != nil {
		return nil, err
	}
	out.FullCroLayout = viz.Layout(fullNl, fullPl, 78, 36)
	out.FullCroCongestion = viz.Congestion(fullRt, 78)
	out.AutoNCSLayout = viz.Layout(autoNl, autoPl, 78, 36)
	out.AutoNCSCongestion = viz.Congestion(autoRt, 78)
	out.FullCroPeakUsage = fullRt.MaxUsage()
	out.AutoNCSPeakUsage = autoRt.MaxUsage()
	out.FullCroArea = fullRep.Area
	out.AutoNCSArea = autoRep.Area
	out.FullCroWirelength = fullRep.Wirelength
	out.AutoNCSWirelength = autoRep.Wirelength
	out.FullCroRelaxations = fullRt.Relaxations
	out.AutoNCSRelaxations = autoRt.Relaxations
	return out, nil
}

// PaperFigure10 renders Figure 10 for testbench 3 at full scale.
func PaperFigure10() (*Figure10Result, error) {
	return Figure10(hopfield.Testbenches()[2], 1)
}
