package experiments

import (
	"context"
	"math/rand"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/parallel"
	"repro/internal/xbar"
)

// SparsityPoint is one sparsity regime of the sweep.
type SparsityPoint struct {
	Sparsity       float64
	OutlierRatio   float64 // fraction of connections mapped to synapses
	Crossbars      int
	AvgUtilization float64
	AvgCrossbarSz  float64
	// SynapseShare is the fraction of total *hardware elements* (crossbar
	// cells + discrete synapses) contributed by synapses — the hybrid
	// balance the introduction argues shifts with sparsity.
	SynapseShare float64
}

// SparsitySweep runs ISC over networks of the same size at increasing
// sparsity, quantifying the paper's motivating claim: the sparser the
// network, the less of it belongs in crossbars. It is an extension
// experiment (not a paper figure) exercising the full clustering flow
// across regimes.
func SparsitySweep(n int, sparsities []float64, seed int64) ([]SparsityPoint, error) {
	return SparsitySweepN(context.Background(), n, sparsities, seed, 0)
}

// SparsitySweepN is SparsitySweep with the sweep points fanned out across a
// bounded worker pool (0 = package default) under ctx cancellation. Every
// point derives its own rng streams from the seed and writes its own
// ordered result slot, so the sweep is bit-identical for any worker count.
func SparsitySweepN(ctx context.Context, n int, sparsities []float64, seed int64, workers int) ([]SparsityPoint, error) {
	lib := xbar.DefaultLibrary()
	out := make([]SparsityPoint, len(sparsities))
	err := parallel.Do(ctx, workers, len(sparsities), func(i int) error {
		sp := sparsities[i]
		rng := rand.New(rand.NewSource(seed))
		cm := graph.RandomSparse(n, sp, rng)
		res, err := core.ISC(cm, core.ISCOptions{
			Library:              lib,
			UtilizationThreshold: xbar.FullCro(cm, lib).AvgUtilization(),
			Rand:                 rand.New(rand.NewSource(seed + 1)),
			Workers:              1, // the fan-out is across sweep points
		})
		if err != nil {
			return err
		}
		a := res.Assignment
		pt := SparsityPoint{
			Sparsity:       sp,
			OutlierRatio:   a.OutlierRatio(),
			Crossbars:      len(a.Crossbars),
			AvgUtilization: a.AvgUtilization(),
		}
		cells := 0
		for _, cb := range a.Crossbars {
			pt.AvgCrossbarSz += float64(cb.Size)
			cells += cb.Size * cb.Size
		}
		if len(a.Crossbars) > 0 {
			pt.AvgCrossbarSz /= float64(len(a.Crossbars))
		}
		if cells+len(a.Synapses) > 0 {
			pt.SynapseShare = float64(len(a.Synapses)) / float64(cells+len(a.Synapses))
		}
		out[i] = pt
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
