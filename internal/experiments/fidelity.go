package experiments

import (
	"math/rand"

	"repro/internal/core"
	"repro/internal/hopfield"
	"repro/internal/ncsim"
	"repro/internal/xbar"
)

// FidelityResult compares the recognition quality of the software Hopfield
// network with the same network executed through the compiled hybrid
// hardware (ncsim): a functional-correctness check the paper asserts
// implicitly ("our design maintains the topology of the original NCS").
type FidelityResult struct {
	Testbench       hopfield.Testbench
	SoftwareRate    float64 // recognition rate of the sparse software model
	HardwareRate    float64 // same patterns through the compiled machine
	Crossbars       int
	Synapses        int
	DefectRate      float64 // if non-zero, the mapping was defect-repaired
	DemotedByRepair int
}

// Fidelity compiles the testbench with ISC, optionally injects and repairs
// stuck-at defects, builds the hardware machine (ideal wires, programmed
// devices with variation), and measures both recognition rates under the
// given input noise.
func Fidelity(tb hopfield.Testbench, noise, defectRate float64, seed int64) (*FidelityResult, error) {
	cm, net, patterns := tb.Build(seed)
	lib := xbar.DefaultLibrary()
	res, err := core.ISC(cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: xbar.FullCro(cm, lib).AvgUtilization(),
		Rand:                 rand.New(rand.NewSource(seed)),
	})
	if err != nil {
		return nil, err
	}
	assign := res.Assignment
	out := &FidelityResult{Testbench: tb, DefectRate: defectRate}
	if defectRate > 0 {
		var stats *xbar.RepairStats
		assign, stats = xbar.Repair(assign, defectRate, 0.3, rand.New(rand.NewSource(seed+1)))
		out.DemotedByRepair = stats.TotalDemotions
	}
	out.Crossbars = len(assign.Crossbars)
	out.Synapses = len(assign.Synapses)
	machine, err := ncsim.Build(assign, net, ncsim.Options{Ideal: true, Seed: seed + 2})
	if err != nil {
		return nil, err
	}
	out.SoftwareRate = net.RecognitionRate(patterns, noise, 0.9, rand.New(rand.NewSource(seed+3)))
	out.HardwareRate, err = machine.RecognitionRate(patterns, noise, 0.9, rand.New(rand.NewSource(seed+3)))
	if err != nil {
		return nil, err
	}
	return out, nil
}
