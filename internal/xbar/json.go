package xbar

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/graph"
)

// The JSON schema is the natural structure of an Assignment; edges are
// [from, to] pairs to keep files compact.

type assignmentJSON struct {
	Version   int            `json:"version"`
	N         int            `json:"neurons"`
	Total     int            `json:"connections"`
	Crossbars []crossbarJSON `json:"crossbars"`
	Synapses  [][2]int       `json:"synapses"`
}

type crossbarJSON struct {
	Size    int      `json:"size"`
	Inputs  []int    `json:"inputs"`
	Outputs []int    `json:"outputs"`
	Conns   [][2]int `json:"conns"`
}

const jsonVersion = 1

// WriteJSON serializes the assignment.
func (a *Assignment) WriteJSON(w io.Writer) error {
	out := assignmentJSON{Version: jsonVersion, N: a.N, Total: a.Total}
	for _, cb := range a.Crossbars {
		cj := crossbarJSON{
			Size:    cb.Size,
			Inputs:  cb.Inputs,
			Outputs: cb.Outputs,
			Conns:   edgesToPairs(cb.Conns),
		}
		out.Crossbars = append(out.Crossbars, cj)
	}
	out.Synapses = edgesToPairs(a.Synapses)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// ReadJSON parses an assignment previously written by WriteJSON.
func ReadJSON(r io.Reader) (*Assignment, error) {
	var in assignmentJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("xbar: %w", err)
	}
	if in.Version != jsonVersion {
		return nil, fmt.Errorf("xbar: unsupported assignment version %d", in.Version)
	}
	if in.N < 0 || in.Total < 0 {
		return nil, fmt.Errorf("xbar: negative sizes in assignment")
	}
	a := &Assignment{N: in.N, Total: in.Total, Synapses: pairsToEdges(in.Synapses)}
	for _, cj := range in.Crossbars {
		a.Crossbars = append(a.Crossbars, Crossbar{
			Size:    cj.Size,
			Inputs:  cj.Inputs,
			Outputs: cj.Outputs,
			Conns:   pairsToEdges(cj.Conns),
		})
	}
	return a, nil
}

// SaveJSON writes the assignment to a file.
func (a *Assignment) SaveJSON(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("xbar: %w", err)
	}
	defer f.Close()
	return a.WriteJSON(f)
}

// LoadJSON reads an assignment from a file.
func LoadJSON(path string) (*Assignment, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xbar: %w", err)
	}
	defer f.Close()
	return ReadJSON(f)
}

func edgesToPairs(es []graph.Edge) [][2]int {
	out := make([][2]int, len(es))
	for i, e := range es {
		out[i] = [2]int{e.From, e.To}
	}
	return out
}

func pairsToEdges(ps [][2]int) []graph.Edge {
	out := make([]graph.Edge, len(ps))
	for i, p := range ps {
		out[i] = graph.Edge{From: p[0], To: p[1]}
	}
	return out
}
