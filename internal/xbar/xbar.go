// Package xbar models the hardware substrate of the hybrid neuromorphic
// system: the library of available memristor crossbar sizes, the crossbar
// preference (CP) metric that drives ISC's partial selection strategy, the
// hybrid Assignment (crossbars plus discrete synapses) produced by the
// clustering flow, and the device-level area and delay models scaled to the
// 45 nm node that the physical design stage consumes.
package xbar

import (
	"fmt"
	"sort"

	"repro/internal/graph"
)

// Library is the set of allowed (square) crossbar sizes, ascending.
// The zero value is an empty library; use NewLibrary or DefaultLibrary.
type Library struct {
	sizes []int
}

// NewLibrary builds a library from the given sizes. Sizes must be positive;
// duplicates are removed and the result is sorted ascending.
func NewLibrary(sizes ...int) (Library, error) {
	if len(sizes) == 0 {
		return Library{}, fmt.Errorf("xbar: empty crossbar library")
	}
	seen := map[int]bool{}
	var out []int
	for _, s := range sizes {
		if s <= 0 {
			return Library{}, fmt.Errorf("xbar: non-positive crossbar size %d", s)
		}
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	sort.Ints(out)
	return Library{sizes: out}, nil
}

// DefaultLibrary returns the paper's crossbar size set: 16 to 64 in steps
// of 4 (Section 4.2), the upper bound being the reliability limit of
// current memristor crossbar technology (Section 2.1, [6]).
func DefaultLibrary() Library {
	var sizes []int
	for s := 16; s <= 64; s += 4 {
		sizes = append(sizes, s)
	}
	l, err := NewLibrary(sizes...)
	if err != nil {
		panic(err) // impossible: sizes are fixed and valid
	}
	return l
}

// Sizes returns a copy of the allowed sizes, ascending.
func (l Library) Sizes() []int { return append([]int(nil), l.sizes...) }

// Empty reports whether the library has no sizes.
func (l Library) Empty() bool { return len(l.sizes) == 0 }

// Min returns the smallest allowed size. It panics on an empty library.
func (l Library) Min() int {
	l.mustNonEmpty()
	return l.sizes[0]
}

// Max returns the largest allowed size. It panics on an empty library.
func (l Library) Max() int {
	l.mustNonEmpty()
	return l.sizes[len(l.sizes)-1]
}

func (l Library) mustNonEmpty() {
	if len(l.sizes) == 0 {
		panic("xbar: empty library")
	}
}

// FitFor returns the minimum satisfiable crossbar size for a cluster of the
// given neuron count — the smallest library size ≥ clusterSize — and whether
// one exists.
func (l Library) FitFor(clusterSize int) (size int, ok bool) {
	for _, s := range l.sizes {
		if s >= clusterSize {
			return s, true
		}
	}
	return 0, false
}

// Preference is the crossbar preference criterion CP = m/s = u·s from
// Section 3.1: for utilized connections m in a crossbar of size s it grows
// with m at fixed s and shrinks with s at fixed m.
func Preference(m, s int) float64 {
	if s <= 0 {
		panic(fmt.Sprintf("xbar: preference of non-positive size %d", s))
	}
	return float64(m) / float64(s)
}

// Crossbar is one placed crossbar instance of the implementation.
// For crossbars created by clustering, Inputs and Outputs are the same
// neuron set (the cluster); for FullCro block crossbars they are the row and
// column neuron groups of the block. Conns lists exactly the network
// connections this crossbar realizes — ISC iterations may form overlapping
// neuron sets, so a crossbar does not necessarily implement every original
// connection inside its Inputs×Outputs block.
type Crossbar struct {
	Size    int          // s: the crossbar dimension from the library
	Inputs  []int        // global ids of neurons driving the crossbar rows
	Outputs []int        // global ids of neurons fed by the crossbar columns
	Conns   []graph.Edge // the connections realized by this crossbar
}

// Used returns m, the number of connections mapped into this crossbar.
func (c Crossbar) Used() int { return len(c.Conns) }

// Utilization returns u = m/s².
func (c Crossbar) Utilization() float64 {
	return float64(c.Used()) / float64(c.Size) / float64(c.Size)
}

// Preference returns CP = m/s.
func (c Crossbar) Preference() float64 { return Preference(c.Used(), c.Size) }

// Neurons returns the union of Inputs and Outputs, ascending.
func (c Crossbar) Neurons() []int {
	seen := map[int]bool{}
	var out []int
	for _, set := range [][]int{c.Inputs, c.Outputs} {
		for _, n := range set {
			if !seen[n] {
				seen[n] = true
				out = append(out, n)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Assignment is a complete hybrid implementation topology: which
// connections live in which crossbar and which are realized as discrete
// synapses (the outliers of the clustering flow).
type Assignment struct {
	N         int          // number of neurons in the network
	Total     int          // total connections of the source network
	Crossbars []Crossbar   // mapped crossbars
	Synapses  []graph.Edge // connections realized as discrete synapses
}

// MappedConnections returns the number of connections realized in crossbars.
func (a *Assignment) MappedConnections() int {
	m := 0
	for _, c := range a.Crossbars {
		m += c.Used()
	}
	return m
}

// OutlierRatio returns the fraction of connections implemented as discrete
// synapses.
func (a *Assignment) OutlierRatio() float64 {
	if a.Total == 0 {
		return 0
	}
	return float64(len(a.Synapses)) / float64(a.Total)
}

// AvgUtilization returns the mean utilization u over all crossbars, or 0 if
// there are none.
func (a *Assignment) AvgUtilization() float64 {
	if len(a.Crossbars) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range a.Crossbars {
		sum += c.Utilization()
	}
	return sum / float64(len(a.Crossbars))
}

// AvgPreference returns the mean CP over all crossbars, or 0 if none.
func (a *Assignment) AvgPreference() float64 {
	if len(a.Crossbars) == 0 {
		return 0
	}
	sum := 0.0
	for _, c := range a.Crossbars {
		sum += c.Preference()
	}
	return sum / float64(len(a.Crossbars))
}

// SizeHistogram returns a map from crossbar size to instance count
// (Figures 7-9(c)).
func (a *Assignment) SizeHistogram() map[int]int {
	h := map[int]int{}
	for _, c := range a.Crossbars {
		h[c.Size]++
	}
	return h
}

// FanInOut holds a neuron's fanin+fanout split by implementation medium,
// the quantity plotted in Figures 7-9(d).
type FanInOut struct {
	Crossbar int // wires from/to crossbars
	Synapse  int // wires from/to discrete synapses
}

// Sum returns the total fanin+fanout.
func (f FanInOut) Sum() int { return f.Crossbar + f.Synapse }

// FanInOuts computes, for every neuron, the number of crossbar-side and
// synapse-side wire endpoints. A neuron contributes one crossbar wire per
// crossbar it drives (it is the source of at least one of the crossbar's
// connections) and one per crossbar that feeds it; it contributes one
// synapse wire per discrete synapse it touches.
func (a *Assignment) FanInOuts() []FanInOut {
	out := make([]FanInOut, a.N)
	for _, c := range a.Crossbars {
		drives := make(map[int]bool)
		fed := make(map[int]bool)
		for _, e := range c.Conns {
			drives[e.From] = true
			fed[e.To] = true
		}
		for i := range drives {
			out[i].Crossbar++
		}
		for j := range fed {
			out[j].Crossbar++
		}
	}
	for _, e := range a.Synapses {
		out[e.From].Synapse++
		out[e.To].Synapse++
	}
	return out
}

// Validate checks the structural invariants of an assignment against the
// source network: every crossbar size is positive and at least as large as
// its input and output sets, every crossbar connection exists in the
// network and lies within the crossbar's Inputs×Outputs block, crossbar
// connections and synapses are disjoint, and together they cover the
// network exactly.
func (a *Assignment) Validate(cm *graph.Conn) error {
	if a.N != cm.N() {
		return fmt.Errorf("xbar: assignment over %d neurons, network has %d", a.N, cm.N())
	}
	if a.Total != cm.NNZ() {
		return fmt.Errorf("xbar: assignment Total %d, network has %d connections", a.Total, cm.NNZ())
	}
	covered := graph.NewConn(cm.N())
	for k, c := range a.Crossbars {
		if c.Size <= 0 {
			return fmt.Errorf("xbar: crossbar %d has size %d", k, c.Size)
		}
		if len(c.Inputs) > c.Size || len(c.Outputs) > c.Size {
			return fmt.Errorf("xbar: crossbar %d size %d cannot host %d inputs × %d outputs",
				k, c.Size, len(c.Inputs), len(c.Outputs))
		}
		inSet := make(map[int]bool, len(c.Inputs))
		for _, i := range c.Inputs {
			inSet[i] = true
		}
		outSet := make(map[int]bool, len(c.Outputs))
		for _, o := range c.Outputs {
			outSet[o] = true
		}
		for _, e := range c.Conns {
			if !inSet[e.From] || !outSet[e.To] {
				return fmt.Errorf("xbar: crossbar %d connection %d→%d outside its block", k, e.From, e.To)
			}
			if !cm.Has(e.From, e.To) {
				return fmt.Errorf("xbar: crossbar %d connection %d→%d not in network", k, e.From, e.To)
			}
			if covered.Has(e.From, e.To) {
				return fmt.Errorf("xbar: connection %d→%d covered twice", e.From, e.To)
			}
			covered.Set(e.From, e.To)
		}
	}
	for _, e := range a.Synapses {
		if !cm.Has(e.From, e.To) {
			return fmt.Errorf("xbar: synapse %d→%d not in network", e.From, e.To)
		}
		if covered.Has(e.From, e.To) {
			return fmt.Errorf("xbar: connection %d→%d in both a crossbar and a synapse", e.From, e.To)
		}
		covered.Set(e.From, e.To)
	}
	if covered.NNZ() != cm.NNZ() {
		return fmt.Errorf("xbar: %d of %d connections covered", covered.NNZ(), cm.NNZ())
	}
	return nil
}

// FullCro builds the paper's baseline design: partition the neurons into
// ⌈N/s⌉ index-order groups with s = lib.Max() and realize every non-empty
// s×s block of the connection matrix with a maximum-size crossbar
// (Section 4.2). The result uses crossbars only — no discrete synapses.
func FullCro(cm *graph.Conn, lib Library) *Assignment {
	s := lib.Max()
	n := cm.N()
	groups := (n + s - 1) / s
	group := func(g int) []int {
		lo, hi := g*s, (g+1)*s
		if hi > n {
			hi = n
		}
		idx := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			idx = append(idx, i)
		}
		return idx
	}
	a := &Assignment{N: n, Total: cm.NNZ()}
	for gi := 0; gi < groups; gi++ {
		rows := group(gi)
		for gj := 0; gj < groups; gj++ {
			cols := group(gj)
			colSet := make(map[int]bool, len(cols))
			for _, c := range cols {
				colSet[c] = true
			}
			var conns []graph.Edge
			var buf []int
			for _, i := range rows {
				buf = cm.RowNeighbors(i, buf[:0])
				for _, j := range buf {
					if colSet[j] {
						conns = append(conns, graph.Edge{From: i, To: j})
					}
				}
			}
			if len(conns) == 0 {
				continue
			}
			a.Crossbars = append(a.Crossbars, Crossbar{
				Size:    s,
				Inputs:  rows,
				Outputs: cols,
				Conns:   conns,
			})
		}
	}
	return a
}
