package xbar

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestGenerateDefects(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := GenerateDefects(32, 0.05, 0.5, rng)
	// Expect ~51 defects out of 1024 cells.
	if len(d) < 20 || len(d) > 100 {
		t.Fatalf("%d defects at 5%% of 1024 cells", len(d))
	}
	on := 0
	for _, x := range d {
		if x.Row < 0 || x.Row >= 32 || x.Col < 0 || x.Col >= 32 {
			t.Fatalf("defect out of range: %+v", x)
		}
		if x.StuckOn {
			on++
		}
	}
	if on == 0 || on == len(d) {
		t.Fatalf("stuck-on fraction degenerate: %d of %d", on, len(d))
	}
	if len(GenerateDefects(8, 0, 0.5, rng)) != 0 {
		t.Fatal("rate 0 produced defects")
	}
}

func TestGenerateDefectsPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"size": func() { GenerateDefects(0, 0.1, 0.5, rand.New(rand.NewSource(1))) },
		"rate": func() { GenerateDefects(8, 1.5, 0.5, rand.New(rand.NewSource(1))) },
		"onf":  func() { GenerateDefects(8, 0.1, -1, rand.New(rand.NewSource(1))) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}

func TestRepairZeroRateIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cm := graph.RandomSparse(100, 0.93, rng)
	a := FullCro(cm, DefaultLibrary())
	repaired, stats := Repair(a, 0, 0.5, rng)
	if stats.TotalDemotions != 0 {
		t.Fatalf("zero defect rate demoted %d connections", stats.TotalDemotions)
	}
	if err := repaired.Validate(cm); err != nil {
		t.Fatal(err)
	}
	if repaired.MappedConnections() != a.MappedConnections() {
		t.Fatal("mapping changed without defects")
	}
}

func TestRepairPreservesFunctionality(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cm := graph.RandomSparse(150, 0.94, rng)
	a := FullCro(cm, DefaultLibrary())
	repaired, stats := Repair(a, 0.02, 0.3, rng)
	// The repaired implementation must still realize the network exactly.
	if err := repaired.Validate(cm); err != nil {
		t.Fatalf("repaired assignment invalid: %v", err)
	}
	if stats.TotalDemotions == 0 {
		t.Fatal("2% defects on dense blocks demoted nothing — suspicious")
	}
	if len(repaired.Synapses) != len(a.Synapses)+stats.TotalDemotions {
		t.Fatalf("synapse bookkeeping wrong: %d vs %d + %d",
			len(repaired.Synapses), len(a.Synapses), stats.TotalDemotions)
	}
}

func TestRepairSpareRowsAbsorbStuckOn(t *testing.T) {
	// A crossbar whose input count is far below its size has spare
	// physical rows; stuck-on evictions should consume those before
	// demoting anything.
	cm := graph.NewConn(8)
	for i := 0; i < 4; i++ {
		cm.Set(i, (i+1)%4)
	}
	lib, err := NewLibrary(64)
	if err != nil {
		t.Fatal(err)
	}
	a := FullCro(cm, lib)
	if len(a.Crossbars) != 1 || len(a.Crossbars[0].Inputs) != 8 {
		t.Fatalf("unexpected baseline shape: %+v", a.Crossbars)
	}
	rng := rand.New(rand.NewSource(4))
	repaired, stats := Repair(a, 0.01, 1.0, rng) // all defects stuck-on
	if err := repaired.Validate(cm); err != nil {
		t.Fatal(err)
	}
	if stats.DemotedEvict > 0 && stats.RowsRetired == 0 {
		t.Fatal("evictions without retired rows")
	}
	// 56 spare rows against ~41 expected defects: demotions should be rare.
	if stats.DemotedEvict > 2 {
		t.Fatalf("%d evict-demotions despite 56 spare rows", stats.DemotedEvict)
	}
}

// Property: repair never loses or duplicates a connection, for any defect
// rate.
func TestRepairExactCoverageProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 40 + rng.Intn(80)
		cm := graph.RandomSparse(n, 0.85+0.13*rng.Float64(), rng)
		a := FullCro(cm, DefaultLibrary())
		rate := rng.Float64() * 0.1
		repaired, _ := Repair(a, rate, rng.Float64(), rng)
		return repaired.Validate(cm) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}
