package xbar

import (
	"fmt"
	"math"
)

// DeviceModel holds the geometric and electrical parameters of the
// memristor substrate. The paper extracts crossbar, discrete synapse, and
// neuron area/delay from its references [15] and [2] and scales them to the
// 45 nm node without printing the numbers; the defaults below are our
// calibration (documented in DESIGN.md) chosen so the FullCro baseline of
// testbench 3 lands near the magnitudes of Table 1. All lengths are in µm,
// areas in µm², delays in ns.
type DeviceModel struct {
	// MemristorPitch is the cell pitch inside a crossbar (2F at F = 45 nm).
	MemristorPitch float64
	// CrossbarPeriphery is the width of the driver/training circuit strip
	// along each crossbar side; peripheral area therefore grows linearly
	// with the crossbar size.
	CrossbarPeriphery float64
	// NeuronSide is the edge length of an integrate-and-fire neuron cell.
	NeuronSide float64
	// SynapseSide is the edge length of a discrete memristor synapse cell
	// (memristor plus access device).
	SynapseSide float64
	// CrossbarDelayAtRef is the read/compute delay of a crossbar of size
	// RefSize; delay scales quadratically with size (RC of the crossbar
	// lines grows as s²).
	CrossbarDelayAtRef float64
	// RefSize is the crossbar size at which CrossbarDelayAtRef is quoted.
	RefSize int
	// SynapseDelay is the traversal delay of one discrete synapse.
	SynapseDelay float64
	// WireRPerUm and WireCPerUm are the distributed resistance (Ω/µm) and
	// capacitance (fF/µm) of an intermediate metal wire at 45 nm, used for
	// Elmore wire delay and for the RC-derived wire weights in placement.
	WireRPerUm float64
	WireCPerUm float64
}

// Default45nm returns the calibrated 45 nm device model used by the
// experiments.
func Default45nm() DeviceModel {
	return DeviceModel{
		MemristorPitch:     0.09, // 2F at F = 45 nm
		CrossbarPeriphery:  2.0,
		NeuronSide:         2.2,
		SynapseSide:        1.0,
		CrossbarDelayAtRef: 1.95, // Table 1: FullCro delay with s = 64
		RefSize:            64,
		SynapseDelay:       0.30,
		WireRPerUm:         1.5,  // Ω/µm
		WireCPerUm:         0.20, // fF/µm
	}
}

// Validate reports whether all model parameters are physically sensible.
func (d DeviceModel) Validate() error {
	checks := []struct {
		name string
		v    float64
	}{
		{"MemristorPitch", d.MemristorPitch},
		{"CrossbarPeriphery", d.CrossbarPeriphery},
		{"NeuronSide", d.NeuronSide},
		{"SynapseSide", d.SynapseSide},
		{"CrossbarDelayAtRef", d.CrossbarDelayAtRef},
		{"RefSize", float64(d.RefSize)},
		{"SynapseDelay", d.SynapseDelay},
		{"WireRPerUm", d.WireRPerUm},
		{"WireCPerUm", d.WireCPerUm},
	}
	for _, c := range checks {
		if c.v <= 0 || math.IsNaN(c.v) || math.IsInf(c.v, 0) {
			return fmt.Errorf("xbar: device parameter %s = %g must be positive and finite", c.name, c.v)
		}
	}
	return nil
}

// CrossbarSide returns the edge length of a size-s crossbar cell including
// its peripheral strips.
func (d DeviceModel) CrossbarSide(s int) float64 {
	if s <= 0 {
		panic(fmt.Sprintf("xbar: crossbar side of size %d", s))
	}
	return float64(s)*d.MemristorPitch + 2*d.CrossbarPeriphery
}

// CrossbarArea returns the footprint of a size-s crossbar including
// periphery.
func (d DeviceModel) CrossbarArea(s int) float64 {
	side := d.CrossbarSide(s)
	return side * side
}

// CrossbarDelay returns the compute delay of a size-s crossbar. The RC of
// the word/bit lines grows quadratically with the line length, so the delay
// scales as (s/RefSize)².
func (d DeviceModel) CrossbarDelay(s int) float64 {
	if s <= 0 {
		panic(fmt.Sprintf("xbar: crossbar delay of size %d", s))
	}
	r := float64(s) / float64(d.RefSize)
	return d.CrossbarDelayAtRef * r * r
}

// NeuronArea returns the footprint of one neuron cell.
func (d DeviceModel) NeuronArea() float64 { return d.NeuronSide * d.NeuronSide }

// SynapseArea returns the footprint of one discrete synapse cell.
func (d DeviceModel) SynapseArea() float64 { return d.SynapseSide * d.SynapseSide }

// WireDelay returns the Elmore delay of a wire of the given routed length
// in ns: ½·r·c·L² with r in Ω/µm and c in fF/µm (Ω·fF = 10⁻⁶ ns).
func (d DeviceModel) WireDelay(length float64) float64 {
	if length < 0 {
		panic(fmt.Sprintf("xbar: negative wire length %g", length))
	}
	return 0.5 * d.WireRPerUm * d.WireCPerUm * length * length * 1e-6
}

// WireWeight returns the placement weight of a wire attached to a component
// with the given intrinsic delay (crossbar or synapse): wires feeding slower
// components are more timing-critical, so they are weighted higher to be
// kept short. The weight is 1 + the component delay normalized by the
// reference crossbar delay.
func (d DeviceModel) WireWeight(componentDelay float64) float64 {
	if componentDelay < 0 {
		panic(fmt.Sprintf("xbar: negative component delay %g", componentDelay))
	}
	return 1 + componentDelay/d.CrossbarDelayAtRef
}
