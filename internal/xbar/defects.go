package xbar

import (
	"fmt"
	"math/rand"

	"repro/internal/graph"
)

// Defect is one faulty memristor cell in a crossbar: stuck-off cells can
// never conduct (the mapped connection is lost), stuck-on cells always
// conduct (a spurious connection corrupts any simultaneous use of the row
// and column).
type Defect struct {
	Row, Col int
	StuckOn  bool
}

// GenerateDefects draws a random defect map for an s×s crossbar: each cell
// is independently defective with probability rate, and a defective cell is
// stuck-on with probability onFraction (stuck-off otherwise).
func GenerateDefects(s int, rate, onFraction float64, rng *rand.Rand) []Defect {
	if s <= 0 {
		panic(fmt.Sprintf("xbar: defects for size %d", s))
	}
	if rate < 0 || rate > 1 || onFraction < 0 || onFraction > 1 {
		panic(fmt.Sprintf("xbar: defect rate %g / on fraction %g out of [0,1]", rate, onFraction))
	}
	var out []Defect
	for r := 0; r < s; r++ {
		for c := 0; c < s; c++ {
			if rng.Float64() < rate {
				out = append(out, Defect{Row: r, Col: c, StuckOn: rng.Float64() < onFraction})
			}
		}
	}
	return out
}

// RepairStats summarizes a defect-aware repair.
type RepairStats struct {
	Crossbars      int // crossbars processed
	Defects        int // defects seen under occupied rows/cols
	RowsRetired    int // neuron rows evicted because of stuck-on cells
	DemotedStuck   int // connections demoted due to stuck-off cells
	DemotedEvict   int // connections demoted with their evicted row
	TotalDemotions int
}

// Repair produces a defect-aware version of the assignment: every crossbar
// gets an independent defect map drawn at the given rate, and the mapping
// is repaired so the implementation remains functionally exact:
//
//   - a connection whose cell is stuck-off is demoted to a discrete
//     synapse;
//   - a stuck-on cell at an occupied (row, column) pair whose connection
//     is not part of the mapping forces the row's neuron off the crossbar
//     if no spare row exists — its remaining connections in this crossbar
//     are demoted (spare rows are used first, which costs nothing).
//
// The returned assignment covers exactly the same network; Validate against
// the original connection matrix still passes.
func Repair(a *Assignment, rate, onFraction float64, rng *rand.Rand) (*Assignment, *RepairStats) {
	out := &Assignment{
		N:        a.N,
		Total:    a.Total,
		Synapses: append([]graph.Edge(nil), a.Synapses...),
	}
	stats := &RepairStats{}
	for _, cb := range a.Crossbars {
		stats.Crossbars++
		defects := GenerateDefects(cb.Size, rate, onFraction, rng)
		repaired, demotedOff, demotedEvict := repairOne(cb, defects, stats)
		if repaired.Used() > 0 {
			out.Crossbars = append(out.Crossbars, repaired)
		}
		out.Synapses = append(out.Synapses, demotedOff...)
		out.Synapses = append(out.Synapses, demotedEvict...)
		stats.DemotedStuck += len(demotedOff)
		stats.DemotedEvict += len(demotedEvict)
	}
	stats.TotalDemotions = stats.DemotedStuck + stats.DemotedEvict
	return out, stats
}

// repairOne applies a defect map to one crossbar. Rows are assigned to
// Inputs in order and columns to Outputs in order; spare physical rows
// (crossbar size beyond the input count) absorb stuck-on evictions first.
func repairOne(cb Crossbar, defects []Defect, stats *RepairStats) (Crossbar, []graph.Edge, []graph.Edge) {
	rowOf := map[int]int{} // neuron → physical row
	colOf := map[int]int{}
	for r, n := range cb.Inputs {
		rowOf[n] = r
	}
	for c, n := range cb.Outputs {
		colOf[n] = c
	}
	neuronAtRow := map[int]int{}
	for n, r := range rowOf {
		neuronAtRow[r] = n
	}
	conn := map[[2]int]bool{} // (row, col) occupied by a mapped connection
	for _, e := range cb.Conns {
		conn[[2]int{rowOf[e.From], colOf[e.To]}] = true
	}
	stuckOff := map[[2]int]bool{}
	evictRow := map[int]bool{}
	spare := cb.Size - len(cb.Inputs) // free physical rows
	for _, d := range defects {
		key := [2]int{d.Row, d.Col}
		if d.StuckOn {
			// Harmful only if the row and column are both occupied and the
			// crossing is not an intended connection.
			_, rowUsed := neuronAtRow[d.Row]
			colUsed := d.Col < len(cb.Outputs)
			if rowUsed && colUsed && !conn[key] {
				stats.Defects++
				if spare > 0 {
					// Move the neuron to a spare row: free in this model
					// (the crossbar has unused physical rows).
					spare--
				} else if !evictRow[d.Row] {
					evictRow[d.Row] = true
					stats.RowsRetired++
				}
			}
		} else if conn[key] {
			stats.Defects++
			stuckOff[key] = true
		}
	}
	var kept []graph.Edge
	var demotedOff, demotedEvict []graph.Edge
	for _, e := range cb.Conns {
		key := [2]int{rowOf[e.From], colOf[e.To]}
		switch {
		case stuckOff[key]:
			demotedOff = append(demotedOff, e)
		case evictRow[rowOf[e.From]]:
			demotedEvict = append(demotedEvict, e)
		default:
			kept = append(kept, e)
		}
	}
	repaired := Crossbar{
		Size:    cb.Size,
		Inputs:  append([]int(nil), cb.Inputs...),
		Outputs: append([]int(nil), cb.Outputs...),
		Conns:   kept,
	}
	return repaired, demotedOff, demotedEvict
}
