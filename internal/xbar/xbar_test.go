package xbar

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func TestNewLibraryValidation(t *testing.T) {
	if _, err := NewLibrary(); err == nil {
		t.Error("empty library accepted")
	}
	if _, err := NewLibrary(16, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewLibrary(16, -4); err == nil {
		t.Error("negative size accepted")
	}
	l, err := NewLibrary(64, 16, 32, 16)
	if err != nil {
		t.Fatal(err)
	}
	got := l.Sizes()
	want := []int{16, 32, 64}
	if len(got) != len(want) {
		t.Fatalf("Sizes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sizes = %v, want %v", got, want)
		}
	}
}

func TestDefaultLibrary(t *testing.T) {
	l := DefaultLibrary()
	if l.Min() != 16 || l.Max() != 64 {
		t.Fatalf("default library range [%d,%d], want [16,64]", l.Min(), l.Max())
	}
	sizes := l.Sizes()
	if len(sizes) != 13 {
		t.Fatalf("default library has %d sizes, want 13 (16..64 step 4)", len(sizes))
	}
	for i := 1; i < len(sizes); i++ {
		if sizes[i]-sizes[i-1] != 4 {
			t.Fatalf("non-uniform step in %v", sizes)
		}
	}
}

func TestFitFor(t *testing.T) {
	l := DefaultLibrary()
	cases := []struct {
		cluster int
		want    int
		ok      bool
	}{
		{1, 16, true},
		{16, 16, true},
		{17, 20, true},
		{64, 64, true},
		{65, 0, false},
	}
	for _, c := range cases {
		got, ok := l.FitFor(c.cluster)
		if got != c.want || ok != c.ok {
			t.Errorf("FitFor(%d) = %d,%v, want %d,%v", c.cluster, got, ok, c.want, c.ok)
		}
	}
}

func TestPreferenceCriteria(t *testing.T) {
	// (a) fixed s: CP increases with m.
	if Preference(10, 16) >= Preference(20, 16) {
		t.Error("CP not increasing in m")
	}
	// (b) fixed m: CP decreases with s.
	if Preference(10, 16) <= Preference(10, 32) {
		t.Error("CP not decreasing in s")
	}
	// CP = u·s identity.
	c := Crossbar{Size: 20, Conns: make([]graph.Edge, 50)}
	if c.Used() != 50 {
		t.Fatalf("Used = %d, want 50", c.Used())
	}
	if math.Abs(c.Preference()-c.Utilization()*20) > 1e-12 {
		t.Error("CP != u·s")
	}
}

func TestPreferenceInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Preference(1, 0) did not panic")
		}
	}()
	Preference(1, 0)
}

func TestCrossbarNeuronsUnion(t *testing.T) {
	c := Crossbar{Inputs: []int{3, 1}, Outputs: []int{1, 7}}
	got := c.Neurons()
	want := []int{1, 3, 7}
	if len(got) != len(want) {
		t.Fatalf("Neurons = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Neurons = %v, want %v", got, want)
		}
	}
}

// smallNet builds a 6-neuron net: dense triangle {0,1,2} plus edge 3→4.
func smallNet() *graph.Conn {
	c := graph.NewConn(6)
	for _, e := range [][2]int{{0, 1}, {1, 0}, {0, 2}, {2, 0}, {1, 2}, {2, 1}, {3, 4}} {
		c.Set(e[0], e[1])
	}
	return c
}

func validAssignment(cm *graph.Conn) *Assignment {
	return &Assignment{
		N:     cm.N(),
		Total: cm.NNZ(),
		Crossbars: []Crossbar{{
			Size:    16,
			Inputs:  []int{0, 1, 2},
			Outputs: []int{0, 1, 2},
			Conns: []graph.Edge{
				{From: 0, To: 1}, {From: 1, To: 0},
				{From: 0, To: 2}, {From: 2, To: 0},
				{From: 1, To: 2}, {From: 2, To: 1},
			},
		}},
		Synapses: []graph.Edge{{From: 3, To: 4}},
	}
}

func TestAssignmentStats(t *testing.T) {
	cm := smallNet()
	a := validAssignment(cm)
	if err := a.Validate(cm); err != nil {
		t.Fatalf("valid assignment rejected: %v", err)
	}
	if got := a.MappedConnections(); got != 6 {
		t.Errorf("MappedConnections = %d, want 6", got)
	}
	if got := a.OutlierRatio(); math.Abs(got-1.0/7.0) > 1e-12 {
		t.Errorf("OutlierRatio = %g, want 1/7", got)
	}
	if got := a.AvgUtilization(); math.Abs(got-6.0/256.0) > 1e-12 {
		t.Errorf("AvgUtilization = %g, want 6/256", got)
	}
	if got := a.AvgPreference(); math.Abs(got-6.0/16.0) > 1e-12 {
		t.Errorf("AvgPreference = %g, want 6/16", got)
	}
	if h := a.SizeHistogram(); h[16] != 1 || len(h) != 1 {
		t.Errorf("SizeHistogram = %v", h)
	}
}

func TestAssignmentEmptyStats(t *testing.T) {
	a := &Assignment{}
	if a.OutlierRatio() != 0 || a.AvgUtilization() != 0 || a.AvgPreference() != 0 {
		t.Error("empty assignment stats not zero")
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	cm := smallNet()
	mutations := map[string]func(a *Assignment){
		"wrong N":          func(a *Assignment) { a.N = 5 },
		"wrong total":      func(a *Assignment) { a.Total = 3 },
		"bad size":         func(a *Assignment) { a.Crossbars[0].Size = 0 },
		"oversize cluster": func(a *Assignment) { a.Crossbars[0].Size = 2 },
		"conn outside block": func(a *Assignment) {
			a.Crossbars[0].Conns[0] = graph.Edge{From: 3, To: 4}
		},
		"phantom conn": func(a *Assignment) {
			a.Crossbars[0].Conns[0] = graph.Edge{From: 2, To: 2}
		},
		"phantom synapse": func(a *Assignment) { a.Synapses[0] = graph.Edge{From: 5, To: 0} },
		"double cover": func(a *Assignment) {
			a.Synapses = append(a.Synapses, graph.Edge{From: 0, To: 1})
		},
		"missing coverage": func(a *Assignment) { a.Synapses = nil },
	}
	for name, mutate := range mutations {
		a := validAssignment(cm)
		mutate(a)
		if err := a.Validate(cm); err == nil {
			t.Errorf("%s: Validate accepted corrupt assignment", name)
		}
	}
}

func TestFanInOuts(t *testing.T) {
	cm := smallNet()
	a := validAssignment(cm)
	if err := a.Validate(cm); err != nil {
		t.Fatal(err)
	}
	f := a.FanInOuts()
	// Neurons 0,1,2 each drive and are fed by the one crossbar → 2 each.
	for _, n := range []int{0, 1, 2} {
		if f[n].Crossbar != 2 || f[n].Synapse != 0 {
			t.Errorf("neuron %d fan = %+v, want {2 0}", n, f[n])
		}
	}
	if f[3].Synapse != 1 || f[4].Synapse != 1 {
		t.Errorf("synapse fans = %+v %+v", f[3], f[4])
	}
	if f[5].Sum() != 0 {
		t.Errorf("isolated neuron has fan %+v", f[5])
	}
}

func TestFullCroCoversNetwork(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cm := graph.RandomSparse(150, 0.94, rng)
	lib := DefaultLibrary()
	a := FullCro(cm, lib)
	if err := a.Validate(cm); err != nil {
		t.Fatalf("FullCro invalid: %v", err)
	}
	if len(a.Synapses) != 0 {
		t.Fatalf("FullCro produced %d synapses, want 0", len(a.Synapses))
	}
	for _, c := range a.Crossbars {
		if c.Size != 64 {
			t.Fatalf("FullCro crossbar size %d, want 64", c.Size)
		}
	}
	// 150 neurons → 3 groups → at most 9 blocks.
	if len(a.Crossbars) > 9 {
		t.Fatalf("FullCro produced %d crossbars, want ≤ 9", len(a.Crossbars))
	}
	if a.MappedConnections() != cm.NNZ() {
		t.Fatalf("FullCro mapped %d of %d connections", a.MappedConnections(), cm.NNZ())
	}
}

func TestFullCroSkipsEmptyBlocks(t *testing.T) {
	cm := graph.NewConn(128) // two groups of 64
	cm.Set(0, 1)             // only block (0,0) is populated
	a := FullCro(cm, DefaultLibrary())
	if len(a.Crossbars) != 1 {
		t.Fatalf("FullCro kept %d crossbars, want 1", len(a.Crossbars))
	}
	if err := a.Validate(cm); err != nil {
		t.Fatal(err)
	}
}

func TestFullCroValidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(200)
		cm := graph.RandomSparse(n, 0.8+0.19*rng.Float64(), rng)
		a := FullCro(cm, DefaultLibrary())
		return a.Validate(cm) == nil && len(a.Synapses) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDeviceModelDefaults(t *testing.T) {
	d := Default45nm()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Delay at the reference size is the reference delay.
	if got := d.CrossbarDelay(64); math.Abs(got-1.95) > 1e-12 {
		t.Errorf("CrossbarDelay(64) = %g, want 1.95", got)
	}
	// Delay scales quadratically: half size → quarter delay.
	if got := d.CrossbarDelay(32); math.Abs(got-1.95/4) > 1e-12 {
		t.Errorf("CrossbarDelay(32) = %g, want %g", got, 1.95/4)
	}
	// Areas are positive and monotone in size.
	if d.CrossbarArea(16) >= d.CrossbarArea(64) {
		t.Error("crossbar area not monotone in size")
	}
	if d.NeuronArea() <= 0 || d.SynapseArea() <= 0 {
		t.Error("non-positive cell areas")
	}
}

func TestDeviceModelValidateRejectsBadParams(t *testing.T) {
	d := Default45nm()
	d.MemristorPitch = 0
	if d.Validate() == nil {
		t.Error("zero pitch accepted")
	}
	d = Default45nm()
	d.WireRPerUm = math.Inf(1)
	if d.Validate() == nil {
		t.Error("infinite resistance accepted")
	}
}

func TestWireDelayQuadratic(t *testing.T) {
	d := Default45nm()
	d1, d2 := d.WireDelay(100), d.WireDelay(200)
	if math.Abs(d2-4*d1) > 1e-15 {
		t.Errorf("WireDelay not quadratic: %g vs 4×%g", d2, d1)
	}
	if d.WireDelay(0) != 0 {
		t.Error("WireDelay(0) != 0")
	}
	// A 100 µm wire at 45 nm is tens of femtoseconds-to-picoseconds scale,
	// far below a crossbar's ns delay.
	if d1 > 0.1 {
		t.Errorf("WireDelay(100µm) = %g ns, implausibly large", d1)
	}
}

func TestWireWeightMonotone(t *testing.T) {
	d := Default45nm()
	if d.WireWeight(d.CrossbarDelay(64)) <= d.WireWeight(d.CrossbarDelay(16)) {
		t.Error("wire weight not monotone in component delay")
	}
	if d.WireWeight(0) != 1 {
		t.Errorf("WireWeight(0) = %g, want 1", d.WireWeight(0))
	}
}

func TestDevicePanicsOnInvalidArgs(t *testing.T) {
	d := Default45nm()
	for name, f := range map[string]func(){
		"side":   func() { d.CrossbarSide(0) },
		"delay":  func() { d.CrossbarDelay(-1) },
		"wire":   func() { d.WireDelay(-5) },
		"weight": func() { d.WireWeight(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with invalid arg did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestLibraryEmpty(t *testing.T) {
	var l Library
	if !l.Empty() {
		t.Fatal("zero library not empty")
	}
	if DefaultLibrary().Empty() {
		t.Fatal("default library reported empty")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Min of empty library did not panic")
		}
	}()
	l.Min()
}
