package xbar

import (
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/graph"
)

func TestAssignmentJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cm := graph.RandomSparse(80, 0.92, rng)
	a := FullCro(cm, DefaultLibrary())
	var b strings.Builder
	if err := a.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(cm); err != nil {
		t.Fatalf("round-tripped assignment invalid: %v", err)
	}
	if back.N != a.N || back.Total != a.Total ||
		len(back.Crossbars) != len(a.Crossbars) || len(back.Synapses) != len(a.Synapses) {
		t.Fatal("round trip changed shape")
	}
	if back.MappedConnections() != a.MappedConnections() {
		t.Fatal("round trip changed connection count")
	}
}

func TestAssignmentJSONErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "{nope",
		"wrong version": `{"version": 9, "neurons": 2, "connections": 0, "crossbars": null, "synapses": null}`,
		"unknown field": `{"version": 1, "neurons": 2, "connections": 0, "crossbars": null, "synapses": null, "extra": 1}`,
		"negative":      `{"version": 1, "neurons": -2, "connections": 0, "crossbars": null, "synapses": null}`,
	}
	for name, in := range cases {
		if _, err := ReadJSON(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestAssignmentJSONFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "a.json")
	rng := rand.New(rand.NewSource(2))
	cm := graph.RandomSparse(50, 0.9, rng)
	a := FullCro(cm, DefaultLibrary())
	if err := a.SaveJSON(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadJSON(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(cm); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadJSON(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
