package place

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/xbar"
)

// sparseNetlist builds a FullCro netlist of an n-neuron random sparse
// network — the crossbar-free-heavy counterpart to clusteredNetlist, with
// many same-footprint neurons and synapses for the detailed placer.
func sparseNetlist(t testing.TB, n int, sparsity float64, seed int64) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	a := xbar.FullCro(graph.RandomSparse(n, sparsity, rng), xbar.DefaultLibrary())
	nl, err := netlist.Build(a, xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

// TestPlaceWorkerInvariance pins the placement determinism contract: every
// kernel of the engine (red-black multigrid relaxation, the two-pass
// wirelength gradient, the chunked density scatter, the bucketed overlap
// reduction) must produce bit-identical placements for any worker count.
// Exact float equality on every coordinate, not approximate.
func TestPlaceWorkerInvariance(t *testing.T) {
	cases := []struct {
		name string
		nl   *netlist.Netlist
	}{
		{"clustered90x30", clusteredNetlist(t)},
		{"sparse720", sparseNetlist(t, 720, 0.985, 21)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			run := func(workers int) *Result {
				opts := DefaultOptions()
				// A reduced budget keeps the -race run fast; the kernels
				// exercised are exactly those of a full placement.
				opts.MaxOuter = 3
				opts.CGIterations = 40
				opts.Workers = workers
				r, err := Place(tc.nl, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				return r
			}
			serial := run(1)
			for _, workers := range []int{2, 4, 8} {
				got := run(workers)
				if got.HPWL != serial.HPWL || got.GlobalHPWL != serial.GlobalHPWL {
					t.Fatalf("workers=%d: HPWL %g/%g, serial %g/%g",
						workers, got.HPWL, got.GlobalHPWL, serial.HPWL, serial.GlobalHPWL)
				}
				if got.Outer != serial.Outer || got.FieldSolves != serial.FieldSolves ||
					got.VCycles != serial.VCycles || got.FieldSweeps != serial.FieldSweeps {
					t.Fatalf("workers=%d: solver history diverged: %+v vs %+v", workers, got, serial)
				}
				if got.SwapCandidates != serial.SwapCandidates || got.SwapsAccepted != serial.SwapsAccepted {
					t.Fatalf("workers=%d: swap history diverged: %d/%d vs %d/%d",
						workers, got.SwapCandidates, got.SwapsAccepted,
						serial.SwapCandidates, serial.SwapsAccepted)
				}
				for i := range serial.X {
					if got.X[i] != serial.X[i] || got.Y[i] != serial.Y[i] {
						t.Fatalf("workers=%d: cell %d at (%g, %g), serial (%g, %g)",
							workers, i, got.X[i], got.Y[i], serial.X[i], serial.Y[i])
					}
				}
			}
		})
	}
}
