// Package place implements the customized analytical placement of
// Section 3.5: the weighted-average (WA) smooth wirelength model (Eq. 1)
// with user-defined wire weights, a density spreading force inside the
// λ-escalation penalty loop of Algorithm 4, routing-space reservation
// through the virtual cell width ω (refined with a per-pin reserve), a
// spiral legalizer for the remaining overlap (cells are mixed-size and are
// not required to align into rows), and centroid/swap detailed placement.
//
// The density model deviates deliberately from the paper's pairwise
// sigmoid-overlap form: spreading uses the electrostatic potential-field
// formulation (bin densities → Poisson-solved potential → per-cell force),
// which preserves relative cell order where pairwise repulsion does not.
// The initial "regular location" is connectivity-aware: crossbar groups
// are packed as compact tiles and arranged by a 2-D spectral embedding of
// the tile adjacency. Both deviations, and the measurements motivating
// them, are documented in DESIGN.md §3b.
package place

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/matrix"
	"repro/internal/netlist"
	"repro/internal/obs"
)

// Options tunes the placer. The zero value is invalid; use DefaultOptions.
type Options struct {
	// Gamma is the WA wirelength smoothing parameter γ in µm.
	Gamma float64
	// Omega is the virtual-width factor ω: during global placement every
	// cell occupies Omega × its physical width/height, reserving space for
	// routing (Section 3.5).
	Omega float64
	// RouteReserve is the extra virtual width (µm) a cell reserves per
	// wire endpoint (pin) on it, refining ω: a max-size crossbar with
	// 100+ wires needs far more escape/routing space around it than a
	// two-pin synapse, which is exactly the congestion mechanism that
	// inflates the FullCro baseline's die in the paper's Figure 10.
	RouteReserve float64
	// OverlapThreshold stops the λ loop when the total pairwise physical
	// overlap area falls below this fraction of the total cell area.
	OverlapThreshold float64
	// MaxOuter bounds the λ-doubling iterations.
	MaxOuter int
	// CGIterations bounds the conjugate-gradient steps per λ round.
	CGIterations int
	// SwapRadius bounds the detailed-placement candidate search: swap
	// partners for a cell are the same-footprint cells within SwapRadius
	// times the footprint's larger side. Zero means DefaultSwapRadius;
	// negative is invalid. Larger radii approach the old all-pairs sweep at
	// quadratic cost, smaller ones keep the pass near-linear.
	SwapRadius float64
	// Workers bounds the goroutines running the placement kernels (field
	// relaxation, gradient evaluation, bin and overlap accumulation). Zero
	// means the parallel package default; negative is invalid. The placed
	// result is bit-identical for every worker count.
	Workers int
	// Observer, when non-nil, receives an obs.PlaceProgress event at every
	// overlap checkpoint of the λ loop (several per outer round) and one
	// obs.PlaceStats summary after detailed placement. Observers are
	// passive: the values they see are the ones the loop computes for
	// its own convergence check, so attaching one never changes the
	// placement.
	Observer obs.Observer
}

// DefaultOptions returns the parameter set used by the experiments.
func DefaultOptions() Options {
	return Options{
		Gamma:            2.0,
		Omega:            1.6,
		RouteReserve:     0.03,
		OverlapThreshold: 0.01,
		MaxOuter:         18,
		CGIterations:     120,
		SwapRadius:       DefaultSwapRadius,
	}
}

func (o Options) validate() error {
	if o.Gamma <= 0 {
		return fmt.Errorf("place: gamma %g must be positive", o.Gamma)
	}
	if o.Omega < 1 {
		return fmt.Errorf("place: omega %g must be ≥ 1", o.Omega)
	}
	if o.RouteReserve < 0 {
		return fmt.Errorf("place: route reserve %g must be ≥ 0", o.RouteReserve)
	}
	if o.OverlapThreshold < 0 {
		return fmt.Errorf("place: overlap threshold %g must be ≥ 0", o.OverlapThreshold)
	}
	if o.MaxOuter <= 0 || o.CGIterations <= 0 {
		return fmt.Errorf("place: iteration limits must be positive")
	}
	if o.SwapRadius < 0 || math.IsNaN(o.SwapRadius) {
		return fmt.Errorf("place: swap radius %g must be ≥ 0", o.SwapRadius)
	}
	if o.Workers < 0 {
		return fmt.Errorf("place: workers %d must be ≥ 0", o.Workers)
	}
	return nil
}

// Result is a legalized placement.
type Result struct {
	// X, Y are the cell center coordinates, indexed by cell ID.
	X, Y []float64
	// MinX, MinY, MaxX, MaxY is the physical bounding box of all cells.
	MinX, MinY, MaxX, MaxY float64
	// HPWL is the weighted half-perimeter wirelength of the final
	// placement in µm.
	HPWL float64
	// InitialHPWL and GlobalHPWL record the weighted HPWL at the initial
	// grid and after global optimization (before legalization), for
	// diagnosing optimizer and legalizer quality.
	InitialHPWL, GlobalHPWL float64
	// Outer is the number of λ rounds performed (a partial round counts
	// as one).
	Outer int
	// FieldSolves, VCycles and FieldSweeps count the Poisson field work of
	// the global phase: field refreshes (one per optimizer step), multigrid
	// V-cycles across all refreshes, and red-black relaxation sweeps summed
	// over every multigrid level. All three are deterministic for any
	// worker count.
	FieldSolves, VCycles, FieldSweeps int
	// SwapCandidates and SwapsAccepted count the detailed-placement pairs
	// evaluated and the position swaps taken.
	SwapCandidates, SwapsAccepted int
}

// Width returns the bounding-box width.
func (r *Result) Width() float64 { return r.MaxX - r.MinX }

// Height returns the bounding-box height.
func (r *Result) Height() float64 { return r.MaxY - r.MinY }

// Area returns the placement (bounding-box) area in µm².
func (r *Result) Area() float64 { return r.Width() * r.Height() }

// Place runs Algorithm 4 on the netlist and returns a legalized placement.
func Place(nl *netlist.Netlist, opts Options) (*Result, error) {
	return PlaceCtx(context.Background(), nl, opts)
}

// PlaceCtx is Place under a context: cancellation is checked at every
// overlap checkpoint of the λ loop and once more before legalization, so a
// cancel returns a wrapped ctx.Err() well within one outer λ round. An
// uncancelled PlaceCtx is bit-identical to Place.
func PlaceCtx(ctx context.Context, nl *netlist.Netlist, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	n := len(nl.Cells)
	if n == 0 {
		return &Result{}, nil
	}
	p := newProblem(nl, opts)
	p.ctx = ctx
	p.initialGrid()
	p.setupRegion()
	initialHPWL := p.weightedHPWL()

	if len(nl.Wires) > 0 && n > 1 {
		// λ₀ = Σ|∂WL| / Σ|∂D| (Algorithm 4 line 1), scaled down so the
		// early iterations are wirelength-dominant (cells pull into their
		// connectivity structure); λ then grows geometrically — doubling
		// every CGIterations steps, the within-round/doubling structure of
		// the paper's Algorithm 4 — until the physical overlap falls under
		// the threshold. The spreading field is re-solved every iteration
		// and steps are movement-capped, which keeps the nonconvex descent
		// stable (see minimize).
		if err := p.solveField(p.pos); err != nil {
			return nil, fmt.Errorf("place: cancelled in λ round 0: %w", err)
		}
		ratio, err := p.gradRatioAt(p.pos)
		if err != nil {
			return nil, fmt.Errorf("place: cancelled in λ round 0: %w", err)
		}
		lambda := 0.05 * ratio
		growth := math.Pow(2, 1/float64(opts.CGIterations))
		checkEvery := 20
		budget := opts.MaxOuter * opts.CGIterations
		// Track the best visited state: the λ schedule keeps spreading
		// after the sweet spot, so the loop remembers the snapshot with
		// the best legalization-aware quality (HPWL inflated by the
		// relative remaining overlap) and restores it at the end.
		best := append([]float64(nil), p.pos...)
		bestProxy := math.Inf(1)
		bestHPWL, bestOverlap := 0.0, 0.0
		for iter := 0; iter < budget; iter++ {
			// The λ this step runs under; the checkpoint below reports it
			// (the growth update happens after, for the next step).
			stepLambda := lambda
			round := iter / opts.CGIterations
			if err := p.step(stepLambda); err != nil {
				return nil, fmt.Errorf("place: cancelled in λ round %d: %w", round, err)
			}
			lambda *= growth
			if iter%checkEvery == checkEvery-1 {
				// Rounds performed so far: the partial round this step
				// belongs to counts as one.
				p.outer = round + 1
				if err := ctx.Err(); err != nil {
					return nil, fmt.Errorf("place: cancelled in λ round %d: %w", round, err)
				}
				ov, err := p.physicalOverlap(p.pos)
				if err != nil {
					return nil, fmt.Errorf("place: cancelled in λ round %d: %w", round, err)
				}
				hpwl := p.weightedHPWL()
				proxy := hpwl * (1 + ov/p.totalArea)
				if proxy < bestProxy {
					bestProxy = proxy
					bestHPWL, bestOverlap = hpwl, ov
					copy(best, p.pos)
				}
				obs.Emit(opts.Observer, obs.PlaceProgress{
					Outer:       round,
					Step:        iter + 1,
					Lambda:      stepLambda,
					HPWL:        hpwl,
					Overlap:     ov,
					BestHPWL:    bestHPWL,
					BestOverlap: bestOverlap,
				})
				if ov <= opts.OverlapThreshold*p.totalArea {
					break
				}
			}
		}
		copy(p.pos, best)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("place: cancelled before legalization: %w", err)
	}
	globalHPWL := p.weightedHPWL()
	detailStart := time.Now()
	p.legalize()
	if err := p.swapRefine(); err != nil {
		return nil, fmt.Errorf("place: cancelled in detailed placement: %w", err)
	}
	p.detailTime = time.Since(detailStart)
	obs.Emit(opts.Observer, obs.PlaceStats{
		Outer:          p.outer,
		FieldSolves:    p.fieldSolves,
		VCycles:        p.vcycles,
		FieldSweeps:    p.fieldSweeps,
		SwapCandidates: p.swapCandidates,
		SwapsAccepted:  p.swapsAccepted,
		FieldTime:      p.fieldTime,
		DetailTime:     p.detailTime,
	})
	r := p.result()
	r.InitialHPWL, r.GlobalHPWL = initialHPWL, globalHPWL
	return r, nil
}

// weightedHPWL evaluates the exact (non-smooth) weighted HPWL at the
// current positions.
func (p *problem) weightedHPWL() float64 {
	total := 0.0
	for _, w := range p.nl.Wires {
		total += w.Weight * (math.Abs(p.pos[w.From]-p.pos[w.To]) +
			math.Abs(p.pos[p.n+w.From]-p.pos[p.n+w.To]))
	}
	return total
}

// gradRatioAt evaluates λ = Σ|∂WL|/Σ|∂D| at pos, guarding against a
// (near-)zero density gradient: when the placement is essentially
// overlap-free the ratio is meaningless and 1 is returned. The step
// workspace is borrowed for the two gradients (callers invoke this before
// the first step).
func (p *problem) gradRatioAt(pos []float64) (float64, error) {
	gw, gd := p.stepGrad, p.stepScratch
	if err := p.wirelengthGrad(pos, gw); err != nil {
		return 0, err
	}
	if err := p.densityGrad(pos, gd); err != nil {
		return 0, err
	}
	sw, sd := 0.0, 0.0
	for i := range gw {
		sw += math.Abs(gw[i])
		sd += math.Abs(gd[i])
	}
	if sd <= 1e-9*sw || sd == 0 {
		return 1, nil
	}
	l := sw / sd
	if l <= 0 || math.IsNaN(l) || math.IsInf(l, 0) {
		return 1, nil
	}
	return l, nil
}

// problem carries the optimization state. Positions are packed as
// [x0..xn-1, y0..yn-1].
//
// Everything the inner loop touches repeatedly lives in a reusable
// workspace allocated up front (newProblem/setupRegion): multigrid levels,
// per-chunk bin buffers, incidence lists, the optimizer vectors, and the
// overlap bucket store. The hot kernels are prebuilt method values
// (relaxRowFn & co.) because parallel.ForCtx stores its fn, so a literal
// closure at each call site would heap-allocate per sweep.
type problem struct {
	nl        *netlist.Netlist
	opts      Options
	ctx       context.Context
	workers   int
	n         int
	pos       []float64
	vw, vh    []float64 // virtual dims (physical × ω)
	pw, ph    []float64 // physical dims
	totalArea float64
	maxPExt   float64 // largest physical extent, the overlap bucket size
	outer     int
	// Incidence CSR: incWire[incStart[i]:incStart[i+1]] are the wire
	// indices touching cell i, in ascending wire order. Built once; shared
	// by the parallel wirelength gradient and detailed placement.
	incStart, incWire []int
	// Density-field geometry (fixed after initialGrid): a square placement
	// region split into grid×grid bins.
	regX0, regY0 float64
	regSize      float64
	grid         int
	binSize      float64
	binArea      float64
	binAcc       []float64 // scratch: per-bin accumulated virtual area
	// Electrostatic spreading potential ψ, refreshed every step from the
	// bin densities by a multigrid Poisson solve. psi aliases levels[0].psi.
	psi    []float64
	levels []fieldLevel
	// Fixed-decomposition scatter buffers for accumulateBins: cell chunk c
	// deposits into binChunks[c], and the per-bin combine walks chunks in
	// fixed order, so the density is bit-identical for any worker count.
	binChunks [][]float64
	binChunk  int // cells per chunk; depends only on n
	// Optimizer state.
	stepGrad, stepPrevG, stepDir, stepScratch []float64
	// Sorted spatial-bucket store shared by physicalOverlap and the
	// detailed-placement candidate generator (never live at once).
	ovSorter    bucketSorter
	ovStart     []int
	ovBKey      []uint64
	ovPart      []float64
	ovIDScratch []int
	// cellWL[i] caches cell i's incident weighted wirelength during
	// detailed placement, updated incrementally on accepted swaps.
	cellWL []float64
	// Current kernel arguments and prebuilt kernel method values (see the
	// struct comment).
	kPos, kGrad  []float64
	relaxLv      *fieldLevel
	relaxColor   int
	wgX, wgY     []float64 // per-wire span gradients (∂span/∂From)
	relaxRowFn   func(int)
	residRowFn   func(int)
	wireGradFn   func(int)
	wlGradFn     func(int)
	denGradFn    func(int)
	binScatterFn func(int)
	binReduceFn  func(int)
	// Kernel statistics for obs.PlaceStats and the Result counters.
	fieldSolves, vcycles, fieldSweeps int
	swapCandidates, swapsAccepted     int
	fieldTime, detailTime             time.Duration
}

func newProblem(nl *netlist.Netlist, opts Options) *problem {
	n := len(nl.Cells)
	p := &problem{
		nl:   nl,
		opts: opts,
		ctx:  context.Background(),
		n:    n,
		pos:  make([]float64, 2*n),
		vw:   make([]float64, n),
		vh:   make([]float64, n),
		pw:   make([]float64, n),
		ph:   make([]float64, n),
	}
	p.workers = opts.Workers
	pins := make([]int, n)
	for _, w := range nl.Wires {
		pins[w.From]++
		pins[w.To]++
	}
	for i, c := range nl.Cells {
		p.pw[i], p.ph[i] = c.W, c.H
		reserve := opts.RouteReserve * float64(pins[i])
		p.vw[i] = c.W*opts.Omega + reserve
		p.vh[i] = c.H*opts.Omega + reserve
		p.totalArea += c.Area()
		p.maxPExt = math.Max(p.maxPExt, math.Max(c.W, c.H))
	}
	// Incidence CSR (counts → prefix sums → fill in wire order).
	p.incStart = make([]int, n+1)
	for _, w := range nl.Wires {
		p.incStart[w.From+1]++
		p.incStart[w.To+1]++
	}
	for i := 0; i < n; i++ {
		p.incStart[i+1] += p.incStart[i]
	}
	p.incWire = make([]int, 2*len(nl.Wires))
	fill := pins // reuse as per-cell fill cursor
	for i := range fill {
		fill[i] = 0
	}
	for wi, w := range nl.Wires {
		p.incWire[p.incStart[w.From]+fill[w.From]] = wi
		fill[w.From]++
		p.incWire[p.incStart[w.To]+fill[w.To]] = wi
		fill[w.To]++
	}
	p.stepGrad = make([]float64, 2*n)
	p.stepPrevG = make([]float64, 2*n)
	p.stepDir = make([]float64, 2*n)
	p.stepScratch = make([]float64, 2*n)
	p.ovSorter.keys = make([]uint64, n)
	p.ovSorter.ids = make([]int, n)
	p.cellWL = make([]float64, n)
	p.wgX = make([]float64, len(nl.Wires))
	p.wgY = make([]float64, len(nl.Wires))
	p.relaxRowFn = p.relaxRow
	p.residRowFn = p.residRow
	p.wireGradFn = p.wireGrad
	p.wlGradFn = p.wlGradCell
	p.denGradFn = p.denGradCell
	p.binScatterFn = p.binScatter
	p.binReduceFn = p.binReduce
	return p
}

// setupRegion fixes the density region around the current placement: a
// square with a small margin over the total virtual area, centered at the
// current centroid. Bin count scales with √n.
func (p *problem) setupRegion() {
	totalV := 0.0
	for i := 0; i < p.n; i++ {
		totalV += p.vw[i] * p.vh[i]
	}
	p.regSize = 1.12 * math.Sqrt(totalV)
	cx, cy := 0.0, 0.0
	for i := 0; i < p.n; i++ {
		cx += p.pos[i]
		cy += p.pos[p.n+i]
	}
	cx /= float64(p.n)
	cy /= float64(p.n)
	p.regX0 = cx - p.regSize/2
	p.regY0 = cy - p.regSize/2
	g := int(math.Ceil(math.Sqrt(float64(p.n))))
	if g < 4 {
		g = 4
	}
	if g > 64 {
		g = 64
	}
	p.grid = g
	p.binSize = p.regSize / float64(g)
	p.binArea = p.binSize * p.binSize
	p.binAcc = make([]float64, g*g)
	p.psi = make([]float64, g*g)
	p.setupLevels()
	// Fixed chunk decomposition for the density scatter: depends only on
	// n, never on the worker count (the determinism contract).
	nb := p.n / 64
	if nb < 1 {
		nb = 1
	}
	if nb > 16 {
		nb = 16
	}
	p.binChunk = (p.n + nb - 1) / nb
	nb = (p.n + p.binChunk - 1) / p.binChunk
	p.binChunks = make([][]float64, nb)
	for c := range p.binChunks {
		p.binChunks[c] = make([]float64, g*g)
	}
}

// samplePotential bilinearly interpolates ψ at (x, y) and returns the value
// together with the EXACT gradient of that interpolation (so the objective
// and its gradient are mutually consistent for the line search). Outside
// the region the value clamps and the corresponding gradient component
// is zero.
func (p *problem) samplePotential(x, y float64) (v, gx, gy float64) {
	g := p.grid
	fx := (x-p.regX0)/p.binSize - 0.5
	fy := (y-p.regY0)/p.binSize - 0.5
	clampedX, clampedY := false, false
	max := float64(g - 1)
	if fx < 0 {
		fx, clampedX = 0, true
	} else if fx > max {
		fx, clampedX = max, true
	}
	if fy < 0 {
		fy, clampedY = 0, true
	} else if fy > max {
		fy, clampedY = max, true
	}
	x0, y0 := int(fx), int(fy)
	if x0 > g-2 {
		x0 = g - 2
	}
	if y0 > g-2 {
		y0 = g - 2
	}
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	x1, y1 := x0+1, y0+1
	tx, ty := fx-float64(x0), fy-float64(y0)
	v00 := p.psi[y0*g+x0]
	v10 := p.psi[y0*g+x1]
	v01 := p.psi[y1*g+x0]
	v11 := p.psi[y1*g+x1]
	v = v00*(1-tx)*(1-ty) + v10*tx*(1-ty) + v01*(1-tx)*ty + v11*tx*ty
	if !clampedX {
		gx = ((v10-v00)*(1-ty) + (v11-v01)*ty) / p.binSize
	}
	if !clampedY {
		gy = ((v01-v00)*(1-tx) + (v11-v10)*tx) / p.binSize
	}
	return v, gx, gy
}

// initialGrid produces the regular initial placement of Algorithm 4
// line 1. It is connectivity-aware and hierarchical: every crossbar and
// the neurons/synapses homed to it are packed into a compact square tile
// (crossbar at the center), and the tiles are then shelf-packed in a
// greedy chain order that keeps crossbars sharing neurons adjacent. The
// non-convex refinement thus starts from a basin where cluster locality —
// the property the ISC clustering creates and the paper's Figure 10
// layout exhibits — is already expressed.
func (p *problem) initialGrid() {
	groups, adj, leftovers := p.connectivityGroups()
	if groups == nil {
		order := make([]int, p.n)
		for i := range order {
			order[i] = i
		}
		p.shelfPack(order)
		return
	}
	p.packTiles(groups, spectralTileOrder(adj), leftovers)
}

// tileGroup is one crossbar with the cells homed to it.
type tileGroup struct {
	crossbar int   // crossbar cell id
	members  []int // neuron and synapse cell ids homed to this crossbar
}

// connectivityGroups assigns every neuron to the crossbar with the largest
// summed wire weight to it (its "home"), synapses to their source neuron's
// home, and returns the per-crossbar groups together with their pairwise
// adjacency (how many neurons homed to one are also wired to the other),
// plus the cells with no crossbar attachment. It returns nil groups when
// the netlist has no crossbars.
func (p *problem) connectivityGroups() ([]tileGroup, [][]float64, []int) {
	n := p.n
	var crossbars []int
	for i, c := range p.nl.Cells {
		if c.Kind == netlist.KindCrossbar {
			crossbars = append(crossbars, i)
		}
	}
	if len(crossbars) == 0 {
		return nil, nil, nil
	}
	cbIndex := make(map[int]int, len(crossbars)) // cell id → crossbar slot
	for slot, id := range crossbars {
		cbIndex[id] = slot
	}
	// Home of each neuron: the crossbar with the largest summed wire
	// weight to it.
	homeWeight := make(map[int]map[int]float64) // neuron cell → crossbar slot → weight
	for _, w := range p.nl.Wires {
		var neuron, cb int
		if slot, ok := cbIndex[w.From]; ok {
			cb, neuron = slot, w.To
		} else if slot, ok := cbIndex[w.To]; ok {
			cb, neuron = slot, w.From
		} else {
			continue
		}
		if p.nl.Cells[neuron].Kind != netlist.KindNeuron {
			continue
		}
		m := homeWeight[neuron]
		if m == nil {
			m = map[int]float64{}
			homeWeight[neuron] = m
		}
		m[cb] += w.Weight
	}
	home := make([]int, n) // cell → crossbar slot, -1 if none
	for i := range home {
		home[i] = -1
	}
	for neuron, m := range homeWeight {
		best, bestW := -1, 0.0
		for slot, wt := range m {
			if wt > bestW || (wt == bestW && (best == -1 || slot < best)) {
				best, bestW = slot, wt
			}
		}
		home[neuron] = best
	}
	// Synapses follow their source neuron's home (fallback: target's).
	for i, c := range p.nl.Cells {
		if c.Kind != netlist.KindSynapse {
			continue
		}
		for _, w := range p.nl.Wires {
			if w.From == i && home[w.To] >= 0 {
				home[i] = home[w.To]
				break
			}
			if w.To == i && home[w.From] >= 0 {
				home[i] = home[w.From]
				break
			}
		}
	}
	// Crossbar adjacency: number of neurons homed to one that are wired to
	// the other.
	adj := make([][]float64, len(crossbars))
	for i := range adj {
		adj[i] = make([]float64, len(crossbars))
	}
	for neuron, m := range homeWeight {
		h := home[neuron]
		if h < 0 {
			continue
		}
		for slot := range m {
			if slot != h {
				adj[h][slot]++
				adj[slot][h]++
			}
		}
	}
	// Collect members per crossbar slot; groups stay in slot order — the
	// caller arranges them spatially from the adjacency.
	members := make([][]int, len(crossbars))
	var leftovers []int
	for i := range p.nl.Cells {
		if _, isCB := cbIndex[i]; isCB {
			continue
		}
		h := home[i]
		if h < 0 {
			leftovers = append(leftovers, i)
			continue
		}
		members[h] = append(members[h], i)
	}
	groups := make([]tileGroup, 0, len(crossbars))
	for slot := range crossbars {
		groups = append(groups, tileGroup{crossbar: crossbars[slot], members: members[slot]})
	}
	return groups, adj, leftovers
}

// spectralTileOrder orders the tiles for the serpentine shelf layout by a
// two-dimensional spectral embedding of the tile adjacency graph: the two
// lowest non-trivial Laplacian eigenvectors give each tile a (u₂, u₃)
// coordinate, tiles are split into √G rows by u₂, and each row is sorted by
// u₃ — so tiles that share neurons land in nearby shelf positions in both
// dimensions. This is where the clustered design profits: ISC crossbars
// share neuron neighborhoods and embed with strong structure, while the
// FullCro block graph is near-complete and embeds to an unordered blob.
func spectralTileOrder(adj [][]float64) []int {
	g := len(adj)
	order := make([]int, g)
	for i := range order {
		order[i] = i
	}
	if g < 4 {
		return order
	}
	l := matrix.NewDense(g, g)
	for i := 0; i < g; i++ {
		deg := 0.0
		for j := 0; j < g; j++ {
			if i != j {
				deg += adj[i][j]
				l.Set(i, j, -adj[i][j])
			}
		}
		l.Set(i, i, deg)
	}
	_, vecs, err := matrix.EigSym(l)
	if err != nil {
		return order // fall back to slot order
	}
	u2, u3 := vecs.Col(1), vecs.Col(2)
	sort.SliceStable(order, func(a, b int) bool { return u2[order[a]] < u2[order[b]] })
	rows := int(math.Round(math.Sqrt(float64(g))))
	if rows < 1 {
		rows = 1
	}
	perRow := (g + rows - 1) / rows
	out := make([]int, 0, g)
	for r := 0; r < rows; r++ {
		lo := r * perRow
		if lo >= g {
			break
		}
		hi := lo + perRow
		if hi > g {
			hi = g
		}
		row := append([]int(nil), order[lo:hi]...)
		sort.SliceStable(row, func(a, b int) bool { return u3[row[a]] < u3[row[b]] })
		out = append(out, row...)
	}
	return out
}

// packSequence shelf-packs the cells in order into rows of the given width
// starting at the local origin, writing center positions into p.pos. It
// returns the used extent.
func (p *problem) packSequence(cells []int, shelfW float64) (usedW, usedH float64) {
	x, y, rowH := 0.0, 0.0, 0.0
	for _, i := range cells {
		w, h := p.vw[i], p.vh[i]
		if x+w > shelfW && x > 0 {
			y += rowH
			rowH = 0
			x = 0
		}
		p.pos[i] = x + w/2
		p.pos[p.n+i] = y + h/2
		x += w
		if h > rowH {
			rowH = h
		}
		if x > usedW {
			usedW = x
		}
	}
	usedH = y + rowH
	return usedW, usedH
}

// packTiles lays each group out as a compact square-ish tile (half its
// neurons, the crossbar, the other half, then its synapses, shelf-packed at
// roughly the crossbar's width) and shelf-packs the tiles in the given
// order on serpentine rows, so spectrally-adjacent (neuron-sharing) tiles
// stay adjacent on the die.
func (p *problem) packTiles(groups []tileGroup, order []int, leftovers []int) {
	type tile struct {
		cells []int
		w, h  float64
	}
	var tiles []tile
	for _, gi := range order {
		g := groups[gi]
		var neurons, syns []int
		for _, m := range g.members {
			if p.nl.Cells[m].Kind == netlist.KindSynapse {
				syns = append(syns, m)
			} else {
				neurons = append(neurons, m)
			}
		}
		half := len(neurons) / 2
		seq := make([]int, 0, len(g.members)+1)
		seq = append(seq, neurons[:half]...)
		seq = append(seq, g.crossbar)
		seq = append(seq, neurons[half:]...)
		seq = append(seq, syns...)
		area := 0.0
		for _, c := range seq {
			area += p.vw[c] * p.vh[c]
		}
		tw := math.Max(p.vw[g.crossbar], math.Sqrt(area))
		w, h := p.packSequence(seq, tw)
		tiles = append(tiles, tile{cells: seq, w: w, h: h})
	}
	for _, c := range leftovers {
		p.pos[c], p.pos[p.n+c] = p.vw[c]/2, p.vh[c]/2
		tiles = append(tiles, tile{cells: []int{c}, w: p.vw[c], h: p.vh[c]})
	}
	totalArea := 0.0
	maxTileW := 0.0
	for _, t := range tiles {
		totalArea += t.w * t.h
		if t.w > maxTileW {
			maxTileW = t.w
		}
	}
	// Choose the shelf width iteratively so the packed layout comes out
	// square-ish: variable-height rows waste vertical space, so a fixed
	// √area guess can produce badly elongated dies.
	shelfW := math.Max(1.08*math.Sqrt(totalArea), maxTileW)
	var usedH float64
	pack := func(shelfW float64, commit bool) float64 {
		x, y, rowH := 0.0, 0.0, 0.0
		leftToRight := true
		for _, t := range tiles {
			if x+t.w > shelfW && x > 0 {
				y += rowH
				rowH = 0
				x = 0
				leftToRight = !leftToRight
			}
			if commit {
				originX := x
				if !leftToRight {
					originX = math.Max(shelfW-x-t.w, 0)
				}
				for _, c := range t.cells {
					p.pos[c] += originX
					p.pos[p.n+c] += y
				}
			}
			x += t.w
			if t.h > rowH {
				rowH = t.h
			}
		}
		return y + rowH
	}
	for iter := 0; iter < 4; iter++ {
		usedH = pack(shelfW, false)
		if usedH <= 0 {
			break
		}
		next := math.Max(math.Sqrt(shelfW*usedH), maxTileW)
		if math.Abs(next-shelfW) < 0.02*shelfW {
			shelfW = next
			break
		}
		shelfW = next
	}
	pack(shelfW, true)
}

// shelfPack lays the cells out in sequence order on serpentine shelves
// whose width targets a square die at the total virtual area.
func (p *problem) shelfPack(order []int) {
	totalVArea := 0.0
	for i := 0; i < p.n; i++ {
		totalVArea += p.vw[i] * p.vh[i]
	}
	shelfW := 1.1 * math.Sqrt(totalVArea)
	x, y, rowH := 0.0, 0.0, 0.0
	leftToRight := true
	place := func(i int) {
		w, h := p.vw[i], p.vh[i]
		if x+w > shelfW && x > 0 {
			y += rowH
			rowH = 0
			x = 0
			leftToRight = !leftToRight
		}
		cx := x + w/2
		if !leftToRight {
			cx = shelfW - x - w/2
		}
		p.pos[i] = cx
		p.pos[p.n+i] = y + h/2
		x += w
		if h > rowH {
			rowH = h
		}
	}
	for _, i := range order {
		place(i)
	}
}

// wirelength returns the WA smooth weighted wirelength of Eq. 1 at pos.
func (p *problem) wirelength(pos []float64) float64 {
	gamma := p.opts.Gamma
	total := 0.0
	for _, w := range p.nl.Wires {
		xa, xb := pos[w.From], pos[w.To]
		ya, yb := pos[p.n+w.From], pos[p.n+w.To]
		total += w.Weight * (waSpan2(xa, xb, gamma) + waSpan2(ya, yb, gamma))
	}
	return total
}

// waSpan2 is the two-pin WA span: smooth-max minus smooth-min of {a, b}.
// With the log-sum-exp form this reduces to d·tanh(d/(2γ)) where d = a−b,
// which approaches |d| for d ≫ γ and is smooth at 0.
func waSpan2(a, b, gamma float64) float64 {
	d := a - b
	return d * math.Tanh(d/(2*gamma))
}

// waSpan2Grad returns ∂span/∂a (and −∂span/∂b) for the two-pin WA span.
func waSpan2Grad(a, b, gamma float64) float64 {
	d := a - b
	t := math.Tanh(d / (2 * gamma))
	return t + d*(1-t*t)/(2*gamma)
}

// axisOverlap returns the overlap of the interval [c−w/2, c+w/2] with
// [lo, hi] and the derivative of that overlap with respect to c (−1, 0, or
// +1 up to measure-zero kinks).
func axisOverlap(c, w, lo, hi float64) (ov, grad float64) {
	l := c - w/2
	r := c + w/2
	a := math.Max(l, lo)
	b := math.Min(r, hi)
	if b <= a {
		return 0, 0
	}
	switch {
	case l < lo && r < hi:
		grad = 1 // sliding right grows the overlap
	case l > lo && r > hi:
		grad = -1
	default:
		grad = 0
	}
	return b - a, grad
}

// boundary returns the out-of-region excursion of cell i along one axis
// (x if axis==0) and its sign: positive excursion past the high edge,
// negative past the low edge.
func (p *problem) boundary(pos []float64, i, axis int) (over, sign float64) {
	var c, w, r0 float64
	if axis == 0 {
		c, w, r0 = pos[i], p.vw[i], p.regX0
	} else {
		c, w, r0 = pos[p.n+i], p.vh[i], p.regY0
	}
	lo := r0 + w/2
	hi := r0 + p.regSize - w/2
	if c < lo {
		return lo - c, -1
	}
	if c > hi {
		return c - hi, 1
	}
	return 0, 0
}

// binRange returns the bin index range [b0, b1] a cell interval touches
// along one axis, clamped to the grid; ok is false if it misses the region.
func (p *problem) binRange(c, w, r0 float64) (b0, b1 int, ok bool) {
	lo := (c - w/2 - r0) / p.binSize
	hi := (c + w/2 - r0) / p.binSize
	b0 = int(math.Floor(lo))
	b1 = int(math.Floor(hi))
	if b1 < 0 || b0 >= p.grid {
		return 0, 0, false
	}
	if b0 < 0 {
		b0 = 0
	}
	if b1 >= p.grid {
		b1 = p.grid - 1
	}
	return b0, b1, true
}

// density is the spreading cost under the current (frozen) electrostatic
// field: Φ = Σ_i a_i·ψ(x_i, y_i) plus a quadratic containment term for
// cells escaping the placement region. The field itself is refreshed once
// per λ round by solveField; within a round Φ is a smooth, cheap objective
// the conjugate-gradient solver can line-search on.
func (p *problem) density(pos []float64) float64 {
	total := 0.0
	for i := 0; i < p.n; i++ {
		va := p.vw[i] * p.vh[i]
		v, _, _ := p.samplePotential(pos[i], pos[p.n+i])
		total += va * v
		for axis := 0; axis < 2; axis++ {
			over, _ := p.boundary(pos, i, axis)
			if over > 0 {
				total += over * over * va / (p.binArea * p.binSize)
			}
		}
	}
	return total
}

// step performs one spreading iteration: refresh the electrostatic field
// at the current positions, combine the WA wirelength gradient with λ times
// the density gradient (Algorithm 4 line 3's penalty objective), and move
// every cell along the conjugate direction with the per-cell displacement
// capped at a fraction of a density bin. Re-solving the field each step and
// capping movement replaces the line search of a frozen-objective CG —
// with a field that changes under the optimizer, a fixed objective to
// line-search on does not exist, and unbounded steps race down the stale
// potential and oscillate (the ePlace/force-directed literature uses the
// same bounded-step scheme).
func (p *problem) step(lambda float64) error {
	if err := p.solveField(p.pos); err != nil {
		return err
	}
	if err := p.wirelengthGrad(p.pos, p.stepGrad); err != nil {
		return err
	}
	gd := p.stepScratch
	if err := p.densityGrad(p.pos, gd); err != nil {
		return err
	}
	for i := range p.stepGrad {
		p.stepGrad[i] += lambda * gd[i]
	}
	// Polak-Ribière conjugate direction with restart on non-descent.
	num, den := 0.0, 0.0
	for i := range p.stepGrad {
		num += p.stepGrad[i] * (p.stepGrad[i] - p.stepPrevG[i])
		den += p.stepPrevG[i] * p.stepPrevG[i]
	}
	beta := 0.0
	if den > 0 {
		beta = math.Max(0, num/den)
	}
	descent := 0.0
	for i := range p.stepDir {
		p.stepDir[i] = -p.stepGrad[i] + beta*p.stepDir[i]
		descent += p.stepDir[i] * p.stepGrad[i]
	}
	if descent >= 0 {
		for i := range p.stepDir {
			p.stepDir[i] = -p.stepGrad[i]
		}
	}
	// Cap the largest per-cell displacement at a fraction of a bin.
	maxMove := 0.0
	for i := 0; i < p.n; i++ {
		m := math.Hypot(p.stepDir[i], p.stepDir[p.n+i])
		if m > maxMove {
			maxMove = m
		}
	}
	if maxMove <= 0 {
		return nil
	}
	eta := 0.35 * p.binSize / maxMove
	for i := range p.pos {
		p.pos[i] += eta * p.stepDir[i]
	}
	copy(p.stepPrevG, p.stepGrad)
	return nil
}

// overlap1D returns the 1-D overlap of two centered segments.
func overlap1D(c1, w1, c2, w2 float64) float64 {
	lo := math.Max(c1-w1/2, c2-w2/2)
	hi := math.Min(c1+w1/2, c2+w2/2)
	return hi - lo
}

// legalize removes remaining physical overlap (Algorithm 4 line 7): cells
// are processed in descending area order; an overlapping cell is moved to
// the nearest free position found on an expanding spiral of candidate
// offsets. Positions are finally shifted so the bounding box starts at the
// origin.
func (p *problem) legalize() {
	order := make([]int, p.n)
	for i := range order {
		order[i] = i
	}
	// Descending area, stable on index for determinism.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if p.pw[a]*p.ph[a] < p.pw[b]*p.ph[b] ||
				(p.pw[a]*p.ph[a] == p.pw[b]*p.ph[b] && a > b) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	placed := make([]int, 0, p.n)
	// A small clearance keeps legalized cells from abutting exactly.
	const clearance = 1e-6
	overlapsAny := func(i int, x, y float64) bool {
		for _, j := range placed {
			ox := overlap1D(x, p.pw[i], p.pos[j], p.pw[j])
			oy := overlap1D(y, p.ph[i], p.pos[p.n+j], p.ph[j])
			if ox > clearance && oy > clearance {
				return true
			}
		}
		return false
	}
	step := p.meanStep() / 2
	for _, i := range order {
		x, y := p.pos[i], p.pos[p.n+i]
		if !overlapsAny(i, x, y) {
			placed = append(placed, i)
			continue
		}
		found := false
		for ring := 1; ring <= 1024 && !found; ring++ {
			r := float64(ring) * step
			// Candidate positions on the ring, 12 per unit of perimeter.
			steps := 12 * ring
			for s := 0; s < steps; s++ {
				ang := 2 * math.Pi * float64(s) / float64(steps)
				cx := x + r*math.Cos(ang)
				cy := y + r*math.Sin(ang)
				if !overlapsAny(i, cx, cy) {
					p.pos[i], p.pos[p.n+i] = cx, cy
					found = true
					break
				}
			}
		}
		if !found {
			// Fall back to a far-away slot; practically unreachable.
			p.pos[i] = x + 1200*step
		}
		placed = append(placed, i)
	}
	p.refine()
	// Normalize to the origin.
	minX, minY := math.Inf(1), math.Inf(1)
	for i := 0; i < p.n; i++ {
		minX = math.Min(minX, p.pos[i]-p.pw[i]/2)
		minY = math.Min(minY, p.pos[p.n+i]-p.ph[i]/2)
	}
	for i := 0; i < p.n; i++ {
		p.pos[i] -= minX
		p.pos[p.n+i] -= minY
	}
}

// refineSweeps is the number of greedy post-legalization passes.
const refineSweeps = 12

// refine claws back wirelength lost to legalization: for each cell (in ID
// order, several sweeps) it computes the weighted median of its wire
// partners and tries positions stepping from that target back toward the
// current location, taking the first overlap-free one that improves the
// cell's incident wirelength.
func (p *problem) refine() {
	if len(p.nl.Wires) == 0 {
		return
	}
	// Incident wires per cell.
	incident := make([][]int, p.n)
	for wi, w := range p.nl.Wires {
		incident[w.From] = append(incident[w.From], wi)
		incident[w.To] = append(incident[w.To], wi)
	}
	cellWL := func(i int, x, y float64) float64 {
		total := 0.0
		for _, wi := range incident[i] {
			w := p.nl.Wires[wi]
			o := w.To
			if o == i {
				o = w.From
			}
			total += w.Weight * (math.Abs(x-p.pos[o]) + math.Abs(y-p.pos[p.n+o]))
		}
		return total
	}
	for sweep := 0; sweep < refineSweeps; sweep++ {
		moved := false
		for i := 0; i < p.n; i++ {
			if len(incident[i]) == 0 {
				continue
			}
			// Weighted centroid of partners as the target.
			tx, ty, tw := 0.0, 0.0, 0.0
			for _, wi := range incident[i] {
				w := p.nl.Wires[wi]
				o := w.To
				if o == i {
					o = w.From
				}
				tx += w.Weight * p.pos[o]
				ty += w.Weight * p.pos[p.n+o]
				tw += w.Weight
			}
			tx /= tw
			ty /= tw
			curWL := cellWL(i, p.pos[i], p.pos[p.n+i])
			// Try positions from the target toward the current location.
			for _, f := range []float64{0, 0.25, 0.5, 0.75} {
				cx := tx + f*(p.pos[i]-tx)
				cy := ty + f*(p.pos[p.n+i]-ty)
				if cellWL(i, cx, cy) >= curWL-1e-9 {
					continue
				}
				if p.overlapsAnyAt(i, cx, cy) {
					continue
				}
				p.pos[i], p.pos[p.n+i] = cx, cy
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
}

// overlapsAnyAt reports whether cell i at (x, y) would physically overlap
// any other cell (spatial-hash accelerated).
func (p *problem) overlapsAnyAt(i int, x, y float64) bool {
	for j := 0; j < p.n; j++ {
		if j == i {
			continue
		}
		ox := overlap1D(x, p.pw[i], p.pos[j], p.pw[j])
		if ox <= 1e-6 {
			continue
		}
		oy := overlap1D(y, p.ph[i], p.pos[p.n+j], p.ph[j])
		if oy > 1e-6 {
			return true
		}
	}
	return false
}

// meanStep is the legalizer's spiral step: half the mean physical extent.
func (p *problem) meanStep() float64 {
	s := 0.0
	for i := 0; i < p.n; i++ {
		s += math.Max(p.pw[i], p.ph[i])
	}
	return math.Max(s/float64(p.n)/2, 1e-3)
}

// result packages the final placement.
func (p *problem) result() *Result {
	r := &Result{
		X:              make([]float64, p.n),
		Y:              make([]float64, p.n),
		Outer:          p.outer,
		FieldSolves:    p.fieldSolves,
		VCycles:        p.vcycles,
		FieldSweeps:    p.fieldSweeps,
		SwapCandidates: p.swapCandidates,
		SwapsAccepted:  p.swapsAccepted,
	}
	r.MinX, r.MinY = math.Inf(1), math.Inf(1)
	r.MaxX, r.MaxY = math.Inf(-1), math.Inf(-1)
	for i := 0; i < p.n; i++ {
		r.X[i], r.Y[i] = p.pos[i], p.pos[p.n+i]
		r.MinX = math.Min(r.MinX, r.X[i]-p.pw[i]/2)
		r.MaxX = math.Max(r.MaxX, r.X[i]+p.pw[i]/2)
		r.MinY = math.Min(r.MinY, r.Y[i]-p.ph[i]/2)
		r.MaxY = math.Max(r.MaxY, r.Y[i]+p.ph[i]/2)
	}
	for _, w := range p.nl.Wires {
		r.HPWL += w.Weight * (math.Abs(r.X[w.From]-r.X[w.To]) + math.Abs(r.Y[w.From]-r.Y[w.To]))
	}
	return r
}

// TotalOverlap exposes the physical overlap of a finished placement for
// verification: it must be ~0 after legalization.
func TotalOverlap(nl *netlist.Netlist, r *Result) float64 {
	total := 0.0
	for i := range nl.Cells {
		for j := i + 1; j < len(nl.Cells); j++ {
			ox := overlap1D(r.X[i], nl.Cells[i].W, r.X[j], nl.Cells[j].W)
			if ox <= 0 {
				continue
			}
			oy := overlap1D(r.Y[i], nl.Cells[i].H, r.Y[j], nl.Cells[j].H)
			if oy <= 0 {
				continue
			}
			total += ox * oy
		}
	}
	return total
}
