package place

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/xbar"
)

// clusteredNetlist builds a netlist from an ISC-like assignment over a
// block network, giving crossbars with distinct neuron groups.
func clusteredNetlist(t testing.TB) *netlist.Netlist {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	cm := graph.RandomClustered(90, 30, 0.7, 0.01, rng)
	a := xbar.FullCro(cm, xbar.DefaultLibrary())
	nl, err := netlist.Build(a, xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestConnectivityGroupsPartition(t *testing.T) {
	nl := clusteredNetlist(t)
	p := newProblem(nl, DefaultOptions())
	groups, adj, leftovers := p.connectivityGroups()
	if groups == nil {
		t.Fatal("no groups despite crossbars present")
	}
	if len(adj) != len(groups) {
		t.Fatalf("adjacency %d×? for %d groups", len(adj), len(groups))
	}
	seen := map[int]bool{}
	count := 0
	for _, g := range groups {
		if seen[g.crossbar] {
			t.Fatal("crossbar in two groups")
		}
		seen[g.crossbar] = true
		count++
		for _, m := range g.members {
			if seen[m] {
				t.Fatalf("cell %d in two groups", m)
			}
			seen[m] = true
			count++
		}
	}
	count += len(leftovers)
	if count != len(nl.Cells) {
		t.Fatalf("groups+leftovers cover %d of %d cells", count, len(nl.Cells))
	}
}

func TestConnectivityGroupsNoCrossbars(t *testing.T) {
	nl := chainNetlist(5)
	p := newProblem(nl, DefaultOptions())
	groups, _, _ := p.connectivityGroups()
	if groups != nil {
		t.Fatal("groups without crossbars")
	}
}

func TestSpectralTileOrderPermutation(t *testing.T) {
	// A ring adjacency: the spectral order must be a permutation and keep
	// ring neighbours nearby on average.
	g := 12
	adj := make([][]float64, g)
	for i := range adj {
		adj[i] = make([]float64, g)
	}
	for i := 0; i < g; i++ {
		j := (i + 1) % g
		adj[i][j], adj[j][i] = 5, 5
	}
	order := spectralTileOrder(adj)
	if len(order) != g {
		t.Fatalf("order length %d", len(order))
	}
	seen := map[int]bool{}
	for _, v := range order {
		if v < 0 || v >= g || seen[v] {
			t.Fatalf("order %v not a permutation", order)
		}
		seen[v] = true
	}
	// Ring neighbours should land close in the order: mean positional
	// distance well below random (~g/3).
	pos := make([]int, g)
	for p, v := range order {
		pos[v] = p
	}
	total := 0
	for i := 0; i < g; i++ {
		d := pos[i] - pos[(i+1)%g]
		if d < 0 {
			d = -d
		}
		total += d
	}
	if mean := float64(total) / float64(g); mean > float64(g)/3 {
		t.Fatalf("spectral order scatters ring neighbours: mean distance %.1f", mean)
	}
}

func TestSpectralTileOrderSmall(t *testing.T) {
	order := spectralTileOrder([][]float64{{0, 1}, {1, 0}})
	if len(order) != 2 {
		t.Fatalf("order %v", order)
	}
}

func TestPackSequenceRespectsShelfWidth(t *testing.T) {
	nl := chainNetlist(10)
	p := newProblem(nl, DefaultOptions())
	cells := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	w, h := p.packSequence(cells, 5)
	if w > 5+1e-9 {
		t.Fatalf("used width %g exceeds shelf width 5", w)
	}
	if h <= 0 {
		t.Fatalf("used height %g", h)
	}
	// No pairwise overlap among packed cells (virtual sizes).
	for i := 0; i < len(cells); i++ {
		for j := i + 1; j < len(cells); j++ {
			ox := overlap1D(p.pos[cells[i]], p.vw[cells[i]], p.pos[cells[j]], p.vw[cells[j]])
			oy := overlap1D(p.pos[p.n+cells[i]], p.vh[cells[i]], p.pos[p.n+cells[j]], p.vh[cells[j]])
			if ox > 1e-9 && oy > 1e-9 {
				t.Fatalf("cells %d and %d overlap after packing", cells[i], cells[j])
			}
		}
	}
}

func TestInitialTiledPlacementIsSquareish(t *testing.T) {
	nl := clusteredNetlist(t)
	p := newProblem(nl, DefaultOptions())
	p.initialGrid()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for i := 0; i < p.n; i++ {
		minX = math.Min(minX, p.pos[i])
		maxX = math.Max(maxX, p.pos[i])
		minY = math.Min(minY, p.pos[p.n+i])
		maxY = math.Max(maxY, p.pos[p.n+i])
	}
	w, h := maxX-minX, maxY-minY
	if ratio := math.Max(w, h) / math.Min(w, h); ratio > 2.2 {
		t.Fatalf("initial layout aspect ratio %.2f — packer not squaring", ratio)
	}
}

func TestSwapRefineImprovesOrKeepsWirelength(t *testing.T) {
	nl := clusteredNetlist(t)
	p := newProblem(nl, DefaultOptions())
	p.initialGrid()
	p.setupRegion()
	// Scramble neuron positions to give swaps something to fix.
	rng := rand.New(rand.NewSource(3))
	var neurons []int
	for i, c := range nl.Cells {
		if c.Kind == netlist.KindNeuron {
			neurons = append(neurons, i)
		}
	}
	for k := 0; k < 200; k++ {
		a := neurons[rng.Intn(len(neurons))]
		b := neurons[rng.Intn(len(neurons))]
		p.pos[a], p.pos[b] = p.pos[b], p.pos[a]
		p.pos[p.n+a], p.pos[p.n+b] = p.pos[p.n+b], p.pos[p.n+a]
	}
	before := p.weightedHPWL()
	p.swapRefine()
	after := p.weightedHPWL()
	if after > before+1e-9 {
		t.Fatalf("swapRefine increased HPWL: %g → %g", before, after)
	}
	if after > 0.95*before {
		t.Fatalf("swapRefine barely improved a scrambled placement: %g → %g", before, after)
	}
}

func TestSwapRefinePreservesLegality(t *testing.T) {
	nl := clusteredNetlist(t)
	r, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ov := TotalOverlap(nl, r); ov > 1e-6 {
		t.Fatalf("final placement overlaps by %g after swaps", ov)
	}
}
