package place

import (
	"testing"
)

// BenchmarkPlace times a full placement (global + legalize + detailed) of
// the clustered experiment netlist — the end-to-end number the CI bench
// smoke tracks.
func BenchmarkPlace(b *testing.B) {
	nl := clusteredNetlist(b)
	opts := DefaultOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Place(nl, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceFieldSolve times one warm multigrid field refresh — the
// per-step cost the V-cycle rework targets (formerly 80 serial
// Gauss-Seidel sweeps over the full grid).
func BenchmarkPlaceFieldSolve(b *testing.B) {
	nl := clusteredNetlist(b)
	p := newProblem(nl, DefaultOptions())
	p.initialGrid()
	p.setupRegion()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.solveField(p.pos); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlaceStep times one optimizer step (field refresh + wirelength
// and density gradients + CG update).
func BenchmarkPlaceStep(b *testing.B) {
	nl := clusteredNetlist(b)
	p := newProblem(nl, DefaultOptions())
	p.initialGrid()
	p.setupRegion()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.step(1e-3); err != nil {
			b.Fatal(err)
		}
	}
}
