package place

import (
	"testing"
)

// TestPlaceStepAllocs pins the warm inner-loop contract: every buffer the
// optimizer step touches — the multigrid levels and their folded rhs, the
// chunked bin-scatter buffers, the gradient vectors, the per-wire span
// slots — lives in the workspace built by newProblem/setupRegion, so a warm
// step allocates nothing. The kernels passed to the worker pool are
// prebuilt method values for the same reason (a closure literal at the call
// site would heap-allocate per sweep).
func TestPlaceStepAllocs(t *testing.T) {
	nl := clusteredNetlist(t)
	opts := DefaultOptions()
	opts.Workers = 1 // serial pool path: no goroutine bookkeeping
	p := newProblem(nl, opts)
	p.initialGrid()
	p.setupRegion()
	if err := p.step(1e-3); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := p.step(1e-3); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm placement step allocated %.1f times, want 0", allocs)
	}
}

// TestPlaceFieldSolveAllocs pins the field refresh alone: a solve is run
// once per optimizer step, so even one allocation here multiplies into
// thousands over a placement.
func TestPlaceFieldSolveAllocs(t *testing.T) {
	nl := clusteredNetlist(t)
	opts := DefaultOptions()
	opts.Workers = 1
	p := newProblem(nl, opts)
	p.initialGrid()
	p.setupRegion()
	if err := p.solveField(p.pos); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if err := p.solveField(p.pos); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("warm field solve allocated %.1f times, want 0", allocs)
	}
}
