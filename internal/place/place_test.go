package place

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/xbar"
)

// chainNetlist builds n unit cells connected in a chain.
func chainNetlist(n int) *netlist.Netlist {
	nl := &netlist.Netlist{NeuronCell: map[int]int{}}
	for i := 0; i < n; i++ {
		nl.Cells = append(nl.Cells, netlist.Cell{ID: i, Kind: netlist.KindNeuron, W: 1, H: 1})
	}
	for i := 1; i < n; i++ {
		nl.Wires = append(nl.Wires, netlist.Wire{ID: i - 1, From: i - 1, To: i, Weight: 1})
	}
	return nl
}

func TestPlaceEmptyNetlist(t *testing.T) {
	r, err := Place(&netlist.Netlist{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.X) != 0 {
		t.Fatal("empty netlist produced positions")
	}
}

func TestPlaceSingleCell(t *testing.T) {
	nl := chainNetlist(1)
	r, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Area() != 1 {
		t.Fatalf("single unit cell area = %g, want 1", r.Area())
	}
}

func TestPlaceChainNoOverlap(t *testing.T) {
	nl := chainNetlist(25)
	r, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ov := TotalOverlap(nl, r); ov > 1e-6 {
		t.Fatalf("legalized overlap = %g", ov)
	}
	if r.HPWL <= 0 {
		t.Fatal("zero HPWL for a connected chain")
	}
}

func TestPlaceOptionsValidation(t *testing.T) {
	nl := chainNetlist(3)
	bad := []Options{
		{Gamma: 0, Omega: 1.5, OverlapThreshold: 0.01, MaxOuter: 5, CGIterations: 10},
		{Gamma: 1, Omega: 0.5, OverlapThreshold: 0.01, MaxOuter: 5, CGIterations: 10},
		{Gamma: 1, Omega: 1.5, OverlapThreshold: -1, MaxOuter: 5, CGIterations: 10},
		{Gamma: 1, Omega: 1.5, OverlapThreshold: 0.01, MaxOuter: 0, CGIterations: 10},
	}
	for i, o := range bad {
		if _, err := Place(nl, o); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
}

func TestPlaceKeepsConnectedCellsClose(t *testing.T) {
	// Two 4-cliques joined by one wire: intra-clique distances must be
	// below the inter-clique distance on average.
	nl := &netlist.Netlist{}
	for i := 0; i < 8; i++ {
		nl.Cells = append(nl.Cells, netlist.Cell{ID: i, Kind: netlist.KindNeuron, W: 1, H: 1})
	}
	wid := 0
	addWire := func(a, b int) {
		nl.Wires = append(nl.Wires, netlist.Wire{ID: wid, From: a, To: b, Weight: 1})
		wid++
	}
	for _, base := range []int{0, 4} {
		for i := 0; i < 4; i++ {
			for j := i + 1; j < 4; j++ {
				addWire(base+i, base+j)
			}
		}
	}
	addWire(0, 4)
	r, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	mean := func(ids []int) (float64, float64) {
		x, y := 0.0, 0.0
		for _, i := range ids {
			x += r.X[i]
			y += r.Y[i]
		}
		return x / float64(len(ids)), y / float64(len(ids))
	}
	x0, y0 := mean([]int{0, 1, 2, 3})
	x1, y1 := mean([]int{4, 5, 6, 7})
	interDist := math.Hypot(x0-x1, y0-y1)
	intra := 0.0
	for i := 0; i < 4; i++ {
		intra += math.Hypot(r.X[i]-x0, r.Y[i]-y0)
		intra += math.Hypot(r.X[4+i]-x1, r.Y[4+i]-y1)
	}
	intra /= 8
	if intra > interDist {
		t.Fatalf("cliques not separated: intra %.2f vs inter %.2f", intra, interDist)
	}
}

func TestPlaceWireWeightPullsCellsCloser(t *testing.T) {
	// A heavy wire should end up shorter than a unit wire in an otherwise
	// symmetric star.
	build := func(heavy float64) *netlist.Netlist {
		nl := &netlist.Netlist{}
		for i := 0; i < 6; i++ {
			nl.Cells = append(nl.Cells, netlist.Cell{ID: i, Kind: netlist.KindNeuron, W: 1, H: 1})
		}
		// Cells 1..5 all wired to hub 0; wire to cell 1 is heavy.
		for i := 1; i < 6; i++ {
			w := 1.0
			if i == 1 {
				w = heavy
			}
			nl.Wires = append(nl.Wires, netlist.Wire{ID: i - 1, From: 0, To: i, Weight: w})
		}
		return nl
	}
	nl := build(8)
	r, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	heavyLen := math.Abs(r.X[0]-r.X[1]) + math.Abs(r.Y[0]-r.Y[1])
	sumOther := 0.0
	for i := 2; i < 6; i++ {
		sumOther += math.Abs(r.X[0]-r.X[i]) + math.Abs(r.Y[0]-r.Y[i])
	}
	if heavyLen > sumOther/4+1e-9 {
		t.Fatalf("heavy wire %.3f not shorter than average other %.3f", heavyLen, sumOther/4)
	}
}

func TestPlaceRealisticAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cm := graph.RandomSparse(60, 0.9, rng)
	a := xbar.FullCro(cm, xbar.DefaultLibrary())
	nl, err := netlist.Build(a, xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if ov := TotalOverlap(nl, r); ov > 1e-6 {
		t.Fatalf("overlap %g after legalization", ov)
	}
	// Bounding box must at least fit the total cell area.
	if r.Area() < nl.TotalCellArea() {
		t.Fatalf("area %.1f below total cell area %.1f", r.Area(), nl.TotalCellArea())
	}
	// And not be absurdly inflated (sanity on the optimizer/legalizer).
	if r.Area() > 60*nl.TotalCellArea() {
		t.Fatalf("area %.1f is %.0f× the cell area", r.Area(), r.Area()/nl.TotalCellArea())
	}
}

func TestPlacementReducesWirelengthVsInitialGrid(t *testing.T) {
	// Optimized placement must beat the naive initial grid on HPWL for a
	// structured netlist.
	rng := rand.New(rand.NewSource(3))
	cm := graph.RandomClustered(60, 15, 0.6, 0.01, rng)
	a := xbar.FullCro(cm, xbar.DefaultLibrary())
	nl, err := netlist.Build(a, xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	r, err := Place(nl, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Recreate the initial grid (legalized trivially, grid has no overlap
	// only if pitch ≥ cell sizes; compare on raw HPWL of the grid).
	p := newProblem(nl, opts)
	p.initialGrid()
	gridHPWL := 0.0
	for _, w := range nl.Wires {
		gridHPWL += w.Weight * (math.Abs(p.pos[w.From]-p.pos[w.To]) +
			math.Abs(p.pos[p.n+w.From]-p.pos[p.n+w.To]))
	}
	if r.HPWL >= gridHPWL {
		t.Fatalf("optimized HPWL %.1f not below initial grid %.1f", r.HPWL, gridHPWL)
	}
}

func TestWASpanApproximatesAbs(t *testing.T) {
	gamma := 2.0
	for _, d := range []float64{0, 0.5, 1, 5, 20, 100, -7, -50} {
		got := waSpan2(d, 0, gamma)
		if math.Abs(d) > 10*gamma {
			if math.Abs(got-math.Abs(d)) > 0.01*math.Abs(d) {
				t.Errorf("waSpan2(%g) = %g, want ≈|d|", d, got)
			}
		}
		if got < 0 {
			t.Errorf("waSpan2(%g) = %g < 0", d, got)
		}
		if got > math.Abs(d)+1e-12 {
			t.Errorf("waSpan2(%g) = %g exceeds |d|", d, got)
		}
	}
}

func TestWASpanGradientMatchesFiniteDifference(t *testing.T) {
	gamma := 2.0
	for _, d := range []float64{0, 0.3, 1, 4, -2, -9} {
		h := 1e-6
		fd := (waSpan2(d+h, 0, gamma) - waSpan2(d-h, 0, gamma)) / (2 * h)
		an := waSpan2Grad(d, 0, gamma)
		if math.Abs(fd-an) > 1e-5 {
			t.Errorf("grad mismatch at %g: fd %g vs analytic %g", d, fd, an)
		}
	}
}

func TestAxisOverlap(t *testing.T) {
	// Interval [1,3] (c=2, w=2) against bin [0,4]: fully inside.
	if ov, _ := axisOverlap(2, 2, 0, 4); math.Abs(ov-2) > 1e-12 {
		t.Errorf("inside overlap = %g, want 2", ov)
	}
	// Sticking out on the right: overlap shrinks as c grows.
	ov, g := axisOverlap(3.5, 2, 0, 4)
	if math.Abs(ov-1.5) > 1e-12 || g != -1 {
		t.Errorf("right-overhang = %g grad %g, want 1.5, -1", ov, g)
	}
	// Sticking out on the left: overlap grows as c grows.
	ov, g = axisOverlap(0.5, 2, 0, 4)
	if math.Abs(ov-1.5) > 1e-12 || g != 1 {
		t.Errorf("left-overhang = %g grad %g, want 1.5, +1", ov, g)
	}
	// Disjoint.
	if ov, g := axisOverlap(10, 2, 0, 4); ov != 0 || g != 0 {
		t.Errorf("disjoint = %g grad %g, want 0, 0", ov, g)
	}
	// Gradient matches finite differences away from kinks.
	for _, c := range []float64{0.3, 1.7, 2.2, 3.6, 4.7} {
		h := 1e-6
		fp, _ := axisOverlap(c+h, 2, 0, 4)
		fm, _ := axisOverlap(c-h, 2, 0, 4)
		fd := (fp - fm) / (2 * h)
		_, an := axisOverlap(c, 2, 0, 4)
		if math.Abs(fd-an) > 1e-5 {
			t.Errorf("axisOverlap grad at %g = %g, fd %g", c, an, fd)
		}
	}
}

func TestWirelengthGradMatchesFiniteDifference(t *testing.T) {
	nl := chainNetlist(6)
	opts := DefaultOptions()
	p := newProblem(nl, opts)
	rng := rand.New(rand.NewSource(4))
	for i := range p.pos {
		p.pos[i] = rng.Float64() * 10
	}
	grad := make([]float64, len(p.pos))
	p.wirelengthGrad(p.pos, grad)
	h := 1e-6
	for i := range p.pos {
		orig := p.pos[i]
		p.pos[i] = orig + h
		fp := p.wirelength(p.pos)
		p.pos[i] = orig - h
		fm := p.wirelength(p.pos)
		p.pos[i] = orig
		fd := (fp - fm) / (2 * h)
		if math.Abs(fd-grad[i]) > 1e-4 {
			t.Fatalf("WL grad[%d] = %g, fd %g", i, grad[i], fd)
		}
	}
}

func TestDensityGradMatchesFiniteDifference(t *testing.T) {
	nl := chainNetlist(5)
	opts := DefaultOptions()
	p := newProblem(nl, opts)
	rng := rand.New(rand.NewSource(5))
	for i := range p.pos {
		p.pos[i] = rng.Float64() * 3 // cramped: overfull bins guaranteed
	}
	p.setupRegion()
	grad := make([]float64, len(p.pos))
	p.densityGrad(p.pos, grad)
	h := 1e-6
	for i := range p.pos {
		orig := p.pos[i]
		p.pos[i] = orig + h
		fp := p.density(p.pos)
		p.pos[i] = orig - h
		fm := p.density(p.pos)
		p.pos[i] = orig
		fd := (fp - fm) / (2 * h)
		// The density field is piecewise smooth; points at bin boundaries
		// may sit on a kink, so allow a slightly looser tolerance.
		if math.Abs(fd-grad[i]) > 1e-3*(1+math.Abs(fd)) {
			t.Fatalf("D grad[%d] = %g, fd %g", i, grad[i], fd)
		}
	}
}

func TestDensityPenalizesPiling(t *testing.T) {
	// Under the electrostatic field, cells piled at one point sit at the
	// potential peak, so the spreading cost must exceed that of the legal
	// shelf-packed start.
	nl := chainNetlist(16)
	p := newProblem(nl, DefaultOptions())
	p.initialGrid()
	p.setupRegion()
	p.solveField(p.pos)
	spread := p.density(p.pos)
	for i := 0; i < p.n; i++ {
		p.pos[i] = p.regX0 + p.regSize/2
		p.pos[p.n+i] = p.regY0 + p.regSize/2
	}
	p.solveField(p.pos)
	piled := p.density(p.pos)
	if piled <= spread {
		t.Fatalf("piled density %g not above spread density %g", piled, spread)
	}
}

func TestFieldForcePushesOutOfPile(t *testing.T) {
	// A cell just off-center of a pile must feel a force away from it.
	nl := chainNetlist(10)
	p := newProblem(nl, DefaultOptions())
	p.initialGrid()
	p.setupRegion()
	cx := p.regX0 + p.regSize/2
	cy := p.regY0 + p.regSize/2
	for i := 0; i < p.n; i++ {
		p.pos[i], p.pos[p.n+i] = cx, cy
	}
	// Cell 0 slightly to the right of the pile.
	p.pos[0] = cx + p.binSize
	p.solveField(p.pos)
	grad := make([]float64, 2*p.n)
	p.densityGrad(p.pos, grad)
	// Descent direction is -grad; the cell must be pushed further right.
	if -grad[0] <= 0 {
		t.Fatalf("field pushes cell toward the pile: grad %g", grad[0])
	}
}

func TestOverlap1D(t *testing.T) {
	if got := overlap1D(0, 2, 1, 2); math.Abs(got-1) > 1e-12 {
		t.Errorf("overlap1D = %g, want 1", got)
	}
	if got := overlap1D(0, 2, 5, 2); got > 0 {
		t.Errorf("disjoint segments overlap %g", got)
	}
}

func TestLegalizeDeterministic(t *testing.T) {
	nl := chainNetlist(20)
	a, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			t.Fatal("placement not deterministic")
		}
	}
}
