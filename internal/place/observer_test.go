package place

import (
	"testing"

	"repro/internal/obs"
)

type recordingObserver struct{ events []obs.Event }

func (r *recordingObserver) Observe(e obs.Event) { r.events = append(r.events, e) }

// TestPlaceObserverSequence pins the observation contract of the λ loop:
// a stream of PlaceProgress checkpoints whose Outer/Step/Lambda are
// mutually consistent (Outer is the round the checkpointed step belongs
// to, Lambda the weight that step actually ran under — the historical bug
// reported the post-growth λ and an off-by-one round), followed by exactly
// one PlaceStats whose counters match the returned Result.
func TestPlaceObserverSequence(t *testing.T) {
	nl := clusteredNetlist(t)
	rec := &recordingObserver{}
	opts := DefaultOptions()
	opts.MaxOuter = 3
	opts.CGIterations = 40
	opts.Observer = rec
	r, err := Place(nl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.events) < 2 {
		t.Fatalf("got %d events, want progress checkpoints plus stats", len(rec.events))
	}
	var progress []obs.PlaceProgress
	var stats []obs.PlaceStats
	for _, e := range rec.events {
		switch ev := e.(type) {
		case obs.PlaceProgress:
			if len(stats) > 0 {
				t.Fatal("PlaceProgress after PlaceStats")
			}
			progress = append(progress, ev)
		case obs.PlaceStats:
			stats = append(stats, ev)
		default:
			t.Fatalf("unexpected event %T", e)
		}
	}
	if len(stats) != 1 {
		t.Fatalf("got %d PlaceStats events, want exactly 1", len(stats))
	}
	prevLambda, prevStep := 0.0, 0
	for i, ev := range progress {
		if ev.Step <= prevStep {
			t.Fatalf("checkpoint %d: step %d not increasing (prev %d)", i, ev.Step, prevStep)
		}
		if want := (ev.Step - 1) / opts.CGIterations; ev.Outer != want {
			t.Fatalf("checkpoint %d: step %d reported round %d, want %d", i, ev.Step, ev.Outer, want)
		}
		if ev.Lambda <= prevLambda {
			t.Fatalf("checkpoint %d: λ %g not strictly increasing (prev %g)", i, ev.Lambda, prevLambda)
		}
		if ev.HPWL <= 0 || ev.Overlap < 0 || ev.BestHPWL <= 0 || ev.BestOverlap < 0 {
			t.Fatalf("checkpoint %d: implausible values %+v", i, ev)
		}
		prevLambda, prevStep = ev.Lambda, ev.Step
	}
	last := progress[len(progress)-1]
	st := stats[0]
	if st.Outer != last.Outer+1 {
		t.Fatalf("stats report %d rounds, last checkpoint was in round %d", st.Outer, last.Outer)
	}
	if st.Outer != r.Outer || st.FieldSolves != r.FieldSolves || st.VCycles != r.VCycles ||
		st.FieldSweeps != r.FieldSweeps || st.SwapCandidates != r.SwapCandidates ||
		st.SwapsAccepted != r.SwapsAccepted {
		t.Fatalf("PlaceStats %+v disagrees with Result counters %+v", st, r)
	}
	if st.FieldSolves == 0 || st.VCycles == 0 || st.FieldSweeps == 0 {
		t.Fatalf("no field work recorded: %+v", st)
	}
	if st.SwapCandidates < st.SwapsAccepted {
		t.Fatalf("accepted %d of %d candidates", st.SwapsAccepted, st.SwapCandidates)
	}
	if st.FieldTime <= 0 || st.DetailTime <= 0 {
		t.Fatalf("missing kernel timings: %+v", st)
	}
}
