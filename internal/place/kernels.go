package place

import (
	"math"
	"sort"

	"repro/internal/parallel"
)

// The data-parallel placement kernels. Each one keeps the bit-exact
// any-worker-count determinism contract by one of two constructions:
//
//   - disjoint writes: every index writes only its own output slots
//     (wirelengthGrad, densityGrad), so the pool only chooses *who*
//     computes a slot, never the combination order;
//   - fixed-decomposition partials: work is split into chunks/buckets
//     whose boundaries depend only on the input, each partial accumulates
//     in a fixed enumeration order, and the partials reduce in fixed order
//     (accumulateBins, physicalOverlap with treeSum).

// wirelengthGrad evaluates ∂WL/∂pos into grad (fully overwritten) in two
// parallel passes: first per wire — each wire's span gradient (the tanh
// evaluations, the expensive part) lands in its own wgX/wgY slot — then
// per cell, accumulating the incident wire slots in incidence order with
// the endpoint sign. Both passes write disjoint slots and the per-cell sum
// order is fixed by the incidence CSR, so the gradient is bit-identical
// for any worker count and no tanh is computed twice.
func (p *problem) wirelengthGrad(pos, grad []float64) error {
	p.kPos, p.kGrad = pos, grad
	if err := parallel.ForCtx(p.ctx, p.workers, len(p.nl.Wires), p.wireGradFn); err != nil {
		return err
	}
	return parallel.ForCtx(p.ctx, p.workers, p.n, p.wlGradFn)
}

// wireGrad fills the per-wire span gradients ∂span/∂From (x and y).
func (p *problem) wireGrad(wi int) {
	pos := p.kPos
	w := &p.nl.Wires[wi]
	gamma := p.opts.Gamma
	p.wgX[wi] = waSpan2Grad(pos[w.From], pos[w.To], gamma) * w.Weight
	p.wgY[wi] = waSpan2Grad(pos[p.n+w.From], pos[p.n+w.To], gamma) * w.Weight
}

func (p *problem) wlGradCell(i int) {
	grad := p.kGrad
	gx, gy := 0.0, 0.0
	for _, wi := range p.incWire[p.incStart[i]:p.incStart[i+1]] {
		if p.nl.Wires[wi].From == i {
			gx += p.wgX[wi]
			gy += p.wgY[wi]
		} else {
			gx -= p.wgX[wi]
			gy -= p.wgY[wi]
		}
	}
	grad[i], grad[p.n+i] = gx, gy
}

// densityGrad evaluates ∂Φ/∂pos under the frozen field into grad (fully
// overwritten). Per-cell disjoint writes; the field itself is read-only
// here.
func (p *problem) densityGrad(pos, grad []float64) error {
	p.kPos, p.kGrad = pos, grad
	return parallel.ForCtx(p.ctx, p.workers, p.n, p.denGradFn)
}

func (p *problem) denGradCell(i int) {
	pos, grad := p.kPos, p.kGrad
	va := p.vw[i] * p.vh[i]
	_, gx, gy := p.samplePotential(pos[i], pos[p.n+i])
	gx, gy = va*gx, va*gy
	for axis := 0; axis < 2; axis++ {
		over, sign := p.boundary(pos, i, axis)
		if over > 0 {
			g := 2 * over * sign * va / (p.binArea * p.binSize)
			if axis == 0 {
				gx += g
			} else {
				gy += g
			}
		}
	}
	grad[i], grad[p.n+i] = gx, gy
}

// accumulateBins fills p.binAcc with the virtual area each cell deposits
// in each bin of the density grid at pos. Cells are split into fixed
// chunks (boundaries depend only on n — see setupRegion); chunk c scatters
// into its own buffer, and the per-bin combine sums the chunk values by
// fixed-order tree reduction, so the density is bit-identical for any
// worker count.
func (p *problem) accumulateBins(pos []float64) error {
	p.kPos = pos
	if err := parallel.ForCtx(p.ctx, p.workers, len(p.binChunks), p.binScatterFn); err != nil {
		return err
	}
	return parallel.ForCtx(p.ctx, p.workers, p.grid, p.binReduceFn)
}

func (p *problem) binScatter(c int) {
	buf := p.binChunks[c]
	for b := range buf {
		buf[b] = 0
	}
	pos := p.kPos
	lo := c * p.binChunk
	hi := lo + p.binChunk
	if hi > p.n {
		hi = p.n
	}
	for i := lo; i < hi; i++ {
		cx0, cx1, okx := p.binRange(pos[i], p.vw[i], p.regX0)
		cy0, cy1, oky := p.binRange(pos[p.n+i], p.vh[i], p.regY0)
		if !okx || !oky {
			continue
		}
		for by := cy0; by <= cy1; by++ {
			binLoY := p.regY0 + float64(by)*p.binSize
			oy, _ := axisOverlap(pos[p.n+i], p.vh[i], binLoY, binLoY+p.binSize)
			if oy <= 0 {
				continue
			}
			for bx := cx0; bx <= cx1; bx++ {
				binLoX := p.regX0 + float64(bx)*p.binSize
				ox, _ := axisOverlap(pos[i], p.vw[i], binLoX, binLoX+p.binSize)
				if ox <= 0 {
					continue
				}
				buf[by*p.grid+bx] += ox * oy
			}
		}
	}
}

// binReduce combines one grid row of the chunk buffers into binAcc. The
// chunk count is at most 16, so the per-bin partials fit a fixed array for
// the tree reduction.
func (p *problem) binReduce(by int) {
	base := by * p.grid
	var vals [16]float64
	nc := len(p.binChunks)
	for x := 0; x < p.grid; x++ {
		for c := 0; c < nc; c++ {
			vals[c] = p.binChunks[c][base+x]
		}
		p.binAcc[base+x] = treeSum(vals[:nc])
	}
}

// bucketSorter co-sorts a (bucket key, cell id) pair of slices by key then
// id — the deterministic ordering behind the overlap and swap-candidate
// bucket stores. A named type (not sort.Slice) keeps the hot paths free of
// per-call closure allocation.
type bucketSorter struct {
	keys []uint64
	ids  []int
}

func (s *bucketSorter) Len() int { return len(s.ids) }
func (s *bucketSorter) Less(a, b int) bool {
	if s.keys[a] != s.keys[b] {
		return s.keys[a] < s.keys[b]
	}
	return s.ids[a] < s.ids[b]
}
func (s *bucketSorter) Swap(a, b int) {
	s.keys[a], s.keys[b] = s.keys[b], s.keys[a]
	s.ids[a], s.ids[b] = s.ids[b], s.ids[a]
}

// bucketKey packs grid coordinates into one sortable key. The bias keeps
// both components non-negative so the packed integer sorts like the
// (bx, by) pair; ±2^20 buckets is far beyond any placement extent.
const bucketBias = 1 << 20

func bucketKey(bx, by int) uint64 {
	return uint64(bx+bucketBias)<<21 | uint64(by+bucketBias)
}

// fillBuckets builds the sorted bucket store for the given cell ids at
// bucket size ext: ovSorter holds (key, id) sorted by key then id,
// ovStart[k]..ovStart[k+1] delimits bucket k, ovBKey[k] is its key (sorted
// ascending, so neighbors resolve by binary search). Returns the bucket
// count. Everything is reused workspace; the layout depends only on the
// positions, never on workers.
func (p *problem) fillBuckets(ids []int, pos []float64, ext float64) int {
	m := len(ids)
	keys := p.ovSorter.keys[:m]
	sids := p.ovSorter.ids[:m]
	for k, i := range ids {
		bx := int(math.Floor(pos[i] / ext))
		by := int(math.Floor(pos[p.n+i] / ext))
		keys[k] = bucketKey(bx, by)
		sids[k] = i
	}
	s := bucketSorter{keys: keys, ids: sids}
	sort.Sort(&s)
	p.ovStart = p.ovStart[:0]
	p.ovBKey = p.ovBKey[:0]
	for k := 0; k < m; k++ {
		if k == 0 || keys[k] != keys[k-1] {
			p.ovStart = append(p.ovStart, k)
			p.ovBKey = append(p.ovBKey, keys[k])
		}
	}
	p.ovStart = append(p.ovStart, m)
	return len(p.ovBKey)
}

// findBucket locates the bucket with the given key, or -1.
func (p *problem) findBucket(key uint64) int {
	lo, hi := 0, len(p.ovBKey)
	for lo < hi {
		mid := (lo + hi) / 2
		if p.ovBKey[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(p.ovBKey) && p.ovBKey[lo] == key {
		return lo
	}
	return -1
}

// forwardOffsets enumerates each unordered bucket pair exactly once: a
// bucket pairs with itself and with its four "forward" neighbors.
var forwardOffsets = [4][2]int{{1, 0}, {-1, 1}, {0, 1}, {1, 1}}

// physicalOverlap returns the total pairwise rectangle-intersection area
// of the physical cells at pos. Cells land in square buckets sized by the
// largest physical extent, so overlapping pairs are always in the same or
// adjacent buckets; each bucket accumulates its pair partial in a fixed
// enumeration order (parallel over buckets, disjoint partial slots) and
// the partials reduce by fixed-order tree summation.
func (p *problem) physicalOverlap(pos []float64) (float64, error) {
	ext := p.maxPExt
	if ext <= 0 {
		return 0, nil // all cells are zero-sized; no overlap possible
	}
	if cap(p.ovIDScratch) < p.n {
		p.ovIDScratch = make([]int, p.n)
	}
	ids := p.ovIDScratch[:p.n]
	for i := range ids {
		ids[i] = i
	}
	nb := p.fillBuckets(ids, pos, ext)
	if cap(p.ovPart) < nb {
		p.ovPart = make([]float64, nb)
	}
	part := p.ovPart[:nb]
	err := parallel.ForCtx(p.ctx, p.workers, nb, func(c int) {
		members := p.ovSorter.ids[p.ovStart[c]:p.ovStart[c+1]]
		total := 0.0
		pairOv := func(i, j int) {
			ox := overlap1D(pos[i], p.pw[i], pos[j], p.pw[j])
			if ox <= 0 {
				return
			}
			oy := overlap1D(pos[p.n+i], p.ph[i], pos[p.n+j], p.ph[j])
			if oy <= 0 {
				return
			}
			total += ox * oy
		}
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				pairOv(members[a], members[b])
			}
		}
		key := p.ovBKey[c]
		bx := int(key>>21) - bucketBias
		by := int(key&((1<<21)-1)) - bucketBias
		for _, off := range forwardOffsets {
			oc := p.findBucket(bucketKey(bx+off[0], by+off[1]))
			if oc < 0 {
				continue
			}
			others := p.ovSorter.ids[p.ovStart[oc]:p.ovStart[oc+1]]
			for _, i := range members {
				for _, j := range others {
					pairOv(i, j)
				}
			}
		}
		part[c] = total
	})
	if err != nil {
		return 0, err
	}
	return treeSum(part), nil
}
