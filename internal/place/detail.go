package place

import (
	"math"
	"sort"

	"repro/internal/netlist"
)

// swapSweeps bounds the swap-based detailed placement passes.
const swapSweeps = 8

// DefaultSwapRadius is the candidate radius used when Options.SwapRadius
// is zero: swap partners for a cell are the same-footprint cells within 8
// footprints of it. Measured on the clustered experiment netlists this
// recovers the all-pairs sweep's wirelength to well under a percent while
// keeping the pass near-linear.
const DefaultSwapRadius = 8.0

// swapRefine is the swap-based detailed placement pass: exchanging the
// positions of two same-footprint cells (neurons with neurons, synapses
// with synapses) is always legal, so the pass greedily accepts every
// position swap that reduces the weighted wirelength until a sweep finds
// none. This recovers locality that the analytical phase's spreading
// cannot express by continuous motion.
//
// The old pass compared all pairs within a footprint class — O(k²·deg)
// per sweep. This one is near-linear: candidates come from a spatial
// bucket grid (cells within SwapRadius footprints, enumerated in
// deterministic sorted-bucket order), and each cell's incident wirelength
// is cached (cellWL) with incremental delta updates on accepted swaps, so
// evaluating a pair costs O(deg(a)+deg(b)) instead of re-walking both
// neighborhoods from scratch. The cache is rebuilt at every sweep start to
// bound floating-point drift from the incremental updates. The pass is
// serial, hence trivially worker-invariant.
func (p *problem) swapRefine() error {
	if len(p.nl.Wires) == 0 {
		return nil
	}
	radius := p.opts.SwapRadius
	if radius == 0 {
		radius = DefaultSwapRadius
	}
	// Group swappable cells by footprint class, in deterministic order.
	classes := map[[2]float64][]int{}
	var keys [][2]float64
	for i, c := range p.nl.Cells {
		if c.Kind == netlist.KindCrossbar {
			continue // mixed sizes; swaps rarely legal
		}
		k := [2]float64{c.W, c.H}
		if _, ok := classes[k]; !ok {
			keys = append(keys, k)
		}
		classes[k] = append(classes[k], i)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	for sweep := 0; sweep < swapSweeps; sweep++ {
		if err := p.ctx.Err(); err != nil {
			return err
		}
		p.rebuildCellWL()
		improved := false
		for _, key := range keys {
			members := classes[key]
			if len(members) < 2 {
				continue
			}
			if p.classSweep(key, members, radius) {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return nil
}

// rebuildCellWL recomputes the per-cell incident weighted wirelength cache
// from scratch (O(E)), resetting the drift the incremental swap updates
// accumulate within a sweep.
func (p *problem) rebuildCellWL() {
	for i := 0; i < p.n; i++ {
		x, y := p.pos[i], p.pos[p.n+i]
		total := 0.0
		for _, wi := range p.incWire[p.incStart[i]:p.incStart[i+1]] {
			w := &p.nl.Wires[wi]
			o := w.To
			if o == i {
				o = w.From
			}
			total += w.Weight * (math.Abs(x-p.pos[o]) + math.Abs(y-p.pos[p.n+o]))
		}
		p.cellWL[i] = total
	}
}

// classSweep runs one bucketed candidate sweep over a footprint class and
// reports whether any swap was accepted. Buckets are sized
// radius × max(W, H); a cell pairs with classmates in its own bucket and
// the four forward-neighbor buckets, so every unordered pair within the
// radius is tried exactly once per sweep, in deterministic sorted order.
// Accepted swaps exchange two positions of the same footprint, so the
// class's position multiset — and thus the bucket geometry — stays valid
// for the rest of the sweep.
func (p *problem) classSweep(key [2]float64, members []int, radius float64) bool {
	ext := radius * math.Max(key[0], key[1])
	if ext <= 0 || math.IsInf(ext, 0) {
		return false
	}
	nb := p.fillBuckets(members, p.pos, ext)
	improved := false
	for c := 0; c < nb; c++ {
		ids := p.ovSorter.ids[p.ovStart[c]:p.ovStart[c+1]]
		for a := 0; a < len(ids); a++ {
			for b := a + 1; b < len(ids); b++ {
				if p.trySwap(ids[a], ids[b]) {
					improved = true
				}
			}
		}
		bkey := p.ovBKey[c]
		bx := int(bkey>>21) - bucketBias
		by := int(bkey&((1<<21)-1)) - bucketBias
		for _, off := range forwardOffsets {
			oc := p.findBucket(bucketKey(bx+off[0], by+off[1]))
			if oc < 0 {
				continue
			}
			others := p.ovSorter.ids[p.ovStart[oc]:p.ovStart[oc+1]]
			for _, a := range ids {
				for _, b := range others {
					if p.trySwap(a, b) {
						improved = true
					}
				}
			}
		}
	}
	return improved
}

// trySwap evaluates exchanging the positions of same-footprint cells a and
// b and commits the swap when it reduces the weighted wirelength. The a↔b
// wires themselves are invariant under the exchange (the two centers swap,
// Manhattan distance unchanged), so they are split out of both sides.
func (p *problem) trySwap(a, b int) bool {
	if p.incStart[a+1] == p.incStart[a] && p.incStart[b+1] == p.incStart[b] {
		return false // neither cell has wires: the swap cannot change WL
	}
	p.swapCandidates++
	ax, ay := p.pos[a], p.pos[p.n+a]
	bx, by := p.pos[b], p.pos[p.n+b]
	newA, abA := p.wlExcluding(a, b, bx, by)
	newB, abB := p.wlExcluding(b, a, ax, ay)
	curA := p.cellWL[a] - abA
	curB := p.cellWL[b] - abB
	if newA+newB >= curA+curB-1e-9 {
		return false
	}
	p.swapsAccepted++
	// Partner caches see each endpoint move; the a↔b wires are handled by
	// the explicit cache writes below (their length is unchanged).
	p.adjustPartners(a, b, ax, ay, bx, by)
	p.adjustPartners(b, a, bx, by, ax, ay)
	p.pos[a], p.pos[p.n+a] = bx, by
	p.pos[b], p.pos[p.n+b] = ax, ay
	p.cellWL[a] = newA + abA
	p.cellWL[b] = newB + abB
	return true
}

// wlExcluding walks cell i's incident wires once, returning the weighted
// wirelength with i moved to (x, y) excluding wires to `other` (wl), and
// the current weighted length of the i↔other wires (ab).
func (p *problem) wlExcluding(i, other int, x, y float64) (wl, ab float64) {
	for _, wi := range p.incWire[p.incStart[i]:p.incStart[i+1]] {
		w := &p.nl.Wires[wi]
		o := w.To
		if o == i {
			o = w.From
		}
		if o == other {
			ab += w.Weight * (math.Abs(p.pos[i]-p.pos[other]) +
				math.Abs(p.pos[p.n+i]-p.pos[p.n+other]))
			continue
		}
		wl += w.Weight * (math.Abs(x-p.pos[o]) + math.Abs(y-p.pos[p.n+o]))
	}
	return wl, ab
}

// adjustPartners applies the wirelength delta of cell i moving from
// (oldX, oldY) to (newX, newY) to the cellWL cache of every wire partner
// except skip (the swap counterpart, whose cache is rewritten wholesale).
// Must run before p.pos is updated for the move.
func (p *problem) adjustPartners(i, skip int, oldX, oldY, newX, newY float64) {
	for _, wi := range p.incWire[p.incStart[i]:p.incStart[i+1]] {
		w := &p.nl.Wires[wi]
		o := w.To
		if o == i {
			o = w.From
		}
		if o == skip || o == i {
			continue
		}
		ox, oy := p.pos[o], p.pos[p.n+o]
		p.cellWL[o] += w.Weight * (math.Abs(newX-ox) - math.Abs(oldX-ox) +
			math.Abs(newY-oy) - math.Abs(oldY-oy))
	}
}
