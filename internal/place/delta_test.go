package place

import (
	"context"
	"math"
	"testing"

	"repro/internal/netlist"
)

// chainNetlist builds n unit cells wired in a chain.
func deltaChainNetlist(n int) *netlist.Netlist {
	nl := &netlist.Netlist{}
	for i := 0; i < n; i++ {
		nl.Cells = append(nl.Cells, netlist.Cell{ID: i, Kind: netlist.KindNeuron, W: 1, H: 1})
	}
	for i := 1; i < n; i++ {
		nl.Wires = append(nl.Wires, netlist.Wire{ID: i - 1, From: i - 1, To: i, Weight: 1})
	}
	return nl
}

func warmFromResult(r *Result, seeded []bool) *Warm {
	return &Warm{
		X: r.X, Y: r.Y, Seeded: seeded,
		MinX: r.MinX, MinY: r.MinY, MaxX: r.MaxX, MaxY: r.MaxY,
	}
}

// TestPlaceDeltaAllSeeded freezes every cell: the delta placement must be
// the previous placement, bit for bit, including the bounding box.
func TestPlaceDeltaAllSeeded(t *testing.T) {
	nl := deltaChainNetlist(30)
	full, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seeded := make([]bool, len(nl.Cells))
	for i := range seeded {
		seeded[i] = true
	}
	res, err := PlaceDeltaCtx(context.Background(), nl, DefaultOptions(), warmFromResult(full, seeded))
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.X {
		if res.X[i] != full.X[i] || res.Y[i] != full.Y[i] {
			t.Fatalf("cell %d moved: (%g,%g) vs (%g,%g)", i, res.X[i], res.Y[i], full.X[i], full.Y[i])
		}
	}
	if res.MinX != full.MinX || res.MinY != full.MinY || res.MaxX != full.MaxX || res.MaxY != full.MaxY {
		t.Fatalf("bbox changed: %+v vs %+v", res, full)
	}
	if math.Abs(res.HPWL-full.HPWL) > 1e-9 {
		t.Fatalf("HPWL changed: %g vs %g", res.HPWL, full.HPWL)
	}
}

// TestPlaceDeltaInsertsUnseeded seeds most cells and checks the new ones
// land overlap-free while the seeded ones never move.
func TestPlaceDeltaInsertsUnseeded(t *testing.T) {
	nl := deltaChainNetlist(40)
	full, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seeded := make([]bool, len(nl.Cells))
	for i := range seeded {
		seeded[i] = i%5 != 0 // every fifth cell is new
	}
	res, err := PlaceDeltaCtx(context.Background(), nl, DefaultOptions(), warmFromResult(full, seeded))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range seeded {
		if s && (res.X[i] != full.X[i] || res.Y[i] != full.Y[i]) {
			t.Fatalf("seeded cell %d moved", i)
		}
	}
	if ov := TotalOverlap(nl, res); ov > 1e-6 {
		t.Fatalf("delta placement left %g overlap", ov)
	}
	// The box never shrinks below the previous one.
	if res.MinX > full.MinX || res.MinY > full.MinY || res.MaxX < full.MaxX || res.MaxY < full.MaxY {
		t.Fatalf("bbox shrank: delta %+v, full %+v",
			[4]float64{res.MinX, res.MinY, res.MaxX, res.MaxY},
			[4]float64{full.MinX, full.MinY, full.MaxX, full.MaxY})
	}
}

// TestPlaceDeltaDeterministic: two runs of the same delta are bit-identical,
// for any worker count.
func TestPlaceDeltaDeterministic(t *testing.T) {
	nl := deltaChainNetlist(35)
	full, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seeded := make([]bool, len(nl.Cells))
	for i := range seeded {
		seeded[i] = i < 28
	}
	warm := warmFromResult(full, seeded)
	var ref *Result
	for _, workers := range []int{1, 2, 4, 8} {
		opts := DefaultOptions()
		opts.Workers = workers
		res, err := PlaceDeltaCtx(context.Background(), nl, opts, warm)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		for i := range ref.X {
			if res.X[i] != ref.X[i] || res.Y[i] != ref.Y[i] {
				t.Fatalf("workers=%d cell %d diverged", workers, i)
			}
		}
		if res.HPWL != ref.HPWL {
			t.Fatalf("workers=%d HPWL %g, want %g", workers, res.HPWL, ref.HPWL)
		}
	}
}

// TestPlaceDeltaNoWarmFallsBack: nil warm or an all-unseeded warm set must
// behave exactly like a full placement.
func TestPlaceDeltaNoWarmFallsBack(t *testing.T) {
	nl := deltaChainNetlist(20)
	full, err := Place(nl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, err := PlaceDeltaCtx(context.Background(), nl, DefaultOptions(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.HPWL != full.HPWL {
		t.Fatalf("nil-warm delta HPWL %g, full %g", res.HPWL, full.HPWL)
	}
	none := &Warm{
		X: make([]float64, len(nl.Cells)), Y: make([]float64, len(nl.Cells)),
		Seeded: make([]bool, len(nl.Cells)),
	}
	res2, err := PlaceDeltaCtx(context.Background(), nl, DefaultOptions(), none)
	if err != nil {
		t.Fatal(err)
	}
	if res2.HPWL != full.HPWL {
		t.Fatalf("unseeded-warm delta HPWL %g, full %g", res2.HPWL, full.HPWL)
	}
}
