package place

import (
	"context"
	"fmt"
	"math"

	"repro/internal/netlist"
	"repro/internal/obs"
)

// Warm carries the reusable coordinates of a previous placement, re-indexed
// by the new netlist's cell IDs. Seeded cells are frozen at their previous
// positions; unseeded cells (the delta compile's new or re-clustered cells)
// are the only ones the delta placer moves. The previous bounding box is
// kept so the delta placement reports a box no smaller than it — the
// routing grid of a delta compile must not shrink, or every cached path's
// bin indices would mean something else.
type Warm struct {
	// X, Y are previous cell centers, valid where Seeded is true.
	X, Y []float64
	// Seeded marks the cells frozen at (X[i], Y[i]).
	Seeded []bool
	// MinX, MinY, MaxX, MaxY is the previous placement's bounding box.
	MinX, MinY, MaxX, MaxY float64
}

// PlaceDeltaCtx places the netlist incrementally: seeded cells keep their
// exact previous coordinates, and each unseeded cell is inserted at the
// weighted centroid of its already-placed wire partners, legalized on the
// same expanding-spiral schedule as the full legalizer, and locally refined
// — the global λ loop, the field solver, and detailed-placement swaps never
// run, so the seeded region is bit-identical to the previous placement.
// Unlike the full placer the result is never normalized to the origin: the
// previous coordinate frame is the contract that lets routes be reused.
//
// The result's bounding box is the union of the previous box and the tight
// box of the new placement, so a delta that keeps its new cells inside the
// previous region reports exactly the previous box (and with it the
// previous routing grid). The delta placement runs serially — its work is
// O(new cells), far below the parallel thresholds — so Workers trivially
// cannot affect the result.
func PlaceDeltaCtx(ctx context.Context, nl *netlist.Netlist, opts Options, warm *Warm) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	n := len(nl.Cells)
	if n == 0 {
		return &Result{}, nil
	}
	if warm == nil {
		return PlaceCtx(ctx, nl, opts)
	}
	if len(warm.X) != n || len(warm.Y) != n || len(warm.Seeded) != n {
		return nil, fmt.Errorf("place: warm set covers %d/%d/%d cells, netlist has %d",
			len(warm.X), len(warm.Y), len(warm.Seeded), n)
	}
	seeded := 0
	for _, s := range warm.Seeded {
		if s {
			seeded++
		}
	}
	if seeded == 0 {
		return PlaceCtx(ctx, nl, opts)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("place: cancelled before delta placement: %w", err)
	}
	p := newProblem(nl, opts)
	p.ctx = ctx

	// Freeze the seeded cells; anchor the unseeded ones at the previous
	// region's center until their insertion pass below.
	cx := (warm.MinX + warm.MaxX) / 2
	cy := (warm.MinY + warm.MaxY) / 2
	for i := 0; i < n; i++ {
		if warm.Seeded[i] {
			p.pos[i], p.pos[p.n+i] = warm.X[i], warm.Y[i]
		} else {
			p.pos[i], p.pos[p.n+i] = cx, cy
		}
	}
	initialHPWL := p.weightedHPWL()

	// Insertion order: descending area, stable on index — the full
	// legalizer's schedule restricted to the unseeded cells.
	order := make([]int, 0, n-seeded)
	for i := 0; i < n; i++ {
		if !warm.Seeded[i] {
			order = append(order, i)
		}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			if p.pw[a]*p.ph[a] < p.pw[b]*p.ph[b] ||
				(p.pw[a]*p.ph[a] == p.pw[b]*p.ph[b] && a > b) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	placed := make([]bool, n)
	for i, s := range warm.Seeded {
		placed[i] = s
	}
	step := p.meanStep() / 2
	const clearance = 1e-6
	overlapsPlaced := func(i int, x, y float64) bool {
		for j := 0; j < n; j++ {
			if !placed[j] || j == i {
				continue
			}
			ox := overlap1D(x, p.pw[i], p.pos[j], p.pw[j])
			if ox <= clearance {
				continue
			}
			oy := overlap1D(y, p.ph[i], p.pos[p.n+j], p.ph[j])
			if oy > clearance {
				return true
			}
		}
		return false
	}
	for _, i := range order {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("place: cancelled inserting cell %d: %w", i, err)
		}
		// Target: weighted centroid of the cell's already-placed partners,
		// the previous region's center when it has none.
		tx, ty, tw := 0.0, 0.0, 0.0
		for _, wi := range p.incWire[p.incStart[i]:p.incStart[i+1]] {
			w := nl.Wires[wi]
			o := w.To
			if o == i {
				o = w.From
			}
			if !placed[o] {
				continue
			}
			tx += w.Weight * p.pos[o]
			ty += w.Weight * p.pos[p.n+o]
			tw += w.Weight
		}
		x, y := cx, cy
		if tw > 0 {
			x, y = tx/tw, ty/tw
		}
		if overlapsPlaced(i, x, y) {
			found := false
			for ring := 1; ring <= 1024 && !found; ring++ {
				r := float64(ring) * step
				steps := 12 * ring
				for s := 0; s < steps; s++ {
					ang := 2 * math.Pi * float64(s) / float64(steps)
					nx := x + r*math.Cos(ang)
					ny := y + r*math.Sin(ang)
					if !overlapsPlaced(i, nx, ny) {
						x, y = nx, ny
						found = true
						break
					}
				}
			}
			if !found {
				x = p.pos[i] + 1200*step
			}
		}
		p.pos[i], p.pos[p.n+i] = x, y
		placed[i] = true
	}
	p.refineSubset(warm.Seeded)
	obs.Emit(opts.Observer, obs.PlaceStats{})
	r := p.result()
	r.InitialHPWL, r.GlobalHPWL = initialHPWL, initialHPWL
	// Never shrink below the previous box: the routing grid must stay
	// compatible for path reuse.
	r.MinX = math.Min(r.MinX, warm.MinX)
	r.MinY = math.Min(r.MinY, warm.MinY)
	r.MaxX = math.Max(r.MaxX, warm.MaxX)
	r.MaxY = math.Max(r.MaxY, warm.MaxY)
	return r, nil
}

// refineSubset is the post-legalization refinement pass restricted to the
// non-frozen cells: the same weighted-centroid targets, fractional steps,
// and overlap guards as refine, but a frozen cell never moves.
func (p *problem) refineSubset(frozen []bool) {
	if len(p.nl.Wires) == 0 {
		return
	}
	cellWL := func(i int, x, y float64) float64 {
		total := 0.0
		for _, wi := range p.incWire[p.incStart[i]:p.incStart[i+1]] {
			w := p.nl.Wires[wi]
			o := w.To
			if o == i {
				o = w.From
			}
			total += w.Weight * (math.Abs(x-p.pos[o]) + math.Abs(y-p.pos[p.n+o]))
		}
		return total
	}
	for sweep := 0; sweep < refineSweeps; sweep++ {
		moved := false
		for i := 0; i < p.n; i++ {
			if frozen[i] || p.incStart[i] == p.incStart[i+1] {
				continue
			}
			tx, ty, tw := 0.0, 0.0, 0.0
			for _, wi := range p.incWire[p.incStart[i]:p.incStart[i+1]] {
				w := p.nl.Wires[wi]
				o := w.To
				if o == i {
					o = w.From
				}
				tx += w.Weight * p.pos[o]
				ty += w.Weight * p.pos[p.n+o]
				tw += w.Weight
			}
			tx /= tw
			ty /= tw
			curWL := cellWL(i, p.pos[i], p.pos[p.n+i])
			for _, f := range []float64{0, 0.25, 0.5, 0.75} {
				cx := tx + f*(p.pos[i]-tx)
				cy := ty + f*(p.pos[p.n+i]-ty)
				if cellWL(i, cx, cy) >= curWL-1e-9 {
					continue
				}
				if p.overlapsAnyAt(i, cx, cy) {
					continue
				}
				p.pos[i], p.pos[p.n+i] = cx, cy
				moved = true
				break
			}
		}
		if !moved {
			break
		}
	}
}
