package place

import (
	"math"
	"testing"
)

// l2 of the level-0 residual and of the folded rhs, for convergence checks.
func fieldResidualNorms(t *testing.T, p *problem) (res, rhs float64) {
	t.Helper()
	lv := &p.levels[0]
	if err := p.residual(lv); err != nil {
		t.Fatal(err)
	}
	for i := range lv.r {
		res += lv.r[i] * lv.r[i]
		rhs += lv.f[i] * lv.f[i]
	}
	return math.Sqrt(res), math.Sqrt(rhs)
}

// TestPlaceFieldMultigridConverges: solveField solves the Neumann Poisson
// system ∇²ψ = −(ρ − ρ̄). One refresh (two V-cycles from a cold ψ) must
// already contract the residual well below the rhs norm, and repeated
// refreshes at fixed positions — the warm-start regime of the λ loop —
// must drive it toward zero, never regress.
func TestPlaceFieldMultigridConverges(t *testing.T) {
	nl := clusteredNetlist(t)
	p := newProblem(nl, DefaultOptions())
	p.initialGrid()
	p.setupRegion()
	if len(p.levels) < 2 {
		t.Fatalf("grid %d built no multigrid hierarchy", p.grid)
	}
	if err := p.solveField(p.pos); err != nil {
		t.Fatal(err)
	}
	res1, rhs := fieldResidualNorms(t, p)
	if rhs == 0 {
		t.Fatal("degenerate test: zero rhs")
	}
	if res1 > 0.5*rhs {
		t.Fatalf("one refresh left residual %g of rhs %g (cold V-cycles barely contract)", res1, rhs)
	}
	for k := 0; k < 4; k++ {
		if err := p.solveField(p.pos); err != nil {
			t.Fatal(err)
		}
	}
	res5, _ := fieldResidualNorms(t, p)
	if res5 > 0.02*rhs {
		t.Fatalf("five refreshes left residual %g of rhs %g", res5, rhs)
	}
	if res5 > res1*(1+1e-12) {
		t.Fatalf("warm-started refresh regressed the residual: %g after one, %g after five", res1, res5)
	}
	// Neumann defines ψ up to a constant; solveField pins the zero-mean
	// gauge so the potential (and its sampled gradient) is well-defined.
	mean := 0.0
	for _, v := range p.psi {
		mean += v
	}
	mean /= float64(len(p.psi))
	scale := 0.0
	for _, v := range p.psi {
		scale = math.Max(scale, math.Abs(v))
	}
	if math.Abs(mean) > 1e-12*math.Max(scale, 1) {
		t.Fatalf("ψ mean %g not pinned to zero (scale %g)", mean, scale)
	}
}

// TestPlaceFieldLevels: the hierarchy halves down to the coarsest grid and
// level 0 aliases the problem's ψ (the warm-start storage).
func TestPlaceFieldLevels(t *testing.T) {
	nl := clusteredNetlist(t)
	p := newProblem(nl, DefaultOptions())
	p.initialGrid()
	p.setupRegion()
	if &p.levels[0].psi[0] != &p.psi[0] {
		t.Fatal("level 0 ψ does not alias the problem ψ")
	}
	for l := 1; l < len(p.levels); l++ {
		want := (p.levels[l-1].g + 1) / 2
		if p.levels[l].g != want {
			t.Fatalf("level %d grid %d, want %d", l, p.levels[l].g, want)
		}
	}
	last := p.levels[len(p.levels)-1].g
	if last > mgCoarsestGrid {
		t.Fatalf("coarsest level %d exceeds %d", last, mgCoarsestGrid)
	}
}

// TestTreeSumMatchesSerial: the fixed-order pairwise reduction agrees with
// the straightforward left-to-right sum to rounding, across lengths that
// hit every split-shape case.
func TestTreeSumMatchesSerial(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 5, 16, 17, 100} {
		v := make([]float64, n)
		serial := 0.0
		for i := range v {
			v[i] = math.Sin(float64(3*i+1)) * math.Pow(10, float64(i%7-3))
			serial += v[i]
		}
		got := treeSum(v)
		scale := math.Max(math.Abs(serial), 1)
		if math.Abs(got-serial) > 1e-9*scale {
			t.Fatalf("n=%d: treeSum %g vs serial %g", n, got, serial)
		}
		if again := treeSum(v); again != got {
			t.Fatalf("n=%d: treeSum not a pure function: %g vs %g", n, again, got)
		}
	}
}
