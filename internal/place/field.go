package place

import (
	"time"

	"repro/internal/parallel"
)

// The multigrid Poisson solver behind the electrostatic spreading force.
//
// The old solver ran 80 lexicographic Gauss-Seidel sweeps over the full
// grid×grid bin array per field refresh — inherently serial (each update
// reads the half-updated array) and the dominant placement cost. This one
// replaces it with red-black relaxation inside a geometric multigrid
// V-cycle:
//
//   - Red-black ordering two-colors the grid like a checkerboard. All red
//     cells read only black neighbors, so the red half-sweep (and likewise
//     the black one) is order-independent: parallelizing it over rows with
//     parallel.ForCtx is bit-identical for any worker count.
//   - The V-cycle restricts the residual to a coarser grid (halved per
//     level down to mgCoarsestGrid), solves the error equation there, and
//     prolongates the correction back — the standard cure for Gauss-Seidel
//     only contracting high-frequency error. With the warm-started ψ kept
//     between refreshes, fieldVCycles cycles replace the 80 sweeps at a
//     fraction of the updates.
//
// Restriction/prolongation constants and the Neumann boundary treatment
// are documented on the respective functions; docs/placement.md has the
// overview.
const (
	// mgCoarsestGrid stops the coarsening: a level this small is solved by
	// plain relaxation (mgCoarseSweeps red-black sweeps). Grids at or below
	// this size get no hierarchy at all.
	mgCoarsestGrid = 8
	// mgPreSweeps/mgPostSweeps smooth before restriction and after the
	// coarse correction on every intermediate level.
	mgPreSweeps  = 2
	mgPostSweeps = 2
	// mgCoarseSweeps relaxes the coarsest level (≤ 8×8 = 64 cells) to
	// near-convergence.
	mgCoarseSweeps = 48
	// fieldVCycles per field refresh; ψ warm-starts from the previous
	// refresh, so two cycles track the slowly-moving density closely.
	fieldVCycles = 2
	// mgSerialGrid: levels smaller than this relax serially — the sweep is
	// cheaper than parallel dispatch. Purely a scheduling choice; results
	// are identical either way under the determinism contract.
	mgSerialGrid = 32
)

// fieldLevel is one grid of the multigrid hierarchy. Level 0 aliases the
// problem's ψ; f is the right-hand side with h² folded in (so relaxation
// is ψ = (Σnb + f)/cnt), r the residual scratch.
type fieldLevel struct {
	g         int
	psi, f, r []float64
}

// setupLevels builds the multigrid hierarchy for the fixed region grid:
// grid sizes halve (rounding up) until mgCoarsestGrid. All buffers are
// allocated once here — a field refresh performs no allocation.
func (p *problem) setupLevels() {
	p.levels = p.levels[:0]
	g := p.grid
	for {
		lv := fieldLevel{g: g}
		if g == p.grid {
			lv.psi = p.psi
		} else {
			lv.psi = make([]float64, g*g)
		}
		lv.f = make([]float64, g*g)
		lv.r = make([]float64, g*g)
		p.levels = append(p.levels, lv)
		if g <= mgCoarsestGrid {
			break
		}
		g = (g + 1) / 2
	}
}

// solveField refreshes the electrostatic spreading potential from the
// current positions: the zero-mean bin density is the charge, and
// ∇²ψ = −(ρ − ρ̄) is solved with Neumann boundaries by red-black multigrid
// (see the file comment). ψ persists between calls, so each refresh
// warm-starts from the previous field. This is the long-range density
// force of force-directed/ePlace-style placement: unlike a local overflow
// penalty it moves cells buried inside an overfull plateau, and it
// preserves relative cell order while spreading.
func (p *problem) solveField(pos []float64) error {
	start := time.Now()
	defer func() { p.fieldTime += time.Since(start) }()
	if err := p.accumulateBins(pos); err != nil {
		return err
	}
	lv := &p.levels[0]
	nb := len(p.binAcc)
	mean := treeSum(p.binAcc) / float64(nb)
	h2 := p.binSize * p.binSize
	for b, a := range p.binAcc {
		lv.f[b] = h2 * (a - mean) / p.binArea
	}
	p.fieldSolves++
	if len(p.levels) == 1 {
		// The whole region fits the coarsest size: plain relaxation
		// converges quickly, no hierarchy needed.
		for s := 0; s < mgCoarseSweeps; s++ {
			if err := p.relaxRB(lv); err != nil {
				return err
			}
		}
	} else {
		for c := 0; c < fieldVCycles; c++ {
			if err := p.vcycle(0); err != nil {
				return err
			}
			p.vcycles++
		}
	}
	// Zero-mean the potential (Neumann leaves it defined up to a constant).
	pm := treeSum(lv.psi) / float64(nb)
	for i := range lv.psi {
		lv.psi[i] -= pm
	}
	return nil
}

// vcycle runs one multigrid V-cycle starting at level l: pre-smooth,
// restrict the residual, recurse, prolongate the coarse correction back,
// post-smooth. The coarsest level is relaxed to near-convergence instead.
func (p *problem) vcycle(l int) error {
	lv := &p.levels[l]
	if l == len(p.levels)-1 {
		for s := 0; s < mgCoarseSweeps; s++ {
			if err := p.relaxRB(lv); err != nil {
				return err
			}
		}
		return nil
	}
	for s := 0; s < mgPreSweeps; s++ {
		if err := p.relaxRB(lv); err != nil {
			return err
		}
	}
	if err := p.residual(lv); err != nil {
		return err
	}
	next := &p.levels[l+1]
	restrictTo(lv, next)
	if err := p.vcycle(l + 1); err != nil {
		return err
	}
	prolongAdd(next, lv)
	for s := 0; s < mgPostSweeps; s++ {
		if err := p.relaxRB(lv); err != nil {
			return err
		}
	}
	return nil
}

// relaxRB performs one red-black Gauss-Seidel sweep on the level: the red
// half-sweep updates cells with (x+y) even reading only black neighbors,
// then the black half-sweep the converse. Within a color no update reads
// another's output, so the parallel row loop produces bit-identical ψ for
// any worker count.
func (p *problem) relaxRB(lv *fieldLevel) error {
	w := p.workers
	if lv.g < mgSerialGrid {
		w = 1
	}
	p.relaxLv = lv
	for color := 0; color < 2; color++ {
		p.relaxColor = color
		if err := parallel.ForCtx(p.ctx, w, lv.g, p.relaxRowFn); err != nil {
			return err
		}
	}
	p.fieldSweeps++
	return nil
}

// relaxRow updates the current color's cells of row y on the current
// level (5-point stencil, Neumann boundaries via the neighbor count).
func (p *problem) relaxRow(y int) {
	lv := p.relaxLv
	g := lv.g
	base := y * g
	for x := (y + p.relaxColor) & 1; x < g; x += 2 {
		idx := base + x
		sum, cnt := 0.0, 0
		if x > 0 {
			sum += lv.psi[idx-1]
			cnt++
		}
		if x < g-1 {
			sum += lv.psi[idx+1]
			cnt++
		}
		if y > 0 {
			sum += lv.psi[idx-g]
			cnt++
		}
		if y < g-1 {
			sum += lv.psi[idx+g]
			cnt++
		}
		lv.psi[idx] = (sum + lv.f[idx]) / float64(cnt)
	}
}

// residual fills lv.r = f − Aψ where Aψ = cnt·ψ − Σ neighbors (the
// discrete Neumann Laplacian the relaxation solves). Reads ψ, writes only
// r: trivially parallel and worker-invariant.
func (p *problem) residual(lv *fieldLevel) error {
	w := p.workers
	if lv.g < mgSerialGrid {
		w = 1
	}
	p.relaxLv = lv
	return parallel.ForCtx(p.ctx, w, lv.g, p.residRowFn)
}

func (p *problem) residRow(y int) {
	lv := p.relaxLv
	g := lv.g
	base := y * g
	for x := 0; x < g; x++ {
		idx := base + x
		sum, cnt := 0.0, 0
		if x > 0 {
			sum += lv.psi[idx-1]
			cnt++
		}
		if x < g-1 {
			sum += lv.psi[idx+1]
			cnt++
		}
		if y > 0 {
			sum += lv.psi[idx-g]
			cnt++
		}
		if y < g-1 {
			sum += lv.psi[idx+g]
			cnt++
		}
		lv.r[idx] = lv.f[idx] - (float64(cnt)*lv.psi[idx] - sum)
	}
}

// restrictTo builds the coarse-level error equation from the fine
// residual: each coarse cell averages the (up to) 2×2 fine residuals it
// covers, scaled by (h_c/h_f)² because h² is folded into f. The coarse ψ
// (the error estimate) starts at zero. Serial: the coarse grids are tiny
// next to the smoothing work.
func restrictTo(fine, coarse *fieldLevel) {
	gf, gc := fine.g, coarse.g
	ratio := float64(gf) / float64(gc) // h_c/h_f; exactly 2 for even gf
	scale := ratio * ratio
	for cy := 0; cy < gc; cy++ {
		y0 := 2 * cy
		y1 := y0 + 2
		if y1 > gf {
			y1 = gf
		}
		for cx := 0; cx < gc; cx++ {
			x0 := 2 * cx
			x1 := x0 + 2
			if x1 > gf {
				x1 = gf
			}
			sum, cnt := 0.0, 0
			for y := y0; y < y1; y++ {
				for x := x0; x < x1; x++ {
					sum += fine.r[y*gf+x]
					cnt++
				}
			}
			ci := cy*gc + cx
			coarse.f[ci] = scale * sum / float64(cnt)
			coarse.psi[ci] = 0
		}
	}
}

// prolongAdd interpolates the coarse error bilinearly back onto the fine
// grid and adds it to ψ. Cell-centered geometry: fine cell x sits at
// coarse coordinate (x−0.5)/2, so an even fine index blends its parent
// with the previous coarse cell at weights 3/4 and 1/4 (odd: parent and
// next), clamped at the edges (constant extrapolation matches Neumann).
func prolongAdd(coarse, fine *fieldLevel) {
	gf, gc := fine.g, coarse.g
	for y := 0; y < gf; y++ {
		yb := y / 2
		ylo, yhi := yb-1, yb
		wy := 0.25 // weight of ylo
		if y&1 == 1 {
			ylo, yhi = yb, yb+1
			wy = 0.75
		}
		if ylo < 0 {
			ylo = 0
		}
		if yhi > gc-1 {
			yhi = gc - 1
		}
		rowLo, rowHi := ylo*gc, yhi*gc
		for x := 0; x < gf; x++ {
			xb := x / 2
			xlo, xhi := xb-1, xb
			wx := 0.25
			if x&1 == 1 {
				xlo, xhi = xb, xb+1
				wx = 0.75
			}
			if xlo < 0 {
				xlo = 0
			}
			if xhi > gc-1 {
				xhi = gc - 1
			}
			v := wy*(wx*coarse.psi[rowLo+xlo]+(1-wx)*coarse.psi[rowLo+xhi]) +
				(1-wy)*(wx*coarse.psi[rowHi+xlo]+(1-wx)*coarse.psi[rowHi+xhi])
			fine.psi[y*gf+x] += v
		}
	}
}

// treeSum reduces v by fixed-order pairwise (tree) summation: the split
// points depend only on the length, so the result is a pure function of
// the values — the deterministic reduction used to combine per-chunk and
// per-bucket partials regardless of which worker produced them.
func treeSum(v []float64) float64 {
	switch len(v) {
	case 0:
		return 0
	case 1:
		return v[0]
	case 2:
		return v[0] + v[1]
	}
	h := len(v) / 2
	return treeSum(v[:h]) + treeSum(v[h:])
}
