package route

import (
	"testing"
)

// TestRouteWorkerInvariance: the batched maze router's output may depend on
// BatchSize (the speculation granularity is part of the algorithm) but
// never on Workers — a batch's searches run against the same usage
// snapshot and commit in wire order whatever the pool size.
func TestRouteWorkerInvariance(t *testing.T) {
	nl, pl := gridNetlist(64, 3)
	for _, batch := range []int{1, 4, 16} {
		run := func(workers int) *Result {
			opts := DefaultOptions()
			opts.BatchSize = batch
			opts.Workers = workers
			r, err := Route(nl, pl, opts)
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
			}
			return r
		}
		serial := run(1)
		for _, workers := range []int{2, 4, 11} {
			got := run(workers)
			if got.Total != serial.Total {
				t.Fatalf("batch=%d workers=%d: total %g, serial %g", batch, workers, got.Total, serial.Total)
			}
			if got.Relaxations != serial.Relaxations || got.FinalCapacity != serial.FinalCapacity {
				t.Fatalf("batch=%d workers=%d: relaxation history diverged", batch, workers)
			}
			for i := range serial.WireLength {
				if got.WireLength[i] != serial.WireLength[i] {
					t.Fatalf("batch=%d workers=%d: wire %d length %g, serial %g",
						batch, workers, i, got.WireLength[i], serial.WireLength[i])
				}
			}
			for i := range serial.Usage {
				if got.Usage[i] != serial.Usage[i] {
					t.Fatalf("batch=%d workers=%d: usage bin %d = %d, serial %d",
						batch, workers, i, got.Usage[i], serial.Usage[i])
				}
			}
			if got.Negotiated != serial.Negotiated || got.Rounds != serial.Rounds ||
				got.RipUps != serial.RipUps || got.Expansions != serial.Expansions ||
				got.OverusedPeak != serial.OverusedPeak {
				t.Fatalf("batch=%d workers=%d: negotiation counters diverged", batch, workers)
			}
		}
	}
}

// TestRouteWorkerInvarianceNegotiated drives the negotiated-congestion
// engine through multiple rip-up rounds on a congested netlist and
// bit-compares the complete result — every path, every length, the
// congestion map, and every deterministic counter — across worker counts.
// Only RoundTimes (diagnostic wall time) is exempt.
func TestRouteWorkerInvarianceNegotiated(t *testing.T) {
	nl, pl := congestedNetlist(t)
	run := func(workers int) *Result {
		opts := DefaultOptions()
		opts.Theta = 3
		opts.Capacity = 2
		opts.Workers = workers
		r, err := Route(nl, pl, opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return r
	}
	serial := run(1)
	if !serial.Negotiated {
		t.Fatal("congested scenario fell back to the legacy engine")
	}
	if serial.Rounds < 2 {
		t.Fatalf("scenario converged in %d rounds; need ≥ 2 to exercise rip-up", serial.Rounds)
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.Total != serial.Total ||
			got.Negotiated != serial.Negotiated ||
			got.Rounds != serial.Rounds ||
			got.RipUps != serial.RipUps ||
			got.Expansions != serial.Expansions ||
			got.OverusedPeak != serial.OverusedPeak ||
			got.Relaxations != serial.Relaxations ||
			got.FinalCapacity != serial.FinalCapacity {
			t.Fatalf("workers=%d: result diverged from serial:\n got %+v rounds=%d ripups=%d exp=%d\nwant %+v rounds=%d ripups=%d exp=%d",
				workers, got.Total, got.Rounds, got.RipUps, got.Expansions,
				serial.Total, serial.Rounds, serial.RipUps, serial.Expansions)
		}
		for i := range serial.WireLength {
			if got.WireLength[i] != serial.WireLength[i] {
				t.Fatalf("workers=%d: wire %d length %g, serial %g", workers, i, got.WireLength[i], serial.WireLength[i])
			}
		}
		for i := range serial.Usage {
			if got.Usage[i] != serial.Usage[i] {
				t.Fatalf("workers=%d: usage bin %d = %d, serial %d", workers, i, got.Usage[i], serial.Usage[i])
			}
		}
		for i := range serial.Paths {
			if len(got.Paths[i]) != len(serial.Paths[i]) {
				t.Fatalf("workers=%d: wire %d path length %d, serial %d", workers, i, len(got.Paths[i]), len(serial.Paths[i]))
			}
			for j := range serial.Paths[i] {
				if got.Paths[i][j] != serial.Paths[i][j] {
					t.Fatalf("workers=%d: wire %d path[%d] = %d, serial %d", workers, i, j, got.Paths[i][j], serial.Paths[i][j])
				}
			}
		}
	}
}

// TestRouteBatchSizeOne: BatchSize=1 must reproduce the classic sequential
// maze router exactly — it is the same algorithm with no speculation.
func TestRouteBatchSizeOne(t *testing.T) {
	nl, pl := gridNetlist(36, 4)
	opts := DefaultOptions()
	opts.BatchSize = 1
	seq, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	par, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Total != par.Total {
		t.Fatalf("BatchSize=1 depends on workers: %g vs %g", seq.Total, par.Total)
	}
}
