package route

import (
	"testing"
)

// TestRouteWorkerInvariance: the batched maze router's output may depend on
// BatchSize (the speculation granularity is part of the algorithm) but
// never on Workers — a batch's searches run against the same usage
// snapshot and commit in wire order whatever the pool size.
func TestRouteWorkerInvariance(t *testing.T) {
	nl, pl := gridNetlist(64, 3)
	for _, batch := range []int{1, 4, 16} {
		run := func(workers int) *Result {
			opts := DefaultOptions()
			opts.BatchSize = batch
			opts.Workers = workers
			r, err := Route(nl, pl, opts)
			if err != nil {
				t.Fatalf("batch=%d workers=%d: %v", batch, workers, err)
			}
			return r
		}
		serial := run(1)
		for _, workers := range []int{2, 4, 11} {
			got := run(workers)
			if got.Total != serial.Total {
				t.Fatalf("batch=%d workers=%d: total %g, serial %g", batch, workers, got.Total, serial.Total)
			}
			if got.Relaxations != serial.Relaxations || got.FinalCapacity != serial.FinalCapacity {
				t.Fatalf("batch=%d workers=%d: relaxation history diverged", batch, workers)
			}
			for i := range serial.WireLength {
				if got.WireLength[i] != serial.WireLength[i] {
					t.Fatalf("batch=%d workers=%d: wire %d length %g, serial %g",
						batch, workers, i, got.WireLength[i], serial.WireLength[i])
				}
			}
			for i := range serial.Usage {
				if got.Usage[i] != serial.Usage[i] {
					t.Fatalf("batch=%d workers=%d: usage bin %d = %d, serial %d",
						batch, workers, i, got.Usage[i], serial.Usage[i])
				}
			}
		}
	}
}

// TestRouteBatchSizeOne: BatchSize=1 must reproduce the classic sequential
// maze router exactly — it is the same algorithm with no speculation.
func TestRouteBatchSizeOne(t *testing.T) {
	nl, pl := gridNetlist(36, 4)
	opts := DefaultOptions()
	opts.BatchSize = 1
	seq, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	par, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Total != par.Total {
		t.Fatalf("BatchSize=1 depends on workers: %g vs %g", seq.Total, par.Total)
	}
}
