package route

import (
	"context"
	"fmt"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/place"
)

// Warm is the reusable routing a previous compile left behind, re-indexed by
// the new netlist's wire IDs. A wire with a non-nil path is clean: its
// terminals did not move and its path may be committed as-is. A nil path
// marks a dirty wire the delta route must find a path for.
type Warm struct {
	// Cols, Rows are the grid dimensions the warm paths were routed on. A
	// delta route whose placement yields a different grid cannot reuse any
	// path and falls back to a from-scratch route.
	Cols, Rows int
	// Paths holds each clean wire's previous bin sequence (nil for dirty
	// wires), indexed by the new netlist's wire IDs. Paths are only read —
	// the delta route copies them before committing.
	Paths [][]int
	// FinalCapacity is the previous route's final (possibly relaxed)
	// capacity. The delta negotiation starts there instead of at
	// Options.Capacity: the warm load was legalized at that capacity, so
	// restarting lower would immediately rip up warm paths that the
	// previous run already proved need the headroom.
	FinalCapacity int
}

// RouteDeltaCtx routes the netlist by reusing the warm paths of every clean
// wire and negotiating only the dirty ones: warm paths commit to the usage
// maps up front, round 1 of the negotiation routes just the dirty wires
// against that load, and later rounds rip up and renegotiate any wire —
// warm or dirty — whose path crosses an overused edge, exactly like a
// from-scratch negotiation. Results are bit-identical for any Workers value
// and deterministic for a fixed (netlist, placement, warm) input.
//
// The warm set is advisory: if the grid dimensions differ, a warm path's
// endpoints no longer match the wire's terminal bins, or the options select
// the legacy engine (which has no partial-reroute notion), the affected
// wires — or on a grid mismatch the whole route — degrade to from-scratch.
// reused reports how many wires kept their warm path through round 1; the
// negotiation may still rip some of them later (Result.RipUps counts that).
func RouteDeltaCtx(ctx context.Context, nl *netlist.Netlist, pl *place.Result, opts Options, warm *Warm) (res *Result, reused int, err error) {
	if err := opts.validate(); err != nil {
		return nil, 0, err
	}
	if warm == nil || !opts.Negotiate {
		res, err = RouteCtx(ctx, nl, pl, opts)
		return res, 0, err
	}
	if len(warm.Paths) != len(nl.Wires) {
		return nil, 0, fmt.Errorf("route: warm set covers %d wires, netlist has %d", len(warm.Paths), len(nl.Wires))
	}
	res = &Result{WireLength: make([]float64, len(nl.Wires)), Negotiated: true}
	if len(nl.Wires) == 0 {
		res.Cols, res.Rows = 1, 1
		res.Usage = make([]int, 1)
		res.FinalCapacity = opts.Capacity
		obs.Emit(opts.Observer, routeStatsOf(res, 0))
		return res, 0, nil
	}
	rt := newRouter(nl, pl, opts, res)
	if warm.FinalCapacity > rt.opts.Capacity {
		rt.opts.Capacity = warm.FinalCapacity
	}
	if rt.g.cols != warm.Cols || rt.g.rows != warm.Rows {
		// The placement stretched or shrank the grid: every warm bin index
		// means something else now. Route from scratch.
		res, err = RouteCtx(ctx, nl, pl, opts)
		return res, 0, err
	}
	// Commit the clean wires' warm paths. Copies, never aliases: the
	// negotiation reuses res.Paths[wi][:0] as search scratch, which must not
	// scribble over the caller's warm set.
	for wi, path := range warm.Paths {
		if path == nil {
			continue
		}
		if rt.src[wi] == rt.dst[wi] {
			if len(path) != 1 || path[0] != rt.src[wi] {
				continue // terminals moved into one bin; reroute
			}
			rt.commitSameBin(wi)
			reused++
			continue
		}
		if len(path) < 2 || path[0] != rt.src[wi] || path[len(path)-1] != rt.dst[wi] {
			continue // terminals moved; reroute this wire
		}
		res.Paths[wi] = append(res.Paths[wi][:0], path...)
		rt.g.commit(res.Paths[wi])
		res.WireLength[wi] = float64(len(path)-1) * opts.Theta
		reused++
	}
	// Round 1 routes the dirty wires in paper order; the warm load is
	// already on the usage maps, so the new wires negotiate around it.
	dirty := make([]int, 0, len(nl.Wires)-reused)
	for _, wi := range rt.order {
		if len(res.Paths[wi]) == 0 {
			dirty = append(dirty, wi)
		}
	}
	if err := rt.negotiate(ctx, dirty); err != nil {
		return nil, 0, err
	}
	if !res.Negotiated {
		// The negotiation stalled and the legacy fallback rerouted the whole
		// design from scratch; no warm path survived.
		reused = 0
	}
	rt.finalize()
	return res, reused, nil
}
