package route

import (
	"math/rand"
	"testing"

	"repro/internal/netlist"
	"repro/internal/place"
)

// congestedNetlist builds a 10×10 cell grid with the chain wires of
// gridNetlist plus extra random long-haul wires, dense enough that a small
// starting capacity forces both engines through their congestion machinery
// (relaxation or negotiation rounds).
func congestedNetlist(t *testing.T) (*netlist.Netlist, *place.Result) {
	t.Helper()
	nl, pl := gridNetlist(100, 3)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		a, b := rng.Intn(100), rng.Intn(100)
		if a == b {
			continue
		}
		nl.Wires = append(nl.Wires, netlist.Wire{ID: len(nl.Wires), From: a, To: b, Weight: 1})
	}
	return nl, pl
}

// checkRouteInvariants asserts the structural properties every routed
// result must satisfy, engine-independent:
//
//  1. each wire's path starts in its source bin, ends in its target bin,
//     and steps only between edge-adjacent bins (a same-bin wire's path is
//     its single bin);
//  2. the congestion map Usage is exactly the per-bin visit count summed
//     over all paths;
//  3. no grid edge carries more wires than FinalCapacity.
func checkRouteInvariants(t *testing.T, nl *netlist.Netlist, pl *place.Result, opts Options, res *Result) {
	t.Helper()
	g := newGrid(pl, opts.Theta)
	if res.Cols != g.cols || res.Rows != g.rows {
		t.Fatalf("result grid %d×%d, want %d×%d", res.Cols, res.Rows, g.cols, g.rows)
	}
	usage := make([]int, g.cols*g.rows)
	hUse := make([]int, g.cols*g.rows)
	vUse := make([]int, g.cols*g.rows)
	for _, w := range nl.Wires {
		path := res.Paths[w.ID]
		if len(path) == 0 {
			t.Fatalf("wire %d has no path", w.ID)
		}
		sc, sr := g.binOf(pl.X[w.From], pl.Y[w.From])
		tc, tr := g.binOf(pl.X[w.To], pl.Y[w.To])
		src, dst := sr*g.cols+sc, tr*g.cols+tc
		if path[0] != src {
			t.Fatalf("wire %d starts at bin %d, want source bin %d", w.ID, path[0], src)
		}
		if path[len(path)-1] != dst {
			t.Fatalf("wire %d ends at bin %d, want target bin %d", w.ID, path[len(path)-1], dst)
		}
		if src == dst && len(path) != 1 {
			t.Fatalf("same-bin wire %d has %d-bin path", w.ID, len(path))
		}
		for i := 1; i < len(path); i++ {
			a, b := path[i-1], path[i]
			ac, ar := a%g.cols, a/g.cols
			bc, br := b%g.cols, b/g.cols
			if absInt(ac-bc)+absInt(ar-br) != 1 {
				t.Fatalf("wire %d step %d: bins %d→%d not adjacent", w.ID, i, a, b)
			}
			if b < a {
				a = b
			}
			if absInt(ac-bc) == 1 {
				hUse[a]++
			} else {
				vUse[a]++
			}
		}
		for _, b := range path {
			usage[b]++
		}
	}
	for i, u := range usage {
		if res.Usage[i] != u {
			t.Fatalf("bin %d usage %d, want recomputed %d", i, res.Usage[i], u)
		}
	}
	for i, u := range hUse {
		if u > res.FinalCapacity {
			t.Fatalf("horizontal edge %d carries %d wires, capacity %d", i, u, res.FinalCapacity)
		}
	}
	for i, u := range vUse {
		if u > res.FinalCapacity {
			t.Fatalf("vertical edge %d carries %d wires, capacity %d", i, u, res.FinalCapacity)
		}
	}
}

// TestRoutePathProperties checks the invariants on a congested workload for
// both engines.
func TestRoutePathProperties(t *testing.T) {
	nl, pl := congestedNetlist(t)
	for _, negotiate := range []bool{false, true} {
		name := "legacy"
		if negotiate {
			name = "negotiated"
		}
		t.Run(name, func(t *testing.T) {
			opts := DefaultOptions()
			opts.Negotiate = negotiate
			opts.Theta = 3
			opts.Capacity = 2
			res, err := Route(nl, pl, opts)
			if err != nil {
				t.Fatal(err)
			}
			if negotiate && res.Rounds == 0 {
				t.Fatal("negotiated engine reported zero rounds")
			}
			checkRouteInvariants(t, nl, pl, opts, res)
		})
	}
}

// TestRouteNegotiationFallback forces the negotiation to stall (one round,
// no relaxation budget) and checks the legacy fallback routes the design
// with the invariants intact and Negotiated reset.
func TestRouteNegotiationFallback(t *testing.T) {
	nl, pl := congestedNetlist(t)
	opts := DefaultOptions()
	opts.Theta = 3
	opts.Capacity = 2
	opts.NegotiationRounds = 1
	res, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Negotiated {
		t.Fatal("one-round negotiation on a congested design cannot have converged")
	}
	if res.Rounds != 1 {
		t.Fatalf("ran %d rounds, want exactly 1", res.Rounds)
	}
	checkRouteInvariants(t, nl, pl, opts, res)
}
