// Package route implements the global routing stage of Section 3.5: a grid
// graph with user-defined bin width θ [18], per-edge virtual capacity [17],
// maze routing [16] ordered by each wire's distance from the center of
// gravity of all cells (wire weight as the tie breaker), and capacity
// relaxation to reroute wires that fail until every wire is routed.
//
// Wires are processed in batches of Options.BatchSize: every wire of a
// batch runs its maze search against the usage snapshot at batch start
// (those searches fan out across Options.Workers goroutines), then the
// found paths commit sequentially in wire order, re-queueing any wire whose
// path no longer fits under the edge capacity. The batch decomposition is
// fixed by the wire order alone — never by the worker count — so routing
// results are bit-identical for any Workers value; BatchSize=1 degenerates
// to the classic fully sequential maze router.
package route

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/netlist"
	"repro/internal/parallel"
	"repro/internal/place"
)

// Options tunes the router.
type Options struct {
	// Theta is the grid bin width θ in µm.
	Theta float64
	// Capacity is the initial virtual capacity: the number of wires each
	// grid edge may carry before it is considered full.
	Capacity int
	// CongestionPenalty multiplies the cost of stepping onto an edge, per
	// unit of existing usage, steering the maze router around congestion
	// even below capacity.
	CongestionPenalty float64
	// MaxRelaxations bounds how many times the virtual capacity may be
	// relaxed (incremented) to route failing wires.
	MaxRelaxations int
	// BatchSize is how many wires route speculatively against one usage
	// snapshot before their paths commit in order. Zero means the default
	// (16); 1 reproduces the classic one-wire-at-a-time maze router. The
	// routed result depends on BatchSize but never on Workers.
	BatchSize int
	// Workers bounds the goroutines running a batch's maze searches.
	// Zero means the parallel package default; negative is rejected.
	Workers int
}

// defaultBatchSize balances maze-search parallelism against the fidelity of
// the usage picture each wire sees.
const defaultBatchSize = 16

// DefaultOptions returns the parameter set used by the experiments.
func DefaultOptions() Options {
	return Options{
		Theta:             2.0,
		Capacity:          8,
		CongestionPenalty: 0.3,
		MaxRelaxations:    64,
		BatchSize:         defaultBatchSize,
	}
}

func (o Options) validate() error {
	if o.Theta <= 0 {
		return fmt.Errorf("route: theta %g must be positive", o.Theta)
	}
	if o.Capacity <= 0 {
		return fmt.Errorf("route: capacity %d must be positive", o.Capacity)
	}
	if o.CongestionPenalty < 0 {
		return fmt.Errorf("route: congestion penalty %g must be ≥ 0", o.CongestionPenalty)
	}
	if o.MaxRelaxations < 0 {
		return fmt.Errorf("route: max relaxations %d must be ≥ 0", o.MaxRelaxations)
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("route: batch size %d must be ≥ 0", o.BatchSize)
	}
	if o.Workers < 0 {
		return fmt.Errorf("route: negative worker count %d", o.Workers)
	}
	return nil
}

// Result holds the routed design.
type Result struct {
	// WireLength is the routed length of each wire in µm, indexed by wire
	// ID.
	WireLength []float64
	// Total is the summed routed wirelength in µm.
	Total float64
	// Cols, Rows are the grid dimensions.
	Cols, Rows int
	// Usage is the per-bin wire presence count (how many routed wires pass
	// through each bin), row-major — the congestion map of Figure 10.
	Usage []int
	// Relaxations is how many capacity relaxations were needed.
	Relaxations int
	// FinalCapacity is the virtual capacity after relaxation.
	FinalCapacity int
}

// MaxUsage returns the peak bin congestion.
func (r *Result) MaxUsage() int {
	max := 0
	for _, u := range r.Usage {
		if u > max {
			max = u
		}
	}
	return max
}

// UsageAt returns the congestion of bin (col, row).
func (r *Result) UsageAt(col, row int) int { return r.Usage[row*r.Cols+col] }

// grid is the routing graph: bins with horizontal and vertical edge usage.
type grid struct {
	cols, rows int
	theta      float64
	minX, minY float64
	// hUsage[r*cols+c] is the usage of the edge from (c,r) to (c+1,r);
	// vUsage[r*cols+c] of the edge from (c,r) to (c,r+1).
	hUsage, vUsage []int
}

func newGrid(pl *place.Result, theta float64) *grid {
	w := math.Max(pl.Width(), theta)
	h := math.Max(pl.Height(), theta)
	cols := int(math.Ceil(w/theta)) + 1
	rows := int(math.Ceil(h/theta)) + 1
	return &grid{
		cols: cols, rows: rows, theta: theta,
		minX: pl.MinX, minY: pl.MinY,
		hUsage: make([]int, cols*rows),
		vUsage: make([]int, cols*rows),
	}
}

func (g *grid) binOf(x, y float64) (int, int) {
	c := int((x - g.minX) / g.theta)
	r := int((y - g.minY) / g.theta)
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	return c, r
}

// pqItem is a priority-queue entry for the A* search: cost is the f-value
// (g + heuristic) used for ordering, g the actual path cost so far.
type pqItem struct {
	node int
	cost float64
	g    float64
}

type pq []pqItem

func (q pq) Len() int            { return len(q) }
func (q pq) Less(i, j int) bool  { return q[i].cost < q[j].cost }
func (q pq) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *pq) Push(x interface{}) { *q = append(*q, x.(pqItem)) }
func (q *pq) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// dijkstra finds the cheapest path from bin s to bin t under the current
// usage and capacity, using A* with the Manhattan-distance lower bound
// (admissible because congestion only ever adds to an edge's base cost).
// It returns the bin sequence or nil if t is unreachable (all paths
// blocked by full edges).
func (g *grid) dijkstra(s, t int, capacity int, penalty float64) []int {
	n := g.cols * g.rows
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	tc, tr := t%g.cols, t/g.cols
	lowerBound := func(node int) float64 {
		c, r := node%g.cols, node/g.cols
		return g.theta * float64(absInt(c-tc)+absInt(r-tr))
	}
	dist[s] = 0
	q := &pq{{node: s, cost: lowerBound(s), g: 0}}
	for q.Len() > 0 {
		it := heap.Pop(q).(pqItem)
		if it.node == t {
			break
		}
		if it.g > dist[it.node] {
			continue
		}
		c, r := it.node%g.cols, it.node/g.cols
		try := func(nc, nr int, usage []int, edgeIdx int) {
			u := usage[edgeIdx]
			if u >= capacity {
				return
			}
			nn := nr*g.cols + nc
			cost := it.g + g.theta*(1+penalty*float64(u))
			if cost < dist[nn] {
				dist[nn] = cost
				prev[nn] = it.node
				heap.Push(q, pqItem{node: nn, cost: cost + lowerBound(nn), g: cost})
			}
		}
		if c+1 < g.cols {
			try(c+1, r, g.hUsage, r*g.cols+c)
		}
		if c-1 >= 0 {
			try(c-1, r, g.hUsage, r*g.cols+c-1)
		}
		if r+1 < g.rows {
			try(c, r+1, g.vUsage, r*g.cols+c)
		}
		if r-1 >= 0 {
			try(c, r-1, g.vUsage, (r-1)*g.cols+c)
		}
	}
	if math.IsInf(dist[t], 1) {
		return nil
	}
	var path []int
	for v := t; v != -1; v = prev[v] {
		path = append(path, v)
	}
	// Reverse to s→t order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// commit adds the path's edges to the usage maps.
func (g *grid) commit(path []int) {
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if b < a {
			a, b = b, a
		}
		if b == a+1 { // horizontal
			g.hUsage[a]++
		} else { // vertical
			g.vUsage[a]++
		}
	}
}

// fits reports whether every edge of the path still has headroom under the
// capacity — a speculative path can be invalidated by a batch-mate that
// committed first.
func (g *grid) fits(path []int, capacity int) bool {
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if b < a {
			a, b = b, a
		}
		if b == a+1 {
			if g.hUsage[a] >= capacity {
				return false
			}
		} else if g.vUsage[a] >= capacity {
			return false
		}
	}
	return true
}

// Route routes every wire of the netlist over the placed design. The wire
// order follows the paper: ascending distance from the center of gravity of
// all cells to the wire's closest pin, with the wire weight breaking ties
// (heavier first). Wires that cannot be routed under the current virtual
// capacity trigger a capacity relaxation and are rerouted.
func Route(nl *netlist.Netlist, pl *place.Result, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	res := &Result{WireLength: make([]float64, len(nl.Wires))}
	if len(nl.Wires) == 0 {
		res.Cols, res.Rows = 1, 1
		res.Usage = make([]int, 1)
		res.FinalCapacity = opts.Capacity
		return res, nil
	}
	g := newGrid(pl, opts.Theta)
	res.Cols, res.Rows = g.cols, g.rows

	// Center of gravity of all cells.
	cgx, cgy := 0.0, 0.0
	for i := range nl.Cells {
		cgx += pl.X[i]
		cgy += pl.Y[i]
	}
	cgx /= float64(len(nl.Cells))
	cgy /= float64(len(nl.Cells))

	order := make([]int, len(nl.Wires))
	key := make([]float64, len(nl.Wires))
	for i, w := range nl.Wires {
		d1 := math.Abs(pl.X[w.From]-cgx) + math.Abs(pl.Y[w.From]-cgy)
		d2 := math.Abs(pl.X[w.To]-cgx) + math.Abs(pl.Y[w.To]-cgy)
		key[i] = math.Min(d1, d2)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := order[a], order[b]
		if key[wa] != key[wb] {
			return key[wa] < key[wb]
		}
		return nl.Wires[wa].Weight > nl.Wires[wb].Weight
	})

	capacity := opts.Capacity
	batch := opts.BatchSize
	if batch == 0 {
		batch = defaultBatchSize
	}
	workers := parallel.Resolve(opts.Workers)
	paths := make([][]int, len(nl.Wires))
	// Source/target bins depend only on the placement; compute once.
	src := make([]int, len(nl.Wires))
	dst := make([]int, len(nl.Wires))
	for i, w := range nl.Wires {
		sc, sr := g.binOf(pl.X[w.From], pl.Y[w.From])
		tc, tr := g.binOf(pl.X[w.To], pl.Y[w.To])
		src[i], dst[i] = sr*g.cols+sc, tr*g.cols+tc
	}
	pending := order
	for len(pending) > 0 {
		var failed []int // no path under the current capacity: relaxation candidates
		queue := pending
		for len(queue) > 0 {
			b := batch
			if b > len(queue) {
				b = len(queue)
			}
			cur := queue[:b]
			queue = queue[b:]
			// Speculative maze searches, all against the usage snapshot at
			// batch start. dijkstra only reads the usage maps, so the
			// searches fan out across the pool; the batch decomposition is
			// fixed by the wire order, never by the worker count.
			spec := parallel.Map(workers, b, func(i int) []int {
				if src[cur[i]] == dst[cur[i]] {
					return nil // same-bin wires route directly at commit
				}
				return g.dijkstra(src[cur[i]], dst[cur[i]], capacity, opts.CongestionPenalty)
			})
			// Commit in wire order. A path invalidated by a batch-mate's
			// commit is re-queued ahead of the untried wires; the first
			// wire of a batch always commits, so every batch makes
			// progress.
			var retry []int
			for i, wi := range cur {
				w := nl.Wires[wi]
				if src[wi] == dst[wi] {
					// Same bin: direct connection, no grid edges consumed.
					paths[wi] = []int{src[wi]}
					res.WireLength[wi] = math.Max(
						math.Abs(pl.X[w.From]-pl.X[w.To])+math.Abs(pl.Y[w.From]-pl.Y[w.To]),
						opts.Theta/2)
					continue
				}
				path := spec[i]
				if path == nil {
					failed = append(failed, wi)
					continue
				}
				if !g.fits(path, capacity) {
					retry = append(retry, wi)
					continue
				}
				g.commit(path)
				paths[wi] = path
				res.WireLength[wi] = float64(len(path)-1) * opts.Theta
			}
			if len(retry) > 0 {
				queue = append(retry, queue...)
			}
		}
		if len(failed) == 0 {
			break
		}
		if res.Relaxations >= opts.MaxRelaxations {
			return nil, fmt.Errorf("route: %d wires unroutable after %d capacity relaxations",
				len(failed), res.Relaxations)
		}
		capacity++
		res.Relaxations++
		pending = failed
	}
	res.FinalCapacity = capacity
	for _, l := range res.WireLength {
		res.Total += l
	}
	// Congestion map: wires passing through each bin.
	res.Usage = make([]int, g.cols*g.rows)
	for _, path := range paths {
		for _, b := range path {
			res.Usage[b]++
		}
	}
	return res, nil
}
