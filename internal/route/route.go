// Package route implements the global routing stage of Section 3.5: a grid
// graph with user-defined bin width θ [18], per-edge virtual capacity [17],
// and maze routing [16] ordered by each wire's distance from the center of
// gravity of all cells (wire weight as the tie breaker).
//
// Two congestion-resolution engines share that machinery. The default is
// PathFinder-style negotiated congestion (negotiate.go): searches never
// block on full edges; instead each edge is priced by its present overuse
// and a history cost that accumulates across rip-up-and-reroute rounds, so
// wires negotiate shared edges until no edge exceeds capacity. Searches run
// bidirectionally (meet-in-the-middle A* under the Manhattan bound). The
// legacy engine (Options.Negotiate=false) blocks full edges outright and
// relaxes the virtual capacity globally to reroute wires that fail; a
// stalled negotiation falls back to it with the same bound.
//
// Wires are processed in batches of Options.BatchSize: every wire of a
// batch runs its maze search against the usage snapshot at batch start
// (those searches fan out across Options.Workers goroutines), then the
// found paths commit sequentially in wire order, re-queueing any wire whose
// path no longer fits under the edge capacity. The batch decomposition is
// fixed by the wire order alone — never by the worker count — so routing
// results are bit-identical for any Workers value; BatchSize=1 degenerates
// to the classic fully sequential maze router.
package route

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/place"
)

// Options tunes the router.
type Options struct {
	// Theta is the grid bin width θ in µm.
	Theta float64
	// Capacity is the initial virtual capacity: the number of wires each
	// grid edge may carry before it is considered full.
	Capacity int
	// CongestionPenalty multiplies the cost of stepping onto an edge, per
	// unit of existing usage, steering the maze router around congestion
	// even below capacity.
	CongestionPenalty float64
	// MaxRelaxations bounds how many times the virtual capacity may be
	// relaxed (incremented) to route failing wires.
	MaxRelaxations int
	// BatchSize is how many wires route speculatively against one usage
	// snapshot before their paths commit in order. Zero means the default
	// (16); 1 reproduces the classic one-wire-at-a-time maze router. The
	// routed result depends on BatchSize but never on Workers.
	BatchSize int
	// Workers bounds the goroutines running a batch's maze searches.
	// Zero means the parallel package default; negative is rejected.
	Workers int
	// Negotiate selects the negotiated-congestion engine: searches price
	// overused edges instead of blocking on them, and rip-up-and-reroute
	// rounds resolve the overuse. False selects the legacy capacity-
	// relaxation engine (the zero value, so hand-built Options keep their
	// historical meaning; DefaultOptions enables negotiation).
	Negotiate bool
	// PresentFactor scales the present-congestion price of an overused edge
	// per unit of overuse, multiplied by the round number so the pressure
	// escalates. Zero means DefaultPresentFactor; negative is rejected.
	PresentFactor float64
	// HistoryGain scales the history cost added to an edge per unit of
	// overuse after each round, in units of Theta. Zero means
	// DefaultHistoryGain; negative is rejected.
	HistoryGain float64
	// NegotiationRounds bounds the rip-up-and-reroute rounds before a
	// stalled negotiation falls back to the legacy relaxation engine. Zero
	// means DefaultNegotiationRounds; negative is rejected.
	NegotiationRounds int
	// Observer, when non-nil, receives an obs.RouteBatch event after every
	// committed batch, an obs.RouteRelaxation event at every capacity
	// relaxation, and one obs.RouteStats summary after the route finishes.
	// Observers are passive: they cannot change the routing.
	Observer obs.Observer
}

// defaultBatchSize balances maze-search parallelism against the fidelity of
// the usage picture each wire sees.
const defaultBatchSize = 16

// Defaults of the negotiated-congestion knobs, applied when the
// corresponding Options field is zero. Exported so the cache key
// (CanonicalHash) can fold zero spellings to the same digest.
const (
	DefaultPresentFactor     = 0.5
	DefaultHistoryGain       = 0.4
	DefaultNegotiationRounds = 48
)

// DefaultOptions returns the parameter set used by the experiments.
func DefaultOptions() Options {
	return Options{
		Theta:             2.0,
		Capacity:          8,
		CongestionPenalty: 0.3,
		MaxRelaxations:    64,
		BatchSize:         defaultBatchSize,
		Negotiate:         true,
		PresentFactor:     DefaultPresentFactor,
		HistoryGain:       DefaultHistoryGain,
		NegotiationRounds: DefaultNegotiationRounds,
	}
}

func (o Options) validate() error {
	if o.Theta <= 0 {
		return fmt.Errorf("route: theta %g must be positive", o.Theta)
	}
	if o.Capacity <= 0 {
		return fmt.Errorf("route: capacity %d must be positive", o.Capacity)
	}
	if o.CongestionPenalty < 0 {
		return fmt.Errorf("route: congestion penalty %g must be ≥ 0", o.CongestionPenalty)
	}
	if o.MaxRelaxations < 0 {
		return fmt.Errorf("route: max relaxations %d must be ≥ 0", o.MaxRelaxations)
	}
	if o.BatchSize < 0 {
		return fmt.Errorf("route: batch size %d must be ≥ 0", o.BatchSize)
	}
	if o.Workers < 0 {
		return fmt.Errorf("route: negative worker count %d", o.Workers)
	}
	if o.PresentFactor < 0 {
		return fmt.Errorf("route: present factor %g must be ≥ 0", o.PresentFactor)
	}
	if o.HistoryGain < 0 {
		return fmt.Errorf("route: history gain %g must be ≥ 0", o.HistoryGain)
	}
	if o.NegotiationRounds < 0 {
		return fmt.Errorf("route: negotiation rounds %d must be ≥ 0", o.NegotiationRounds)
	}
	return nil
}

// Result holds the routed design.
type Result struct {
	// WireLength is the routed length of each wire in µm, indexed by wire
	// ID.
	WireLength []float64
	// Total is the summed routed wirelength in µm.
	Total float64
	// Cols, Rows are the grid dimensions.
	Cols, Rows int
	// Usage is the per-bin wire presence count (how many routed wires pass
	// through each bin), row-major — the congestion map of Figure 10.
	Usage []int
	// Relaxations is how many capacity relaxations were needed.
	Relaxations int
	// FinalCapacity is the virtual capacity after relaxation.
	FinalCapacity int
	// Paths holds each wire's committed bin sequence, indexed by wire ID.
	// A same-bin wire's path is its single bin.
	Paths [][]int
	// Negotiated reports that the negotiated-congestion engine produced
	// this result. False with Rounds > 0 means negotiation stalled and the
	// legacy relaxation fallback routed the design.
	Negotiated bool
	// Rounds is how many negotiation rounds ran (0 on the legacy engine).
	Rounds int
	// RipUps is how many wires were ripped up and rerouted, over all rounds.
	RipUps int
	// Expansions counts heap pops across every maze search, both engines.
	Expansions int64
	// OverusedPeak is the most over-capacity edges seen after any round.
	OverusedPeak int
	// RoundTimes is the wall time of each negotiation round — diagnostic
	// only, never part of the deterministic result.
	RoundTimes []time.Duration
}

// MaxUsage returns the peak bin congestion.
func (r *Result) MaxUsage() int {
	max := 0
	for _, u := range r.Usage {
		if u > max {
			max = u
		}
	}
	return max
}

// UsageAt returns the congestion of bin (col, row).
func (r *Result) UsageAt(col, row int) int { return r.Usage[row*r.Cols+col] }

// grid is the routing graph: bins with horizontal and vertical edge usage.
type grid struct {
	cols, rows int
	theta      float64
	minX, minY float64
	// hUsage[r*cols+c] is the usage of the edge from (c,r) to (c+1,r);
	// vUsage[r*cols+c] of the edge from (c,r) to (c,r+1).
	hUsage, vUsage []int
}

func newGrid(pl *place.Result, theta float64) *grid {
	w := math.Max(pl.Width(), theta)
	h := math.Max(pl.Height(), theta)
	cols := int(math.Ceil(w/theta)) + 1
	rows := int(math.Ceil(h/theta)) + 1
	return &grid{
		cols: cols, rows: rows, theta: theta,
		minX: pl.MinX, minY: pl.MinY,
		hUsage: make([]int, cols*rows),
		vUsage: make([]int, cols*rows),
	}
}

func (g *grid) binOf(x, y float64) (int, int) {
	c := int((x - g.minX) / g.theta)
	r := int((y - g.minY) / g.theta)
	if c < 0 {
		c = 0
	}
	if c >= g.cols {
		c = g.cols - 1
	}
	if r < 0 {
		r = 0
	}
	if r >= g.rows {
		r = g.rows - 1
	}
	return c, r
}

// pqItem is a priority-queue entry for the A* search: cost is the f-value
// (g + heuristic) used for ordering, g the actual path cost so far.
type pqItem struct {
	node int32
	cost float64
	g    float64
}

// searchState is the reusable scratch of one maze search: g-costs,
// predecessors, and a typed binary heap. A search validates its per-node
// entries with an epoch stamp, so starting a new search is O(1) — no
// O(bins) reinitialization, and the arrays allocate only when the grid
// grows. The heap replicates container/heap's sift algorithms exactly
// (same comparisons, same swaps), so search results are identical to the
// boxed implementation it replaces while pushes stop allocating.
type searchState struct {
	dist  []float64
	prev  []int32
	stamp []uint32
	epoch uint32
	heap  []pqItem
	pops  int // heap pops of the current search, read after it returns
}

// begin readies the state for a search over n bins.
func (st *searchState) begin(n int) {
	if len(st.stamp) < n {
		st.dist = make([]float64, n)
		st.prev = make([]int32, n)
		st.stamp = make([]uint32, n)
		st.epoch = 0
	}
	st.epoch++
	if st.epoch == 0 { // wrapped: stale stamps could collide, clear them
		for i := range st.stamp {
			st.stamp[i] = 0
		}
		st.epoch = 1
	}
	st.heap = st.heap[:0]
	st.pops = 0
}

// distAt returns node's g-cost this search, +Inf if untouched.
func (st *searchState) distAt(node int32) float64 {
	if st.stamp[node] != st.epoch {
		return math.Inf(1)
	}
	return st.dist[node]
}

// relax records a cheaper route to node.
func (st *searchState) relax(node, from int32, g float64) {
	st.stamp[node] = st.epoch
	st.dist[node] = g
	st.prev[node] = from
}

// push and pop maintain the min-heap on cost with the exact sift moves of
// container/heap (append + up; swap-to-end + down + shrink).
func (st *searchState) push(it pqItem) {
	st.heap = append(st.heap, it)
	h := st.heap
	j := len(h) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(h[j].cost < h[i].cost) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
}

func (st *searchState) pop() pqItem {
	h := st.heap
	n := len(h) - 1
	h[0], h[n] = h[n], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h[j2].cost < h[j1].cost {
			j = j2
		}
		if !(h[j].cost < h[i].cost) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	it := h[n]
	st.heap = h[:n]
	return it
}

// dijkstra finds the cheapest path from bin s to bin t under the current
// usage and capacity, using A* with the Manhattan-distance lower bound
// (admissible because congestion only ever adds to an edge's base cost).
// It returns the bin sequence or nil if t is unreachable (all paths
// blocked by full edges). st supplies all scratch; the returned path is
// freshly allocated at its exact length.
func (g *grid) dijkstra(st *searchState, s, t int, capacity int, penalty float64) []int {
	st.begin(g.cols * g.rows)
	tc, tr := t%g.cols, t/g.cols
	lowerBound := func(node int32) float64 {
		c, r := int(node)%g.cols, int(node)/g.cols
		return g.theta * float64(absInt(c-tc)+absInt(r-tr))
	}
	st.relax(int32(s), -1, 0)
	st.push(pqItem{node: int32(s), cost: lowerBound(int32(s)), g: 0})
	for len(st.heap) > 0 {
		it := st.pop()
		st.pops++
		if int(it.node) == t {
			break
		}
		if it.g > st.dist[it.node] {
			continue
		}
		c, r := int(it.node)%g.cols, int(it.node)/g.cols
		try := func(nc, nr int, usage []int, edgeIdx int) {
			u := usage[edgeIdx]
			if u >= capacity {
				return
			}
			nn := int32(nr*g.cols + nc)
			cost := it.g + g.theta*(1+penalty*float64(u))
			if cost < st.distAt(nn) {
				st.relax(nn, it.node, cost)
				st.push(pqItem{node: nn, cost: cost + lowerBound(nn), g: cost})
			}
		}
		if c+1 < g.cols {
			try(c+1, r, g.hUsage, r*g.cols+c)
		}
		if c-1 >= 0 {
			try(c-1, r, g.hUsage, r*g.cols+c-1)
		}
		if r+1 < g.rows {
			try(c, r+1, g.vUsage, r*g.cols+c)
		}
		if r-1 >= 0 {
			try(c, r-1, g.vUsage, (r-1)*g.cols+c)
		}
	}
	if math.IsInf(st.distAt(int32(t)), 1) {
		return nil
	}
	// Measure the path, then fill it back-to-front at its exact size.
	steps := 0
	for v := int32(t); v != -1; v = st.prev[v] {
		steps++
	}
	path := make([]int, steps)
	for v, i := int32(t), steps-1; v != -1; v, i = st.prev[v], i-1 {
		path[i] = int(v)
	}
	return path
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// commit adds the path's edges to the usage maps.
func (g *grid) commit(path []int) {
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if b < a {
			a, b = b, a
		}
		if b == a+1 { // horizontal
			g.hUsage[a]++
		} else { // vertical
			g.vUsage[a]++
		}
	}
}

// uncommit removes the path's edges from the usage maps — the inverse of
// commit, used when negotiation rips a wire up for rerouting.
func (g *grid) uncommit(path []int) {
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if b < a {
			a, b = b, a
		}
		if b == a+1 { // horizontal
			g.hUsage[a]--
		} else { // vertical
			g.vUsage[a]--
		}
	}
}

// fits reports whether every edge of the path still has headroom under the
// capacity — a speculative path can be invalidated by a batch-mate that
// committed first.
func (g *grid) fits(path []int, capacity int) bool {
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if b < a {
			a, b = b, a
		}
		if b == a+1 {
			if g.hUsage[a] >= capacity {
				return false
			}
		} else if g.vUsage[a] >= capacity {
			return false
		}
	}
	return true
}

// Route routes every wire of the netlist over the placed design. The wire
// order follows the paper: ascending distance from the center of gravity of
// all cells to the wire's closest pin, with the wire weight breaking ties
// (heavier first). Wires that cannot be routed under the current virtual
// capacity trigger a capacity relaxation and are rerouted.
func Route(nl *netlist.Netlist, pl *place.Result, opts Options) (*Result, error) {
	return RouteCtx(context.Background(), nl, pl, opts)
}

// RouteCtx is Route under a context: cancellation is checked at the top of
// every batch and between the strides of a batch's parallel maze searches,
// so a cancel returns a wrapped ctx.Err() within one route batch. An
// uncancelled RouteCtx is bit-identical to Route.
func RouteCtx(ctx context.Context, nl *netlist.Netlist, pl *place.Result, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	res := &Result{WireLength: make([]float64, len(nl.Wires)), Negotiated: opts.Negotiate}
	if len(nl.Wires) == 0 {
		res.Cols, res.Rows = 1, 1
		res.Usage = make([]int, 1)
		res.FinalCapacity = opts.Capacity
		obs.Emit(opts.Observer, routeStatsOf(res, 0))
		return res, nil
	}
	rt := newRouter(nl, pl, opts, res)
	var err error
	if opts.Negotiate {
		err = rt.negotiate(ctx, rt.order)
	} else {
		err = rt.relax(ctx)
	}
	if err != nil {
		return nil, err
	}
	rt.finalize()
	return res, nil
}

// newRouter builds the per-route state both engines and both entry points
// (from-scratch and delta) share: the grid over the placement, the paper's
// wire order, the precomputed terminal bins, and the resolved batch/worker
// knobs. It sizes res.Paths and records the grid dimensions.
func newRouter(nl *netlist.Netlist, pl *place.Result, opts Options, res *Result) *router {
	g := newGrid(pl, opts.Theta)
	res.Cols, res.Rows = g.cols, g.rows

	// Center of gravity of all cells.
	cgx, cgy := 0.0, 0.0
	for i := range nl.Cells {
		cgx += pl.X[i]
		cgy += pl.Y[i]
	}
	cgx /= float64(len(nl.Cells))
	cgy /= float64(len(nl.Cells))

	order := make([]int, len(nl.Wires))
	key := make([]float64, len(nl.Wires))
	for i, w := range nl.Wires {
		d1 := math.Abs(pl.X[w.From]-cgx) + math.Abs(pl.Y[w.From]-cgy)
		d2 := math.Abs(pl.X[w.To]-cgx) + math.Abs(pl.Y[w.To]-cgy)
		key[i] = math.Min(d1, d2)
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		wa, wb := order[a], order[b]
		if key[wa] != key[wb] {
			return key[wa] < key[wb]
		}
		return nl.Wires[wa].Weight > nl.Wires[wb].Weight
	})

	batch := opts.BatchSize
	if batch == 0 {
		batch = defaultBatchSize
	}
	// Source/target bins depend only on the placement; compute once.
	src := make([]int, len(nl.Wires))
	dst := make([]int, len(nl.Wires))
	for i, w := range nl.Wires {
		sc, sr := g.binOf(pl.X[w.From], pl.Y[w.From])
		tc, tr := g.binOf(pl.X[w.To], pl.Y[w.To])
		src[i], dst[i] = sr*g.cols+sc, tr*g.cols+tc
	}
	res.Paths = make([][]int, len(nl.Wires))
	return &router{
		g: g, nl: nl, pl: pl, opts: opts, res: res,
		order: order, src: src, dst: dst,
		batch: batch, workers: parallel.Resolve(opts.Workers),
	}
}

// finalize sums the total wirelength, rebuilds the congestion map from the
// committed paths, and emits the summary event.
func (rt *router) finalize() {
	res := rt.res
	res.Total = 0
	for _, l := range res.WireLength {
		res.Total += l
	}
	// Congestion map: wires passing through each bin.
	res.Usage = make([]int, rt.g.cols*rt.g.rows)
	for _, path := range res.Paths {
		for _, b := range path {
			res.Usage[b]++
		}
	}
	obs.Emit(rt.opts.Observer, routeStatsOf(res, len(rt.nl.Wires)))
}

// routeStatsOf packs a Result's counters into the summary event.
func routeStatsOf(res *Result, wires int) obs.RouteStats {
	return obs.RouteStats{
		Negotiated:    res.Negotiated,
		Wires:         wires,
		Rounds:        res.Rounds,
		RipUps:        res.RipUps,
		Expansions:    res.Expansions,
		OverusedPeak:  res.OverusedPeak,
		Relaxations:   res.Relaxations,
		FinalCapacity: res.FinalCapacity,
		RoundTimes:    res.RoundTimes,
	}
}

// router bundles the per-route state both engines share: the grid, the
// paper's wire order, the precomputed terminal bins, and the resolved
// batch/worker knobs.
type router struct {
	g              *grid
	nl             *netlist.Netlist
	pl             *place.Result
	opts           Options
	res            *Result
	order          []int
	src, dst       []int
	batch, workers int
}

// commitSameBin routes a wire whose terminals share a bin: a direct
// connection consuming no grid edges, with the physical pin distance
// (floored at θ/2) as its length.
func (rt *router) commitSameBin(wi int) {
	w := rt.nl.Wires[wi]
	rt.res.Paths[wi] = append(rt.res.Paths[wi][:0], rt.src[wi])
	rt.res.WireLength[wi] = math.Max(
		math.Abs(rt.pl.X[w.From]-rt.pl.X[w.To])+math.Abs(rt.pl.Y[w.From]-rt.pl.Y[w.To]),
		rt.opts.Theta/2)
}

// relax is the legacy engine: speculative batched maze searches that block
// on full edges, with a bounded global capacity relaxation rerouting the
// wires that fail. Also the fallback of a stalled negotiation, so it first
// resets any usage and paths a prior negotiation attempt committed.
func (rt *router) relax(ctx context.Context) error {
	g, res, opts := rt.g, rt.res, rt.opts
	clear(g.hUsage)
	clear(g.vUsage)
	clear(res.WireLength)
	for i := range res.Paths {
		res.Paths[i] = res.Paths[i][:0]
	}
	type spec struct {
		path []int
		pops int
	}
	capacity := opts.Capacity
	states := sync.Pool{New: func() interface{} { return new(searchState) }}
	pending := rt.order
	batchNo := 0
	for len(pending) > 0 {
		var failed []int // no path under the current capacity: relaxation candidates
		queue := pending
		for len(queue) > 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("route: cancelled before batch %d: %w", batchNo+1, err)
			}
			b := rt.batch
			if b > len(queue) {
				b = len(queue)
			}
			cur := queue[:b]
			queue = queue[b:]
			// Speculative maze searches, all against the usage snapshot at
			// batch start. dijkstra only reads the usage maps, so the
			// searches fan out across the pool; the batch decomposition is
			// fixed by the wire order, never by the worker count. Search
			// scratch comes from the state pool — which state a search gets
			// never affects its result (begin() invalidates all prior
			// entries), so pooling preserves the determinism contract.
			found, err := parallel.MapCtx(ctx, rt.workers, b, func(i int) spec {
				if rt.src[cur[i]] == rt.dst[cur[i]] {
					return spec{} // same-bin wires route directly at commit
				}
				st := states.Get().(*searchState)
				path := g.dijkstra(st, rt.src[cur[i]], rt.dst[cur[i]], capacity, opts.CongestionPenalty)
				pops := st.pops
				states.Put(st)
				return spec{path: path, pops: pops}
			})
			if err != nil {
				return fmt.Errorf("route: cancelled in batch %d: %w", batchNo+1, err)
			}
			// Commit in wire order. A path invalidated by a batch-mate's
			// commit is re-queued ahead of the untried wires; the first
			// wire of a batch always commits, so every batch makes
			// progress.
			var retry []int
			batchNo++
			committed, failedBefore := 0, len(failed)
			for i, wi := range cur {
				res.Expansions += int64(found[i].pops)
				if rt.src[wi] == rt.dst[wi] {
					rt.commitSameBin(wi)
					committed++
					continue
				}
				path := found[i].path
				if path == nil {
					failed = append(failed, wi)
					continue
				}
				if !g.fits(path, capacity) {
					retry = append(retry, wi)
					continue
				}
				g.commit(path)
				res.Paths[wi] = path
				res.WireLength[wi] = float64(len(path)-1) * opts.Theta
				committed++
			}
			obs.Emit(opts.Observer, obs.RouteBatch{
				Batch:     batchNo,
				Wires:     b,
				Committed: committed,
				Retried:   len(retry),
				Failed:    len(failed) - failedBefore,
				Capacity:  capacity,
			})
			if len(retry) > 0 {
				queue = append(retry, queue...)
			}
		}
		if len(failed) == 0 {
			break
		}
		if res.Relaxations >= opts.MaxRelaxations {
			return fmt.Errorf("route: %d wires unroutable after %d capacity relaxations",
				len(failed), res.Relaxations)
		}
		capacity++
		res.Relaxations++
		obs.Emit(opts.Observer, obs.RouteRelaxation{
			Relaxations: res.Relaxations,
			Capacity:    capacity,
			Pending:     len(failed),
		})
		pending = failed
	}
	res.FinalCapacity = capacity
	return nil
}
