package route

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/graph"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/xbar"
)

// gridNetlist lays n unit cells on a k×k grid at the given pitch and wires
// consecutive cells, returning a hand-built placement.
func gridNetlist(n int, pitch float64) (*netlist.Netlist, *place.Result) {
	nl := &netlist.Netlist{}
	k := int(math.Ceil(math.Sqrt(float64(n))))
	pl := &place.Result{X: make([]float64, n), Y: make([]float64, n)}
	for i := 0; i < n; i++ {
		nl.Cells = append(nl.Cells, netlist.Cell{ID: i, Kind: netlist.KindNeuron, W: 1, H: 1})
		pl.X[i] = float64(i%k) * pitch
		pl.Y[i] = float64(i/k) * pitch
		pl.MaxX = math.Max(pl.MaxX, pl.X[i]+0.5)
		pl.MaxY = math.Max(pl.MaxY, pl.Y[i]+0.5)
	}
	pl.MinX, pl.MinY = -0.5, -0.5
	for i := 1; i < n; i++ {
		nl.Wires = append(nl.Wires, netlist.Wire{ID: i - 1, From: i - 1, To: i, Weight: 1})
	}
	return nl, pl
}

func TestRouteEmptyNetlist(t *testing.T) {
	nl := &netlist.Netlist{}
	r, err := Route(nl, &place.Result{}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Total != 0 || len(r.WireLength) != 0 {
		t.Fatal("empty netlist routed to non-zero length")
	}
}

func TestRouteOptionsValidation(t *testing.T) {
	nl, pl := gridNetlist(4, 3)
	bad := []Options{
		{Theta: 0, Capacity: 4, MaxRelaxations: 4},
		{Theta: 1, Capacity: 0, MaxRelaxations: 4},
		{Theta: 1, Capacity: 4, CongestionPenalty: -1, MaxRelaxations: 4},
		{Theta: 1, Capacity: 4, MaxRelaxations: -1},
	}
	for i, o := range bad {
		if _, err := Route(nl, pl, o); err == nil {
			t.Errorf("options %d accepted", i)
		}
	}
}

func TestRouteAllWiresRouted(t *testing.T) {
	nl, pl := gridNetlist(25, 4)
	r, err := Route(nl, pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for i, l := range r.WireLength {
		if l <= 0 {
			t.Fatalf("wire %d has length %g", i, l)
		}
	}
	if r.Total <= 0 {
		t.Fatal("zero total wirelength")
	}
}

func TestRouteLengthLowerBound(t *testing.T) {
	// A routed wire can never be shorter than ~the bin-quantized Manhattan
	// distance between its pins.
	nl, pl := gridNetlist(16, 6)
	opts := DefaultOptions()
	opts.Theta = 2
	r, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range nl.Wires {
		manhattan := math.Abs(pl.X[w.From]-pl.X[w.To]) + math.Abs(pl.Y[w.From]-pl.Y[w.To])
		if r.WireLength[w.ID] < manhattan-2*opts.Theta {
			t.Fatalf("wire %d routed %g, below Manhattan %g", w.ID, r.WireLength[w.ID], manhattan)
		}
	}
}

func TestRouteSameBinWire(t *testing.T) {
	// Two cells inside one bin: direct connection, no grid edges.
	nl := &netlist.Netlist{
		Cells: []netlist.Cell{
			{ID: 0, Kind: netlist.KindNeuron, W: 1, H: 1},
			{ID: 1, Kind: netlist.KindNeuron, W: 1, H: 1},
		},
		Wires: []netlist.Wire{{ID: 0, From: 0, To: 1, Weight: 1}},
	}
	pl := &place.Result{
		X: []float64{0, 0.5}, Y: []float64{0, 0.5},
		MinX: -0.5, MinY: -0.5, MaxX: 1, MaxY: 1,
	}
	opts := DefaultOptions()
	opts.Theta = 10
	r, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.WireLength[0] <= 0 {
		t.Fatal("same-bin wire has zero length")
	}
	if r.Relaxations != 0 {
		t.Fatal("same-bin wire caused relaxation")
	}
}

func TestRouteCapacityRelaxation(t *testing.T) {
	// Many wires forced through a narrow corridor: capacity 1 must relax.
	nl := &netlist.Netlist{}
	var wires int
	// Two columns of 8 cells; every left cell wired to every right cell.
	pl := &place.Result{}
	for i := 0; i < 16; i++ {
		nl.Cells = append(nl.Cells, netlist.Cell{ID: i, Kind: netlist.KindNeuron, W: 1, H: 1})
		x := 0.0
		if i >= 8 {
			x = 30
		}
		pl.X = append(pl.X, x)
		pl.Y = append(pl.Y, float64(i%8)*2)
	}
	pl.MinX, pl.MinY, pl.MaxX, pl.MaxY = -0.5, -0.5, 30.5, 14.5
	for a := 0; a < 8; a++ {
		for b := 8; b < 16; b++ {
			nl.Wires = append(nl.Wires, netlist.Wire{ID: wires, From: a, To: b, Weight: 1})
			wires++
		}
	}
	opts := DefaultOptions()
	opts.Theta = 4
	opts.Capacity = 1
	r, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Relaxations == 0 {
		t.Fatal("expected capacity relaxations for 64 wires at capacity 1")
	}
	if r.FinalCapacity <= 1 {
		t.Fatalf("final capacity %d, want > 1", r.FinalCapacity)
	}
	for i, l := range r.WireLength {
		if l <= 0 {
			t.Fatalf("wire %d unrouted", i)
		}
	}
}

func TestRouteUnroutableFailsCleanly(t *testing.T) {
	nl, pl := gridNetlist(9, 3)
	opts := DefaultOptions()
	opts.Capacity = 1
	opts.MaxRelaxations = 0
	opts.Theta = 0.5
	// With zero relaxations and capacity 1 on a dense chain this may or
	// may not fail; force failure with many parallel wires between the
	// same two cells.
	for i := 0; i < 50; i++ {
		nl.Wires = append(nl.Wires, netlist.Wire{ID: len(nl.Wires), From: 0, To: 8, Weight: 1})
	}
	if _, err := Route(nl, pl, opts); err == nil {
		t.Fatal("expected routing failure with MaxRelaxations=0")
	}
}

func TestRouteCongestionMap(t *testing.T) {
	nl, pl := gridNetlist(25, 4)
	r, err := Route(nl, pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.Cols <= 0 || r.Rows <= 0 || len(r.Usage) != r.Cols*r.Rows {
		t.Fatalf("bad congestion map dims %d×%d len %d", r.Cols, r.Rows, len(r.Usage))
	}
	if r.MaxUsage() <= 0 {
		t.Fatal("no congestion recorded for routed wires")
	}
	// Sum of usage ≥ number of routed multi-bin wires.
	sum := 0
	for _, u := range r.Usage {
		sum += u
	}
	if sum < len(nl.Wires) {
		t.Fatalf("usage sum %d below wire count %d", sum, len(nl.Wires))
	}
	// UsageAt indexes consistently.
	total := 0
	for row := 0; row < r.Rows; row++ {
		for col := 0; col < r.Cols; col++ {
			total += r.UsageAt(col, row)
		}
	}
	if total != sum {
		t.Fatal("UsageAt disagrees with Usage")
	}
}

func TestRouteDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cm := graph.RandomSparse(50, 0.9, rng)
	a := xbar.FullCro(cm, xbar.DefaultLibrary())
	nl, err := netlist.Build(a, xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(nl, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r1, err := Route(nl, pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Route(nl, pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Total != r2.Total {
		t.Fatalf("routing not deterministic: %g vs %g", r1.Total, r2.Total)
	}
}

func TestRouteEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	cm := graph.RandomSparse(60, 0.92, rng)
	a := xbar.FullCro(cm, xbar.DefaultLibrary())
	nl, err := netlist.Build(a, xbar.Default45nm())
	if err != nil {
		t.Fatal(err)
	}
	pl, err := place.Place(nl, place.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Route(nl, pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WireLength) != len(nl.Wires) {
		t.Fatalf("routed %d of %d wires", len(r.WireLength), len(nl.Wires))
	}
	for i, l := range r.WireLength {
		if l <= 0 {
			t.Fatalf("wire %d length %g", i, l)
		}
	}
}

func TestRoutePinsOutsideBoundingBox(t *testing.T) {
	// Pins beyond the declared bounding box must clamp into the grid, not
	// crash or route to phantom bins.
	nl := &netlist.Netlist{
		Cells: []netlist.Cell{
			{ID: 0, Kind: netlist.KindNeuron, W: 1, H: 1},
			{ID: 1, Kind: netlist.KindNeuron, W: 1, H: 1},
		},
		Wires: []netlist.Wire{{ID: 0, From: 0, To: 1, Weight: 1}},
	}
	pl := &place.Result{
		X: []float64{-5, 30}, Y: []float64{-5, 30},
		MinX: 0, MinY: 0, MaxX: 20, MaxY: 20, // box smaller than pin spread
	}
	r, err := Route(nl, pl, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if r.WireLength[0] <= 0 {
		t.Fatal("clamped wire unrouted")
	}
}

func TestRouteOptimalOnEmptyGrid(t *testing.T) {
	// With ample capacity and no prior usage, A* must return a shortest
	// path: routed length equals the bin-quantized Manhattan distance.
	nl := &netlist.Netlist{
		Cells: []netlist.Cell{
			{ID: 0, Kind: netlist.KindNeuron, W: 1, H: 1},
			{ID: 1, Kind: netlist.KindNeuron, W: 1, H: 1},
		},
		Wires: []netlist.Wire{{ID: 0, From: 0, To: 1, Weight: 1}},
	}
	pl := &place.Result{
		X: []float64{1, 37}, Y: []float64{1, 25},
		MinX: 0, MinY: 0, MaxX: 40, MaxY: 30,
	}
	opts := DefaultOptions()
	opts.Theta = 2
	opts.Capacity = 100
	r, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	// Bin distance: |bin(37)-bin(1)| + |bin(25)-bin(1)| = 18 + 12 = 30
	// edges of θ=2 µm each.
	want := 30 * opts.Theta
	if math.Abs(r.WireLength[0]-want) > 1e-9 {
		t.Fatalf("routed %g µm, want shortest path %g", r.WireLength[0], want)
	}
}
