package route

import (
	"context"
	"testing"
)

// TestRouteDeltaAllWarm commits a full route's paths as the warm set: the
// delta route must reuse every wire and reproduce the from-scratch result
// bit for bit.
func TestRouteDeltaAllWarm(t *testing.T) {
	nl, pl := gridNetlist(36, 4)
	opts := DefaultOptions()
	full, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := &Warm{Cols: full.Cols, Rows: full.Rows, Paths: full.Paths}
	res, reused, err := RouteDeltaCtx(context.Background(), nl, pl, opts, warm)
	if err != nil {
		t.Fatal(err)
	}
	if reused != len(nl.Wires) {
		t.Fatalf("reused %d of %d wires", reused, len(nl.Wires))
	}
	if res.Total != full.Total {
		t.Fatalf("delta total %g, full %g", res.Total, full.Total)
	}
	for wi := range full.Paths {
		if len(res.Paths[wi]) != len(full.Paths[wi]) {
			t.Fatalf("wire %d path changed: %v vs %v", wi, res.Paths[wi], full.Paths[wi])
		}
		for k := range full.Paths[wi] {
			if res.Paths[wi][k] != full.Paths[wi][k] {
				t.Fatalf("wire %d path changed: %v vs %v", wi, res.Paths[wi], full.Paths[wi])
			}
		}
	}
	for b := range full.Usage {
		if res.Usage[b] != full.Usage[b] {
			t.Fatalf("usage diverged at bin %d", b)
		}
	}
}

// TestRouteDeltaDirtySubset marks a few wires dirty and checks they get
// routed while the clean wires keep their warm paths.
func TestRouteDeltaDirtySubset(t *testing.T) {
	nl, pl := gridNetlist(36, 4)
	opts := DefaultOptions()
	full, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([][]int, len(full.Paths))
	copy(paths, full.Paths)
	dirty := []int{3, 10, 20}
	for _, wi := range dirty {
		paths[wi] = nil
	}
	warm := &Warm{Cols: full.Cols, Rows: full.Rows, Paths: paths}
	res, reused, err := RouteDeltaCtx(context.Background(), nl, pl, opts, warm)
	if err != nil {
		t.Fatal(err)
	}
	if reused != len(nl.Wires)-len(dirty) {
		t.Fatalf("reused %d, want %d", reused, len(nl.Wires)-len(dirty))
	}
	for _, wi := range dirty {
		if len(res.Paths[wi]) == 0 || res.WireLength[wi] <= 0 {
			t.Fatalf("dirty wire %d not routed", wi)
		}
	}
	// The warm inputs must not have been scribbled over by search scratch.
	for wi, p := range paths {
		if p == nil {
			continue
		}
		for k := range p {
			if p[k] != full.Paths[wi][k] {
				t.Fatalf("warm path %d mutated", wi)
			}
		}
	}
}

// TestRouteDeltaGridMismatch hands warm paths from a different grid; the
// delta route must fall back to a from-scratch route identical to RouteCtx.
func TestRouteDeltaGridMismatch(t *testing.T) {
	nl, pl := gridNetlist(25, 4)
	opts := DefaultOptions()
	full, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := &Warm{Cols: full.Cols + 3, Rows: full.Rows, Paths: full.Paths}
	res, reused, err := RouteDeltaCtx(context.Background(), nl, pl, opts, warm)
	if err != nil {
		t.Fatal(err)
	}
	if reused != 0 {
		t.Fatalf("reused %d wires across a grid mismatch", reused)
	}
	if res.Total != full.Total {
		t.Fatalf("fallback total %g, full %g", res.Total, full.Total)
	}
}

// TestRouteDeltaEndpointMismatch hands one warm path whose endpoints no
// longer match the wire's terminal bins; that wire must be rerouted, the
// rest reused.
func TestRouteDeltaEndpointMismatch(t *testing.T) {
	nl, pl := gridNetlist(25, 4)
	opts := DefaultOptions()
	full, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([][]int, len(full.Paths))
	copy(paths, full.Paths)
	// Find a multi-bin wire and truncate its warm path so the endpoint lies.
	target := -1
	for wi, p := range paths {
		if len(p) >= 3 {
			target = wi
			stale := append([]int(nil), p[:len(p)-1]...)
			paths[wi] = stale
			break
		}
	}
	if target < 0 {
		t.Skip("no multi-bin wire in fixture")
	}
	warm := &Warm{Cols: full.Cols, Rows: full.Rows, Paths: paths}
	res, reused, err := RouteDeltaCtx(context.Background(), nl, pl, opts, warm)
	if err != nil {
		t.Fatal(err)
	}
	if reused != len(nl.Wires)-1 {
		t.Fatalf("reused %d, want %d", reused, len(nl.Wires)-1)
	}
	p := res.Paths[target]
	if len(p) < 2 || p[len(p)-1] == p[0] {
		t.Fatalf("stale-endpoint wire %d not rerouted: %v", target, p)
	}
}

// TestRouteDeltaWorkerInvariance: the delta path must be bit-identical for
// any worker count.
func TestRouteDeltaWorkerInvariance(t *testing.T) {
	nl, pl := gridNetlist(49, 3)
	opts := DefaultOptions()
	full, err := Route(nl, pl, opts)
	if err != nil {
		t.Fatal(err)
	}
	paths := make([][]int, len(full.Paths))
	copy(paths, full.Paths)
	for wi := 5; wi < len(paths); wi += 7 {
		paths[wi] = nil
	}
	warm := &Warm{Cols: full.Cols, Rows: full.Rows, Paths: paths}
	var ref *Result
	for _, workers := range []int{1, 2, 4, 8} {
		o := opts
		o.Workers = workers
		res, _, err := RouteDeltaCtx(context.Background(), nl, pl, o, warm)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if res.Total != ref.Total {
			t.Fatalf("workers=%d total %g, want %g", workers, res.Total, ref.Total)
		}
		for wi := range ref.Paths {
			if len(res.Paths[wi]) != len(ref.Paths[wi]) {
				t.Fatalf("workers=%d wire %d path differs", workers, wi)
			}
			for k := range ref.Paths[wi] {
				if res.Paths[wi][k] != ref.Paths[wi][k] {
					t.Fatalf("workers=%d wire %d path differs", workers, wi)
				}
			}
		}
	}
}
