// Negotiated-congestion routing (PathFinder): instead of blocking wires on
// full edges and relaxing a global capacity, every edge stays usable at a
// price. An edge's cost is
//
//	θ·(1 + presentFactor·round·max(0, u+1−capacity)) + history
//
// where u is the edge's current usage: the present term prices stepping
// onto an edge that would end up over capacity (escalating with the round
// number), and the history term accumulates historyGain·θ·overuse after
// every round an edge finishes over capacity — so chronically contested
// edges become expensive even when momentarily free, and wires negotiate
// who detours. Deliberately unlike the legacy engine, sub-capacity usage is
// free: an edge with headroom costs exactly θ (+ any history), so the
// θ·Manhattan heuristic stays tight and searches expand narrow corridors
// instead of flooding — pricing all usage inflates g-costs everywhere,
// degrades A* toward a breadth-first ball, and was measured at >10× the
// expansions for no quality gain. Rounds rip up just enough wires to bring
// every edge back to capacity (partial rip-up, reverse wire order) and
// reroute them until no edge is overused; if that has not converged after
// Options.NegotiationRounds rounds the router falls back to the legacy
// relaxation engine, preserving its completion guarantee.
//
// Searches are bidirectional A* (meet in the middle): one epoch-stamped
// searchState expands from the source toward the target and a second from
// the target toward the source, each under its own Manhattan bound scaled
// by heuristicBias (weighted A*), always popping the side with the cheaper
// f-value. Every relaxation checks whether the other side already settled
// the node and tracks the best meeting total µ; the search stops as soon
// as either side's top-of-heap f-value reaches µ. With the biased
// heuristic the returned path may exceed the true optimum by up to the
// bias factor — a deliberate trade: the negotiation reroutes iteratively
// anyway, and the tighter frontier cuts heap pops by an order of
// magnitude. On uniform edge costs the biased search still returns
// shortest paths. The committed
// path is the forward chain to the meeting node joined to the backward
// chain from it.
//
// Parallelism follows the batch-speculative contract of the legacy engine:
// a batch's searches run concurrently against the usage snapshot at batch
// start, then commit sequentially in wire order. Negotiated searches never
// fail and never need a fits() retry — every found path commits — so the
// batch decomposition, and with it the entire result, is a pure function
// of the wire order, bit-identical for any Workers value.

package route

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/parallel"
)

// negotiator prices the grid's edges for one negotiated route: the shared
// history arrays (indexed like hUsage/vUsage) plus the knobs and the
// current round number the present term escalates with.
type negotiator struct {
	g             *grid
	capacity      int
	presentFactor float64
	round         int // 1-based; scales the present price of overuse
	histH, histV  []float64
}

// presentCap and historyCap bound the present and history price of one
// edge, in multiples of θ. An uncapped price turns every forced hotspot
// crossing into a grid-wide proof that no cheaper detour exists — the
// search must expand everything cheaper than the crossing before conceding.
// Capped, a wire tolerates detours only up to ~(presentCap+historyCap)·θ
// and then crosses anyway; the residual overuse is resolved by capacity
// escalation, not by ever-steeper prices. heuristicBias inflates the A*
// lower bound (weighted A*): searches lose optimality they did not need —
// the negotiation reroutes iteratively regardless — and expand corridors
// a few bins wide instead of Manhattan balls. On uniform cost (round 1,
// uncongested regions) the biased search still returns shortest paths.
const (
	presentCap    = 10.0
	historyCap    = 6.0
	heuristicBias = 1.5
)

// edgeCost prices stepping onto the edge at idx of the given orientation.
// Only overuse is priced — sub-capacity edges cost base θ plus history, so
// the Manhattan heuristic stays tight (see the package comment above).
func (ng *negotiator) edgeCost(usage []int, hist []float64, idx int) float64 {
	cost := ng.g.theta + hist[idx]
	if over := usage[idx] + 1 - ng.capacity; over > 0 {
		pres := ng.presentFactor * float64(ng.round) * float64(over)
		if pres > presentCap {
			pres = presentCap
		}
		cost += ng.g.theta * pres
	}
	return cost
}

// biState is the scratch of one bidirectional search: a forward and a
// backward searchState, pooled together.
type biState struct {
	fwd, bwd searchState
}

// biSearch finds the cheapest path from bin s to bin t (s ≠ t) under the
// negotiated edge costs. The path is written into buf (reallocated only
// when it must grow) and returned along with the total heap pops of both
// sides. Negotiated costs never block an edge, so on a connected grid a
// path always exists; nil is returned only defensively.
func (ng *negotiator) biSearch(bi *biState, s, t int, buf []int) ([]int, int) {
	g := ng.g
	n := g.cols * g.rows
	fwd, bwd := &bi.fwd, &bi.bwd
	fwd.begin(n)
	bwd.begin(n)
	sc, sr := s%g.cols, s/g.cols
	tc, tr := t%g.cols, t/g.cols
	h0 := heuristicBias * g.theta * float64(absInt(sc-tc)+absInt(sr-tr))
	fwd.relax(int32(s), -1, 0)
	fwd.push(pqItem{node: int32(s), cost: h0})
	bwd.relax(int32(t), -1, 0)
	bwd.push(pqItem{node: int32(t), cost: h0})
	mu := math.Inf(1)
	meet := int32(-1)
	pops := 0
	for len(fwd.heap) > 0 && len(bwd.heap) > 0 {
		// Once either frontier's cheapest f-value reaches the best meeting
		// total µ, stop: any undiscovered path passes through a node still
		// on that frontier. With heuristicBias > 1 the bound is inflated,
		// so the path kept may be up to bias× the optimum — accepted for
		// the frontier reduction (see the package comment).
		if fwd.heap[0].cost >= mu || bwd.heap[0].cost >= mu {
			break
		}
		st, other := fwd, bwd
		hc, hr := tc, tr // heuristic target of the expanding side
		if bwd.heap[0].cost < fwd.heap[0].cost {
			st, other = bwd, fwd
			hc, hr = sc, sr
		}
		it := st.pop()
		pops++
		if it.g > st.dist[it.node] {
			continue // stale heap entry; the node was relaxed cheaper
		}
		c, r := int(it.node)%g.cols, int(it.node)/g.cols
		try := func(nc, nr int, usage []int, hist []float64, edgeIdx int) {
			nn := int32(nr*g.cols + nc)
			gc := it.g + ng.edgeCost(usage, hist, edgeIdx)
			if gc < st.distAt(nn) {
				st.relax(nn, it.node, gc)
				st.push(pqItem{
					node: nn,
					cost: gc + heuristicBias*g.theta*float64(absInt(nc-hc)+absInt(nr-hr)),
					g:    gc,
				})
				if other.stamp[nn] == other.epoch {
					if total := gc + other.dist[nn]; total < mu {
						mu = total
						meet = nn
					}
				}
			}
		}
		if c+1 < g.cols {
			try(c+1, r, g.hUsage, ng.histH, r*g.cols+c)
		}
		if c-1 >= 0 {
			try(c-1, r, g.hUsage, ng.histH, r*g.cols+c-1)
		}
		if r+1 < g.rows {
			try(c, r+1, g.vUsage, ng.histV, r*g.cols+c)
		}
		if r-1 >= 0 {
			try(c, r-1, g.vUsage, ng.histV, (r-1)*g.cols+c)
		}
	}
	if meet < 0 {
		return nil, pops
	}
	// Path = forward chain s..meet reversed into place, then the backward
	// chain meet..t appended; both prev chains end at their root's -1.
	steps := 0
	for v := meet; v != -1; v = fwd.prev[v] {
		steps++
	}
	total := steps
	for v := bwd.prev[meet]; v != -1; v = bwd.prev[v] {
		total++
	}
	if cap(buf) < total {
		buf = make([]int, total)
	}
	buf = buf[:total]
	for v, i := meet, steps-1; v != -1; v, i = fwd.prev[v], i-1 {
		buf[i] = int(v)
	}
	for v, i := bwd.prev[meet], steps; v != -1; v, i = bwd.prev[v], i+1 {
		buf[i] = int(v)
	}
	return buf, pops
}

// pathOverCapacity reports whether any edge of the path currently carries
// more than capacity wires, against the live usage arrays.
func (g *grid) pathOverCapacity(path []int, capacity int) bool {
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if b < a {
			a, b = b, a
		}
		if b == a+1 {
			if g.hUsage[a] > capacity {
				return true
			}
		} else if g.vUsage[a] > capacity {
			return true
		}
	}
	return false
}

// stallImprovement is the minimum fractional drop in overused-edge count a
// round must deliver (vs the round before) to count as progress; a round
// below it is stalled. stallFallback is how many consecutive stalled rounds
// without an available capacity relaxation end the negotiation early.
// stallClear sizes a stalled round's capacity jump: relax to the smallest
// capacity that leaves at most 1/stallClear of the current overuse.
const (
	stallImprovement = 8 // progress means over < prevOver - prevOver/stallImprovement
	stallFallback    = 3
	stallClear       = 4
)

// negotiate is the negotiated-congestion engine. Round 1 routes every wire;
// each later round reroutes only the wires whose paths cross an edge that
// finished the previous round over capacity, after pricing that overuse
// into the history costs. A round that barely improves the overused-edge
// count is stalled: the design likely needs more physical capacity than
// pricing alone can negotiate, so the router relaxes the virtual capacity
// (bounded by Options.MaxRelaxations, like the legacy engine) and keeps
// negotiating. It converges when no edge is overused; if the round budget
// runs out, or rounds keep stalling with no relaxation left, it falls back
// to the legacy engine, preserving its completion guarantee.
// The initial list is the wires routed in round 1, in paper order — the
// full rt.order on a from-scratch route, only the dirty wires on a delta
// route (every other wire's path is already committed to the usage maps).
// Later rounds always consider every wire: a warm path crossing an edge the
// new wires congested is ripped and renegotiated like any other.
func (rt *router) negotiate(ctx context.Context, initial []int) error {
	g, res, opts := rt.g, rt.res, rt.opts
	ng := &negotiator{
		g:             g,
		capacity:      opts.Capacity,
		presentFactor: opts.PresentFactor,
		histH:         make([]float64, len(g.hUsage)),
		histV:         make([]float64, len(g.vUsage)),
	}
	historyGain := opts.HistoryGain
	if historyGain == 0 {
		historyGain = DefaultHistoryGain
	}
	if ng.presentFactor == 0 {
		ng.presentFactor = DefaultPresentFactor
	}
	maxRounds := opts.NegotiationRounds
	if maxRounds == 0 {
		maxRounds = DefaultNegotiationRounds
	}
	states := sync.Pool{New: func() interface{} { return new(biState) }}
	pops := make([]int, len(rt.nl.Wires))
	reroute := initial // round 1: the caller's wire set, in the paper's order
	var ripped []int
	batchNo := 0
	prevOver := 0
	stalled := 0
	for round := 1; ; round++ {
		ng.round = round
		start := time.Now()
		queue := reroute
		for len(queue) > 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("route: cancelled before batch %d: %w", batchNo+1, err)
			}
			b := rt.batch
			if b > len(queue) {
				b = len(queue)
			}
			cur := queue[:b]
			queue = queue[b:]
			// Speculative searches against the usage snapshot at batch
			// start, fanned across the pool; each search writes only its
			// own wire's slots. Negotiated costs never block, so every
			// path commits — the batch decomposition is fixed by the wire
			// order alone, keeping results bit-identical for any Workers.
			err := parallel.ForCtx(ctx, rt.workers, b, func(i int) {
				wi := cur[i]
				if rt.src[wi] == rt.dst[wi] {
					return // same-bin wires route directly at commit
				}
				bi := states.Get().(*biState)
				path, n := ng.biSearch(bi, rt.src[wi], rt.dst[wi], res.Paths[wi][:0])
				states.Put(bi)
				res.Paths[wi] = path
				pops[wi] = n
			})
			if err != nil {
				return fmt.Errorf("route: cancelled in batch %d: %w", batchNo+1, err)
			}
			batchNo++
			for _, wi := range cur {
				if rt.src[wi] == rt.dst[wi] {
					rt.commitSameBin(wi)
					continue
				}
				path := res.Paths[wi]
				if path == nil {
					return fmt.Errorf("route: no path for wire %d on a connected grid", wi)
				}
				res.Expansions += int64(pops[wi])
				g.commit(path)
				res.WireLength[wi] = float64(len(path)-1) * opts.Theta
			}
			obs.Emit(opts.Observer, obs.RouteBatch{
				Batch:     batchNo,
				Wires:     b,
				Committed: b,
				Capacity:  ng.capacity,
			})
		}
		res.Rounds = round
		// Demand scan: the overused-edge count at the current capacity and
		// the peak edge demand.
		over, peak := 0, 0
		for _, u := range g.hUsage {
			if u > peak {
				peak = u
			}
			if u > ng.capacity {
				over++
			}
		}
		for _, u := range g.vUsage {
			if u > peak {
				peak = u
			}
			if u > ng.capacity {
				over++
			}
		}
		if over > res.OverusedPeak {
			res.OverusedPeak = over
		}
		res.RoundTimes = append(res.RoundTimes, time.Since(start))
		if over == 0 {
			break
		}
		// A round that barely dented the overuse is stalled: pricing alone
		// is not resolving the contention, so buy physical headroom. Round
		// 1 (prevOver = 0) can never show progress by this test, which is
		// intended: a design whose shortest paths overuse a large fraction
		// of the grid escalates straight off the demand scan instead of
		// burning a full reroute round at a hopeless capacity.
		progress := over < prevOver-prevOver/stallImprovement
		prevOver = over
		escalate := false
		if progress {
			stalled = 0
		} else if res.Relaxations < opts.MaxRelaxations {
			stalled = 0
			escalate = true
		} else {
			stalled++
		}
		if round >= maxRounds || stalled >= stallFallback {
			// The design would not converge under negotiation. Degrade to
			// the legacy engine, which guarantees completion within
			// MaxRelaxations; it resets usage and paths itself.
			res.Negotiated = false
			return rt.relax(ctx)
		}
		if escalate {
			// Relax to the smallest capacity that leaves at most
			// 1/stallClear of this round's overuse, read off the demand
			// histogram, rather than stepping by one: a design whose
			// hotspot needs far more capacity than Options.Capacity would
			// otherwise burn one full negotiation round per unit, while
			// the quantile schedule clears the bulk congestion in O(log)
			// stalls and leaves negotiation exactly the contested tail it
			// can actually spread.
			counts := make([]int, peak+1)
			for _, u := range g.hUsage {
				if u > ng.capacity {
					counts[u]++
				}
			}
			for _, u := range g.vUsage {
				if u > ng.capacity {
					counts[u]++
				}
			}
			budget := over / stallClear
			remaining := over
			for remaining > budget && ng.capacity < peak {
				ng.capacity++
				remaining -= counts[ng.capacity]
			}
			res.Relaxations++
		}
		// Price the overuse at the (possibly just relaxed) capacity into
		// the histories — after escalation, so edges the relaxation
		// legalized are not taxed.
		marked := 0
		for i, u := range g.hUsage {
			if u > ng.capacity {
				marked++
				ng.histH[i] = min(ng.histH[i]+historyGain*g.theta*float64(u-ng.capacity), historyCap*g.theta)
			}
		}
		for i, u := range g.vUsage {
			if u > ng.capacity {
				marked++
				ng.histV[i] = min(ng.histV[i]+historyGain*g.theta*float64(u-ng.capacity), historyCap*g.theta)
			}
		}
		if marked == 0 {
			break // the relaxation alone legalized every edge
		}
		// Partial rip-up, in reverse wire order: uncommitting decrements
		// usage live, so a wire is ripped only while an edge on its path
		// is still over capacity, and each hot edge sheds exactly its
		// excess rather than its whole herd. Ripping every crossing wire
		// instead makes hundreds of wires reroute against the same
		// snapshot, pile onto the same alternative corridor, and
		// oscillate. The reverse scan sheds the paper's least-prioritized
		// wires; the survivors keep their paths.
		ripped = ripped[:0]
		for oi := len(rt.order) - 1; oi >= 0; oi-- {
			wi := rt.order[oi]
			path := res.Paths[wi]
			if len(path) < 2 {
				continue
			}
			if g.pathOverCapacity(path, ng.capacity) {
				g.uncommit(path)
				ripped = append(ripped, wi)
			}
		}
		// Reroute the ripped wires in paper order, most important first.
		for i, j := 0, len(ripped)-1; i < j; i, j = i+1, j-1 {
			ripped[i], ripped[j] = ripped[j], ripped[i]
		}
		res.RipUps += len(ripped)
		reroute = ripped
		if escalate {
			obs.Emit(opts.Observer, obs.RouteRelaxation{
				Relaxations: res.Relaxations,
				Capacity:    ng.capacity,
				Pending:     len(ripped),
			})
		}
	}
	res.FinalCapacity = ng.capacity
	return nil
}
