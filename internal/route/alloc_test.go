package route

import (
	"testing"
)

func testGrid(cols, rows int) *grid {
	return &grid{
		cols: cols, rows: rows, theta: 2,
		hUsage: make([]int, cols*rows),
		vUsage: make([]int, cols*rows),
	}
}

// TestMazeSearchAllocs pins the warm maze-search contract: once a
// searchState has grown to the grid size, a full corner-to-corner A* search
// allocates only the returned path. The previous implementation allocated
// two O(bins) arrays plus a boxed heap entry per push, per search.
func TestMazeSearchAllocs(t *testing.T) {
	g := testGrid(40, 40)
	// Mild congestion so the search explores beyond one monotone staircase.
	for i := range g.hUsage {
		if i%5 == 0 {
			g.hUsage[i] = 3
		}
	}
	st := new(searchState)
	s, d := 0, g.cols*g.rows-1
	if p := g.dijkstra(st, s, d, 8, 0.3); p == nil {
		t.Fatal("warm-up search found no path")
	}
	allocs := testing.AllocsPerRun(20, func() {
		if p := g.dijkstra(st, s, d, 8, 0.3); p == nil {
			t.Fatal("search found no path")
		}
	})
	// One allocation for the exact-size path; nothing else.
	if allocs > 1 {
		t.Fatalf("warm maze search allocated %.1f times, want ≤ 1", allocs)
	}
}

// TestRouteNegotiateSearchAllocs pins the negotiation inner loop: once the
// pooled biState has grown to the grid and the path buffer to the path
// length, a warm bidirectional search allocates nothing — searches write
// into the wire's reused Paths slot and the pooled scratch.
func TestRouteNegotiateSearchAllocs(t *testing.T) {
	g := testGrid(40, 40)
	for i := range g.hUsage {
		if i%5 == 0 {
			g.hUsage[i] = 9 // over capacity: exercises the priced branch
		}
	}
	ng := &negotiator{
		g: g, capacity: 8, presentFactor: DefaultPresentFactor, round: 3,
		histH: make([]float64, len(g.hUsage)),
		histV: make([]float64, len(g.vUsage)),
	}
	for i := range ng.histH {
		if i%11 == 0 {
			ng.histH[i] = 4 * g.theta
		}
	}
	bi := new(biState)
	s, d := 0, g.cols*g.rows-1
	buf, _ := ng.biSearch(bi, s, d, nil)
	if buf == nil {
		t.Fatal("warm-up search found no path")
	}
	allocs := testing.AllocsPerRun(20, func() {
		p, _ := ng.biSearch(bi, s, d, buf[:0])
		if p == nil {
			t.Fatal("search found no path")
		}
		buf = p
	})
	if allocs != 0 {
		t.Fatalf("warm bidirectional search allocated %.1f times, want 0", allocs)
	}
}

// TestSearchStateReuseMatchesFresh pins pool transparency: a search on a
// reused (dirty) state returns the same path as a search on a fresh one.
func TestSearchStateReuseMatchesFresh(t *testing.T) {
	g := testGrid(30, 25)
	for i := range g.vUsage {
		if i%7 == 2 {
			g.vUsage[i] = 5
		}
	}
	dirty := new(searchState)
	g.dijkstra(dirty, 3, 600, 8, 0.3) // dirty the stamps with another search
	for _, pair := range [][2]int{{0, 749}, {29, 720}, {370, 12}} {
		want := g.dijkstra(new(searchState), pair[0], pair[1], 8, 0.3)
		got := g.dijkstra(dirty, pair[0], pair[1], 8, 0.3)
		if len(want) != len(got) {
			t.Fatalf("%v: path len %d vs %d", pair, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("%v: path[%d] = %d vs %d", pair, i, got[i], want[i])
			}
		}
	}
}
