package fleet

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"
)

// Default lookup tuning. A peer probe is a LAN round trip for a payload
// that already exists, so the timeout is tight; two attempts with one
// short backoff ride out a single dropped packet or accept hiccup
// without stalling the interactive compile path behind them.
const (
	DefaultLookupTimeout = 2 * time.Second
	DefaultAttempts      = 2
	DefaultBackoff       = 50 * time.Millisecond
)

// maxPeerPayload bounds a peer cache response read; it matches the
// service's own request-body bound with headroom.
const maxPeerPayload = 64 << 20

// Options configures a Fleet.
type Options struct {
	// Self is this member's own base URL; it is added to Peers if absent.
	Self string
	// Peers is the full fleet membership list (base URLs). Order and
	// duplicate spellings do not matter — the ring normalizes both.
	Peers []string
	// VirtualNodes per member; 0 means DefaultVirtualNodes.
	VirtualNodes int
	// Timeout bounds each probe attempt; 0 means DefaultLookupTimeout.
	Timeout time.Duration
	// Attempts per lookup against the chosen peer; 0 means DefaultAttempts.
	Attempts int
	// Backoff before the second attempt, doubling after; 0 means
	// DefaultBackoff.
	Backoff time.Duration
	// FailureThreshold consecutive failures open a peer's breaker;
	// 0 means DefaultFailureThreshold.
	FailureThreshold int
	// RecoveryInterval between re-probes of a dead peer; 0 means
	// DefaultRecoveryInterval.
	RecoveryInterval time.Duration
	// Client is the HTTP client for peer probes; nil builds one with the
	// configured Timeout.
	Client *http.Client
}

// peer is one remote fleet member: its base URL and circuit breaker.
type peer struct {
	url string
	br  *Breaker
}

// Fleet is one member's view of the compile fleet: the shared ring plus a
// circuit breaker and probe client per remote peer. Safe for concurrent
// use.
type Fleet struct {
	self  string
	ring  *Ring
	peers map[string]*peer // remote members only, keyed by normalized URL
	hc    *http.Client

	attempts int
	backoff  time.Duration

	hits   atomic.Int64
	misses atomic.Int64
	errs   atomic.Int64
}

// Stats is a point-in-time snapshot of a Fleet's counters: peer-cache
// hits, healthy-peer misses, failed lookups, and the membership health.
type Stats struct {
	Hits   int64 // lookups answered with a payload by a peer
	Misses int64 // lookups a healthy peer answered "not cached"
	Errors int64 // lookups that failed (timeout, refused, bad response)
	Alive  int   // members currently in the ring (closed breaker + self)
	Total  int   // fleet size including self
}

// New builds a Fleet. Self must normalize to a valid base URL; it is
// added to the membership if the peer list does not already contain it.
func New(o Options) (*Fleet, error) {
	self, err := NormalizeMember(o.Self)
	if err != nil {
		return nil, err
	}
	members := append([]string{self}, o.Peers...)
	ring, err := NewRing(members, o.VirtualNodes)
	if err != nil {
		return nil, err
	}
	timeout := o.Timeout
	if timeout == 0 {
		timeout = DefaultLookupTimeout
	}
	if timeout < 0 {
		return nil, fmt.Errorf("fleet: negative timeout %v", timeout)
	}
	attempts := o.Attempts
	if attempts == 0 {
		attempts = DefaultAttempts
	}
	if attempts < 0 {
		return nil, fmt.Errorf("fleet: negative attempts %d", attempts)
	}
	backoff := o.Backoff
	if backoff == 0 {
		backoff = DefaultBackoff
	}
	hc := o.Client
	if hc == nil {
		hc = &http.Client{Timeout: timeout}
	}
	f := &Fleet{
		self:     self,
		ring:     ring,
		peers:    make(map[string]*peer, ring.Size()-1),
		hc:       hc,
		attempts: attempts,
		backoff:  backoff,
	}
	for _, m := range ring.Members() {
		if m == self {
			continue
		}
		f.peers[m] = &peer{url: m, br: NewBreaker(o.FailureThreshold, o.RecoveryInterval)}
	}
	return f, nil
}

// Self returns this member's normalized base URL.
func (f *Fleet) Self() string { return f.self }

// Ring returns the fleet's consistent-hash ring.
func (f *Fleet) Ring() *Ring { return f.ring }

// Size returns the fleet membership count, self included.
func (f *Fleet) Size() int { return f.ring.Size() }

// Alive counts the members currently in the ring: self plus every remote
// peer whose circuit is closed. An open or half-open (recovering) peer is
// out of the ring until a trial probe succeeds.
func (f *Fleet) Alive() int {
	n := 1
	for _, p := range f.peers {
		if p.br.State() == BreakerClosed {
			n++
		}
	}
	return n
}

// Stats snapshots the lookup counters and membership health.
func (f *Fleet) Stats() Stats {
	return Stats{
		Hits:   f.hits.Load(),
		Misses: f.misses.Load(),
		Errors: f.errs.Load(),
		Alive:  f.Alive(),
		Total:  f.Size(),
	}
}

// Owner returns the ring owner of key (which may be self).
func (f *Fleet) Owner(key [32]byte) string { return f.ring.Owner(key) }

// Owns reports whether this member is the ring owner of key.
func (f *Fleet) Owns(key [32]byte) bool { return f.ring.Owner(key) == f.self }

// Lookup is the outcome of one remote peer-cache probe.
type Lookup struct {
	Peer    string        // the peer probed (the key's effective owner)
	Payload []byte        // the cached bytes, non-nil exactly when Hit
	Hit     bool          // the peer had the payload
	Err     error         // probe failure; a clean miss is not an error
	Elapsed time.Duration // wall time of the whole lookup (all attempts)
}

// Find probes the remote effective owner of key for its cached payload.
// It returns nil when the fleet cannot help — this member is the key's
// effective owner (first live ring node), or every remote candidate ahead
// of self is refusing probes — in which case the caller compiles locally.
//
// The effective owner walks the key's ring successor order skipping
// members whose breaker is open: a dead peer is out of the ring, and the
// keys it owned fall to its successor until a recovery trial brings it
// back. Probes against the chosen peer retry with exponential backoff
// (bounded per-attempt by the HTTP client's timeout); every failure feeds
// the peer's breaker.
func (f *Fleet) Find(ctx context.Context, key [32]byte) *Lookup {
	p := f.effectiveOwner(key)
	if p == nil {
		return nil
	}
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt < f.attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return &Lookup{Peer: p.url, Err: ctx.Err(), Elapsed: time.Since(start)}
			case <-time.After(f.backoff << (attempt - 1)):
			}
		}
		payload, hit, err := f.fetch(ctx, p.url, key)
		if err == nil {
			p.br.Success()
			if hit {
				f.hits.Add(1)
			} else {
				f.misses.Add(1)
			}
			return &Lookup{Peer: p.url, Payload: payload, Hit: hit, Elapsed: time.Since(start)}
		}
		if ctx.Err() != nil {
			// The caller abandoned the lookup; that says nothing about the
			// peer's health, so the breaker is not charged.
			return &Lookup{Peer: p.url, Err: err, Elapsed: time.Since(start)}
		}
		p.br.Failure()
		lastErr = err
	}
	f.errs.Add(1)
	return &Lookup{Peer: p.url, Err: lastErr, Elapsed: time.Since(start)}
}

// Has probes the key's remote effective owner with a cheap HEAD request:
// true means the peer holds the payload. Like Find it returns ok=false
// with a nil error when the fleet cannot help. The probe feeds the peer's
// breaker exactly like a full lookup.
func (f *Fleet) Has(ctx context.Context, key [32]byte) (bool, error) {
	p := f.effectiveOwner(key)
	if p == nil {
		return false, nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, cacheURL(p.url, key), nil)
	if err != nil {
		return false, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			p.br.Failure()
		}
		return false, err
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // HEAD carries no body
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		p.br.Success()
		return true, nil
	case http.StatusNotFound:
		p.br.Success()
		return false, nil
	}
	p.br.Failure()
	return false, fmt.Errorf("fleet: peer %s answered %d to a cache probe", p.url, resp.StatusCode)
}

// effectiveOwner returns the first live remote member in the key's ring
// successor order, or nil when self comes first (local compile territory)
// or no remote candidate currently admits probes.
func (f *Fleet) effectiveOwner(key [32]byte) *peer {
	for _, m := range f.ring.Successors(key, 0) {
		if m == f.self {
			return nil
		}
		p := f.peers[m]
		if p.br.Allow() {
			return p
		}
	}
	return nil
}

// fetch GETs one peer's cache entry. (payload, true, nil) on 200,
// (nil, false, nil) on a clean 404 miss, an error otherwise.
func (f *Fleet) fetch(ctx context.Context, peerURL string, key [32]byte) ([]byte, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, cacheURL(peerURL, key), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := f.hc.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		payload, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerPayload))
		if err != nil {
			return nil, false, fmt.Errorf("fleet: reading peer payload: %w", err)
		}
		if got := resp.Header.Get("X-Autoncs-Key"); got != "" && got != hex.EncodeToString(key[:]) {
			// A peer serving the wrong key would poison the local cache
			// with a payload that violates the content-address contract.
			return nil, false, fmt.Errorf("fleet: peer %s served key %s, want %s",
				peerURL, got, hex.EncodeToString(key[:]))
		}
		return payload, true, nil
	case http.StatusNotFound:
		io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
		return nil, false, nil
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck // drain for keep-alive
	return nil, false, fmt.Errorf("fleet: peer %s answered %d to a cache fetch", peerURL, resp.StatusCode)
}

// cacheURL renders the peer cache endpoint for key.
func cacheURL(peerURL string, key [32]byte) string {
	return peerURL + "/v1/cache/" + hex.EncodeToString(key[:])
}
