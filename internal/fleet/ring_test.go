package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"testing"
)

// testKey derives a deterministic pseudo-random content address.
func testKey(i int) [32]byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(i))
	return sha256.Sum256(b[:])
}

var ringMembers = []string{
	"http://10.0.0.1:8080",
	"http://10.0.0.2:8080",
	"http://10.0.0.3:8080",
	"http://10.0.0.4:8080",
	"http://10.0.0.5:8080",
}

// TestRingOrderInvariance is the rebalance-determinism contract: the same
// member list in any order (and any trailing-slash/case spelling) builds a
// ring with identical owners for every key.
func TestRingOrderInvariance(t *testing.T) {
	base, err := NewRing(ringMembers, 0)
	if err != nil {
		t.Fatal(err)
	}
	permuted := []string{
		"http://10.0.0.4:8080/",
		"HTTP://10.0.0.2:8080",
		"http://10.0.0.5:8080",
		"http://10.0.0.1:8080//",
		"http://10.0.0.3:8080",
		"http://10.0.0.1:8080", // duplicate spelling must dedup, not re-weight
	}
	other, err := NewRing(permuted, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.Size() != other.Size() {
		t.Fatalf("sizes differ: %d vs %d", base.Size(), other.Size())
	}
	for i := 0; i < 4096; i++ {
		k := testKey(i)
		if a, b := base.Owner(k), other.Owner(k); a != b {
			t.Fatalf("key %d owner differs across orderings: %s vs %s", i, a, b)
		}
	}
}

// TestRingRemovalRemapsOnlyTheRemoved is the consistent-hashing property:
// dropping one member moves only that member's keys; every other key
// keeps its owner. This is what makes a dead peer's removal cheap — the
// survivors' cached shards stay where they are.
func TestRingRemovalRemapsOnlyTheRemoved(t *testing.T) {
	full, err := NewRing(ringMembers, 0)
	if err != nil {
		t.Fatal(err)
	}
	dropped := ringMembers[2]
	reduced, err := NewRing(append(append([]string{}, ringMembers[:2]...), ringMembers[3:]...), 0)
	if err != nil {
		t.Fatal(err)
	}
	droppedNorm, _ := NormalizeMember(dropped)
	moved := 0
	for i := 0; i < 4096; i++ {
		k := testKey(i)
		before, after := full.Owner(k), reduced.Owner(k)
		if before == droppedNorm {
			moved++
			// The new owner must be the full ring's first successor past
			// the dropped member — the failover order the fleet probes.
			succ := full.Successors(k, 2)
			if len(succ) < 2 || after != succ[1] {
				t.Fatalf("key %d: dropped owner's key went to %s, want successor %v", i, after, succ)
			}
			continue
		}
		if before != after {
			t.Fatalf("key %d owned by %s moved to %s though its owner survived", i, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no key was owned by the dropped member (implausible with 4096 keys)")
	}
}

// TestRingBalance: with the default virtual-node count no member of a
// five-node ring owns a wildly disproportionate key share.
func TestRingBalance(t *testing.T) {
	r, err := NewRing(ringMembers, 0)
	if err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[r.Owner(testKey(i))]++
	}
	want := float64(n) / float64(len(ringMembers))
	for m, c := range counts {
		if ratio := float64(c) / want; math.Abs(ratio-1) > 0.5 {
			t.Errorf("member %s owns %d of %d keys (%.2fx fair share)", m, c, n, ratio)
		}
	}
	if len(counts) != len(ringMembers) {
		t.Errorf("only %d of %d members own keys", len(counts), len(ringMembers))
	}
}

// TestRingSuccessorsDistinct: the failover order lists each member once,
// starting with the owner.
func TestRingSuccessorsDistinct(t *testing.T) {
	r, err := NewRing(ringMembers, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		k := testKey(i)
		succ := r.Successors(k, 0)
		if len(succ) != len(ringMembers) {
			t.Fatalf("key %d: %d successors, want %d", i, len(succ), len(ringMembers))
		}
		if succ[0] != r.Owner(k) {
			t.Fatalf("key %d: successor order starts at %s, owner is %s", i, succ[0], r.Owner(k))
		}
		seen := map[string]bool{}
		for _, m := range succ {
			if seen[m] {
				t.Fatalf("key %d: member %s listed twice", i, m)
			}
			seen[m] = true
		}
	}
}

func TestNormalizeMemberErrors(t *testing.T) {
	for _, bad := range []string{"", "10.0.0.1:8080", "ftp://x", "http://"} {
		if _, err := NormalizeMember(bad); err == nil {
			t.Errorf("NormalizeMember(%q) accepted", bad)
		}
	}
	got, err := NormalizeMember("HTTP://Host.Example:8080/")
	if err != nil {
		t.Fatal(err)
	}
	if got != "http://host.example:8080" {
		t.Errorf("normalized to %q", got)
	}
}

func TestNewRingRejectsEmpty(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Error("empty member list accepted")
	}
	if _, err := NewRing(ringMembers, -1); err == nil {
		t.Error("negative vnode count accepted")
	}
}
