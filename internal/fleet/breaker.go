package fleet

import (
	"sync"
	"time"
)

// BreakerState is the circuit state of one peer.
type BreakerState int

const (
	// BreakerClosed: the peer is presumed healthy; requests flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the peer failed repeatedly; requests are refused until
	// the recovery interval elapses.
	BreakerOpen
	// BreakerHalfOpen: the recovery interval elapsed and exactly one trial
	// request is in flight; its outcome closes or re-opens the circuit.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Default breaker tuning: a peer is marked dead after
// DefaultFailureThreshold consecutive failures and re-probed (one trial
// request) every DefaultRecoveryInterval thereafter.
const (
	DefaultFailureThreshold = 3
	DefaultRecoveryInterval = 5 * time.Second
)

// Breaker is a per-peer circuit breaker. The zero value is not usable;
// use NewBreaker. All methods are safe for concurrent use.
//
// Lifecycle: closed counts consecutive failures and opens at the
// threshold. Open refuses requests until the recovery interval elapses,
// then admits exactly one trial (half-open). A half-open success closes
// the circuit; a failure re-opens it and restarts the interval. Any
// success resets the failure count — only *consecutive* failures open
// the breaker, so a flaky-but-mostly-up peer stays in the ring.
type Breaker struct {
	mu        sync.Mutex
	threshold int
	recovery  time.Duration
	now       func() time.Time // injectable for deterministic transition tests

	state    BreakerState
	failures int
	openedAt time.Time
}

// NewBreaker returns a closed breaker; zero arguments mean the defaults.
func NewBreaker(threshold int, recovery time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultFailureThreshold
	}
	if recovery <= 0 {
		recovery = DefaultRecoveryInterval
	}
	return &Breaker{threshold: threshold, recovery: recovery, now: time.Now}
}

// Allow reports whether a request may be sent to the peer right now.
// On an open breaker whose recovery interval has elapsed it transitions
// to half-open and admits the caller as the single trial — the caller
// MUST then report Success or Failure, or the circuit stays half-open
// (refusing everyone else) forever.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.recovery {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // half-open: a trial is already in flight
		return false
	}
}

// Success records a successful request: the circuit closes and the
// consecutive-failure count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	b.state = BreakerClosed
	b.failures = 0
	b.mu.Unlock()
}

// Failure records a failed request. A closed circuit opens once the
// consecutive-failure threshold is reached; a half-open trial failure
// re-opens immediately and restarts the recovery interval.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.state = BreakerOpen
			b.openedAt = b.now()
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.failures = b.threshold
		b.openedAt = b.now()
	case BreakerOpen:
		// Late failure report from a request that raced the opening; the
		// circuit is already open, nothing to update.
	}
}

// State returns the current circuit state (open circuits whose recovery
// interval has elapsed still report open until an Allow transitions
// them).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
