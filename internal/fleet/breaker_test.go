package fleet

import (
	"testing"
	"time"
)

// fakeClock drives a Breaker through its transitions deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClockedBreaker(threshold int, recovery time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, recovery)
	c := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	b.now = c.now
	return b, c
}

// TestBreakerTransitions walks the full closed → open → half-open →
// closed lifecycle under an injected clock.
func TestBreakerTransitions(t *testing.T) {
	b, clock := newClockedBreaker(3, 5*time.Second)

	// Closed: requests flow, sub-threshold failures keep it closed.
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after 2 of 3 failures, want closed", b.State())
	}

	// A success resets the consecutive count: two more failures still
	// don't open it, only a third consecutive one does.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("non-consecutive failures opened the breaker")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after 3 consecutive failures, want open", b.State())
	}

	// Open: refused until the recovery interval elapses.
	if b.Allow() {
		t.Fatal("open breaker admitted a request before recovery")
	}
	clock.advance(4 * time.Second)
	if b.Allow() {
		t.Fatal("open breaker admitted a request 1s early")
	}
	clock.advance(time.Second)

	// Recovery elapsed: exactly one trial is admitted (half-open).
	if !b.Allow() {
		t.Fatal("recovered breaker refused the trial request")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v during trial, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("half-open breaker admitted a second concurrent trial")
	}

	// Trial failure re-opens and restarts the interval.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after failed trial, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("breaker admitted a request right after a failed trial")
	}
	clock.advance(5 * time.Second)
	if !b.Allow() {
		t.Fatal("breaker refused the second trial after recovery")
	}

	// Trial success closes the circuit for good.
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful trial, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
}

// TestBreakerFlakyPeer injects the flaky pattern — fail, fail, succeed,
// repeatedly — and checks the breaker never opens: only consecutive
// failures at the threshold count.
func TestBreakerFlakyPeer(t *testing.T) {
	b, _ := newClockedBreaker(3, 5*time.Second)
	for round := 0; round < 50; round++ {
		if !b.Allow() {
			t.Fatalf("breaker opened on a flaky-but-recovering peer at round %d", round)
		}
		b.Failure()
		b.Failure()
		b.Success()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after flaky rounds, want closed", b.State())
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for s, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerOpen:     "open",
		BreakerHalfOpen: "half-open",
	} {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", s, got, want)
		}
	}
}
