package fleet

import (
	"context"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stubPeer is a minimal peer cache endpoint: it serves the payloads in
// its map and counts requests.
type stubPeer struct {
	ts       *httptest.Server
	mu       sync.Mutex
	payloads map[string][]byte
	gets     atomic.Int64
	heads    atomic.Int64
	fail     atomic.Bool // when set, every request answers 500
}

func newStubPeer(t *testing.T) *stubPeer {
	t.Helper()
	p := &stubPeer{payloads: map[string][]byte{}}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/cache/{key}", func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodHead {
			p.heads.Add(1)
		} else {
			p.gets.Add(1)
		}
		if p.fail.Load() {
			http.Error(w, "injected failure", http.StatusInternalServerError)
			return
		}
		key := r.PathValue("key")
		p.mu.Lock()
		payload, ok := p.payloads[key]
		p.mu.Unlock()
		if !ok {
			http.Error(w, "no such key", http.StatusNotFound)
			return
		}
		w.Header().Set("X-Autoncs-Key", key)
		w.Header().Set("Content-Length", fmt.Sprint(len(payload)))
		if r.Method == http.MethodHead {
			return
		}
		w.Write(payload)
	})
	p.ts = httptest.NewServer(mux)
	t.Cleanup(p.ts.Close)
	return p
}

func (p *stubPeer) put(key [32]byte, payload []byte) {
	p.mu.Lock()
	p.payloads[hex.EncodeToString(key[:])] = payload
	p.mu.Unlock()
}

// newTestFleet builds a fleet whose self is a URL that is NOT one of the
// stub servers (self never serves; it only probes).
func newTestFleet(t *testing.T, stubs []*stubPeer, opts Options) *Fleet {
	t.Helper()
	opts.Self = "http://self.invalid:1"
	for _, s := range stubs {
		opts.Peers = append(opts.Peers, s.ts.URL)
	}
	f, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// keyOwnedBy searches for a key whose effective owner is the given peer.
func keyOwnedBy(t *testing.T, f *Fleet, owner string) [32]byte {
	t.Helper()
	norm, err := NormalizeMember(owner)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		k := testKey(i)
		if f.Owner(k) == norm {
			return k
		}
	}
	t.Fatalf("no key owned by %s in 100000 tries", owner)
	return [32]byte{}
}

// TestFleetFindHitMissError covers the three lookup outcomes against one
// live stub peer.
func TestFleetFindHitMissError(t *testing.T) {
	stub := newStubPeer(t)
	f := newTestFleet(t, []*stubPeer{stub}, Options{})
	ctx := context.Background()

	key := keyOwnedBy(t, f, stub.ts.URL)
	payload := []byte(`{"ok":true}`)

	// Miss: the peer is healthy but has nothing.
	lk := f.Find(ctx, key)
	if lk == nil || lk.Hit || lk.Err != nil {
		t.Fatalf("miss lookup = %+v, want clean miss", lk)
	}

	// Hit: payload present, returned verbatim.
	stub.put(key, payload)
	lk = f.Find(ctx, key)
	if lk == nil || !lk.Hit || string(lk.Payload) != string(payload) {
		t.Fatalf("hit lookup = %+v", lk)
	}

	// Error: the peer starts failing; the lookup reports the error after
	// its bounded retries and the stats count it.
	stub.fail.Store(true)
	lk = f.Find(ctx, key)
	if lk == nil || lk.Hit || lk.Err == nil {
		t.Fatalf("error lookup = %+v, want error", lk)
	}
	st := f.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Errors != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 error", st)
	}
}

// TestFleetSelfOwnedKeysSkipRemoteLookup: Find returns nil for keys self
// owns — the caller's local cache is already the authority.
func TestFleetSelfOwnedKeysSkipRemoteLookup(t *testing.T) {
	stub := newStubPeer(t)
	f := newTestFleet(t, []*stubPeer{stub}, Options{})
	key := keyOwnedBy(t, f, "http://self.invalid:1")
	if lk := f.Find(context.Background(), key); lk != nil {
		t.Fatalf("self-owned key probed remotely: %+v", lk)
	}
	if got := stub.gets.Load(); got != 0 {
		t.Fatalf("stub saw %d GETs for a self-owned key", got)
	}
}

// TestFleetDeadOwnerFallsToSuccessor: once the owner's breaker opens, its
// keys' lookups go to the ring successor — the dead peer is out of the
// ring until recovery.
func TestFleetDeadOwnerFallsToSuccessor(t *testing.T) {
	owner := newStubPeer(t)
	successor := newStubPeer(t)
	f := newTestFleet(t, []*stubPeer{owner, successor}, Options{
		FailureThreshold: 2,
		Attempts:         1,
		Backoff:          time.Millisecond,
		RecoveryInterval: time.Hour, // no recovery during the test
	})
	ctx := context.Background()

	// A key owned by `owner` with `successor` next in ring order. The
	// fleet has three members (self + 2 stubs); retry keys until the
	// successor is the other stub, not self.
	ownerNorm, _ := NormalizeMember(owner.ts.URL)
	succNorm, _ := NormalizeMember(successor.ts.URL)
	var key [32]byte
	found := false
	for i := 0; i < 100000 && !found; i++ {
		k := testKey(i)
		succ := f.Ring().Successors(k, 2)
		if succ[0] == ownerNorm && succ[1] == succNorm {
			key, found = k, true
		}
	}
	if !found {
		t.Fatal("no key with the wanted owner/successor order")
	}

	payload := []byte(`{"from":"successor"}`)
	successor.put(key, payload)
	owner.fail.Store(true)

	// Two failing lookups open the owner's breaker (threshold 2, one
	// attempt each).
	for i := 0; i < 2; i++ {
		if lk := f.Find(ctx, key); lk == nil || lk.Err == nil {
			t.Fatalf("lookup %d against the failing owner = %+v, want error", i, lk)
		}
	}
	if alive := f.Alive(); alive != 2 {
		t.Fatalf("alive = %d after the owner died, want 2 (self + successor)", alive)
	}

	// The next lookup must skip the dead owner and hit the successor.
	lk := f.Find(ctx, key)
	if lk == nil || !lk.Hit || lk.Peer != succNorm {
		t.Fatalf("post-death lookup = %+v, want hit from %s", lk, succNorm)
	}
}

// TestFleetRecoveryReprobesDeadPeer: after the recovery interval one
// trial lookup goes back to the dead peer; a success returns it to the
// ring.
func TestFleetRecoveryReprobesDeadPeer(t *testing.T) {
	stub := newStubPeer(t)
	f := newTestFleet(t, []*stubPeer{stub}, Options{
		FailureThreshold: 1,
		Attempts:         1,
		RecoveryInterval: 50 * time.Millisecond,
	})
	ctx := context.Background()
	key := keyOwnedBy(t, f, stub.ts.URL)
	stub.put(key, []byte("x"))

	stub.fail.Store(true)
	if lk := f.Find(ctx, key); lk == nil || lk.Err == nil {
		t.Fatalf("lookup against failing peer = %+v", lk)
	}
	if f.Alive() != 1 {
		t.Fatalf("alive = %d, want 1 (self only)", f.Alive())
	}
	// Inside the recovery window the dead peer is skipped entirely: with
	// no other member ahead of self, Find cannot help.
	if lk := f.Find(ctx, key); lk != nil {
		t.Fatalf("lookup during open window = %+v, want nil", lk)
	}

	stub.fail.Store(false)
	time.Sleep(60 * time.Millisecond)
	lk := f.Find(ctx, key)
	if lk == nil || !lk.Hit {
		t.Fatalf("recovery trial = %+v, want hit", lk)
	}
	if f.Alive() != 2 {
		t.Fatalf("alive = %d after recovery, want 2", f.Alive())
	}
}

// TestFleetHas exercises the cheap HEAD probe.
func TestFleetHas(t *testing.T) {
	stub := newStubPeer(t)
	f := newTestFleet(t, []*stubPeer{stub}, Options{})
	ctx := context.Background()
	key := keyOwnedBy(t, f, stub.ts.URL)

	if ok, err := f.Has(ctx, key); ok || err != nil {
		t.Fatalf("Has on a miss = %v, %v", ok, err)
	}
	stub.put(key, []byte("payload"))
	if ok, err := f.Has(ctx, key); !ok || err != nil {
		t.Fatalf("Has on a hit = %v, %v", ok, err)
	}
	if heads, gets := stub.heads.Load(), stub.gets.Load(); heads != 2 || gets != 0 {
		t.Fatalf("probe used %d HEADs and %d GETs, want 2/0", heads, gets)
	}
}

// TestFleetConcurrentLookups hammers Find from many goroutines against a
// mix of healthy and failing peers — run under -race in CI — and checks
// no goroutines leak.
func TestFleetConcurrentLookups(t *testing.T) {
	healthy := newStubPeer(t)
	flaky := newStubPeer(t)
	f := newTestFleet(t, []*stubPeer{healthy, flaky}, Options{
		FailureThreshold: 3,
		Attempts:         1,
		RecoveryInterval: time.Millisecond,
	})
	ctx := context.Background()

	keys := make([][32]byte, 64)
	for i := range keys {
		keys[i] = testKey(i)
		healthy.put(keys[i], []byte(strings.Repeat("h", 64)))
		flaky.put(keys[i], []byte(strings.Repeat("f", 64)))
	}

	baseline := runtime.NumGoroutine()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A toggler flips the flaky peer while lookups are in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
				flaky.fail.Store(!flaky.fail.Load())
			}
		}
	}()
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keys[(g*200+i)%len(keys)]
				lk := f.Find(ctx, k)
				if lk != nil && lk.Hit && len(lk.Payload) != 64 {
					t.Errorf("short payload: %d bytes", len(lk.Payload))
					return
				}
				if i%50 == 0 {
					f.Stats() // concurrent stats reads race-check the counters
					f.Has(ctx, k)
				}
			}
		}(g)
	}
	close(stop)
	wg.Wait()

	// Idle keep-alive connections hold transport read/write goroutines;
	// they are pool state, not leaks.
	f.hc.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline && time.Now().Before(deadline) {
		runtime.GC()
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline {
		t.Errorf("goroutines leaked: %d, baseline %d", n, baseline)
	}
}

// TestFleetNewValidation covers the constructor's error paths.
func TestFleetNewValidation(t *testing.T) {
	if _, err := New(Options{Self: "not-a-url"}); err == nil {
		t.Error("invalid self accepted")
	}
	if _, err := New(Options{Self: "http://a:1", Peers: []string{"bad"}}); err == nil {
		t.Error("invalid peer accepted")
	}
	if _, err := New(Options{Self: "http://a:1", Timeout: -time.Second}); err == nil {
		t.Error("negative timeout accepted")
	}
	// A single-member fleet (self only) is valid and inert.
	f, err := New(Options{Self: "http://a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 1 || f.Alive() != 1 {
		t.Errorf("singleton fleet size/alive = %d/%d", f.Size(), f.Alive())
	}
	if lk := f.Find(context.Background(), testKey(1)); lk != nil {
		t.Errorf("singleton fleet probed remotely: %+v", lk)
	}
	// Self listed among the peers must not double-count.
	f, err = New(Options{Self: "http://a:1", Peers: []string{"http://a:1/", "http://b:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != 2 {
		t.Errorf("fleet size = %d, want 2", f.Size())
	}
}
