// Package fleet is the horizontal half of the compile service: the
// machinery a set of autoncsd daemons uses to share one logical result
// cache instead of each recompiling what a peer already built.
//
// Three pieces compose it. Ring is a consistent-hash ring with virtual
// nodes over the fleet's membership list: every compile key (the
// content address from autoncs.CanonicalHash) has exactly one owner, the
// assignment is identical on every member regardless of the order the
// peer list was written in, and adding or removing one member remaps only
// that member's keys. Breaker is a per-peer circuit breaker
// (closed → open → half-open) so a dead peer costs one connection
// timeout per failure threshold, not one per request. Fleet ties them
// together: given a key whose effective owner (first live ring node) is a
// remote peer, it probes that peer's cache endpoint with a bounded
// timeout and exponential backoff, and reports hit/miss/error so the
// serving layer can fall back to a local compile when the fleet cannot
// help.
package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"net/url"
	"sort"
	"strings"
)

// DefaultVirtualNodes is the per-member virtual-node count when
// RingOptions leaves it zero. 64 points per member keeps the expected
// ownership imbalance of a small fleet under a few percent while the ring
// stays tiny (a three-member fleet is 192 points, one binary search per
// lookup).
const DefaultVirtualNodes = 64

// Ring is an immutable consistent-hash ring over a member list. Build one
// with NewRing; lookups are safe for concurrent use.
type Ring struct {
	members []string // normalized, sorted, unique
	points  []point  // sorted by position
}

// point is one virtual node: a position on the 64-bit ring and the index
// of the member it belongs to.
type point struct {
	pos    uint64
	member int
}

// NormalizeMember canonicalizes one member URL: scheme and host
// lower-cased, trailing slashes dropped. Every spelling of the same
// daemon must normalize identically or the fleet's rings disagree on
// ownership; an unparsable or schemeless URL is an error.
func NormalizeMember(raw string) (string, error) {
	s := strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("fleet: member %q: %v", raw, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("fleet: member %q: want an http(s) base URL", raw)
	}
	if u.Host == "" {
		return "", fmt.Errorf("fleet: member %q has no host", raw)
	}
	u.Scheme = strings.ToLower(u.Scheme)
	u.Host = strings.ToLower(u.Host)
	return strings.TrimRight(u.String(), "/"), nil
}

// NewRing builds the ring for a member list with vnodes virtual nodes per
// member (0 means DefaultVirtualNodes). Members are normalized and
// deduplicated, so any ordering or trailing-slash spelling of the same
// list builds a bit-identical ring — the property the fleet's routing
// correctness rests on.
func NewRing(members []string, vnodes int) (*Ring, error) {
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	if vnodes < 0 {
		return nil, fmt.Errorf("fleet: negative virtual-node count %d", vnodes)
	}
	if len(members) == 0 {
		return nil, fmt.Errorf("fleet: empty member list")
	}
	seen := make(map[string]bool, len(members))
	norm := make([]string, 0, len(members))
	for _, m := range members {
		n, err := NormalizeMember(m)
		if err != nil {
			return nil, err
		}
		if !seen[n] {
			seen[n] = true
			norm = append(norm, n)
		}
	}
	sort.Strings(norm)
	r := &Ring{members: norm, points: make([]point, 0, len(norm)*vnodes)}
	var buf [4]byte
	for i, m := range norm {
		h := sha256.New()
		for v := 0; v < vnodes; v++ {
			h.Reset()
			h.Write([]byte(m))
			h.Write([]byte{0})
			binary.BigEndian.PutUint32(buf[:], uint32(v))
			h.Write(buf[:])
			sum := h.Sum(nil)
			r.points = append(r.points, point{pos: binary.BigEndian.Uint64(sum[:8]), member: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].pos != r.points[b].pos {
			return r.points[a].pos < r.points[b].pos
		}
		// A 64-bit collision between members is astronomically unlikely but
		// must still order deterministically.
		return r.members[r.points[a].member] < r.members[r.points[b].member]
	})
	return r, nil
}

// Members returns the normalized member list in sorted order. The slice
// is shared; callers must not mutate it.
func (r *Ring) Members() []string { return r.members }

// Size returns the member count.
func (r *Ring) Size() int { return len(r.members) }

// Contains reports whether the normalized form of m is a ring member.
func (r *Ring) Contains(m string) bool {
	n, err := NormalizeMember(m)
	if err != nil {
		return false
	}
	i := sort.SearchStrings(r.members, n)
	return i < len(r.members) && r.members[i] == n
}

// keyPos maps a 32-byte content address onto the ring. The key is already
// a SHA-256 output, so its leading bytes are uniform; no re-hash needed.
func keyPos(key [32]byte) uint64 { return binary.BigEndian.Uint64(key[:8]) }

// Owner returns the member that owns key: the member of the first virtual
// node at or clockwise after the key's ring position.
func (r *Ring) Owner(key [32]byte) string {
	return r.members[r.points[r.search(keyPos(key))].member]
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner. The full list (n = Size()) is the key's failover
// order: when the owner is dead, the next entry is the member a
// rebuilt ring without the dead owner would assign the key to — which is
// what "marking a dead peer out of the ring" means operationally.
func (r *Ring) Successors(key [32]byte, n int) []string {
	if n <= 0 || n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[int]bool, n)
	start := r.search(keyPos(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.member] {
			seen[p.member] = true
			out = append(out, r.members[p.member])
		}
	}
	return out
}

// search returns the index of the first point at or clockwise after pos,
// wrapping past the top of the ring.
func (r *Ring) search(pos uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= pos })
	if i == len(r.points) {
		return 0
	}
	return i
}
