//go:build race

package autoncs_test

// raceEnabled reports whether the race detector is compiled in; the golden
// harness uses it to skip the minutes-long Lanczos-path compile (the race
// coverage of the sparse kernels comes from the per-package worker tests,
// which run the same code at smaller sizes).
const raceEnabled = true
