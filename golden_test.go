package autoncs_test

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"repro"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden regression files")

// goldenCase pins one seeded RandomSparseNetwork compile.
type goldenCase struct {
	Name     string
	N        int
	Sparsity float64
	Seed     int64
}

var goldenCases = []goldenCase{
	{Name: "n120_s92_seed1", N: 120, Sparsity: 0.92, Seed: 1},
	{Name: "n200_s94_seed2", N: 200, Sparsity: 0.94, Seed: 2},
	{Name: "n300_s96_seed3", N: 300, Sparsity: 0.96, Seed: 3},
	// Above lanczosCutoff: the first ISC rounds embed through the sparse
	// Lanczos solver, pinning the sparse path (restricted CSR, workspace
	// reuse, blocked kernels) that the three dense-path cases never reach.
	{Name: "n720_s985_seed4", N: 720, Sparsity: 0.985, Seed: 4},
}

// goldenSummary is the committed shape of a compile: the clustering-level
// quantities the paper's evaluation tracks. Any change here is a behaviour
// change that must be reviewed, not an accident.
type goldenSummary struct {
	Neurons          int         `json:"neurons"`
	Connections      int         `json:"connections"`
	Crossbars        int         `json:"crossbars"`
	CrossbarCells    int         `json:"crossbarCells"` // Σ size² — allocated crossbar capacity
	UsedCells        int         `json:"usedCells"`     // Σ per-crossbar mapped connections
	DiscreteSynapses int         `json:"discreteSynapses"`
	AvgUtilization   float64     `json:"avgUtilization"`
	OutlierRatio     float64     `json:"outlierRatio"`
	ISCIterations    int         `json:"iscIterations"`
	SizeHistogram    map[int]int `json:"sizeHistogram"`
}

func summarize(res *autoncs.Result, net *autoncs.Network) goldenSummary {
	a := res.Assignment
	s := goldenSummary{
		Neurons:          net.N(),
		Connections:      net.NNZ(),
		Crossbars:        len(a.Crossbars),
		DiscreteSynapses: len(a.Synapses),
		AvgUtilization:   a.AvgUtilization(),
		OutlierRatio:     a.OutlierRatio(),
		ISCIterations:    len(res.Trace),
		SizeHistogram:    a.SizeHistogram(),
	}
	for _, cb := range a.Crossbars {
		s.CrossbarCells += cb.Size * cb.Size
		s.UsedCells += len(cb.Conns)
	}
	return s
}

func compileSummary(t *testing.T, gc goldenCase, workers int) []byte {
	t.Helper()
	net := autoncs.RandomSparseNetwork(gc.N, gc.Sparsity, gc.Seed)
	cfg := autoncs.DefaultConfig()
	cfg.Seed = gc.Seed
	cfg.SkipPhysical = true
	cfg.Workers = workers
	// Observers are passive: attaching one must not move a single bit of the
	// golden summaries. Compiling every golden case with a live observer
	// enforces that here, not just in prose.
	cfg.Observer = &autoncs.MetricsObserver{}
	res, err := autoncs.Compile(net, cfg)
	if err != nil {
		t.Fatalf("compile %s (workers=%d): %v", gc.Name, workers, err)
	}
	if err := res.Assignment.Validate(net); err != nil {
		t.Fatalf("compile %s (workers=%d): invalid assignment: %v", gc.Name, workers, err)
	}
	out, err := json.MarshalIndent(summarize(res, net), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n')
}

// TestCompileGolden locks the flow's output on three seeded networks to the
// committed golden summaries, and proves the determinism contract: the
// serial compile (Workers=1), the NumCPU pool, and an oversubscribed pool
// produce byte-identical results.
func TestCompileGolden(t *testing.T) {
	workerSet := []int{1, runtime.NumCPU(), 2 * runtime.NumCPU(), 7}
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.Name, func(t *testing.T) {
			if raceEnabled && gc.N > 500 {
				t.Skip("Lanczos-path compile takes minutes under the race detector; its kernels are race-tested per package")
			}
			path := filepath.Join("testdata", "golden", gc.Name+".json")
			serial := compileSummary(t, gc, 1)
			for _, w := range workerSet[1:] {
				if got := compileSummary(t, gc, w); string(got) != string(serial) {
					t.Fatalf("Workers=%d diverged from Workers=1:\n%s\nvs\n%s", w, got, serial)
				}
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, serial, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test -run TestCompileGolden -update`): %v", err)
			}
			if string(want) != string(serial) {
				t.Errorf("golden mismatch for %s:\ngot:\n%s\nwant:\n%s", gc.Name, serial, want)
			}
		})
	}
}

// mlCutoff forces the multilevel engine to engage on the golden-scale nets
// (the production default of 1024 would leave all four on the flat path).
const mlCutoff = 64

func compileSummaryML(t *testing.T, gc goldenCase, workers int) ([]byte, autoncs.MetricsSnapshot) {
	t.Helper()
	net := autoncs.RandomSparseNetwork(gc.N, gc.Sparsity, gc.Seed)
	cfg := autoncs.DefaultConfig()
	cfg.Seed = gc.Seed
	cfg.SkipPhysical = true
	cfg.Workers = workers
	cfg.Multilevel = true
	cfg.MultilevelCutoff = mlCutoff
	m := &autoncs.MetricsObserver{}
	cfg.Observer = m
	res, err := autoncs.Compile(net, cfg)
	if err != nil {
		t.Fatalf("multilevel compile %s (workers=%d): %v", gc.Name, workers, err)
	}
	if err := res.Assignment.Validate(net); err != nil {
		t.Fatalf("multilevel compile %s (workers=%d): invalid assignment: %v", gc.Name, workers, err)
	}
	out, err := json.MarshalIndent(summarize(res, net), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	return append(out, '\n'), m.Snapshot()
}

// TestCompileGoldenMultilevel locks the multilevel engine's output the same
// way TestCompileGolden locks the flat engine's: byte-identical summaries
// for every worker count, pinned golden files, and — since the multilevel
// path is an approximation of the flat spectral pass — explicit quality
// accounting against the flat goldens: the outlier ratio may exceed the
// flat engine's by at most 0.10 absolute, and the cluster (crossbar) count
// must stay within [0.6, 1.4]× the flat count. (Measured: the multilevel
// engine beats the flat outlier ratio on n120 and n200 at equal crossbar
// counts, and trades ~35% fewer crossbars for ≤0.08 extra outliers on the
// larger nets.)
func TestCompileGoldenMultilevel(t *testing.T) {
	workerSet := []int{1, runtime.NumCPU(), 2 * runtime.NumCPU(), 7}
	for _, gc := range goldenCases {
		gc := gc
		t.Run(gc.Name, func(t *testing.T) {
			if raceEnabled && gc.N > 500 {
				t.Skip("multilevel Lanczos compile takes minutes under the race detector; its kernels are race-tested per package")
			}
			path := filepath.Join("testdata", "golden", gc.Name+"_ml.json")
			serial, snap := compileSummaryML(t, gc, 1)
			if snap.LastClusterStats.MultilevelRounds == 0 {
				t.Fatalf("multilevel engine never engaged (cutoff %d, N %d): %+v",
					mlCutoff, gc.N, snap.LastClusterStats)
			}
			for _, w := range workerSet[1:] {
				if got, _ := compileSummaryML(t, gc, w); string(got) != string(serial) {
					t.Fatalf("Workers=%d diverged from Workers=1:\n%s\nvs\n%s", w, got, serial)
				}
			}
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, serial, 0o644); err != nil {
					t.Fatal(err)
				}
			} else {
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden file (run `go test -run TestCompileGoldenMultilevel -update`): %v", err)
				}
				if string(want) != string(serial) {
					t.Errorf("golden mismatch for %s:\ngot:\n%s\nwant:\n%s", gc.Name, serial, want)
				}
			}
			// Quality gates against the flat golden.
			flatRaw, err := os.ReadFile(filepath.Join("testdata", "golden", gc.Name+".json"))
			if err != nil {
				t.Fatalf("flat golden missing: %v", err)
			}
			var flat, ml goldenSummary
			if err := json.Unmarshal(flatRaw, &flat); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(serial, &ml); err != nil {
				t.Fatal(err)
			}
			if ml.OutlierRatio > flat.OutlierRatio+0.10 {
				t.Errorf("multilevel outlier ratio %.5f, flat %.5f (tolerance +0.10)",
					ml.OutlierRatio, flat.OutlierRatio)
			}
			lo, hi := int(0.6*float64(flat.Crossbars)), int(1.4*float64(flat.Crossbars))+1
			if ml.Crossbars < lo || ml.Crossbars > hi {
				t.Errorf("multilevel produced %d crossbars, flat %d (allowed [%d,%d])",
					ml.Crossbars, flat.Crossbars, lo, hi)
			}
		})
	}
}

// TestCompilePhysicalDeterminism extends the contract through the physical
// design: place, route (batched maze router), and cost must agree exactly
// between worker counts.
func TestCompilePhysicalDeterminism(t *testing.T) {
	net := autoncs.RandomSparseNetwork(140, 0.93, 11)
	report := func(workers int) string {
		cfg := autoncs.DefaultConfig()
		cfg.Seed = 11
		cfg.Workers = workers
		res, err := autoncs.Compile(net, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return fmt.Sprintf("%.17g %.17g %.17g %.17g %d",
			res.Report.Wirelength, res.Report.Area, res.Report.AvgDelay, res.Report.Cost,
			res.Routing.MaxUsage())
	}
	serial := report(1)
	for _, w := range []int{runtime.NumCPU(), 5} {
		if got := report(w); got != serial {
			t.Fatalf("workers=%d physical design diverged: %s vs %s", w, got, serial)
		}
	}
}
