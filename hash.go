package autoncs

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
	"math"

	"repro/internal/core"
	"repro/internal/route"
)

// CanonicalHash returns the SHA-256 content address of a compile: a key
// that is equal for two (network, config) pairs exactly when the compiled
// Result is guaranteed bit-identical by the determinism contract, and
// different whenever any semantically meaningful input differs. It is the
// cache key of the compile service (cmd/autoncsd): a repeat compile of the
// same inputs can be answered from a content-addressed result store without
// re-running the flow.
//
// The hash covers, in a fixed canonical order:
//
//   - a format/version domain tag (bump it when the flow's semantics
//     change so stale on-disk caches cannot serve wrong results),
//   - the connection matrix (size + row bitsets),
//   - the crossbar library sizes and every device-model parameter,
//   - the flow knobs after normalization (below),
//   - the placement, routing, and cost parameters,
//   - Seed and SkipPhysical.
//
// Normalization folds every spelling of the same semantics onto one
// encoding, so zero-vs-default and sentinel choices hash equal:
//
//   - SelectionQuantile 0 hashes as the paper's 0.75; every negative value
//     hashes as -1 (partial selection disabled).
//   - UtilizationThreshold keeps 0 as 0 (auto — deterministic given the
//     hashed network and library); every negative value (DisabledThreshold
//     included) hashes as -1.
//   - Route.BatchSize 0 hashes as the router's default batch size.
//   - The multilevel knobs hash as their effective values (zero spellings
//     fold to the defaults); with Multilevel off they are inert and all
//     spellings hash as the defaults.
//   - The negotiated-congestion knobs (Route.PresentFactor, HistoryGain,
//     NegotiationRounds) hash the same way: effective values with
//     Route.Negotiate on, the canonical defaults with it off.
//   - Negative zero hashes as positive zero for every float knob.
//
// Excluded entirely are the knobs the determinism contract proves
// irrelevant to the result: Workers (flow- and route-level) and every
// Observer. A Config that fails Compile's validation fails here with the
// same error, so a key never exists for an input that cannot compile.
func CanonicalHash(net *Network, cfg Config) ([32]byte, error) {
	var key [32]byte
	if err := validateInput(net, cfg); err != nil {
		return key, err
	}
	h := sha256.New()
	io.WriteString(h, "autoncs-cache-key/v3\n")
	h.Write(net.AppendBinary(nil))
	writeConfigVector(h, cfg)
	h.Sum(key[:0])
	return key, nil
}

// ConfigVectorHash returns the SHA-256 digest of the configuration portion
// of the canonical cache key alone — the exact byte stream CanonicalHash
// feeds after the network, under its own domain tag. Two configs share a
// vector hash exactly when CanonicalHash would agree for every network, so
// the digest answers "same flow, different network?" — the compatibility
// check of the delta-recompile path: a cached compile artifact may seed a
// delta compile only when the new request's config vector matches the one
// the artifact was built under.
//
// The hash is a pure encoding with the same normalizations as CanonicalHash
// and no validation; hash configs that have passed (or will pass) compile
// validation.
func ConfigVectorHash(cfg Config) [32]byte {
	var key [32]byte
	h := sha256.New()
	io.WriteString(h, "autoncs-config-vector/v1\n")
	writeConfigVector(h, cfg)
	h.Sum(key[:0])
	return key
}

// ConfigVectorHashHex is ConfigVectorHash rendered as lowercase hex — the
// form stored inside compile artifacts.
func ConfigVectorHashHex(cfg Config) string {
	key := ConfigVectorHash(cfg)
	return hex.EncodeToString(key[:])
}

// writeConfigVector streams the normalized config fields into w in the
// canonical v3 field order. CanonicalHash and ConfigVectorHash share this
// encoding, so the two stay in lockstep by construction; changing anything
// here changes the cache-key domain and requires a version-tag bump in both.
func writeConfigVector(w io.Writer, cfg Config) {
	e := hashEncoder{w: w}

	sizes := cfg.Library.Sizes()
	e.uint(uint64(len(sizes)))
	for _, s := range sizes {
		e.uint(uint64(s))
	}

	d := cfg.Device
	e.f64(d.MemristorPitch)
	e.f64(d.CrossbarPeriphery)
	e.f64(d.NeuronSide)
	e.f64(d.SynapseSide)
	e.f64(d.CrossbarDelayAtRef)
	e.uint(uint64(d.RefSize))
	e.f64(d.SynapseDelay)
	e.f64(d.WireRPerUm)
	e.f64(d.WireCPerUm)

	e.f64(canonThreshold(cfg.UtilizationThreshold))
	e.f64(canonQuantile(cfg.SelectionQuantile))

	// Multilevel engine knobs. When the engine is off the knobs are inert,
	// so they fold to the canonical defaults — every flat-engine spelling
	// hashes equal; when it is on, the effective (defaulted) values hash.
	if cfg.Multilevel {
		e.uint(1)
		cutoff, ratio := cfg.MultilevelCutoff, cfg.CoarsenRatio
		if cutoff == 0 {
			cutoff = core.DefaultMultilevelCutoff
		}
		if ratio == 0 {
			ratio = core.DefaultCoarsenRatio
		}
		e.uint(uint64(cutoff))
		e.f64(ratio)
		e.uint(uint64(cfg.MultilevelLevels))
	} else {
		e.uint(0)
		e.uint(uint64(core.DefaultMultilevelCutoff))
		e.f64(core.DefaultCoarsenRatio)
		e.uint(0)
	}

	p := cfg.Place
	e.f64(p.Gamma)
	e.f64(p.Omega)
	e.f64(p.RouteReserve)
	e.f64(p.OverlapThreshold)
	e.uint(uint64(p.MaxOuter))
	e.uint(uint64(p.CGIterations))

	r := cfg.Route
	e.f64(r.Theta)
	e.uint(uint64(r.Capacity))
	e.f64(r.CongestionPenalty)
	e.uint(uint64(r.MaxRelaxations))
	bs := r.BatchSize
	if bs == 0 {
		bs = route.DefaultOptions().BatchSize
	}
	e.uint(uint64(bs))
	// Negotiated-congestion knobs: inert on the legacy engine, so they fold
	// to the canonical defaults; with negotiation on, the effective
	// (defaulted) values hash.
	if r.Negotiate {
		e.uint(1)
		pf, hg, rounds := r.PresentFactor, r.HistoryGain, r.NegotiationRounds
		if pf == 0 {
			pf = route.DefaultPresentFactor
		}
		if hg == 0 {
			hg = route.DefaultHistoryGain
		}
		if rounds == 0 {
			rounds = route.DefaultNegotiationRounds
		}
		e.f64(pf)
		e.f64(hg)
		e.uint(uint64(rounds))
	} else {
		e.uint(0)
		e.f64(route.DefaultPresentFactor)
		e.f64(route.DefaultHistoryGain)
		e.uint(route.DefaultNegotiationRounds)
	}

	e.f64(cfg.Cost.Alpha)
	e.f64(cfg.Cost.Beta)
	e.f64(cfg.Cost.Delta)

	e.uint(uint64(cfg.Seed))
	if cfg.SkipPhysical {
		e.uint(1)
	} else {
		e.uint(0)
	}
}

// CanonicalHashHex is CanonicalHash rendered as lowercase hex — the form
// the compile service uses in URLs and on-disk cache filenames.
func CanonicalHashHex(net *Network, cfg Config) (string, error) {
	key, err := CanonicalHash(net, cfg)
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(key[:]), nil
}

// canonThreshold folds every disabled spelling (any negative value) onto -1
// and keeps 0 (auto) and explicit positive thresholds as-is.
func canonThreshold(t float64) float64 {
	if t < 0 {
		return -1
	}
	return t
}

// canonQuantile folds 0 onto the paper's default 0.75 and every disabled
// spelling (any negative value) onto -1.
func canonQuantile(q float64) float64 {
	switch {
	case q == 0:
		return 0.75
	case q < 0:
		return -1
	}
	return q
}

// hashEncoder writes fixed-width little-endian scalars into the hash. Every
// value goes through exactly one of the two methods, so the byte stream is
// unambiguous given the fixed field order.
type hashEncoder struct {
	w   io.Writer
	buf [8]byte
}

func (e *hashEncoder) uint(v uint64) {
	binary.LittleEndian.PutUint64(e.buf[:], v)
	e.w.Write(e.buf[:])
}

func (e *hashEncoder) f64(v float64) {
	// v+0 normalizes -0.0 to +0.0 without touching any other value.
	e.uint(math.Float64bits(v + 0))
}
