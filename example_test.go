package autoncs_test

import (
	"fmt"

	"repro"
)

// ExampleCompile runs the complete AutoNCS flow on a small deterministic
// network and prints the shape of the resulting hybrid implementation.
func ExampleCompile() {
	// A block-structured network: two dense 20-neuron communities.
	net := autoncs.NewNetwork(40)
	for b := 0; b < 2; b++ {
		for i := 0; i < 20; i++ {
			for j := 0; j < 20; j++ {
				if i != j && (i+3*j)%4 != 0 { // deterministic dense pattern
					net.Set(b*20+i, b*20+j)
				}
			}
		}
	}
	cfg := autoncs.DefaultConfig()
	cfg.SkipPhysical = true // clustering only, for a fast example
	res, err := autoncs.Compile(net, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("connections: %d\n", net.NNZ())
	fmt.Printf("crossbars: %d, outliers: %d\n", len(res.Assignment.Crossbars), len(res.Assignment.Synapses))
	fmt.Printf("valid: %v\n", res.Assignment.Validate(net) == nil)
	// Output:
	// connections: 600
	// crossbars: 1, outliers: 0
	// valid: true
}

// ExampleCompare contrasts AutoNCS with the FullCro baseline on the same
// network (physical design included).
func ExampleCompare() {
	net := autoncs.RandomSparseNetwork(100, 0.92, 7)
	cfg := autoncs.DefaultConfig()
	auto, err := autoncs.Compile(net, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	full, err := autoncs.CompileFullCro(net, cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	cmp, err := autoncs.Compare(auto, full)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("AutoNCS wins on delay: %v\n", cmp.DelayReduction > 0)
	// Output:
	// AutoNCS wins on delay: true
}

// ExampleLibrary shows the crossbar size library and fit queries.
func ExampleLibrary() {
	lib := autoncs.DefaultLibrary()
	fmt.Println("range:", lib.Min(), "to", lib.Max())
	size, ok := lib.FitFor(37)
	fmt.Println("cluster of 37 fits in:", size, ok)
	// Output:
	// range: 16 to 64
	// cluster of 37 fits in: 40 true
}
