// Package autoncs is an open reimplementation of AutoNCS, the EDA
// framework for large-scale hybrid neuromorphic computing systems (Wen et
// al., DAC 2015). Given a sparse neural network's binary connection matrix,
// it partitions the connections onto a library of fixed-size memristor
// crossbars plus discrete synapses via iterative spectral clustering, and
// produces a placed-and-routed physical design whose wirelength, area, and
// delay it reports.
//
// The typical flow:
//
//	net := autoncs.RandomSparseNetwork(400, 0.94, 1)
//	cfg := autoncs.DefaultConfig()
//	res, err := autoncs.Compile(net, cfg)        // the AutoNCS flow
//	base, err := autoncs.CompileFullCro(net, cfg) // max-size crossbar baseline
//	cmp := autoncs.Compare(res, base)             // Table 1 style reductions
//
// The heavy lifting lives in the internal packages (core, place, route,
// ...); this package wires them together and re-exports the types a caller
// needs.
package autoncs

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/hopfield"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/xbar"
)

// Re-exported types: the public API surface of the flow.
type (
	// Network is a square binary connection matrix over n neurons.
	Network = graph.Conn
	// Edge is one directed connection of a network.
	Edge = graph.Edge
	// Library is the set of allowed crossbar sizes.
	Library = xbar.Library
	// DeviceModel holds the substrate's geometric/electrical parameters.
	DeviceModel = xbar.DeviceModel
	// Assignment is the hybrid crossbar/synapse implementation topology.
	Assignment = xbar.Assignment
	// Crossbar is one crossbar instance of an assignment.
	Crossbar = xbar.Crossbar
	// Iteration is one recorded ISC round.
	Iteration = core.Iteration
	// Netlist is the physical-design cell/wire list.
	Netlist = netlist.Netlist
	// Placement is a legalized placement.
	Placement = place.Result
	// Routing is a routed design with congestion map.
	Routing = route.Result
	// CostReport is the evaluated physical cost (Eq. 3).
	CostReport = cost.Report
	// CostParams are the α, β, δ weights of Eq. 3.
	CostParams = cost.Params
	// PlaceOptions tunes the analytical placer.
	PlaceOptions = place.Options
	// RouteOptions tunes the grid maze router.
	RouteOptions = route.Options
	// Testbench describes one of the paper's Hopfield benchmarks.
	Testbench = hopfield.Testbench
	// HopfieldNetwork is a (sparsifiable) Hopfield associative memory.
	HopfieldNetwork = hopfield.Network
	// Pattern is a ±1 binary pattern stored in a Hopfield network.
	Pattern = hopfield.Pattern
)

// LoadNetwork reads a network from a file in the autoncs-net text format.
func LoadNetwork(path string) (*Network, error) { return graph.Load(path) }

// Corrupt flips the given fraction of bits of p, seeded by rng.
func Corrupt(p Pattern, fraction float64, rng *rand.Rand) Pattern {
	return hopfield.Corrupt(p, fraction, rng)
}

// Overlap returns the fraction of positions where two patterns agree.
func Overlap(a, b Pattern) float64 { return hopfield.Overlap(a, b) }

// NewNetwork returns an empty connection matrix over n neurons.
func NewNetwork(n int) *Network { return graph.NewConn(n) }

// RandomSparseNetwork returns a random symmetric network with the given
// sparsity, seeded deterministically.
func RandomSparseNetwork(n int, sparsity float64, seed int64) *Network {
	return graph.RandomSparse(n, sparsity, rand.New(rand.NewSource(seed)))
}

// DefaultLibrary returns the paper's crossbar sizes, 16..64 step 4.
func DefaultLibrary() Library { return xbar.DefaultLibrary() }

// Default45nm returns the calibrated 45 nm device model.
func Default45nm() DeviceModel { return xbar.Default45nm() }

// Testbenches returns the paper's three Hopfield benchmark configurations.
func Testbenches() []Testbench { return hopfield.Testbenches() }

// Config collects every knob of the flow. Use DefaultConfig and override.
type Config struct {
	// Library is the allowed crossbar size set.
	Library Library
	// Device is the substrate model used for netlist, delay, and cost.
	Device DeviceModel
	// UtilizationThreshold is ISC's stop threshold t. Zero means automatic:
	// the average utilization of the FullCro baseline on the same network
	// (Section 4.2: "the iteration of ISC stops when the average crossbar
	// utilization is below that of the baseline design").
	UtilizationThreshold float64
	// SelectionQuantile is the CP quantile of ISC's partial selection
	// strategy; zero means the paper's 0.75 (top 25%). Negative disables
	// partial selection (every cluster is realized each round).
	SelectionQuantile float64
	// Place tunes the analytical placer.
	Place PlaceOptions
	// Route tunes the grid router.
	Route RouteOptions
	// Cost holds the α, β, δ weights of Eq. 3.
	Cost CostParams
	// Seed drives all randomized steps (k-means seeding).
	Seed int64
	// Workers bounds the worker pool running the flow's data-parallel
	// kernels (spectral solves, k-means, CP scoring, maze-route batches).
	// Zero means runtime.NumCPU() (or the process default installed with
	// a --workers flag); negative values are rejected by Compile.
	//
	// Determinism contract: the compiled result is bit-identical for
	// every worker count — Workers=1 reproduces the serial flow exactly.
	// All parallel kernels either touch disjoint per-index state or
	// reduce partial results in an order fixed by the input alone, and
	// every random stream is consumed on a single goroutine in a fixed
	// order derived from Seed.
	Workers int
	// SkipPhysical stops after clustering: Netlist, Placement, Routing and
	// Report stay nil. Useful when only the mapping is of interest.
	SkipPhysical bool
}

// DefaultConfig returns the configuration used in the paper's experiments.
func DefaultConfig() Config {
	return Config{
		Library: DefaultLibrary(),
		Device:  Default45nm(),
		Place:   place.DefaultOptions(),
		Route:   route.DefaultOptions(),
		Cost:    cost.DefaultParams(),
		Seed:    1,
	}
}

// Result bundles everything the flow produces.
type Result struct {
	// Assignment is the hybrid mapping (always present).
	Assignment *Assignment
	// Trace is the per-iteration ISC record (nil for FullCro).
	Trace []Iteration
	// Netlist, Placement, Routing, Report are the physical design
	// artifacts (nil when SkipPhysical is set).
	Netlist   *Netlist
	Placement *Placement
	Routing   *Routing
	Report    *CostReport
}

// Compile runs the complete AutoNCS flow on the network: ISC clustering
// into the crossbar library, then placement, routing, and cost evaluation.
func Compile(net *Network, cfg Config) (*Result, error) {
	if err := validateInput(net, cfg); err != nil {
		return nil, err
	}
	threshold := cfg.UtilizationThreshold
	if threshold == 0 {
		threshold = xbar.FullCro(net, cfg.Library).AvgUtilization()
	}
	iscRes, err := core.ISC(net, core.ISCOptions{
		Library:              cfg.Library,
		UtilizationThreshold: threshold,
		SelectionQuantile:    cfg.SelectionQuantile,
		Rand:                 rand.New(rand.NewSource(cfg.Seed)),
		Workers:              cfg.Workers,
	})
	if err != nil {
		return nil, fmt.Errorf("autoncs: clustering: %w", err)
	}
	res := &Result{Assignment: iscRes.Assignment, Trace: iscRes.Trace}
	if cfg.SkipPhysical {
		return res, nil
	}
	if err := res.physicalDesign(cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// CompileFullCro runs the paper's baseline: the network realized with
// maximum-size crossbars only (one per non-empty block), then the same
// physical design flow.
func CompileFullCro(net *Network, cfg Config) (*Result, error) {
	if err := validateInput(net, cfg); err != nil {
		return nil, err
	}
	res := &Result{Assignment: xbar.FullCro(net, cfg.Library)}
	if cfg.SkipPhysical {
		return res, nil
	}
	if err := res.physicalDesign(cfg); err != nil {
		return nil, err
	}
	return res, nil
}

// validateInput rejects the degenerate configurations and inputs that used
// to surface as panics deep inside the clustering or placement stages.
func validateInput(net *Network, cfg Config) error {
	if net == nil {
		return fmt.Errorf("autoncs: nil network")
	}
	if net.N() == 0 {
		return fmt.Errorf("autoncs: empty network (0 neurons)")
	}
	if net.NNZ() == 0 {
		return fmt.Errorf("autoncs: network with %d neurons has no connections", net.N())
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("autoncs: Config.Workers = %d is negative; use 0 for runtime.NumCPU()", cfg.Workers)
	}
	if cfg.Library.Empty() {
		return fmt.Errorf("autoncs: empty crossbar library (use DefaultLibrary)")
	}
	return nil
}

// routeOptions is cfg.Route with an unset Workers knob inheriting the
// flow-level Config.Workers.
func routeOptions(cfg Config) RouteOptions {
	ro := cfg.Route
	if ro.Workers == 0 {
		ro.Workers = cfg.Workers
	}
	return ro
}

// physicalDesign runs netlist → place → route → cost on res.Assignment.
func (res *Result) physicalDesign(cfg Config) error {
	nl, err := netlist.Build(res.Assignment, cfg.Device)
	if err != nil {
		return fmt.Errorf("autoncs: netlist: %w", err)
	}
	pl, err := place.Place(nl, cfg.Place)
	if err != nil {
		return fmt.Errorf("autoncs: placement: %w", err)
	}
	rt, err := route.Route(nl, pl, routeOptions(cfg))
	if err != nil {
		return fmt.Errorf("autoncs: routing: %w", err)
	}
	rep, err := cost.Evaluate(nl, pl, rt, cfg.Device, cfg.Cost)
	if err != nil {
		return fmt.Errorf("autoncs: cost: %w", err)
	}
	res.Netlist, res.Placement, res.Routing, res.Report = nl, pl, rt, rep
	return nil
}

// Redesign re-runs placement, routing, and cost evaluation on the result's
// existing netlist — useful after modifying it (e.g. flattening wire
// weights for an ablation). It requires a prior non-SkipPhysical compile.
func (res *Result) Redesign(cfg Config) error {
	if res.Netlist == nil {
		return fmt.Errorf("autoncs: Redesign requires an existing netlist")
	}
	pl, err := place.Place(res.Netlist, cfg.Place)
	if err != nil {
		return fmt.Errorf("autoncs: placement: %w", err)
	}
	rt, err := route.Route(res.Netlist, pl, routeOptions(cfg))
	if err != nil {
		return fmt.Errorf("autoncs: routing: %w", err)
	}
	rep, err := cost.Evaluate(res.Netlist, pl, rt, cfg.Device, cfg.Cost)
	if err != nil {
		return fmt.Errorf("autoncs: cost: %w", err)
	}
	res.Placement, res.Routing, res.Report = pl, rt, rep
	return nil
}

// Comparison holds the Table 1 style reductions of a design versus a
// baseline, in percent (positive = the design is better).
type Comparison struct {
	WirelengthReduction float64
	AreaReduction       float64
	DelayReduction      float64
	CostReduction       float64
}

// Compare returns the percentage reductions of res versus base. Both
// results must carry cost reports (i.e. not compiled with SkipPhysical).
func Compare(res, base *Result) (Comparison, error) {
	if res == nil || base == nil || res.Report == nil || base.Report == nil {
		return Comparison{}, fmt.Errorf("autoncs: Compare requires cost reports on both results")
	}
	return Comparison{
		WirelengthReduction: cost.Reduction(res.Report.Wirelength, base.Report.Wirelength),
		AreaReduction:       cost.Reduction(res.Report.Area, base.Report.Area),
		DelayReduction:      cost.Reduction(res.Report.AvgDelay, base.Report.AvgDelay),
		CostReduction:       cost.Reduction(res.Report.Cost, base.Report.Cost),
	}, nil
}

// BuildTestbench trains, sparsifies, and returns the connection matrix of
// one of the paper's Hopfield testbenches (deterministic in seed).
func BuildTestbench(tb Testbench, seed int64) *Network {
	cm, _, _ := tb.Build(seed)
	return cm
}
