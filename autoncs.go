// Package autoncs is an open reimplementation of AutoNCS, the EDA
// framework for large-scale hybrid neuromorphic computing systems (Wen et
// al., DAC 2015). Given a sparse neural network's binary connection matrix,
// it partitions the connections onto a library of fixed-size memristor
// crossbars plus discrete synapses via iterative spectral clustering, and
// produces a placed-and-routed physical design whose wirelength, area, and
// delay it reports.
//
// The typical flow:
//
//	net := autoncs.RandomSparseNetwork(400, 0.94, 1)
//	cfg := autoncs.DefaultConfig()
//	res, err := autoncs.Compile(net, cfg)        // the AutoNCS flow
//	base, err := autoncs.CompileFullCro(net, cfg) // max-size crossbar baseline
//	cmp := autoncs.Compare(res, base)             // Table 1 style reductions
//
// The heavy lifting lives in the internal packages (core, place, route,
// ...); this package wires them together and re-exports the types a caller
// needs.
package autoncs

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"time"

	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/graph"
	"repro/internal/hopfield"
	"repro/internal/netlist"
	"repro/internal/obs"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/xbar"
)

// Re-exported types: the public API surface of the flow.
type (
	// Network is a square binary connection matrix over n neurons.
	Network = graph.Conn
	// Edge is one directed connection of a network.
	Edge = graph.Edge
	// Library is the set of allowed crossbar sizes.
	Library = xbar.Library
	// DeviceModel holds the substrate's geometric/electrical parameters.
	DeviceModel = xbar.DeviceModel
	// Assignment is the hybrid crossbar/synapse implementation topology.
	Assignment = xbar.Assignment
	// Crossbar is one crossbar instance of an assignment.
	Crossbar = xbar.Crossbar
	// Iteration is one recorded ISC round.
	Iteration = core.Iteration
	// Netlist is the physical-design cell/wire list.
	Netlist = netlist.Netlist
	// Placement is a legalized placement.
	Placement = place.Result
	// Routing is a routed design with congestion map.
	Routing = route.Result
	// CostReport is the evaluated physical cost (Eq. 3).
	CostReport = cost.Report
	// CostParams are the α, β, δ weights of Eq. 3.
	CostParams = cost.Params
	// PlaceOptions tunes the analytical placer.
	PlaceOptions = place.Options
	// RouteOptions tunes the grid maze router.
	RouteOptions = route.Options
	// Testbench describes one of the paper's Hopfield benchmarks.
	Testbench = hopfield.Testbench
	// HopfieldNetwork is a (sparsifiable) Hopfield associative memory.
	HopfieldNetwork = hopfield.Network
	// Pattern is a ±1 binary pattern stored in a Hopfield network.
	Pattern = hopfield.Pattern
	// Observer receives the flow's typed stage events (see Config.Observer).
	Observer = obs.Observer
	// Event is one typed observation from the compile flow; switch on the
	// obs package's concrete types to consume it.
	Event = obs.Event
	// Stage names one pipeline stage of the flow.
	Stage = obs.Stage
	// MetricsObserver is a ready-made thread-safe observer accumulating
	// event counts and per-stage wall times; its zero value is usable.
	MetricsObserver = obs.Metrics
	// MetricsSnapshot is the detached view a MetricsObserver's Snapshot
	// returns — counts, stage times, and the last summary events
	// (PlaceStats, ClusterStats).
	MetricsSnapshot = obs.MetricsSnapshot
)

// The pipeline stages, in execution order — the keys of Result.StageTimes.
const (
	StageClustering = obs.StageClustering
	StageNetlist    = obs.StageNetlist
	StagePlace      = obs.StagePlace
	StageRoute      = obs.StageRoute
	StageCost       = obs.StageCost
)

// The negotiated router's knob defaults, re-exported so callers can spell
// Config.Route values explicitly; a zero knob means the same default.
const (
	DefaultPresentFactor     = route.DefaultPresentFactor
	DefaultHistoryGain       = route.DefaultHistoryGain
	DefaultNegotiationRounds = route.DefaultNegotiationRounds
)

// Stages lists every pipeline stage in execution order, for deterministic
// iteration over Result.StageTimes.
func Stages() []Stage { return obs.Stages() }

// NewSlogObserver returns an observer rendering every event through the
// given structured logger: stage boundaries, ISC iterations, and capacity
// relaxations at Info; per-checkpoint placement progress and route batches
// at Debug.
func NewSlogObserver(l *slog.Logger) Observer { return obs.NewSlog(l) }

// MultiObserver fans events out to every non-nil observer in order.
func MultiObserver(os ...Observer) Observer { return obs.Multi(os...) }

// LoadNetwork reads a network from a file in the autoncs-net text format.
func LoadNetwork(path string) (*Network, error) { return graph.Load(path) }

// Corrupt flips the given fraction of bits of p, seeded by rng.
func Corrupt(p Pattern, fraction float64, rng *rand.Rand) Pattern {
	return hopfield.Corrupt(p, fraction, rng)
}

// Overlap returns the fraction of positions where two patterns agree.
func Overlap(a, b Pattern) float64 { return hopfield.Overlap(a, b) }

// NewNetwork returns an empty connection matrix over n neurons.
func NewNetwork(n int) *Network { return graph.NewConn(n) }

// RandomSparseNetwork returns a random symmetric network with the given
// sparsity, seeded deterministically.
func RandomSparseNetwork(n int, sparsity float64, seed int64) *Network {
	return graph.RandomSparse(n, sparsity, rand.New(rand.NewSource(seed)))
}

// DefaultLibrary returns the paper's crossbar sizes, 16..64 step 4.
func DefaultLibrary() Library { return xbar.DefaultLibrary() }

// NewLibrary builds a crossbar library from the given sizes (positive,
// deduplicated, sorted ascending).
func NewLibrary(sizes ...int) (Library, error) { return xbar.NewLibrary(sizes...) }

// Default45nm returns the calibrated 45 nm device model.
func Default45nm() DeviceModel { return xbar.Default45nm() }

// Testbenches returns the paper's three Hopfield benchmark configurations.
func Testbenches() []Testbench { return hopfield.Testbenches() }

// Config collects every knob of the flow. Use DefaultConfig and override.
type Config struct {
	// Library is the allowed crossbar size set.
	Library Library
	// Device is the substrate model used for netlist, delay, and cost.
	Device DeviceModel
	// UtilizationThreshold is ISC's stop threshold t:
	//
	//   - Zero (the zero-value default) means automatic: the average
	//     utilization of the FullCro baseline on the same network
	//     (Section 4.2: "the iteration of ISC stops when the average
	//     crossbar utilization is below that of the baseline design").
	//   - A value in (0, 1] is used as-is.
	//   - Any negative value (use DisabledThreshold for readability)
	//     requests an explicit threshold of zero, i.e. disables the
	//     utilization stopping rule entirely — the setting that a literal
	//     0 cannot express because 0 already means "auto". This mirrors
	//     SelectionQuantile, where negative likewise means "disable".
	//   - NaN and values above 1 are rejected by Compile.
	UtilizationThreshold float64
	// SelectionQuantile is the CP quantile of ISC's partial selection
	// strategy; zero means the paper's 0.75 (top 25%). Negative disables
	// partial selection (every cluster is realized each round).
	SelectionQuantile float64
	// Place tunes the analytical placer.
	Place PlaceOptions
	// Route tunes the grid router.
	Route RouteOptions
	// Cost holds the α, β, δ weights of Eq. 3.
	Cost CostParams
	// Seed drives all randomized steps (k-means seeding).
	Seed int64
	// Workers bounds the worker pool running the flow's data-parallel
	// kernels (spectral solves, k-means, CP scoring, maze-route batches).
	// Zero means runtime.NumCPU() (or the process default installed with
	// a --workers flag); negative values are rejected by Compile.
	//
	// Determinism contract: the compiled result is bit-identical for
	// every worker count — Workers=1 reproduces the serial flow exactly.
	// All parallel kernels either touch disjoint per-index state or
	// reduce partial results in an order fixed by the input alone, and
	// every random stream is consumed on a single goroutine in a fixed
	// order derived from Seed.
	Workers int
	// SkipPhysical stops after clustering: Netlist, Placement, Routing and
	// Report stay nil. Useful when only the mapping is of interest.
	SkipPhysical bool
	// Multilevel enables the multilevel clustering engine: heavy-edge-
	// matching coarsening down to MultilevelCutoff, spectral partitioning of
	// the coarse graph, and uncoarsening with boundary-local Fiedler
	// refinement, with warm-started Lanczos solves on the flat tail. Off by
	// default — the flat engine is the paper-faithful reference path whose
	// results are golden-pinned; the multilevel path trades bit-compatible
	// clusterings for near-linear scaling on large networks (its results are
	// still bit-identical for any worker count, and carry their own goldens
	// and quality gates).
	Multilevel bool
	// MultilevelCutoff is the active-neuron count at or below which an ISC
	// iteration uses the flat engine, and the size coarsening aims for. Zero
	// means core.DefaultMultilevelCutoff (1024); values below 2 are
	// rejected. Validated even when Multilevel is off, so a config is either
	// valid or not regardless of the escape hatch.
	MultilevelCutoff int
	// CoarsenRatio is the minimum shrink a coarsening level must achieve to
	// continue (coarse/fine node count). Zero means
	// core.DefaultCoarsenRatio (0.9); values outside (0,1) are rejected.
	CoarsenRatio float64
	// MultilevelLevels bounds the coarsening depth; zero means unbounded,
	// negative is rejected.
	MultilevelLevels int
	// Observer, when non-nil, receives the flow's typed stage events:
	// compile start/end, stage boundaries with wall times, per-ISC-iteration
	// records, placement λ-loop progress, and router batch/relaxation
	// counters. Observers are passive — they see values the flow computes
	// anyway and are called from the flow's single control goroutine — so
	// attaching one never changes the compiled result.
	Observer Observer
}

// DisabledThreshold is a readable UtilizationThreshold sentinel requesting
// an explicit stop threshold of zero (the utilization stopping rule is
// disabled; ISC runs until its other termination conditions fire). A plain
// 0 cannot express this because the zero value means "auto".
const DisabledThreshold = -1.0

// DefaultConfig returns the configuration used in the paper's experiments.
func DefaultConfig() Config {
	return Config{
		Library: DefaultLibrary(),
		Device:  Default45nm(),
		Place:   place.DefaultOptions(),
		Route:   route.DefaultOptions(),
		Cost:    cost.DefaultParams(),
		Seed:    1,
	}
}

// Result bundles everything the flow produces.
type Result struct {
	// Assignment is the hybrid mapping (always present).
	Assignment *Assignment
	// Trace is the per-iteration ISC record (nil for FullCro).
	Trace []Iteration
	// Netlist, Placement, Routing, Report are the physical design
	// artifacts (nil when SkipPhysical is set).
	Netlist   *Netlist
	Placement *Placement
	Routing   *Routing
	Report    *CostReport
	// StageTimes is the wall time of each executed pipeline stage, keyed
	// by the Stage constants (iterate with Stages() for a deterministic
	// order). It is diagnostic only: no golden summary includes it.
	StageTimes map[Stage]time.Duration
	// Device records the device model the netlist (and every cost figure)
	// was built with; Redesign refuses a Config carrying a different one.
	Device DeviceModel
}

// Compile runs the complete AutoNCS flow on the network: ISC clustering
// into the crossbar library, then placement, routing, and cost evaluation.
// It is CompileCtx under context.Background().
func Compile(net *Network, cfg Config) (*Result, error) {
	return CompileCtx(context.Background(), net, cfg)
}

// CompileCtx runs the complete AutoNCS flow under a context. Cancellation
// is cooperative and promptly honoured: the flow checks ctx at every ISC
// iteration, every placement λ checkpoint, and every route batch (including
// between the strides of the parallel maze searches), returning ctx.Err()
// wrapped with the stage that was cancelled. cfg.Observer — if set —
// receives the flow's typed stage events as it runs. Neither the context
// checks nor the observer perturb the result: an uncancelled CompileCtx is
// bit-identical to Compile with no observer, for every worker count.
func CompileCtx(ctx context.Context, net *Network, cfg Config) (*Result, error) {
	if err := validateInput(net, cfg); err != nil {
		return nil, err
	}
	ob := cfg.Observer
	start := time.Now()
	obs.Emit(ob, obs.CompileStart{Neurons: net.N(), Connections: net.NNZ(), Workers: cfg.Workers})
	res := &Result{Device: cfg.Device, StageTimes: make(map[Stage]time.Duration)}
	err := res.runStage(ob, StageClustering, func() error {
		iscRes, err := core.ISCCtx(ctx, net, core.ISCOptions{
			Library:              cfg.Library,
			UtilizationThreshold: resolveThreshold(net, cfg),
			SelectionQuantile:    cfg.SelectionQuantile,
			Rand:                 rand.New(rand.NewSource(cfg.Seed)),
			Workers:              cfg.Workers,
			Observer:             ob,
			Multilevel:           cfg.Multilevel,
			MultilevelCutoff:     cfg.MultilevelCutoff,
			CoarsenRatio:         cfg.CoarsenRatio,
			MultilevelLevels:     cfg.MultilevelLevels,
		})
		if err != nil {
			return fmt.Errorf("autoncs: clustering: %w", err)
		}
		res.Assignment, res.Trace = iscRes.Assignment, iscRes.Trace
		return nil
	})
	if err == nil && !cfg.SkipPhysical {
		err = res.physicalDesign(ctx, cfg)
	}
	obs.Emit(ob, obs.CompileEnd{Elapsed: time.Since(start), Err: err})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// CompileFullCro runs the paper's baseline: the network realized with
// maximum-size crossbars only (one per non-empty block), then the same
// physical design flow. It is CompileFullCroCtx under context.Background().
func CompileFullCro(net *Network, cfg Config) (*Result, error) {
	return CompileFullCroCtx(context.Background(), net, cfg)
}

// CompileFullCroCtx is CompileFullCro under a context, with the same
// cancellation and observation semantics as CompileCtx (the clustering
// stage is the FullCro block construction, which is not interruptible but
// fast).
func CompileFullCroCtx(ctx context.Context, net *Network, cfg Config) (*Result, error) {
	if err := validateInput(net, cfg); err != nil {
		return nil, err
	}
	ob := cfg.Observer
	start := time.Now()
	obs.Emit(ob, obs.CompileStart{Neurons: net.N(), Connections: net.NNZ(), Workers: cfg.Workers})
	res := &Result{Device: cfg.Device, StageTimes: make(map[Stage]time.Duration)}
	err := res.runStage(ob, StageClustering, func() error {
		res.Assignment = xbar.FullCro(net, cfg.Library)
		return nil
	})
	if err == nil && !cfg.SkipPhysical {
		err = res.physicalDesign(ctx, cfg)
	}
	obs.Emit(ob, obs.CompileEnd{Elapsed: time.Since(start), Err: err})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// resolveThreshold maps Config.UtilizationThreshold to the concrete ISC
// stop threshold: zero means automatic (the FullCro baseline's average
// utilization on the same network), negative means an explicit zero
// (utilization stopping disabled), anything else passes through.
func resolveThreshold(net *Network, cfg Config) float64 {
	switch t := cfg.UtilizationThreshold; {
	case t == 0:
		return xbar.FullCro(net, cfg.Library).AvgUtilization()
	case t < 0:
		return 0
	default:
		return t
	}
}

// runStage times f as the named pipeline stage, recording the wall time on
// res.StageTimes and emitting the stage boundary events.
func (res *Result) runStage(ob Observer, stage Stage, f func() error) error {
	if res.StageTimes == nil {
		res.StageTimes = make(map[Stage]time.Duration)
	}
	obs.Emit(ob, obs.StageStart{Stage: stage})
	t := time.Now()
	err := f()
	d := time.Since(t)
	res.StageTimes[stage] = d
	obs.Emit(ob, obs.StageEnd{Stage: stage, Elapsed: d, Err: err})
	return err
}

// validateInput rejects the degenerate configurations and inputs that used
// to surface as panics deep inside the clustering or placement stages.
func validateInput(net *Network, cfg Config) error {
	if net == nil {
		return fmt.Errorf("autoncs: nil network")
	}
	if net.N() == 0 {
		return fmt.Errorf("autoncs: empty network (0 neurons)")
	}
	if net.NNZ() == 0 {
		return fmt.Errorf("autoncs: network with %d neurons has no connections", net.N())
	}
	if cfg.Workers < 0 {
		return fmt.Errorf("autoncs: Config.Workers = %d is negative; use 0 for runtime.NumCPU()", cfg.Workers)
	}
	if cfg.Library.Empty() {
		return fmt.Errorf("autoncs: empty crossbar library (use DefaultLibrary)")
	}
	if math.IsNaN(cfg.UtilizationThreshold) {
		return fmt.Errorf("autoncs: Config.UtilizationThreshold is NaN; use 0 for auto or DisabledThreshold to disable the stopping rule")
	}
	if cfg.UtilizationThreshold > 1 {
		return fmt.Errorf("autoncs: Config.UtilizationThreshold = %g exceeds 1; utilization is a fraction in [0,1]", cfg.UtilizationThreshold)
	}
	if math.IsNaN(cfg.SelectionQuantile) {
		return fmt.Errorf("autoncs: Config.SelectionQuantile is NaN; use 0 for the paper's 0.75 or a negative value to disable partial selection")
	}
	if cfg.SelectionQuantile > 1 {
		return fmt.Errorf("autoncs: Config.SelectionQuantile = %g exceeds 1; quantiles lie in [0,1]", cfg.SelectionQuantile)
	}
	if cfg.MultilevelCutoff != 0 && cfg.MultilevelCutoff < 2 {
		return fmt.Errorf("autoncs: Config.MultilevelCutoff = %d below 2; use 0 for the default (%d)", cfg.MultilevelCutoff, core.DefaultMultilevelCutoff)
	}
	if cfg.CoarsenRatio != 0 && (math.IsNaN(cfg.CoarsenRatio) || cfg.CoarsenRatio <= 0 || cfg.CoarsenRatio >= 1) {
		return fmt.Errorf("autoncs: Config.CoarsenRatio = %g outside (0,1); use 0 for the default (%g)", cfg.CoarsenRatio, core.DefaultCoarsenRatio)
	}
	if cfg.MultilevelLevels < 0 {
		return fmt.Errorf("autoncs: Config.MultilevelLevels = %d is negative; use 0 for unbounded", cfg.MultilevelLevels)
	}
	return nil
}

// routeOptions is cfg.Route with an unset Workers knob inheriting the
// flow-level Config.Workers and an unset Observer inheriting the flow's.
func routeOptions(cfg Config) RouteOptions {
	ro := cfg.Route
	if ro.Workers == 0 {
		ro.Workers = cfg.Workers
	}
	if ro.Observer == nil {
		ro.Observer = cfg.Observer
	}
	return ro
}

// placeOptions is cfg.Place with an unset Workers knob inheriting the
// flow-level Config.Workers and an unset Observer inheriting the flow's.
func placeOptions(cfg Config) PlaceOptions {
	po := cfg.Place
	if po.Workers == 0 {
		po.Workers = cfg.Workers
	}
	if po.Observer == nil {
		po.Observer = cfg.Observer
	}
	return po
}

// physicalDesign runs netlist → place → route → cost on res.Assignment,
// timing each stage and honouring ctx in the place and route loops.
func (res *Result) physicalDesign(ctx context.Context, cfg Config) error {
	ob := cfg.Observer
	var nl *Netlist
	if err := res.runStage(ob, StageNetlist, func() error {
		var err error
		if nl, err = netlist.Build(res.Assignment, cfg.Device); err != nil {
			return fmt.Errorf("autoncs: netlist: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	var pl *Placement
	if err := res.runStage(ob, StagePlace, func() error {
		var err error
		if pl, err = place.PlaceCtx(ctx, nl, placeOptions(cfg)); err != nil {
			return fmt.Errorf("autoncs: placement: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	var rt *Routing
	if err := res.runStage(ob, StageRoute, func() error {
		var err error
		if rt, err = route.RouteCtx(ctx, nl, pl, routeOptions(cfg)); err != nil {
			return fmt.Errorf("autoncs: routing: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	var rep *CostReport
	if err := res.runStage(ob, StageCost, func() error {
		var err error
		if rep, err = cost.Evaluate(nl, pl, rt, cfg.Device, cfg.Cost); err != nil {
			return fmt.Errorf("autoncs: cost: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	res.Netlist, res.Placement, res.Routing, res.Report = nl, pl, rt, rep
	return nil
}

// Redesign re-runs placement, routing, and cost evaluation on the result's
// existing netlist — useful after modifying it (e.g. flattening wire
// weights for an ablation). It is RedesignCtx under context.Background().
func (res *Result) Redesign(cfg Config) error {
	return res.RedesignCtx(context.Background(), cfg)
}

// RedesignCtx re-runs placement, routing, and cost evaluation on the
// result's existing netlist under a context, with the same cooperative
// cancellation points as CompileCtx's physical stages. It requires a prior
// non-SkipPhysical compile, and it refuses a cfg whose Device differs from
// the one the netlist was built with: geometry and delay constants are
// baked into the netlist at Build time, so evaluating it under another
// device silently produces inconsistent area/delay reports.
func (res *Result) RedesignCtx(ctx context.Context, cfg Config) error {
	if res.Netlist == nil {
		return fmt.Errorf("autoncs: Redesign requires an existing netlist")
	}
	if cfg.Device != res.Device {
		return fmt.Errorf("autoncs: Redesign device model differs from the %v the netlist was built with; keep cfg.Device, or re-run Compile to rebuild the netlist", res.Device)
	}
	ob := cfg.Observer
	var pl *Placement
	if err := res.runStage(ob, StagePlace, func() error {
		var err error
		if pl, err = place.PlaceCtx(ctx, res.Netlist, placeOptions(cfg)); err != nil {
			return fmt.Errorf("autoncs: placement: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	var rt *Routing
	if err := res.runStage(ob, StageRoute, func() error {
		var err error
		if rt, err = route.RouteCtx(ctx, res.Netlist, pl, routeOptions(cfg)); err != nil {
			return fmt.Errorf("autoncs: routing: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	var rep *CostReport
	if err := res.runStage(ob, StageCost, func() error {
		var err error
		if rep, err = cost.Evaluate(res.Netlist, pl, rt, cfg.Device, cfg.Cost); err != nil {
			return fmt.Errorf("autoncs: cost: %w", err)
		}
		return nil
	}); err != nil {
		return err
	}
	res.Placement, res.Routing, res.Report = pl, rt, rep
	return nil
}

// Comparison holds the Table 1 style reductions of a design versus a
// baseline, in percent (positive = the design is better).
type Comparison struct {
	WirelengthReduction float64
	AreaReduction       float64
	DelayReduction      float64
	CostReduction       float64
}

// Compare returns the percentage reductions of res versus base. Both
// results must carry cost reports (i.e. not compiled with SkipPhysical).
func Compare(res, base *Result) (Comparison, error) {
	if res == nil || base == nil || res.Report == nil || base.Report == nil {
		return Comparison{}, fmt.Errorf("autoncs: Compare requires cost reports on both results")
	}
	return Comparison{
		WirelengthReduction: cost.Reduction(res.Report.Wirelength, base.Report.Wirelength),
		AreaReduction:       cost.Reduction(res.Report.Area, base.Report.Area),
		DelayReduction:      cost.Reduction(res.Report.AvgDelay, base.Report.AvgDelay),
		CostReduction:       cost.Reduction(res.Report.Cost, base.Report.Cost),
	}, nil
}

// BuildTestbench trains, sparsifies, and returns the connection matrix of
// one of the paper's Hopfield testbenches (deterministic in seed).
func BuildTestbench(tb Testbench, seed int64) *Network {
	cm, _, _ := tb.Build(seed)
	return cm
}
