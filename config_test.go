package autoncs

import (
	"math"
	"strings"
	"testing"

	"repro/internal/xbar"
)

// TestValidateConfig pins the Compile-time rejection of every degenerate
// Config knob, with error messages that name the offending field.
func TestValidateConfig(t *testing.T) {
	net := smallNet()
	cases := []struct {
		name    string
		mutate  func(*Config)
		wantErr string // substring of the error; "" means the config is valid
	}{
		{"default", func(c *Config) {}, ""},
		{"negative workers", func(c *Config) { c.Workers = -2 }, "Workers"},
		{"empty library", func(c *Config) { c.Library = Library{} }, "library"},
		{"threshold NaN", func(c *Config) { c.UtilizationThreshold = math.NaN() }, "UtilizationThreshold is NaN"},
		{"threshold above one", func(c *Config) { c.UtilizationThreshold = 1.5 }, "UtilizationThreshold = 1.5"},
		{"threshold one ok", func(c *Config) { c.UtilizationThreshold = 1 }, ""},
		{"threshold disabled ok", func(c *Config) { c.UtilizationThreshold = DisabledThreshold }, ""},
		{"quantile NaN", func(c *Config) { c.SelectionQuantile = math.NaN() }, "SelectionQuantile is NaN"},
		{"quantile above one", func(c *Config) { c.SelectionQuantile = 2 }, "SelectionQuantile = 2"},
		{"quantile negative ok", func(c *Config) { c.SelectionQuantile = -1 }, ""},
		{"multilevel defaults ok", func(c *Config) { c.Multilevel = true }, ""},
		{"multilevel explicit ok", func(c *Config) {
			c.Multilevel = true
			c.MultilevelCutoff = 256
			c.CoarsenRatio = 0.7
			c.MultilevelLevels = 4
		}, ""},
		{"cutoff one", func(c *Config) { c.MultilevelCutoff = 1 }, "MultilevelCutoff = 1"},
		{"cutoff negative", func(c *Config) { c.MultilevelCutoff = -8 }, "MultilevelCutoff = -8"},
		{"cutoff minimal ok", func(c *Config) { c.MultilevelCutoff = 2 }, ""},
		{"ratio NaN", func(c *Config) { c.CoarsenRatio = math.NaN() }, "CoarsenRatio"},
		{"ratio negative", func(c *Config) { c.CoarsenRatio = -0.5 }, "CoarsenRatio = -0.5"},
		{"ratio one", func(c *Config) { c.CoarsenRatio = 1 }, "CoarsenRatio = 1"},
		{"ratio above one", func(c *Config) { c.CoarsenRatio = 1.5 }, "CoarsenRatio = 1.5"},
		// The multilevel knobs are validated with the engine off too: a
		// Config is either valid for every engine or invalid for all.
		{"levels negative", func(c *Config) { c.MultilevelLevels = -1 }, "MultilevelLevels = -1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.SkipPhysical = true
			tc.mutate(&cfg)
			_, err := Compile(net, cfg)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("valid config rejected: %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("invalid config accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
		})
	}
}

// TestValidateInputNetworks covers the degenerate network inputs.
func TestValidateInputNetworks(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Compile(nil, cfg); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := Compile(NewNetwork(0), cfg); err == nil {
		t.Error("empty network accepted")
	}
	if _, err := Compile(NewNetwork(10), cfg); err == nil {
		t.Error("connectionless network accepted")
	}
}

// TestResolveThreshold pins the UtilizationThreshold sentinel semantics:
// zero is automatic (the FullCro baseline's average utilization), negative
// is an explicit zero (stopping rule disabled), in-range passes through.
func TestResolveThreshold(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()

	auto := resolveThreshold(net, cfg)
	want := xbar.FullCro(net, cfg.Library).AvgUtilization()
	if auto != want {
		t.Errorf("auto threshold %g, want FullCro baseline %g", auto, want)
	}
	if auto <= 0 || auto > 1 {
		t.Errorf("auto threshold %g outside (0,1]", auto)
	}

	cfg.UtilizationThreshold = DisabledThreshold
	if got := resolveThreshold(net, cfg); got != 0 {
		t.Errorf("DisabledThreshold resolved to %g, want 0", got)
	}
	cfg.UtilizationThreshold = -0.25 // any negative value disables
	if got := resolveThreshold(net, cfg); got != 0 {
		t.Errorf("negative threshold resolved to %g, want 0", got)
	}

	cfg.UtilizationThreshold = 0.42
	if got := resolveThreshold(net, cfg); got != 0.42 {
		t.Errorf("explicit threshold resolved to %g, want 0.42", got)
	}
}

// TestAutoThresholdMatchesExplicit proves zero-threshold backward
// compatibility end to end: compiling with the zero value is bit-identical
// to compiling with the FullCro baseline utilization passed explicitly.
func TestAutoThresholdMatchesExplicit(t *testing.T) {
	net := smallNet()
	auto := DefaultConfig()
	auto.SkipPhysical = true
	explicit := auto
	explicit.UtilizationThreshold = xbar.FullCro(net, auto.Library).AvgUtilization()

	a, err := Compile(net, auto)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Compile(net, explicit)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("auto threshold traced %d iterations, explicit %d", len(a.Trace), len(b.Trace))
	}
	if got, want := len(a.Assignment.Crossbars), len(b.Assignment.Crossbars); got != want {
		t.Fatalf("auto threshold produced %d crossbars, explicit %d", got, want)
	}
}

// TestDisabledThresholdChangesStopping checks the new sentinel is not a
// no-op: with the utilization rule disabled, ISC's recorded stop threshold
// is zero in every iteration, and the flow still produces a valid mapping.
func TestDisabledThresholdChangesStopping(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	cfg.SkipPhysical = true
	cfg.UtilizationThreshold = DisabledThreshold
	res, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(net); err != nil {
		t.Fatalf("assignment invalid with disabled threshold: %v", err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no ISC trace")
	}
}

// TestRedesignDeviceMismatch pins the satellite bugfix: Redesign must refuse
// a Config whose Device differs from the one the netlist was built with.
func TestRedesignDeviceMismatch(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	res, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Device.MemristorPitch *= 2
	err = res.Redesign(other)
	if err == nil {
		t.Fatal("Redesign accepted a different device model")
	}
	if !strings.Contains(err.Error(), "device model") {
		t.Fatalf("error %q does not mention the device model", err)
	}
	// The matching device still redesigns fine.
	if err := res.Redesign(cfg); err != nil {
		t.Fatalf("Redesign with the original device failed: %v", err)
	}
}
