package autoncs

import (
	"bytes"
	"testing"
)

// editNet returns a copy of net with a small localized edit: within the
// neuron window [lo, lo+span) it removes the first `removes` existing edges
// and adds the first `adds` absent (off-diagonal) pairs.
func editNet(net *Network, lo, span, removes, adds int) *Network {
	out := net.Clone()
	hi := lo + span
	for i := lo; i < hi && removes > 0; i++ {
		for j := lo; j < hi && removes > 0; j++ {
			if i != j && out.Has(i, j) {
				out.Clear(i, j)
				removes--
			}
		}
	}
	for i := lo; i < hi && adds > 0; i++ {
		for j := lo; j < hi && adds > 0; j++ {
			if i != j && !out.Has(i, j) {
				out.Set(i, j)
				adds--
			}
		}
	}
	return out
}

func placementsEqual(a, b *Placement) bool {
	if len(a.X) != len(b.X) ||
		a.MinX != b.MinX || a.MinY != b.MinY || a.MaxX != b.MaxX || a.MaxY != b.MaxY {
		return false
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] {
			return false
		}
	}
	return true
}

func routingsEqual(a, b *Routing) bool {
	if a.Cols != b.Cols || a.Rows != b.Rows || a.Total != b.Total ||
		len(a.Paths) != len(b.Paths) {
		return false
	}
	for i := range a.Paths {
		if len(a.Paths[i]) != len(b.Paths[i]) {
			return false
		}
		for k := range a.Paths[i] {
			if a.Paths[i][k] != b.Paths[i][k] {
				return false
			}
		}
	}
	return true
}

// TestCompileDeltaZeroEdit: a delta against an unedited network must
// reproduce the previous result bit for bit and reuse everything.
func TestCompileDeltaZeroEdit(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	prev, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := CompileDelta(prev, net.Clone(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Edits != 0 || stats.DirtyCrossbars != 0 || stats.NewCrossbars != 0 {
		t.Fatalf("zero edit recompiled something: %+v", stats)
	}
	if stats.ReusedWires != len(prev.Netlist.Wires) || stats.ReroutedWires != 0 {
		t.Fatalf("zero edit rerouted wires: %+v", stats)
	}
	if len(res.Assignment.Crossbars) != len(prev.Assignment.Crossbars) ||
		len(res.Assignment.Synapses) != len(prev.Assignment.Synapses) {
		t.Fatal("zero-edit assignment differs from previous")
	}
	if !placementsEqual(res.Placement, prev.Placement) {
		t.Fatal("zero-edit placement differs from previous")
	}
	if !routingsEqual(res.Routing, prev.Routing) {
		t.Fatal("zero-edit routing differs from previous")
	}
	if res.Report.Cost != prev.Report.Cost {
		t.Fatalf("zero-edit cost %g, previous %g", res.Report.Cost, prev.Report.Cost)
	}
}

// TestCompileDeltaEquivalence: a delta of a small localized edit must cover
// the edited network exactly and land within a tight quality band of the
// full compile of the same edited network.
func TestCompileDeltaEquivalence(t *testing.T) {
	// Large enough that a localized edit leaves most crossbars untouched
	// (at 120 neurons the handful of clusters covers every neuron).
	net := RandomSparseNetwork(240, 0.95, 3)
	cfg := DefaultConfig()
	prev, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	edited := editNet(net, 10, 8, 2, 2)
	res, stats, err := CompileDelta(prev, edited, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Assignment.Validate(edited); err != nil {
		t.Fatalf("delta assignment invalid on edited net: %v", err)
	}
	if stats.KeptCrossbars == 0 {
		t.Fatalf("localized edit kept no crossbars: %+v", stats)
	}
	if stats.ReusedWires == 0 {
		t.Fatalf("localized edit reused no routes: %+v", stats)
	}
	full, err := Compile(edited, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Quality gates. The delta tracks the quality of the base it edits
	// (ISC is noisy enough that two full compiles of near-identical nets
	// differ substantially), so the tight bound is against prev and the
	// sanity bound against the from-scratch compile of the edited net.
	if r, p, f := res.Assignment.OutlierRatio(), prev.Assignment.OutlierRatio(), full.Assignment.OutlierRatio(); r > max(p, f)+0.02 {
		t.Fatalf("delta outlier ratio %g, prev %g, full %g", r, p, f)
	}
	if nd, np := len(res.Assignment.Crossbars), len(prev.Assignment.Crossbars); nd > np+2 {
		t.Fatalf("delta uses %d crossbars, prev %d", nd, np)
	}
	if c, p, f := res.Report.Cost, prev.Report.Cost, full.Report.Cost; c > 1.2*max(p, f) {
		t.Fatalf("delta cost %g, prev %g, full %g", c, p, f)
	}
}

// TestCompileDeltaWorkerInvariance: the delta flow keeps the determinism
// contract — bit-identical results for any worker count.
func TestCompileDeltaWorkerInvariance(t *testing.T) {
	net := RandomSparseNetwork(240, 0.95, 3)
	cfg := DefaultConfig()
	prev, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	edited := editNet(net, 40, 8, 2, 2)
	var ref *Result
	for _, workers := range []int{1, 2, 4, 8} {
		c := cfg
		c.Workers = workers
		res, _, err := CompileDeltaCtx(t.Context(), prev, edited, c)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !placementsEqual(res.Placement, ref.Placement) {
			t.Fatalf("workers=%d placement diverged", workers)
		}
		if !routingsEqual(res.Routing, ref.Routing) {
			t.Fatalf("workers=%d routing diverged", workers)
		}
		if res.Report.Cost != ref.Report.Cost {
			t.Fatalf("workers=%d cost %g, want %g", workers, res.Report.Cost, ref.Report.Cost)
		}
	}
}

// TestCompileDeltaRejects: the guard rails of the delta entry point.
func TestCompileDeltaRejects(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	prev, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CompileDelta(nil, net, cfg); err == nil {
		t.Fatal("nil previous result accepted")
	}
	if _, _, err := CompileDelta(prev, RandomSparseNetwork(80, 0.92, 1), cfg); err == nil {
		t.Fatal("neuron-count mismatch accepted")
	}
	bad := cfg
	bad.Device.NeuronSide *= 2
	if _, _, err := CompileDelta(prev, net, bad); err == nil {
		t.Fatal("device mismatch accepted")
	}
}

// TestCompileDeltaFromSkipPhysical: a base compiled with SkipPhysical still
// delta-compiles; the physical stages simply run from scratch.
func TestCompileDeltaFromSkipPhysical(t *testing.T) {
	net := smallNet()
	scfg := DefaultConfig()
	scfg.SkipPhysical = true
	prev, err := Compile(net, scfg)
	if err != nil {
		t.Fatal(err)
	}
	edited := editNet(net, 0, 15, 3, 3)
	res, stats, err := CompileDelta(prev, edited, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement == nil || res.Routing == nil || res.Report == nil {
		t.Fatal("physical artifacts missing")
	}
	if !stats.FullRoute || stats.ReusedWires != 0 {
		t.Fatalf("SkipPhysical base should force a full route: %+v", stats)
	}
}

// TestArtifactRoundTrip: encode → decode → Restore reproduces the compile
// result exactly, and the encoding itself is byte-deterministic.
func TestArtifactRoundTrip(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	res, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeArtifact(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data2, err := EncodeArtifact(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Fatal("artifact encoding is not deterministic")
	}
	art, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if art.ConfigVector != ConfigVectorHashHex(cfg) {
		t.Fatalf("config vector %q, want %q", art.ConfigVector, ConfigVectorHashHex(cfg))
	}
	got, err := art.Restore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Assignment.Validate(net); err != nil {
		t.Fatalf("restored assignment invalid: %v", err)
	}
	if !placementsEqual(got.Placement, res.Placement) {
		t.Fatal("restored placement differs")
	}
	if !routingsEqual(got.Routing, res.Routing) {
		t.Fatal("restored routing differs")
	}
	if got.Report.Cost != res.Report.Cost || got.Report.Wirelength != res.Report.Wirelength {
		t.Fatalf("restored report %+v, want %+v", got.Report, res.Report)
	}
	for i := range got.Routing.Usage {
		if got.Routing.Usage[i] != res.Routing.Usage[i] {
			t.Fatalf("restored usage map differs at bin %d", i)
		}
	}
}

// TestArtifactDeltaChain: a delta resumed from a decoded artifact equals a
// delta resumed from the in-memory result — compiles are resumable across
// the serialization boundary.
func TestArtifactDeltaChain(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	prev, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeArtifact(prev, cfg)
	if err != nil {
		t.Fatal(err)
	}
	art, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := art.Restore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	edited := editNet(net, 30, 20, 4, 4)
	fromMem, _, err := CompileDelta(prev, edited, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fromArt, _, err := CompileDelta(restored, edited, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !placementsEqual(fromMem.Placement, fromArt.Placement) {
		t.Fatal("delta from restored artifact diverged from in-memory delta (placement)")
	}
	if !routingsEqual(fromMem.Routing, fromArt.Routing) {
		t.Fatal("delta from restored artifact diverged from in-memory delta (routing)")
	}
	if fromMem.Report.Cost != fromArt.Report.Cost {
		t.Fatalf("delta cost %g from artifact, %g from memory", fromArt.Report.Cost, fromMem.Report.Cost)
	}
}

// TestArtifactSkipPhysical: SkipPhysical results round-trip with no
// physical section.
func TestArtifactSkipPhysical(t *testing.T) {
	net := smallNet()
	cfg := DefaultConfig()
	cfg.SkipPhysical = true
	res, err := Compile(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeArtifact(res, cfg)
	if err != nil {
		t.Fatal(err)
	}
	art, err := DecodeArtifact(data)
	if err != nil {
		t.Fatal(err)
	}
	if art.Placement != nil || art.Routing != nil {
		t.Fatal("SkipPhysical artifact carries physical sections")
	}
	got, err := art.Restore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Placement != nil || got.Routing != nil || got.Report != nil {
		t.Fatal("SkipPhysical restore produced physical artifacts")
	}
	if err := got.Assignment.Validate(net); err != nil {
		t.Fatalf("restored assignment invalid: %v", err)
	}
}

// TestDecodeArtifactRejects: malformed artifacts fail loudly.
func TestDecodeArtifactRejects(t *testing.T) {
	if _, err := DecodeArtifact([]byte(`{"format":"bogus/v9","config_vector":"x"}`)); err == nil {
		t.Fatal("bogus format accepted")
	}
	if _, err := DecodeArtifact([]byte(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}
