//go:build !race

package autoncs_test

const raceEnabled = false
