package autoncs

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/cost"
	"repro/internal/netlist"
	"repro/internal/xbar"
)

// The compile artifact is the resumable form of a Result: everything a
// delta recompile needs to warm-start from a previous compile — the hybrid
// assignment, the placement coordinates, and the committed routing paths —
// plus the config vector the compile ran under, so a consumer can refuse to
// resume under an incompatible configuration. Derivable state (the netlist,
// the congestion map, the cost report) is rebuilt on restore rather than
// stored; diagnostic state (stage times, the ISC trace) is dropped.

// artifactFormat tags the serialized artifact. Bump it when the layout or
// the meaning of any stored field changes, so stale cached artifacts are
// rejected instead of misread.
const artifactFormat = "autoncs-artifact/v1"

type artifactJSON struct {
	Format       string          `json:"format"`
	ConfigVector string          `json:"config_vector"`
	Assignment   json.RawMessage `json:"assignment"`
	Placement    *placementJSON  `json:"placement,omitempty"`
	Routing      *routingJSON    `json:"routing,omitempty"`
}

type placementJSON struct {
	X    []float64 `json:"x"`
	Y    []float64 `json:"y"`
	MinX float64   `json:"min_x"`
	MinY float64   `json:"min_y"`
	MaxX float64   `json:"max_x"`
	MaxY float64   `json:"max_y"`
	HPWL float64   `json:"hpwl"`
}

type routingJSON struct {
	Cols          int       `json:"cols"`
	Rows          int       `json:"rows"`
	FinalCapacity int       `json:"final_capacity"`
	Negotiated    bool      `json:"negotiated"`
	Paths         [][]int   `json:"paths"`
	WireLength    []float64 `json:"wire_length"`
}

// EncodeArtifact serializes the resumable portion of a compile result,
// stamped with the config vector of the configuration that produced it. The
// encoding is deterministic: one (Result, Config) pair always yields the
// same bytes. Results compiled with SkipPhysical produce an artifact with
// no placement or routing section; a delta resumed from one re-runs the
// physical stages from scratch.
func EncodeArtifact(res *Result, cfg Config) ([]byte, error) {
	if res == nil || res.Assignment == nil {
		return nil, fmt.Errorf("autoncs: encoding artifact of a result with no assignment")
	}
	var ab bytes.Buffer
	if err := res.Assignment.WriteJSON(&ab); err != nil {
		return nil, fmt.Errorf("autoncs: encoding artifact assignment: %w", err)
	}
	art := artifactJSON{
		Format:       artifactFormat,
		ConfigVector: ConfigVectorHashHex(cfg),
		Assignment:   json.RawMessage(ab.Bytes()),
	}
	if res.Placement != nil && res.Routing != nil {
		pl := res.Placement
		art.Placement = &placementJSON{
			X: pl.X, Y: pl.Y,
			MinX: pl.MinX, MinY: pl.MinY, MaxX: pl.MaxX, MaxY: pl.MaxY,
			HPWL: pl.HPWL,
		}
		rt := res.Routing
		art.Routing = &routingJSON{
			Cols: rt.Cols, Rows: rt.Rows,
			FinalCapacity: rt.FinalCapacity,
			Negotiated:    rt.Negotiated,
			Paths:         rt.Paths,
			WireLength:    rt.WireLength,
		}
	}
	data, err := json.Marshal(art)
	if err != nil {
		return nil, fmt.Errorf("autoncs: encoding artifact: %w", err)
	}
	return data, nil
}

// Artifact is a decoded compile artifact: the resumable pieces plus the
// config vector they were produced under. Restore turns it back into a
// Result.
type Artifact struct {
	// ConfigVector is the lowercase-hex ConfigVectorHash of the producing
	// configuration. A delta recompile must run under a config with the
	// same vector, or the warm-start data is meaningless.
	ConfigVector string
	// Assignment is the hybrid mapping.
	Assignment *Assignment
	// Placement and Routing are the physical-design artifacts, nil when the
	// producing compile ran with SkipPhysical.
	Placement *Placement
	Routing   *Routing
}

// DecodeArtifact parses an artifact produced by EncodeArtifact.
func DecodeArtifact(data []byte) (*Artifact, error) {
	var art artifactJSON
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&art); err != nil {
		return nil, fmt.Errorf("autoncs: decoding artifact: %w", err)
	}
	if art.Format != artifactFormat {
		return nil, fmt.Errorf("autoncs: artifact format %q, want %q", art.Format, artifactFormat)
	}
	if len(art.ConfigVector) != 64 {
		return nil, fmt.Errorf("autoncs: artifact config vector %q is not a sha256 hex digest", art.ConfigVector)
	}
	a, err := xbar.ReadJSON(bytes.NewReader(art.Assignment))
	if err != nil {
		return nil, fmt.Errorf("autoncs: decoding artifact assignment: %w", err)
	}
	out := &Artifact{ConfigVector: art.ConfigVector, Assignment: a}
	if (art.Placement == nil) != (art.Routing == nil) {
		return nil, fmt.Errorf("autoncs: artifact carries placement xor routing; both or neither required")
	}
	if art.Placement != nil {
		p := art.Placement
		if len(p.X) != len(p.Y) {
			return nil, fmt.Errorf("autoncs: artifact placement has %d x, %d y coordinates", len(p.X), len(p.Y))
		}
		out.Placement = &Placement{
			X: p.X, Y: p.Y,
			MinX: p.MinX, MinY: p.MinY, MaxX: p.MaxX, MaxY: p.MaxY,
			HPWL: p.HPWL,
		}
		r := art.Routing
		if len(r.Paths) != len(r.WireLength) {
			return nil, fmt.Errorf("autoncs: artifact routing has %d paths, %d wire lengths", len(r.Paths), len(r.WireLength))
		}
		if r.Cols <= 0 || r.Rows <= 0 {
			return nil, fmt.Errorf("autoncs: artifact routing grid %dx%d", r.Cols, r.Rows)
		}
		out.Routing = &Routing{
			Cols: r.Cols, Rows: r.Rows,
			FinalCapacity: r.FinalCapacity,
			Negotiated:    r.Negotiated,
			Paths:         r.Paths,
			WireLength:    r.WireLength,
		}
	}
	return out, nil
}

// Restore rebuilds a full Result from the artifact under cfg, which must
// carry the same config vector the artifact was stamped with (the caller
// checks that — Restore only needs cfg for the derivable state). The
// netlist is rebuilt from the assignment, the routed total and congestion
// map from the stored paths, and the cost report re-evaluated; all are
// bit-identical to the original compile's because every one is a
// deterministic function of the stored state.
func (a *Artifact) Restore(cfg Config) (*Result, error) {
	res := &Result{Assignment: a.Assignment, Device: cfg.Device}
	if a.Placement == nil {
		return res, nil
	}
	nl, err := netlist.Build(a.Assignment, cfg.Device)
	if err != nil {
		return nil, fmt.Errorf("autoncs: restoring artifact netlist: %w", err)
	}
	if len(nl.Cells) != len(a.Placement.X) {
		return nil, fmt.Errorf("autoncs: artifact placement covers %d cells, netlist has %d",
			len(a.Placement.X), len(nl.Cells))
	}
	if len(nl.Wires) != len(a.Routing.Paths) {
		return nil, fmt.Errorf("autoncs: artifact routing covers %d wires, netlist has %d",
			len(a.Routing.Paths), len(nl.Wires))
	}
	rt := a.Routing
	rt.Total = 0
	for _, l := range rt.WireLength {
		rt.Total += l
	}
	rt.Usage = make([]int, rt.Cols*rt.Rows)
	for _, path := range rt.Paths {
		for _, b := range path {
			if b < 0 || b >= len(rt.Usage) {
				return nil, fmt.Errorf("autoncs: artifact path bin %d outside %dx%d grid", b, rt.Cols, rt.Rows)
			}
			rt.Usage[b]++
		}
	}
	rep, err := cost.Evaluate(nl, a.Placement, rt, cfg.Device, cfg.Cost)
	if err != nil {
		return nil, fmt.Errorf("autoncs: restoring artifact cost report: %w", err)
	}
	res.Netlist, res.Placement, res.Routing, res.Report = nl, a.Placement, rt, rep
	return res, nil
}
