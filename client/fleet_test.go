package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fleet"
)

// stubDaemon fakes one autoncsd's compile endpoint with a switchable
// answer mode.
type stubDaemon struct {
	hs   *httptest.Server
	url  string
	hits atomic.Int64
	mode atomic.Int32 // 0 ok, 1 queue-full 429, 2 draining 503
}

const (
	stubOK = iota
	stubBusy
	stubDraining
)

func newStubDaemon(t *testing.T) *stubDaemon {
	t.Helper()
	d := &stubDaemon{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/compile", func(w http.ResponseWriter, r *http.Request) {
		d.hits.Add(1)
		switch d.mode.Load() {
		case stubBusy:
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			json.NewEncoder(w).Encode(map[string]string{"error": "queue full"}) //nolint:errcheck
		case stubDraining:
			w.Header().Set("Retry-After", "10")
			w.WriteHeader(http.StatusServiceUnavailable)
			json.NewEncoder(w).Encode(map[string]string{"error": "draining"}) //nolint:errcheck
		default:
			json.NewEncoder(w).Encode(JobStatus{ //nolint:errcheck
				ID: "j-000001", State: StateDone, Cached: true,
			})
		}
	})
	d.hs = httptest.NewServer(mux)
	d.url = d.hs.URL
	t.Cleanup(d.hs.Close)
	return d
}

// newStubFleet stands up three stub daemons and a Fleet over them.
func newStubFleet(t *testing.T, o FleetOptions) (*Fleet, [3]*stubDaemon) {
	t.Helper()
	var ds [3]*stubDaemon
	urls := make([]string, 3)
	for i := range ds {
		ds[i] = newStubDaemon(t)
		urls[i] = ds[i].url
	}
	f, err := NewFleetWith(urls, o)
	if err != nil {
		t.Fatal(err)
	}
	return f, ds
}

// reqOwnedBy finds a request whose ring order starts at daemon idx, with
// daemon wantNext as the first failover target when nextIdx >= 0.
func reqOwnedBy(t *testing.T, f *Fleet, ds [3]*stubDaemon, idx, nextIdx int) CompileRequest {
	t.Helper()
	for seed := int64(1); seed < 2000; seed++ {
		req := CompileRequest{Random: &RandomSpec{N: 40, Sparsity: 0.9, Seed: 2}, Seed: seed, SkipPhysical: true}
		key, err := req.CacheKey()
		if err != nil {
			t.Fatal(err)
		}
		succ := f.ring.Successors(key, 2)
		if succ[0] != normalized(t, ds[idx].url) {
			continue
		}
		if nextIdx >= 0 && succ[1] != normalized(t, ds[nextIdx].url) {
			continue
		}
		return req
	}
	t.Fatal("no seed with the wanted ring order (implausible)")
	return CompileRequest{}
}

func normalized(t *testing.T, raw string) string {
	t.Helper()
	m, err := fleet.NormalizeMember(raw)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFleetRoutesToOwner: the submission lands on the key's ring owner;
// the other daemons never see it.
func TestFleetRoutesToOwner(t *testing.T) {
	f, ds := newStubFleet(t, FleetOptions{})
	req := reqOwnedBy(t, f, ds, 1, -1)

	owner, err := f.Owner(req)
	if err != nil {
		t.Fatal(err)
	}
	if owner != normalized(t, ds[1].url) {
		t.Fatalf("Owner() = %s, want daemon 1", owner)
	}
	st, peer, err := f.Submit(context.Background(), req, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state %s", st.State)
	}
	if peer != owner {
		t.Fatalf("answered by %s, want owner %s", peer, owner)
	}
	if ds[1].hits.Load() != 1 || ds[0].hits.Load() != 0 || ds[2].hits.Load() != 0 {
		t.Fatalf("hit counts: %d/%d/%d, want 0 everywhere but the owner",
			ds[0].hits.Load(), ds[1].hits.Load(), ds[2].hits.Load())
	}
}

// TestFleetFailsOverWhenOwnerDown: a dead owner is routed around — the
// submission succeeds on the ring successor, and once the owner's breaker
// opens, repeats skip the dead daemon without re-dialing it.
func TestFleetFailsOverWhenOwnerDown(t *testing.T) {
	f, ds := newStubFleet(t, FleetOptions{FailureThreshold: 1, RecoveryInterval: time.Hour})
	req := reqOwnedBy(t, f, ds, 0, 1)
	ds[0].hs.Close()

	st, peer, err := f.Submit(context.Background(), req, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("state %s", st.State)
	}
	if peer != normalized(t, ds[1].url) {
		t.Fatalf("answered by %s, want the ring successor", peer)
	}
	if br := f.breakers[normalized(t, ds[0].url)]; br.State() != fleet.BreakerOpen {
		t.Fatalf("dead owner's breaker is %v, want open", br.State())
	}

	if _, _, err := f.Submit(context.Background(), req, true); err != nil {
		t.Fatal(err)
	}
	if got := ds[1].hits.Load(); got != 2 {
		t.Fatalf("successor served %d submissions, want 2", got)
	}
}

// TestFleet429IsFinal: a queue-full owner answers the submission — no
// failover — and the error carries the owner's Retry-After estimate with
// peer attribution.
func TestFleet429IsFinal(t *testing.T) {
	f, ds := newStubFleet(t, FleetOptions{})
	req := reqOwnedBy(t, f, ds, 2, -1)
	ds[2].mode.Store(stubBusy)

	_, err := f.CompileWait(context.Background(), req)
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v, want APIError", err)
	}
	if ae.Status != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", ae.Status)
	}
	if ae.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter %v, want the owner's 7s", ae.RetryAfter)
	}
	if ae.Peer != normalized(t, ds[2].url) {
		t.Fatalf("Peer %q, want the owner", ae.Peer)
	}
	if !ae.IsRetryable() {
		t.Fatal("a 429 must be retryable")
	}
	total := ds[0].hits.Load() + ds[1].hits.Load() + ds[2].hits.Load()
	if total != 1 || ds[2].hits.Load() != 1 {
		t.Fatalf("429 caused failover: hits %d/%d/%d",
			ds[0].hits.Load(), ds[1].hits.Load(), ds[2].hits.Load())
	}
}

// TestFleetDrainingFailsOver: a draining (503) daemon is routed around
// and its breaker charged, so the fleet stops paying it round trips.
func TestFleetDrainingFailsOver(t *testing.T) {
	f, ds := newStubFleet(t, FleetOptions{FailureThreshold: 1, RecoveryInterval: time.Hour})
	req := reqOwnedBy(t, f, ds, 0, 1)
	ds[0].mode.Store(stubDraining)

	st, peer, err := f.Submit(context.Background(), req, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || peer != normalized(t, ds[1].url) {
		t.Fatalf("state %s via %s, want done via the successor", st.State, peer)
	}
	if br := f.breakers[normalized(t, ds[0].url)]; br.State() != fleet.BreakerOpen {
		t.Fatalf("draining daemon's breaker is %v, want open", br.State())
	}
}

// TestFleetLastResortWhenAllDead: with every breaker open the fleet still
// attempts the true owner instead of failing without trying.
func TestFleetLastResortWhenAllDead(t *testing.T) {
	d := newStubDaemon(t)
	f, err := NewFleetWith([]string{d.url}, FleetOptions{FailureThreshold: 1, RecoveryInterval: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	d.hs.Close()
	req := CompileRequest{Random: &RandomSpec{N: 40, Sparsity: 0.9, Seed: 2}, Seed: 1, SkipPhysical: true}

	if _, err := f.CompileWait(context.Background(), req); err == nil {
		t.Fatal("submission to a dead fleet succeeded")
	}
	// Breaker is now open; the next submission must still dial the owner
	// (a transport error, not a synthetic "no live daemon" one).
	_, err = f.CompileWait(context.Background(), req)
	if err == nil {
		t.Fatal("second submission succeeded against a dead daemon")
	}
	var ae *APIError
	if errors.As(err, &ae) {
		t.Fatalf("got APIError %v, want a transport error from the last-resort dial", ae)
	}
}

// TestFleetInvalidRequestFailsFast: a request error is detected locally
// during key derivation — no daemon is contacted.
func TestFleetInvalidRequestFailsFast(t *testing.T) {
	f, ds := newStubFleet(t, FleetOptions{})
	if _, err := f.CompileWait(context.Background(), CompileRequest{}); err == nil {
		t.Fatal("empty request accepted")
	}
	if total := ds[0].hits.Load() + ds[1].hits.Load() + ds[2].hits.Load(); total != 0 {
		t.Fatalf("invalid request reached a daemon (%d hits)", total)
	}
}

// TestRetryAfterHTTPDate: the HTTP-date form of Retry-After — what a
// proxy in front of the fleet may rewrite delta-seconds to — parses into
// a sane duration.
func TestRetryAfterHTTPDate(t *testing.T) {
	hs := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", time.Now().Add(30*time.Second).UTC().Format(http.TimeFormat))
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(map[string]string{"error": "queue full"}) //nolint:errcheck
	}))
	defer hs.Close()
	c := New(hs.URL)
	_, err := c.Metrics(context.Background())
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v, want APIError", err)
	}
	if ae.RetryAfter < 20*time.Second || ae.RetryAfter > 31*time.Second {
		t.Fatalf("RetryAfter %v, want ~30s from the HTTP-date form", ae.RetryAfter)
	}
}
