package client

import "testing"

func specReq(seed int64) CompileRequest {
	return CompileRequest{Random: &RandomSpec{N: 60, Sparsity: 0.9, Seed: 3}, Seed: seed, SkipPhysical: true}
}

// TestSpecKeyDeterminism: materializing the same request twice derives the
// same content address — the property that lets a client route by key and
// hit the daemon's cache for it.
func TestSpecKeyDeterminism(t *testing.T) {
	a, err := specReq(7).Spec(0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := specReq(7).Spec(4096)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key != b.Key {
		t.Fatal("same request derived different keys under different size limits")
	}
	if a.KeyHex() != b.KeyHex() || len(a.KeyHex()) != 64 {
		t.Fatalf("KeyHex mismatch or bad length: %q vs %q", a.KeyHex(), b.KeyHex())
	}
	c, err := specReq(8).Spec(0)
	if err != nil {
		t.Fatal(err)
	}
	if a.Key == c.Key {
		t.Fatal("different seeds derived the same key")
	}
}

// TestSpecSeedZeroNormalizes: seed 0 and the default seed are the same
// compile, so they must share one cache key.
func TestSpecSeedZeroNormalizes(t *testing.T) {
	zero, err := specReq(0).Spec(0)
	if err != nil {
		t.Fatal(err)
	}
	one, err := specReq(1).Spec(0)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Key != one.Key {
		t.Fatal("seed 0 did not normalize to the default seed's key")
	}
}

// TestSpecFullCroDisjointKeyDomain: the baseline flow computes a different
// result from the same inputs, so its key must differ.
func TestSpecFullCroDisjointKeyDomain(t *testing.T) {
	req := specReq(7)
	isc, err := req.Spec(0)
	if err != nil {
		t.Fatal(err)
	}
	req.FullCro = true
	cro, err := req.Spec(0)
	if err != nil {
		t.Fatal(err)
	}
	if isc.Key == cro.Key {
		t.Fatal("FullCro shares the ISC flow's cache key")
	}
	if !cro.FullCro || isc.FullCro {
		t.Fatal("FullCro flag not carried through the spec")
	}
}

// TestSpecValidation covers the request errors, including the difference
// between bounded (server) and unbounded (client routing) materialization.
func TestSpecValidation(t *testing.T) {
	cases := []struct {
		name       string
		req        CompileRequest
		maxNeurons int
		wantErr    bool
	}{
		{"no source", CompileRequest{}, 0, true},
		{"two sources", CompileRequest{Testbench: 1, Random: &RandomSpec{N: 10, Sparsity: 0.5}}, 0, true},
		{"bad net text", CompileRequest{Net: "not a net"}, 0, true},
		{"random n zero", CompileRequest{Random: &RandomSpec{N: 0, Sparsity: 0.5}}, 0, true},
		{"random n over limit", CompileRequest{Random: &RandomSpec{N: 200, Sparsity: 0.5}}, 100, true},
		{"random n over limit unbounded", CompileRequest{Random: &RandomSpec{N: 200, Sparsity: 0.5}}, 0, false},
		{"sparsity out of range", CompileRequest{Random: &RandomSpec{N: 10, Sparsity: 1.5}}, 0, true},
		{"testbench out of range", CompileRequest{Testbench: 99}, 0, true},
		{"valid testbench", CompileRequest{Testbench: 1}, 0, false},
	}
	for _, tc := range cases {
		_, err := tc.req.Spec(tc.maxNeurons)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: err=%v, wantErr=%t", tc.name, err, tc.wantErr)
		}
	}
}

// TestCacheKeyMatchesSpec: the routing shortcut and the full
// materialization agree.
func TestCacheKeyMatchesSpec(t *testing.T) {
	req := specReq(7)
	sp, err := req.Spec(0)
	if err != nil {
		t.Fatal(err)
	}
	key, err := req.CacheKey()
	if err != nil {
		t.Fatal(err)
	}
	if key != sp.Key {
		t.Fatal("CacheKey disagrees with Spec().Key")
	}
	if _, err := (CompileRequest{}).CacheKey(); err == nil {
		t.Fatal("CacheKey accepted an empty request")
	}
}
