// Package client is the Go client of the autoncsd compile service and the
// authoritative definition of its JSON wire contract. The types here are
// shared by the server (internal/server), the remote mode of cmd/autoncs,
// and the end-to-end tests; docs/server.md documents the same contract for
// non-Go callers.
package client

import (
	"encoding/json"
	"fmt"
	"strings"
)

// CompileRequest is the body of POST /v1/compile. Exactly one network
// source (Net, Random, or Testbench) must be set; the remaining fields are
// the flow knobs a remote caller may tune — everything else runs with
// autoncs.DefaultConfig. Zero values mean the same defaults as the
// library: Seed 0 is normalized to 1 (DefaultConfig's seed) so the
// "default compile" of a given network has one cache key, not two.
type CompileRequest struct {
	// Net is the network in the autoncs-net v1 text format.
	Net string `json:"net,omitempty"`
	// Random generates a random symmetric sparse network server-side.
	Random *RandomSpec `json:"random,omitempty"`
	// Testbench selects one of the paper's Hopfield benchmarks (1-3),
	// built server-side with Seed.
	Testbench int `json:"testbench,omitempty"`

	// Seed drives the flow's randomized steps (and testbench training).
	Seed int64 `json:"seed,omitempty"`
	// SelectionQuantile is Config.SelectionQuantile (0 = paper's 0.75,
	// negative disables partial selection).
	SelectionQuantile float64 `json:"selection_quantile,omitempty"`
	// UtilizationThreshold is Config.UtilizationThreshold (0 = auto,
	// negative disables the stopping rule).
	UtilizationThreshold float64 `json:"utilization_threshold,omitempty"`
	// SkipPhysical stops after clustering.
	SkipPhysical bool `json:"skip_physical,omitempty"`
	// FullCro runs the paper's maximum-size-crossbar baseline flow
	// instead of ISC. Baseline results are cached under their own keys.
	FullCro bool `json:"full_cro,omitempty"`

	// Multilevel enables the multilevel clustering engine
	// (Config.Multilevel); the three knobs below refine it and are inert
	// without it. Zero values mean the library defaults.
	Multilevel bool `json:"multilevel,omitempty"`
	// MultilevelCutoff is Config.MultilevelCutoff (0 = default).
	MultilevelCutoff int `json:"multilevel_cutoff,omitempty"`
	// CoarsenRatio is Config.CoarsenRatio (0 = default).
	CoarsenRatio float64 `json:"coarsen_ratio,omitempty"`
	// MultilevelLevels is Config.MultilevelLevels (0 = adaptive).
	MultilevelLevels int `json:"multilevel_levels,omitempty"`

	// LegacyRouter selects the capacity-relaxation router instead of the
	// default negotiated-congestion engine (Config.Route.Negotiate=false).
	LegacyRouter bool `json:"legacy_router,omitempty"`

	// Base asks for an incremental delta recompile: the 64-char hex result
	// key of a previous compile of a nearby network (the X-Autoncs-Key of
	// its result). The daemon restores that compile's cached artifact and
	// recompiles only the edit's impact region; if the edit ratio exceeds
	// the daemon's cutoff it silently falls back to a full compile (visible
	// as the response Key being the plain content address instead of the
	// delta-domain one). The base compile must have run under the same
	// config vector — a mismatch is a 409 with code "base_config_mismatch".
	// The query parameter ?base= is an equivalent spelling. Cannot combine
	// with FullCro.
	Base string `json:"base,omitempty"`

	// Priority is the scheduling class: PriorityInteractive jumps the
	// queue ahead of PriorityBatch work. Empty defaults to interactive for
	// waited submissions (?wait=1) and batch for fire-and-forget ones.
	// Priority affects only scheduling order, never the result bytes — it
	// is not part of the compile's cache key, so an interactive and a
	// batch submission of the same network coalesce onto one compile.
	Priority string `json:"priority,omitempty"`
}

// The two job priorities. Interactive work is drained ahead of batch work
// whenever both are queued; neither is ever starved.
const (
	PriorityInteractive = "interactive"
	PriorityBatch       = "batch"
)

// RandomSpec describes a server-side generated random sparse network.
type RandomSpec struct {
	N        int     `json:"n"`
	Sparsity float64 `json:"sparsity"`
	Seed     int64   `json:"seed"`
}

// Job states, in lifecycle order.
const (
	StateQueued    = "queued"
	StateRunning   = "running"
	StateDone      = "done"
	StateFailed    = "failed"
	StateCancelled = "cancelled"
)

// JobStatus is the body of GET /v1/jobs/{id} and of the POST /v1/compile
// response.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Key is the content address of the compile (lowercase hex); two jobs
	// with the same key are the same computation.
	Key string `json:"key"`
	// BaseKey is the result key of the base compile a delta recompile
	// edited, set exactly when the job ran (or will run) as a delta. A
	// ?base= submission that fell back to a full compile has no BaseKey —
	// that is how a client detects the fallback.
	BaseKey string `json:"base_key,omitempty"`
	// Cached reports that the job was answered from the result cache
	// without running the flow.
	Cached bool `json:"cached"`
	// Coalesced reports that the job attached to another submission's
	// in-flight compile of the same key instead of queueing its own; the
	// result bytes are identical either way.
	Coalesced bool `json:"coalesced,omitempty"`
	// Peer is the base URL of the fleet peer whose cache answered this job,
	// set exactly when the payload was fetched from a remote member's cache
	// (Cached is also true then). Empty for local cache hits and fresh
	// compiles.
	Peer string `json:"peer,omitempty"`
	// Priority is the scheduling class the job ran under.
	Priority string `json:"priority,omitempty"`
	// Error is set when State is failed or cancelled.
	Error string `json:"error,omitempty"`

	SubmittedAt string `json:"submitted_at"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// ElapsedSeconds is the compile wall time (0 for cache hits).
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
	// StageTimes breaks ElapsedSeconds down by pipeline stage.
	StageTimes map[string]float64 `json:"stage_times_seconds,omitempty"`

	// ResultURL points at GET /v1/results/{id} once State is done.
	ResultURL string `json:"result_url,omitempty"`
	// Result is the full result payload, embedded when the request asked
	// to wait (POST /v1/compile?wait=1) and the job finished.
	Result json.RawMessage `json:"result,omitempty"`
}

// Result is the body of GET /v1/results/{id}: the deterministic portion of
// an autoncs compile. It deliberately carries no wall times — the payload
// is the unit of content-addressed caching, so its bytes must be a pure
// function of the compile inputs (timings live on JobStatus instead).
type Result struct {
	Key         string `json:"key"`
	Neurons     int    `json:"neurons"`
	Connections int    `json:"connections"`

	Crossbars      int     `json:"crossbars"`
	Synapses       int     `json:"synapses"`
	OutlierRatio   float64 `json:"outlier_ratio"`
	AvgUtilization float64 `json:"avg_utilization"`
	AvgPreference  float64 `json:"avg_preference"`
	ISCIterations  int     `json:"isc_iterations"`
	// SizeHistogram maps crossbar size (as a decimal string, JSON object
	// keys being strings) to instance count.
	SizeHistogram map[string]int `json:"size_histogram,omitempty"`

	// Report is the physical-design cost report (absent with
	// skip_physical).
	Report *Report `json:"report,omitempty"`

	// Assignment is the full hybrid mapping in the xbar JSON schema (the
	// same format cmd/autoncs -dump writes).
	Assignment json.RawMessage `json:"assignment"`
}

// Report mirrors autoncs.CostReport on the wire.
type Report struct {
	Wirelength float64 `json:"wirelength_um"`
	Area       float64 `json:"area_um2"`
	AvgDelay   float64 `json:"avg_delay_ns"`
	MaxDelay   float64 `json:"max_delay_ns"`
	Cost       float64 `json:"cost"`
	Wires      int     `json:"wires"`
}

// Metrics is the body of GET /metrics: the serving counters plus the
// aggregated internal/obs flow metrics.
//
// Counter semantics: JobsAccepted counts every non-rejected submission;
// within it, JobsCompleted counts compiles run to done (one per compile,
// however many submissions shared it), JobsCoalesced counts submissions
// answered by attaching to another submission's in-flight compile, and
// JobsCacheHits counts submissions answered from the result cache. So
// JobsCompleted is the daemon's actual compile throughput, and
// JobsCoalesced + JobsCacheHits is the work deduplication saved.
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Draining      bool    `json:"draining"`

	WorkerSlots   int `json:"worker_slots"`
	QueueCapacity int `json:"queue_capacity"`
	// QueueDepth counts admitted leader jobs waiting for a worker slot,
	// across both priorities; QueueInteractive/QueueBatch split it.
	QueueDepth       int `json:"queue_depth"`
	QueueInteractive int `json:"queue_interactive"`
	QueueBatch       int `json:"queue_batch"`
	InFlight         int `json:"in_flight"`
	// Flights counts the entries of the single-flight table: compiles
	// queued or running that new identical submissions would attach to.
	Flights int `json:"flights"`
	// AdmitRounds counts admission batches decided (each one lock
	// acquisition covering up to -batch-size submissions).
	AdmitRounds int64 `json:"admit_rounds"`

	JobsAccepted  int64 `json:"jobs_accepted"`
	JobsCompleted int64 `json:"jobs_completed"`
	JobsFailed    int64 `json:"jobs_failed"`
	JobsCancelled int64 `json:"jobs_cancelled"`
	JobsRejected  int64 `json:"jobs_rejected"`
	JobsCacheHits int64 `json:"jobs_cache_hits"`
	JobsCoalesced int64 `json:"jobs_coalesced"`

	CacheHits    int64 `json:"cache_hits"`
	CacheMisses  int64 `json:"cache_misses"`
	CacheEntries int   `json:"cache_entries"`

	// Fleet counters, all zero on a daemon running without -peers. Peers is
	// the configured membership including this daemon; PeersAlive is the
	// members currently in the ring (self plus every remote whose circuit
	// breaker is closed). PeerHits counts local misses answered from a
	// peer's cache, PeerMisses healthy-peer "not cached" answers, and
	// PeerErrors lookups that failed after their retries.
	Peers      int   `json:"peers,omitempty"`
	PeersAlive int   `json:"peers_alive,omitempty"`
	PeerHits   int64 `json:"peer_hits,omitempty"`
	PeerMisses int64 `json:"peer_misses,omitempty"`
	PeerErrors int64 `json:"peer_errors,omitempty"`

	// RetryAfterSeconds is the daemon's current Retry-After estimate — the
	// value a 429 rejection would carry right now, derived from the last
	// terminal compile's duration. Shard-aware clients use it to surface
	// the owner's backpressure estimate instead of a forwarder's guess.
	RetryAfterSeconds float64 `json:"retry_after_seconds"`

	// Compiles and StageSeconds aggregate the flow's own observer stream
	// (internal/obs) across every job the daemon has run.
	Compiles     int                `json:"compiles"`
	StageSeconds map[string]float64 `json:"stage_seconds"`

	// RequestRecords counts the per-request timing records emitted (one
	// per terminal job); LastRequest is the most recent one.
	RequestRecords int64          `json:"request_records"`
	LastRequest    *RequestTiming `json:"last_request,omitempty"`

	// DeltaCompiles counts compiles run as incremental deltas (?base=
	// submissions under the edit-ratio cutoff); DeltaFallbacks counts
	// ?base= submissions whose edit ratio exceeded the cutoff and were
	// recompiled in full instead. LastDelta is the per-stage reuse
	// breakdown of the most recent delta recompile.
	DeltaCompiles  int64         `json:"delta_compiles,omitempty"`
	DeltaFallbacks int64         `json:"delta_fallbacks,omitempty"`
	LastDelta      *DeltaSummary `json:"last_delta,omitempty"`
}

// DeltaSummary mirrors obs.DeltaStats on the wire: how much of the base
// compile one delta recompile reused, per stage. Every counter is
// deterministic for any worker count.
type DeltaSummary struct {
	Edits          int     `json:"edits"`
	AddedEdges     int     `json:"added_edges"`
	RemovedEdges   int     `json:"removed_edges"`
	TouchedNeurons int     `json:"touched_neurons"`
	EditRatio      float64 `json:"edit_ratio"`

	BaseCrossbars    int     `json:"base_crossbars"`
	KeptCrossbars    int     `json:"kept_crossbars"`
	DirtyCrossbars   int     `json:"dirty_crossbars"`
	NewCrossbars     int     `json:"new_crossbars"`
	ResidualConns    int     `json:"residual_conns"`
	ClusterReuseFrac float64 `json:"cluster_reuse_frac"`

	Cells          int     `json:"cells"`
	SeededCells    int     `json:"seeded_cells"`
	PlaceReuseFrac float64 `json:"place_reuse_frac"`

	Wires          int     `json:"wires"`
	ReusedWires    int     `json:"reused_wires"`
	ReroutedWires  int     `json:"rerouted_wires"`
	RouteReuseFrac float64 `json:"route_reuse_frac"`
	FullRoute      bool    `json:"full_route,omitempty"`
}

// RequestTiming is one flat per-request latency record: where a job's wall
// time went (admission wait, queue wait, compile run) and how it was
// answered (fresh compile, coalesced, or cache hit). Every field is a
// scalar so a stream of these dumps straight into CSV — see CSVRecord —
// for fleet-level serving-latency analysis.
type RequestTiming struct {
	Job       string `json:"job"`
	Key       string `json:"key"`
	Priority  string `json:"priority"`
	Coalesced bool   `json:"coalesced"`
	CacheHit  bool   `json:"cache_hit"`
	State     string `json:"state"`

	SubmittedAt      string  `json:"submitted_at"`
	AdmitWaitSeconds float64 `json:"admit_wait_seconds"`
	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	RunSeconds       float64 `json:"run_seconds"`
	TotalSeconds     float64 `json:"total_seconds"`
}

// RequestTimingCSVHeader returns the CSV header row matching CSVRecord's
// column order.
func RequestTimingCSVHeader() string {
	return "job,key,priority,coalesced,cache_hit,state,submitted_at,admit_wait_seconds,queue_wait_seconds,run_seconds,total_seconds"
}

// CSVRecord renders the record as one CSV row. No field can contain a
// comma, a quote, or a newline (ids, hex keys, enum strings, RFC 3339
// timestamps, numbers), so no quoting is needed.
func (t RequestTiming) CSVRecord() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s,%s,%s,%t,%t,%s,%s,%.6f,%.6f,%.6f,%.6f",
		t.Job, t.Key, t.Priority, t.Coalesced, t.CacheHit, t.State,
		t.SubmittedAt, t.AdmitWaitSeconds, t.QueueWaitSeconds, t.RunSeconds, t.TotalSeconds)
	return b.String()
}

// Health is the body of GET /healthz.
type Health struct {
	Status        string  `json:"status"` // "ok" or "draining"
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// errorBody is the JSON envelope of every non-2xx response. Code is a
// stable machine-readable discriminator, set on errors a client is
// expected to branch on (see the Code* constants); Error is the
// human-readable message.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// Stable error codes (errorBody.Code / APIError.Code). HTTP status codes
// alone are ambiguous — a 409 may mean "job not done" or "incompatible
// delta base" — so errors a client branches on carry one of these.
const (
	// CodeBaseArtifactMissing: the ?base= key has no cached artifact on the
	// daemon (the base compile never ran here, or its artifact was
	// evicted). Recover by recompiling the base in full. HTTP 404.
	CodeBaseArtifactMissing = "base_artifact_missing"
	// CodeBaseConfigMismatch: the base compile ran under a different config
	// vector than the delta request, so its artifact cannot seed this
	// compile. Re-submit with the base's configuration or recompile in
	// full. HTTP 409.
	CodeBaseConfigMismatch = "base_config_mismatch"
	// CodeBaseSizeMismatch: the edited network's neuron count differs from
	// the base compile's — resizing edits need a full compile. HTTP 409.
	CodeBaseSizeMismatch = "base_size_mismatch"
)
