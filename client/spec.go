package client

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro"
	"repro/internal/graph"
)

// Spec is a materialized CompileRequest: the network the request
// describes, the full flow configuration, and the content address the
// service caches the result under. It is the single authority on how a
// wire request maps onto a compile — the server builds its job specs
// through it, and the shard-aware Fleet client routes submissions by the
// same Key, so client-side routing and server-side caching can never
// derive different addresses for the same request.
type Spec struct {
	// Net is the materialized network (parsed, generated, or built from a
	// testbench, exactly as the daemon would).
	Net *autoncs.Network
	// Config is the effective flow configuration, defaults filled.
	Config autoncs.Config
	// FullCro selects the maximum-size-crossbar baseline flow.
	FullCro bool
	// Delta reports that the request asks for an incremental recompile
	// against the compile whose result key is Base; Key is then the
	// delta-domain address (DeltaKey), never the plain CanonicalHash.
	Delta bool
	// Base is the base compile's result key, meaningful when Delta is set.
	Base [32]byte
	// Key is the compile's content address (autoncs.CanonicalHash, pushed
	// into the FullCro key domain when FullCro is set and into the delta
	// domain when Base is set).
	Key [32]byte
}

// KeyHex renders the content address as lowercase hex — the form used in
// URLs, the X-Autoncs-Key header, and on-disk cache filenames.
func (s *Spec) KeyHex() string { return hex.EncodeToString(s.Key[:]) }

// fullCroKeyDomain derives the disjoint key domain of the FullCro
// baseline flow: same inputs, different computation, so the two results
// must never share a cache entry.
const fullCroKeyDomain = "autoncs-fullcro/v1\n"

// deltaKeyDomain derives the key domain of delta recompiles. A delta's
// result is a function of the base compile it edited AND the edited
// request, and it is not bit-identical to a full compile of the same
// network — so it must never be cached under the plain CanonicalHash.
const deltaKeyDomain = "autoncs-delta/v1\n"

// artifactKeyDomain derives the cache address a compile's resumable
// artifact is stored under, from the compile's own result key. Artifacts
// share the content-addressed store with result payloads, so they need a
// domain of their own.
const artifactKeyDomain = "autoncs-artifact/v1\n"

// DeltaKey derives the content address of a delta recompile: the request's
// plain key pushed into the delta domain together with the base compile's
// result key. Shard-aware clients route delta submissions by this key, and
// the daemon caches delta results under it, so the two can never disagree.
func DeltaKey(base, key [32]byte) [32]byte {
	buf := make([]byte, 0, len(deltaKeyDomain)+64)
	buf = append(buf, deltaKeyDomain...)
	buf = append(buf, base[:]...)
	buf = append(buf, key[:]...)
	return sha256.Sum256(buf)
}

// ArtifactKey derives the cache address of the resumable artifact of the
// compile with the given result key.
func ArtifactKey(key [32]byte) [32]byte {
	return sha256.Sum256(append([]byte(artifactKeyDomain), key[:]...))
}

// Spec materializes the request. maxNeurons bounds the network size a
// caller is willing to build (the daemon passes its service limit); 0
// means unbounded — the Fleet client routes requests it has no reason to
// police. Every failure is a request error (the daemon answers it 400).
func (r CompileRequest) Spec(maxNeurons int) (*Spec, error) {
	sources := 0
	for _, set := range []bool{r.Net != "", r.Random != nil, r.Testbench != 0} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("exactly one of net, random, testbench must be set (got %d)", sources)
	}

	seed := r.Seed
	if seed == 0 {
		seed = autoncs.DefaultConfig().Seed
	}

	var net *autoncs.Network
	switch {
	case r.Net != "":
		n, err := graph.Read(strings.NewReader(r.Net))
		if err != nil {
			return nil, fmt.Errorf("parsing net: %v", err)
		}
		net = n
	case r.Random != nil:
		rs := *r.Random
		if maxNeurons > 0 && (rs.N <= 0 || rs.N > maxNeurons) {
			return nil, fmt.Errorf("random.n %d out of range 1..%d", rs.N, maxNeurons)
		}
		if rs.N <= 0 {
			return nil, fmt.Errorf("random.n %d must be positive", rs.N)
		}
		if rs.Sparsity < 0 || rs.Sparsity > 1 {
			return nil, fmt.Errorf("random.sparsity %g out of [0,1]", rs.Sparsity)
		}
		net = autoncs.RandomSparseNetwork(rs.N, rs.Sparsity, rs.Seed)
	default:
		tbs := autoncs.Testbenches()
		if r.Testbench < 1 || r.Testbench > len(tbs) {
			return nil, fmt.Errorf("testbench %d out of range 1..%d", r.Testbench, len(tbs))
		}
		net = autoncs.BuildTestbench(tbs[r.Testbench-1], seed)
	}
	if maxNeurons > 0 && net.N() > maxNeurons {
		return nil, fmt.Errorf("network with %d neurons exceeds the %d-neuron service limit", net.N(), maxNeurons)
	}

	cfg := autoncs.DefaultConfig()
	cfg.Seed = seed
	cfg.SelectionQuantile = r.SelectionQuantile
	cfg.UtilizationThreshold = r.UtilizationThreshold
	cfg.SkipPhysical = r.SkipPhysical
	cfg.Multilevel = r.Multilevel
	cfg.MultilevelCutoff = r.MultilevelCutoff
	cfg.CoarsenRatio = r.CoarsenRatio
	cfg.MultilevelLevels = r.MultilevelLevels
	if r.LegacyRouter {
		cfg.Route.Negotiate = false
	}

	key, err := autoncs.CanonicalHash(net, cfg)
	if err != nil {
		return nil, err
	}
	if r.FullCro {
		key = sha256.Sum256(append([]byte(fullCroKeyDomain), key[:]...))
	}
	sp := &Spec{Net: net, Config: cfg, FullCro: r.FullCro, Key: key}
	if r.Base != "" {
		if r.FullCro {
			return nil, fmt.Errorf("base cannot combine with full_cro (the baseline flow has no incremental form)")
		}
		raw, err := hex.DecodeString(r.Base)
		if err != nil || len(raw) != 32 || r.Base != strings.ToLower(r.Base) {
			return nil, fmt.Errorf("base %q is not a 64-char lowercase-hex result key", r.Base)
		}
		sp.Delta = true
		copy(sp.Base[:], raw)
		sp.Key = DeltaKey(sp.Base, key)
	}
	return sp, nil
}

// Key derives the request's content address without keeping the
// materialized network around — the routing form of Spec.
func (r CompileRequest) CacheKey() ([32]byte, error) {
	sp, err := r.Spec(0)
	if err != nil {
		return [32]byte{}, err
	}
	return sp.Key, nil
}
