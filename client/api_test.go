package client

import (
	"strings"
	"testing"
)

// TestRequestTimingCSV: the header and a record agree on column count, and
// no field smuggles in a separator (the schema promises quote-free CSV).
func TestRequestTimingCSV(t *testing.T) {
	rec := RequestTiming{
		Job:              "j-000042",
		Key:              strings.Repeat("ab", 32),
		Priority:         PriorityInteractive,
		Coalesced:        true,
		CacheHit:         false,
		State:            StateDone,
		SubmittedAt:      "2026-08-08T12:00:00.000000001Z",
		AdmitWaitSeconds: 0.002,
		QueueWaitSeconds: 0.5,
		RunSeconds:       1.25,
		TotalSeconds:     1.752,
	}
	header := RequestTimingCSVHeader()
	row := rec.CSVRecord()
	hc, rc := strings.Count(header, ",")+1, strings.Count(row, ",")+1
	if hc != rc {
		t.Fatalf("header has %d columns, record has %d\n%s\n%s", hc, rc, header, row)
	}
	cols := strings.Split(row, ",")
	if cols[0] != rec.Job || cols[1] != rec.Key || cols[2] != PriorityInteractive {
		t.Fatalf("leading columns wrong: %v", cols[:3])
	}
	if cols[3] != "true" || cols[4] != "false" || cols[5] != StateDone {
		t.Fatalf("flag/state columns wrong: %v", cols[3:6])
	}
	for _, bad := range []string{"\"", "\n"} {
		if strings.Contains(row, bad) {
			t.Fatalf("record contains %q: %s", bad, row)
		}
	}
}
