package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client talks to one autoncsd instance. The zero value is not usable; use
// New.
type Client struct {
	base string
	http *http.Client
}

// New returns a client for the service at baseURL (e.g.
// "http://127.0.0.1:8080"). A trailing slash is tolerated.
func New(baseURL string) *Client {
	return &Client{base: strings.TrimRight(baseURL, "/"), http: &http.Client{}}
}

// NewWith returns a client using a caller-supplied http.Client (custom
// timeouts, transports, or httptest clients).
func NewWith(baseURL string, hc *http.Client) *Client {
	c := New(baseURL)
	if hc != nil {
		c.http = hc
	}
	return c
}

// APIError is a non-2xx response from the service.
type APIError struct {
	Status  int    // HTTP status code
	Message string // the server's error field (or raw body)
	// Code is the stable machine-readable error discriminator (one of the
	// Code* constants), empty on errors the status code fully describes.
	Code       string
	RetryAfter time.Duration // parsed Retry-After on 429/503, else 0
	// Peer is the base URL of the daemon that produced this error, set by
	// fleet routing (empty on a single-daemon Client). On a 429 it
	// attributes the RetryAfter estimate to the owning shard — the number
	// is the owner's own backlog estimate, not a forwarder's guess.
	Peer string
}

func (e *APIError) Error() string {
	if e.Peer != "" {
		return fmt.Sprintf("autoncsd %s: %d %s: %s", e.Peer, e.Status, http.StatusText(e.Status), e.Message)
	}
	return fmt.Sprintf("autoncsd: %d %s: %s", e.Status, http.StatusText(e.Status), e.Message)
}

// IsRetryable reports whether the request may be retried later (the queue
// was full or the daemon is draining).
func (e *APIError) IsRetryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status == http.StatusServiceUnavailable
}

// Compile submits a compile request and returns immediately with the job's
// status — done already when the result was served from the cache, queued
// otherwise.
func (c *Client) Compile(ctx context.Context, req CompileRequest) (*JobStatus, error) {
	return c.post(ctx, "/v1/compile", req)
}

// CompileWait submits a compile request and blocks until the job finishes;
// the returned status embeds the result payload. Cancelling ctx aborts the
// job server-side (the disconnect propagates into the flow's
// context-cancellation plumbing).
func (c *Client) CompileWait(ctx context.Context, req CompileRequest) (*JobStatus, error) {
	return c.post(ctx, "/v1/compile?wait=1", req)
}

// Job fetches the current status of a job.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.get(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// JobWait blocks server-side until the job reaches a terminal state and
// returns it. Unlike CompileWait, disconnecting does not cancel the job —
// this is a passive watch, safe to use from multiple observers at once.
func (c *Client) JobWait(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.get(ctx, "/v1/jobs/"+id+"?wait=1", &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Wait polls a job until it leaves the queued/running states.
func (c *Client) Wait(ctx context.Context, id string, poll time.Duration) (*JobStatus, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State != StateQueued && st.State != StateRunning {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-t.C:
		}
	}
}

// Cancel aborts a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*JobStatus, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := c.do(req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Result fetches and decodes a finished job's result.
func (c *Client) Result(ctx context.Context, id string) (*Result, error) {
	raw, err := c.ResultBytes(ctx, id)
	if err != nil {
		return nil, err
	}
	var r Result
	if err := json.Unmarshal(raw, &r); err != nil {
		return nil, fmt.Errorf("autoncsd: decoding result: %w", err)
	}
	return &r, nil
}

// ResultBytes fetches a finished job's result payload verbatim. Because
// the payload is the unit of content-addressed caching, two jobs with the
// same key return bit-identical bytes — the e2e tests assert exactly that.
func (c *Client) ResultBytes(ctx context.Context, id string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/results/"+id, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, body)
	}
	return body, nil
}

// Metrics fetches the serving counters.
func (c *Client) Metrics(ctx context.Context) (*Metrics, error) {
	var m Metrics
	if err := c.get(ctx, "/metrics", &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// Health probes GET /healthz. A draining daemon answers 503 with a valid
// body, so Health returns the parsed body alongside a nil error for both
// "ok" and "draining".
func (c *Client) Health(ctx context.Context) (*Health, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/healthz", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return nil, err
	}
	var h Health
	if json.Unmarshal(body, &h) == nil && h.Status != "" {
		return &h, nil
	}
	return nil, apiError(resp, body)
}

// maxBody bounds every response read; results for large networks run to a
// few MB, far under this.
const maxBody = 64 << 20

func (c *Client) post(ctx context.Context, path string, body CompileRequest) (*JobStatus, error) {
	data, err := json.Marshal(body)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+path, bytes.NewReader(data))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	var st JobStatus
	if err := c.do(req, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

func (c *Client) get(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *Client) do(req *http.Request, out any) error {
	resp, err := c.http.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxBody))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiError(resp, body)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(body, out); err != nil {
		return fmt.Errorf("autoncsd: decoding %s response: %w", req.URL.Path, err)
	}
	return nil
}

func apiError(resp *http.Response, body []byte) error {
	e := &APIError{Status: resp.StatusCode}
	var eb errorBody
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		e.Message = eb.Error
		e.Code = eb.Code
	} else {
		e.Message = strings.TrimSpace(string(body))
	}
	// Retry-After comes in two RFC 9110 forms: delta-seconds (what
	// autoncsd emits) and an HTTP-date (what proxies in front of a fleet
	// may rewrite it to). Parse both so the estimate survives either path.
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, err := strconv.Atoi(s); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		} else if at, err := http.ParseTime(s); err == nil {
			if d := time.Until(at); d > 0 {
				e.RetryAfter = d
			}
		}
	}
	return e
}
