package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/fleet"
)

// Fleet is a shard-aware client over a static autoncsd fleet: it derives
// each request's content address locally (CompileRequest.Spec — the same
// derivation the daemons cache under), routes the submission to the key's
// consistent-hash owner, and fails over along the ring's successor order
// when the owner is unreachable. Routing to the owner is what makes the
// fleet's peer caches effective — the owner either has the payload, is
// already compiling it (the submission coalesces), or compiles and caches
// it where every future lookup for that key will land.
//
// Failure semantics per attempt:
//   - transport error (refused, timeout): the peer's circuit breaker is
//     charged and the next ring node is tried;
//   - 503 (draining): same — the daemon is going away, route around it;
//   - 429 (queue full): returned immediately with the owner's own
//     Retry-After estimate. Failing over would start a duplicate compile
//     on a non-owner and defeat coalescing; backing off and resubmitting
//     to the same owner is the productive move.
//   - any other API error (400, 404, ...): returned immediately — it
//     would fail identically everywhere.
//
// A Fleet is safe for concurrent use.
type Fleet struct {
	ring     *fleet.Ring
	clients  map[string]*Client
	breakers map[string]*fleet.Breaker
}

// FleetOptions tunes a Fleet beyond its peer list.
type FleetOptions struct {
	// HTTP is the http.Client shared by every per-peer Client; nil uses
	// each Client's default.
	HTTP *http.Client
	// FailureThreshold consecutive failures take a peer out of the
	// rotation; 0 means the fleet default (3).
	FailureThreshold int
	// RecoveryInterval is how long a failed peer sits out before a trial
	// submission may readmit it; 0 means the fleet default (5s).
	RecoveryInterval time.Duration
}

// NewFleet builds a shard-aware client over the given daemon base URLs.
// Order and duplicate spellings do not matter; at least one peer is
// required.
func NewFleet(peers []string) (*Fleet, error) {
	return NewFleetWith(peers, FleetOptions{})
}

// NewFleetWith is NewFleet with explicit options.
func NewFleetWith(peers []string, o FleetOptions) (*Fleet, error) {
	ring, err := fleet.NewRing(peers, 0)
	if err != nil {
		return nil, err
	}
	f := &Fleet{
		ring:     ring,
		clients:  make(map[string]*Client, ring.Size()),
		breakers: make(map[string]*fleet.Breaker, ring.Size()),
	}
	for _, m := range ring.Members() {
		f.clients[m] = NewWith(m, o.HTTP)
		f.breakers[m] = fleet.NewBreaker(o.FailureThreshold, o.RecoveryInterval)
	}
	return f, nil
}

// Members returns the normalized fleet membership.
func (f *Fleet) Members() []string { return f.ring.Members() }

// Owner returns the base URL of the daemon that owns the request's
// content address — where a compile of it will be cached.
func (f *Fleet) Owner(req CompileRequest) (string, error) {
	key, err := req.CacheKey()
	if err != nil {
		return "", err
	}
	return f.ring.Owner(key), nil
}

// ClientFor returns a Client bound to the first live daemon in the
// request's ring order (normally its owner), for follow-up calls — job
// polling, result fetches — that must land on the daemon holding the job
// record. The second result is that daemon's base URL.
func (f *Fleet) ClientFor(req CompileRequest) (*Client, string, error) {
	key, err := req.CacheKey()
	if err != nil {
		return nil, "", err
	}
	for _, m := range f.ring.Successors(key, 0) {
		if f.breakers[m].Allow() {
			return f.clients[m], m, nil
		}
	}
	// Everything looks dead; hand back the true owner rather than nothing.
	m := f.ring.Owner(key)
	return f.clients[m], m, nil
}

// Compile routes a fire-and-forget submission to the key's owner (with
// ring failover) and returns the job status the daemon answered with. Use
// ClientFor to reach the same daemon for follow-up polling.
func (f *Fleet) Compile(ctx context.Context, req CompileRequest) (*JobStatus, error) {
	st, _, err := f.submit(ctx, req, false)
	return st, err
}

// CompileWait routes a submission to the key's owner (with ring failover)
// and blocks until the job finishes; the returned status embeds the
// result payload.
func (f *Fleet) CompileWait(ctx context.Context, req CompileRequest) (*JobStatus, error) {
	st, _, err := f.submit(ctx, req, true)
	return st, err
}

// Submit is Compile/CompileWait with the answering daemon's base URL
// returned alongside the status.
func (f *Fleet) Submit(ctx context.Context, req CompileRequest, wait bool) (*JobStatus, string, error) {
	return f.submit(ctx, req, wait)
}

func (f *Fleet) submit(ctx context.Context, req CompileRequest, wait bool) (*JobStatus, string, error) {
	key, err := req.CacheKey()
	if err != nil {
		return nil, "", err
	}
	var lastErr error
	lastPeer := ""
	tried := 0
	for _, m := range f.ring.Successors(key, 0) {
		if !f.breakers[m].Allow() {
			continue
		}
		tried++
		st, final, err := f.try(ctx, m, req, wait)
		if final {
			return st, m, err
		}
		lastErr, lastPeer = err, m
		if ctx.Err() != nil {
			break
		}
	}
	if tried == 0 && ctx.Err() == nil {
		// Every breaker is sitting out its recovery interval. Refusing to
		// submit anywhere would turn a transient fleet outage into a hard
		// client error, so make one last-resort attempt at the true owner.
		m := f.ring.Owner(key)
		st, _, err := f.try(ctx, m, req, wait)
		return st, m, err
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("fleet: no live daemon for key %x", key[:8])
	}
	return nil, lastPeer, lastErr
}

// try runs one submission attempt against member m and classifies the
// outcome: final=true means the result (success or error) is the
// submission's answer; final=false means route to the next ring node.
func (f *Fleet) try(ctx context.Context, m string, req CompileRequest, wait bool) (*JobStatus, bool, error) {
	c := f.clients[m]
	var st *JobStatus
	var err error
	if wait {
		st, err = c.CompileWait(ctx, req)
	} else {
		st, err = c.Compile(ctx, req)
	}
	if err == nil {
		f.breakers[m].Success()
		return st, true, nil
	}
	var ae *APIError
	if errors.As(err, &ae) {
		ae.Peer = m
		if ae.Status == http.StatusServiceUnavailable {
			// Draining: the daemon answered, but it is on its way out.
			// Charge the breaker so subsequent submissions route around it
			// without paying the round trip.
			f.breakers[m].Failure()
			return nil, false, err
		}
		// The daemon is healthy; the answer — including a 429 carrying the
		// owner's own Retry-After estimate — is authoritative.
		f.breakers[m].Success()
		return nil, true, err
	}
	if ctx.Err() != nil {
		// The caller gave up; that says nothing about the peer's health.
		return nil, true, err
	}
	f.breakers[m].Failure()
	return nil, false, err
}
