// Defect-tolerance scenario: memristor crossbars suffer stuck-at cell
// faults, the yield reality behind the paper's reliability constraint
// (Section 2.1). This example compiles a Hopfield testbench, injects
// stuck-at defects at increasing rates, repairs the mapping (demoting
// affected connections to discrete synapses so the implementation stays
// functionally exact), and shows the hardware cost of yield — then runs
// the repaired machine through the circuit-level simulator to verify it
// still recognizes its stored patterns.
//
//	go run ./examples/defects
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
	"repro/internal/core"
	"repro/internal/ncsim"
	"repro/internal/xbar"
)

func main() {
	tb := autoncs.Testbench{ID: 1, M: 6, N: 120, Sparsity: 0.92}
	cm, net, patterns := tb.Build(11)
	fmt.Printf("network: %d neurons, %d connections\n", cm.N(), cm.NNZ())

	lib := autoncs.DefaultLibrary()
	res, err := core.ISC(cm, core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: xbar.FullCro(cm, lib).AvgUtilization(),
		Rand:                 rand.New(rand.NewSource(1)),
	})
	if err != nil {
		log.Fatal(err)
	}
	base := res.Assignment
	fmt.Printf("defect-free mapping: %d crossbars, %d synapses\n\n",
		len(base.Crossbars), len(base.Synapses))

	fmt.Println("defect rate | demoted connections | rows retired | synapses total")
	for _, rate := range []float64{0, 0.005, 0.01, 0.02, 0.05} {
		repaired, stats := xbar.Repair(base, rate, 0.3, rand.New(rand.NewSource(7)))
		if err := repaired.Validate(cm); err != nil {
			log.Fatalf("repair broke the mapping at rate %g: %v", rate, err)
		}
		fmt.Printf("   %5.1f%%   |        %4d         |     %3d      |     %4d\n",
			100*rate, stats.TotalDemotions, stats.RowsRetired, len(repaired.Synapses))
	}

	// Functional check: the repaired machine at 2% defects still recalls.
	repaired, _ := xbar.Repair(base, 0.02, 0.3, rand.New(rand.NewSource(7)))
	machine, err := ncsim.Build(repaired, net, ncsim.Options{Ideal: true, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	rate, err := machine.RecognitionRate(patterns, 0.05, 0.9, rand.New(rand.NewSource(4)))
	if err != nil {
		log.Fatal(err)
	}
	swRate := net.RecognitionRate(patterns, 0.05, 0.9, rand.New(rand.NewSource(4)))
	fmt.Printf("\nrecognition at 5%% noise: software %.0f%%, repaired hardware (2%% defects) %.0f%%\n",
		100*swRate, 100*rate)
	fmt.Println("\nEvery repair preserves exact functional coverage: lost crossbar cells are")
	fmt.Println("demoted to discrete synapses, the hybrid substrate's built-in spare path.")
}
