// Hopfield QR-code scenario: the paper's testbench workload end to end.
// Random QR-like patterns are stored in a Hopfield network, the weights are
// sparsified by magnitude, recognition is verified under noise, and the
// resulting sparse topology is compiled to the hybrid crossbar substrate.
//
//	go run ./examples/hopfieldqr
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

func main() {
	// A scaled-down testbench (the paper's testbench 1 uses M=15, N=300;
	// this runs in seconds rather than minutes).
	tb := autoncs.Testbench{ID: 1, M: 10, N: 200, Sparsity: 0.94}
	cm, net, patterns := tb.Build(7)

	fmt.Printf("stored %d patterns of dimension %d; sparsified to %.2f%% sparsity\n",
		tb.M, tb.N, 100*cm.Sparsity())

	// The paper requires >90% recognition on its testbenches.
	rate := net.RecognitionRate(patterns, 0.05, 0.95, rand.New(rand.NewSource(1)))
	fmt.Printf("recognition rate at 5%% noise: %.0f%% (paper requires >90%%)\n", 100*rate)

	// Show one noisy recall round trip.
	noisy := autoncs.Corrupt(patterns[0], 0.08, rand.New(rand.NewSource(2)))
	recalled := net.Recall(noisy, 50)
	fmt.Printf("pattern 0: corrupted to %.0f%% overlap, recalled to %.0f%% overlap\n",
		100*autoncs.Overlap(noisy, patterns[0]), 100*autoncs.Overlap(recalled, patterns[0]))

	// Compile the sparse topology onto the memristor substrate.
	cfg := autoncs.DefaultConfig()
	res, err := autoncs.Compile(cm, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhybrid implementation: %d crossbars, %d discrete synapses\n",
		len(res.Assignment.Crossbars), len(res.Assignment.Synapses))
	hist := res.Assignment.SizeHistogram()
	fmt.Print("crossbar sizes: ")
	for s := 16; s <= 64; s += 4 {
		if c := hist[s]; c > 0 {
			fmt.Printf("%d×%d:%d ", s, s, c)
		}
	}
	fmt.Printf("\nwirelength %.0f µm, area %.0f µm², avg delay %.2f ns\n",
		res.Report.Wirelength, res.Report.Area, res.Report.AvgDelay)
}
