// LDPC scenario: the paper's introduction motivates AutoNCS with the
// neural network used for LDPC decoding in IEEE 802.11, whose message-
// passing topology is more than 99% sparse. This example builds an
// 802.11n-style quasi-cyclic parity-check bipartite network, maps variable
// and check nodes to neurons, and compiles the resulting (extremely sparse,
// highly structured) connection matrix to the hybrid substrate.
//
//	go run ./examples/ldpc
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro"
)

// quasiCyclicLDPC builds the Tanner graph of a quasi-cyclic LDPC code:
// blockRows×blockCols circulant blocks of size z, each either empty or a
// cyclically shifted identity, as in the 802.11n code family. Variable
// nodes are neurons [0, n) and check nodes [n, n+m); every parity-check
// edge becomes a bidirectional message-passing connection.
func quasiCyclicLDPC(blockRows, blockCols, z int, rng *rand.Rand) *autoncs.Network {
	n := blockCols * z // variable nodes
	m := blockRows * z // check nodes
	net := autoncs.NewNetwork(n + m)
	for br := 0; br < blockRows; br++ {
		for bc := 0; bc < blockCols; bc++ {
			// ~half the blocks are used, as in the 802.11n base matrices.
			if rng.Intn(2) == 0 {
				continue
			}
			shift := rng.Intn(z)
			for i := 0; i < z; i++ {
				vn := bc*z + (i+shift)%z
				cn := n + br*z + i
				net.Set(vn, cn) // variable → check message
				net.Set(cn, vn) // check → variable message
			}
		}
	}
	return net
}

func main() {
	rng := rand.New(rand.NewSource(802))
	// 802.11n-flavoured dimensions, scaled for a quick run: rate-1/2 base
	// matrix of 6×12 circulant blocks with Z=27 (the standard's smallest).
	net := quasiCyclicLDPC(6, 12, 27, rng)
	fmt.Printf("LDPC message-passing network: %d neurons (%d variable + %d check), %d connections\n",
		net.N(), 12*27, 6*27, net.NNZ())
	fmt.Printf("sparsity: %.2f%% (the paper quotes >99%% for LDPC in 802.11)\n", 100*net.Sparsity())

	cfg := autoncs.DefaultConfig()
	res, err := autoncs.Compile(net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := res.Assignment
	fmt.Printf("\nhybrid mapping: %d crossbars + %d discrete synapses (%.1f%% outliers)\n",
		len(a.Crossbars), len(a.Synapses), 100*a.OutlierRatio())
	fmt.Printf("avg crossbar utilization %.3f over %d ISC iterations\n",
		a.AvgUtilization(), len(res.Trace))

	base, err := autoncs.CompileFullCro(net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := autoncs.Compare(res, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvs FullCro: wirelength %.1f%%, area %.1f%%, delay %.1f%% reductions\n",
		cmp.WirelengthReduction, cmp.AreaReduction, cmp.DelayReduction)
	fmt.Println("\nAt >99% sparsity the crossbar baseline is hugely wasteful — exactly the")
	fmt.Println("regime where the hybrid crossbar+synapse mapping pays off most.")
}
