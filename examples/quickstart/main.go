// Quickstart: build a small sparse network, compile it with AutoNCS, and
// compare the physical design against the FullCro baseline.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A 200-neuron network at 93% sparsity — the regime the paper targets.
	net := autoncs.RandomSparseNetwork(200, 0.93, 42)
	fmt.Printf("network: %d neurons, %d connections, %.1f%% sparse\n",
		net.N(), net.NNZ(), 100*net.Sparsity())

	cfg := autoncs.DefaultConfig()
	res, err := autoncs.Compile(net, cfg)
	if err != nil {
		log.Fatal(err)
	}

	a := res.Assignment
	fmt.Printf("\nAutoNCS mapping: %d crossbars + %d discrete synapses (%.1f%% outliers)\n",
		len(a.Crossbars), len(a.Synapses), 100*a.OutlierRatio())
	fmt.Printf("ISC converged in %d iterations; avg crossbar utilization %.3f\n",
		len(res.Trace), a.AvgUtilization())
	fmt.Printf("physical design: wirelength %.0f µm, area %.0f µm², avg delay %.2f ns\n",
		res.Report.Wirelength, res.Report.Area, res.Report.AvgDelay)

	base, err := autoncs.CompileFullCro(net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := autoncs.Compare(res, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvs FullCro baseline: wirelength %.1f%%, area %.1f%%, delay %.1f%% reductions\n",
		cmp.WirelengthReduction, cmp.AreaReduction, cmp.DelayReduction)
}
