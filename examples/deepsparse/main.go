// Deep-network scenario: the paper's introduction cites the multi-column
// deep network of Ciresan et al. (4000+ inputs) as the scale motivating
// crossbar partitioning. This example builds one pruned fully-connected
// layer of such a network (magnitude-pruned to high sparsity, as deployed
// networks are), maps its bipartite input→output connections, and compiles
// it — exercising AutoNCS on a feed-forward (asymmetric) topology rather
// than the recurrent Hopfield testbenches.
//
//	go run ./examples/deepsparse
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"repro"
)

// prunedLayer builds a sparse bipartite layer: in inputs feeding out
// outputs, keeping the strongest keep fraction of Gaussian weights, with a
// mild structure (each output draws preferentially from a localized input
// window, as convolution-derived dense layers do).
func prunedLayer(in, out int, keep float64, rng *rand.Rand) *autoncs.Network {
	net := autoncs.NewNetwork(in + out)
	type wEntry struct {
		i, j int
		mag  float64
	}
	var entries []wEntry
	for j := 0; j < out; j++ {
		center := float64(j) / float64(out) * float64(in)
		for i := 0; i < in; i++ {
			// Locality prior: weights decay with input-output distance.
			d := math.Abs(float64(i)-center) / float64(in)
			mag := math.Abs(rng.NormFloat64()) * math.Exp(-3*d)
			entries = append(entries, wEntry{i, j, mag})
		}
	}
	// Keep the strongest weights (magnitude pruning).
	k := int(keep * float64(len(entries)))
	// Partial selection via quickselect-ish: sort is fine at this size.
	for a := 0; a < len(entries); a++ {
		for b := a + 1; b < len(entries); b++ {
			if entries[b].mag > entries[a].mag {
				entries[a], entries[b] = entries[b], entries[a]
			}
		}
		if a >= k {
			break
		}
	}
	for _, e := range entries[:k] {
		net.Set(e.i, in+e.j) // input neuron i drives output neuron j
	}
	return net
}

func main() {
	rng := rand.New(rand.NewSource(2012))
	in, out := 256, 64
	net := prunedLayer(in, out, 0.06, rng)
	fmt.Printf("pruned dense layer: %d→%d, %d surviving weights, %.2f%% sparsity\n",
		in, out, net.NNZ(), 100*net.Sparsity())

	cfg := autoncs.DefaultConfig()
	res, err := autoncs.Compile(net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	a := res.Assignment
	fmt.Printf("\nhybrid mapping: %d crossbars + %d discrete synapses (%.1f%% outliers)\n",
		len(a.Crossbars), len(a.Synapses), 100*a.OutlierRatio())

	// Feed-forward layers have one-way connections; verify the mapping
	// preserved every one of them.
	if err := a.Validate(net); err != nil {
		log.Fatalf("mapping corrupt: %v", err)
	}
	fmt.Println("mapping validated: every weight is realized exactly once")

	base, err := autoncs.CompileFullCro(net, cfg)
	if err != nil {
		log.Fatal(err)
	}
	cmp, err := autoncs.Compare(res, base)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvs FullCro: wirelength %.1f%%, area %.1f%%, delay %.1f%%, cost %.1f%% reductions\n",
		cmp.WirelengthReduction, cmp.AreaReduction, cmp.DelayReduction, cmp.CostReduction)
	fmt.Println("\nNote the contrast with the Hopfield and LDPC scenarios: a feed-forward")
	fmt.Println("layer's bipartite sparsity aligns naturally with the block structure of")
	fmt.Println("the FullCro baseline, so the baseline can be competitive on wirelength")
	fmt.Println("while the hybrid mapping still wins decisively on delay (smaller, faster")
	fmt.Println("crossbars plus fast discrete synapses). The cost function of Eq. 3 is")
	fmt.Println("what arbitrates such trade-offs.")
}
