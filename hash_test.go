package autoncs_test

import (
	"math"
	"testing"

	"repro"
)

// hashOf fails the test on error; most cases below want the happy path.
func hashOf(t *testing.T, net *autoncs.Network, cfg autoncs.Config) [32]byte {
	t.Helper()
	key, err := autoncs.CanonicalHash(net, cfg)
	if err != nil {
		t.Fatalf("CanonicalHash: %v", err)
	}
	return key
}

// TestCanonicalHashEquivalences: every spelling of the same compile hashes
// to the same key — the "repeat compile is a cache hit" half of the
// contract.
func TestCanonicalHashEquivalences(t *testing.T) {
	net := autoncs.RandomSparseNetwork(80, 0.9, 7)
	base := autoncs.DefaultConfig()
	want := hashOf(t, net, base)

	cases := []struct {
		name   string
		net    *autoncs.Network
		mutate func(*autoncs.Config)
	}{
		{"identical call", net, func(*autoncs.Config) {}},
		{"deep-copied network", net.Clone(), func(*autoncs.Config) {}},
		{"workers ignored", net, func(c *autoncs.Config) { c.Workers = 7 }},
		{"route workers ignored", net, func(c *autoncs.Config) { c.Route.Workers = 3 }},
		{"observer ignored", net, func(c *autoncs.Config) { c.Observer = &autoncs.MetricsObserver{} }},
		{"route observer ignored", net, func(c *autoncs.Config) { c.Route.Observer = &autoncs.MetricsObserver{} }},
		{"place observer ignored", net, func(c *autoncs.Config) { c.Place.Observer = &autoncs.MetricsObserver{} }},
		{"quantile zero = paper default", net, func(c *autoncs.Config) { c.SelectionQuantile = 0.75 }},
		{"batch size zero = router default", net, func(c *autoncs.Config) { c.Route.BatchSize = 16 }},
		{"negotiation knobs zero = defaults", net, func(c *autoncs.Config) {
			c.Route.PresentFactor = 0
			c.Route.HistoryGain = 0
			c.Route.NegotiationRounds = 0
		}},
		{"negotiation knobs spelled out", net, func(c *autoncs.Config) {
			c.Route.PresentFactor = autoncs.DefaultPresentFactor
			c.Route.HistoryGain = autoncs.DefaultHistoryGain
			c.Route.NegotiationRounds = autoncs.DefaultNegotiationRounds
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if got := hashOf(t, tc.net, cfg); got != want {
				t.Errorf("hash diverged from the base compile")
			}
		})
	}

	// Both sentinel spellings of "disabled" hash equal to each other but
	// not to auto (0).
	offA, offB := base, base
	offA.UtilizationThreshold = autoncs.DisabledThreshold
	offB.UtilizationThreshold = -3.5
	if hashOf(t, net, offA) != hashOf(t, net, offB) {
		t.Errorf("DisabledThreshold and another negative threshold hash differently")
	}
	if hashOf(t, net, offA) == want {
		t.Errorf("disabled threshold hashes equal to auto")
	}
	qA, qB := base, base
	qA.SelectionQuantile = -1
	qB.SelectionQuantile = -0.25
	if hashOf(t, net, qA) != hashOf(t, net, qB) {
		t.Errorf("two disabled-quantile spellings hash differently")
	}

	// With negotiation off the negotiation knobs are canonicalized away:
	// every spelling of the legacy engine hashes identically, and none of
	// them equals the negotiated default.
	legA, legB := base, base
	legA.Route.Negotiate = false
	legB.Route.Negotiate = false
	legB.Route.PresentFactor = 2.5
	legB.Route.HistoryGain = 1.25
	legB.Route.NegotiationRounds = 7
	if hashOf(t, net, legA) != hashOf(t, net, legB) {
		t.Errorf("legacy-router knob spellings hash differently")
	}
	if hashOf(t, net, legA) == want {
		t.Errorf("legacy router hashes equal to negotiated")
	}
}

// TestCanonicalHashDistinguishes: any semantic change to the input changes
// the key — the "never serve a wrong result" half of the contract.
func TestCanonicalHashDistinguishes(t *testing.T) {
	net := autoncs.RandomSparseNetwork(80, 0.9, 7)
	base := autoncs.DefaultConfig()
	want := hashOf(t, net, base)

	smallLib, err := autoncs.NewLibrary(16, 32)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name   string
		mutate func(*autoncs.Config)
	}{
		{"seed", func(c *autoncs.Config) { c.Seed = 2 }},
		{"skip physical", func(c *autoncs.Config) { c.SkipPhysical = true }},
		{"library", func(c *autoncs.Config) { c.Library = smallLib }},
		{"utilization threshold", func(c *autoncs.Config) { c.UtilizationThreshold = 0.5 }},
		{"selection quantile", func(c *autoncs.Config) { c.SelectionQuantile = 0.6 }},
		{"device pitch", func(c *autoncs.Config) { c.Device.MemristorPitch *= 2 }},
		{"device synapse delay", func(c *autoncs.Config) { c.Device.SynapseDelay = 0.4 }},
		{"place gamma", func(c *autoncs.Config) { c.Place.Gamma = 3 }},
		{"place max outer", func(c *autoncs.Config) { c.Place.MaxOuter++ }},
		{"route theta", func(c *autoncs.Config) { c.Route.Theta = 1.5 }},
		{"route batch size", func(c *autoncs.Config) { c.Route.BatchSize = 8 }},
		{"route capacity", func(c *autoncs.Config) { c.Route.Capacity++ }},
		{"route engine", func(c *autoncs.Config) { c.Route.Negotiate = false }},
		{"route present factor", func(c *autoncs.Config) { c.Route.PresentFactor = 0.9 }},
		{"route history gain", func(c *autoncs.Config) { c.Route.HistoryGain = 0.7 }},
		{"route negotiation rounds", func(c *autoncs.Config) { c.Route.NegotiationRounds = 5 }},
		{"cost alpha", func(c *autoncs.Config) { c.Cost.Alpha = 2 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if hashOf(t, net, cfg) == want {
				t.Errorf("semantic config change did not change the hash")
			}
		})
	}

	t.Run("network bit flip", func(t *testing.T) {
		mutated := net.Clone()
		if mutated.Has(0, 1) {
			mutated.Clear(0, 1)
		} else {
			mutated.Set(0, 1)
		}
		if hashOf(t, mutated, base) == want {
			t.Errorf("connection flip did not change the hash")
		}
	})
	t.Run("network size", func(t *testing.T) {
		bigger := autoncs.NewNetwork(81)
		for _, e := range net.Edges() {
			bigger.Set(e.From, e.To)
		}
		if hashOf(t, bigger, base) == want {
			t.Errorf("padding a network with an isolated neuron did not change the hash")
		}
	})
}

// TestCanonicalHashValidates: an input Compile would reject never gets a
// key (a key must only ever exist for a compilable input).
func TestCanonicalHashValidates(t *testing.T) {
	net := autoncs.RandomSparseNetwork(40, 0.9, 1)
	good := autoncs.DefaultConfig()
	if _, err := autoncs.CanonicalHash(nil, good); err == nil {
		t.Error("nil network accepted")
	}
	if _, err := autoncs.CanonicalHash(autoncs.NewNetwork(10), good); err == nil {
		t.Error("empty network accepted")
	}
	bad := good
	bad.UtilizationThreshold = math.NaN()
	if _, err := autoncs.CanonicalHash(net, bad); err == nil {
		t.Error("NaN threshold accepted")
	}
	bad = good
	bad.Workers = -1
	if _, err := autoncs.CanonicalHash(net, bad); err == nil {
		t.Error("negative workers accepted")
	}
	bad = good
	bad.SelectionQuantile = 1.5
	if _, err := autoncs.CanonicalHash(net, bad); err == nil {
		t.Error("quantile above 1 accepted")
	}
}

func TestCanonicalHashHex(t *testing.T) {
	net := autoncs.RandomSparseNetwork(40, 0.9, 1)
	cfg := autoncs.DefaultConfig()
	key := hashOf(t, net, cfg)
	hexKey, err := autoncs.CanonicalHashHex(net, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(hexKey) != 64 {
		t.Fatalf("hex key %q is not 64 chars", hexKey)
	}
	// Spot-check the first byte agrees with the binary key.
	if want := "0123456789abcdef"[key[0]>>4]; hexKey[0] != want {
		t.Errorf("hex key %q does not encode the binary key", hexKey)
	}
}

// FuzzCanonicalHash round-trips arbitrary generated inputs through the
// hash: hashing must be deterministic, invariant under deep-copying and
// result-irrelevant knobs, and sensitive to single-connection flips.
func FuzzCanonicalHash(f *testing.F) {
	f.Add(uint8(12), uint8(128), int64(1), int64(3), uint8(0))
	f.Add(uint8(60), uint8(250), int64(9), int64(7), uint8(40))
	f.Add(uint8(1), uint8(0), int64(-4), int64(0), uint8(200))
	f.Fuzz(func(t *testing.T, nRaw, sparsityRaw uint8, netSeed, cfgSeed int64, flipRaw uint8) {
		n := 2 + int(nRaw)%64
		sparsity := float64(sparsityRaw) / 256 // in [0, 1)
		net := autoncs.RandomSparseNetwork(n, sparsity, netSeed)
		if net.NNZ() == 0 {
			net.Set(0, 1) // CanonicalHash rejects edgeless networks
		}
		cfg := autoncs.DefaultConfig()
		cfg.Seed = cfgSeed

		a, err := autoncs.CanonicalHash(net, cfg)
		if err != nil {
			t.Fatalf("valid generated input rejected: %v", err)
		}
		if hashOf(t, net, cfg) != a || hashOf(t, net.Clone(), cfg) != a {
			t.Fatal("hash not deterministic across calls / clones")
		}

		cfg2 := cfg
		cfg2.Workers = 1 + int(flipRaw)%8
		cfg2.Observer = &autoncs.MetricsObserver{}
		if hashOf(t, net, cfg2) != a {
			t.Fatal("result-irrelevant knobs changed the hash")
		}

		i, j := int(flipRaw)%n, int(flipRaw/2)%n
		mutated := net.Clone()
		if mutated.Has(i, j) {
			mutated.Clear(i, j)
		} else {
			mutated.Set(i, j)
		}
		if mutated.NNZ() == 0 {
			t.Skip("flip emptied the network")
		}
		if hashOf(t, mutated, cfg) == a {
			t.Fatalf("flipping connection (%d,%d) did not change the hash", i, j)
		}
	})
}
