// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablations of the design choices called out in
// DESIGN.md. Each benchmark runs a scaled-down instance (the full
// paper-scale experiments take minutes each and live in cmd/ncsbench;
// `go run ./cmd/ncsbench` regenerates the paper numbers) and reports the
// experiment's headline metric through b.ReportMetric, so the harness both
// times the flow and regenerates the result shapes.
package autoncs_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/hopfield"
	"repro/internal/xbar"
)

// Benchmark scale: chosen so the whole suite completes in a few minutes.
const (
	benchN       = 150
	benchMaxSize = 48
	benchSeed    = 1
)

func benchTB(id int) hopfield.Testbench {
	// Scaled versions of the paper's three testbenches, preserving their
	// relative ordering in N and the ~94% sparsity regime.
	return hopfield.Testbench{ID: id, M: 4 + 2*id, N: 80 + 40*id, Sparsity: 0.94}
}

// BenchmarkFigure3MSC regenerates Figure 3: one modified-spectral-
// clustering pass over a sparse network. Reported metric: outlier ratio
// after the single pass.
func BenchmarkFigure3MSC(b *testing.B) {
	var outliers float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(benchN, benchMaxSize, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		outliers = res.OutlierRatio
	}
	b.ReportMetric(100*outliers, "outlier_%")
}

// BenchmarkFigure4GCP and BenchmarkFigure4Traversing regenerate Figure 4:
// the two cluster-size-control algorithms on the same network. Comparing
// their ns/op is the paper's runtime comparison (106 ms vs 190 ms).
func BenchmarkFigure4GCP(b *testing.B) {
	cm := experiments.SparseNet(benchN, benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GCP(cm, benchMaxSize, rand.New(rand.NewSource(benchSeed))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4Traversing(b *testing.B) {
	cm := experiments.SparseNet(benchN, benchSeed)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Traversing(cm, benchMaxSize, rand.New(rand.NewSource(benchSeed))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure5Iteration regenerates Figure 5: one clustering round on
// the remaining (outlier) network after peeling the first round's clusters.
func BenchmarkFigure5Iteration(b *testing.B) {
	cm := experiments.SparseNet(benchN, benchSeed)
	rng := rand.New(rand.NewSource(benchSeed))
	clusters, err := core.GCP(cm, benchMaxSize, rng)
	if err != nil {
		b.Fatal(err)
	}
	remaining := cm.Clone()
	for _, cl := range clusters {
		remaining.RemoveWithin(cl)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.GCP(remaining, benchMaxSize, rand.New(rand.NewSource(benchSeed))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6ISC regenerates Figure 6: the full iterative spectral
// clustering trace with partial selection. Reported metric: final outlier
// percentage (paper: <5% after 11 iterations on its example).
func BenchmarkFigure6ISC(b *testing.B) {
	var final float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure56(benchN, benchSeed, false)
		if err != nil {
			b.Fatal(err)
		}
		final = res.FinalOutlierRatio
	}
	b.ReportMetric(100*final, "outlier_%")
}

// benchmarkFigureISC regenerates one of Figures 7-9: the per-testbench ISC
// efficacy analysis. Reported metrics: iterations to converge and the
// average fanin+fanout ratio versus the baseline (paper: ≈0.8).
func benchmarkFigureISC(b *testing.B, id int) {
	var a *experiments.ISCAnalysis
	for i := 0; i < b.N; i++ {
		var err error
		a, err = experiments.FigureISC(benchTB(id), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(a.Iterations), "iterations")
	b.ReportMetric(a.AvgSumRatio, "fan_ratio")
}

func BenchmarkFigure7Testbench1(b *testing.B) { benchmarkFigureISC(b, 1) }
func BenchmarkFigure8Testbench2(b *testing.B) { benchmarkFigureISC(b, 2) }
func BenchmarkFigure9Testbench3(b *testing.B) { benchmarkFigureISC(b, 3) }

// BenchmarkFigure10Placement regenerates Figure 10: full placement and
// routing of both designs of (scaled) testbench 3. Reported metric: peak
// congestion ratio FullCro/AutoNCS (the paper's congestion maps show
// FullCro's centre far more congested).
func BenchmarkFigure10Placement(b *testing.B) {
	var res *experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Figure10(benchTB(3), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	if res.AutoNCSPeakUsage > 0 {
		b.ReportMetric(float64(res.FullCroPeakUsage)/float64(res.AutoNCSPeakUsage), "peak_congestion_ratio")
	}
}

// benchmarkTable1 regenerates one row of Table 1 (scaled): the full
// AutoNCS and FullCro flows with cost evaluation. Reported metrics: the
// three reductions of the paper's table.
func benchmarkTable1(b *testing.B, id int) {
	var row *experiments.Table1Row
	for i := 0; i < b.N; i++ {
		var err error
		row, err = experiments.Table1Bench(benchTB(id), benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Reductions.Wirelength, "wirelength_reduction_%")
	b.ReportMetric(row.Reductions.Area, "area_reduction_%")
	b.ReportMetric(row.Reductions.Delay, "delay_reduction_%")
}

func BenchmarkTable1Testbench1(b *testing.B) { benchmarkTable1(b, 1) }
func BenchmarkTable1Testbench2(b *testing.B) { benchmarkTable1(b, 2) }
func BenchmarkTable1Testbench3(b *testing.B) { benchmarkTable1(b, 3) }

// ---------------------------------------------------------------- ablations

// iscWith runs ISC on the benchmark network with the given options applied.
func iscWith(b *testing.B, mutate func(*core.ISCOptions)) *core.ISCResult {
	b.Helper()
	cm := experiments.SparseNet(benchN, benchSeed)
	lib := xbar.DefaultLibrary()
	opts := core.ISCOptions{
		Library:              lib,
		UtilizationThreshold: xbar.FullCro(cm, lib).AvgUtilization(),
		Rand:                 rand.New(rand.NewSource(benchSeed)),
	}
	if mutate != nil {
		mutate(&opts)
	}
	res, err := core.ISC(cm, opts)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

// BenchmarkAblationPartialSelection compares the paper's top-quartile
// partial selection strategy against realizing every cluster each round.
// Reported metric: average utilization of the placed crossbars.
func BenchmarkAblationPartialSelection(b *testing.B) {
	b.Run("quartile", func(b *testing.B) {
		var u float64
		for i := 0; i < b.N; i++ {
			u = iscWith(b, nil).Assignment.AvgUtilization()
		}
		b.ReportMetric(u, "avg_utilization")
	})
	b.Run("select-all", func(b *testing.B) {
		var u float64
		for i := 0; i < b.N; i++ {
			u = iscWith(b, func(o *core.ISCOptions) { o.SelectionQuantile = -1 }).Assignment.AvgUtilization()
		}
		b.ReportMetric(u, "avg_utilization")
	})
}

// BenchmarkAblationThreshold sweeps the ISC stop threshold (×1, ×2, ×4 of
// the baseline utilization). Reported metric: outlier percentage.
func BenchmarkAblationThreshold(b *testing.B) {
	for _, mult := range []float64{1, 2, 4} {
		mult := mult
		b.Run(map[float64]string{1: "x1", 2: "x2", 4: "x4"}[mult], func(b *testing.B) {
			var out float64
			for i := 0; i < b.N; i++ {
				res := iscWith(b, func(o *core.ISCOptions) { o.UtilizationThreshold *= mult })
				out = res.Assignment.OutlierRatio()
			}
			b.ReportMetric(100*out, "outlier_%")
		})
	}
}

// BenchmarkAblationLibrary compares crossbar libraries of different
// granularity (the paper's 16..64 step 4, a coarse {16,32,64}, and the
// maximum size only). Reported metric: average crossbar utilization.
func BenchmarkAblationLibrary(b *testing.B) {
	libs := []struct {
		name  string
		sizes []int
	}{
		{"16..64step4", nil}, // nil = default
		{"16-32-64", []int{16, 32, 64}},
		{"64only", []int{64}},
	}
	for _, lc := range libs {
		lc := lc
		b.Run(lc.name, func(b *testing.B) {
			var u float64
			for i := 0; i < b.N; i++ {
				res := iscWith(b, func(o *core.ISCOptions) {
					if lc.sizes != nil {
						lib, err := xbar.NewLibrary(lc.sizes...)
						if err != nil {
							b.Fatal(err)
						}
						o.Library = lib
					}
				})
				u = res.Assignment.AvgUtilization()
			}
			b.ReportMetric(u, "avg_utilization")
		})
	}
}

// BenchmarkAblationWireWeights compares RC-derived wire weights against
// unit weights in the physical design. Reported metric: the mean routed
// length of the timing-critical (heaviest-quartile) wires — the quantity
// the RC weighting exists to shorten. (Average wire *delay* is insensitive
// here because device delay dwarfs wire RC at these die sizes.)
func BenchmarkAblationWireWeights(b *testing.B) {
	net := autoncs.RandomSparseNetwork(benchN, 0.94, benchSeed)
	criticalLen := func(res *autoncs.Result, weights []float64) float64 {
		sorted := append([]float64(nil), weights...)
		sort.Float64s(sorted)
		q := sorted[len(sorted)*3/4]
		sum, cnt := 0.0, 0
		for i := range weights {
			if weights[i] >= q {
				sum += res.Routing.WireLength[i]
				cnt++
			}
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}
	run := func(b *testing.B, flattenWeights bool) float64 {
		cfg := autoncs.DefaultConfig()
		cfg.Seed = benchSeed
		var l float64
		for i := 0; i < b.N; i++ {
			res, err := autoncs.Compile(net, cfg)
			if err != nil {
				b.Fatal(err)
			}
			orig := make([]float64, len(res.Netlist.Wires))
			for j := range res.Netlist.Wires {
				orig[j] = res.Netlist.Wires[j].Weight
			}
			if flattenWeights {
				for j := range res.Netlist.Wires {
					res.Netlist.Wires[j].Weight = 1
				}
				if err := res.Redesign(cfg); err != nil {
					b.Fatal(err)
				}
			}
			l = criticalLen(res, orig)
		}
		return l
	}
	b.Run("rc-weights", func(b *testing.B) {
		b.ReportMetric(run(b, false), "critical_wire_um")
	})
	b.Run("unit-weights", func(b *testing.B) {
		b.ReportMetric(run(b, true), "critical_wire_um")
	})
}

// BenchmarkCompileEndToEnd times the complete public-API flow.
func BenchmarkCompileEndToEnd(b *testing.B) {
	net := autoncs.RandomSparseNetwork(benchN, 0.94, benchSeed)
	cfg := autoncs.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := autoncs.Compile(net, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScalabilityGCP1000 exercises the sparse (Lanczos) spectral path
// on a network well beyond the paper's testbench sizes — the scale the
// introduction motivates with 4000+-input deep networks. Reported metric:
// fraction of connections captured within the bounded clusters.
func BenchmarkScalabilityGCP1000(b *testing.B) {
	rng := rand.New(rand.NewSource(benchSeed))
	cm := graph.RandomClustered(1000, 50, 0.2, 0.001, rng)
	var captured float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clusters, err := core.GCP(cm, 64, rand.New(rand.NewSource(benchSeed)))
		if err != nil {
			b.Fatal(err)
		}
		within := 0
		for _, cl := range clusters {
			within += cm.CountWithin(cl)
		}
		captured = float64(within) / float64(cm.NNZ())
	}
	b.ReportMetric(captured, "within_ratio")
}

// BenchmarkFidelity measures the hardware-in-the-loop recognition check:
// compile, program the simulated devices, recall all patterns. Reported
// metric: hardware recognition rate (software-level is 1.0 at this scale).
func BenchmarkFidelity(b *testing.B) {
	tb := hopfield.Testbench{ID: 1, M: 5, N: 80, Sparsity: 0.9}
	var rate float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fidelity(tb, 0.05, 0.01, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		rate = res.HardwareRate
	}
	b.ReportMetric(rate, "hw_recognition")
}

// BenchmarkSparsitySweep exercises ISC across sparsity regimes (an
// extension experiment: the sparser the network, the less of it belongs in
// crossbars). Reported metrics: synapse share at 90% and 99% sparsity.
func BenchmarkSparsitySweep(b *testing.B) {
	var pts []experiments.SparsityPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.SparsitySweep(120, []float64{0.90, 0.99}, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].SynapseShare, "synapse_share_s90")
	b.ReportMetric(pts[1].SynapseShare, "synapse_share_s99")
}

// workerCounts returns the pool sizes the parallel benchmarks compare:
// the serial baseline and the machine's full width. On a 1-CPU runner the
// two coincide and the comparison is a no-op by construction.
func workerCounts() []int {
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkCompileParallel times the complete public-API flow across
// worker-pool sizes. The determinism contract (see Config.Workers) means
// every sub-benchmark computes the identical result; only the wall clock
// may differ.
func BenchmarkCompileParallel(b *testing.B) {
	net := autoncs.RandomSparseNetwork(benchN, 0.94, benchSeed)
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := autoncs.DefaultConfig()
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := autoncs.Compile(net, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompileClusterOnlyParallel isolates the clustering flow (MSC +
// GCP + ISC), where the parallel spectral and k-means kernels dominate, on
// a mid-size network using the sparse Lanczos path.
func BenchmarkCompileClusterOnlyParallel(b *testing.B) {
	net := autoncs.RandomSparseNetwork(800, 0.97, benchSeed)
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := autoncs.DefaultConfig()
			cfg.SkipPhysical = true
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := autoncs.Compile(net, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompile2000 is the large-scale testbench: a cluster-only
// compile of a 2000-neuron sparse network, the regime the paper's
// introduction motivates (4000+-input deep networks). A single iteration
// takes minutes of CPU time (a lone GCP pass at this size measures
// ~1 min/op on one core), so the benchmark is opt-out via -short — the
// Makefile's `bench` target skips it and `bench-large` runs it.
func BenchmarkCompile2000(b *testing.B) {
	if testing.Short() {
		b.Skip("minutes per op; run via `make bench-large`")
	}
	net := autoncs.RandomSparseNetwork(2000, 0.985, benchSeed)
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			cfg := autoncs.DefaultConfig()
			cfg.SkipPhysical = true
			cfg.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := autoncs.Compile(net, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGCP2000Parallel times one GCP pass at the 2000-neuron scale —
// the kernel that dominates BenchmarkCompile2000 — across pool sizes.
func BenchmarkGCP2000Parallel(b *testing.B) {
	if testing.Short() {
		b.Skip("minutes per op; run via `make bench-large`")
	}
	rng := rand.New(rand.NewSource(benchSeed))
	cm := graph.RandomClustered(2000, 50, 0.2, 0.0005, rng)
	for _, workers := range workerCounts() {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.GCPN(cm, 64, rand.New(rand.NewSource(benchSeed)), workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
